// Stream-ingest service: a resident process that accepts FASTQ over a loopback TCP
// socket (length-prefixed frames, see src/ingest/wire.h) and writes AGD chunk
// datasets into a store directory. Pair it with examples/ingest_client:
//
//   ./ingest_service /tmp/agd-store --port 7421          # terminal 1
//   ./ingest_client 7421 run1 sample.fastq               # terminal 2 (any number)
//
// Each connected client is one ingest session on its own ChunkPipeline; when the
// store falls behind, the bounded queues stall the socket reader and TCP flow
// control pushes back on the client — the service never buffers an unbounded stream.
//
// Usage:
//   ingest_service <store-dir> [--port N] [--chunk-size N] [--max-sessions N]
//   ingest_service --smoke            # self-contained smoke test (CTest runs this)
//
// With --max-sessions N the service exits after N sessions complete (useful for
// scripted runs); otherwise it runs until SIGINT/SIGTERM.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "src/format/fastq.h"
#include "src/ingest/service.h"
#include "src/ingest/wire.h"
#include "src/storage/local_store.h"
#include "src/storage/memory_store.h"
#include "src/util/file_util.h"
#include "src/util/string_util.h"

namespace {

using namespace persona;  // example code; the library itself never does this

volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

void PrintSessions(const ingest::IngestService& service) {
  for (const auto& s : service.Sessions()) {
    std::printf("  session %llu dataset=%s records=%llu chunks=%llu bytes=%s %s\n",
                static_cast<unsigned long long>(s.session_id), s.dataset.c_str(),
                static_cast<unsigned long long>(s.records_built),
                static_cast<unsigned long long>(s.chunks_built),
                HumanBytes(s.bytes_received).c_str(),
                s.done ? s.status.ToString().c_str() : "(running)");
  }
}

// --smoke: spin the service on an in-memory store, stream a synthetic FASTQ from an
// in-process client, and verify the dataset landed. Exercises the same wire path as
// the two-process setup, but exits 0 on its own — the examples smoke test.
int RunSmoke() {
  std::vector<genome::Read> reads;
  for (int i = 0; i < 2'000; ++i) {
    genome::Read read;
    read.metadata = "smoke-" + std::to_string(i);
    read.bases = "ACGTACGTACGTACGTACGTACGTACGTACGT";
    read.qual = std::string(read.bases.size(), 'I');
    reads.push_back(std::move(read));
  }
  std::string fastq;
  format::WriteFastq(reads, &fastq);

  storage::MemoryStore store;
  ingest::IngestOptions options;
  options.chunk_size = 500;
  auto service = ingest::IngestService::Start(&store, options);
  PERSONA_CHECK_OK(service.status());
  std::printf("smoke: service on port %u\n", (*service)->port());

  auto conn = ingest::ConnectLoopback((*service)->port());
  PERSONA_CHECK_OK(conn.status());
  PERSONA_CHECK_OK(WriteFrame(*conn, ingest::FrameType::kStart, "smoke"));
  ingest::Frame frame;
  PERSONA_CHECK_OK(ReadFrame(*conn, &frame));
  for (size_t offset = 0; offset < fastq.size(); offset += 16'384) {
    const size_t len = std::min<size_t>(16'384, fastq.size() - offset);
    PERSONA_CHECK_OK(WriteFrame(*conn, ingest::FrameType::kData,
                                std::string_view(fastq).substr(offset, len)));
  }
  PERSONA_CHECK_OK(WriteFrame(*conn, ingest::FrameType::kEnd, ""));
  PERSONA_CHECK_OK(ReadFrame(*conn, &frame));
  if (frame.type != ingest::FrameType::kDone) {
    std::fprintf(stderr, "smoke: expected Done, got %s: %s\n",
                 std::string(FrameTypeName(frame.type)).c_str(), frame.payload.c_str());
    return 1;
  }
  (*service)->Shutdown();
  if (!store.Exists("smoke.manifest.json") || !store.Exists("smoke-3.bases")) {
    std::fprintf(stderr, "smoke: dataset objects missing from store\n");
    return 1;
  }
  std::printf("smoke: ok — %s\n", frame.payload.c_str());
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: ingest_service <store-dir> [--port N] [--chunk-size N] "
               "[--max-sessions N]\n"
               "       ingest_service --smoke\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--smoke") == 0) {
    return RunSmoke();
  }
  if (argc < 2) {
    return Usage();
  }
  std::string store_dir = argv[1];
  ingest::IngestOptions options;
  options.chunk_size = 10'000;
  long max_sessions = 0;
  for (int i = 2; i < argc; i += 2) {
    if (i + 1 >= argc) {
      return Usage();  // flag without its value
    }
    if (std::strcmp(argv[i], "--port") == 0) {
      options.port = static_cast<uint16_t>(std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--chunk-size") == 0) {
      options.chunk_size = std::atoll(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--max-sessions") == 0) {
      max_sessions = std::atol(argv[i + 1]);
    } else {
      return Usage();
    }
  }

  auto store = storage::LocalStore::Create(store_dir, /*device=*/nullptr);
  PERSONA_CHECK_OK(store.status());
  auto service = ingest::IngestService::Start(store->get(), options);
  PERSONA_CHECK_OK(service.status());

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::printf("ingest service listening on 127.0.0.1:%u, writing AGD to %s\n",
              (*service)->port(), store_dir.c_str());
  std::printf("stop with Ctrl-C%s\n",
              max_sessions > 0 ? StrFormat(" (or after %ld sessions)", max_sessions).c_str()
                               : "");
  std::fflush(stdout);

  while (g_stop == 0 &&
         (max_sessions == 0 ||
          (*service)->completed_sessions() < static_cast<size_t>(max_sessions))) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("shutting down (%zu sessions served)...\n",
              (*service)->completed_sessions());
  (*service)->Shutdown();
  PrintSessions(**service);
  return 0;
}
