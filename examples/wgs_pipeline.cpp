// WGS pipeline example: a configurable "whole-genome" run comparing both integrated
// aligners (SNAP-style and BWA-MEM-style) on the same dataset, with pipeline
// utilization reporting — the §5 evaluation workflow in miniature.
//
// Usage: wgs_pipeline [genome_kbp] [num_reads] [threads]   (defaults: 400 12000 2)

#include <cstdio>
#include <cstdlib>

#include "src/align/accuracy.h"
#include "src/align/bwa_aligner.h"
#include "src/align/snap_aligner.h"
#include "src/genome/generator.h"
#include "src/genome/read_simulator.h"
#include "src/pipeline/agd_store_util.h"
#include "src/pipeline/persona_pipeline.h"
#include "src/storage/memory_store.h"
#include "src/util/string_util.h"

namespace {

using namespace persona;

void ReportRun(const char* name, const pipeline::AlignRunReport& report,
               const align::AccuracyReport& accuracy) {
  std::printf("%-14s %8.2fs %10.2f Mb/s %8.1f%% aligned %8.1f%% correct\n", name,
              report.seconds, static_cast<double>(report.bases) / report.seconds / 1e6,
              accuracy.aligned_fraction() * 100, accuracy.correct_fraction() * 100);
  std::printf("               seed/verify kernel split: %.0f%% / %.0f%%   "
              "(candidates/read: %.1f)\n",
              100.0 * static_cast<double>(report.profile.seed_ns) /
                  static_cast<double>(report.profile.seed_ns + report.profile.verify_ns + 1),
              100.0 * static_cast<double>(report.profile.verify_ns) /
                  static_cast<double>(report.profile.seed_ns + report.profile.verify_ns + 1),
              static_cast<double>(report.profile.candidates) /
                  static_cast<double>(std::max<uint64_t>(report.profile.reads, 1)));
}

int RunPipeline(int64_t genome_kbp, size_t num_reads, int threads) {
  std::printf("== WGS pipeline: %lld kbp genome, %zu reads, %d threads ==\n\n",
              static_cast<long long>(genome_kbp), num_reads, threads);

  genome::GenomeSpec genome_spec;
  genome_spec.num_contigs = 4;
  genome_spec.contig_length = genome_kbp * 1000 / 4;
  genome_spec.repeat_fraction = 0.05;
  genome::ReferenceGenome reference = genome::GenerateGenome(genome_spec);

  genome::ReadSimSpec read_spec;
  read_spec.read_length = 101;
  genome::ReadSimulator simulator(&reference, read_spec);
  std::vector<genome::Read> reads = simulator.Simulate(num_reads);
  double coverage = static_cast<double>(num_reads) * 101 /
                    static_cast<double>(reference.total_length());
  std::printf("dataset: %zu reads = %.1fx coverage of %s of reference\n\n", reads.size(),
              coverage, HumanBytes(static_cast<uint64_t>(reference.total_length())).c_str());

  // Build both indexes (the shared read-only resources of Fig. 3).
  align::SeedIndexOptions seed_options;
  seed_options.seed_length = 20;
  auto seed_index = align::SeedIndex::Build(reference, seed_options);
  PERSONA_CHECK_OK(seed_index.status());
  auto fm_index = align::FmIndex::Build(reference);
  PERSONA_CHECK_OK(fm_index.status());
  std::printf("indexes: SNAP hash %s (%zu seeds), FM-index %s\n\n",
              HumanBytes(seed_index->MemoryBytes()).c_str(),
              seed_index->num_distinct_seeds(),
              HumanBytes(fm_index->MemoryBytes()).c_str());

  storage::MemoryStore store;
  auto manifest = pipeline::WriteAgdToStore(&store, "wgs", reads, 2'000);
  PERSONA_CHECK_OK(manifest.status());

  std::printf("%-14s %9s %14s %16s %16s\n", "aligner", "time", "throughput", "aligned",
              "accuracy");
  dataflow::Executor executor(static_cast<size_t>(threads));

  for (int which = 0; which < 2; ++which) {
    // Fresh store copy of results per aligner (results objects are overwritten anyway).
    pipeline::AlignPipelineOptions options;
    options.align_nodes = threads;
    options.subchunk_size = 512;
    options.collect_results = true;

    std::unique_ptr<align::Aligner> aligner;
    if (which == 0) {
      aligner = std::make_unique<align::SnapAligner>(&reference, &seed_index.value());
    } else {
      aligner = std::make_unique<align::BwaMemAligner>(&reference, &fm_index.value());
    }
    auto report = pipeline::RunPersonaAlignment(&store, *manifest, *aligner, &executor,
                                                options);
    PERSONA_CHECK_OK(report.status());
    std::vector<align::AlignmentResult> flat;
    for (const auto& chunk : report->results) {
      flat.insert(flat.end(), chunk.begin(), chunk.end());
    }
    align::AccuracyReport accuracy = align::ScoreAlignments(reference, reads, flat);
    ReportRun(which == 0 ? "snap" : "bwa-mem", *report, accuracy);
  }

  std::printf("\n(the paper's Fig. 8 contrast appears in the kernel split: the SNAP-style\n"
              "aligner spends most kernel time in verification arithmetic, the BWA-style\n"
              "aligner in FM-index walks)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t genome_kbp = argc > 1 ? std::atoll(argv[1]) : 400;
  size_t num_reads = argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : 12'000;
  int threads = argc > 3 ? std::atoi(argv[3]) : 2;
  return RunPipeline(genome_kbp, num_reads, threads);
}
