// Cluster alignment example: multiple Persona "nodes" sharing one manifest server and
// one simulated Ceph object store (§5.5), followed by a paper-scale what-if via the
// discrete-event simulator.
//
// Usage: cluster_align [nodes] [num_reads]   (defaults: 3 9000)

#include <cstdio>
#include <cstdlib>

#include "src/align/snap_aligner.h"
#include "src/cluster/cluster_runner.h"
#include "src/cluster/des_sim.h"
#include "src/genome/generator.h"
#include "src/genome/read_simulator.h"
#include "src/pipeline/agd_store_util.h"
#include "src/storage/ceph_sim.h"

namespace {

using namespace persona;

int RunClusterExample(int nodes, size_t num_reads) {
  std::printf("== Cluster alignment: %d nodes, %zu reads ==\n\n", nodes, num_reads);

  genome::GenomeSpec genome_spec;
  genome_spec.num_contigs = 2;
  genome_spec.contig_length = 60'000;
  genome::ReferenceGenome reference = genome::GenerateGenome(genome_spec);
  align::SeedIndexOptions index_options;
  index_options.seed_length = 20;
  auto seed_index = align::SeedIndex::Build(reference, index_options);
  PERSONA_CHECK_OK(seed_index.status());
  align::SnapAligner aligner(&reference, &seed_index.value());

  genome::ReadSimSpec read_spec;
  genome::ReadSimulator simulator(&reference, read_spec);
  std::vector<genome::Read> reads = simulator.Simulate(num_reads);

  // Shared distributed store (7 simulated OSD nodes, 3-way replication).
  storage::CephSimConfig ceph_config;
  ceph_config.per_node_bandwidth = 0;  // unthrottled: this example shows balance, not I/O
  storage::CephSimStore store(ceph_config);
  auto manifest = pipeline::WriteAgdToStore(&store, "cluster", reads, 500);
  PERSONA_CHECK_OK(manifest.status());
  std::printf("dataset staged: %zu chunks across %d OSD nodes\n\n",
              manifest->chunks.size(), ceph_config.num_osd_nodes);

  cluster::ClusterOptions options;
  options.num_nodes = nodes;
  options.threads_per_node = 1;
  options.node_options.read_parallelism = 1;
  options.node_options.parse_parallelism = 1;
  options.node_options.align_nodes = 1;
  options.node_options.write_parallelism = 1;
  auto report = cluster::RunCluster(&store, *manifest, aligner, options);
  PERSONA_CHECK_OK(report.status());

  std::printf("cluster run: %.2fs end-to-end, %.2f Mbases/s aggregate\n", report->seconds,
              report->gigabases_per_sec * 1000);
  std::printf("%6s %12s %10s\n", "node", "chunks", "seconds");
  for (size_t node = 0; node < report->node_seconds.size(); ++node) {
    std::printf("%6zu %12llu %9.2fs\n", node,
                static_cast<unsigned long long>(report->node_chunks[node]),
                report->node_seconds[node]);
  }
  std::printf("completion-time imbalance: %.1f%%  (paper: \"no measurable imbalance\")\n",
              report->imbalance() * 100);

  // OSD balance: hash placement spreads chunk objects across storage nodes.
  std::printf("\nOSD bytes served: ");
  for (uint64_t bytes : store.PerNodeBytes()) {
    std::printf("%llu ", static_cast<unsigned long long>(bytes / 1024));
  }
  std::printf("(KB per node)\n");

  // Paper-scale what-if via the DES.
  std::printf("\nPaper-scale what-if (DES, full ERR174324 half-dataset):\n");
  cluster::DesParams params;
  for (int n : {8, 16, 32, 64}) {
    cluster::DesPoint point = cluster::SimulateCluster(params, n);
    std::printf("  %3d nodes -> %6.1fs/genome, %.3f Gbases/s\n", n, point.seconds,
                point.gigabases_per_sec);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int nodes = argc > 1 ? std::atoi(argv[1]) : 3;
  size_t num_reads = argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : 9'000;
  return RunClusterExample(nodes, num_reads);
}
