// Quickstart: the whole Persona pipeline on a small synthetic dataset, end to end.
//
//   1. generate a synthetic reference genome and simulate sequencer reads,
//   2. write the reads as gzipped FASTQ (what a sequencer would hand you),
//   3. import FASTQ -> AGD (columnar chunks + manifest),
//   4. align with the SNAP-style aligner through the dataflow pipeline,
//   5. sort the aligned dataset by mapped location,
//   6. mark duplicates,
//   7. export SAM for downstream tools,
// printing what happened at each step.
//
// Usage: quickstart [num_reads]   (default 5000)

#include <cstdio>
#include <cstdlib>

#include "src/align/accuracy.h"
#include "src/align/snap_aligner.h"
#include "src/genome/generator.h"
#include "src/genome/read_simulator.h"
#include "src/pipeline/agd_store_util.h"
#include "src/pipeline/convert.h"
#include "src/pipeline/dedup.h"
#include "src/pipeline/persona_pipeline.h"
#include "src/pipeline/sort.h"
#include "src/storage/memory_store.h"
#include "src/util/string_util.h"

namespace {

using namespace persona;  // example code; the library itself never does this

int RunQuickstart(size_t num_reads) {
  std::printf("== Persona quickstart (%zu reads) ==\n\n", num_reads);

  // 1. Reference + simulated reads.
  genome::GenomeSpec genome_spec;
  genome_spec.num_contigs = 2;
  genome_spec.contig_length = 100'000;
  genome::ReferenceGenome reference = genome::GenerateGenome(genome_spec);
  std::printf("[1] reference: %zu contigs, %lld bases\n", reference.num_contigs(),
              static_cast<long long>(reference.total_length()));

  genome::ReadSimSpec read_spec;
  read_spec.read_length = 101;
  read_spec.duplicate_fraction = 0.05;
  genome::ReadSimulator simulator(&reference, read_spec);
  std::vector<genome::Read> reads = simulator.Simulate(num_reads);
  std::printf("[1] simulated %zu 101-bp reads (0.5%% substitution, 5%% duplicates)\n\n",
              reads.size());

  // 2. Stage as gzipped FASTQ in an object store (sequencer output).
  storage::MemoryStore store;
  auto fastq_bytes = pipeline::WriteGzippedFastqToStore(&store, "sample", reads);
  PERSONA_CHECK_OK(fastq_bytes.status());
  std::printf("[2] wrote sample.fastq.gz: %s\n\n", HumanBytes(*fastq_bytes).c_str());

  // 3. Import to AGD.
  format::Manifest manifest;
  auto import_report =
      pipeline::ImportFastqToAgd(&store, "sample", 1'000, compress::CodecId::kZlib, &manifest);
  PERSONA_CHECK_OK(import_report.status());
  std::printf("[3] imported to AGD: %zu chunks x %lld records, %.1f MB/s\n",
              manifest.chunks.size(), static_cast<long long>(manifest.chunk_size),
              import_report->throughput_mb_per_sec);
  uint64_t agd_bytes = 0;
  std::vector<std::string> keys = store.List("sample-").value();
  for (const auto& key : keys) {
    agd_bytes += store.Size(key).value();
  }
  std::printf("[3] AGD dataset size: %s (FASTQ.gz was %s)\n\n",
              HumanBytes(agd_bytes).c_str(), HumanBytes(*fastq_bytes).c_str());

  // 4. Align through the dataflow pipeline.
  align::SeedIndexOptions index_options;
  index_options.seed_length = 20;
  auto seed_index = align::SeedIndex::Build(reference, index_options);
  PERSONA_CHECK_OK(seed_index.status());
  align::SnapAligner aligner(&reference, &seed_index.value());

  dataflow::Executor executor(2);  // the shared compute-thread resource
  pipeline::AlignPipelineOptions align_options;
  align_options.align_nodes = 2;
  align_options.collect_results = true;
  auto align_report =
      pipeline::RunPersonaAlignment(&store, manifest, aligner, &executor, align_options);
  PERSONA_CHECK_OK(align_report.status());
  manifest.columns.push_back(format::ResultsColumn());
  std::printf("[4] aligned %llu reads (%.2f Mbases/s through the pipeline)\n",
              static_cast<unsigned long long>(align_report->reads),
              static_cast<double>(align_report->bases) / align_report->seconds / 1e6);

  std::vector<align::AlignmentResult> flat;
  for (const auto& chunk : align_report->results) {
    flat.insert(flat.end(), chunk.begin(), chunk.end());
  }
  align::AccuracyReport accuracy = align::ScoreAlignments(reference, reads, flat);
  std::printf("[4] accuracy vs simulator truth: %.1f%% aligned, %.1f%% correct\n\n",
              accuracy.aligned_fraction() * 100, accuracy.correct_fraction() * 100);

  // 5. Sort by mapped location.
  pipeline::SortOptions sort_options;
  format::Manifest sorted;
  auto sort_report = pipeline::SortAgdDataset(&store, manifest, "sorted", sort_options, &sorted);
  PERSONA_CHECK_OK(sort_report.status());
  std::printf("[5] sorted into %zu chunks via %llu superchunks in %.2fs\n\n",
              sorted.chunks.size(),
              static_cast<unsigned long long>(sort_report->superchunks),
              sort_report->seconds);

  // 6. Mark duplicates (results column only).
  auto dedup_report = pipeline::DedupAgdResults(&store, sorted);
  PERSONA_CHECK_OK(dedup_report.status());
  std::printf("[6] duplicate marking: %llu of %llu reads flagged (%.2f M reads/s)\n\n",
              static_cast<unsigned long long>(dedup_report->duplicates),
              static_cast<unsigned long long>(dedup_report->total),
              dedup_report->reads_per_sec / 1e6);

  // 7. Export SAM.
  auto sam_report = pipeline::ExportAgdToSam(&store, sorted, reference, "final.sam");
  PERSONA_CHECK_OK(sam_report.status());
  std::printf("[7] exported %llu SAM records (%s)\n",
              static_cast<unsigned long long>(sam_report->records),
              HumanBytes(sam_report->bytes_out).c_str());

  std::printf("\nDone. The dataset lived as: FASTQ.gz -> AGD columns -> +results column\n"
              "-> sorted AGD -> dup-flagged results -> SAM, all inside one object store.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  size_t num_reads = 5'000;
  if (argc > 1) {
    num_reads = static_cast<size_t>(std::atoll(argv[1]));
  }
  return RunQuickstart(num_reads);
}
