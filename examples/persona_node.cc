// persona_node: worker daemon + coordinator for the distributed work service
// (paper §5.2's manifest server as a real network daemon; src/cluster/work_service.h).
//
// A coordinator process serves chunk leases for a dataset in a shared store
// directory; any number of worker processes — started before or after, on the same
// machine — connect over loopback, lease chunk groups, and run the job's tool
// against the store. Kill a worker mid-run and its leases are re-issued; the tools
// are deterministic, so re-executed chunks land bit-identical objects.
//
//   ./persona_node --serve /tmp/agd-store --port 7431        # terminal 1
//   ./persona_node --connect 7431 /tmp/agd-store             # terminals 2..N
//
// Usage:
//   persona_node --serve <store-dir> [--port N] [--tool align] [--group-size N]
//   persona_node --connect <port> <store-dir> [--name NAME]
//   persona_node --abandon-one <port>     # lease one group and exit holding it
//   persona_node --smoke                  # multi-process self-test (CTest/CI runs this)
//
// --smoke forks real worker processes with posix_spawn (exec'd, so it is safe under
// TSan), including one that abandons a lease, and checks the cluster output is
// bit-identical to a single-process offline run.

#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/align/snap_aligner.h"
#include "src/cluster/persona_node.h"
#include "src/cluster/work_client.h"
#include "src/cluster/work_service.h"
#include "src/genome/generator.h"
#include "src/genome/read_simulator.h"
#include "src/pipeline/agd_store_util.h"
#include "src/pipeline/persona_pipeline.h"
#include "src/storage/cache_store.h"
#include "src/storage/local_store.h"
#include "src/util/file_util.h"
#include "src/util/string_util.h"

extern char** environ;

namespace {

using namespace persona;  // example code; the library itself never does this

// The smoke test's synthetic scenario; workers rebuild it from these job params.
constexpr uint64_t kSmokeGenomeSeed = 4242;
constexpr int kSmokeContigs = 2;
constexpr int64_t kSmokeContigLength = 60'000;
constexpr int kSmokeSeedLength = 20;

int Fail(const Status& status, const char* what) {
  std::fprintf(stderr, "persona_node: %s: %s\n", what, status.ToString().c_str());
  return 1;
}

Result<std::unique_ptr<storage::LocalStore>> OpenStore(const std::string& dir) {
  return storage::LocalStore::Create(dir, nullptr);
}

int RunServe(int argc, char** argv) {
  std::string store_dir;
  uint16_t port = 0;
  cluster::JobSpec job;
  job.tool = "align";
  job.lease_timeout_sec = 30;
  job.heartbeat_interval_sec = 5;
  int64_t group_size = 1;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--tool") == 0 && i + 1 < argc) {
      job.tool = argv[++i];
    } else if (std::strcmp(argv[i], "--group-size") == 0 && i + 1 < argc) {
      group_size = std::atoll(argv[++i]);
    } else if (store_dir.empty()) {
      store_dir = argv[i];
    }
  }
  if (store_dir.empty()) {
    std::fprintf(stderr, "usage: persona_node --serve <store-dir> [--port N]\n");
    return 2;
  }
  auto store = OpenStore(store_dir);
  if (!store.ok()) {
    return Fail(store.status(), "opening store");
  }
  auto manifest = pipeline::ReadManifestFromStore(store->get());
  if (!manifest.ok()) {
    return Fail(manifest.status(), "reading manifest.json");
  }
  job.group_size = std::max<int64_t>(group_size, 1);
  job.num_groups = (static_cast<int64_t>(manifest->chunks.size()) + job.group_size - 1) /
                   job.group_size;
  job.params = cluster::GenomeJobParams(kSmokeGenomeSeed, kSmokeContigs,
                                        kSmokeContigLength, kSmokeSeedLength);
  cluster::WorkServiceOptions options;
  options.port = port;
  options.job = job;
  options.quarantine_manifest_path = store_dir + "/quarantine.json";
  auto service = cluster::WorkService::Start(options);
  if (!service.ok()) {
    return Fail(service.status(), "starting work service");
  }
  std::printf("work service: tool=%s groups=%lld port=%u\n", job.tool.c_str(),
              static_cast<long long>(job.num_groups), (*service)->port());
  std::printf("connect workers with: persona_node --connect %u %s\n",
              (*service)->port(), store_dir.c_str());
  if (Status status = (*service)->AwaitDrained(); !status.ok()) {
    return Fail(status, "awaiting drain");
  }
  std::printf("%s\n", (*service)->Report().ToJson().c_str());
  (*service)->Shutdown();
  return 0;
}

int RunConnect(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr, "usage: persona_node --connect <port> <store-dir> [--name N]\n");
    return 2;
  }
  cluster::PersonaNodeOptions options;
  options.port = static_cast<uint16_t>(std::atoi(argv[2]));
  options.node_name = "node-" + std::to_string(::getpid());
  for (int i = 4; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--name") == 0) {
      options.node_name = argv[i + 1];
    }
  }
  auto store = OpenStore(argv[3]);
  if (!store.ok()) {
    return Fail(store.status(), "opening store");
  }
  // Workers reread hot columns (references, shared manifests) across leases; a
  // memory-budgeted cache tier (PERSONA_CACHE_MB) turns those into memory hits.
  storage::CacheStoreOptions cache_options;
  cache_options.budget_bytes = storage::CacheBudgetFromEnv(cache_options.budget_bytes);
  storage::CacheStore cache(store->get(), cache_options);
  options.store = &cache;
  auto report = cluster::RunPersonaNode(options);
  if (!report.ok()) {
    return Fail(report.status(), "worker run");
  }
  const storage::StoreStats stats = cache.stats();
  std::printf("worker %s: %llu group(s), %llu record(s), %.2fs "
              "(cache: %llu hit(s), %llu miss(es))\n",
              options.node_name.c_str(),
              static_cast<unsigned long long>(report->groups_completed),
              static_cast<unsigned long long>(report->records), report->seconds,
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.cache_misses));
  return 0;
}

// Registers, leases exactly one group, and exits without completing or failing it —
// the abandoned lease must be re-issued to a surviving worker.
int RunAbandonOne(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: persona_node --abandon-one <port>\n");
    return 2;
  }
  cluster::WorkClientOptions options;
  options.port = static_cast<uint16_t>(std::atoi(argv[2]));
  options.node_name = "abandoner";
  auto client = cluster::WorkClient::Connect(options);
  if (!client.ok()) {
    return Fail(client.status(), "connecting");
  }
  auto lease = (*client)->NextLease();
  if (!lease.ok()) {
    return Fail(lease.status(), "leasing");
  }
  if (!lease->has_value()) {
    std::printf("abandoner: dataset already drained\n");
    return 0;
  }
  std::printf("abandoner: exiting while holding lease %llu (group %llu)\n",
              static_cast<unsigned long long>((**lease).lease_id),
              static_cast<unsigned long long>((**lease).group));
  return 0;  // exit releases the lease via disconnect; the service re-issues it
}

// ---- --smoke: the multi-process cluster self-test. ----

Result<pid_t> Spawn(const char* self, const std::vector<std::string>& args) {
  std::vector<std::string> owned = args;
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(self));
  for (std::string& arg : owned) {
    argv.push_back(arg.data());
  }
  argv.push_back(nullptr);
  pid_t pid = 0;
  const int rc = ::posix_spawn(&pid, self, nullptr, nullptr, argv.data(), environ);
  if (rc != 0) {
    return InternalError(StrFormat("posix_spawn: %s", std::strerror(rc)));
  }
  return pid;
}

Result<int> WaitFor(pid_t pid) {
  int wstatus = 0;
  if (::waitpid(pid, &wstatus, 0) < 0) {
    return InternalError(StrFormat("waitpid: %s", std::strerror(errno)));
  }
  if (!WIFEXITED(wstatus)) {
    return InternalError("worker did not exit normally");
  }
  return WEXITSTATUS(wstatus);
}

int RunSmoke(const char* self) {
  ScopedTempDir temp("persona-node-smoke");
  const std::string cluster_dir = temp.FilePath("cluster");
  const std::string offline_dir = temp.FilePath("offline");

  // Synthetic scenario (workers rebuild the same genome from job params).
  genome::GenomeSpec gspec;
  gspec.num_contigs = kSmokeContigs;
  gspec.contig_length = kSmokeContigLength;
  gspec.seed = kSmokeGenomeSeed;
  genome::ReferenceGenome reference = genome::GenerateGenome(gspec);
  genome::ReadSimSpec rspec;
  rspec.read_length = 101;
  rspec.seed = kSmokeGenomeSeed + 1;
  genome::ReadSimulator sim(&reference, rspec);
  std::vector<genome::Read> reads = sim.Simulate(3'000);

  // Stage the same dataset twice: one copy for the cluster, one for the offline
  // single-process parity run.
  std::vector<std::string> result_keys;
  {
    for (const std::string& dir : {cluster_dir, offline_dir}) {
      auto store = OpenStore(dir);
      if (!store.ok()) {
        return Fail(store.status(), "creating store");
      }
      auto manifest = pipeline::WriteAgdToStore(store->get(), "smk", reads, 250);
      if (!manifest.ok()) {
        return Fail(manifest.status(), "staging dataset");
      }
      if (result_keys.empty()) {
        for (size_t c = 0; c < manifest->chunks.size(); ++c) {
          result_keys.push_back(manifest->chunks[c].path_base + ".results");
        }
      }
    }
  }

  // Coordinator: align job, one chunk per group.
  cluster::WorkServiceOptions service_options;
  service_options.job.tool = "align";
  service_options.job.group_size = 1;
  service_options.job.num_groups = static_cast<int64_t>(result_keys.size());
  service_options.job.lease_timeout_sec = 30;
  service_options.job.heartbeat_interval_sec = 1;
  service_options.job.params = cluster::GenomeJobParams(
      kSmokeGenomeSeed, kSmokeContigs, kSmokeContigLength, kSmokeSeedLength);
  auto service = cluster::WorkService::Start(service_options);
  if (!service.ok()) {
    return Fail(service.status(), "starting work service");
  }
  const std::string port = std::to_string((*service)->port());

  // One worker leases a group and abandons it by exiting; the service must re-issue.
  {
    auto pid = Spawn(self, {"--abandon-one", port});
    if (!pid.ok()) {
      return Fail(pid.status(), "spawning abandoner");
    }
    auto exit_code = WaitFor(*pid);
    if (!exit_code.ok() || *exit_code != 0) {
      std::fprintf(stderr, "smoke: abandoner failed\n");
      return 1;
    }
  }

  // Three real exec'd workers race for the remaining leases.
  std::vector<pid_t> workers;
  for (int w = 0; w < 3; ++w) {
    auto pid = Spawn(self, {"--connect", port, cluster_dir, "--name",
                            "smoke-worker-" + std::to_string(w)});
    if (!pid.ok()) {
      return Fail(pid.status(), "spawning worker");
    }
    workers.push_back(*pid);
  }
  if (Status status = (*service)->AwaitDrained(120); !status.ok()) {
    return Fail(status, "awaiting drain");
  }
  for (pid_t pid : workers) {
    auto exit_code = WaitFor(pid);
    if (!exit_code.ok() || *exit_code != 0) {
      std::fprintf(stderr, "smoke: a worker exited non-zero\n");
      return 1;
    }
  }
  const cluster::ClusterWorkReport report = (*service)->Report();
  (*service)->Shutdown();
  if (!report.drained || report.completed != result_keys.size() ||
      report.quarantined != 0) {
    std::fprintf(stderr, "smoke: bad report: completed=%llu quarantined=%llu\n",
                 static_cast<unsigned long long>(report.completed),
                 static_cast<unsigned long long>(report.quarantined));
    return 1;
  }
  if (report.reissues < 1) {
    std::fprintf(stderr, "smoke: abandoned lease was never re-issued\n");
    return 1;
  }

  // Offline single-process run on the second copy; outputs must be bit-identical.
  {
    auto store = OpenStore(offline_dir);
    if (!store.ok()) {
      return Fail(store.status(), "reopening offline store");
    }
    auto manifest = pipeline::ReadManifestFromStore(store->get());
    if (!manifest.ok()) {
      return Fail(manifest.status(), "offline manifest");
    }
    align::SeedIndexOptions index_options;
    index_options.seed_length = kSmokeSeedLength;
    auto index = align::SeedIndex::Build(reference, index_options);
    if (!index.ok()) {
      return Fail(index.status(), "building seed index");
    }
    align::SnapAligner aligner(&reference, &*index);
    dataflow::Executor executor(2);
    pipeline::AlignPipelineOptions align_options;
    auto offline = pipeline::RunPersonaAlignment(store->get(), *manifest, aligner,
                                                 &executor, align_options);
    if (!offline.ok()) {
      return Fail(offline.status(), "offline alignment");
    }
    auto cluster_store = OpenStore(cluster_dir);
    if (!cluster_store.ok()) {
      return Fail(cluster_store.status(), "reopening cluster store");
    }
    int mismatches = 0;
    for (const std::string& key : result_keys) {
      Buffer from_cluster;
      Buffer from_offline;
      if (Status status = (*cluster_store)->Get(key, &from_cluster); !status.ok()) {
        return Fail(status, "reading cluster results");
      }
      if (Status status = (*store)->Get(key, &from_offline); !status.ok()) {
        return Fail(status, "reading offline results");
      }
      if (from_cluster.view() != from_offline.view()) {
        std::fprintf(stderr,
                     "smoke: %s differs between cluster and offline runs "
                     "(%zu vs %zu bytes)\n",
                     key.c_str(), from_cluster.size(), from_offline.size());
        mismatches++;
      }
    }
    if (mismatches != 0) {
      std::fprintf(stderr, "smoke: %d/%zu chunks differ\n", mismatches,
                   result_keys.size());
      return 1;
    }
  }

  std::printf("persona_node smoke: %llu chunk(s) aligned by 3 workers "
              "(+1 abandoned lease re-issued), outputs bit-identical to offline: OK\n",
              static_cast<unsigned long long>(report.completed));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--smoke") == 0) {
    return RunSmoke(argv[0]);
  }
  if (argc >= 2 && std::strcmp(argv[1], "--serve") == 0) {
    return RunServe(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "--connect") == 0) {
    return RunConnect(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "--abandon-one") == 0) {
    return RunAbandonOne(argc, argv);
  }
  std::fprintf(stderr,
               "usage:\n"
               "  persona_node --serve <store-dir> [--port N] [--tool T]\n"
               "  persona_node --connect <port> <store-dir> [--name N]\n"
               "  persona_node --abandon-one <port>\n"
               "  persona_node --smoke\n");
  return 2;
}
