// Variant calling end to end: the secondary-analysis pipeline the paper names as
// Persona's next integration step (§8), built from the same substrate the alignment
// benchmarks use.
//
//   1. generate a reference genome and a diploid "donor" carrying known variants,
//   2. simulate sequencer reads from both donor haplotypes (het sites -> ~50% AF),
//   3. stage the reads as an AGD dataset and align with the SNAP-style aligner
//      through the dataflow pipeline (executor resource, pooled buffers),
//   4. sort by mapped location and mark duplicates (results column only),
//   5. stream the sorted dataset through the pileup + Bayesian genotyper,
//   6. apply hard filters, emit VCF, and score calls against the injected truth.
//
// Usage: variant_call [coverage]   (default 30)

#include <cstdio>
#include <cstdlib>

#include "src/align/snap_aligner.h"
#include "src/genome/generator.h"
#include "src/genome/mutate.h"
#include "src/genome/read_simulator.h"
#include "src/pipeline/agd_store_util.h"
#include "src/pipeline/dedup.h"
#include "src/pipeline/persona_pipeline.h"
#include "src/pipeline/sort.h"
#include "src/storage/memory_store.h"
#include "src/util/string_util.h"
#include "src/variant/accuracy.h"
#include "src/variant/call_pipeline.h"

namespace {

using namespace persona;  // example code; the library itself never does this

void PrintTypeRow(const char* label, const variant::TypeAccuracy& accuracy) {
  std::printf("  %-10s truth %4lld  called %4lld  TP %4lld  precision %.3f  recall %.3f"
              "  F1 %.3f\n",
              label, static_cast<long long>(accuracy.truth),
              static_cast<long long>(accuracy.called),
              static_cast<long long>(accuracy.true_positives), accuracy.Precision(),
              accuracy.Recall(), accuracy.F1());
}

int RunVariantCall(double coverage) {
  std::printf("== Persona variant calling (%.0fx coverage) ==\n\n", coverage);

  // 1. Reference + diploid donor with a known truth set.
  genome::GenomeSpec genome_spec;
  genome_spec.num_contigs = 2;
  genome_spec.contig_length = 60'000;
  genome::ReferenceGenome reference = genome::GenerateGenome(genome_spec);

  genome::MutationSpec mutation_spec;
  mutation_spec.snv_rate = 1e-3;
  mutation_spec.insertion_rate = 1.2e-4;
  mutation_spec.deletion_rate = 1.2e-4;
  mutation_spec.min_spacing = 150;
  genome::DonorGenome donor = genome::MutateGenome(reference, mutation_spec);
  std::printf("[1] reference: %lld bases; donor carries %zu variants "
              "(%lld SNV, %lld INS, %lld DEL)\n",
              static_cast<long long>(reference.total_length()), donor.variants.size(),
              static_cast<long long>(donor.CountType(genome::VariantType::kSnv)),
              static_cast<long long>(donor.CountType(genome::VariantType::kInsertion)),
              static_cast<long long>(donor.CountType(genome::VariantType::kDeletion)));

  // 2. Reads from both haplotypes.
  const int read_length = 101;
  const size_t reads_per_haplotype = static_cast<size_t>(
      coverage * static_cast<double>(reference.total_length()) / read_length / 2);
  std::vector<genome::Read> reads;
  for (int hap = 0; hap < 2; ++hap) {
    genome::ReadSimSpec read_spec;
    read_spec.read_length = read_length;
    read_spec.substitution_rate = 0.003;
    read_spec.duplicate_fraction = 0.03;
    read_spec.seed = 500 + static_cast<uint64_t>(hap);
    genome::ReadSimulator simulator(&donor.haplotypes[static_cast<size_t>(hap)],
                                    read_spec);
    std::vector<genome::Read> hap_reads = simulator.Simulate(reads_per_haplotype);
    reads.insert(reads.end(), hap_reads.begin(), hap_reads.end());
  }
  std::printf("[2] simulated %zu reads (2 haplotypes x %zu)\n\n", reads.size(),
              reads_per_haplotype);

  // 3. Stage AGD + align through the dataflow pipeline.
  storage::MemoryStore store;
  auto manifest = pipeline::WriteAgdToStore(&store, "donor", reads, 4'000);
  PERSONA_CHECK_OK(manifest.status());

  align::SeedIndexOptions seed_options;
  seed_options.seed_length = 20;
  auto seed_index = align::SeedIndex::Build(reference, seed_options);
  PERSONA_CHECK_OK(seed_index.status());
  align::SnapAligner aligner(&reference, &*seed_index);

  dataflow::Executor executor(3);
  pipeline::AlignPipelineOptions align_options;
  align_options.align_nodes = 2;
  align_options.subchunk_size = 512;
  auto align_report =
      pipeline::RunPersonaAlignment(&store, *manifest, aligner, &executor, align_options);
  PERSONA_CHECK_OK(align_report.status());
  format::Manifest aligned = *manifest;
  aligned.columns.push_back(format::ResultsColumn());
  aligned.SetReference(reference);
  std::printf("[3] aligned %llu reads in %.2f s (%.2f Mbases/s through the dataflow "
              "graph)\n\n",
              static_cast<unsigned long long>(align_report->reads),
              align_report->seconds,
              static_cast<double>(align_report->bases) / align_report->seconds / 1e6);

  // 4. Sort by location + mark duplicates.
  pipeline::SortOptions sort_options;
  sort_options.key = pipeline::SortKey::kLocation;
  format::Manifest sorted;
  auto sort_report =
      pipeline::SortAgdDataset(&store, aligned, "sorted", sort_options, &sorted);
  PERSONA_CHECK_OK(sort_report.status());
  auto dedup_report = pipeline::DedupAgdResults(&store, sorted);
  PERSONA_CHECK_OK(dedup_report.status());
  std::printf("[4] sorted in %.2f s; duplicate marking flagged %llu of %llu reads "
              "(results column only)\n\n",
              sort_report->seconds,
              static_cast<unsigned long long>(dedup_report->duplicates),
              static_cast<unsigned long long>(dedup_report->total));

  // 5. Pileup + genotyping + hard filters, streaming chunk by chunk.
  variant::CallPipelineOptions call_options;
  call_options.sample_name = "donor";
  call_options.filter.min_qual = 20;
  call_options.filter.min_depth = 6;
  auto call_report = variant::CallVariantsAgd(&store, sorted, reference, call_options);
  PERSONA_CHECK_OK(call_report.status());
  std::printf("[5] piled %llu columns from %llu reads in %.2f s; %llu candidate calls, "
              "%llu PASS\n",
              static_cast<unsigned long long>(call_report->columns_piled),
              static_cast<unsigned long long>(call_report->reads_used),
              call_report->seconds,
              static_cast<unsigned long long>(call_report->records_called),
              static_cast<unsigned long long>(call_report->records_passing));
  std::printf("[5] coverage: mean %.1fx, max %d, breadth(>=10x) %.1f%%\n",
              call_report->coverage.MeanDepth(), call_report->coverage.max_depth,
              call_report->coverage.Breadth(10) * 100);
  std::printf("[5] selective column I/O: %s read, %s written (VCF stored as "
              "sorted.vcf)\n\n",
              HumanBytes(call_report->store_stats.bytes_read).c_str(),
              HumanBytes(call_report->store_stats.bytes_written).c_str());

  // 6. Score against the injected truth.
  variant::VariantAccuracy accuracy =
      variant::ScoreVariants(donor.variants, call_report->records, /*passing_only=*/true,
                             &reference);
  std::printf("[6] accuracy of PASS calls vs injected truth:\n");
  PrintTypeRow("overall", accuracy.overall);
  PrintTypeRow("SNV", accuracy.snv);
  PrintTypeRow("insertion", accuracy.insertion);
  PrintTypeRow("deletion", accuracy.deletion);
  std::printf("  genotype concordance among TPs: %.3f\n", accuracy.GenotypeConcordance());

  std::printf("\nDone. First VCF lines:\n");
  size_t shown = 0;
  size_t pos = 0;
  while (pos < call_report->vcf_text.size() && shown < 12) {
    size_t eol = call_report->vcf_text.find('\n', pos);
    std::printf("  %s\n",
                call_report->vcf_text.substr(pos, eol - pos).c_str());
    pos = eol + 1;
    ++shown;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  double coverage = 30;
  if (argc > 1) {
    coverage = std::atof(argv[1]);
    if (coverage < 1 || coverage > 200) {
      std::fprintf(stderr, "coverage must be in [1, 200]\n");
      return 1;
    }
  }
  return RunVariantCall(coverage);
}
