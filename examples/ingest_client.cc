// Stream-ingest client: streams a FASTQ file to a running ingest_service over the
// length-prefixed wire protocol and waits for the final Done summary. Optionally
// polls the session's live stats mid-stream (--stats); because control replies share
// the data path's ordering, a backpressured service answers them late — watching the
// reply latency is watching the backpressure.
//
// Usage: ingest_client <port> <dataset> <fastq-file> [--window-bytes N] [--stats]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/ingest/socket.h"
#include "src/ingest/wire.h"
#include "src/util/file_util.h"
#include "src/util/stopwatch.h"
#include "src/util/string_util.h"

namespace {

using namespace persona;  // example code; the library itself never does this

int Usage() {
  std::fprintf(stderr,
               "usage: ingest_client <port> <dataset> <fastq-file> "
               "[--window-bytes N] [--stats]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) {
    return Usage();
  }
  const auto port = static_cast<uint16_t>(std::atoi(argv[1]));
  const std::string dataset = argv[2];
  const std::string path = argv[3];
  size_t window = 256 * 1024;
  bool want_stats = false;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--window-bytes") == 0 && i + 1 < argc) {
      window = static_cast<size_t>(std::atoll(argv[++i]));
      if (window == 0) {
        return Usage();  // 0 (or unparseable) would loop forever sending nothing
      }
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      want_stats = true;
    } else {
      return Usage();
    }
  }

  auto fastq = ReadFileToString(path);
  PERSONA_CHECK_OK(fastq.status());
  auto conn = ingest::ConnectLoopback(port);
  PERSONA_CHECK_OK(conn.status());

  Stopwatch timer;
  PERSONA_CHECK_OK(WriteFrame(*conn, ingest::FrameType::kStart, dataset));
  ingest::Frame frame;
  PERSONA_CHECK_OK(ReadFrame(*conn, &frame));
  if (frame.type != ingest::FrameType::kStarted) {
    std::fprintf(stderr, "server refused session: %s\n", frame.payload.c_str());
    return 1;
  }

  const std::string& text = *fastq;
  size_t sent_windows = 0;
  for (size_t offset = 0; offset < text.size(); offset += window) {
    const size_t len = std::min(window, text.size() - offset);
    PERSONA_CHECK_OK(WriteFrame(*conn, ingest::FrameType::kData,
                                std::string_view(text).substr(offset, len)));
    // Every ~64 windows, ask for live stats and wait for the answer before sending
    // more data. Blocking here is deliberate twice over: the reply's latency is the
    // server's backpressure made visible, and a fire-and-forget client that never
    // reads replies while streaming would eventually deadlock both sides on full
    // socket buffers.
    if (want_stats && ++sent_windows % 64 == 0) {
      PERSONA_CHECK_OK(WriteFrame(*conn, ingest::FrameType::kStatsRequest, ""));
      ingest::Frame reply;
      PERSONA_CHECK_OK(ReadFrame(*conn, &reply));
      if (reply.type != ingest::FrameType::kStatsReply) {
        std::fprintf(stderr, "ingest failed: %s\n", reply.payload.c_str());
        return 1;
      }
      std::printf("stats: %s\n", reply.payload.c_str());
    }
  }
  PERSONA_CHECK_OK(WriteFrame(*conn, ingest::FrameType::kEnd, ""));

  while (true) {
    PERSONA_CHECK_OK(ReadFrame(*conn, &frame));
    if (frame.type == ingest::FrameType::kStatsReply) {
      std::printf("stats: %s\n", frame.payload.c_str());
      continue;
    }
    break;
  }
  const double seconds = timer.ElapsedSeconds();
  if (frame.type != ingest::FrameType::kDone) {
    std::fprintf(stderr, "ingest failed: %s\n", frame.payload.c_str());
    return 1;
  }
  std::printf("done in %.2fs (%s of FASTQ, %.1f MB/s): %s\n", seconds,
              HumanBytes(text.size()).c_str(),
              static_cast<double>(text.size()) / 1e6 / (seconds > 0 ? seconds : 1),
              frame.payload.c_str());
  return 0;
}
