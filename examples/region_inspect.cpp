// Region inspection: a minimal samtools-tview analogue over AGD.
//
// Builds a small aligned+sorted dataset, then for one samtools-style region string
// ("chr1:2000-2120" etc.):
//   1. filters the dataset down to reads overlapping the region (flag/region predicate,
//      selective column I/O — paper §8 "comprehensive data filtering"),
//   2. piles the region up and prints a text view: reference row, per-position depth,
//      consensus row, and mismatch markers,
//   3. reports coverage statistics and any variants called inside the region.
//
// Usage: region_inspect [region]   (default chr1:2000-2080)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/align/snap_aligner.h"
#include "src/compress/base_compaction.h"
#include "src/format/agd_chunk.h"
#include "src/genome/generator.h"
#include "src/genome/mutate.h"
#include "src/genome/read_simulator.h"
#include "src/pipeline/agd_store_util.h"
#include "src/pipeline/dedup.h"
#include "src/pipeline/filter.h"
#include "src/pipeline/sort.h"
#include "src/storage/memory_store.h"
#include "src/util/string_util.h"
#include "src/variant/caller.h"
#include "src/variant/coverage.h"
#include "src/variant/pileup.h"

namespace {

using namespace persona;  // example code; the library itself never does this

constexpr int kReadLength = 101;

// Builds reference + donor + aligned-sorted-deduped dataset in `store`; returns the
// sorted manifest.
format::Manifest BuildDemoDataset(storage::MemoryStore* store,
                                  genome::ReferenceGenome* reference) {
  genome::GenomeSpec genome_spec;
  genome_spec.num_contigs = 2;
  genome_spec.contig_length = 30'000;
  *reference = genome::GenerateGenome(genome_spec);

  genome::MutationSpec mutation_spec;
  mutation_spec.snv_rate = 1.5e-3;
  mutation_spec.min_spacing = 60;
  genome::DonorGenome donor = genome::MutateGenome(*reference, mutation_spec);

  std::vector<genome::Read> reads;
  const size_t per_haplotype = static_cast<size_t>(
      30.0 * static_cast<double>(reference->total_length()) / kReadLength / 2);
  for (int hap = 0; hap < 2; ++hap) {
    genome::ReadSimSpec read_spec;
    read_spec.read_length = kReadLength;
    read_spec.seed = 42 + static_cast<uint64_t>(hap);
    genome::ReadSimulator simulator(&donor.haplotypes[static_cast<size_t>(hap)],
                                    read_spec);
    std::vector<genome::Read> hap_reads = simulator.Simulate(per_haplotype);
    reads.insert(reads.end(), hap_reads.begin(), hap_reads.end());
  }

  auto manifest = pipeline::WriteAgdToStore(store, "demo", reads, 4'000);
  PERSONA_CHECK_OK(manifest.status());

  align::SeedIndexOptions seed_options;
  seed_options.seed_length = 20;
  auto seed_index = align::SeedIndex::Build(*reference, seed_options);
  PERSONA_CHECK_OK(seed_index.status());
  align::SnapAligner aligner(reference, &*seed_index);

  format::Manifest aligned = *manifest;
  aligned.columns.push_back(format::ResultsColumn());
  aligned.SetReference(*reference);
  Buffer file;
  size_t read_index = 0;
  for (size_t ci = 0; ci < manifest->chunks.size(); ++ci) {
    format::ChunkBuilder builder(format::RecordType::kResults, compress::CodecId::kZlib);
    for (int64_t i = 0; i < manifest->chunks[ci].num_records; ++i, ++read_index) {
      builder.AddResult(aligner.Align(reads[read_index], nullptr));
    }
    PERSONA_CHECK_OK(builder.Finalize(&file));
    PERSONA_CHECK_OK(store->Put(manifest->chunks[ci].path_base + ".results", file));
  }

  format::Manifest sorted;
  PERSONA_CHECK_OK(
      pipeline::SortAgdDataset(store, aligned, "sorted", {}, &sorted).status());
  PERSONA_CHECK_OK(pipeline::DedupAgdResults(store, sorted).status());
  return sorted;
}

int Inspect(const std::string& region_text) {
  storage::MemoryStore store;
  genome::ReferenceGenome reference;
  format::Manifest sorted = BuildDemoDataset(&store, &reference);
  std::printf("dataset: %lld reads, sorted + duplicate-marked\n\n",
              static_cast<long long>(sorted.total_records()));

  auto region = pipeline::ParseRegion(reference, region_text);
  if (!region.ok()) {
    std::fprintf(stderr, "bad region '%s': %s\n", region_text.c_str(),
                 region.status().ToString().c_str());
    return 1;
  }

  // 1. Filter to reads overlapping the region. A read starting up to a read length
  //    before the region can still overlap it.
  pipeline::ReadFilterSpec spec;
  spec.excluded_flags = align::kFlagUnmapped | align::kFlagDuplicate;
  spec.region_begin = std::max<genome::GenomeLocation>(0, region->begin - kReadLength);
  spec.region_end = region->end;
  format::Manifest window;
  auto filter_report = pipeline::FilterAgdDataset(&store, sorted, "window", spec, {}, &window);
  PERSONA_CHECK_OK(filter_report.status());
  std::printf(
      "region %s -> global [%lld, %lld): %llu candidate reads "
      "(%s transferred, %llu cache hits / %llu misses)\n\n",
      region_text.c_str(), static_cast<long long>(region->begin),
      static_cast<long long>(region->end),
      static_cast<unsigned long long>(filter_report->records_out),
      HumanBytes(filter_report->store_stats.bytes_read).c_str(),
      static_cast<unsigned long long>(filter_report->store_stats.cache_hits),
      static_cast<unsigned long long>(filter_report->store_stats.cache_misses));

  // 2. Pile up the filtered window.
  variant::PileupEngine engine(&reference, {});
  Buffer bases_file;
  Buffer qual_file;
  Buffer results_file;
  for (size_t ci = 0; ci < window.chunks.size(); ++ci) {
    PERSONA_CHECK_OK(store.Get(window.ChunkFileName(ci, "bases"), &bases_file));
    PERSONA_CHECK_OK(store.Get(window.ChunkFileName(ci, "qual"), &qual_file));
    PERSONA_CHECK_OK(store.Get(window.ChunkFileName(ci, "results"), &results_file));
    auto bases = format::ParsedChunk::Parse(bases_file.span());
    auto quals = format::ParsedChunk::Parse(qual_file.span());
    auto results = format::ParsedChunk::Parse(results_file.span());
    PERSONA_CHECK_OK(bases.status());
    PERSONA_CHECK_OK(quals.status());
    PERSONA_CHECK_OK(results.status());
    for (size_t i = 0; i < results->record_count(); ++i) {
      PERSONA_CHECK_OK(engine.AddRead(*bases->GetBases(i), *quals->GetString(i),
                                      *results->GetResult(i)));
    }
  }
  std::vector<variant::PileupColumn> columns;
  engine.FlushAll(&columns);

  // 3. Text view of the region (first 80 columns), consensus + depth + mismatch marks.
  std::string ref_row;
  std::string consensus_row;
  std::string mark_row;
  std::string depth_row;
  variant::GenotypeCaller caller(&reference, {});
  std::vector<format::VariantRecord> calls;
  variant::CoverageAccumulator coverage(region->end - region->begin, {});
  for (const variant::PileupColumn& column : columns) {
    if (column.location < region->begin || column.location >= region->end) {
      continue;
    }
    coverage.Add(column);
    std::vector<format::VariantRecord> site = caller.CallSite(column);
    calls.insert(calls.end(), site.begin(), site.end());
    if (ref_row.size() >= 80) {
      continue;
    }
    const std::array<int32_t, 5> counts = column.BaseCounts();
    int best = 0;
    for (int code = 1; code < 4; ++code) {
      if (counts[static_cast<size_t>(code)] > counts[static_cast<size_t>(best)]) {
        best = code;
      }
    }
    const char consensus =
        column.depth() == 0 ? '.' : compress::CodeToBase(static_cast<uint8_t>(best));
    ref_row.push_back(column.ref_base);
    consensus_row.push_back(consensus);
    mark_row.push_back(consensus != '.' && consensus != column.ref_base ? '^' : ' ');
    const int32_t depth = column.spanning_reads;
    depth_row.push_back(depth >= 36 ? '+' : "0123456789abcdefghijklmnopqrstuvwxyz"[depth]);
  }
  std::printf("ref       %s\nconsensus %s\n          %s\ndepth     %s\n",
              ref_row.c_str(), consensus_row.c_str(), mark_row.c_str(),
              depth_row.c_str());
  std::printf("(depth row: 0-9/a-z = 0..35 spanning reads, '+' = 36+; '^' marks "
              "consensus/reference disagreement)\n\n");

  // 4. Coverage + calls.
  const variant::CoverageReport& cov = coverage.report();
  std::printf("coverage in region: mean %.1fx, max %d, breadth(>=10x) %.1f%%\n\n",
              cov.MeanDepth(), cov.max_depth, cov.Breadth(10) * 100);
  if (calls.empty()) {
    std::printf("no variants called in region\n");
  } else {
    std::printf("variants called in region:\n");
    for (const format::VariantRecord& call : calls) {
      std::printf("  %s:%lld %s>%s qual %.0f GT %s (depth %d, AF %.2f)\n",
                  reference.contig(static_cast<size_t>(call.contig_index)).name.c_str(),
                  static_cast<long long>(call.position + 1), call.ref_allele.c_str(),
                  call.alt_allele.c_str(), call.qual, call.genotype.c_str(), call.depth,
                  call.alt_fraction);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return Inspect(argc > 1 ? argv[1] : "chr1:2000-2080");
}
