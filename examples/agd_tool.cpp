// agd_tool: a small CLI for AGD datasets on the local filesystem — create a demo
// dataset, inspect a manifest, verify chunk integrity, and dump records. This is the
// analogue of the `persona` command-line utility that ships with the original system.
//
// Usage:
//   agd_tool create   <dir> [num_reads]   generate a demo dataset into <dir>
//   agd_tool info     <dir>               print manifest summary
//   agd_tool verify   <dir>               parse every chunk, check counts/CRCs
//   agd_tool rowcheck <dir>               validate the row-grouping invariant (§3)
//   agd_tool dump     <dir> <chunk> [n]   print the first n records of a chunk
//   agd_tool get      <dir> <record-id>   random access: fetch one record by id

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/format/agd_dataset.h"
#include "src/format/agd_index.h"
#include "src/genome/generator.h"
#include "src/genome/read_simulator.h"
#include "src/util/string_util.h"

namespace {

using namespace persona;

int Create(const std::string& dir, size_t num_reads) {
  genome::GenomeSpec genome_spec;
  genome_spec.num_contigs = 2;
  genome_spec.contig_length = 50'000;
  genome::ReferenceGenome reference = genome::GenerateGenome(genome_spec);
  genome::ReadSimSpec read_spec;
  genome::ReadSimulator simulator(&reference, read_spec);

  format::AgdWriter::Options options;
  options.chunk_size = 1'000;
  auto writer = format::AgdWriter::Create(dir, "demo", options);
  PERSONA_CHECK_OK(writer.status());
  for (size_t i = 0; i < num_reads; ++i) {
    PERSONA_CHECK_OK(writer->Append(simulator.NextRead()));
  }
  PERSONA_CHECK_OK(writer->Finalize());
  std::printf("created dataset 'demo' in %s: %zu reads, %zu chunks\n", dir.c_str(),
              num_reads, writer->manifest().chunks.size());
  return 0;
}

int Info(const std::string& dir) {
  auto dataset = format::AgdDataset::Open(dir);
  PERSONA_CHECK_OK(dataset.status());
  const format::Manifest& manifest = dataset->manifest();
  std::printf("dataset: %s\n", manifest.name.c_str());
  std::printf("records: %lld (chunk size %lld)\n",
              static_cast<long long>(manifest.total_records()),
              static_cast<long long>(manifest.chunk_size));
  std::printf("columns:");
  for (const auto& column : manifest.columns) {
    std::printf(" %s(%s,%s)", column.name.c_str(),
                std::string(format::RecordTypeName(column.type)).c_str(),
                std::string(compress::CodecName(column.codec)).c_str());
  }
  std::printf("\nchunks:\n");
  for (size_t i = 0; i < manifest.chunks.size(); ++i) {
    const auto& chunk = manifest.chunks[i];
    std::printf("  [%zu] %s: records %lld..%lld\n", i, chunk.path_base.c_str(),
                static_cast<long long>(chunk.first_record),
                static_cast<long long>(chunk.first_record + chunk.num_records - 1));
  }
  if (!manifest.reference_contigs.empty()) {
    std::printf("reference:");
    for (const auto& contig : manifest.reference_contigs) {
      std::printf(" %s:%lld", contig.name.c_str(), static_cast<long long>(contig.length));
    }
    std::printf("\n");
  }
  return 0;
}

int Verify(const std::string& dir) {
  auto dataset = format::AgdDataset::Open(dir);
  PERSONA_CHECK_OK(dataset.status());
  auto verified = dataset->Verify();
  if (!verified.ok()) {
    std::printf("FAILED: %s\n", verified.status().ToString().c_str());
    return 1;
  }
  std::printf("OK: %lld records verified across %zu chunks x %zu columns\n",
              static_cast<long long>(*verified), dataset->num_chunks(),
              dataset->manifest().columns.size());
  return 0;
}

int Dump(const std::string& dir, size_t chunk_index, size_t limit) {
  auto dataset = format::AgdDataset::Open(dir);
  PERSONA_CHECK_OK(dataset.status());
  auto bases = dataset->ReadChunk(chunk_index, "bases");
  auto qual = dataset->ReadChunk(chunk_index, "qual");
  auto metadata = dataset->ReadChunk(chunk_index, "metadata");
  PERSONA_CHECK_OK(bases.status());
  PERSONA_CHECK_OK(qual.status());
  PERSONA_CHECK_OK(metadata.status());
  size_t n = std::min(limit, bases->record_count());
  for (size_t i = 0; i < n; ++i) {
    std::printf("@%s\n%s\n+\n%s\n", std::string(*metadata->GetString(i)).c_str(),
                bases->GetBases(i)->c_str(), std::string(*qual->GetString(i)).c_str());
  }
  return 0;
}

int RowCheck(const std::string& dir) {
  auto dataset = format::AgdDataset::Open(dir);
  PERSONA_CHECK_OK(dataset.status());
  Status status = format::ValidateRowGrouping(*dataset);
  if (!status.ok()) {
    std::printf("ROW-GROUP VIOLATION: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("OK: record indices align across all %zu columns of %zu chunks\n",
              dataset->manifest().columns.size(), dataset->num_chunks());
  return 0;
}

int Get(const std::string& dir, int64_t record_id) {
  auto reader = format::RandomAccessReader::Open(dir);
  PERSONA_CHECK_OK(reader.status());
  auto read = reader->GetRead(record_id);
  if (!read.ok()) {
    std::fprintf(stderr, "error: %s\n", read.status().ToString().c_str());
    return 1;
  }
  std::printf("record %lld of %lld\n@%s\n%s\n+\n%s\n",
              static_cast<long long>(record_id),
              static_cast<long long>(reader->total_records()), read->metadata.c_str(),
              read->bases.c_str(), read->qual.c_str());
  if (reader->manifest().HasColumn("results")) {
    auto result = reader->GetResult(record_id);
    PERSONA_CHECK_OK(result.status());
    std::printf("result: loc=%lld mapq=%d flags=0x%x cigar=%s\n",
                static_cast<long long>(result->location), result->mapq, result->flags,
                result->cigar.empty() ? "*" : result->cigar.c_str());
  }
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: agd_tool create   <dir> [num_reads]\n"
               "       agd_tool info     <dir>\n"
               "       agd_tool verify   <dir>\n"
               "       agd_tool rowcheck <dir>\n"
               "       agd_tool dump     <dir> <chunk> [n]\n"
               "       agd_tool get      <dir> <record-id>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    return Usage();
  }
  std::string command = argv[1];
  std::string dir = argv[2];
  if (command == "create") {
    return Create(dir, argc > 3 ? static_cast<size_t>(std::atoll(argv[3])) : 5'000);
  }
  if (command == "info") {
    return Info(dir);
  }
  if (command == "verify") {
    return Verify(dir);
  }
  if (command == "rowcheck") {
    return RowCheck(dir);
  }
  if (command == "dump" && argc >= 4) {
    return Dump(dir, static_cast<size_t>(std::atoll(argv[3])),
                argc > 4 ? static_cast<size_t>(std::atoll(argv[4])) : 4);
  }
  if (command == "get" && argc >= 4) {
    return Get(dir, std::atoll(argv[3]));
  }
  return Usage();
}
