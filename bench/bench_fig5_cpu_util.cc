// Figure 5 reproduction: CPU utilization timelines, SNAP (gzip FASTQ, row output) vs
// Persona (AGD) on the single-disk and RAID0 configurations.
//
// Shape to reproduce: on a single disk, standalone SNAP shows a cyclical utilization
// pattern (bursty buffer-cache writeback competes with reads, starving compute) and a
// lower average; Persona stays near-flat and CPU-bound on both configurations.

#include <memory>

#include "bench/bench_common.h"
#include "src/pipeline/agd_store_util.h"
#include "src/pipeline/baseline_standalone.h"
#include "src/pipeline/persona_pipeline.h"
#include "src/storage/memory_store.h"

namespace persona::bench {
namespace {

constexpr double kSampleSec = 0.1;

struct Timeline {
  std::vector<double> utilization;
  double mean = 0;
  double dips = 0;  // fraction of samples below 50% utilization
};

Timeline Summarize(const std::vector<double>& samples) {
  Timeline t;
  t.utilization = samples;
  if (samples.empty()) {
    return t;
  }
  double sum = 0;
  int dips = 0;
  for (double u : samples) {
    sum += u;
    dips += u < 0.5 ? 1 : 0;
  }
  t.mean = sum / static_cast<double>(samples.size());
  t.dips = static_cast<double>(dips) / static_cast<double>(samples.size());
  return t;
}

Timeline RunStandalone(const Scenario& scenario, double device_scale, bool raid) {
  auto device = std::make_shared<storage::ThrottledDevice>(
      raid ? storage::DeviceProfile::Raid0(device_scale)
           : storage::DeviceProfile::SingleDisk(device_scale));
  storage::MemoryStore store(device);
  PERSONA_CHECK_OK(pipeline::WriteGzippedFastqToStore(&store, "ds", scenario.reads).status());

  align::SnapAligner aligner(&scenario.reference, scenario.seed_index.get());
  pipeline::StandaloneOptions options;
  options.threads = 2;
  options.batch_reads = 128;
  options.writeback_threshold = 1 << 20;  // bursty writeback
  options.utilization_sample_sec = kSampleSec;
  auto report = pipeline::RunStandaloneAlignment(&store, "ds", scenario.reference, aligner,
                                                 options);
  PERSONA_CHECK_OK(report.status());
  return Summarize(report->utilization);
}

Timeline RunPersona(const Scenario& scenario, double device_scale, bool raid) {
  auto device = std::make_shared<storage::ThrottledDevice>(
      raid ? storage::DeviceProfile::Raid0(device_scale)
           : storage::DeviceProfile::SingleDisk(device_scale));
  storage::MemoryStore store(device);
  auto manifest = pipeline::WriteAgdToStore(&store, "ds", scenario.reads, 500);
  PERSONA_CHECK_OK(manifest.status());

  align::SnapAligner aligner(&scenario.reference, scenario.seed_index.get());
  dataflow::Executor executor(2);
  pipeline::AlignPipelineOptions options;
  options.align_nodes = 2;
  options.subchunk_size = 128;
  options.utilization_sample_sec = kSampleSec;
  auto report = pipeline::RunPersonaAlignment(&store, *manifest, aligner, &executor, options);
  PERSONA_CHECK_OK(report.status());

  // Persona utilization: busy fraction of the aligner stage (compute), as Fig. 5 plots
  // CPU utilization of the aligning machine.
  std::vector<double> samples;
  for (const auto& sample : report->utilization) {
    samples.push_back(sample.total_utilization);
  }
  return Summarize(samples);
}

void PrintTimeline(const char* name, const Timeline& t) {
  std::printf("%-28s mean=%5.1f%%  samples<50%%=%4.1f%%  series:", name, t.mean * 100,
              t.dips * 100);
  for (double u : t.utilization) {
    std::printf(" %3.0f", u * 100);
  }
  std::printf("\n");
}

void Run() {
  PrintHeader("Figure 5: CPU utilization, SNAP(FASTQ) vs Persona(AGD) (scaled)");
  ScenarioSpec spec;
  spec.num_reads = 12'000;
  Scenario scenario = BuildScenario(spec);
  PrintCalibration(scenario);
  // Starve the single-disk config a little harder than Table 1 so the writeback cycles
  // are visible within a short run (the paper's runs are 500-800 s; ours are ~2 s).
  double single_scale = scenario.device_scale * 0.6;

  std::printf("\n(a) Single disk (utilization %% per %.2fs sample)\n", kSampleSec);
  Timeline snap_single = RunStandalone(scenario, single_scale, /*raid=*/false);
  Timeline persona_single = RunPersona(scenario, single_scale, /*raid=*/false);
  PrintTimeline("SNAP  (gzip FASTQ -> SAM)", snap_single);
  PrintTimeline("Persona (AGD)", persona_single);

  std::printf("\n(b) RAID0\n");
  Timeline snap_raid = RunStandalone(scenario, scenario.device_scale, /*raid=*/true);
  Timeline persona_raid = RunPersona(scenario, scenario.device_scale, /*raid=*/true);
  PrintTimeline("SNAP  (gzip FASTQ -> SAM)", snap_raid);
  PrintTimeline("Persona (AGD)", persona_raid);

  std::printf("\nShape check (paper): single-disk SNAP mean << Persona mean with cyclic"
              " dips;\nRAID0 brings SNAP to parity.\n");
  std::printf("single-disk: SNAP %.1f%% vs Persona %.1f%% | RAID0: SNAP %.1f%% vs "
              "Persona %.1f%%\n",
              snap_single.mean * 100, persona_single.mean * 100, snap_raid.mean * 100,
              persona_raid.mean * 100);
}

}  // namespace
}  // namespace persona::bench

int main() {
  persona::bench::Run();
  return 0;
}
