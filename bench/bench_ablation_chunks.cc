// Ablation benches for AGD design choices called out in §3 and §4.5:
//   (1) chunk size: compression ratio and per-chunk latency vs size (larger chunks
//       compress better and amortize per-op costs; smaller chunks cut latency),
//   (2) per-column codec choice: size/time tradeoffs per column type,
//   (3) queue depth: bounded-queue flow control vs end-to-end time and memory.

#include <memory>

#include "bench/bench_common.h"
#include "src/format/agd_chunk.h"
#include "src/pipeline/agd_store_util.h"
#include "src/pipeline/persona_pipeline.h"
#include "src/storage/memory_store.h"

namespace persona::bench {
namespace {

void ChunkSizeSweep(const Scenario& scenario) {
  std::printf("\n(1) Chunk size sweep (bases column, zlib)\n");
  std::printf("%12s %14s %12s %16s %18s\n", "chunk reads", "file bytes", "ratio",
              "encode ms/chunk", "parse ms/chunk");
  for (size_t chunk_reads : {250, 500, 1'000, 2'000, 4'000, 8'000}) {
    size_t chunks = 0;
    uint64_t file_bytes = 0;
    uint64_t raw_bytes = 0;
    double encode_ms = 0;
    double parse_ms = 0;
    for (size_t begin = 0; begin + chunk_reads <= scenario.reads.size();
         begin += chunk_reads) {
      format::ChunkBuilder builder(format::RecordType::kBases, compress::CodecId::kZlib);
      for (size_t i = begin; i < begin + chunk_reads; ++i) {
        builder.AddBases(scenario.reads[i].bases);
        raw_bytes += scenario.reads[i].bases.size();
      }
      Buffer file;
      Stopwatch encode_timer;
      PERSONA_CHECK_OK(builder.Finalize(&file));
      encode_ms += encode_timer.ElapsedSeconds() * 1000;
      file_bytes += file.size();
      Stopwatch parse_timer;
      auto parsed = format::ParsedChunk::Parse(file.span());
      PERSONA_CHECK_OK(parsed.status());
      parse_ms += parse_timer.ElapsedSeconds() * 1000;
      ++chunks;
    }
    if (chunks == 0) {
      continue;
    }
    std::printf("%12zu %14s %11.2fx %15.2f %17.2f\n", chunk_reads,
                HumanBytes(file_bytes).c_str(),
                static_cast<double>(raw_bytes) / static_cast<double>(file_bytes),
                encode_ms / static_cast<double>(chunks),
                parse_ms / static_cast<double>(chunks));
  }
}

void CodecSweep(const Scenario& scenario) {
  std::printf("\n(2) Per-column codec sweep (%zu reads/column)\n", scenario.reads.size());
  std::printf("%-10s %-10s %14s %12s %16s\n", "column", "codec", "bytes", "ratio",
              "decode ms");
  struct Column {
    const char* name;
    format::RecordType type;
  };
  for (const Column& column : {Column{"bases", format::RecordType::kBases},
                               Column{"qual", format::RecordType::kQual},
                               Column{"metadata", format::RecordType::kMetadata}}) {
    for (compress::CodecId codec : {compress::CodecId::kIdentity, compress::CodecId::kZlib,
                                    compress::CodecId::kLzss}) {
      format::ChunkBuilder builder(column.type, codec);
      uint64_t raw = 0;
      for (const auto& read : scenario.reads) {
        if (column.type == format::RecordType::kBases) {
          builder.AddBases(read.bases);
          raw += read.bases.size();
        } else if (column.type == format::RecordType::kQual) {
          builder.AddRecord(read.qual);
          raw += read.qual.size();
        } else {
          builder.AddRecord(read.metadata);
          raw += read.metadata.size();
        }
      }
      Buffer file;
      PERSONA_CHECK_OK(builder.Finalize(&file));
      Stopwatch timer;
      auto parsed = format::ParsedChunk::Parse(file.span());
      PERSONA_CHECK_OK(parsed.status());
      std::printf("%-10s %-10s %14s %11.2fx %15.2f\n", column.name,
                  std::string(compress::CodecName(codec)).c_str(),
                  HumanBytes(file.size()).c_str(),
                  static_cast<double>(raw) / static_cast<double>(file.size()),
                  timer.ElapsedSeconds() * 1000);
    }
  }
}

void QueueDepthSweep(const Scenario& scenario) {
  std::printf("\n(3) Queue depth sweep (align pipeline end-to-end, throttled store)\n");
  std::printf("%12s %12s %18s\n", "queue depth", "seconds", "in-flight bound");
  align::SnapAligner aligner(&scenario.reference, scenario.seed_index.get());
  for (size_t depth : {1, 2, 4, 8}) {
    auto device = std::make_shared<storage::ThrottledDevice>(
        storage::DeviceProfile::Raid0(scenario.device_scale));
    storage::MemoryStore store(device);
    auto manifest = pipeline::WriteAgdToStore(&store, "ds", scenario.reads, 500);
    PERSONA_CHECK_OK(manifest.status());
    dataflow::Executor executor(2);
    pipeline::AlignPipelineOptions options;
    options.align_nodes = 2;
    options.queue_depth = depth;
    options.subchunk_size = 128;
    auto report = pipeline::RunPersonaAlignment(&store, *manifest, aligner, &executor,
                                                options);
    PERSONA_CHECK_OK(report.status());
    std::printf("%12zu %11.2fs %17zu\n", depth, report->seconds, depth * 4);
  }
  std::printf("(paper §4.5: shallow queues bound memory and avoid stragglers; deeper\n"
              "queues stop paying off once the pipeline is full)\n");
}

void Run() {
  PrintHeader("Ablations: AGD chunk size, per-column codec, queue depth");
  ScenarioSpec spec;
  spec.num_reads = 16'000;
  Scenario scenario = BuildScenario(spec);
  PrintCalibration(scenario);
  ChunkSizeSweep(scenario);
  CodecSweep(scenario);
  QueueDepthSweep(scenario);
}

}  // namespace
}  // namespace persona::bench

int main() {
  persona::bench::Run();
  return 0;
}
