// Extension bench: variant-calling throughput and accuracy vs coverage.
//
// The paper integrates alignment, sorting, and duplicate marking and names variant
// calling as the next step (§8); this bench characterizes that step on the same
// substrate. For each coverage level it reports pileup+genotyping throughput (reads/s
// and columns/s — the units a capacity plan needs next to the aligner's bases/s) and
// the accuracy against the injected donor truth, showing the recall cliff at low
// coverage that motivates the 30-50x datasets the paper describes (§2.1).

#include <cstdio>

#include "bench/bench_common.h"
#include "src/align/snap_aligner.h"
#include "src/format/agd_chunk.h"
#include "src/genome/mutate.h"
#include "src/pipeline/agd_store_util.h"
#include "src/pipeline/dedup.h"
#include "src/pipeline/sort.h"
#include "src/storage/memory_store.h"
#include "src/variant/accuracy.h"
#include "src/variant/call_pipeline.h"

namespace persona::bench {
namespace {

constexpr int kReadLength = 101;
constexpr int64_t kGenomeLength = 120'000;

struct CoverageRun {
  double coverage = 0;
  double call_seconds = 0;
  uint64_t reads_used = 0;
  uint64_t columns = 0;
  variant::VariantAccuracy accuracy;
};

CoverageRun RunAtCoverage(const genome::ReferenceGenome& reference,
                          const genome::DonorGenome& donor,
                          const align::SnapAligner& aligner, double coverage) {
  // Reads from both haplotypes.
  const size_t per_haplotype = static_cast<size_t>(
      coverage * static_cast<double>(reference.total_length()) / kReadLength / 2);
  std::vector<genome::Read> reads;
  for (int hap = 0; hap < 2; ++hap) {
    genome::ReadSimSpec rspec;
    rspec.read_length = kReadLength;
    rspec.substitution_rate = 0.003;
    rspec.duplicate_fraction = 0.03;
    rspec.seed = 900 + static_cast<uint64_t>(hap);
    genome::ReadSimulator simulator(&donor.haplotypes[static_cast<size_t>(hap)], rspec);
    std::vector<genome::Read> hap_reads = simulator.Simulate(per_haplotype);
    reads.insert(reads.end(), hap_reads.begin(), hap_reads.end());
  }

  storage::MemoryStore store;
  auto manifest = pipeline::WriteAgdToStore(&store, "ds", reads, 4'000);
  PERSONA_CHECK_OK(manifest.status());
  format::Manifest aligned = *manifest;
  aligned.columns.push_back(format::ResultsColumn());
  aligned.SetReference(reference);

  Buffer file;
  size_t read_index = 0;
  for (size_t ci = 0; ci < manifest->chunks.size(); ++ci) {
    format::ChunkBuilder builder(format::RecordType::kResults, compress::CodecId::kZlib);
    for (int64_t i = 0; i < manifest->chunks[ci].num_records; ++i, ++read_index) {
      builder.AddResult(aligner.Align(reads[read_index], nullptr));
    }
    PERSONA_CHECK_OK(builder.Finalize(&file));
    PERSONA_CHECK_OK(store.Put(manifest->chunks[ci].path_base + ".results", file));
  }

  format::Manifest sorted;
  PERSONA_CHECK_OK(
      pipeline::SortAgdDataset(&store, aligned, "sorted", {}, &sorted).status());
  PERSONA_CHECK_OK(pipeline::DedupAgdResults(&store, sorted).status());

  variant::CallPipelineOptions options;
  options.filter.min_qual = 20;
  options.filter.min_depth = 6;
  options.store_vcf = false;
  auto report = variant::CallVariantsAgd(&store, sorted, reference, options);
  PERSONA_CHECK_OK(report.status());

  CoverageRun run;
  run.coverage = coverage;
  run.call_seconds = report->seconds;
  run.reads_used = report->reads_used;
  run.columns = report->columns_piled;
  run.accuracy =
      variant::ScoreVariants(donor.variants, report->records, /*passing_only=*/true,
                             &reference);
  return run;
}

int Main() {
  PrintHeader("Extension: variant calling throughput & accuracy vs coverage (paper §8)");

  genome::GenomeSpec gspec;
  gspec.num_contigs = 2;
  gspec.contig_length = kGenomeLength / 2;
  genome::ReferenceGenome reference = genome::GenerateGenome(gspec);

  genome::MutationSpec mspec;
  mspec.snv_rate = 1e-3;
  mspec.insertion_rate = 1.2e-4;
  mspec.deletion_rate = 1.2e-4;
  mspec.min_spacing = 150;
  genome::DonorGenome donor = genome::MutateGenome(reference, mspec);

  align::SeedIndexOptions seed_options;
  seed_options.seed_length = 20;
  auto seed_index = align::SeedIndex::Build(reference, seed_options);
  PERSONA_CHECK_OK(seed_index.status());
  align::SnapAligner aligner(&reference, &*seed_index);

  std::printf("reference %lld bases; donor truth: %zu variants\n",
              static_cast<long long>(reference.total_length()), donor.variants.size());
  std::printf("\n%8s %10s %12s %12s %8s %8s %8s %8s\n", "coverage", "call(s)",
              "reads/s", "columns/s", "SNV P", "SNV R", "indel R", "GT conc");

  for (double coverage : {5.0, 10.0, 20.0, 30.0, 45.0}) {
    CoverageRun run = RunAtCoverage(reference, donor, aligner, coverage);
    const double reads_per_sec =
        run.call_seconds > 0 ? static_cast<double>(run.reads_used) / run.call_seconds : 0;
    const double cols_per_sec =
        run.call_seconds > 0 ? static_cast<double>(run.columns) / run.call_seconds : 0;
    const double indel_recall =
        (run.accuracy.insertion.truth + run.accuracy.deletion.truth) == 0
            ? 0
            : static_cast<double>(run.accuracy.insertion.true_positives +
                                  run.accuracy.deletion.true_positives) /
                  static_cast<double>(run.accuracy.insertion.truth +
                                      run.accuracy.deletion.truth);
    std::printf("%8.0f %10.3f %12.0f %12.0f %8.3f %8.3f %8.3f %8.3f\n", run.coverage,
                run.call_seconds, reads_per_sec, cols_per_sec,
                run.accuracy.snv.Precision(), run.accuracy.snv.Recall(), indel_recall,
                run.accuracy.GenotypeConcordance());
  }

  std::printf("\nShape targets: SNV recall climbs steeply to ~0.9+ by 20-30x and "
              "saturates;\nprecision stays high at all depths; genotype concordance "
              "follows recall\n(het sites need both haplotypes sampled). Throughput in "
              "reads/s is the\ncapacity-planning unit comparable to the aligner's "
              "bases/s.\n");
  return 0;
}

}  // namespace
}  // namespace persona::bench

int main() { return persona::bench::Main(); }
