// §5.6 reproduction: duplicate-marking throughput.
//
// Paper: Samblaster marks 364,963 reads/s; Persona (dense hashtable) marks 1.36M
// reads/s (~3.7x), and needs only the results column from the dataset.
//
// Shape to reproduce: the open-addressing dense signature set beats the node-based
// chained baseline by severalfold, and store-level dedup touches only results files.

#include "bench/bench_common.h"
#include "src/pipeline/agd_store_util.h"
#include "src/pipeline/dedup.h"
#include "src/pipeline/persona_pipeline.h"
#include "src/storage/memory_store.h"

namespace persona::bench {
namespace {

std::vector<align::AlignmentResult> SyntheticResults(size_t n, double duplicate_fraction,
                                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<align::AlignmentResult> results;
  results.reserve(n);
  int64_t genome = 3'000'000'000;  // human-scale location space
  for (size_t i = 0; i < n; ++i) {
    align::AlignmentResult r;
    if (!results.empty() && rng.Bernoulli(duplicate_fraction)) {
      r = results[rng.Uniform(results.size())];  // exact signature duplicate
      r.flags &= static_cast<uint16_t>(~align::kFlagDuplicate);
    } else {
      r.location = static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(genome)));
      r.flags = rng.Bernoulli(0.5) ? align::kFlagReverse : 0;
    }
    r.cigar = "101M";
    results.push_back(std::move(r));
  }
  return results;
}

void Run() {
  PrintHeader("Section 5.6: Duplicate marking throughput");

  const size_t kReads = 2'000'000;
  auto input = SyntheticResults(kReads, 0.15, 77);

  auto dense_input = input;
  pipeline::DedupReport dense = pipeline::MarkDuplicatesDense(dense_input);
  auto chained_input = input;
  pipeline::DedupReport chained = pipeline::MarkDuplicatesChained(chained_input);

  std::printf("\n%-28s %14s %14s %12s\n", "Implementation", "reads/s", "duplicates",
              "seconds");
  std::printf("%-28s %14.0f %14llu %11.3fs\n", "Persona (dense hashtable)",
              dense.reads_per_sec, static_cast<unsigned long long>(dense.duplicates),
              dense.seconds);
  std::printf("%-28s %14.0f %14llu %11.3fs\n", "Samblaster-like (chained)",
              chained.reads_per_sec, static_cast<unsigned long long>(chained.duplicates),
              chained.seconds);
  std::printf("\nSpeedup: %.2fx   (paper: 1.36M vs 365k reads/s = 3.7x)\n",
              dense.reads_per_sec / chained.reads_per_sec);
  if (dense.duplicates != chained.duplicates) {
    std::printf("WARNING: implementations disagree!\n");
  }

  // I/O advantage: whole-dataset dedup reads/writes only the results column.
  ScenarioSpec spec;
  spec.num_reads = 8'000;
  spec.duplicate_fraction = 0.15;
  Scenario scenario = BuildScenario(spec);
  storage::MemoryStore store;
  auto manifest = pipeline::WriteAgdToStore(&store, "ds", scenario.reads, 1'000);
  PERSONA_CHECK_OK(manifest.status());
  align::SnapAligner aligner(&scenario.reference, scenario.seed_index.get());
  dataflow::Executor executor(2);
  pipeline::AlignPipelineOptions options;
  PERSONA_CHECK_OK(
      pipeline::RunPersonaAlignment(&store, *manifest, aligner, &executor, options).status());
  manifest->columns.push_back(format::ResultsColumn());

  storage::StoreStats before = store.stats();
  auto report = pipeline::DedupAgdResults(&store, *manifest);
  PERSONA_CHECK_OK(report.status());
  storage::StoreStats after = store.stats();
  uint64_t results_bytes = after.bytes_read - before.bytes_read;
  uint64_t dataset_bytes = 0;
  std::vector<std::string> keys = store.List("ds-").value();
  for (const auto& key : keys) {
    dataset_bytes += store.Size(key).value();
  }
  std::printf("\nStore-level dedup on an aligned dataset (%llu reads): marked %llu\n",
              static_cast<unsigned long long>(report->total),
              static_cast<unsigned long long>(report->duplicates));
  std::printf("bytes read: %s of a %s dataset (results column only, %.1f%%)\n",
              HumanBytes(results_bytes).c_str(), HumanBytes(dataset_bytes).c_str(),
              100.0 * static_cast<double>(results_bytes) /
                  static_cast<double>(dataset_bytes));
}

}  // namespace
}  // namespace persona::bench

int main() {
  persona::bench::Run();
  return 0;
}
