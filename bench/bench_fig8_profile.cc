// Figure 8 reproduction: workload analysis of the aligner kernels.
//
// The paper profiles SNAP and BWA-MEM under VTune: both are heavily backend-bound; for
// SNAP the stalls are core-bound (a short, branchy edit-distance kernel with dependent
// instructions), for BWA-MEM they are memory-bound (cache/DTLB misses in the
// occurrence-table walks), compared against SPEC reference points.
//
// VTune is proprietary (DESIGN.md §1), so this harness classifies by direct
// instrumentation instead: per-kernel time attribution inside the aligners (seeding /
// index walks vs verification arithmetic) plus two micro-reference workloads standing in
// for the SPEC anchors — a dependent-arithmetic loop (core-bound) and a pointer-chasing
// loop over a large working set (memory-bound) — measured in ns per operation.

#include "bench/bench_common.h"

namespace persona::bench {
namespace {

// Core-bound reference: long dependency chain of cheap ALU ops (no memory traffic).
double CoreBoundNsPerOp(size_t iterations) {
  volatile uint64_t sink = 0;
  uint64_t x = 88172645463325252ull;
  Stopwatch timer;
  for (size_t i = 0; i < iterations; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  sink = x;
  (void)sink;
  return static_cast<double>(timer.ElapsedNanos()) / static_cast<double>(iterations);
}

// Memory-bound reference: random pointer chase over a working set far beyond L2.
double MemoryBoundNsPerOp(size_t iterations) {
  const size_t n = 1 << 22;  // 32 MB of uint64 indices
  std::vector<uint64_t> next(n);
  Rng rng(5);
  // A random permutation cycle.
  std::vector<uint64_t> perm(n);
  for (size_t i = 0; i < n; ++i) {
    perm[i] = i;
  }
  for (size_t i = n - 1; i > 0; --i) {
    std::swap(perm[i], perm[rng.Uniform(i + 1)]);
  }
  for (size_t i = 0; i < n; ++i) {
    next[perm[i]] = perm[(i + 1) % n];
  }
  volatile uint64_t sink = 0;
  uint64_t pos = perm[0];
  Stopwatch timer;
  for (size_t i = 0; i < iterations; ++i) {
    pos = next[pos];
  }
  sink = pos;
  (void)sink;
  return static_cast<double>(timer.ElapsedNanos()) / static_cast<double>(iterations);
}

struct KernelProfile {
  double seed_share = 0;    // fraction of time in seeding / index walks (memory side)
  double verify_share = 0;  // fraction in edit-distance / SW arithmetic (core side)
  double mbases_per_sec = 0;
  uint64_t probes_per_read = 0;
  uint64_t candidates_per_read = 0;
};

KernelProfile ProfileAligner(const align::Aligner& aligner,
                             std::span<const genome::Read> reads) {
  align::AlignProfile profile;
  auto scratch = aligner.MakeScratch();
  std::vector<align::AlignmentResult> results(reads.size());
  constexpr size_t kBatch = 256;  // pipeline-sized batches; clocks read per batch phase
  Stopwatch timer;
  uint64_t bases = 0;
  for (size_t begin = 0; begin < reads.size(); begin += kBatch) {
    const size_t count = std::min(kBatch, reads.size() - begin);
    aligner.AlignBatch(reads.subspan(begin, count), {results.data() + begin, count},
                       scratch.get(), &profile);
  }
  for (const auto& read : reads) {
    bases += read.bases.size();
  }
  double seconds = timer.ElapsedSeconds();
  KernelProfile out;
  uint64_t kernel_ns = profile.seed_ns + profile.verify_ns;
  if (kernel_ns > 0) {
    out.seed_share = static_cast<double>(profile.seed_ns) / static_cast<double>(kernel_ns);
    out.verify_share =
        static_cast<double>(profile.verify_ns) / static_cast<double>(kernel_ns);
  }
  out.mbases_per_sec = static_cast<double>(bases) / seconds / 1e6;
  out.probes_per_read = profile.index_probes / std::max<uint64_t>(profile.reads, 1);
  out.candidates_per_read = profile.candidates / std::max<uint64_t>(profile.reads, 1);
  return out;
}

void Run() {
  PrintHeader("Figure 8: Workload analysis (instrumented; VTune substitution)");
  ScenarioSpec spec;
  spec.num_reads = 2'000;
  spec.genome_length = 1'500'000;  // large enough that occ-table walks leave the cache
  spec.build_fm_index = true;
  Scenario scenario = BuildScenario(spec);
  PrintCalibration(scenario);

  align::SnapAligner snap(&scenario.reference, scenario.seed_index.get());
  align::BwaMemAligner bwa(&scenario.reference, scenario.fm_index.get());

  KernelProfile snap_profile = ProfileAligner(snap, scenario.reads);
  KernelProfile bwa_profile = ProfileAligner(bwa, scenario.reads);

  std::printf("\n(1) Kernel time attribution (share of aligner kernel time)\n");
  std::printf("%-14s %18s %22s %14s\n", "Aligner", "index/seed walks",
              "verify arithmetic", "Mbases/s");
  std::printf("%-14s %17.1f%% %21.1f%% %14.2f\n", "SNAP-style",
              snap_profile.seed_share * 100, snap_profile.verify_share * 100,
              snap_profile.mbases_per_sec);
  std::printf("%-14s %17.1f%% %21.1f%% %14.2f\n", "BWA-MEM-style",
              bwa_profile.seed_share * 100, bwa_profile.verify_share * 100,
              bwa_profile.mbases_per_sec);
  std::printf("probes/read: SNAP %llu, BWA %llu; candidates/read: SNAP %llu, BWA %llu\n",
              static_cast<unsigned long long>(snap_profile.probes_per_read),
              static_cast<unsigned long long>(bwa_profile.probes_per_read),
              static_cast<unsigned long long>(snap_profile.candidates_per_read),
              static_cast<unsigned long long>(bwa_profile.candidates_per_read));

  // FM locate: the memory-bound occurrence walk, before/after prefetch batching.
  // Same intervals through both implementations, outputs compared in-run. Uses
  // its own scenario with a reference big enough that the BWT and checkpoint
  // tables leave the last-level cache — on the in-cache index above, a walk
  // step has no miss to overlap and batching is a wash. Short (10-mer) patterns
  // make the intervals hold many suffixes — the multi-chain case the lockstep
  // walk batches (singleton intervals take the serial path).
  {
    ScenarioSpec fm_spec;
    fm_spec.num_reads = 500;
    fm_spec.genome_length = 24'000'000;
    fm_spec.build_fm_index = true;
    Scenario fm_scenario = BuildScenario(fm_spec);
    const align::FmIndex& fm = *fm_scenario.fm_index;
    std::vector<align::FmIndex::Interval> intervals;
    for (const auto& read : fm_scenario.reads) {
      std::string_view bases(read.bases);
      for (size_t off = 0; off + 10 <= bases.size(); off += 24) {
        align::FmIndex::Interval iv = fm.Count(bases.substr(off, 10));
        if (iv.size() > 1) {
          intervals.push_back(iv);
        }
      }
    }
    std::vector<int64_t> serial_hits;
    std::vector<int64_t> batched_hits;
    std::vector<int64_t> tmp;
    Stopwatch serial_timer;
    for (const auto& iv : intervals) {
      tmp.clear();
      fm.LocateSerial(iv, 32, &tmp);
      serial_hits.insert(serial_hits.end(), tmp.begin(), tmp.end());
    }
    const double serial_s = serial_timer.ElapsedSeconds();
    Stopwatch batched_timer;
    for (const auto& iv : intervals) {
      tmp.clear();
      fm.Locate(iv, 32, &tmp);
      batched_hits.insert(batched_hits.end(), tmp.begin(), tmp.end());
    }
    const double batched_s = batched_timer.ElapsedSeconds();
    const bool match = serial_hits == batched_hits;
    std::printf("\n(1b) FM-index locate, %zu intervals / %zu hits (occurrence-walk batching)\n",
                intervals.size(), serial_hits.size());
    std::printf("serial walks:            %8.2f Mhits/s\n",
                static_cast<double>(serial_hits.size()) / serial_s / 1e6);
    std::printf("prefetch-batched walks:  %8.2f Mhits/s  (%.2fx, outputs %s)\n",
                static_cast<double>(batched_hits.size()) / batched_s / 1e6,
                serial_s / batched_s, match ? "identical" : "MISMATCH");
  }

  std::printf("\n(2) Micro-reference anchors (SPEC stand-ins)\n");
  double core_ns = CoreBoundNsPerOp(50'000'000);
  double mem_ns = MemoryBoundNsPerOp(5'000'000);
  std::printf("core-bound reference (dependent ALU chain): %6.2f ns/op\n", core_ns);
  std::printf("memory-bound reference (32MB pointer chase): %6.2f ns/op  (%.1fx slower)\n",
              mem_ns, mem_ns / core_ns);

  std::printf("\nShape check (paper): SNAP dominated by the core-bound edit-distance\n"
              "kernel (verify share high); BWA dominated by memory-bound FM-index\n"
              "occurrence walks (seed share high).\n");
}

}  // namespace
}  // namespace persona::bench

int main() {
  persona::bench::Run();
  return 0;
}
