// Extension bench: reference-based compression of the AGD bases column (paper §6.1).
//
// The paper's TCO analysis finds long-term storage, not compute, dominates the cost of
// population-scale sequencing, and points at reference-based compression as the needed
// remedy. This bench quantifies that remedy on the AGD bases column: bytes per base and
// encode/decode throughput for
//     packed      3-bit base packing (AGD's baseline representation, §3)
//     packed+zlib packed then block-compressed (AGD's on-disk default)
//     refcomp     diffs against the reference (this repo's §6.1 implementation)
//     refcomp+zlib                             ... then block-compressed
// swept across sequencer error rates, which control how many diffs must be stored.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/compress/base_compaction.h"
#include "src/compress/codec.h"
#include "src/format/refcomp.h"
#include "src/util/stopwatch.h"

namespace persona::bench {
namespace {

constexpr int kReadLength = 101;
constexpr size_t kNumReads = 4'000;

struct Corpus {
  std::vector<std::string> bases;
  std::vector<align::AlignmentResult> results;
  int64_t total_bases = 0;
};

Corpus MakeCorpus(const genome::ReferenceGenome& reference, double error_rate) {
  genome::ReadSimSpec rspec;
  rspec.read_length = kReadLength;
  rspec.substitution_rate = error_rate;
  rspec.indel_rate = 0;  // keep truth CIGARs exact ("<len>M")
  rspec.seed = 77;
  genome::ReadSimulator simulator(&reference, rspec);

  Corpus corpus;
  for (genome::Read& read : simulator.Simulate(kNumReads)) {
    auto truth = genome::ParseReadTruth(reference, read.metadata);
    PERSONA_CHECK_OK(truth.status());
    auto location = reference.LocalToGlobal(truth->contig_index, truth->position);
    PERSONA_CHECK_OK(location.status());
    align::AlignmentResult result;
    result.location = *location;
    result.cigar = std::to_string(kReadLength) + "M";
    result.flags = truth->reverse ? align::kFlagReverse : 0;
    result.mapq = 60;
    corpus.total_bases += static_cast<int64_t>(read.bases.size());
    corpus.bases.push_back(std::move(read.bases));
    corpus.results.push_back(std::move(result));
  }
  return corpus;
}

struct Row {
  const char* scheme;
  size_t bytes = 0;
  double encode_mbps = 0;  // Mbases/s
  double decode_mbps = 0;
};

void PrintRow(const Row& row, int64_t total_bases) {
  std::printf("  %-14s %10zu bytes   %6.3f bits/base   enc %8.1f Mbase/s   dec %8.1f "
              "Mbase/s\n",
              row.scheme, row.bytes,
              8.0 * static_cast<double>(row.bytes) / static_cast<double>(total_bases),
              row.encode_mbps, row.decode_mbps);
}

// Packs all reads 3-bit and optionally zlib-compresses the block.
Row RunPacked(const Corpus& corpus, bool with_zlib) {
  Row row;
  row.scheme = with_zlib ? "packed+zlib" : "packed";
  Buffer packed;
  Stopwatch encode_timer;
  for (const std::string& bases : corpus.bases) {
    compress::PackBases(bases, &packed);
  }
  Buffer compressed;
  if (with_zlib) {
    PERSONA_CHECK_OK(
        compress::GetCodec(compress::CodecId::kZlib).Compress(packed.span(), &compressed));
  }
  const double encode_seconds = encode_timer.ElapsedSeconds();
  row.bytes = with_zlib ? compressed.size() : packed.size();
  row.encode_mbps =
      static_cast<double>(corpus.total_bases) / encode_seconds / 1e6;

  Stopwatch decode_timer;
  Buffer decompressed;
  std::span<const uint8_t> packed_span = packed.span();
  if (with_zlib) {
    PERSONA_CHECK_OK(compress::GetCodec(compress::CodecId::kZlib)
                         .Decompress(compressed.span(), packed.size(), &decompressed));
    packed_span = decompressed.span();
  }
  size_t offset = 0;
  std::string bases;
  for (const std::string& original : corpus.bases) {
    bases.clear();
    const size_t packed_size = compress::PackedBasesSize(original.size());
    PERSONA_CHECK_OK(compress::UnpackBases(packed_span.subspan(offset, packed_size),
                                           original.size(), &bases));
    offset += packed_size;
  }
  row.decode_mbps =
      static_cast<double>(corpus.total_bases) / decode_timer.ElapsedSeconds() / 1e6;
  return row;
}

Row RunRefComp(const genome::ReferenceGenome& reference, const Corpus& corpus,
               bool with_zlib, format::RefCompStats* stats_out) {
  Row row;
  row.scheme = with_zlib ? "refcomp+zlib" : "refcomp";
  Buffer data;
  std::vector<uint32_t> lengths;
  Stopwatch encode_timer;
  format::RefCompStats stats =
      format::RefEncodeChunk(reference, corpus.bases, corpus.results, &data, &lengths);
  Buffer compressed;
  if (with_zlib) {
    PERSONA_CHECK_OK(
        compress::GetCodec(compress::CodecId::kZlib).Compress(data.span(), &compressed));
  }
  row.encode_mbps =
      static_cast<double>(corpus.total_bases) / encode_timer.ElapsedSeconds() / 1e6;
  row.bytes = with_zlib ? compressed.size() : data.size();

  Stopwatch decode_timer;
  Buffer decompressed;
  std::span<const uint8_t> data_span = data.span();
  if (with_zlib) {
    PERSONA_CHECK_OK(compress::GetCodec(compress::CodecId::kZlib)
                         .Decompress(compressed.span(), data.size(), &decompressed));
    data_span = decompressed.span();
  }
  auto decoded = format::RefDecodeChunk(reference, data_span, lengths, corpus.results);
  PERSONA_CHECK_OK(decoded.status());
  row.decode_mbps =
      static_cast<double>(corpus.total_bases) / decode_timer.ElapsedSeconds() / 1e6;

  if (stats_out != nullptr) {
    *stats_out = stats;
  }
  return row;
}

int Main() {
  PrintHeader("Extension: reference-based compression of the bases column (paper §6.1)");

  genome::GenomeSpec gspec;
  gspec.num_contigs = 2;
  gspec.contig_length = 150'000;
  genome::ReferenceGenome reference = genome::GenerateGenome(gspec);
  std::printf("%zu reads x %d bp per corpus; alignment info lives in the results column "
              "and is not double-counted\n",
              kNumReads, kReadLength);

  for (double error_rate : {0.001, 0.005, 0.02}) {
    Corpus corpus = MakeCorpus(reference, error_rate);
    std::printf("\n-- substitution error rate %.1f%% --\n", error_rate * 100);
    PrintRow(RunPacked(corpus, /*with_zlib=*/false), corpus.total_bases);
    PrintRow(RunPacked(corpus, /*with_zlib=*/true), corpus.total_bases);
    format::RefCompStats stats;
    PrintRow(RunRefComp(reference, corpus, /*with_zlib=*/false, &stats), corpus.total_bases);
    PrintRow(RunRefComp(reference, corpus, /*with_zlib=*/true, nullptr), corpus.total_bases);
    std::printf("  (refcomp: %lld substitutions across %lld records, %lld raw fallbacks)\n",
                static_cast<long long>(stats.substitutions),
                static_cast<long long>(stats.records),
                static_cast<long long>(stats.raw_fallback));
  }

  std::printf("\nShape targets: refcomp beats 3-bit packing by an order of magnitude at "
              "low error\nrates and degrades gracefully as errors (stored diffs) grow. "
              "zlib on top of refcomp\nstill roughly halves it (per-record tag/count "
              "bytes compress well) while the\nsubstitution payload itself is "
              "high-entropy. Decode stays fast at low error rates\nbecause "
              "reconstruction is a reference copy plus a few patches.\n");
  return 0;
}

}  // namespace
}  // namespace persona::bench

int main() { return persona::bench::Main(); }
