// Table 1 reproduction: single-server dataset alignment time.
//
// Paper (Table 1):
//              SNAP     AGD(Persona)  Speedup
//   Disk(Single) 817 s      501 s      1.63
//   Disk(RAID)   494 s      499 s      0.99
//   Network      760 s      493.5 s    1.54
//   Data Read    18 GB      15 GB      1.2
//   Data Written 67 GB      4 GB       16.75
//
// Shape to reproduce: Persona is storage-insensitive (CPU-bound everywhere); standalone
// SNAP is starved on the single disk and over the network but matches Persona on RAID0;
// AGD writes ~16x less data (results column vs row-oriented SAM).

#include <memory>

#include "bench/bench_common.h"
#include "src/pipeline/agd_store_util.h"
#include "src/pipeline/baseline_standalone.h"
#include "src/pipeline/persona_pipeline.h"
#include "src/storage/ceph_sim.h"
#include "src/storage/memory_store.h"

namespace persona::bench {
namespace {

struct ConfigResult {
  double standalone_sec = 0;
  double persona_sec = 0;
  uint64_t standalone_read = 0;
  uint64_t standalone_written = 0;
  uint64_t persona_read = 0;
  uint64_t persona_written = 0;
};

ConfigResult RunConfig(const Scenario& scenario, storage::ObjectStore* standalone_store,
                       storage::ObjectStore* persona_store) {
  ConfigResult result;
  align::SnapAligner aligner(&scenario.reference, scenario.seed_index.get());

  // Standalone: gzipped FASTQ in, SAM rows out, ad-hoc threads.
  PERSONA_CHECK_OK(
      pipeline::WriteGzippedFastqToStore(standalone_store, "ds", scenario.reads).status());
  pipeline::StandaloneOptions standalone_options;
  standalone_options.threads = 2;
  standalone_options.batch_reads = 256;
  standalone_options.writeback_threshold = 256 << 10;  // several writeback bursts per run
  auto standalone = pipeline::RunStandaloneAlignment(standalone_store, "ds",
                                                     scenario.reference, aligner,
                                                     standalone_options);
  PERSONA_CHECK_OK(standalone.status());
  result.standalone_sec = standalone->seconds;
  result.standalone_read = standalone->store_stats.bytes_read;
  result.standalone_written = standalone->store_stats.bytes_written;

  // Persona: AGD columns in, results column out, dataflow graph + executor.
  auto manifest = pipeline::WriteAgdToStore(persona_store, "ds", scenario.reads, 1'000);
  PERSONA_CHECK_OK(manifest.status());
  dataflow::Executor executor(2);
  pipeline::AlignPipelineOptions options;
  options.read_parallelism = 2;
  options.parse_parallelism = 1;
  options.align_nodes = 2;
  options.write_parallelism = 1;
  options.subchunk_size = 256;
  auto persona = pipeline::RunPersonaAlignment(persona_store, *manifest, aligner, &executor,
                                               options);
  PERSONA_CHECK_OK(persona.status());
  result.persona_sec = persona->seconds;
  result.persona_read = persona->store_stats.bytes_read;
  result.persona_written = persona->store_stats.bytes_written;
  return result;
}

void Run() {
  PrintHeader("Table 1: Dataset Alignment Time, Single Server (scaled reproduction)");
  ScenarioSpec spec;
  spec.num_reads = 8'000;
  Scenario scenario = BuildScenario(spec);
  PrintCalibration(scenario);

  // The three storage configurations, bandwidth-scaled to this machine's compute rate.
  struct Config {
    const char* name;
    ConfigResult result;
  };
  std::vector<Config> configs;

  {
    auto device = std::make_shared<storage::ThrottledDevice>(
        storage::DeviceProfile::SingleDisk(scenario.device_scale));
    storage::MemoryStore standalone_store(device);
    storage::MemoryStore persona_store(device);
    configs.push_back({"Disk(Single)", RunConfig(scenario, &standalone_store, &persona_store)});
  }
  {
    auto device = std::make_shared<storage::ThrottledDevice>(
        storage::DeviceProfile::Raid0(scenario.device_scale));
    storage::MemoryStore standalone_store(device);
    storage::MemoryStore persona_store(device);
    configs.push_back({"Disk(RAID)", RunConfig(scenario, &standalone_store, &persona_store)});
  }
  {
    // Network: Persona reads AGD chunks from the object store over parallel streams;
    // standalone SNAP has no Ceph support, so (as in the paper) its data moves through a
    // single `rados` pipe — one bandwidth-limited stream for input and output.
    storage::CephSimConfig ceph_config = storage::CephSimConfig::Scaled(scenario.device_scale);
    auto pipe = std::make_shared<storage::ThrottledDevice>(storage::DeviceProfile{
        static_cast<uint64_t>(70e6 * scenario.device_scale), 0.0005, "rados-pipe"});
    storage::MemoryStore standalone_store(pipe);
    storage::CephSimStore persona_store(ceph_config);
    configs.push_back({"Network", RunConfig(scenario, &standalone_store, &persona_store)});
  }

  std::printf("\n%-14s %12s %12s %9s\n", "Config", "SNAP", "Persona+AGD", "Speedup");
  for (const Config& config : configs) {
    std::printf("%-14s %10.2fs %10.2fs %8.2fx\n", config.name, config.result.standalone_sec,
                config.result.persona_sec,
                config.result.standalone_sec / config.result.persona_sec);
  }
  // I/O volumes are config-independent; report them from the single-disk run.
  const ConfigResult& io = configs[0].result;
  std::printf("%-14s %11s %11s %8.2fx\n", "Data Read",
              HumanBytes(io.standalone_read).c_str(), HumanBytes(io.persona_read).c_str(),
              static_cast<double>(io.standalone_read) /
                  static_cast<double>(std::max<uint64_t>(io.persona_read, 1)));
  std::printf("%-14s %11s %11s %8.2fx\n", "Data Written",
              HumanBytes(io.standalone_written).c_str(),
              HumanBytes(io.persona_written).c_str(),
              static_cast<double>(io.standalone_written) /
                  static_cast<double>(std::max<uint64_t>(io.persona_written, 1)));
  std::printf("\nPaper: 1.63x / 0.99x / 1.54x; write amplification 16.75x.\n");
}

}  // namespace
}  // namespace persona::bench

int main() {
  persona::bench::Run();
  return 0;
}
