// Benchmark for the ChunkPipeline refactor (paper §4, Figs. 3/5): serial phase-barrier
// tool loops vs the dataflow-overlapped pipeline, on convert (FASTQ -> AGD import) and
// dedup over a simulated 7-node Ceph store.
//
// The serial baselines replicate the pre-refactor implementations: one for-loop per
// tool with full phase barriers — parse/build/compress/write one chunk after another
// (import), and fetch-everything / mark / rebuild-everything / write-everything
// (dedup). The overlapped path is the production code: the same work declared as a
// ChunkPipeline, so column fetches run ahead of the transform, compression fans out
// over serialize workers, and batched writes ride the async ticket window behind it.
//
// Usage: bench_pipeline_overlap [num_reads] [chunk_size]   (default 20000 x 1000;
// CI smoke uses a smaller scenario)

#include <array>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/format/agd_chunk.h"
#include "src/format/fastq.h"
#include "src/genome/generator.h"
#include "src/genome/read_simulator.h"
#include "src/pipeline/agd_store_util.h"
#include "src/pipeline/chunk_pipeline.h"
#include "src/pipeline/convert.h"
#include "src/pipeline/dedup.h"
#include "src/storage/ceph_sim.h"
#include "src/util/stopwatch.h"

namespace persona::pipeline {
namespace {

struct Scenario {
  int num_reads = 20'000;
  int64_t chunk_size = 1'000;
};

storage::CephSimConfig StoreConfig() {
  // The paper's 7-node shape with bandwidth scaled down so the benchmark's small
  // dataset sits in the I/O-bound regime of Fig. 5: the serial loops stall on every
  // chunk's transfers, which is exactly the time the overlapped graph hides.
  storage::CephSimConfig config;
  config.num_osd_nodes = 7;
  config.replication = 3;
  config.per_node_bandwidth = 2'000'000;
  config.op_latency_sec = 0.0005;
  return config;
}

// The overlapped configuration under test: >= 4 transform workers plus the
// reader/serializer/writer stages around them.
ChunkPipeline::Options OverlappedOptions() {
  ChunkPipeline::Options options;
  options.read_parallelism = 4;
  options.parse_parallelism = 2;
  options.transform_parallelism = 4;
  options.serialize_parallelism = 4;
  options.write_parallelism = 4;
  options.write_window = 8;
  return options;
}

// --- Serial baselines: the pre-refactor tool loops, kept verbatim so the comparison
// stays honest as the production code evolves. ---

Result<uint64_t> SerialImportFastqToAgd(storage::ObjectStore* store,
                                        storage::ObjectStore* input_store,
                                        const std::string& name, int64_t chunk_size,
                                        format::Manifest* out_manifest) {
  const compress::CodecId codec = compress::CodecId::kZlib;
  Buffer object;
  PERSONA_RETURN_IF_ERROR(input_store->Get(name + ".fastq.gz", &object));
  uint64_t raw_size = object.ReadScalar<uint64_t>(0);
  Buffer fastq;
  PERSONA_RETURN_IF_ERROR(compress::GetCodec(compress::CodecId::kZlib)
                              .Decompress(object.span().subspan(sizeof(uint64_t)),
                                          static_cast<size_t>(raw_size), &fastq));

  format::Manifest manifest;
  manifest.name = name;
  manifest.chunk_size = chunk_size;
  manifest.columns = format::StandardReadColumns(codec);

  format::ChunkBuilder bases(format::RecordType::kBases, codec);
  format::ChunkBuilder qual(format::RecordType::kQual, codec);
  format::ChunkBuilder metadata(format::RecordType::kMetadata, codec);
  Buffer bases_file;
  Buffer qual_file;
  Buffer metadata_file;
  int64_t in_chunk = 0;
  int64_t total = 0;

  auto flush = [&]() -> Status {
    if (in_chunk == 0) {
      return OkStatus();
    }
    format::ManifestChunk chunk;
    chunk.path_base = name + "-" + std::to_string(manifest.chunks.size());
    chunk.first_record = total - in_chunk;
    chunk.num_records = in_chunk;
    PERSONA_RETURN_IF_ERROR(bases.Finalize(&bases_file));
    PERSONA_RETURN_IF_ERROR(qual.Finalize(&qual_file));
    PERSONA_RETURN_IF_ERROR(metadata.Finalize(&metadata_file));
    std::array<storage::PutOp, 3> puts = {
        storage::PutOp{chunk.path_base + ".bases", bases_file.span(), {}},
        storage::PutOp{chunk.path_base + ".qual", qual_file.span(), {}},
        storage::PutOp{chunk.path_base + ".metadata", metadata_file.span(), {}},
    };
    PERSONA_RETURN_IF_ERROR(store->PutBatch(puts));
    manifest.chunks.push_back(std::move(chunk));
    bases.Reset();
    qual.Reset();
    metadata.Reset();
    in_chunk = 0;
    return OkStatus();
  };

  format::FastqParser parser;
  std::vector<genome::Read> parsed;
  constexpr size_t kWindow = 1 << 20;
  for (size_t offset = 0; offset < fastq.size(); offset += kWindow) {
    size_t len = std::min(kWindow, fastq.size() - offset);
    PERSONA_RETURN_IF_ERROR(
        parser.Feed(std::string_view(fastq.view().data() + offset, len), &parsed));
    for (genome::Read& read : parsed) {
      bases.AddBases(read.bases);
      qual.AddRecord(read.qual);
      metadata.AddRecord(read.metadata);
      ++in_chunk;
      ++total;
      if (in_chunk >= chunk_size) {
        PERSONA_RETURN_IF_ERROR(flush());
      }
    }
    parsed.clear();
  }
  PERSONA_RETURN_IF_ERROR(parser.Finish());
  PERSONA_RETURN_IF_ERROR(flush());
  PERSONA_RETURN_IF_ERROR(store->Put("manifest.json", manifest.ToJson()));
  *out_manifest = std::move(manifest);
  return static_cast<uint64_t>(total);
}

Result<uint64_t> SerialDedupAgdResults(storage::ObjectStore* store,
                                       const format::Manifest& manifest) {
  const compress::CodecId codec = compress::CodecId::kZlib;
  const size_t num_chunks = manifest.chunks.size();
  std::vector<Buffer> files(num_chunks);
  {
    std::vector<storage::GetOp> gets;
    gets.reserve(num_chunks);
    for (size_t ci = 0; ci < num_chunks; ++ci) {
      gets.push_back({manifest.ChunkFileName(ci, "results"), &files[ci], {}});
    }
    PERSONA_RETURN_IF_ERROR(store->GetBatch(gets));
  }
  std::vector<align::AlignmentResult> all;
  std::vector<size_t> chunk_sizes;
  for (size_t ci = 0; ci < num_chunks; ++ci) {
    PERSONA_ASSIGN_OR_RETURN(format::ParsedChunk chunk,
                             format::ParsedChunk::Parse(files[ci].span()));
    chunk_sizes.push_back(chunk.record_count());
    for (size_t i = 0; i < chunk.record_count(); ++i) {
      PERSONA_ASSIGN_OR_RETURN(align::AlignmentResult r, chunk.GetResult(i));
      all.push_back(std::move(r));
    }
  }
  DedupReport marked = MarkDuplicatesDense(all);

  size_t offset = 0;
  std::vector<storage::PutOp> puts;
  puts.reserve(num_chunks);
  for (size_t ci = 0; ci < num_chunks; ++ci) {
    format::ChunkBuilder builder(format::RecordType::kResults, codec);
    for (size_t i = 0; i < chunk_sizes[ci]; ++i) {
      builder.AddResult(all[offset + i]);
    }
    offset += chunk_sizes[ci];
    files[ci].Clear();
    PERSONA_RETURN_IF_ERROR(builder.Finalize(&files[ci]));
    puts.push_back({manifest.chunks[ci].path_base + ".results", files[ci].span(), {}});
  }
  PERSONA_RETURN_IF_ERROR(store->PutBatch(puts));
  return marked.duplicates;
}

// Synthesizes a results column for `manifest` (dedup needs one; planted collisions
// give the marker real work). Deterministic: both paths see identical bytes.
Status PlantResultsColumn(storage::ObjectStore* store, const format::Manifest& manifest) {
  Buffer file;
  for (size_t ci = 0; ci < manifest.chunks.size(); ++ci) {
    const format::ManifestChunk& chunk = manifest.chunks[ci];
    format::ChunkBuilder builder(format::RecordType::kResults, compress::CodecId::kZlib);
    for (int64_t i = chunk.first_record; i < chunk.first_record + chunk.num_records;
         ++i) {
      align::AlignmentResult result;
      result.location = (i * 37) % 5'000;  // ~4x signature collisions
      result.flags = i % 2 ? align::kFlagReverse : 0;
      result.mapq = 60;
      result.cigar = "101M";
      builder.AddResult(result);
    }
    PERSONA_RETURN_IF_ERROR(builder.Finalize(&file));
    PERSONA_RETURN_IF_ERROR(store->Put(chunk.path_base + ".results", file));
  }
  return OkStatus();
}

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

int Run(const Scenario& scenario) {
  std::printf("================================================================\n");
  std::printf("ChunkPipeline: serial tool loops vs dataflow-overlapped graph\n");
  std::printf("================================================================\n");
  const ChunkPipeline::Options overlapped = OverlappedOptions();
  const storage::CephSimConfig config = StoreConfig();
  std::printf(
      "%d reads, %lld-record chunks, CephSim %d OSD nodes (%.0f MB/s each, repl %d)\n"
      "overlapped config: read %d / parse %d / transform %d / serialize %d / write %d\n\n",
      scenario.num_reads, static_cast<long long>(scenario.chunk_size),
      config.num_osd_nodes, static_cast<double>(config.per_node_bandwidth) / 1e6,
      config.replication, overlapped.read_parallelism, overlapped.parse_parallelism,
      overlapped.transform_parallelism, overlapped.serialize_parallelism,
      overlapped.write_parallelism);

  // Shared input: one gzipped FASTQ object, staged identically into both stores.
  genome::GenomeSpec gspec;
  gspec.num_contigs = 2;
  gspec.contig_length = 50'000;
  genome::ReferenceGenome reference = genome::GenerateGenome(gspec);
  genome::ReadSimSpec rspec;
  rspec.read_length = 101;
  rspec.seed = 42;
  genome::ReadSimulator sim(&reference, rspec);
  std::vector<genome::Read> reads = sim.Simulate(static_cast<size_t>(scenario.num_reads));

  storage::CephSimStore serial_store(StoreConfig());
  storage::CephSimStore overlapped_store(StoreConfig());
  // Sequencer output is staged outside the cluster (the paper's §5 shape: FASTQ on
  // local disk, AGD written to Ceph): both paths read the input from the same
  // unthrottled staging store and pay the cluster only for what they write.
  storage::MemoryStore staging;
  Check(WriteGzippedFastqToStore(&staging, "ds", reads).status(), "stage fastq");

  // --- Convert: FASTQ -> AGD import. ---
  format::Manifest serial_manifest;
  Stopwatch serial_convert_timer;
  auto serial_records = SerialImportFastqToAgd(&serial_store, &staging, "ds",
                                               scenario.chunk_size, &serial_manifest);
  const double serial_convert = serial_convert_timer.ElapsedSeconds();
  Check(serial_records.status(), "serial import");

  format::Manifest overlapped_manifest;
  Stopwatch overlapped_convert_timer;
  auto overlapped_report =
      ImportFastqToAgd(&overlapped_store, "ds", scenario.chunk_size,
                       compress::CodecId::kZlib, &overlapped_manifest, overlapped,
                       &staging);
  const double overlapped_convert = overlapped_convert_timer.ElapsedSeconds();
  Check(overlapped_report.status(), "overlapped import");
  if (overlapped_report->records != *serial_records) {
    std::fprintf(stderr, "record count mismatch: serial %llu overlapped %llu\n",
                 static_cast<unsigned long long>(*serial_records),
                 static_cast<unsigned long long>(overlapped_report->records));
    return 1;
  }

  // --- Dedup over a planted results column. ---
  serial_manifest.columns.push_back(format::ResultsColumn());
  overlapped_manifest.columns.push_back(format::ResultsColumn());
  Check(PlantResultsColumn(&serial_store, serial_manifest), "plant results");
  Check(PlantResultsColumn(&overlapped_store, overlapped_manifest), "plant results");

  Stopwatch serial_dedup_timer;
  auto serial_dups = SerialDedupAgdResults(&serial_store, serial_manifest);
  const double serial_dedup = serial_dedup_timer.ElapsedSeconds();
  Check(serial_dups.status(), "serial dedup");

  Stopwatch overlapped_dedup_timer;
  auto overlapped_dedup_report = DedupAgdResults(&overlapped_store, overlapped_manifest,
                                                 compress::CodecId::kZlib, overlapped);
  const double overlapped_dedup = overlapped_dedup_timer.ElapsedSeconds();
  Check(overlapped_dedup_report.status(), "overlapped dedup");
  if (overlapped_dedup_report->duplicates != *serial_dups) {
    std::fprintf(stderr, "duplicate count mismatch\n");
    return 1;
  }

  // --- Parity: both stores must hold exactly the same dataset bytes. ---
  auto keys = serial_store.List("ds-");
  Check(keys.status(), "list");
  Buffer a;
  Buffer b;
  for (const std::string& key : *keys) {
    Check(serial_store.Get(key, &a), "parity get");
    Check(overlapped_store.Get(key, &b), "parity get");
    if (a.view() != b.view()) {
      std::fprintf(stderr, "parity failure on object %s\n", key.c_str());
      return 1;
    }
  }

  const double serial_total = serial_convert + serial_dedup;
  const double overlapped_total = overlapped_convert + overlapped_dedup;
  auto speedup = [](double s, double o) { return o > 0 ? s / o : 0; };
  std::printf("convert: serial %6.3fs   overlapped %6.3fs   speedup %4.2fx\n",
              serial_convert, overlapped_convert,
              speedup(serial_convert, overlapped_convert));
  std::printf("dedup:   serial %6.3fs   overlapped %6.3fs   speedup %4.2fx\n",
              serial_dedup, overlapped_dedup, speedup(serial_dedup, overlapped_dedup));
  std::printf("total:   serial %6.3fs   overlapped %6.3fs   speedup %4.2fx\n",
              serial_total, overlapped_total, speedup(serial_total, overlapped_total));
  if (speedup(serial_total, overlapped_total) < 2.0) {
    std::printf("WARNING: overall overlap speedup %.2fx below the 2x target\n",
                speedup(serial_total, overlapped_total));
  }
  return 0;
}

}  // namespace
}  // namespace persona::pipeline

int main(int argc, char** argv) {
  persona::pipeline::Scenario scenario;
  if (argc > 1) {
    scenario.num_reads = std::atoi(argv[1]);
  }
  if (argc > 2) {
    scenario.chunk_size = std::atol(argv[2]);
  }
  if (scenario.num_reads <= 0 || scenario.chunk_size <= 0) {
    std::fprintf(stderr, "usage: %s [num_reads] [chunk_size]\n", argv[0]);
    return 1;
  }
  return persona::pipeline::Run(scenario);
}
