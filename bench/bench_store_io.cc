// Benchmark for the batched/async object-store protocol (paper §4.2, §4.4).
//
// Measures sequential one-op-at-a-time Put/Get loops against the batched entry points
// on the two stores with internal parallelism:
//   - CephSimStore: 7 simulated OSD nodes; batched ops fan out over per-node queues,
//     so aggregate throughput should approach num_nodes * per-node bandwidth while the
//     sequential loop is pinned to one transfer at a time (the Fig. 7 knee mechanism).
//   - ShardedStore over 8 throttled MemoryStores (a striped RAM store).
// Batched results are verified byte-identical to the sequential fetches.
//
// Usage: bench_store_io [num_objects] [object_kb]   (default 56 objects x 512 KB;
// CI smoke uses a smaller scenario)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/storage/cache_store.h"
#include "src/storage/ceph_sim.h"
#include "src/storage/fault_injection.h"
#include "src/storage/memory_store.h"
#include "src/storage/retry.h"
#include "src/storage/sharded_store.h"
#include "src/util/buffer.h"
#include "src/util/stopwatch.h"

namespace persona::storage {
namespace {

struct IoScenario {
  int num_objects = 56;
  size_t object_bytes = 512 << 10;
};

std::vector<std::string> MakePayloads(const IoScenario& scenario) {
  std::vector<std::string> payloads;
  payloads.reserve(static_cast<size_t>(scenario.num_objects));
  for (int i = 0; i < scenario.num_objects; ++i) {
    std::string payload(scenario.object_bytes, static_cast<char>('a' + (i % 26)));
    payloads.push_back(std::move(payload));
  }
  return payloads;
}

std::string Key(int i) { return "chunk-" + std::to_string(i) + ".bases"; }

double MbPerSec(uint64_t bytes, double seconds) {
  return seconds > 0 ? static_cast<double>(bytes) / 1e6 / seconds : 0;
}

// Returns {seq_put, seq_get, batch_put, batch_get} seconds. `seq_store` and
// `batch_store` are identically configured fresh instances so each path pays its own
// write traffic.
struct PathTimes {
  double seq_put = 0;
  double seq_get = 0;
  double batch_put = 0;
  double batch_get = 0;
};

PathTimes RunPaths(ObjectStore* seq_store, ObjectStore* batch_store,
                   const std::vector<std::string>& payloads) {
  PathTimes times;
  const int n = static_cast<int>(payloads.size());

  // --- Sequential scalar loops. ---
  Stopwatch seq_put_timer;
  for (int i = 0; i < n; ++i) {
    if (!seq_store->Put(Key(i), payloads[static_cast<size_t>(i)]).ok()) {
      std::fprintf(stderr, "sequential put failed\n");
      std::exit(1);
    }
  }
  times.seq_put = seq_put_timer.ElapsedSeconds();

  std::vector<Buffer> seq_outs(static_cast<size_t>(n));
  Stopwatch seq_get_timer;
  for (int i = 0; i < n; ++i) {
    if (!seq_store->Get(Key(i), &seq_outs[static_cast<size_t>(i)]).ok()) {
      std::fprintf(stderr, "sequential get failed\n");
      std::exit(1);
    }
  }
  times.seq_get = seq_get_timer.ElapsedSeconds();

  // --- Batched paths. ---
  std::vector<PutOp> puts;
  puts.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const std::string& payload = payloads[static_cast<size_t>(i)];
    puts.push_back({Key(i),
                    std::span<const uint8_t>(
                        reinterpret_cast<const uint8_t*>(payload.data()), payload.size()),
                    {}});
  }
  Stopwatch batch_put_timer;
  if (!batch_store->PutBatch(puts).ok()) {
    std::fprintf(stderr, "batched put failed\n");
    std::exit(1);
  }
  times.batch_put = batch_put_timer.ElapsedSeconds();

  std::vector<Buffer> batch_outs(static_cast<size_t>(n));
  std::vector<GetOp> gets;
  gets.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    gets.push_back({Key(i), &batch_outs[static_cast<size_t>(i)], {}});
  }
  Stopwatch batch_get_timer;
  if (!batch_store->GetBatch(gets).ok()) {
    std::fprintf(stderr, "batched get failed\n");
    std::exit(1);
  }
  times.batch_get = batch_get_timer.ElapsedSeconds();

  // Parity: the batched path must hand back exactly the sequential bytes.
  for (int i = 0; i < n; ++i) {
    if (batch_outs[static_cast<size_t>(i)].view() != seq_outs[static_cast<size_t>(i)].view()) {
      std::fprintf(stderr, "parity failure on object %d\n", i);
      std::exit(1);
    }
  }
  return times;
}

// Sequential scalar put+get on one store; fills `outs` with the fetched payloads.
// The flaky-store phase compares this path on a clean store vs a fault-injecting
// wrapper, so the delta is pure retry cost (re-attempts + backoff sleeps) with no
// structural difference in how ops are issued.
struct ScalarTimes {
  double put = 0;
  double get = 0;
};

ScalarTimes RunScalar(ObjectStore* store, const std::vector<std::string>& payloads,
                      std::vector<Buffer>* outs) {
  ScalarTimes times;
  const int n = static_cast<int>(payloads.size());
  Stopwatch put_timer;
  for (int i = 0; i < n; ++i) {
    if (!store->Put(Key(i), payloads[static_cast<size_t>(i)]).ok()) {
      std::fprintf(stderr, "flaky-phase put failed\n");
      std::exit(1);
    }
  }
  times.put = put_timer.ElapsedSeconds();

  outs->clear();
  outs->resize(static_cast<size_t>(n));
  Stopwatch get_timer;
  for (int i = 0; i < n; ++i) {
    if (!store->Get(Key(i), &(*outs)[static_cast<size_t>(i)]).ok()) {
      std::fprintf(stderr, "flaky-phase get failed\n");
      std::exit(1);
    }
  }
  times.get = get_timer.ElapsedSeconds();
  return times;
}

void Report(const char* store_name, const IoScenario& scenario, const PathTimes& t) {
  const uint64_t total =
      static_cast<uint64_t>(scenario.num_objects) * scenario.object_bytes;
  std::printf("%s\n", store_name);
  std::printf("  put: sequential %7.2f MB/s   batched %7.2f MB/s   speedup %4.2fx\n",
              MbPerSec(total, t.seq_put), MbPerSec(total, t.batch_put),
              t.batch_put > 0 ? t.seq_put / t.batch_put : 0);
  std::printf("  get: sequential %7.2f MB/s   batched %7.2f MB/s   speedup %4.2fx\n",
              MbPerSec(total, t.seq_get), MbPerSec(total, t.batch_get),
              t.batch_get > 0 ? t.seq_get / t.batch_get : 0);
}

int Run(const IoScenario& scenario) {
  std::printf("================================================================\n");
  std::printf("Object store I/O: sequential loop vs batched submission\n");
  std::printf("================================================================\n");
  std::printf("%d objects x %zu KB (%.1f MB total per path)\n\n", scenario.num_objects,
              scenario.object_bytes >> 10,
              static_cast<double>(scenario.num_objects) *
                  static_cast<double>(scenario.object_bytes) / 1e6);
  const std::vector<std::string> payloads = MakePayloads(scenario);

  // CephSim: scaled-down per-node bandwidth so the benchmark finishes in seconds while
  // keeping the paper's 7-node shape. Sequential gets pay one node at a time; batched
  // gets overlap all 7.
  {
    CephSimConfig config;
    config.num_osd_nodes = 7;
    config.replication = 3;
    config.per_node_bandwidth = 64'000'000;
    config.op_latency_sec = 0.0005;
    CephSimStore seq_store(config);
    CephSimStore batch_store(config);
    PathTimes times = RunPaths(&seq_store, &batch_store, payloads);
    Report("CephSimStore (7 OSD nodes, replication 3, 64 MB/s per node)", scenario,
           times);
    const double get_speedup = times.batch_get > 0 ? times.seq_get / times.batch_get : 0;
    if (get_speedup < 3.0) {
      std::printf("  WARNING: batched get speedup %.2fx below the 3x target\n",
                  get_speedup);
    }
  }
  std::printf("\n");

  // Sharded striped RAM store: 8 shards, each its own throttled device.
  {
    auto make_sharded = [] {
      return ShardedStore::Create(8, [](size_t shard) -> std::unique_ptr<ObjectStore> {
        DeviceProfile profile;
        profile.bandwidth_bytes_per_sec = 128'000'000;
        profile.op_latency_sec = 0.0002;
        profile.name = "shard-" + std::to_string(shard);
        return std::make_unique<MemoryStore>(std::make_shared<ThrottledDevice>(profile));
      });
    };
    auto seq_store = make_sharded();
    auto batch_store = make_sharded();
    PathTimes times = RunPaths(seq_store.get(), batch_store.get(), payloads);
    Report("ShardedStore<MemoryStore> (8 shards, 128 MB/s per shard)", scenario, times);
  }
  std::printf("\n");

  // Flaky store: ~5% of gets/puts fail transiently (kUnavailable) and the retry
  // policy absorbs them — the overhead a long pipeline pays to survive a lossy
  // cluster instead of dying on the first dropped op. Both sides run the scalar
  // loop so the delta is retry cost alone (the fault-injecting decorator
  // serializes batch submissions, which would drown the signal).
  {
    CephSimConfig config;
    config.num_osd_nodes = 7;
    config.replication = 3;
    config.per_node_bandwidth = 64'000'000;
    config.op_latency_sec = 0.0005;
    CephSimStore clean_store(config);
    CephSimStore flaky_base(config);

    FaultInjectingStoreOptions fault_options;
    fault_options.seed = FaultSeedFromEnv(1);
    fault_options.rules.push_back(
        FaultRule::TransientWithProbability(0.05, kFaultGet | kFaultPut));
    FaultInjectingStore flaky_store(&flaky_base, fault_options);
    RetryPolicy policy = RetryPolicy::Default();
    policy.max_attempts = 8;
    policy.initial_backoff_sec = 1e-4;
    policy.max_backoff_sec = 2e-3;
    flaky_store.SetRetryPolicy(policy);

    std::vector<Buffer> clean_outs;
    std::vector<Buffer> flaky_outs;
    const ScalarTimes clean = RunScalar(&clean_store, payloads, &clean_outs);
    const ScalarTimes flaky = RunScalar(&flaky_store, payloads, &flaky_outs);
    for (size_t i = 0; i < clean_outs.size(); ++i) {
      if (flaky_outs[i].view() != clean_outs[i].view()) {
        std::fprintf(stderr, "flaky-store parity failure on object %zu\n", i);
        std::exit(1);
      }
    }

    const uint64_t total =
        static_cast<uint64_t>(scenario.num_objects) * scenario.object_bytes;
    const StoreStats stats = flaky_store.stats();
    const FaultInjectionStats injected = flaky_store.injection_stats();
    std::printf(
        "FaultInjecting(CephSimStore), 5%% transient faults + retry (seed %llu)\n",
        static_cast<unsigned long long>(fault_options.seed));
    std::printf("  put: clean %7.2f MB/s   flaky %7.2f MB/s   overhead %5.1f%%\n",
                MbPerSec(total, clean.put), MbPerSec(total, flaky.put),
                clean.put > 0 ? (flaky.put / clean.put - 1) * 100 : 0);
    std::printf("  get: clean %7.2f MB/s   flaky %7.2f MB/s   overhead %5.1f%%\n",
                MbPerSec(total, clean.get), MbPerSec(total, flaky.get),
                clean.get > 0 ? (flaky.get / clean.get - 1) * 100 : 0);
    std::printf("  injected failures %llu   retries %llu   give-ups %llu\n",
                static_cast<unsigned long long>(injected.failures),
                static_cast<unsigned long long>(stats.retries),
                static_cast<unsigned long long>(stats.give_ups));
    if (stats.give_ups != 0 || stats.retries != injected.failures) {
      std::fprintf(stderr, "retry accounting broken: every injected transient must "
                           "cost exactly one retry and none may give up\n");
      std::exit(1);
    }
  }
  std::printf("\n");

  // Cached reread: the same dataset fetched twice, the shape of a region query
  // re-scanning its window, a sort merge revisiting spill files, or filter's ordered
  // stage refetching prefetched columns. Uncached, both rounds pay the simulated OSDs;
  // behind the cache tier the first round fills and the second is memory-served.
  {
    CephSimConfig config;
    config.num_osd_nodes = 7;
    config.replication = 3;
    config.per_node_bandwidth = 64'000'000;
    config.op_latency_sec = 0.0005;
    CephSimStore uncached_store(config);
    CephSimStore cached_base(config);
    CacheStoreOptions cache_options;  // default budget comfortably fits the dataset
    // Don't let the staging puts below populate the cache: round one must be a true
    // cold fill that pays the device, so the cold/warm split is visible.
    cache_options.cache_writes = false;
    CacheStore cache(&cached_base, cache_options);

    const int n = scenario.num_objects;
    const uint64_t total = static_cast<uint64_t>(n) * scenario.object_bytes;
    std::vector<PutOp> puts;
    puts.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      const std::string& payload = payloads[static_cast<size_t>(i)];
      puts.push_back({Key(i),
                      std::span<const uint8_t>(
                          reinterpret_cast<const uint8_t*>(payload.data()),
                          payload.size()),
                      {}});
    }
    if (!uncached_store.PutBatch(puts).ok() || !cache.PutBatch(puts).ok()) {
      std::fprintf(stderr, "cache-phase staging put failed\n");
      std::exit(1);
    }

    auto reread = [n](ObjectStore* store, std::vector<Buffer>* outs) {
      outs->resize(static_cast<size_t>(n));
      std::vector<GetOp> gets;
      gets.reserve(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) {
        gets.push_back({Key(i), &(*outs)[static_cast<size_t>(i)], {}});
      }
      Stopwatch timer;
      if (!store->GetBatch(gets).ok()) {
        std::fprintf(stderr, "cache-phase get failed\n");
        std::exit(1);
      }
      return timer.ElapsedSeconds();
    };

    std::vector<Buffer> uncached_outs;
    std::vector<Buffer> cached_outs;
    const double uncached_round1 = reread(&uncached_store, &uncached_outs);
    const double uncached_round2 = reread(&uncached_store, &uncached_outs);
    const double cached_cold = reread(&cache, &cached_outs);
    const uint64_t warm_allocations_before = Buffer::TotalAllocations();
    const double cached_warm = reread(&cache, &cached_outs);
    const uint64_t warm_allocations =
        Buffer::TotalAllocations() - warm_allocations_before;

    // Byte parity: the warm, memory-served round returns exactly the device bytes.
    for (int i = 0; i < n; ++i) {
      if (cached_outs[static_cast<size_t>(i)].view() !=
          uncached_outs[static_cast<size_t>(i)].view()) {
        std::fprintf(stderr, "cache parity failure on object %d\n", i);
        std::exit(1);
      }
    }

    const StoreStats stats = cache.stats();
    const double speedup = cached_warm > 0 ? uncached_round2 / cached_warm : 0;
    std::printf("CacheStore(CephSimStore), reread-heavy phase\n");
    std::printf("  uncached reread: round1 %7.2f MB/s   round2 %7.2f MB/s\n",
                MbPerSec(total, uncached_round1), MbPerSec(total, uncached_round2));
    std::printf("  cached reread:   cold   %7.2f MB/s   warm   %7.2f MB/s\n",
                MbPerSec(total, cached_cold), MbPerSec(total, cached_warm));
    std::printf("  warm vs uncached speedup %.1fx   hits %llu   misses %llu   "
                "hit bytes %llu   warm-round buffer allocations %llu\n",
                speedup, static_cast<unsigned long long>(stats.cache_hits),
                static_cast<unsigned long long>(stats.cache_misses),
                static_cast<unsigned long long>(stats.cache_hit_bytes),
                static_cast<unsigned long long>(warm_allocations));
    if (speedup < 3.0) {
      std::fprintf(stderr, "warm cache speedup %.2fx below the 3x contract\n", speedup);
      std::exit(1);
    }
    if (warm_allocations != 0) {
      std::fprintf(stderr, "warm reread allocated %llu buffers; the zero-copy hit "
                           "path must reuse the caller's blocks\n",
                   static_cast<unsigned long long>(warm_allocations));
      std::exit(1);
    }
  }
  return 0;
}

}  // namespace
}  // namespace persona::storage

int main(int argc, char** argv) {
  persona::storage::IoScenario scenario;
  if (argc > 1) {
    scenario.num_objects = std::atoi(argv[1]);
  }
  if (argc > 2) {
    scenario.object_bytes = static_cast<size_t>(std::atol(argv[2])) << 10;
  }
  if (scenario.num_objects <= 0 || scenario.object_bytes == 0) {
    std::fprintf(stderr, "usage: %s [num_objects] [object_kb]\n", argv[0]);
    return 1;
  }
  return persona::storage::Run(scenario);
}
