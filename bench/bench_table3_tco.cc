// Table 3 reproduction: cluster TCO and alignment costs (paper §6.1).
//
// This is an analytical model with published inputs, so the numbers should match the
// paper directly: $613K capex, $943K 5-year TCO, ~6 cents/alignment, ~$8.83 storage per
// genome, $6.72 for 5 years of Glacier.

#include <cstdio>

#include "src/tco/tco_model.h"

int main() {
  std::printf("================================================================\n");
  std::printf("Table 3: Cluster TCO and alignment costs\n");
  std::printf("================================================================\n\n");

  persona::tco::TcoParams params;
  persona::tco::TcoReport report = persona::tco::ComputeTco(params);
  std::printf("%s\n", persona::tco::FormatTcoTable(params, report).c_str());

  std::printf("Paper values: $613K capex, $943K TCO(5yr), 6.07c/alignment,\n");
  std::printf("              $8.83 storage/genome (21GB genomes), $6.72 Glacier 5yr.\n\n");

  // Sensitivity: the paper's "not to exceed" 60:7 compute-to-storage ratio.
  std::printf("Sensitivity: compute-tier scaling at fixed storage (60:7 rule)\n");
  std::printf("%16s %18s %22s\n", "compute servers", "alignments/day", "cost/alignment");
  for (int servers : {16, 32, 60, 120}) {
    persona::tco::TcoParams p;
    p.compute_servers = servers;
    // Fabric ports track the server count (1 port/server + storage + uplinks).
    p.fabric_ports = servers + 7;
    persona::tco::TcoReport r = persona::tco::ComputeTco(p);
    std::printf("%16d %18.0f %20.2fc\n", servers, r.alignments_per_day,
                r.cost_per_alignment_cents);
  }

  // Long-term storage vs compute (paper: storage dominates by two orders of magnitude).
  persona::tco::TcoParams full;
  full.genome_size_gb = 21;
  persona::tco::TcoReport full_report = persona::tco::ComputeTco(full);
  std::printf("\nPer-genome economics: alignment %.2fc vs storage $%.2f (%.0fx)\n",
              report.cost_per_alignment_cents, full_report.storage_cost_per_genome,
              full_report.storage_cost_per_genome /
                  (report.cost_per_alignment_cents / 100));
  return 0;
}
