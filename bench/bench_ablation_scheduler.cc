// Ablation: straggler-avoidance strategies for skewed chunk costs (paper §4.5).
//
// The paper argues: "A server can become a straggler if its queue contains 'expensive'
// chunks with high compute latency. Work stealing is an alternative to avoid stragglers,
// but the approach of bounding the queues is simpler and incurs less communication."
// This bench measures all three points of that design space on one skewed workload:
//
//   static        chunks pre-assigned in contiguous slices, no balancing — the
//                 straggler baseline
//   shared-queue  Persona's executor resource (§4.3): one bounded central queue,
//                 workers pull when free (greedy list scheduling)
//   work-steal    per-worker deques with stealing (src/dataflow/work_stealing.h)
//
// "Work" is deterministic spin units attributed to the executing worker, so imbalance
// (max/mean per-worker work) is meaningful even on a single hardware core. Steal events
// are the communication cost the paper refers to; the shared queue pays none.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/dataflow/executor.h"
#include "src/dataflow/work_stealing.h"
#include "src/util/rng.h"

namespace persona::bench {
namespace {

constexpr int kWorkers = 4;
constexpr int kTasks = 600;
constexpr int kBursts = 2;           // expensive chunks cluster (repeat-dense regions)
constexpr int kBurstLength = 20;
constexpr uint64_t kCheapUnits = 40;
constexpr uint64_t kExpensiveUnits = 1'200;  // 30x cost skew

// One deterministic work unit (opaque to the optimizer).
void Spin(uint64_t units) {
  volatile uint64_t x = 0;
  for (uint64_t i = 0; i < units * 1'000; ++i) {
    x = x + i;
  }
}

// Chunk costs in dataset order: mostly cheap, with contiguous bursts of expensive
// chunks. Bursts model what real genomes do — repeat-dense regions produce runs of
// high-latency chunks, which is exactly the input that turns a statically assigned
// node into a straggler.
std::vector<uint64_t> MakeSkewedCosts() {
  Rng rng(4242);
  std::vector<uint64_t> costs(kTasks, kCheapUnits);
  for (int b = 0; b < kBursts; ++b) {
    const size_t start = rng.Uniform(kTasks - kBurstLength);
    for (int k = 0; k < kBurstLength; ++k) {
      costs[start + static_cast<size_t>(k)] = kExpensiveUnits;
    }
  }
  return costs;
}

// Static assignment: worker w owns the contiguous slice [w*N/W, (w+1)*N/W) — the
// natural naive split of a chunk list across nodes.
int StaticHome(size_t task_index) {
  return static_cast<int>(task_index * kWorkers / kTasks);
}

// Attributes work units to whichever OS thread executes each task.
class WorkLedger {
 public:
  void Charge(uint64_t units) {
    std::lock_guard<std::mutex> lock(mu_);
    per_thread_[std::this_thread::get_id()] += units;
  }

  // {max, mean} over workers that executed anything, padded to `expected_workers`.
  std::pair<uint64_t, double> MaxAndMean(size_t expected_workers) const {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t max = 0;
    uint64_t total = 0;
    for (const auto& [id, units] : per_thread_) {
      max = std::max(max, units);
      total += units;
    }
    const double mean =
        static_cast<double>(total) / static_cast<double>(expected_workers);
    return {max, mean};
  }

 private:
  mutable std::mutex mu_;
  std::map<std::thread::id, uint64_t> per_thread_;
};

struct StrategyResult {
  const char* name;
  uint64_t makespan_units;  // max per-worker attributed work
  double imbalance;         // makespan / mean
  uint64_t steals;
  double wall_seconds;
};

void PrintResult(const StrategyResult& r) {
  std::printf("  %-13s makespan %8llu units   imbalance %5.2fx   steal events %5llu   "
              "wall %.3f s\n",
              r.name, static_cast<unsigned long long>(r.makespan_units), r.imbalance,
              static_cast<unsigned long long>(r.steals), r.wall_seconds);
}

// Static partitioning: analytic — each worker processes exactly its slice.
StrategyResult RunStatic(const std::vector<uint64_t>& costs) {
  std::vector<uint64_t> work(kWorkers, 0);
  for (size_t i = 0; i < costs.size(); ++i) {
    work[static_cast<size_t>(StaticHome(i))] += costs[i];
  }
  uint64_t max = 0;
  uint64_t total = 0;
  for (uint64_t w : work) {
    max = std::max(max, w);
    total += w;
  }
  return {"static", max, static_cast<double>(max) * kWorkers / static_cast<double>(total),
          0, 0.0};
}

// Persona's executor resource: one shared queue, workers pull when free.
StrategyResult RunSharedQueue(const std::vector<uint64_t>& costs) {
  WorkLedger ledger;
  Stopwatch timer;
  dataflow::Executor executor(kWorkers);
  {
    dataflow::TaskBatch batch(&executor);
    for (uint64_t cost : costs) {
      batch.Add([cost, &ledger] {
        Spin(cost);
        ledger.Charge(cost);
      });
    }
    batch.Wait();
  }
  const double wall = timer.ElapsedSeconds();
  auto [max, mean] = ledger.MaxAndMean(kWorkers);
  return {"shared-queue", max, static_cast<double>(max) / mean, 0, wall};
}

StrategyResult RunWorkStealing(const std::vector<uint64_t>& costs) {
  WorkLedger ledger;
  Stopwatch timer;
  uint64_t steals = 0;
  {
    dataflow::WorkStealingPool pool(kWorkers);
    for (size_t i = 0; i < costs.size(); ++i) {
      const uint64_t cost = costs[i];
      const bool submitted = pool.Submit(
          [cost, &ledger] {
            Spin(cost);
            ledger.Charge(cost);
          },
          /*home=*/StaticHome(i));  // same initial placement the static split uses
      if (!submitted) {
        std::fprintf(stderr, "work-stealing pool rejected a task\n");
        std::abort();
      }
    }
    pool.Drain();
    steals = pool.steals();
  }
  const double wall = timer.ElapsedSeconds();
  auto [max, mean] = ledger.MaxAndMean(kWorkers);
  return {"work-steal", max, static_cast<double>(max) / mean, steals, wall};
}

// --- Fig. 4 ablation: subchunk granularity ---
//
// "We found the granularity of AGD chunks, being optimized for storage, is too coarse
// for threads and produces work imbalance that leads to stragglers" (§4.3). Here: a few
// storage-granular chunks of uneven cost, split into subchunk tasks of decreasing size,
// all run through the shared executor. Finer tasks balance better; the price is task
// count (queueing/notification overhead).

void RunGranularitySweep() {
  constexpr int kChunks = 6;
  Rng rng(99);
  std::vector<uint64_t> chunk_costs;
  uint64_t total = 0;
  for (int i = 0; i < kChunks; ++i) {
    chunk_costs.push_back(2'000 + rng.Uniform(8'000));
    total += chunk_costs.back();
  }
  std::printf("%d chunks on %d workers, chunk costs 2k-10k units, total %llu "
              "(ideal makespan %llu)\n\n",
              kChunks, kWorkers, static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(total / kWorkers));

  for (uint64_t granularity : {uint64_t{0}, uint64_t{2'000}, uint64_t{500}, uint64_t{100}}) {
    WorkLedger ledger;
    size_t tasks = 0;
    Stopwatch timer;
    {
      dataflow::Executor executor(kWorkers);
      dataflow::TaskBatch batch(&executor);
      for (uint64_t cost : chunk_costs) {
        const uint64_t step = granularity == 0 ? cost : granularity;  // 0 = whole chunk
        for (uint64_t done = 0; done < cost; done += step) {
          const uint64_t units = std::min(step, cost - done);
          batch.Add([units, &ledger] {
            Spin(units);
            ledger.Charge(units);
          });
          ++tasks;
        }
      }
      batch.Wait();
    }
    const double wall = timer.ElapsedSeconds();
    auto [max, mean] = ledger.MaxAndMean(kWorkers);
    std::printf("  subchunk %5s units: %4zu tasks   makespan %6llu units   imbalance "
                "%5.2fx   wall %.3f s\n",
                granularity == 0 ? "chunk" : std::to_string(granularity).c_str(), tasks,
                static_cast<unsigned long long>(max),
                static_cast<double>(max) / mean, wall);
  }

  std::printf("\nShape targets: whole-chunk tasks leave workers idle behind the largest "
              "chunks\n(imbalance >> 1); splitting to subchunks drives imbalance toward "
              "1.0 at the cost of\nmore queue operations — why Persona decouples storage "
              "granularity from task\ngranularity (Fig. 4).\n");
}

int Main() {
  PrintHeader("Ablation: straggler avoidance — static vs shared queue vs work stealing "
              "(paper §4.5)");
  std::vector<uint64_t> costs = MakeSkewedCosts();
  uint64_t total = 0;
  uint64_t expensive = 0;
  for (uint64_t c : costs) {
    total += c;
    expensive += c == kExpensiveUnits ? 1 : 0;
  }
  std::printf("%d tasks on %d workers; %llu expensive chunks in %d bursts (%llux cost "
              "skew); total %llu units (ideal makespan %llu)\n\n",
              kTasks, kWorkers, static_cast<unsigned long long>(expensive), kBursts,
              static_cast<unsigned long long>(kExpensiveUnits / kCheapUnits),
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(total / kWorkers));

  PrintResult(RunStatic(costs));
  PrintResult(RunSharedQueue(costs));
  PrintResult(RunWorkStealing(costs));

  std::printf("\nShape targets: static partitioning stalls on whichever worker drew the "
              "most\nexpensive chunks (imbalance well above 1); both dynamic strategies "
              "stay near 1.0.\nWork stealing matches the shared queue's balance but pays "
              "for it in steal events\n(its 'communication'), which is why Persona bounds "
              "central queues instead (§4.5).\n");

  PrintHeader("Ablation: storage-granular chunks vs fine-grain subchunk tasks "
              "(paper §4.3, Fig. 4)");
  RunGranularitySweep();
  return 0;
}

}  // namespace
}  // namespace persona::bench

int main() { return persona::bench::Main(); }
