// Table 2 reproduction: dataset sort time, single server.
//
// Paper (Table 2):
//   Persona                 556 s   1.00x
//   Samtools                856 s   1.54x
//   Samtools w/ conversion 1289 s   2.32x
//   Picard                 2866 s   5.15x
//
// Shape to reproduce: Persona (columnar AGD, parallel superchunk sort) fastest;
// samtools-like (binary rows) next; adding the SAM->BAM conversion costs more; the
// single-threaded, text-parsing picard-like sort is slowest by a wide margin.

#include <memory>

#include "bench/bench_common.h"
#include "src/format/sam.h"
#include "src/pipeline/agd_store_util.h"
#include "src/pipeline/convert.h"
#include "src/pipeline/persona_pipeline.h"
#include "src/pipeline/row_sort_baseline.h"
#include "src/pipeline/sort.h"
#include "src/storage/memory_store.h"

namespace persona::bench {
namespace {

void Run() {
  PrintHeader("Table 2: Dataset Sort Time, Single Server (scaled reproduction)");
  ScenarioSpec spec;
  spec.num_reads = 30'000;
  spec.genome_length = 300'000;
  Scenario scenario = BuildScenario(spec);
  PrintCalibration(scenario);

  // Stage an aligned dataset (AGD + SAM + BSAM forms of the same records), on a
  // RAID0-class device as in the paper's single-server sort experiment.
  auto device = std::make_shared<storage::ThrottledDevice>(
      storage::DeviceProfile::Raid0(scenario.device_scale * 4));
  storage::MemoryStore store(device);
  auto manifest = pipeline::WriteAgdToStore(&store, "ds", scenario.reads, 2'000);
  PERSONA_CHECK_OK(manifest.status());
  {
    align::SnapAligner aligner(&scenario.reference, scenario.seed_index.get());
    dataflow::Executor executor(2);
    pipeline::AlignPipelineOptions options;
    options.align_nodes = 2;
    PERSONA_CHECK_OK(
        pipeline::RunPersonaAlignment(&store, *manifest, aligner, &executor, options)
            .status());
  }
  manifest->columns.push_back(format::ResultsColumn());
  PERSONA_CHECK_OK(
      pipeline::ExportAgdToSam(&store, *manifest, scenario.reference, "rows.sam").status());
  PERSONA_CHECK_OK(pipeline::ExportAgdToBsam(&store, *manifest, "rows.bsam").status());

  // Phase timings per tool: (serial prologue, parallelizable phase, serial merge).
  // The projection to the paper's 48-thread node applies Amdahl per tool:
  //   Persona:  phase 1 parallel across superchunks; merge ~60% offloadable (per-chunk
  //             output encode runs on writer nodes) -> 40% of merge stays serial.
  //   samtools: phase 1 parallel; the merge writes one BGZF stream -> fully serial.
  //   +conv:    adds a serial SAM-text parse/convert prologue.
  //   Picard:   entirely single-threaded.
  struct Row {
    const char* name;
    double serial_prologue;
    double parallel_phase;
    double serial_merge;
    double measured;
  };
  std::vector<Row> rows;

  {
    pipeline::SortOptions options;
    options.chunks_per_superchunk = 4;
    options.sort_threads = 2;
    format::Manifest sorted;
    auto report = pipeline::SortAgdDataset(&store, *manifest, "sorted", options, &sorted);
    PERSONA_CHECK_OK(report.status());
    rows.push_back({"Persona", 0, report->phase1_seconds + 0.6 * report->merge_seconds,
                    0.4 * report->merge_seconds, report->seconds});
  }
  {
    pipeline::RowSortOptions options;
    options.threads = 2;
    options.records_per_superchunk = 8'000;
    auto report = pipeline::SamtoolsLikeSort(&store, scenario.reference, "rows.bsam",
                                             "st.bsam", options, /*convert_from_sam=*/false);
    PERSONA_CHECK_OK(report.status());
    rows.push_back({"Samtools", 0, report->phase1_seconds, report->merge_seconds,
                    report->seconds});
  }
  {
    pipeline::RowSortOptions options;
    options.threads = 2;
    options.records_per_superchunk = 8'000;
    auto report = pipeline::SamtoolsLikeSort(&store, scenario.reference, "rows.sam",
                                             "stc.bsam", options, /*convert_from_sam=*/true);
    PERSONA_CHECK_OK(report.status());
    // The conversion's text parse is serial; BAM block compression in the paper-era
    // samtools overlapped only partially (calibrated at 50% parallelizable).
    rows.push_back({"Samtools w/ conversion",
                    report->convert_seconds + 0.5 * report->convert_encode_seconds,
                    0.5 * report->convert_encode_seconds + report->phase1_seconds,
                    report->merge_seconds, report->seconds});
  }
  {
    auto report = pipeline::PicardLikeSort(&store, scenario.reference, "rows.bsam",
                                           "picard.bsam");
    PERSONA_CHECK_OK(report.status());
    rows.push_back({"Picard", report->phase1_seconds + report->merge_seconds, 0, 0,
                    report->seconds});
  }

  std::printf("\n(1) Measured on this single-core container\n");
  std::printf("%-24s %10s %10s %10s %10s\n", "Tool", "total", "prologue", "parallel",
              "ser.merge");
  for (const Row& row : rows) {
    std::printf("%-24s %9.2fs %9.2fs %9.2fs %9.2fs\n", row.name, row.measured,
                row.serial_prologue, row.parallel_phase, row.serial_merge);
  }

  std::printf("\n(2) Projected to the paper's 48-thread node (Amdahl per tool)\n");
  std::printf("%-24s %10s %10s   (paper)\n", "Tool", "Time", "Slowdown");
  const char* paper[] = {"1.00x", "1.54x", "2.32x", "5.15x"};
  constexpr double kThreads = 48;
  std::vector<double> projected;
  for (const Row& row : rows) {
    projected.push_back(row.serial_prologue + row.parallel_phase / kThreads +
                        row.serial_merge);
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    std::printf("%-24s %9.3fs %9.2fx   %s\n", rows[i].name, projected[i],
                projected[i] / projected[0], paper[i]);
  }
}

}  // namespace
}  // namespace persona::bench

int main() {
  persona::bench::Run();
  return 0;
}
