// §5.7 reproduction: conversion and compatibility throughput.
//
// Paper: FASTQ imports to AGD at 360 MB/s; BAM exports from AGD at 82 MB/s.
// Shape to reproduce: import runs several times faster than export (import streams
// text into columns; export must gather all columns, re-encode rows, and compress).

#include "bench/bench_common.h"
#include "src/pipeline/agd_store_util.h"
#include "src/pipeline/convert.h"
#include "src/pipeline/persona_pipeline.h"
#include "src/storage/memory_store.h"

namespace persona::bench {
namespace {

void Run() {
  PrintHeader("Section 5.7: Conversion and compatibility (scaled reproduction)");
  ScenarioSpec spec;
  spec.num_reads = 40'000;
  spec.genome_length = 300'000;
  Scenario scenario = BuildScenario(spec);
  PrintCalibration(scenario);

  storage::MemoryStore store;
  PERSONA_CHECK_OK(pipeline::WriteGzippedFastqToStore(&store, "imp", scenario.reads).status());

  // FASTQ -> AGD import.
  format::Manifest manifest;
  auto import_report =
      pipeline::ImportFastqToAgd(&store, "imp", 4'000, compress::CodecId::kZlib, &manifest);
  PERSONA_CHECK_OK(import_report.status());

  // Align so the export path has a results column (as in the paper's pipeline).
  {
    align::SnapAligner aligner(&scenario.reference, scenario.seed_index.get());
    dataflow::Executor executor(2);
    pipeline::AlignPipelineOptions options;
    options.align_nodes = 2;
    PERSONA_CHECK_OK(
        pipeline::RunPersonaAlignment(&store, manifest, aligner, &executor, options)
            .status());
    manifest.columns.push_back(format::ResultsColumn());
  }

  // AGD -> BSAM (BAM-equivalent) export.
  auto bsam_report = pipeline::ExportAgdToBsam(&store, manifest, "out.bsam");
  PERSONA_CHECK_OK(bsam_report.status());

  // AGD -> SAM text export, for reference.
  auto sam_report = pipeline::ExportAgdToSam(&store, manifest, scenario.reference, "out.sam");
  PERSONA_CHECK_OK(sam_report.status());

  std::printf("\n%-22s %12s %12s %14s\n", "Conversion", "records", "seconds",
              "throughput");
  std::printf("%-22s %12llu %11.3fs %11.1f MB/s\n", "FASTQ -> AGD import",
              static_cast<unsigned long long>(import_report->records),
              import_report->seconds, import_report->throughput_mb_per_sec);
  std::printf("%-22s %12llu %11.3fs %11.1f MB/s\n", "AGD -> BSAM export",
              static_cast<unsigned long long>(bsam_report->records), bsam_report->seconds,
              bsam_report->throughput_mb_per_sec);
  std::printf("%-22s %12llu %11.3fs %11.1f MB/s\n", "AGD -> SAM export",
              static_cast<unsigned long long>(sam_report->records), sam_report->seconds,
              sam_report->throughput_mb_per_sec);
  std::printf("\nImport/export ratio: %.2fx   (paper: 360 MB/s vs 82 MB/s = 4.4x)\n",
              import_report->throughput_mb_per_sec / bsam_report->throughput_mb_per_sec);
}

}  // namespace
}  // namespace persona::bench

int main() {
  persona::bench::Run();
  return 0;
}
