// Micro-benchmark for the SNAP seeding+verification hot path (the framework's single
// hottest loop; every pipeline workload inherits its throughput).
//
// Runs the batched, allocation-free AlignBatch entry point over a fixed-seed synthetic
// scenario and reports wall throughput plus per-kernel-phase attribution from the
// AlignProfile clocks (read once per batch phase). A second section runs the per-read
// Align() wrapper for comparison; its remaining gap over the batch path is the
// per-call overhead batching removes.
//
// Usage: bench_align_hotpath [num_reads]   (default 6000; CI smoke uses a small count)

#include <cstdlib>

#include "bench/bench_common.h"

namespace persona::bench {
namespace {

struct HotpathResult {
  double seconds = 0;
  uint64_t bases = 0;
  align::AlignProfile profile;
};

HotpathResult RunBatched(const align::SnapAligner& aligner,
                         std::span<const genome::Read> reads, size_t batch_size) {
  HotpathResult out;
  auto scratch = aligner.MakeScratch();
  std::vector<align::AlignmentResult> results(reads.size());
  Stopwatch timer;
  for (size_t begin = 0; begin < reads.size(); begin += batch_size) {
    const size_t count = std::min(batch_size, reads.size() - begin);
    aligner.AlignBatch(reads.subspan(begin, count), {results.data() + begin, count},
                       scratch.get(), &out.profile);
  }
  out.seconds = timer.ElapsedSeconds();
  for (const auto& read : reads) {
    out.bases += read.bases.size();
  }
  return out;
}

HotpathResult RunBatchedAtLevel(const align::SnapAligner& aligner,
                                std::span<const genome::Read> reads, size_t batch_size,
                                SimdLevel level,
                                std::vector<align::AlignmentResult>* results) {
  HotpathResult out;
  auto scratch = aligner.MakeScratch();
  results->assign(reads.size(), align::AlignmentResult{});
  Stopwatch timer;
  for (size_t begin = 0; begin < reads.size(); begin += batch_size) {
    const size_t count = std::min(batch_size, reads.size() - begin);
    aligner.AlignBatchAtLevel(reads.subspan(begin, count),
                              {results->data() + begin, count}, scratch.get(),
                              &out.profile, level);
  }
  out.seconds = timer.ElapsedSeconds();
  for (const auto& read : reads) {
    out.bases += read.bases.size();
  }
  return out;
}

HotpathResult RunPerRead(const align::SnapAligner& aligner,
                         std::span<const genome::Read> reads) {
  HotpathResult out;
  Stopwatch timer;
  for (const auto& read : reads) {
    (void)aligner.Align(read, &out.profile);
  }
  out.seconds = timer.ElapsedSeconds();
  for (const auto& read : reads) {
    out.bases += read.bases.size();
  }
  return out;
}

void Report(const char* label, const HotpathResult& r) {
  const double reads = static_cast<double>(r.profile.reads);
  const double kernel_ns = static_cast<double>(r.profile.seed_ns + r.profile.verify_ns);
  std::printf("%-10s reads/s=%10.0f  Mbases/s=%7.2f  kernel_Mbases/s=%7.2f\n", label,
              reads / r.seconds, static_cast<double>(r.bases) / r.seconds / 1e6,
              static_cast<double>(r.bases) / kernel_ns * 1e3);
  std::printf("%-10s seed_ns/read=%8.0f  verify_ns/read=%8.0f  candidates/read=%.2f\n",
              label, static_cast<double>(r.profile.seed_ns) / reads,
              static_cast<double>(r.profile.verify_ns) / reads,
              static_cast<double>(r.profile.candidates) / reads);
}

void Run(size_t num_reads) {
  PrintHeader("Aligner hot path: batched seeding+verification throughput");
  ScenarioSpec spec;
  spec.num_reads = num_reads;
  Scenario scenario = BuildScenario(spec);
  PrintCalibration(scenario);

  align::SnapAligner aligner(&scenario.reference, scenario.seed_index.get());

  std::printf("\nreads=%zu read_length=%d genome=%lld\n", scenario.reads.size(),
              spec.read_length, static_cast<long long>(spec.genome_length));
  // Warm-up pass: fault in the index and read pages so the first timed run is not
  // charged for cold caches.
  (void)RunBatched(aligner, scenario.reads, 512);
  HotpathResult single = RunPerRead(aligner, scenario.reads);
  Report("per-read", single);
  for (size_t batch_size : {64u, 256u, 512u}) {
    HotpathResult batched = RunBatched(aligner, scenario.reads, batch_size);
    std::string label = "batch-" + std::to_string(batch_size);
    Report(label.c_str(), batched);
  }

  // Dispatch-level phase: identical batch-512 runs pinned to each SIMD level,
  // parity-checked in-run against the scalar pass (position, score, CIGAR —
  // the vector kernels are parity oracles, so any mismatch is a bug, not noise).
  // The scalar row is also what PERSONA_SIMD=off would run.
  std::printf("\ndispatch levels (batch-512, parity vs scalar in-run):\n");
  std::vector<align::AlignmentResult> scalar_results;
  std::vector<align::AlignmentResult> level_results;
  HotpathResult scalar =
      RunBatchedAtLevel(aligner, scenario.reads, 512, SimdLevel::kScalar, &scalar_results);
  std::printf("level-%-6s Mbases/s=%7.2f  verify_ns/read=%8.0f  (baseline)\n", "off",
              static_cast<double>(scalar.bases) / scalar.seconds / 1e6,
              static_cast<double>(scalar.profile.verify_ns) /
                  static_cast<double>(scalar.profile.reads));
  for (SimdLevel level : {SimdLevel::kSse4, SimdLevel::kAvx2}) {
    if (!SimdLevelSupported(level)) {
      std::printf("level-%-6s (not supported on this CPU)\n",
                  std::string(SimdLevelName(level)).c_str());
      continue;
    }
    HotpathResult leveled =
        RunBatchedAtLevel(aligner, scenario.reads, 512, level, &level_results);
    const bool match = level_results == scalar_results;
    std::printf("level-%-6s Mbases/s=%7.2f  verify_ns/read=%8.0f  (%.2fx, results %s)\n",
                std::string(SimdLevelName(level)).c_str(),
                static_cast<double>(leveled.bases) / leveled.seconds / 1e6,
                static_cast<double>(leveled.profile.verify_ns) /
                    static_cast<double>(leveled.profile.reads),
                scalar.seconds / leveled.seconds, match ? "identical" : "MISMATCH");
  }
}

}  // namespace
}  // namespace persona::bench

int main(int argc, char** argv) {
  size_t num_reads = 6'000;
  if (argc > 1) {
    num_reads = static_cast<size_t>(std::strtoull(argv[1], nullptr, 10));
    if (num_reads == 0) {
      num_reads = 6'000;
    }
  }
  persona::bench::Run(num_reads);
  return 0;
}
