// Figure 7 reproduction: cluster throughput vs number of compute nodes.
//
// Paper: "Actual" (measured, 1..32 nodes) scales linearly to 1.353 Gbases/s at 32 nodes
// (16.7 s per genome); the validated "Simulation" line extends to 100 nodes and shows
// the Ceph cluster saturating at ~60 nodes, limited by result-write performance.
//
// Here: the "Actual" series runs real multi-node Persona pipelines (in-process nodes,
// shared simulated object store, shared manifest server) at small node counts; the
// "Simulation" series is the discrete-event model at paper scale. The bench also prints
// the validation comparison between the two at the overlapping node counts, mirroring
// the paper's methodology.

#include "bench/bench_common.h"
#include "src/cluster/cluster_runner.h"
#include "src/cluster/des_sim.h"
#include "src/pipeline/agd_store_util.h"
#include "src/storage/ceph_sim.h"

namespace persona::bench {
namespace {

void Run() {
  PrintHeader("Figure 7: Cluster scaling — Actual (measured) and Simulation");
  ScenarioSpec spec;
  spec.num_reads = 6'000;
  Scenario scenario = BuildScenario(spec);
  PrintCalibration(scenario);

  // ---- Actual: real pipelines over a shared simulated Ceph store. ----
  std::printf("\n(1) Actual (in-process nodes, %zu reads, shared object store)\n",
              scenario.reads.size());
  std::printf("%7s %12s %16s %12s %14s %12s\n", "nodes", "seconds", "Mbases/s",
              "imbalance", "vs 1-node", "store MB/s");
  align::SnapAligner aligner(&scenario.reference, scenario.seed_index.get());
  double one_node_rate = 0;
  std::vector<std::pair<int, double>> actual;  // (nodes, Mbases/s)
  for (int nodes : {1, 2, 3, 4}) {
    storage::CephSimConfig ceph_config =
        storage::CephSimConfig::Scaled(scenario.device_scale * nodes);
    storage::CephSimStore store(ceph_config);
    auto manifest = pipeline::WriteAgdToStore(&store, "cl", scenario.reads, 250);
    PERSONA_CHECK_OK(manifest.status());

    cluster::ClusterOptions options;
    options.num_nodes = nodes;
    options.threads_per_node = 1;
    options.node_options.read_parallelism = 1;
    options.node_options.parse_parallelism = 1;
    options.node_options.align_nodes = 1;
    options.node_options.write_parallelism = 1;
    auto report = cluster::RunCluster(&store, *manifest, aligner, options);
    PERSONA_CHECK_OK(report.status());
    double mbases = report->gigabases_per_sec * 1000;
    if (nodes == 1) {
      one_node_rate = mbases;
    }
    actual.emplace_back(nodes, mbases);
    std::printf("%7d %11.2fs %16.2f %11.1f%% %13.2fx %11.2f\n", nodes, report->seconds,
                mbases, report->imbalance() * 100, mbases / one_node_rate,
                report->store_read_mb_per_sec);
  }
  std::printf("note: node counts limited by this container's single core; the paper's\n"
              "32-node 'Actual' region is covered by the validated simulation below.\n");

  // ---- Simulation: DES at paper scale. ----
  std::printf("\n(2) Simulation (paper-scale DES: 2231 chunks, 100k reads/chunk)\n");
  std::printf("%7s %12s %20s %12s %13s\n", "nodes", "seconds", "Gbases aligned/s",
              "read util", "write util");
  cluster::DesParams params;
  for (int nodes : {1, 2, 4, 8, 16, 32, 40, 50, 60, 70, 80, 90, 100}) {
    cluster::DesPoint point = cluster::SimulateCluster(params, nodes);
    std::printf("%7d %11.1fs %20.3f %11.0f%% %12.0f%%\n", nodes, point.seconds,
                point.gigabases_per_sec, point.read_utilization * 100,
                point.write_utilization * 100);
  }

  // ---- Validation: scaled-down DES vs measured actual (paper §5.5 methodology). ----
  std::printf("\n(3) Validation: simulation vs actual at overlapping node counts\n");
  cluster::DesParams small;
  small.num_chunks = static_cast<int64_t>((scenario.reads.size() + 249) / 250);
  small.reads_per_chunk = 250;
  small.read_length = 101;
  small.chunk_read_mb = 0.02;   // scaled dataset: ~20 KB of columns per chunk
  small.chunk_write_mb = 0.006;
  small.read_capacity_gb_per_sec = 6.0 * scenario.device_scale;
  small.write_capacity_gb_per_sec = 1.62 * scenario.device_scale;
  std::printf("(in-process nodes share this container's single core, so each simulated\n"
              "node gets 1/N of the measured core rate)\n");
  std::printf("%7s %16s %16s %10s\n", "nodes", "actual Mb/s", "sim Mb/s", "delta");
  for (const auto& [nodes, measured] : actual) {
    cluster::DesParams per = small;
    per.node_megabases_per_sec = scenario.snap_bases_per_sec / 1e6 / nodes;
    per.read_capacity_gb_per_sec *= nodes;   // store was scaled per run above
    per.write_capacity_gb_per_sec *= nodes;
    cluster::DesPoint sim = cluster::SimulateCluster(per, nodes);
    double sim_mb = sim.gigabases_per_sec * 1000;
    std::printf("%7d %16.2f %16.2f %9.0f%%\n", nodes, measured, sim_mb,
                100 * (sim_mb - measured) / measured);
  }
  std::printf("\nShape check (paper): linear to 32 nodes (1.353 Gb/s, ~16.7 s/genome);\n"
              "saturation at ~60 nodes, write-limited beyond.\n");
}

}  // namespace
}  // namespace persona::bench

int main() {
  persona::bench::Run();
  return 0;
}
