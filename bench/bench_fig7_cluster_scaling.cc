// Figure 7 reproduction: cluster throughput vs number of compute nodes.
//
// Paper: "Actual" (measured, 1..32 nodes) scales linearly to 1.353 Gbases/s at 32 nodes
// (16.7 s per genome); the validated "Simulation" line extends to 100 nodes and shows
// the Ceph cluster saturating at ~60 nodes, limited by result-write performance.
//
// Here the "Actual" series is measured twice:
//   (1) real multi-process workers — forked persona_node processes leasing chunks from
//       a WorkService over loopback against a shared on-disk store, including a
//       kill-a-worker run that exercises lease re-issue;
//   (2) in-process nodes over the simulated Ceph store (the validation baseline the
//       DES model is calibrated against).
// The "Simulation" series is the discrete-event model at paper scale, and the bench
// closes with the sim-vs-actual validation comparison, mirroring the paper's
// methodology (§5.5).
//
// This container has one core, so multi-process scaling cannot come from compute: the
// shared store is given a per-op latency several times one chunk's alignment time,
// making every worker I/O-bound. N workers overlap N device waits — exactly the
// mechanism by which the paper's cluster scales while any single node is
// storage-latency-bound.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <map>

#include "bench/bench_common.h"
#include "src/cluster/cluster_runner.h"
#include "src/cluster/des_sim.h"
#include "src/cluster/persona_node.h"
#include "src/cluster/work_service.h"
#include "src/pipeline/agd_store_util.h"
#include "src/storage/ceph_sim.h"
#include "src/storage/local_store.h"
#include "src/util/file_util.h"
#include "src/util/stopwatch.h"

namespace persona::bench {
namespace {

constexpr size_t kChunkSize = 250;

// Hard assertion for bench invariants (failure is unrecoverable, as with
// PERSONA_CHECK_OK).
void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "bench_fig7: FATAL: %s\n", what);
    std::abort();
  }
}

// One multi-process run: a WorkService over `dir`'s dataset, `nodes` forked workers
// (optionally killing one mid-run), returns (elapsed seconds, service report).
struct MultiProcessResult {
  double seconds = 0;
  cluster::ClusterWorkReport report;
};

MultiProcessResult RunMultiProcess(const std::string& dir, int nodes,
                                   const align::SnapAligner& aligner,
                                   const ScenarioSpec& spec, size_t num_chunks,
                                   double op_latency_sec, bool kill_one_worker) {
  cluster::WorkServiceOptions service_options;
  service_options.job.tool = "align";
  service_options.job.group_size = 1;
  service_options.job.num_groups = static_cast<int64_t>(num_chunks);
  service_options.job.lease_timeout_sec = 120;  // disconnects re-issue, not expiry
  service_options.job.heartbeat_interval_sec = 1;
  service_options.job.params = cluster::GenomeJobParams(
      spec.seed, spec.num_contigs, spec.genome_length / spec.num_contigs, 20);
  auto service = cluster::WorkService::Start(service_options);
  PERSONA_CHECK_OK(service.status());
  const uint16_t port = (*service)->port();

  Stopwatch timer;
  std::vector<pid_t> workers;
  for (int w = 0; w < nodes; ++w) {
    pid_t pid = ::fork();
    Check(pid >= 0, "fork failed");
    if (pid == 0) {
      // Worker process. It shares the parent's read-only aligner (fork inherits the
      // index) but opens its own throttled view of the shared on-disk store — each
      // process waits on its own device handle, as each paper node waits on its own
      // OSD connections. _exit skips parent-owned destructors.
      storage::DeviceProfile profile;
      profile.op_latency_sec = op_latency_sec;
      profile.name = "shared-store";
      auto store = storage::LocalStore::Create(
          dir, std::make_shared<storage::ThrottledDevice>(profile));
      if (!store.ok()) {
        ::_exit(2);
      }
      cluster::PersonaNodeOptions node;
      node.port = port;
      node.node_name = "bench-worker-" + std::to_string(w);
      node.store = store->get();
      node.aligner = &aligner;
      node.executor_threads = 1;
      node.align.read_parallelism = 1;  // one outstanding device op per worker
      node.align.parse_parallelism = 1;
      node.align.align_nodes = 1;
      node.align.write_parallelism = 1;
      auto report = cluster::RunPersonaNode(node);
      ::_exit(report.ok() ? 0 : 1);
    }
    workers.push_back(pid);
  }

  if (kill_one_worker) {
    // Let the run reach its middle, then SIGKILL one worker outright. Its leased
    // chunks must be re-issued to the survivors and the job must still drain.
    for (;;) {
      const cluster::ClusterWorkReport progress = (*service)->Report();
      if (progress.completed >= num_chunks / 3) {
        break;
      }
      ::usleep(20'000);
    }
    Check(::kill(workers[0], SIGKILL) == 0, "kill failed");
  }

  PERSONA_CHECK_OK((*service)->AwaitDrained(300));
  MultiProcessResult result;
  result.seconds = timer.ElapsedSeconds();
  result.report = (*service)->Report();
  (*service)->Shutdown();
  for (size_t w = 0; w < workers.size(); ++w) {
    int wstatus = 0;
    Check(::waitpid(workers[w], &wstatus, 0) == workers[w], "waitpid failed");
    if (!(kill_one_worker && w == 0)) {
      Check(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0,
                    "worker exited non-zero");
    }
  }
  return result;
}

void Run() {
  PrintHeader("Figure 7: Cluster scaling — Actual (measured) and Simulation");
  ScenarioSpec spec;
  spec.num_reads = 6'000;
  Scenario scenario = BuildScenario(spec);
  PrintCalibration(scenario);
  align::SnapAligner aligner(&scenario.reference, scenario.seed_index.get());

  // ---- (1) Actual: forked persona_node worker processes, shared on-disk store. ----
  // The store's per-op latency is pinned at 4x one chunk's single-core alignment
  // time, so one worker is device-bound (reads two columns per chunk back to back)
  // and N workers overlap N waits: ideal scaling is ~4x at 4 workers, compute-capped
  // there by this container's single core.
  const double chunk_compute_sec =
      static_cast<double>(kChunkSize) * spec.read_length / scenario.snap_bases_per_sec;
  const double op_latency_sec = std::max(4 * chunk_compute_sec, 0.04);
  const double total_mbases =
      static_cast<double>(scenario.reads.size()) * spec.read_length / 1e6;
  std::printf("\n(1) Actual (multi-process: forked persona_node workers, shared "
              "on-disk store,\n    store op latency %.0f ms vs %.0f ms chunk "
              "compute)\n",
              op_latency_sec * 1e3, chunk_compute_sec * 1e3);
  std::printf("%8s %12s %12s %12s %12s %12s\n", "workers", "seconds", "Mbases/s",
              "vs 1-worker", "reissues", "dup-done");

  ScopedTempDir temp("fig7-cluster");
  std::map<int, double> multiproc_rate;
  std::vector<std::string> parity_baseline;  // results objects from the 1-worker run
  size_t num_chunks = 0;
  for (int nodes : {1, 2, 4}) {
    const std::string dir = temp.FilePath("run-" + std::to_string(nodes));
    auto staging = storage::LocalStore::Create(dir, nullptr);
    PERSONA_CHECK_OK(staging.status());
    auto manifest =
        pipeline::WriteAgdToStore(staging->get(), "cl", scenario.reads, kChunkSize);
    PERSONA_CHECK_OK(manifest.status());
    num_chunks = manifest->chunks.size();

    MultiProcessResult run = RunMultiProcess(dir, nodes, aligner, spec, num_chunks,
                                             op_latency_sec, /*kill_one_worker=*/false);
    Check(run.report.drained && run.report.completed == num_chunks,
                  "cluster run did not drain");
    const double mbases = total_mbases / run.seconds;
    multiproc_rate[nodes] = mbases;
    std::printf("%8d %11.2fs %12.2f %11.2fx %12llu %12llu\n", nodes, run.seconds,
                mbases, mbases / multiproc_rate[1],
                static_cast<unsigned long long>(run.report.reissues),
                static_cast<unsigned long long>(run.report.duplicate_completions));

    // Cross-run parity: every results object must be bit-identical no matter how
    // many workers raced for the leases.
    std::vector<std::string> results;
    for (size_t c = 0; c < num_chunks; ++c) {
      Buffer object;
      PERSONA_CHECK_OK(
          (*staging)->Get(manifest->chunks[c].path_base + ".results", &object));
      results.emplace_back(object.view());
    }
    if (parity_baseline.empty()) {
      parity_baseline = std::move(results);
    } else {
      Check(results == parity_baseline,
                    "results differ between worker counts");
    }
  }
  Check(multiproc_rate[4] >= 3.0 * multiproc_rate[1],
                "4-worker aggregate throughput below 3x the 1-worker rate");

  // Fault injection: kill one of 4 workers mid-run; its leases must be re-issued
  // and completed by the survivors, bit-identically.
  {
    const std::string dir = temp.FilePath("run-kill");
    auto staging = storage::LocalStore::Create(dir, nullptr);
    PERSONA_CHECK_OK(staging.status());
    auto manifest =
        pipeline::WriteAgdToStore(staging->get(), "cl", scenario.reads, kChunkSize);
    PERSONA_CHECK_OK(manifest.status());
    MultiProcessResult run = RunMultiProcess(dir, 4, aligner, spec, num_chunks,
                                             op_latency_sec, /*kill_one_worker=*/true);
    Check(run.report.drained && run.report.completed == num_chunks,
                  "drain failed after killing a worker");
    for (size_t c = 0; c < num_chunks; ++c) {
      Buffer object;
      PERSONA_CHECK_OK(
          (*staging)->Get(manifest->chunks[c].path_base + ".results", &object));
      Check(object.view() == parity_baseline[c],
                    "post-kill results differ from baseline");
    }
    std::printf("  kill-1-of-4: drained in %.2fs, %llu lease re-issue(s), outputs "
                "bit-identical\n",
                run.seconds, static_cast<unsigned long long>(run.report.reissues));
  }

  // ---- (2) Actual: in-process nodes over the simulated Ceph store (validation
  // baseline). ----
  std::printf("\n(2) Actual (in-process nodes, %zu reads, simulated Ceph store)\n",
              scenario.reads.size());
  std::printf("%7s %12s %16s %12s %14s %12s\n", "nodes", "seconds", "Mbases/s",
              "imbalance", "vs 1-node", "store MB/s");
  double one_node_rate = 0;
  std::vector<std::pair<int, double>> actual;  // (nodes, Mbases/s)
  for (int nodes : {1, 2, 3, 4}) {
    storage::CephSimConfig ceph_config =
        storage::CephSimConfig::Scaled(scenario.device_scale * nodes);
    storage::CephSimStore store(ceph_config);
    auto manifest = pipeline::WriteAgdToStore(&store, "cl", scenario.reads, kChunkSize);
    PERSONA_CHECK_OK(manifest.status());

    cluster::ClusterOptions options;
    options.num_nodes = nodes;
    options.threads_per_node = 1;
    options.node_options.read_parallelism = 1;
    options.node_options.parse_parallelism = 1;
    options.node_options.align_nodes = 1;
    options.node_options.write_parallelism = 1;
    auto report = cluster::RunCluster(&store, *manifest, aligner, options);
    PERSONA_CHECK_OK(report.status());
    double mbases = report->gigabases_per_sec * 1000;
    if (nodes == 1) {
      one_node_rate = mbases;
    }
    actual.emplace_back(nodes, mbases);
    std::printf("%7d %11.2fs %16.2f %11.1f%% %13.2fx %11.2f\n", nodes, report->seconds,
                mbases, report->imbalance() * 100, mbases / one_node_rate,
                report->store_read_mb_per_sec);
  }
  std::printf("note: node counts limited by this container's single core; the paper's\n"
              "32-node 'Actual' region is covered by the validated simulation below.\n");

  // ---- (3) Simulation: DES at paper scale. ----
  std::printf("\n(3) Simulation (paper-scale DES: 2231 chunks, 100k reads/chunk)\n");
  std::printf("%7s %12s %20s %12s %13s\n", "nodes", "seconds", "Gbases aligned/s",
              "read util", "write util");
  cluster::DesParams params;
  for (int nodes : {1, 2, 4, 8, 16, 32, 40, 50, 60, 70, 80, 90, 100}) {
    cluster::DesPoint point = cluster::SimulateCluster(params, nodes);
    std::printf("%7d %11.1fs %20.3f %11.0f%% %12.0f%%\n", nodes, point.seconds,
                point.gigabases_per_sec, point.read_utilization * 100,
                point.write_utilization * 100);
  }

  // ---- (4) Validation: scaled-down DES vs measured actual (paper §5.5). ----
  std::printf("\n(4) Validation: simulation vs actual at overlapping node counts\n");
  cluster::DesParams small;
  small.num_chunks = static_cast<int64_t>((scenario.reads.size() + kChunkSize - 1) /
                                          kChunkSize);
  small.reads_per_chunk = kChunkSize;
  small.read_length = 101;
  small.chunk_read_mb = 0.02;   // scaled dataset: ~20 KB of columns per chunk
  small.chunk_write_mb = 0.006;
  small.read_capacity_gb_per_sec = 6.0 * scenario.device_scale;
  small.write_capacity_gb_per_sec = 1.62 * scenario.device_scale;
  std::printf("(in-process nodes share this container's single core, so each simulated\n"
              "node gets 1/N of the measured core rate)\n");
  std::printf("%7s %16s %16s %10s\n", "nodes", "actual Mb/s", "sim Mb/s", "delta");
  for (const auto& [nodes, measured] : actual) {
    cluster::DesParams per = small;
    per.node_megabases_per_sec = scenario.snap_bases_per_sec / 1e6 / nodes;
    per.read_capacity_gb_per_sec *= nodes;   // store was scaled per run above
    per.write_capacity_gb_per_sec *= nodes;
    cluster::DesPoint sim = cluster::SimulateCluster(per, nodes);
    double sim_mb = sim.gigabases_per_sec * 1000;
    std::printf("%7d %16.2f %16.2f %9.0f%%\n", nodes, measured, sim_mb,
                100 * (sim_mb - measured) / measured);
  }
  std::printf("\nShape check (paper): linear to 32 nodes (1.353 Gb/s, ~16.7 s/genome);\n"
              "saturation at ~60 nodes, write-limited beyond.\n");
}

}  // namespace
}  // namespace persona::bench

int main() {
  persona::bench::Run();
  return 0;
}
