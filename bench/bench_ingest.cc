// Stream-ingest throughput: N concurrent socket-fed ingest sessions vs the offline
// ImportFastqToAgd importer on the same FASTQ input (ROADMAP stream-ingest workload).
//
// Three measurements:
//   1. offline   — ImportFastqToAgd on an in-memory store (the batch baseline),
//   2. streamed  — N concurrent clients over real loopback sockets into one
//                  IngestService; parity-checked chunk-for-chunk against (1),
//   3. throttled — 2 clients against a slow simulated device, sampling each
//                  session's live records_in_flight to show backpressure bounds
//                  in-flight memory by the pipeline depth, not the stream length.
//
// The offline importer is serial at its FASTQ parser; concurrent sessions parse in
// parallel, so aggregate streamed throughput should beat 1x offline with >=2 clients.
//
// Usage: bench_ingest [reads_per_client] [num_clients]   (default 20000 4)

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/format/fastq.h"
#include "src/genome/generator.h"
#include "src/genome/read_simulator.h"
#include "src/ingest/service.h"
#include "src/ingest/wire.h"
#include "src/pipeline/agd_store_util.h"
#include "src/pipeline/convert.h"
#include "src/storage/memory_store.h"
#include "src/storage/throttled_device.h"
#include "src/util/stopwatch.h"
#include "src/util/string_util.h"

namespace {

using namespace persona;

constexpr int64_t kChunkSize = 2'000;

pipeline::ChunkPipeline::Options PipelineOptions() {
  pipeline::ChunkPipeline::Options options;
  options.transform_parallelism = 2;
  options.serialize_parallelism = 2;
  options.write_parallelism = 2;
  options.write_window = 2;
  return options;
}

// Streams `fastq` into the service and blocks until Done; returns false on error.
bool RunClient(uint16_t port, const std::string& dataset, const std::string& fastq) {
  auto conn = ingest::ConnectLoopback(port);
  if (!conn.ok()) {
    return false;
  }
  if (!WriteFrame(*conn, ingest::FrameType::kStart, dataset).ok()) {
    return false;
  }
  ingest::Frame frame;
  if (!ReadFrame(*conn, &frame).ok() || frame.type != ingest::FrameType::kStarted) {
    return false;
  }
  constexpr size_t kWindow = 128 * 1024;
  for (size_t offset = 0; offset < fastq.size(); offset += kWindow) {
    const size_t len = std::min(kWindow, fastq.size() - offset);
    if (!WriteFrame(*conn, ingest::FrameType::kData,
                    std::string_view(fastq).substr(offset, len))
             .ok()) {
      return false;
    }
  }
  if (!WriteFrame(*conn, ingest::FrameType::kEnd, "").ok()) {
    return false;
  }
  while (ReadFrame(*conn, &frame).ok()) {
    if (frame.type == ingest::FrameType::kDone) {
      return true;
    }
    if (frame.type == ingest::FrameType::kError) {
      std::fprintf(stderr, "client %s failed: %s\n", dataset.c_str(),
                   frame.payload.c_str());
      return false;
    }
  }
  return false;
}

bool ParityCheck(storage::ObjectStore* offline, storage::ObjectStore* streamed,
                 const std::string& offline_name, const std::string& streamed_name,
                 size_t chunks) {
  static const char* kColumns[] = {"bases", "qual", "metadata"};
  Buffer a;
  Buffer b;
  for (size_t i = 0; i < chunks; ++i) {
    for (const char* column : kColumns) {
      const std::string ka = offline_name + "-" + std::to_string(i) + "." + column;
      const std::string kb = streamed_name + "-" + std::to_string(i) + "." + column;
      if (!offline->Get(ka, &a).ok() || !streamed->Get(kb, &b).ok() ||
          a.view() != b.view()) {
        std::fprintf(stderr, "PARITY MISMATCH: %s vs %s\n", ka.c_str(), kb.c_str());
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t reads_per_client =
      argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 20'000;
  const int num_clients = argc > 2 ? std::atoi(argv[2]) : 4;

  // Simulated sequencer output, shared by every client.
  genome::GenomeSpec gspec;
  gspec.num_contigs = 2;
  gspec.contig_length = 150'000;
  gspec.seed = 99;
  genome::ReferenceGenome reference = genome::GenerateGenome(gspec);
  genome::ReadSimSpec rspec;
  rspec.read_length = 101;
  rspec.seed = 100;
  genome::ReadSimulator sim(&reference, rspec);
  const std::vector<genome::Read> reads = sim.Simulate(reads_per_client);
  std::string fastq;
  format::WriteFastq(reads, &fastq);
  const double mb = static_cast<double>(fastq.size()) / 1e6;
  std::printf("bench_ingest: %zu reads/client (%.1f MB FASTQ), %d clients, chunk %lld\n\n",
              reads_per_client, mb, num_clients,
              static_cast<long long>(kChunkSize));

  // --- 1. Offline baseline. ---
  storage::MemoryStore offline;
  PERSONA_CHECK_OK(pipeline::WriteGzippedFastqToStore(&offline, "ds", reads).status());
  format::Manifest offline_manifest;
  Stopwatch offline_timer;
  auto offline_report =
      pipeline::ImportFastqToAgd(&offline, "ds", kChunkSize, compress::CodecId::kZlib,
                                 &offline_manifest, PipelineOptions());
  PERSONA_CHECK_OK(offline_report.status());
  const double offline_sec = offline_timer.ElapsedSeconds();
  const double offline_mbps = mb / offline_sec;
  std::printf("offline import:      %8.2f MB/s (%.2fs, %zu chunks)\n", offline_mbps,
              offline_sec, offline_manifest.chunks.size());

  // --- 2. Streamed, N concurrent clients. ---
  storage::MemoryStore streamed;
  ingest::IngestOptions options;
  options.chunk_size = kChunkSize;
  options.pipeline = PipelineOptions();
  auto service = ingest::IngestService::Start(&streamed, options);
  PERSONA_CHECK_OK(service.status());

  std::vector<std::thread> clients;
  // vector<char>, not vector<bool>: the clients write their slots concurrently and
  // vector<bool>'s packed bits would race on the shared word.
  std::vector<char> ok(static_cast<size_t>(num_clients), 0);
  Stopwatch streamed_timer;
  for (int i = 0; i < num_clients; ++i) {
    clients.emplace_back([&, i] {
      ok[static_cast<size_t>(i)] =
          RunClient((*service)->port(), "cl" + std::to_string(i), fastq);
    });
  }
  for (auto& thread : clients) {
    thread.join();
  }
  const double streamed_sec = streamed_timer.ElapsedSeconds();
  (*service)->Shutdown();
  for (int i = 0; i < num_clients; ++i) {
    if (!ok[static_cast<size_t>(i)]) {
      std::fprintf(stderr, "client %d failed\n", i);
      return 1;
    }
  }
  const double streamed_mbps = mb * num_clients / streamed_sec;
  std::printf("streamed x%d:         %8.2f MB/s aggregate (%.2fs, %.2fx offline)\n",
              num_clients, streamed_mbps, streamed_sec, streamed_mbps / offline_mbps);

  if (!ParityCheck(&offline, &streamed, "ds", "cl0", offline_manifest.chunks.size())) {
    return 1;
  }
  std::printf("parity:              streamed chunks bit-identical to offline import\n");

  // --- 3. Throttled store: backpressure bounds in-flight records. ---
  storage::DeviceProfile slow;
  slow.bandwidth_bytes_per_sec = 24 * 1000 * 1000;
  slow.op_latency_sec = 0.001;
  slow.name = "slow-disk";
  storage::MemoryStore throttled(std::make_shared<storage::ThrottledDevice>(slow));
  ingest::IngestOptions toptions;
  toptions.chunk_size = kChunkSize;
  toptions.pipeline = PipelineOptions();
  auto tservice = ingest::IngestService::Start(&throttled, toptions);
  PERSONA_CHECK_OK(tservice.status());

  const int throttled_clients = std::min(2, num_clients);
  std::vector<std::thread> tclients;
  std::vector<char> tok(static_cast<size_t>(throttled_clients), 0);
  std::atomic<int> tfinished{0};
  for (int i = 0; i < throttled_clients; ++i) {
    tclients.emplace_back([&, i] {
      tok[static_cast<size_t>(i)] =
          RunClient((*tservice)->port(), "tcl" + std::to_string(i), fastq);
      tfinished.fetch_add(1);
    });
  }
  uint64_t peak_in_flight = 0;
  // Also stop when every client thread has returned: a client that failed before
  // its server session existed would otherwise leave this sampling loop spinning
  // forever (completed_sessions never reaches the target).
  while ((*tservice)->completed_sessions() < static_cast<size_t>(throttled_clients) &&
         tfinished.load() < throttled_clients) {
    for (const auto& session : (*tservice)->Sessions()) {
      peak_in_flight = std::max(peak_in_flight, session.records_in_flight);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (auto& thread : tclients) {
    thread.join();
  }
  (*tservice)->Shutdown();
  for (int i = 0; i < throttled_clients; ++i) {
    if (!tok[static_cast<size_t>(i)]) {
      std::fprintf(stderr, "throttled client %d failed\n", i);
      return 1;
    }
  }
  // Depth bound per session: batcher refill (~1 chunk + a frame) + input queue +
  // transform workers + source hand — all sized by PipelineOptions, not stream
  // length. 16 chunks of headroom mirrors the unit test's bound.
  const uint64_t bound = static_cast<uint64_t>(kChunkSize) * 16;
  std::printf("throttled x%d:        peak in-flight %llu records (bound %llu, %s)\n",
              throttled_clients, static_cast<unsigned long long>(peak_in_flight),
              static_cast<unsigned long long>(bound),
              peak_in_flight <= bound ? "bounded" : "UNBOUNDED");
  if (peak_in_flight > bound) {
    return 1;
  }
  const bool sustained = streamed_mbps >= offline_mbps;
  std::printf("\nresult: streamed aggregate %s offline import (%.2fx)\n",
              sustained ? "sustains >=1x" : "BELOW", streamed_mbps / offline_mbps);
  return sustained ? 0 : 1;
}
