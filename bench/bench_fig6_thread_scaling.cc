// Figure 6 reproduction: single-node throughput vs provisioned aligner threads for
// standalone SNAP / Persona-SNAP / standalone BWA / Persona-BWA.
//
// Shape to reproduce (paper, 48-logical-core node): near-linear speedup to 24 physical
// cores; the second hyperthread adds ~32%; standalone SNAP drops at 48 threads (I/O
// scheduling contention); Persona tracks or beats the standalone tools, and Persona-BWA
// scales slightly better than standalone BWA past 24 threads (no thread setup/teardown
// between phases).
//
// This container exposes a single core, so the bench produces two sections:
//   (1) measured executor scaling on this machine (1..4 threads; expected ~flat here,
//       but exercises the real code path and reports per-thread efficiency), and
//   (2) the calibrated scaling model of the 48-core node, which regenerates the figure's
//       series: per-core rates from our measured kernel, the paper's hyperthread yield,
//       and the two contention effects it identifies (SNAP I/O-scheduler clash at full
//       occupancy; BWA memory-hierarchy contention under HT).

#include "bench/bench_common.h"
#include "src/dataflow/executor.h"

namespace persona::bench {
namespace {

// Measured scaling of the real executor + aligner kernel on this machine.
void MeasuredSection(const Scenario& scenario) {
  align::SnapAligner aligner(&scenario.reference, scenario.seed_index.get());
  std::printf("\n(1) Measured on this machine (real executor, SNAP kernel)\n");
  std::printf("%8s %16s %12s\n", "threads", "Mbases/s", "efficiency");
  double base_rate = 0;
  for (int threads = 1; threads <= 4; ++threads) {
    dataflow::Executor executor(static_cast<size_t>(threads));
    dataflow::TaskBatch batch(&executor);
    const size_t per_task = 250;
    std::atomic<uint64_t> bases{0};
    Stopwatch timer;
    for (size_t begin = 0; begin < scenario.reads.size(); begin += per_task) {
      size_t end = std::min(scenario.reads.size(), begin + per_task);
      batch.Add([&, begin, end] {
        // Per-thread scratch reused across tasks, as the Persona pipeline does.
        thread_local std::unique_ptr<align::AlignerScratch> scratch;
        if (scratch == nullptr) {
          scratch = aligner.MakeScratch();
        }
        thread_local std::vector<align::AlignmentResult> results;
        const size_t count = end - begin;
        results.resize(count);
        aligner.AlignBatch({scenario.reads.data() + begin, count},
                           {results.data(), count}, scratch.get(), nullptr);
        uint64_t local = 0;
        for (size_t i = begin; i < end; ++i) {
          local += scenario.reads[i].bases.size();
        }
        bases += local;
      });
    }
    batch.Wait();
    double rate = static_cast<double>(bases.load()) / timer.ElapsedSeconds() / 1e6;
    if (threads == 1) {
      base_rate = rate;
    }
    std::printf("%8d %16.2f %11.0f%%\n", threads, rate,
                100 * rate / (base_rate * threads));
  }
}

// Calibrated model of the paper's 48-logical-core node.
struct ModelParams {
  double per_core_mbases = 45.45 / 31.7;  // paper peak / effective cores => per-core rate
  double ht_yield = 0.32;                 // second hyperthread adds 32% (paper §5.4)
  double snap_48t_penalty = 0.88;         // SNAP's drop at full occupancy (I/O sched)
  double bwa_relative = 0.55;             // BWA-MEM throughput relative to SNAP
  double bwa_ht_penalty = 0.85;           // BWA memory contention once HT kicks in
  double persona_overhead = 0.99;         // framework overhead ~1% (paper §4)
};

double EffectiveCores(int threads, double ht_yield) {
  if (threads <= 24) {
    return threads;
  }
  return 24 + (threads - 24) * ht_yield;
}

void ModelSection() {
  ModelParams p;
  std::printf("\n(2) Calibrated 48-core node model (megabases/s vs threads)\n");
  std::printf("%8s %10s %14s %10s %14s %13s\n", "threads", "SNAP", "Persona-SNAP", "BWA",
              "Persona-BWA", "SNAP-perfect");
  for (int threads : {1, 6, 12, 18, 24, 30, 36, 42, 48}) {
    double cores = EffectiveCores(threads, p.ht_yield);
    double snap = p.per_core_mbases * cores;
    if (threads >= 48) {
      snap *= p.snap_48t_penalty;  // contention with I/O scheduling (paper)
    }
    // Persona avoids the I/O-scheduler clash (queue abstractions), pays ~1% framework.
    double persona_snap = p.per_core_mbases * cores * p.persona_overhead;
    double bwa_cores = threads <= 24 ? cores : 24 + (threads - 24) * p.ht_yield * p.bwa_ht_penalty;
    double bwa = p.per_core_mbases * p.bwa_relative * bwa_cores;
    // Persona-BWA keeps threads pinned to phases: slightly better HT-region scaling.
    double persona_bwa_cores =
        threads <= 24 ? cores : 24 + (threads - 24) * p.ht_yield * 0.95;
    double persona_bwa =
        p.per_core_mbases * p.bwa_relative * persona_bwa_cores * p.persona_overhead;
    double perfect = p.per_core_mbases * threads;
    std::printf("%8d %10.2f %14.2f %10.2f %14.2f %13.2f\n", threads, snap, persona_snap,
                bwa, persona_bwa, perfect);
  }
  std::printf("\nShape check (paper): linear to 24; +32%% from HT; SNAP dips at 48;\n"
              "Persona-SNAP ~= SNAP elsewhere; Persona-BWA > BWA beyond 24 threads.\n");
}

void Run() {
  PrintHeader("Figure 6: Throughput scaling across cores");
  ScenarioSpec spec;
  spec.num_reads = 4'000;
  Scenario scenario = BuildScenario(spec);
  PrintCalibration(scenario);
  MeasuredSection(scenario);
  ModelSection();
}

}  // namespace
}  // namespace persona::bench

int main() {
  persona::bench::Run();
  return 0;
}
