// Shared scaffolding for the paper-reproduction benchmarks.
//
// Scale model: the paper's node aligns ~45.45 Mbases/s (48 threads) against storage with
// fixed bandwidths (single disk 160 MB/s, RAID0 ~960 MB/s, Ceph 6 GB/s). Every result we
// reproduce is about the *ratio* of compute demand to storage bandwidth, so each bench
// (a) measures this machine's actual alignment rate, (b) scales all simulated device
// bandwidths by measured_rate / paper_rate. The paper's crossovers then reappear at this
// machine's scale.

#ifndef PERSONA_BENCH_BENCH_COMMON_H_
#define PERSONA_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/align/bwa_aligner.h"
#include "src/align/snap_aligner.h"
#include "src/genome/generator.h"
#include "src/genome/read_simulator.h"
#include "src/util/string_util.h"
#include "src/util/stopwatch.h"

namespace persona::bench {

inline constexpr double kPaperNodeBasesPerSec = 45.45e6;  // §5.4/§5.5
inline constexpr double kPaperSingleDiskBw = 160e6;

// One shared scenario: synthetic reference + indexes + simulated reads.
struct Scenario {
  genome::ReferenceGenome reference;
  std::unique_ptr<align::SeedIndex> seed_index;
  std::unique_ptr<align::FmIndex> fm_index;
  std::vector<genome::Read> reads;
  double snap_bases_per_sec = 0;  // calibrated single-thread rate
  double device_scale = 0;        // snap rate / paper node rate
};

struct ScenarioSpec {
  int64_t genome_length = 400'000;
  int num_contigs = 2;
  size_t num_reads = 8'000;
  int read_length = 101;
  double duplicate_fraction = 0.0;
  uint64_t seed = 1234;
  bool build_fm_index = false;
};

inline Scenario BuildScenario(const ScenarioSpec& spec) {
  Scenario s;
  genome::GenomeSpec gspec;
  gspec.num_contigs = spec.num_contigs;
  gspec.contig_length = spec.genome_length / spec.num_contigs;
  gspec.seed = spec.seed;
  s.reference = genome::GenerateGenome(gspec);

  align::SeedIndexOptions seed_options;
  seed_options.seed_length = 20;
  s.seed_index = std::make_unique<align::SeedIndex>(
      align::SeedIndex::Build(s.reference, seed_options).value());
  if (spec.build_fm_index) {
    s.fm_index = std::make_unique<align::FmIndex>(align::FmIndex::Build(s.reference).value());
  }

  genome::ReadSimSpec rspec;
  rspec.read_length = spec.read_length;
  rspec.duplicate_fraction = spec.duplicate_fraction;
  rspec.seed = spec.seed + 1;
  genome::ReadSimulator sim(&s.reference, rspec);
  s.reads = sim.Simulate(spec.num_reads);

  // Calibration: measure the single-thread SNAP-style alignment rate on a sample,
  // through the batched entry point the pipelines use.
  align::SnapAligner aligner(&s.reference, s.seed_index.get());
  size_t sample = std::min<size_t>(s.reads.size(), 500);
  auto scratch = aligner.MakeScratch();
  std::vector<align::AlignmentResult> results(sample);
  Stopwatch timer;
  aligner.AlignBatch({s.reads.data(), sample}, {results.data(), sample}, scratch.get(),
                     nullptr);
  double seconds = timer.ElapsedSeconds();
  uint64_t bases = 0;
  for (size_t i = 0; i < sample; ++i) {
    bases += s.reads[i].bases.size();
  }
  s.snap_bases_per_sec = seconds > 0 ? static_cast<double>(bases) / seconds : 1e6;
  s.device_scale = s.snap_bases_per_sec / kPaperNodeBasesPerSec;
  return s;
}

// ---- Table formatting helpers (paper-style rows). ----

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void PrintCalibration(const Scenario& s) {
  std::printf("[calibration] this machine: %.2f Mbases/s (paper node: %.2f); "
              "device bandwidth scale = %.5f\n",
              s.snap_bases_per_sec / 1e6, kPaperNodeBasesPerSec / 1e6, s.device_scale);
}

}  // namespace persona::bench

#endif  // PERSONA_BENCH_BENCH_COMMON_H_
