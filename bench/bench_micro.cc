// Google-benchmark microbenchmarks for Persona's hot kernels: edit distance,
// Smith-Waterman, base compaction, block codecs, seed-index lookup, FM-index search,
// varint coding, CRC32 — plus the extension kernels: pileup, genotyping,
// reference-based compression, VCF serialization, record location, work stealing.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <numeric>

#include "src/align/edit_distance.h"
#include "src/align/fm_index.h"
#include "src/align/seed_index.h"
#include "src/align/smith_waterman.h"
#include "src/compress/base_compaction.h"
#include "src/compress/codec.h"
#include "src/dataflow/work_stealing.h"
#include "src/format/agd_index.h"
#include "src/format/refcomp.h"
#include "src/format/vcf.h"
#include "src/genome/generator.h"
#include "src/genome/read_simulator.h"
#include "src/util/crc32.h"
#include "src/variant/caller.h"
#include "src/variant/pileup.h"
#include "src/util/rng.h"
#include "src/util/varint.h"

namespace persona {
namespace {

const genome::ReferenceGenome& Reference() {
  static const genome::ReferenceGenome* kReference = [] {
    genome::GenomeSpec spec;
    spec.num_contigs = 1;
    spec.contig_length = 200'000;
    return new genome::ReferenceGenome(genome::GenerateGenome(spec));
  }();
  return *kReference;
}

std::string RandomDna(size_t n, uint64_t seed) {
  static const char kBases[] = {'A', 'C', 'G', 'T'};
  Rng rng(seed);
  std::string s;
  s.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    s.push_back(kBases[rng.Uniform(4)]);
  }
  return s;
}

void BM_LandauVishkin(benchmark::State& state) {
  int max_k = static_cast<int>(state.range(0));
  std::string text = RandomDna(101 + 16, 1);
  std::string pattern = text.substr(0, 101);
  pattern[50] = pattern[50] == 'A' ? 'C' : 'A';
  for (auto _ : state) {
    benchmark::DoNotOptimize(align::LandauVishkin(text, pattern, max_k));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LandauVishkin)->Arg(4)->Arg(8)->Arg(12);

void BM_SmithWaterman(benchmark::State& state) {
  size_t window = static_cast<size_t>(state.range(0));
  std::string ref = RandomDna(window, 2);
  std::string query = ref.substr(window / 4, 101);
  for (auto _ : state) {
    benchmark::DoNotOptimize(align::SmithWaterman(ref, query));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SmithWaterman)->Arg(128)->Arg(160)->Arg(256);

void BM_PackBases(benchmark::State& state) {
  std::string bases = RandomDna(static_cast<size_t>(state.range(0)), 3);
  Buffer out;
  for (auto _ : state) {
    out.Clear();
    compress::PackBases(bases, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PackBases)->Arg(101)->Arg(1010)->Arg(101000);

void BM_CodecCompress(benchmark::State& state) {
  auto codec_id = static_cast<compress::CodecId>(state.range(0));
  std::string payload = RandomDna(1 << 18, 4);  // DNA-like compressible data
  std::span<const uint8_t> input(reinterpret_cast<const uint8_t*>(payload.data()),
                                 payload.size());
  const compress::Codec& codec = compress::GetCodec(codec_id);
  Buffer out;
  for (auto _ : state) {
    out.Clear();
    benchmark::DoNotOptimize(codec.Compress(input, &out).ok());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(payload.size()));
  state.SetLabel(std::string(compress::CodecName(codec_id)));
}
BENCHMARK(BM_CodecCompress)
    ->Arg(static_cast<int>(compress::CodecId::kZlib))
    ->Arg(static_cast<int>(compress::CodecId::kLzss));

void BM_SeedIndexLookup(benchmark::State& state) {
  static const align::SeedIndex* kIndex = [] {
    align::SeedIndexOptions options;
    options.seed_length = 20;
    return new align::SeedIndex(align::SeedIndex::Build(Reference(), options).value());
  }();
  const std::string& seq = Reference().contig(0).sequence;
  Rng rng(6);
  size_t hits = 0;
  for (auto _ : state) {
    uint64_t seed;
    size_t off = rng.Uniform(seq.size() - 20);
    if (align::SeedIndex::PackSeed(seq, off, 20, &seed)) {
      hits += kIndex->Lookup(seed).size();
    }
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SeedIndexLookup);

void BM_FmIndexCount(benchmark::State& state) {
  static const align::FmIndex* kIndex = [] {
    return new align::FmIndex(align::FmIndex::Build(Reference()).value());
  }();
  const std::string& seq = Reference().contig(0).sequence;
  size_t pattern_len = static_cast<size_t>(state.range(0));
  Rng rng(7);
  int64_t total = 0;
  for (auto _ : state) {
    size_t off = rng.Uniform(seq.size() - pattern_len);
    total += kIndex->Count(std::string_view(seq).substr(off, pattern_len)).size();
  }
  benchmark::DoNotOptimize(total);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FmIndexCount)->Arg(19)->Arg(31);

void BM_Varint(benchmark::State& state) {
  Buffer buf;
  Rng rng(8);
  std::vector<uint64_t> values(1024);
  for (auto& v : values) {
    v = rng.Next() >> (rng.Uniform(56));
  }
  for (auto _ : state) {
    buf.Clear();
    for (uint64_t v : values) {
      PutVarint(v, &buf);
    }
    size_t offset = 0;
    uint64_t sum = 0;
    for (size_t i = 0; i < values.size(); ++i) {
      sum += GetVarint(buf.span(), &offset).value();
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(values.size()));
}
BENCHMARK(BM_Varint);

void BM_Crc32(benchmark::State& state) {
  std::string payload = RandomDna(static_cast<size_t>(state.range(0)), 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32(std::string_view(payload)));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(4096)->Arg(1 << 20);

// --- Variant-calling and format-extension kernels ---

// Simulated aligned reads over the shared reference, with exact "<len>M" CIGARs.
struct AlignedCorpus {
  std::vector<std::string> bases;
  std::vector<std::string> quals;
  std::vector<align::AlignmentResult> results;
};

const AlignedCorpus& Corpus() {
  static const AlignedCorpus* kCorpus = [] {
    auto* corpus = new AlignedCorpus();
    genome::ReadSimSpec spec;
    spec.read_length = 101;
    spec.substitution_rate = 0.005;
    spec.indel_rate = 0;
    spec.seed = 321;
    genome::ReadSimulator simulator(&Reference(), spec);
    for (genome::Read& read : simulator.Simulate(2'000)) {
      auto truth = genome::ParseReadTruth(Reference(), read.metadata);
      auto location = Reference().LocalToGlobal(truth->contig_index, truth->position);
      align::AlignmentResult result;
      result.location = *location;
      result.cigar = "101M";
      result.flags = truth->reverse ? align::kFlagReverse : 0;
      result.mapq = 60;
      corpus->bases.push_back(std::move(read.bases));
      corpus->quals.push_back(std::move(read.qual));
      corpus->results.push_back(std::move(result));
    }
    return corpus;
  }();
  return *kCorpus;
}

void BM_PileupAddRead(benchmark::State& state) {
  const AlignedCorpus& corpus = Corpus();
  // Location order, as the streaming engine requires.
  std::vector<size_t> order(corpus.bases.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return corpus.results[a].location < corpus.results[b].location;
  });
  variant::PileupOptions options;
  options.realign_indels = state.range(0) != 0;
  for (auto _ : state) {
    variant::PileupEngine engine(&Reference(), options);
    for (size_t i : order) {
      benchmark::DoNotOptimize(
          engine.AddRead(corpus.bases[i], corpus.quals[i], corpus.results[i]));
    }
    std::vector<variant::PileupColumn> columns;
    engine.FlushAll(&columns);
    benchmark::DoNotOptimize(columns.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(order.size()));
}
BENCHMARK(BM_PileupAddRead)->Arg(0)->Arg(1)->ArgNames({"realign"});

void BM_GenotypeCallSite(benchmark::State& state) {
  variant::PileupColumn column;
  column.location = 1'000;
  column.ref_base = Reference().BaseAt(1'000);
  const uint8_t ref_code = compress::BaseToCode(column.ref_base);
  const uint8_t alt_code = ref_code == 0 ? 2 : 0;
  for (int i = 0; i < 30; ++i) {
    column.observations.push_back({i % 2 == 0 ? ref_code : alt_code, 35, i % 2 == 0});
  }
  column.spanning_reads = 30;
  variant::GenotypeCaller caller(&Reference(), variant::CallerOptions{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(caller.CallSite(column));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GenotypeCallSite);

void BM_RefCompEncode(benchmark::State& state) {
  const AlignedCorpus& corpus = Corpus();
  Buffer out;
  std::vector<uint32_t> lengths;
  int64_t total_bases = 0;
  for (const std::string& b : corpus.bases) {
    total_bases += static_cast<int64_t>(b.size());
  }
  for (auto _ : state) {
    out.Clear();
    lengths.clear();
    benchmark::DoNotOptimize(
        format::RefEncodeChunk(Reference(), corpus.bases, corpus.results, &out, &lengths));
  }
  state.SetBytesProcessed(state.iterations() * total_bases);
}
BENCHMARK(BM_RefCompEncode);

void BM_RefCompDecode(benchmark::State& state) {
  const AlignedCorpus& corpus = Corpus();
  Buffer encoded;
  std::vector<uint32_t> lengths;
  format::RefEncodeChunk(Reference(), corpus.bases, corpus.results, &encoded, &lengths);
  int64_t total_bases = 0;
  for (const std::string& b : corpus.bases) {
    total_bases += static_cast<int64_t>(b.size());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        format::RefDecodeChunk(Reference(), encoded.span(), lengths, corpus.results));
  }
  state.SetBytesProcessed(state.iterations() * total_bases);
}
BENCHMARK(BM_RefCompDecode);

void BM_VcfAppendRecord(benchmark::State& state) {
  format::VariantRecord record;
  record.contig_index = 0;
  record.position = 12'345;
  record.ref_allele = "A";
  record.alt_allele = "G";
  record.qual = 57.3;
  record.depth = 31;
  record.alt_fraction = 0.48;
  record.genotype = "0/1";
  std::string out;
  for (auto _ : state) {
    out.clear();
    benchmark::DoNotOptimize(format::AppendVcfRecord(Reference(), record, &out));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VcfAppendRecord);

void BM_RecordLocator(benchmark::State& state) {
  format::Manifest manifest;
  for (int i = 0; i < 1'000; ++i) {
    manifest.chunks.push_back({"c", i * 100'000, 100'000});
  }
  auto locator = format::RecordLocator::Create(&manifest);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        locator->Locate(static_cast<int64_t>(rng.Uniform(100'000'000))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecordLocator);

void BM_WorkStealingSubmitDrain(benchmark::State& state) {
  const int tasks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    dataflow::WorkStealingPool pool(4);
    for (int i = 0; i < tasks; ++i) {
      benchmark::DoNotOptimize(pool.Submit([] { benchmark::DoNotOptimize(0); }));
    }
    pool.Drain();
  }
  state.SetItemsProcessed(state.iterations() * tasks);
}
BENCHMARK(BM_WorkStealingSubmitDrain)->Arg(1'000);

}  // namespace
}  // namespace persona

BENCHMARK_MAIN();
