#!/usr/bin/env bash
# Doc linter: keeps the markdown honest. Run from the repo root; exits non-zero
# with one line per violation. CI runs this in the lint job; it needs nothing
# but POSIX tools + git.
#
# Checks:
#   1. Every relative link in a tracked *.md resolves to a file or directory in
#      the tree (fragment suffixes are stripped; http(s)/mailto links are not
#      fetched).
#   2. The PERSONA_* knob catalogue in docs/TUNING.md matches reality both ways:
#      every `getenv("PERSONA_...")` call site in src/ is documented, and every
#      PERSONA_* variable the docs mention exists somewhere in the build or the
#      sources — so a renamed or removed knob fails CI instead of rotting.

set -u
cd "$(dirname "$0")/.."

fail=0

report() {
  # $1 = check name, $2 = offending lines ("" when clean). Not fed via a pipe: a
  # pipeline stage runs in a subshell and its fail=1 would be lost.
  local check="$1" lines="$2"
  if [ -n "$lines" ]; then
    echo "docs: ${check}:"
    echo "$lines" | sed 's/^/  /'
    fail=1
  fi
}

# --- Check 1: relative markdown links resolve ----------------------------------------
broken_links=$(
  git ls-files '*.md' | while IFS= read -r doc; do
    dir=$(dirname "$doc")
    # Inline links only: [text](target). Reference-style links are not used here.
    grep -oE '\]\([^)]+\)' "$doc" 2>/dev/null | sed 's/^](//; s/)$//' |
      while IFS= read -r target; do
        case "$target" in
          http://*|https://*|mailto:*) continue ;;  # external; not fetched
          '#'*) continue ;;                         # same-file anchor
          *' '*) continue ;;  # C++ lambda in a code block, not a link
        esac
        path="${target%%#*}"
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ]; then
          echo "$doc: broken link -> $target"
        fi
      done
  done
)
report "broken relative link (target file missing)" "$broken_links"

# --- Check 2: PERSONA_* env knobs vs docs/TUNING.md ----------------------------------
tuning=docs/TUNING.md
if [ ! -f "$tuning" ]; then
  report "missing knob catalogue" "$tuning does not exist"
else
  # Authoritative set: names passed to getenv in the sources.
  code_vars=$(grep -rhoE 'getenv\("PERSONA_[A-Z_0-9]+"' src/ 2>/dev/null |
    sed 's/getenv("//; s/"$//' | sort -u)
  # Documented set: every PERSONA_* token the catalogue mentions.
  doc_vars=$(grep -oE 'PERSONA_[A-Z_0-9]+' "$tuning" | sort -u)

  undocumented=$(
    for v in $code_vars; do
      printf '%s\n' "$doc_vars" | grep -qx "$v" ||
        echo "$v read by $(grep -rlE "getenv\(\"$v\"" src/ | tr '\n' ' ')but absent from $tuning"
    done
  )
  report "getenv knob undocumented in docs/TUNING.md" "$undocumented"

  phantom=$(
    for v in $doc_vars; do
      # A documented name must be read somewhere: getenv in src/, or a CMake
      # cache variable / env reference in a CMakeLists or *.cmake file.
      grep -rqE "getenv\(\"$v\"" src/ && continue
      git ls-files 'CMakeLists.txt' '*/CMakeLists.txt' '*.cmake' |
        xargs grep -lq "$v" 2>/dev/null && continue
      echo "$v documented in $tuning but not read anywhere in the tree"
    done
  )
  report "documented knob with no call site (stale docs)" "$phantom"
fi

if [ "$fail" -ne 0 ]; then
  echo "docs: FAILED"
  exit 1
fi
echo "docs: OK"
