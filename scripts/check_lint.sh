#!/usr/bin/env bash
# Project-rule linter: grep-enforceable invariants that neither the compiler nor
# clang-tidy expresses. Run from the repo root; exits non-zero with one line per
# violation. CI runs this in the lint job; it needs nothing but POSIX tools.
#
# Rules:
#   1. No std:: locking primitives in src/ outside util/mutex.h — all locking goes
#      through the annotated persona::Mutex/CondVar/MutexLock wrappers so Clang
#      Thread Safety Analysis sees every acquisition.
#   2. No naked `new` in src/ — allocations are owned from birth. `new` is allowed
#      only immediately wrapped in a unique_ptr/shared_ptr constructor (the private-
#      constructor factory idiom that make_unique cannot reach).
#   3. No `(void)` casts of a call expression in src/ — discarding a call result
#      (a [[nodiscard]] Status in particular) must be impossible to write silently;
#      handle it, return it, or route it through FirstErrorCollector / a log line.

set -u
cd "$(dirname "$0")/.."

fail=0

report() {
  # $1 = rule name, $2 = offending lines ("" when clean). Not fed via a pipe: a
  # pipeline stage runs in a subshell and its fail=1 would be lost.
  local rule="$1" lines="$2"
  if [ -n "$lines" ]; then
    echo "lint: ${rule}:"
    echo "$lines" | sed 's/^/  /'
    fail=1
  fi
}

src_files=$(git ls-files 'src/*.h' 'src/*.cc' | grep -v '^src/util/mutex\.h$')

# --- Rule 1: std:: locking primitives ------------------------------------------------
# (std::atomic, std::once_flag etc. are fine; this targets the mutex/cv family.)
report "std:: locking primitive outside util/mutex.h (use persona::Mutex/CondVar/MutexLock)" \
  "$(grep -nE 'std::(mutex|timed_mutex|recursive_mutex|shared_mutex|condition_variable|condition_variable_any|lock_guard|unique_lock|scoped_lock|shared_lock)\b' \
       $src_files /dev/null)"

# --- Rule 2: naked new ---------------------------------------------------------------
# A `new` expression is allowed only on a line that wraps it into a smart pointer
# (unique_ptr<...>(new ...) / shared_ptr<...>(new ...)), or as the argument continuing
# such a wrap begun on the previous line (matched here by reading two-line windows).
naked_new=$(
  for f in $src_files; do
    awk '
      /(^|[^_[:alnum:]])new[[:space:]]+[[:alnum:]_:]+/ {
        ok = 0
        if ($0 ~ /(unique_ptr|shared_ptr)[^(]*\(([^(]*[^_[:alnum:]])?new[[:space:]]/) ok = 1
        # continuation line: previous line opened a smart-pointer constructor call
        if (prev ~ /(unique_ptr|shared_ptr)[^(]*\([[:space:]]*$/) ok = 1
        if ($0 ~ /\/\//) {
          comment = $0; sub(/\/\/.*/, "", comment)
          if (comment !~ /(^|[^_[:alnum:]])new[[:space:]]+[[:alnum:]_:]+/) ok = 1
        }
        if (!ok) printf "%s:%d:%s\n", FILENAME, FNR, $0
      }
      { prev = $0 }
    ' "$f"
  done
)
report "naked new (wrap in unique_ptr/shared_ptr at the allocation site)" "$naked_new"

# --- Rule 3: (void)-cast call expressions --------------------------------------------
report "(void)-cast of a call result (handle the Status; do not discard it)" \
  "$(grep -nE '\(void\)[[:space:]]*[A-Za-z_][A-Za-z0-9_:.>-]*\(' $src_files /dev/null)"

if [ "$fail" -ne 0 ]; then
  echo "lint: FAILED"
  exit 1
fi
echo "lint: OK"
