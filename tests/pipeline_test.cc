// Integration tests for the Persona pipeline layer: end-to-end alignment through the
// dataflow graph, the standalone baseline, sorting, dedup, and conversion.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "src/align/accuracy.h"
#include "src/align/snap_aligner.h"
#include "src/genome/generator.h"
#include "src/genome/read_simulator.h"
#include "src/pipeline/agd_store_util.h"
#include "src/pipeline/baseline_standalone.h"
#include "src/pipeline/convert.h"
#include "src/pipeline/dedup.h"
#include "src/pipeline/persona_pipeline.h"
#include "src/format/sam.h"
#include "src/pipeline/row_sort_baseline.h"
#include "src/pipeline/sort.h"
#include "src/storage/memory_store.h"
#include "src/storage/sharded_store.h"

namespace persona::pipeline {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    genome::GenomeSpec gspec;
    gspec.num_contigs = 2;
    gspec.contig_length = 40'000;
    reference_ = new genome::ReferenceGenome(genome::GenerateGenome(gspec));

    align::SeedIndexOptions seed_options;
    seed_options.seed_length = 20;
    index_ = new align::SeedIndex(align::SeedIndex::Build(*reference_, seed_options).value());
    aligner_ = new align::SnapAligner(reference_, index_);

    genome::ReadSimSpec rspec;
    rspec.read_length = 101;
    rspec.duplicate_fraction = 0.10;
    genome::ReadSimulator sim(reference_, rspec);
    reads_ = new std::vector<genome::Read>(sim.Simulate(1'200));
  }

  static void TearDownTestSuite() {
    delete reads_;
    delete aligner_;
    delete index_;
    delete reference_;
  }

  // Stages the shared dataset into a fresh store (400-read chunks -> 3 chunks).
  format::Manifest StageDataset(storage::ObjectStore* store) {
    auto manifest = WriteAgdToStore(store, "ds", *reads_, 400);
    EXPECT_TRUE(manifest.ok());
    return std::move(manifest).value();
  }

  static genome::ReferenceGenome* reference_;
  static align::SeedIndex* index_;
  static align::SnapAligner* aligner_;
  static std::vector<genome::Read>* reads_;
};

genome::ReferenceGenome* PipelineTest::reference_ = nullptr;
align::SeedIndex* PipelineTest::index_ = nullptr;
align::SnapAligner* PipelineTest::aligner_ = nullptr;
std::vector<genome::Read>* PipelineTest::reads_ = nullptr;

TEST_F(PipelineTest, AgdStoreRoundTrip) {
  storage::MemoryStore store;
  format::Manifest manifest = StageDataset(&store);
  EXPECT_EQ(manifest.chunks.size(), 3u);
  EXPECT_EQ(manifest.total_records(), 1'200);
  EXPECT_TRUE(store.Exists("ds-0.bases"));
  EXPECT_TRUE(store.Exists("ds-2.metadata"));
  EXPECT_TRUE(store.Exists("manifest.json"));

  auto reopened = ReadManifestFromStore(&store);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->total_records(), manifest.total_records());
}

TEST_F(PipelineTest, EndToEndAlignmentThroughDataflow) {
  storage::MemoryStore store;
  format::Manifest manifest = StageDataset(&store);

  dataflow::Executor executor(3);
  AlignPipelineOptions options;
  options.align_nodes = 2;
  options.subchunk_size = 64;
  options.collect_results = true;
  auto report = RunPersonaAlignment(&store, manifest, *aligner_, &executor, options);
  ASSERT_TRUE(report.ok());

  EXPECT_EQ(report->reads, 1'200u);
  EXPECT_EQ(report->bases, 1'200u * 101u);
  EXPECT_EQ(report->chunks, 3u);
  EXPECT_EQ(report->profile.reads, 1'200u);
  // Results written back to the store, one column file per chunk.
  EXPECT_TRUE(store.Exists("ds-0.results"));
  EXPECT_TRUE(store.Exists("ds-2.results"));
  // Only bases+qual were read (selective column access): metadata untouched.
  EXPECT_EQ(report->store_stats.read_ops, 6u);

  // Accuracy against simulator ground truth (order preserved per chunk).
  std::vector<align::AlignmentResult> flat;
  for (const auto& chunk : report->results) {
    flat.insert(flat.end(), chunk.begin(), chunk.end());
  }
  align::AccuracyReport accuracy = align::ScoreAlignments(*reference_, *reads_, flat);
  EXPECT_GT(accuracy.correct_fraction(), 0.9);
}

TEST_F(PipelineTest, DeepQueuesDoNotExhaustTheBufferPool) {
  // Regression: the buffer pool must follow the paper's §4.5 sizing rule ("sum of the
  // queue lengths and the number of dataflow nodes that use an object"). A pool sized
  // only from stage parallelism deadlocks once queue_depth lets the input side park
  // every buffer in raw-chunk queues: aligners block in Acquire() with nothing
  // downstream able to release. A throttled store provides the backpressure timing
  // that made the original hang reproducible.
  auto device = std::make_shared<storage::ThrottledDevice>(
      storage::DeviceProfile::Raid0(0.05));
  storage::MemoryStore store(device);
  format::Manifest manifest;
  {
    auto written = WriteAgdToStore(&store, "deep", *reads_, 100);  // 12 chunks
    ASSERT_TRUE(written.ok());
    manifest = *written;
  }
  dataflow::Executor executor(2);
  AlignPipelineOptions options;
  options.align_nodes = 2;
  options.queue_depth = 16;  // far beyond stage parallelism
  options.subchunk_size = 128;
  auto report = RunPersonaAlignment(&store, manifest, *aligner_, &executor, options);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_EQ(report->reads, reads_->size());
}

TEST_F(PipelineTest, PairedEndAlignmentThroughDataflow) {
  // Interleaved mate pairs (r1 at even indices), aligned with AlignPair through the
  // executor; proper pairs get mate fields and pair flags.
  genome::ReadSimSpec rspec;
  rspec.read_length = 101;
  rspec.paired = true;
  rspec.seed = 77;
  genome::ReadSimulator sim(reference_, rspec);
  std::vector<genome::Read> reads;
  for (int i = 0; i < 300; ++i) {
    auto [r1, r2] = sim.NextPair();
    reads.push_back(std::move(r1));
    reads.push_back(std::move(r2));
  }

  storage::MemoryStore store;
  auto manifest = WriteAgdToStore(&store, "pe", reads, 200);  // even chunk size
  ASSERT_TRUE(manifest.ok());

  dataflow::Executor executor(3);
  AlignPipelineOptions options;
  options.paired = true;
  options.align_nodes = 2;
  options.subchunk_size = 33;  // odd on purpose: must be rounded up to pair-aligned
  options.collect_results = true;
  auto report = RunPersonaAlignment(&store, *manifest, *aligner_, &executor, options);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_EQ(report->reads, 600u);

  std::vector<align::AlignmentResult> flat;
  for (const auto& chunk : report->results) {
    flat.insert(flat.end(), chunk.begin(), chunk.end());
  }
  ASSERT_EQ(flat.size(), reads.size());

  // Pair bookkeeping: flags mark first/second-in-pair; proper pairs cross-reference
  // each other's locations and carry opposite-sign template lengths.
  size_t proper = 0;
  for (size_t i = 0; i + 1 < flat.size(); i += 2) {
    const align::AlignmentResult& r1 = flat[i];
    const align::AlignmentResult& r2 = flat[i + 1];
    if (r1.mapped()) {
      EXPECT_TRUE(r1.flags & align::kFlagPaired) << i;
      EXPECT_TRUE(r1.flags & align::kFlagFirstInPair) << i;
    }
    if (r2.mapped()) {
      EXPECT_TRUE(r2.flags & align::kFlagSecondInPair) << i;
    }
    if ((r1.flags & align::kFlagProperPair) && (r2.flags & align::kFlagProperPair)) {
      ++proper;
      EXPECT_EQ(r1.mate_location, r2.location) << i;
      EXPECT_EQ(r2.mate_location, r1.location) << i;
      EXPECT_EQ(r1.template_length, -r2.template_length) << i;
    }
  }
  EXPECT_GT(proper, 250u) << "most simulated pairs should align as proper pairs";

  // Placement accuracy holds for both ends.
  align::AccuracyReport accuracy = align::ScoreAlignments(*reference_, reads, flat);
  EXPECT_GT(accuracy.correct_fraction(), 0.9);
}

TEST_F(PipelineTest, PairedModeRejectsOddChunks) {
  std::vector<genome::Read> reads(11, genome::Read{"ACGTACGTAC", "IIIIIIIIII", "r"});
  storage::MemoryStore store;
  auto manifest = WriteAgdToStore(&store, "odd", reads, 11);
  ASSERT_TRUE(manifest.ok());
  dataflow::Executor executor(2);
  AlignPipelineOptions options;
  options.paired = true;
  auto report = RunPersonaAlignment(&store, *manifest, *aligner_, &executor, options);
  EXPECT_FALSE(report.ok());
}

TEST_F(PipelineTest, ClusterWorkSourceIsHonored) {
  storage::MemoryStore store;
  format::Manifest manifest = StageDataset(&store);

  // Hand out only chunk #1 via an external source.
  std::atomic<bool> given{false};
  dataflow::Executor executor(2);
  AlignPipelineOptions options;
  FunctionWorkSource source([&given]() -> std::optional<size_t> {
    if (given.exchange(true)) {
      return std::nullopt;
    }
    return size_t{1};
  });
  options.work_source = &source;
  auto report = RunPersonaAlignment(&store, manifest, *aligner_, &executor, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->reads, 400u);
  EXPECT_TRUE(store.Exists("ds-1.results"));
  EXPECT_FALSE(store.Exists("ds-0.results"));
}

TEST_F(PipelineTest, AlignmentFailsCleanlyOnMissingColumn) {
  storage::MemoryStore store;
  format::Manifest manifest = StageDataset(&store);
  ASSERT_TRUE(store.Delete("ds-1.qual").ok());

  dataflow::Executor executor(2);
  AlignPipelineOptions options;
  auto report = RunPersonaAlignment(&store, manifest, *aligner_, &executor, options);
  EXPECT_FALSE(report.ok());  // and, critically, it terminates
}

TEST_F(PipelineTest, StandaloneBaselineProducesSam) {
  storage::MemoryStore store;
  auto bytes = WriteGzippedFastqToStore(&store, "base", *reads_);
  ASSERT_TRUE(bytes.ok());

  StandaloneOptions options;
  options.threads = 2;
  options.writeback_threshold = 1 << 20;
  auto report = RunStandaloneAlignment(&store, "base", *reference_, *aligner_, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->reads, 1'200u);
  EXPECT_TRUE(store.Exists("base.sam.0"));
  // Row-oriented SAM output is much larger than the gzipped input.
  EXPECT_GT(report->store_stats.bytes_written, *bytes);
}

TEST_F(PipelineTest, SortByLocationOrdersDataset) {
  storage::MemoryStore store;
  format::Manifest manifest = StageDataset(&store);
  dataflow::Executor executor(2);
  AlignPipelineOptions align_options;
  ASSERT_TRUE(RunPersonaAlignment(&store, manifest, *aligner_, &executor, align_options).ok());

  manifest.columns.push_back(format::ResultsColumn());

  SortOptions sort_options;
  sort_options.chunks_per_superchunk = 2;
  format::Manifest sorted;
  auto report = SortAgdDataset(&store, manifest, "sorted", sort_options, &sorted);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->records, 1'200u);
  EXPECT_EQ(report->superchunks, 2u);
  EXPECT_EQ(sorted.total_records(), 1'200);

  // Verify global ordering across chunk boundaries.
  int64_t last = -1;
  uint64_t seen = 0;
  Buffer file;
  for (size_t ci = 0; ci < sorted.chunks.size(); ++ci) {
    ASSERT_TRUE(store.Get(sorted.ChunkFileName(ci, "results"), &file).ok());
    auto chunk = format::ParsedChunk::Parse(file.span());
    ASSERT_TRUE(chunk.ok());
    for (size_t i = 0; i < chunk->record_count(); ++i) {
      auto result = chunk->GetResult(i);
      ASSERT_TRUE(result.ok());
      int64_t loc = result->mapped() ? result->location : INT64_MAX;
      EXPECT_GE(loc, last);
      last = loc;
      ++seen;
    }
  }
  EXPECT_EQ(seen, 1'200u);

  // Superchunk temporaries must be cleaned up.
  auto leftovers = store.List("sorted.super-");
  ASSERT_TRUE(leftovers.ok());
  EXPECT_TRUE(leftovers->empty());
}

TEST_F(PipelineTest, SortByMetadataOrdersById) {
  storage::MemoryStore store;
  format::Manifest manifest = StageDataset(&store);
  dataflow::Executor executor(2);
  AlignPipelineOptions align_options;
  ASSERT_TRUE(RunPersonaAlignment(&store, manifest, *aligner_, &executor, align_options).ok());

  manifest.columns.push_back(format::ResultsColumn());

  SortOptions sort_options;
  sort_options.key = SortKey::kMetadata;
  format::Manifest sorted;
  ASSERT_TRUE(SortAgdDataset(&store, manifest, "sorted2", sort_options, &sorted).ok());

  std::string last;
  Buffer file;
  for (size_t ci = 0; ci < sorted.chunks.size(); ++ci) {
    ASSERT_TRUE(store.Get(sorted.ChunkFileName(ci, "metadata"), &file).ok());
    auto chunk = format::ParsedChunk::Parse(file.span());
    ASSERT_TRUE(chunk.ok());
    for (size_t i = 0; i < chunk->record_count(); ++i) {
      std::string meta(chunk->GetString(i).value());
      EXPECT_GE(meta, last);
      last = std::move(meta);
    }
  }
}

TEST_F(PipelineTest, SortRequiresResultsColumn) {
  storage::MemoryStore store;
  format::Manifest manifest = StageDataset(&store);
  SortOptions options;
  EXPECT_FALSE(SortAgdDataset(&store, manifest, "s", options, nullptr).ok());
}

TEST_F(PipelineTest, DedupImplementationsAgree) {
  // Build results with planted duplicates.
  std::vector<align::AlignmentResult> a;
  for (int i = 0; i < 500; ++i) {
    align::AlignmentResult r;
    r.location = (i * 37) % 200;  // plenty of collisions
    r.flags = i % 2 ? align::kFlagReverse : 0;
    r.cigar = "101M";
    a.push_back(r);
  }
  std::vector<align::AlignmentResult> b = a;

  DedupReport dense = MarkDuplicatesDense(a);
  DedupReport chained = MarkDuplicatesChained(b);
  EXPECT_EQ(dense.total, 500u);
  EXPECT_EQ(dense.duplicates, chained.duplicates);
  EXPECT_GT(dense.duplicates, 0u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].duplicate(), b[i].duplicate()) << i;
  }
  // First occurrence of each signature is never marked.
  std::set<std::tuple<int64_t, bool>> seen;
  for (const auto& r : a) {
    auto key = std::make_tuple(r.location, r.reverse());
    if (!seen.contains(key)) {
      EXPECT_FALSE(r.duplicate());
      seen.insert(key);
    } else {
      EXPECT_TRUE(r.duplicate());
    }
  }
}

TEST_F(PipelineTest, DedupOnStoreTouchesOnlyResults) {
  storage::MemoryStore store;
  format::Manifest manifest = StageDataset(&store);
  dataflow::Executor executor(2);
  AlignPipelineOptions align_options;
  ASSERT_TRUE(RunPersonaAlignment(&store, manifest, *aligner_, &executor, align_options).ok());
  manifest.columns.push_back(format::ResultsColumn());

  storage::StoreStats before = store.stats();
  auto report = DedupAgdResults(&store, manifest);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->total, 1'200u);
  // The simulator planted ~10% duplicates; the aligner maps them to identical
  // signatures. Expect a meaningful number of marks.
  EXPECT_GT(report->duplicates, 40u);
  storage::StoreStats after = store.stats();
  EXPECT_EQ(after.read_ops - before.read_ops, 3u);   // results column only
  EXPECT_EQ(after.write_ops - before.write_ops, 3u);

  // Marks persisted: re-reading shows duplicate flags.
  Buffer file;
  uint64_t marked = 0;
  for (size_t ci = 0; ci < manifest.chunks.size(); ++ci) {
    ASSERT_TRUE(store.Get(manifest.ChunkFileName(ci, "results"), &file).ok());
    auto chunk = format::ParsedChunk::Parse(file.span());
    ASSERT_TRUE(chunk.ok());
    for (size_t i = 0; i < chunk->record_count(); ++i) {
      marked += chunk->GetResult(i)->duplicate() ? 1 : 0;
    }
  }
  EXPECT_EQ(marked, report->duplicates);
}

TEST_F(PipelineTest, ImportFastqMatchesOriginalReads) {
  storage::MemoryStore store;
  ASSERT_TRUE(WriteGzippedFastqToStore(&store, "imp", *reads_).ok());

  format::Manifest manifest;
  auto report = ImportFastqToAgd(&store, "imp", 500, compress::CodecId::kZlib, &manifest);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->records, 1'200u);
  EXPECT_EQ(manifest.chunks.size(), 3u);  // 500+500+200
  EXPECT_GT(report->throughput_mb_per_sec, 0);

  // Spot-check a record straight from the store.
  Buffer file;
  ASSERT_TRUE(store.Get("imp-0.bases", &file).ok());
  auto chunk = format::ParsedChunk::Parse(file.span());
  ASSERT_TRUE(chunk.ok());
  EXPECT_EQ(*chunk->GetBases(5), (*reads_)[5].bases);
}

TEST_F(PipelineTest, ExportSamAndBsam) {
  storage::MemoryStore store;
  format::Manifest manifest = StageDataset(&store);
  dataflow::Executor executor(2);
  AlignPipelineOptions align_options;
  ASSERT_TRUE(RunPersonaAlignment(&store, manifest, *aligner_, &executor, align_options).ok());
  manifest.columns.push_back(format::ResultsColumn());

  auto sam_report = ExportAgdToSam(&store, manifest, *reference_, "out.sam");
  ASSERT_TRUE(sam_report.ok());
  EXPECT_EQ(sam_report->records, 1'200u);
  EXPECT_TRUE(store.Exists("out.sam.0"));

  auto bsam_report = ExportAgdToBsam(&store, manifest, "out.bsam");
  ASSERT_TRUE(bsam_report.ok());
  EXPECT_EQ(bsam_report->records, 1'200u);

  Buffer file;
  ASSERT_TRUE(store.Get("out.bsam", &file).ok());
  auto reader = format::BsamReader::Open(file.span());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->size(), 1'200u);
}

TEST_F(PipelineTest, RowSortBaselinesProduceSortedOutput) {
  storage::MemoryStore store;
  format::Manifest manifest = StageDataset(&store);
  dataflow::Executor executor(2);
  AlignPipelineOptions align_options;
  ASSERT_TRUE(RunPersonaAlignment(&store, manifest, *aligner_, &executor, align_options).ok());
  manifest.columns.push_back(format::ResultsColumn());
  ASSERT_TRUE(ExportAgdToSam(&store, manifest, *reference_, "rows.sam").ok());
  ASSERT_TRUE(ExportAgdToBsam(&store, manifest, "rows.bsam").ok());

  // samtools-like over BSAM.
  RowSortOptions options;
  options.records_per_superchunk = 300;
  auto samtools = SamtoolsLikeSort(&store, *reference_, "rows.bsam", "sorted.bsam", options,
                                   /*convert_from_sam=*/false);
  ASSERT_TRUE(samtools.ok());
  EXPECT_EQ(samtools->records, 1'200u);

  Buffer file;
  ASSERT_TRUE(store.Get("sorted.bsam", &file).ok());
  auto reader = format::BsamReader::Open(file.span());
  ASSERT_TRUE(reader.ok());
  ASSERT_EQ(reader->size(), 1'200u);
  int64_t last = -1;
  for (size_t i = 0; i < reader->size(); ++i) {
    int64_t loc = reader->result(i).mapped() ? reader->result(i).location : INT64_MAX;
    EXPECT_GE(loc, last);
    last = loc;
  }

  // samtools-like with SAM conversion.
  auto with_conv = SamtoolsLikeSort(&store, *reference_, "rows.sam", "sorted2.bsam", options,
                                    /*convert_from_sam=*/true);
  ASSERT_TRUE(with_conv.ok());
  EXPECT_EQ(with_conv->records, 1'200u);

  // picard-like over BSAM (Picard sorts BAM, single-threaded).
  auto picard = PicardLikeSort(&store, *reference_, "rows.bsam", "picard.bsam");
  ASSERT_TRUE(picard.ok());
  EXPECT_EQ(picard->records, 1'200u);
  ASSERT_TRUE(store.Get("picard.bsam", &file).ok());
  auto picard_reader = format::BsamReader::Open(file.span());
  ASSERT_TRUE(picard_reader.ok());
  ASSERT_EQ(picard_reader->size(), 1'200u);
  last = -1;
  for (size_t i = 0; i < picard_reader->size(); ++i) {
    int64_t loc = picard_reader->result(i).mapped() ? picard_reader->result(i).location
                                                    : INT64_MAX;
    EXPECT_GE(loc, last);
    last = loc;
  }
}

// --- Batched-vs-scalar parity: the batched store entry points must leave pipelines
// bit-identical. MemoryStore inherits the sequential base-class batch loops (the
// scalar path); ShardedStore executes the same ops through per-shard async queues. ---

// Copies every object of `src` into `dst`.
void CloneStore(storage::ObjectStore* src, storage::ObjectStore* dst) {
  auto keys = src->List("");
  ASSERT_TRUE(keys.ok());
  Buffer object;
  for (const std::string& key : *keys) {
    ASSERT_TRUE(src->Get(key, &object).ok());
    ASSERT_TRUE(dst->Put(key, object).ok());
  }
}

// Expects both stores to hold exactly the same keys with exactly the same bytes under
// `prefix`.
void ExpectObjectsIdentical(storage::ObjectStore* a, storage::ObjectStore* b,
                            std::string_view prefix) {
  auto keys_a = a->List(prefix);
  auto keys_b = b->List(prefix);
  ASSERT_TRUE(keys_a.ok());
  ASSERT_TRUE(keys_b.ok());
  ASSERT_EQ(*keys_a, *keys_b);
  ASSERT_FALSE(keys_a->empty()) << "no objects under prefix '" << prefix << "'";
  Buffer object_a;
  Buffer object_b;
  for (const std::string& key : *keys_a) {
    ASSERT_TRUE(a->Get(key, &object_a).ok());
    ASSERT_TRUE(b->Get(key, &object_b).ok());
    EXPECT_EQ(object_a.view(), object_b.view()) << "object '" << key << "' differs";
  }
}

std::unique_ptr<storage::ShardedStore> MakeShardedMemoryStore(size_t shards) {
  return storage::ShardedStore::Create(
      shards, [](size_t) { return std::make_unique<storage::MemoryStore>(); });
}

TEST_F(PipelineTest, BatchedSortBitIdenticalToScalarPath) {
  storage::MemoryStore scalar_store;
  format::Manifest manifest = StageDataset(&scalar_store);
  dataflow::Executor executor(2);
  AlignPipelineOptions align_options;
  ASSERT_TRUE(
      RunPersonaAlignment(&scalar_store, manifest, *aligner_, &executor, align_options)
          .ok());
  manifest.columns.push_back(format::ResultsColumn());

  auto batched_store = MakeShardedMemoryStore(4);
  CloneStore(&scalar_store, batched_store.get());

  SortOptions sort_options;
  sort_options.chunks_per_superchunk = 2;
  format::Manifest sorted_scalar;
  format::Manifest sorted_batched;
  ASSERT_TRUE(
      SortAgdDataset(&scalar_store, manifest, "sorted", sort_options, &sorted_scalar).ok());
  ASSERT_TRUE(
      SortAgdDataset(batched_store.get(), manifest, "sorted", sort_options, &sorted_batched)
          .ok());

  EXPECT_EQ(sorted_scalar.ToJson(), sorted_batched.ToJson());
  ExpectObjectsIdentical(&scalar_store, batched_store.get(), "sorted-");
  ExpectObjectsIdentical(&scalar_store, batched_store.get(), "sorted.manifest.json");
}

TEST_F(PipelineTest, BatchedConvertBitIdenticalToScalarPath) {
  storage::MemoryStore scalar_store;
  auto batched_store = MakeShardedMemoryStore(4);
  ASSERT_TRUE(WriteGzippedFastqToStore(&scalar_store, "imp", *reads_).ok());
  CloneStore(&scalar_store, batched_store.get());

  format::Manifest manifest_scalar;
  format::Manifest manifest_batched;
  auto scalar_report = ImportFastqToAgd(&scalar_store, "imp", 256,
                                        compress::CodecId::kZlib, &manifest_scalar);
  auto batched_report = ImportFastqToAgd(batched_store.get(), "imp", 256,
                                         compress::CodecId::kZlib, &manifest_batched);
  ASSERT_TRUE(scalar_report.ok());
  ASSERT_TRUE(batched_report.ok());
  EXPECT_EQ(scalar_report->records, batched_report->records);
  EXPECT_EQ(manifest_scalar.ToJson(), manifest_batched.ToJson());
  ExpectObjectsIdentical(&scalar_store, batched_store.get(), "imp-");
}

}  // namespace
}  // namespace persona::pipeline
