// Tests for the work-stealing pool: exactly-once execution, drain semantics, balance
// under skewed task costs, and the steal accounting the §4.5 ablation bench reports.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "src/dataflow/work_stealing.h"

namespace persona::dataflow {
namespace {

TEST(WorkStealingPool, ExecutesEveryTaskExactlyOnce) {
  constexpr int kTasks = 2'000;
  std::vector<std::atomic<int>> executed(kTasks);
  {
    WorkStealingPool pool(4);
    for (int i = 0; i < kTasks; ++i) {
      ASSERT_TRUE(pool.Submit([&executed, i] {
        executed[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
      }));
    }
    pool.Drain();
    for (int i = 0; i < kTasks; ++i) {
      EXPECT_EQ(executed[static_cast<size_t>(i)].load(), 1) << i;
    }
  }
  EXPECT_EQ(std::accumulate(executed.begin(), executed.end(), 0,
                            [](int acc, const std::atomic<int>& v) { return acc + v.load(); }),
            kTasks);
}

TEST(WorkStealingPool, DrainWaitsForInFlightTasks) {
  WorkStealingPool pool(2);
  std::atomic<bool> finished{false};
  ASSERT_TRUE(pool.Submit([&finished] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    finished.store(true);
  }));
  pool.Drain();
  EXPECT_TRUE(finished.load());
}

TEST(WorkStealingPool, DrainOnEmptyPoolReturnsImmediately) {
  WorkStealingPool pool(3);
  pool.Drain();  // must not hang
  EXPECT_EQ(pool.steals() + pool.local_executions(), 0u);
}

TEST(WorkStealingPool, AccountsLocalAndStolenExecutions) {
  WorkStealingPool pool(4);
  constexpr int kTasks = 500;
  std::atomic<int> count{0};
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_TRUE(pool.Submit([&count] { count.fetch_add(1); }, /*home=*/i % 4));
  }
  pool.Drain();
  EXPECT_EQ(count.load(), kTasks);
  EXPECT_EQ(pool.steals() + pool.local_executions(), static_cast<uint64_t>(kTasks));
  std::vector<uint64_t> per_worker = pool.ExecutedPerWorker();
  EXPECT_EQ(std::accumulate(per_worker.begin(), per_worker.end(), uint64_t{0}),
            static_cast<uint64_t>(kTasks));
}

TEST(WorkStealingPool, StealsRebalanceSkewedSubmission) {
  // One "expensive chunk" (the paper's straggler scenario) and a pile of quick tasks,
  // all homed on deque 0 of a 2-worker pool. Whichever worker ends up inside the
  // blocker, at least one steal is forced:
  //   - if worker 0 runs the blocker, worker 1 must steal every quick task;
  //   - if worker 1 runs the blocker, taking it off deque 0 was itself a steal.
  // Either way the quick tasks complete while the blocker is still running — the
  // balancing property work stealing exists to provide.
  WorkStealingPool pool(2);
  std::atomic<bool> blocker_started{false};
  std::atomic<bool> release{false};
  ASSERT_TRUE(pool.Submit(
      [&blocker_started, &release] {
        blocker_started.store(true, std::memory_order_release);
        while (!release.load(std::memory_order_acquire)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      },
      /*home=*/0));
  while (!blocker_started.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  constexpr int kTasks = 50;
  std::atomic<int> count{0};
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_TRUE(pool.Submit([&count] { count.fetch_add(1); }, /*home=*/0));
  }
  // The free worker must finish every quick task while the other stays blocked.
  while (count.load() < kTasks) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  release.store(true, std::memory_order_release);
  pool.Drain();

  EXPECT_EQ(count.load(), kTasks);
  // Counted only after Drain: steal attribution lands when a task's function returns,
  // and in the "blocker was stolen" case that is after release.
  EXPECT_GE(pool.steals(), 1u);
  std::vector<uint64_t> per_worker = pool.ExecutedPerWorker();
  EXPECT_EQ(std::accumulate(per_worker.begin(), per_worker.end(), uint64_t{0}),
            static_cast<uint64_t>(kTasks) + 1);
}

TEST(WorkStealingPool, HomeHintWrapsAroundWorkerCount) {
  WorkStealingPool pool(2);
  std::atomic<int> count{0};
  ASSERT_TRUE(pool.Submit([&count] { count.fetch_add(1); }, /*home=*/17));
  pool.Drain();
  EXPECT_EQ(count.load(), 1);
}

TEST(WorkStealingPool, DestructorDrainsOutstandingWork) {
  std::atomic<int> count{0};
  {
    WorkStealingPool pool(3);
    for (int i = 0; i < 300; ++i) {
      ASSERT_TRUE(pool.Submit([&count] { count.fetch_add(1); }));
    }
    // No explicit Drain: the destructor must complete the backlog.
  }
  EXPECT_EQ(count.load(), 300);
}

TEST(WorkStealingPool, RapidConstructDestroyDoesNotHang) {
  // Regression: the destructor used to store shutdown_ and notify without holding
  // idle_mu_. A worker that had just checked the predicate but not yet blocked
  // missed the wakeup and slept forever, hanging the destructor's join. Tearing
  // down pools whose workers are going idle at that exact moment exercises the
  // window; with the bug this test eventually hangs (and times out under ctest).
  for (int round = 0; round < 200; ++round) {
    WorkStealingPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(pool.Submit([&count] { count.fetch_add(1); }));
    }
    // No Drain: destruction races the workers' transition back to idle.
  }
}

TEST(WorkStealingPool, ConcurrentSubmittersAreSafe) {
  WorkStealingPool pool(4);
  constexpr int kPerThread = 500;
  std::atomic<int> count{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&pool, &count, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(pool.Submit([&count] { count.fetch_add(1); }, t));
      }
    });
  }
  for (std::thread& t : submitters) {
    t.join();
  }
  pool.Drain();
  EXPECT_EQ(count.load(), 4 * kPerThread);
}

TEST(WorkStealingPool, SingleWorkerExecutesEverythingLocally) {
  WorkStealingPool pool(1);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&count] { count.fetch_add(1); }));
  }
  pool.Drain();
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(pool.steals(), 0u);
  EXPECT_EQ(pool.local_executions(), 100u);
}

}  // namespace
}  // namespace persona::dataflow
