// Tests for the Buffer byte container: vector-compatible Resize zero-fill vs the
// uninitialized fast path, capacity retention across Clear (pool recycling), move
// semantics, and the allocation counter that proves the zero-copy read paths — a
// warmed buffer serves repeated store reads with zero new heap allocations.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/storage/cache_store.h"
#include "src/storage/memory_store.h"
#include "src/util/buffer.h"

namespace persona {
namespace {

TEST(Buffer, ResizeZeroFillsNewTail) {
  Buffer buffer;
  buffer.Append(std::string_view("abc"));
  buffer.Resize(8);
  ASSERT_EQ(buffer.size(), 8u);
  EXPECT_EQ(buffer.view().substr(0, 3), "abc");
  for (size_t i = 3; i < 8; ++i) {
    EXPECT_EQ(buffer[i], 0u) << "byte " << i;
  }
  // Shrink then regrow within the same block: the tail reads as zero again even
  // though the old bytes are still in the heap block.
  buffer[5] = 0xFF;
  buffer.Resize(4);
  buffer.Resize(8);
  EXPECT_EQ(buffer[5], 0u);
}

TEST(Buffer, ResizeUninitializedSkipsZeroFill) {
  Buffer buffer;
  buffer.ResizeUninitialized(64);
  ASSERT_EQ(buffer.size(), 64u);
  // The contract is "caller overwrites": do exactly that, then read back.
  for (size_t i = 0; i < 64; ++i) {
    buffer[i] = static_cast<uint8_t>(i);
  }
  for (size_t i = 0; i < 64; ++i) {
    ASSERT_EQ(buffer[i], static_cast<uint8_t>(i));
  }
  // Shrinking never reallocates or forgets capacity.
  const size_t capacity = buffer.capacity();
  buffer.ResizeUninitialized(8);
  EXPECT_EQ(buffer.size(), 8u);
  EXPECT_EQ(buffer.capacity(), capacity);
}

TEST(Buffer, ClearKeepsCapacity) {
  Buffer buffer;
  buffer.Append(std::string(1000, 'x'));
  const size_t capacity = buffer.capacity();
  ASSERT_GE(capacity, 1000u);
  buffer.Clear();
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.capacity(), capacity);

  const uint64_t allocations = Buffer::TotalAllocations();
  buffer.Append(std::string(1000, 'y'));  // refill fits in the retained block
  EXPECT_EQ(Buffer::TotalAllocations(), allocations);
  EXPECT_EQ(buffer.view(), std::string(1000, 'y'));
}

TEST(Buffer, MoveTransfersAndEmptiesSource) {
  Buffer source;
  source.Append(std::string_view("payload"));
  Buffer dest(std::move(source));
  EXPECT_EQ(dest.view(), "payload");
  EXPECT_EQ(source.size(), 0u);      // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(source.capacity(), 0u);  // NOLINT(bugprone-use-after-move)

  Buffer assigned;
  assigned = std::move(dest);
  EXPECT_EQ(assigned.view(), "payload");
  EXPECT_EQ(dest.size(), 0u);  // NOLINT(bugprone-use-after-move)

  // The moved-from buffer is reusable.
  source.Append(std::string_view("again"));
  EXPECT_EQ(source.view(), "again");
}

TEST(Buffer, AppendScalarRoundTrip) {
  Buffer buffer;
  buffer.AppendScalar<uint32_t>(0xDEADBEEF);
  buffer.AppendScalar<uint16_t>(7);
  ASSERT_EQ(buffer.size(), 6u);
  EXPECT_EQ(buffer.ReadScalar<uint32_t>(0), 0xDEADBEEFu);
  EXPECT_EQ(buffer.ReadScalar<uint16_t>(4), 7u);
}

// The zero-copy acceptance check: once a buffer's block is large enough, repeated
// whole-object reads — scalar Get, batched GetBatch, cache hit or miss — perform no
// heap allocation at all. A regression that reintroduces an intermediate string or a
// fresh vector per read trips the counter.
TEST(Buffer, WarmReadsAllocateNothing) {
  storage::MemoryStore base;
  storage::CacheStore cache(&base);
  const std::string payload(4096, 'z');
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(base.Put("k" + std::to_string(i), payload).ok());
  }

  // Warm-up: size the caller buffers (and the cache entries) once.
  std::vector<Buffer> outs(4);
  std::vector<storage::GetOp> gets;
  for (int i = 0; i < 4; ++i) {
    gets.push_back({"k" + std::to_string(i), &outs[i], {}});
  }
  ASSERT_TRUE(cache.GetBatch(gets).ok());

  const uint64_t allocations = Buffer::TotalAllocations();
  for (int round = 0; round < 16; ++round) {
    for (storage::GetOp& op : gets) {
      op.status = Status();
    }
    ASSERT_TRUE(cache.GetBatch(gets).ok());       // cache hits
    ASSERT_TRUE(base.Get("k0", &outs[0]).ok());   // uncached scalar read
  }
  EXPECT_EQ(Buffer::TotalAllocations(), allocations)
      << "warm read path allocated; an intermediate copy crept back in";
  EXPECT_EQ(outs[1].view(), payload);
}

}  // namespace
}  // namespace persona
