// Cross-module property tests: invariants that must hold for arbitrary inputs —
// AGD chunk round-trips over a parameter grid, sort-permutation preservation,
// dedup counting invariants, and end-to-end FASTQ -> AGD -> FASTQ identity.

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "src/align/snap_aligner.h"
#include "src/format/agd_chunk.h"
#include "src/format/fastq.h"
#include "src/genome/generator.h"
#include "src/genome/read_simulator.h"
#include "src/pipeline/agd_store_util.h"
#include "src/pipeline/convert.h"
#include "src/pipeline/dedup.h"
#include "src/pipeline/filter.h"
#include "src/pipeline/persona_pipeline.h"
#include "src/pipeline/sort.h"
#include "src/storage/memory_store.h"
#include "src/util/rng.h"
#include "src/variant/call_pipeline.h"

namespace persona {
namespace {

// --- AGD chunk round-trip over (record count, record length, codec) grid. ---

using ChunkGridParam = std::tuple<size_t, size_t, compress::CodecId>;

class ChunkGridTest : public ::testing::TestWithParam<ChunkGridParam> {};

TEST_P(ChunkGridTest, QualColumnRoundTripsExactly) {
  auto [count, length, codec] = GetParam();
  Rng rng(count * 31 + length);
  std::vector<std::string> records;
  format::ChunkBuilder builder(format::RecordType::kQual, codec);
  for (size_t i = 0; i < count; ++i) {
    std::string q;
    // Vary lengths around the nominal to exercise the relative index.
    size_t len = length == 0 ? 0 : length - 1 + rng.Uniform(3);
    for (size_t k = 0; k < len; ++k) {
      q.push_back(static_cast<char>('!' + rng.Uniform(42)));
    }
    builder.AddRecord(q);
    records.push_back(std::move(q));
  }
  Buffer file;
  ASSERT_TRUE(builder.Finalize(&file).ok());
  auto chunk = format::ParsedChunk::Parse(file.span());
  ASSERT_TRUE(chunk.ok());
  ASSERT_EQ(chunk->record_count(), count);
  for (size_t i = 0; i < count; ++i) {
    EXPECT_EQ(*chunk->GetString(i), records[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ChunkGridTest,
    ::testing::Combine(::testing::Values(size_t{1}, size_t{13}, size_t{257}),
                       ::testing::Values(size_t{1}, size_t{101}, size_t{1000}),
                       ::testing::Values(compress::CodecId::kIdentity,
                                         compress::CodecId::kZlib,
                                         compress::CodecId::kLzss)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_len" +
             std::to_string(std::get<1>(info.param)) + "_" +
             std::string(compress::CodecName(std::get<2>(info.param)));
    });

// --- Shared aligned-dataset fixture for pipeline-level properties. ---

class PipelinePropertyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    genome::GenomeSpec gspec;
    gspec.num_contigs = 2;
    gspec.contig_length = 30'000;
    reference_ = new genome::ReferenceGenome(genome::GenerateGenome(gspec));
    align::SeedIndexOptions options;
    options.seed_length = 20;
    index_ = new align::SeedIndex(align::SeedIndex::Build(*reference_, options).value());

    genome::ReadSimSpec rspec;
    rspec.duplicate_fraction = 0.2;
    genome::ReadSimulator sim(reference_, rspec);
    auto reads = sim.Simulate(900);

    store_ = new storage::MemoryStore();
    auto manifest = pipeline::WriteAgdToStore(store_, "prop", reads, 300);
    align::SnapAligner aligner(reference_, index_);
    dataflow::Executor executor(2);
    pipeline::AlignPipelineOptions align_options;
    PERSONA_CHECK_OK(pipeline::RunPersonaAlignment(store_, *manifest, aligner, &executor,
                                                   align_options)
                         .status());
    manifest->columns.push_back(format::ResultsColumn());
    manifest_ = new format::Manifest(*manifest);
  }

  static void TearDownTestSuite() {
    delete manifest_;
    delete store_;
    delete index_;
    delete reference_;
  }

  // Multiset of read metadata across a dataset (identity fingerprint).
  static std::map<std::string, int> MetadataMultiset(const format::Manifest& manifest) {
    std::map<std::string, int> out;
    Buffer file;
    for (size_t ci = 0; ci < manifest.chunks.size(); ++ci) {
      PERSONA_CHECK_OK(store_->Get(manifest.ChunkFileName(ci, "metadata"), &file));
      auto chunk = format::ParsedChunk::Parse(file.span());
      PERSONA_CHECK_OK(chunk.status());
      for (size_t i = 0; i < chunk->record_count(); ++i) {
        ++out[std::string(*chunk->GetString(i))];
      }
    }
    return out;
  }

  static genome::ReferenceGenome* reference_;
  static align::SeedIndex* index_;
  static storage::MemoryStore* store_;
  static format::Manifest* manifest_;
};

genome::ReferenceGenome* PipelinePropertyTest::reference_ = nullptr;
align::SeedIndex* PipelinePropertyTest::index_ = nullptr;
storage::MemoryStore* PipelinePropertyTest::store_ = nullptr;
format::Manifest* PipelinePropertyTest::manifest_ = nullptr;

TEST_F(PipelinePropertyTest, SortIsAPermutation) {
  // Sorting must neither drop nor duplicate records, for either key and any grouping.
  auto before = MetadataMultiset(*manifest_);
  for (int group : {1, 2, 3}) {
    for (pipeline::SortKey key : {pipeline::SortKey::kLocation, pipeline::SortKey::kMetadata}) {
      pipeline::SortOptions options;
      options.key = key;
      options.chunks_per_superchunk = group;
      std::string name = "perm-" + std::to_string(group) +
                         (key == pipeline::SortKey::kLocation ? "-loc" : "-meta");
      format::Manifest sorted;
      auto report = pipeline::SortAgdDataset(store_, *manifest_, name, options, &sorted);
      ASSERT_TRUE(report.ok());
      EXPECT_EQ(MetadataMultiset(sorted), before) << name;
    }
  }
}

TEST_F(PipelinePropertyTest, SortedDatasetSortsToItself) {
  // Idempotence: sorting a sorted dataset yields the same record order.
  pipeline::SortOptions options;
  format::Manifest once;
  ASSERT_TRUE(pipeline::SortAgdDataset(store_, *manifest_, "idem1", options, &once).ok());
  format::Manifest twice;
  ASSERT_TRUE(pipeline::SortAgdDataset(store_, once, "idem2", options, &twice).ok());

  Buffer a;
  Buffer b;
  for (size_t ci = 0; ci < once.chunks.size(); ++ci) {
    ASSERT_TRUE(store_->Get(once.ChunkFileName(ci, "metadata"), &a).ok());
    ASSERT_TRUE(store_->Get(twice.ChunkFileName(ci, "metadata"), &b).ok());
    auto chunk_a = format::ParsedChunk::Parse(a.span());
    auto chunk_b = format::ParsedChunk::Parse(b.span());
    ASSERT_TRUE(chunk_a.ok());
    ASSERT_TRUE(chunk_b.ok());
    ASSERT_EQ(chunk_a->record_count(), chunk_b->record_count());
    for (size_t i = 0; i < chunk_a->record_count(); ++i) {
      EXPECT_EQ(*chunk_a->GetString(i), *chunk_b->GetString(i));
    }
  }
}

TEST_F(PipelinePropertyTest, DedupCountsMatchDistinctSignatures) {
  // non-duplicates == distinct (location, orientation, mate) signatures among mapped.
  std::vector<align::AlignmentResult> results;
  Buffer file;
  for (size_t ci = 0; ci < manifest_->chunks.size(); ++ci) {
    PERSONA_CHECK_OK(store_->Get(manifest_->ChunkFileName(ci, "results"), &file));
    auto chunk = format::ParsedChunk::Parse(file.span());
    PERSONA_CHECK_OK(chunk.status());
    for (size_t i = 0; i < chunk->record_count(); ++i) {
      results.push_back(*chunk->GetResult(i));
    }
  }
  std::map<std::tuple<int64_t, bool, int64_t>, int> signatures;
  size_t mapped = 0;
  for (const auto& r : results) {
    if (r.mapped()) {
      ++mapped;
      ++signatures[{r.location, r.reverse(), r.mate_location}];
    }
  }
  auto copy = results;
  pipeline::DedupReport report = pipeline::MarkDuplicatesDense(copy);
  EXPECT_EQ(report.duplicates, mapped - signatures.size());
}

TEST_F(PipelinePropertyTest, FastqAgdFastqIdentity) {
  // FASTQ -> AGD -> reads must be the identity on well-formed reads.
  genome::ReadSimSpec rspec;
  rspec.seed = 99;
  genome::ReadSimulator sim(reference_, rspec);
  auto reads = sim.Simulate(333);

  storage::MemoryStore store;
  PERSONA_CHECK_OK(pipeline::WriteGzippedFastqToStore(&store, "rt", reads).status());
  format::Manifest manifest;
  PERSONA_CHECK_OK(
      pipeline::ImportFastqToAgd(&store, "rt", 100, compress::CodecId::kLzss, &manifest)
          .status());
  ASSERT_EQ(manifest.total_records(), 333);

  size_t index = 0;
  Buffer file;
  for (size_t ci = 0; ci < manifest.chunks.size(); ++ci) {
    format::ParsedChunk bases;
    format::ParsedChunk qual;
    format::ParsedChunk metadata;
    PERSONA_CHECK_OK(store.Get(manifest.ChunkFileName(ci, "bases"), &file));
    bases = format::ParsedChunk::Parse(file.span()).value();
    PERSONA_CHECK_OK(store.Get(manifest.ChunkFileName(ci, "qual"), &file));
    qual = format::ParsedChunk::Parse(file.span()).value();
    PERSONA_CHECK_OK(store.Get(manifest.ChunkFileName(ci, "metadata"), &file));
    metadata = format::ParsedChunk::Parse(file.span()).value();
    for (size_t i = 0; i < bases.record_count(); ++i, ++index) {
      EXPECT_EQ(*bases.GetBases(i), reads[index].bases);
      EXPECT_EQ(*qual.GetString(i), reads[index].qual);
      EXPECT_EQ(*metadata.GetString(i), reads[index].metadata);
    }
  }
  EXPECT_EQ(index, reads.size());
}

TEST_F(PipelinePropertyTest, AlignerIsDeterministic) {
  // Same read, same index -> identical result, regardless of call order.
  align::SnapAligner aligner(reference_, index_);
  genome::ReadSimSpec rspec;
  rspec.seed = 7;
  genome::ReadSimulator sim(reference_, rspec);
  auto reads = sim.Simulate(60);
  std::vector<align::AlignmentResult> forward;
  for (const auto& read : reads) {
    forward.push_back(aligner.Align(read, nullptr));
  }
  for (size_t i = reads.size(); i-- > 0;) {
    EXPECT_EQ(aligner.Align(reads[i], nullptr), forward[i]) << i;
  }
}

TEST_F(PipelinePropertyTest, FilterCompositionEqualsConjunction) {
  // Filtering by A then by B must select exactly the records the combined predicate
  // A ∧ B selects in one pass.
  pipeline::ReadFilterSpec drop_unmapped;
  drop_unmapped.excluded_flags = align::kFlagUnmapped;
  pipeline::ReadFilterSpec min_mapq;
  min_mapq.min_mapq = 30;
  pipeline::ReadFilterSpec both;
  both.excluded_flags = align::kFlagUnmapped;
  both.min_mapq = 30;

  format::Manifest stage_one;
  format::Manifest staged;
  PERSONA_CHECK_OK(pipeline::FilterAgdDataset(store_, *manifest_, "fa", drop_unmapped, {},
                                              &stage_one)
                       .status());
  PERSONA_CHECK_OK(
      pipeline::FilterAgdDataset(store_, stage_one, "fb", min_mapq, {}, &staged).status());

  format::Manifest combined;
  PERSONA_CHECK_OK(
      pipeline::FilterAgdDataset(store_, *manifest_, "fc", both, {}, &combined).status());

  EXPECT_EQ(staged.total_records(), combined.total_records());
  EXPECT_EQ(MetadataMultiset(staged), MetadataMultiset(combined));
}

TEST_F(PipelinePropertyTest, VariantCallingIsDeterministic) {
  // Same sorted dataset -> byte-identical VCF, run to run.
  pipeline::SortOptions sort_options;
  format::Manifest sorted;
  PERSONA_CHECK_OK(
      pipeline::SortAgdDataset(store_, *manifest_, "vdet", sort_options, &sorted)
          .status());
  variant::CallPipelineOptions options;
  options.store_vcf = false;
  auto first = variant::CallVariantsAgd(store_, sorted, *reference_, options);
  auto second = variant::CallVariantsAgd(store_, sorted, *reference_, options);
  PERSONA_CHECK_OK(first.status());
  PERSONA_CHECK_OK(second.status());
  EXPECT_EQ(first->vcf_text, second->vcf_text);
  EXPECT_EQ(first->records_called, second->records_called);
  EXPECT_EQ(first->coverage.total_depth, second->coverage.total_depth);
}

}  // namespace
}  // namespace persona
