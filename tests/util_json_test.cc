// Tests for the JSON parser/serializer used by AGD manifests.

#include <gtest/gtest.h>

#include "src/util/json.h"

namespace persona::json {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(Parse("null")->is_null());
  EXPECT_EQ(Parse("true")->as_bool(), true);
  EXPECT_EQ(Parse("false")->as_bool(), false);
  EXPECT_DOUBLE_EQ(Parse("3.25")->as_number(), 3.25);
  EXPECT_EQ(Parse("-17")->as_int(), -17);
  EXPECT_EQ(Parse("\"persona\"")->as_string(), "persona");
}

TEST(JsonParseTest, NestedDocument) {
  auto v = Parse(R"({
    "name": "test",
    "records": [{"path": "test-0", "first": 0, "last": 9}],
    "columns": ["bases", "qual"]
  })");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v->GetString("name"), "test");
  auto records = v->GetArray("records");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ((*records)->size(), 1u);
  EXPECT_EQ((*records)->at(0).GetInt("last").value(), 9);
  auto columns = v->GetArray("columns");
  ASSERT_TRUE(columns.ok());
  EXPECT_EQ((*columns)->at(1).as_string(), "qual");
}

TEST(JsonParseTest, StringEscapes) {
  auto v = Parse(R"("a\"b\\c\nd\teA")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_string(), "a\"b\\c\nd\teA");
}

TEST(JsonParseTest, UnicodeSurrogatePair) {
  auto v = Parse(R"("😀")");  // U+1F600
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_string(), "\xF0\x9F\x98\x80");
}

TEST(JsonParseTest, Errors) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("{").ok());
  EXPECT_FALSE(Parse("[1,]").ok());
  EXPECT_FALSE(Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Parse("tru").ok());
  EXPECT_FALSE(Parse("\"unterminated").ok());
  EXPECT_FALSE(Parse("42 extra").ok());
  EXPECT_FALSE(Parse("\"bad\\escape\"").ok());
}

TEST(JsonParseTest, DeepNestingIsRejected) {
  std::string deep(500, '[');
  deep += std::string(500, ']');
  EXPECT_FALSE(Parse(deep).ok());
}

TEST(JsonDumpTest, CompactRoundTrip) {
  Object obj;
  obj["name"] = Value("ds");
  obj["count"] = Value(int64_t{100000});
  obj["ratio"] = Value(0.5);
  obj["cols"] = Value(Array{Value("bases"), Value("qual")});
  Value original{std::move(obj)};

  std::string text = original.Dump();
  auto reparsed = Parse(text);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(*reparsed, original);
}

TEST(JsonDumpTest, IntegersPrintWithoutDecimal) {
  EXPECT_EQ(Value(int64_t{100000}).Dump(), "100000");
  EXPECT_EQ(Value(3.5).Dump(), "3.5");
}

TEST(JsonDumpTest, PrettyPrintParses) {
  Object obj;
  obj["a"] = Value(Array{Value(1), Value(2)});
  obj["b"] = Value(Object{{"c", Value("d")}});
  Value v{std::move(obj)};
  std::string pretty = v.Dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  auto reparsed = Parse(pretty);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(*reparsed, v);
}

TEST(JsonDumpTest, EscapesControlCharacters) {
  EXPECT_EQ(Value("a\nb").Dump(), "\"a\\nb\"");
  EXPECT_EQ(Value(std::string(1, '\x01')).Dump(), "\"\\u0001\"");
}

TEST(JsonValueTest, TypedGettersRejectWrongTypes) {
  auto v = Parse(R"({"n": 1, "s": "x"})");
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->GetString("n").ok());
  EXPECT_FALSE(v->GetInt("s").ok());
  EXPECT_FALSE(v->GetArray("s").ok());
  EXPECT_EQ(v->Get("missing").status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace persona::json
