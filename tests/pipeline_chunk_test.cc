// Tests for the shared ChunkPipeline layer: bit-identical parity of the ported tools
// (convert/dedup/filter/recompress/sort) between a serial configuration on a plain
// MemoryStore and a wide overlapped configuration on a sharded store, the on_drain
// end-of-stream flush, ordered delivery behind parallel readers, and clean
// cancellation with no pooled-buffer leak.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "src/align/snap_aligner.h"
#include "src/genome/generator.h"
#include "src/genome/read_simulator.h"
#include "src/pipeline/agd_store_util.h"
#include "src/pipeline/chunk_pipeline.h"
#include "src/pipeline/convert.h"
#include "src/pipeline/dedup.h"
#include "src/pipeline/filter.h"
#include "src/pipeline/persona_pipeline.h"
#include "src/pipeline/recompress.h"
#include "src/pipeline/sort.h"
#include "src/storage/memory_store.h"
#include "src/storage/sharded_store.h"

namespace persona::pipeline {
namespace {

// Serial configuration: one worker everywhere, depth-1 queues, no async window — the
// closest the dataflow graph comes to the old for-each-chunk loops.
ChunkPipeline::Options SerialOptions() {
  ChunkPipeline::Options options;
  options.read_parallelism = 1;
  options.parse_parallelism = 1;
  options.transform_parallelism = 1;
  options.serialize_parallelism = 1;
  options.write_parallelism = 1;
  options.queue_depth = 1;
  options.write_window = 1;
  return options;
}

// Wide overlapped configuration.
ChunkPipeline::Options ParallelOptions() {
  ChunkPipeline::Options options;
  options.read_parallelism = 4;
  options.parse_parallelism = 3;
  options.transform_parallelism = 4;
  options.serialize_parallelism = 3;
  options.write_parallelism = 2;
  options.write_window = 4;
  return options;
}

void CloneStore(storage::ObjectStore* src, storage::ObjectStore* dst) {
  auto keys = src->List("");
  ASSERT_TRUE(keys.ok());
  Buffer object;
  for (const std::string& key : *keys) {
    ASSERT_TRUE(src->Get(key, &object).ok());
    ASSERT_TRUE(dst->Put(key, object).ok());
  }
}

void ExpectObjectsIdentical(storage::ObjectStore* a, storage::ObjectStore* b,
                            std::string_view prefix) {
  auto keys_a = a->List(prefix);
  auto keys_b = b->List(prefix);
  ASSERT_TRUE(keys_a.ok());
  ASSERT_TRUE(keys_b.ok());
  ASSERT_EQ(*keys_a, *keys_b);
  ASSERT_FALSE(keys_a->empty()) << "no objects under prefix '" << prefix << "'";
  Buffer object_a;
  Buffer object_b;
  for (const std::string& key : *keys_a) {
    ASSERT_TRUE(a->Get(key, &object_a).ok());
    ASSERT_TRUE(b->Get(key, &object_b).ok());
    EXPECT_EQ(object_a.view(), object_b.view()) << "object '" << key << "' differs";
  }
}

std::unique_ptr<storage::ShardedStore> MakeShardedMemoryStore(size_t shards) {
  return storage::ShardedStore::Create(
      shards, [](size_t) { return std::make_unique<storage::MemoryStore>(); });
}

class ChunkPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    genome::GenomeSpec gspec;
    gspec.num_contigs = 2;
    gspec.contig_length = 40'000;
    reference_ = new genome::ReferenceGenome(genome::GenerateGenome(gspec));

    align::SeedIndexOptions seed_options;
    seed_options.seed_length = 20;
    index_ = new align::SeedIndex(align::SeedIndex::Build(*reference_, seed_options).value());
    aligner_ = new align::SnapAligner(reference_, index_);

    genome::ReadSimSpec rspec;
    rspec.read_length = 101;
    rspec.duplicate_fraction = 0.10;
    genome::ReadSimulator sim(reference_, rspec);
    reads_ = new std::vector<genome::Read>(sim.Simulate(1'200));

    // One aligned dataset (6 chunks of 200), shared read-only by every parity test.
    aligned_base_ = new storage::MemoryStore();
    auto manifest = WriteAgdToStore(aligned_base_, "ds", *reads_, 200);
    ASSERT_TRUE(manifest.ok());
    dataflow::Executor executor(3);
    AlignPipelineOptions align_options;
    ASSERT_TRUE(
        RunPersonaAlignment(aligned_base_, *manifest, *aligner_, &executor, align_options)
            .ok());
    aligned_manifest_ = new format::Manifest(std::move(*manifest));
    aligned_manifest_->columns.push_back(format::ResultsColumn());
  }

  static void TearDownTestSuite() {
    delete aligned_manifest_;
    delete aligned_base_;
    delete reads_;
    delete aligner_;
    delete index_;
    delete reference_;
  }

  static genome::ReferenceGenome* reference_;
  static align::SeedIndex* index_;
  static align::SnapAligner* aligner_;
  static std::vector<genome::Read>* reads_;
  static storage::MemoryStore* aligned_base_;
  static format::Manifest* aligned_manifest_;
};

genome::ReferenceGenome* ChunkPipelineTest::reference_ = nullptr;
align::SeedIndex* ChunkPipelineTest::index_ = nullptr;
align::SnapAligner* ChunkPipelineTest::aligner_ = nullptr;
std::vector<genome::Read>* ChunkPipelineTest::reads_ = nullptr;
storage::MemoryStore* ChunkPipelineTest::aligned_base_ = nullptr;
format::Manifest* ChunkPipelineTest::aligned_manifest_ = nullptr;

// --- Bit-identical parity: serial configuration on MemoryStore vs overlapped
// configuration on a sharded store, for every ported tool. ---

TEST_F(ChunkPipelineTest, ConvertImportParitySerialVsOverlapped) {
  storage::MemoryStore serial_store;
  auto parallel_store = MakeShardedMemoryStore(4);
  ASSERT_TRUE(WriteGzippedFastqToStore(&serial_store, "imp", *reads_).ok());
  CloneStore(&serial_store, parallel_store.get());

  format::Manifest serial_manifest;
  format::Manifest parallel_manifest;
  auto serial = ImportFastqToAgd(&serial_store, "imp", 256, compress::CodecId::kZlib,
                                 &serial_manifest, SerialOptions());
  auto parallel = ImportFastqToAgd(parallel_store.get(), "imp", 256,
                                   compress::CodecId::kZlib, &parallel_manifest,
                                   ParallelOptions());
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(serial->records, 1'200u);
  EXPECT_EQ(serial->records, parallel->records);
  EXPECT_EQ(serial_manifest.ToJson(), parallel_manifest.ToJson());
  ExpectObjectsIdentical(&serial_store, parallel_store.get(), "imp-");
}

TEST_F(ChunkPipelineTest, DedupParitySerialVsOverlappedAndVsInMemoryOracle) {
  storage::MemoryStore serial_store;
  auto parallel_store = MakeShardedMemoryStore(4);
  CloneStore(aligned_base_, &serial_store);
  CloneStore(aligned_base_, parallel_store.get());

  // In-memory oracle: decode all results in dataset order and mark with the core
  // algorithm — the streaming pipeline must mark the exact same records.
  std::vector<align::AlignmentResult> oracle;
  {
    Buffer file;
    for (size_t ci = 0; ci < aligned_manifest_->chunks.size(); ++ci) {
      ASSERT_TRUE(
          aligned_base_->Get(aligned_manifest_->ChunkFileName(ci, "results"), &file).ok());
      auto chunk = format::ParsedChunk::Parse(file.span());
      ASSERT_TRUE(chunk.ok());
      for (size_t i = 0; i < chunk->record_count(); ++i) {
        oracle.push_back(*chunk->GetResult(i));
      }
    }
  }
  DedupReport oracle_report = MarkDuplicatesDense(oracle);
  ASSERT_GT(oracle_report.duplicates, 0u);

  auto serial = DedupAgdResults(&serial_store, *aligned_manifest_,
                                compress::CodecId::kZlib, SerialOptions());
  auto parallel = DedupAgdResults(parallel_store.get(), *aligned_manifest_,
                                  compress::CodecId::kZlib, ParallelOptions());
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(serial->total, 1'200u);
  EXPECT_EQ(serial->duplicates, oracle_report.duplicates);
  EXPECT_EQ(parallel->duplicates, oracle_report.duplicates);
  ExpectObjectsIdentical(&serial_store, parallel_store.get(), "ds-");

  // Flags persisted by the pipeline match the oracle record-for-record.
  Buffer file;
  size_t flat = 0;
  for (size_t ci = 0; ci < aligned_manifest_->chunks.size(); ++ci) {
    ASSERT_TRUE(
        serial_store.Get(aligned_manifest_->ChunkFileName(ci, "results"), &file).ok());
    auto chunk = format::ParsedChunk::Parse(file.span());
    ASSERT_TRUE(chunk.ok());
    for (size_t i = 0; i < chunk->record_count(); ++i, ++flat) {
      EXPECT_EQ(chunk->GetResult(i)->duplicate(), oracle[flat].duplicate()) << flat;
    }
  }
}

TEST_F(ChunkPipelineTest, FilterParitySerialVsOverlapped) {
  storage::MemoryStore serial_store;
  auto parallel_store = MakeShardedMemoryStore(4);
  CloneStore(aligned_base_, &serial_store);
  CloneStore(aligned_base_, parallel_store.get());

  ReadFilterSpec spec;
  spec.min_mapq = 20;  // drops a nontrivial fraction, leaves partial final chunk
  FilterOptions options;
  options.chunk_size = 150;  // output chunks span input chunks (cross-chunk builders)

  format::Manifest serial_out;
  format::Manifest parallel_out;
  auto serial = FilterAgdDataset(&serial_store, *aligned_manifest_, "flt", spec, options,
                                 &serial_out, SerialOptions());
  auto parallel = FilterAgdDataset(parallel_store.get(), *aligned_manifest_, "flt", spec,
                                   options, &parallel_out, ParallelOptions());
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(serial->records_in, 1'200u);
  EXPECT_GT(serial->records_out, 0u);
  EXPECT_LT(serial->records_out, serial->records_in);
  EXPECT_EQ(serial->records_out, parallel->records_out);
  EXPECT_EQ(serial->chunks_out, parallel->chunks_out);
  EXPECT_EQ(serial_out.ToJson(), parallel_out.ToJson());
  ExpectObjectsIdentical(&serial_store, parallel_store.get(), "flt-");
  ExpectObjectsIdentical(&serial_store, parallel_store.get(), "flt.manifest.json");
  // The final partial output chunk only exists if the drain flushed it.
  EXPECT_NE(serial_out.total_records() % options.chunk_size, 0)
      << "test should exercise the end-of-stream partial-chunk flush";
}

TEST_F(ChunkPipelineTest, RecompressParitySerialVsOverlappedAndRoundTrips) {
  storage::MemoryStore serial_store;
  auto parallel_store = MakeShardedMemoryStore(4);
  CloneStore(aligned_base_, &serial_store);
  CloneStore(aligned_base_, parallel_store.get());

  RecompressOptions serial_options;
  serial_options.delete_source_column = true;
  serial_options.pipeline = SerialOptions();
  RecompressOptions parallel_options = serial_options;
  parallel_options.pipeline = ParallelOptions();

  format::Manifest serial_out;
  format::Manifest parallel_out;
  auto serial = RefCompressBasesColumn(&serial_store, *aligned_manifest_, *reference_,
                                       serial_options, &serial_out);
  auto parallel = RefCompressBasesColumn(parallel_store.get(), *aligned_manifest_,
                                         *reference_, parallel_options, &parallel_out);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(serial->records, 1'200u);
  EXPECT_EQ(serial->records, parallel->records);
  EXPECT_EQ(serial->ref_bases_bytes, parallel->ref_bases_bytes);
  EXPECT_EQ(serial_out.ToJson(), parallel_out.ToJson());
  ExpectObjectsIdentical(&serial_store, parallel_store.get(), "ds-");
  // DeleteBatch removed every source-column object on both stores.
  for (size_t ci = 0; ci < aligned_manifest_->chunks.size(); ++ci) {
    EXPECT_FALSE(serial_store.Exists(aligned_manifest_->ChunkFileName(ci, "bases")));
    EXPECT_FALSE(parallel_store->Exists(aligned_manifest_->ChunkFileName(ci, "bases")));
  }

  // Reconstruction (also on the pipeline) regenerates bit-identical bases columns.
  format::Manifest restored;
  RecompressOptions restore_options;
  restore_options.pipeline = ParallelOptions();
  auto rt = ReconstructBasesColumn(parallel_store.get(), parallel_out, *reference_,
                                   restore_options, &restored);
  ASSERT_TRUE(rt.ok());
  Buffer original;
  Buffer rebuilt;
  for (size_t ci = 0; ci < aligned_manifest_->chunks.size(); ++ci) {
    const std::string key = aligned_manifest_->ChunkFileName(ci, "bases");
    ASSERT_TRUE(aligned_base_->Get(key, &original).ok());
    ASSERT_TRUE(parallel_store->Get(key, &rebuilt).ok());
    EXPECT_EQ(original.view(), rebuilt.view()) << key;
  }
}

TEST_F(ChunkPipelineTest, SortParitySerialVsOverlapped) {
  storage::MemoryStore serial_store;
  auto parallel_store = MakeShardedMemoryStore(4);
  CloneStore(aligned_base_, &serial_store);
  CloneStore(aligned_base_, parallel_store.get());

  SortOptions serial_options;
  serial_options.chunks_per_superchunk = 2;
  serial_options.sort_threads = 1;
  serial_options.pipeline = SerialOptions();
  SortOptions parallel_options = serial_options;
  parallel_options.sort_threads = 4;
  parallel_options.pipeline = ParallelOptions();

  format::Manifest serial_out;
  format::Manifest parallel_out;
  auto serial = SortAgdDataset(&serial_store, *aligned_manifest_, "sorted", serial_options,
                               &serial_out);
  auto parallel = SortAgdDataset(parallel_store.get(), *aligned_manifest_, "sorted",
                                 parallel_options, &parallel_out);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(serial->records, 1'200u);
  EXPECT_EQ(serial->superchunks, 3u);
  EXPECT_EQ(serial_out.ToJson(), parallel_out.ToJson());
  ExpectObjectsIdentical(&serial_store, parallel_store.get(), "sorted-");
  ExpectObjectsIdentical(&serial_store, parallel_store.get(), "sorted.manifest.json");

  // Superchunk temporaries cleaned up (batched delete) on both stores.
  auto serial_leftovers = serial_store.List("sorted.super-");
  auto parallel_leftovers = parallel_store->List("sorted.super-");
  ASSERT_TRUE(serial_leftovers.ok());
  ASSERT_TRUE(parallel_leftovers.ok());
  EXPECT_TRUE(serial_leftovers->empty());
  EXPECT_TRUE(parallel_leftovers->empty());
}

// --- Pipeline-level behaviours. ---

TEST_F(ChunkPipelineTest, OrderedTransformSeesWorkItemsInOrderBehindParallelReaders) {
  storage::MemoryStore store;
  CloneStore(aligned_base_, &store);
  std::vector<size_t> order;
  ChunkPipeline pipeline(ParallelOptions());
  pipeline.SetManifestSource(&store, aligned_manifest_, {"results"});
  pipeline.SetWriter(&store, 1);
  pipeline.SetTransform(
      "observe",
      [&order](ChunkPipeline::Input&& input, ChunkPipeline::Emitter&) -> Status {
        order.push_back(input.chunk_begin);
        return OkStatus();
      },
      /*ordered=*/true);
  auto report = pipeline.Run();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(order.size(), aligned_manifest_->chunks.size());
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i);
  }
  EXPECT_EQ(report->items, order.size());
}

TEST_F(ChunkPipelineTest, OrderedTransformRejectsClusterWorkSource) {
  // A cluster work source hands out groups in server order; resequencing on that
  // order would change an ordered tool's dataset-order semantics, so the combination
  // is rejected up front.
  storage::MemoryStore store;
  ChunkPipeline pipeline(SerialOptions());
  pipeline.SetManifestSource(&store, aligned_manifest_, {"results"}, 1,
                             []() -> std::optional<size_t> { return std::nullopt; });
  pipeline.SetWriter(&store, 1);
  pipeline.SetTransform(
      "noop",
      [](ChunkPipeline::Input&&, ChunkPipeline::Emitter&) -> Status {
        return OkStatus();
      },
      /*ordered=*/true);
  auto report = pipeline.Run();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ChunkPipelineTest, OnDrainFlushesEndOfStreamState) {
  storage::MemoryStore store;
  // A record source of 5 items; the ordered transform accumulates a running count and
  // only the drain emits it — the object must exist afterwards with the final value.
  auto produced = std::make_shared<size_t>(0);
  ChunkPipeline pipeline(SerialOptions());
  pipeline.SetRecordSource(
      [produced](std::optional<ChunkPipeline::Input>* out) -> Status {
        if (*produced >= 5) {
          return OkStatus();
        }
        ++*produced;
        ChunkPipeline::Input input;
        input.reads.resize(1);
        *out = std::move(input);
        return OkStatus();
      });
  pipeline.SetWriter(&store, 1);
  auto count = std::make_shared<size_t>(0);
  pipeline.SetTransform(
      "count",
      [count](ChunkPipeline::Input&& input, ChunkPipeline::Emitter&) -> Status {
        *count += input.reads.size();
        return OkStatus();
      },
      /*ordered=*/true,
      [count](ChunkPipeline::Emitter& emit) -> Status {
        ChunkPipeline::BufferRef object = emit.AcquireBuffer();
        object->AppendScalar<uint64_t>(*count);
        return emit.Write("drain-summary", std::move(object));
      });
  auto report = pipeline.Run();
  ASSERT_TRUE(report.ok());
  Buffer summary;
  ASSERT_TRUE(store.Get("drain-summary", &summary).ok());
  EXPECT_EQ(summary.ReadScalar<uint64_t>(0), 5u);
  EXPECT_EQ(pipeline.pool_available(), pipeline.pool_capacity());
}

TEST_F(ChunkPipelineTest, MidPipelineErrorCancelsWithoutLeakOrHang) {
  auto store = MakeShardedMemoryStore(4);
  CloneStore(aligned_base_, store.get());

  ChunkPipeline pipeline(ParallelOptions());
  pipeline.SetManifestSource(store.get(), aligned_manifest_,
                             {"bases", "qual", "metadata", "results"});
  pipeline.SetWriter(store.get(), 1);
  std::atomic<size_t> seen{0};
  pipeline.SetTransform(
      "fail-later",
      [&seen](ChunkPipeline::Input&& input, ChunkPipeline::Emitter& emit) -> Status {
        seen.fetch_add(1);
        if (input.index == 1) {
          return DataLossError("injected mid-pipeline failure");
        }
        // Non-failing items still emit, so pooled output buffers and async writes are
        // in flight when the cancellation lands.
        ChunkPipeline::BufferRef object = emit.AcquireBuffer();
        object->Append(std::string_view("payload"));
        return emit.Write("out-" + std::to_string(input.index), std::move(object));
      });
  auto report = pipeline.Run();  // must terminate (no hang)
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kDataLoss);
  EXPECT_LT(seen.load(), aligned_manifest_->chunks.size() + 1);
  // Every pooled buffer is back: nothing leaked through queues, the resequencer, or
  // the in-flight write window.
  EXPECT_EQ(pipeline.pool_available(), pipeline.pool_capacity());
}

TEST_F(ChunkPipelineTest, ReportCarriesStageAndQueueInstrumentation) {
  storage::MemoryStore store;
  CloneStore(aligned_base_, &store);
  ChunkPipeline::Options options = ParallelOptions();
  options.utilization_sample_sec = 0.005;
  ChunkPipeline pipeline(options);
  pipeline.SetManifestSource(&store, aligned_manifest_, {"results"});
  pipeline.SetWriter(&store, 1);
  pipeline.SetTransform(
      "rebuild",
      [](ChunkPipeline::Input&& input, ChunkPipeline::Emitter& emit) -> Status {
        const format::ParsedChunk& results = input.column(0, 0);
        format::ChunkBuilder builder(format::RecordType::kResults,
                                     compress::CodecId::kZlib);
        for (size_t i = 0; i < results.record_count(); ++i) {
          builder.AddRecord(results.RecordBytes(i));
        }
        ChunkPipeline::SerializeRequest request;
        request.keys.push_back("rebuilt-" + std::to_string(input.index));
        request.builders.push_back(std::move(builder));
        return emit.Emit(std::move(request));
      });
  auto report = pipeline.Run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->items, aligned_manifest_->chunks.size());
  // Stage roster: source, reader, parser, transform, serializer, writer.
  ASSERT_EQ(report->stages.size(), 6u);
  EXPECT_EQ(report->stages[0].name, "chunk-source");
  EXPECT_EQ(report->stages[3].name, "rebuild");
  EXPECT_EQ(report->stages[5].name, "writer");
  for (const auto& stage : report->stages) {
    EXPECT_EQ(stage.items, aligned_manifest_->chunks.size()) << stage.name;
  }
  // Store accounting: one results read per chunk, one rebuilt write per chunk.
  EXPECT_EQ(report->store_stats.read_ops, aligned_manifest_->chunks.size());
  EXPECT_EQ(report->store_stats.write_ops, aligned_manifest_->chunks.size());
}

}  // namespace
}  // namespace persona::pipeline
