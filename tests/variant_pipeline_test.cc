// End-to-end variant calling: reference -> diploid donor -> simulated reads from both
// haplotypes -> SNAP alignment -> AGD results -> location sort -> duplicate marking ->
// streaming pileup + genotyping -> VCF, scored against the injected truth set.
//
// This exercises the full integration the paper names as Persona's next step (§8), on
// top of the same substrate modules the alignment benchmarks use.

#include <gtest/gtest.h>

#include <memory>

#include "src/align/snap_aligner.h"
#include "src/format/agd_chunk.h"
#include "src/genome/generator.h"
#include "src/genome/mutate.h"
#include "src/genome/read_simulator.h"
#include "src/pipeline/agd_store_util.h"
#include "src/pipeline/dedup.h"
#include "src/pipeline/sort.h"
#include "src/storage/memory_store.h"
#include "src/variant/accuracy.h"
#include "src/variant/call_pipeline.h"

namespace persona::variant {
namespace {

class VariantPipelineTest : public ::testing::Test {
 protected:
  static constexpr int kReadLength = 101;
  static constexpr double kCoverage = 30.0;

  static void SetUpTestSuite() {
    genome::GenomeSpec gspec;
    gspec.num_contigs = 1;
    gspec.contig_length = 25'000;
    gspec.repeat_fraction = 0.02;  // keep some MAPQ ambiguity in play
    gspec.seed = 31;
    reference_ = new genome::ReferenceGenome(genome::GenerateGenome(gspec));

    genome::MutationSpec mspec;
    mspec.snv_rate = 1.2e-3;
    mspec.insertion_rate = 1.5e-4;
    mspec.deletion_rate = 1.5e-4;
    mspec.max_indel_length = 5;
    mspec.min_spacing = 150;  // <= one variant per read span simplifies attribution
    donor_ = new genome::DonorGenome(genome::MutateGenome(*reference_, mspec));

    align::SeedIndexOptions seed_options;
    seed_options.seed_length = 20;
    index_ = new align::SeedIndex(
        align::SeedIndex::Build(*reference_, seed_options).value());
    aligner_ = new align::SnapAligner(reference_, index_);

    // Half the coverage from each haplotype: hets appear at ~50% allele fraction.
    const size_t reads_per_haplotype = static_cast<size_t>(
        kCoverage * static_cast<double>(reference_->total_length()) / kReadLength / 2);
    genome::ReadSimSpec rspec;
    rspec.read_length = kReadLength;
    rspec.substitution_rate = 0.003;
    rspec.indel_rate = 0;  // sequencer indel errors off; donor indels still present
    reads_ = new std::vector<genome::Read>();
    for (int hap = 0; hap < 2; ++hap) {
      rspec.seed = 1000 + static_cast<uint64_t>(hap);
      genome::ReadSimulator simulator(&donor_->haplotypes[static_cast<size_t>(hap)], rspec);
      std::vector<genome::Read> reads = simulator.Simulate(reads_per_haplotype);
      reads_->insert(reads_->end(), reads.begin(), reads.end());
    }
  }

  static void TearDownTestSuite() {
    delete reads_;
    delete aligner_;
    delete index_;
    delete donor_;
    delete reference_;
  }

  // Stages reads into `store` and appends a results column aligned with SNAP.
  format::Manifest StageAlignedDataset(storage::ObjectStore* store) {
    auto manifest = pipeline::WriteAgdToStore(store, "ds", *reads_, 2'000);
    EXPECT_TRUE(manifest.ok());
    format::Manifest with_results = *manifest;
    with_results.columns.push_back(format::ResultsColumn());
    with_results.SetReference(*reference_);

    Buffer file;
    size_t read_index = 0;
    for (size_t ci = 0; ci < manifest->chunks.size(); ++ci) {
      format::ChunkBuilder builder(format::RecordType::kResults, compress::CodecId::kZlib);
      for (int64_t i = 0; i < manifest->chunks[ci].num_records; ++i, ++read_index) {
        builder.AddResult(aligner_->Align((*reads_)[read_index], nullptr));
      }
      EXPECT_TRUE(builder.Finalize(&file).ok());
      EXPECT_TRUE(store->Put(manifest->chunks[ci].path_base + ".results", file).ok());
    }
    return with_results;
  }

  static genome::ReferenceGenome* reference_;
  static genome::DonorGenome* donor_;
  static align::SeedIndex* index_;
  static align::SnapAligner* aligner_;
  static std::vector<genome::Read>* reads_;
};

genome::ReferenceGenome* VariantPipelineTest::reference_ = nullptr;
genome::DonorGenome* VariantPipelineTest::donor_ = nullptr;
align::SeedIndex* VariantPipelineTest::index_ = nullptr;
align::SnapAligner* VariantPipelineTest::aligner_ = nullptr;
std::vector<genome::Read>* VariantPipelineTest::reads_ = nullptr;

TEST_F(VariantPipelineTest, CallsInjectedVariantsWithHighAccuracy) {
  storage::MemoryStore store;
  format::Manifest aligned = StageAlignedDataset(&store);

  // Sort by location (required by the streaming pileup), then mark duplicates.
  pipeline::SortOptions sort_options;
  sort_options.key = pipeline::SortKey::kLocation;
  format::Manifest sorted;
  auto sort_report =
      pipeline::SortAgdDataset(&store, aligned, "sorted", sort_options, &sorted);
  ASSERT_TRUE(sort_report.ok()) << sort_report.status().message();
  auto dedup_report = pipeline::DedupAgdResults(&store, sorted);
  ASSERT_TRUE(dedup_report.ok());

  CallPipelineOptions options;
  options.sample_name = "donor";
  auto report = CallVariantsAgd(&store, sorted, *reference_, options);
  ASSERT_TRUE(report.ok()) << report.status().message();

  EXPECT_GT(report->reads_used, 0u);
  EXPECT_GT(report->columns_piled, 10'000u);  // most of the 25 kb genome is covered
  EXPECT_GT(report->records_called, 0u);

  // Score against the injected truth. SNVs should be called with high fidelity at 30x;
  // indel calling (pileup-based, no local reassembly) is held to a looser bar.
  VariantAccuracy accuracy =
      ScoreVariants(donor_->variants, report->records, false, reference_);
  EXPECT_GT(accuracy.snv.Recall(), 0.85) << "snv truth=" << accuracy.snv.truth;
  EXPECT_GT(accuracy.snv.Precision(), 0.85) << "snv called=" << accuracy.snv.called;
  EXPECT_GT(accuracy.overall.Recall(), 0.7);
  EXPECT_GT(accuracy.GenotypeConcordance(), 0.8);

  // The VCF round-trips through the parser with every record intact.
  auto parsed = format::ParseVcf(*reference_, report->vcf_text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), report->records.size());

  // And it was stored next to the dataset.
  EXPECT_TRUE(store.Exists("sorted.vcf"));
}

TEST_F(VariantPipelineTest, SelectiveColumnAccessSkipsMetadata) {
  storage::MemoryStore store;
  format::Manifest aligned = StageAlignedDataset(&store);
  format::Manifest sorted;
  ASSERT_TRUE(
      pipeline::SortAgdDataset(&store, aligned, "sorted", {}, &sorted).ok());

  auto report = CallVariantsAgd(&store, sorted, *reference_, {});
  ASSERT_TRUE(report.ok());
  // Three columns per chunk (bases, qual, results) — metadata is never fetched.
  EXPECT_EQ(report->store_stats.read_ops, sorted.chunks.size() * 3);
}

TEST_F(VariantPipelineTest, FilteringTightensPrecision) {
  storage::MemoryStore store;
  format::Manifest aligned = StageAlignedDataset(&store);
  format::Manifest sorted;
  ASSERT_TRUE(
      pipeline::SortAgdDataset(&store, aligned, "sorted", {}, &sorted).ok());
  ASSERT_TRUE(pipeline::DedupAgdResults(&store, sorted).ok());

  CallPipelineOptions options;
  options.caller.min_qual = 3;        // deliberately permissive caller...
  options.filter.min_qual = 30;       // ...tightened by the hard filters
  options.filter.min_depth = 8;
  options.filter.max_strand_bias = 0.15;  // strict enough to trim some real het calls
  auto report = CallVariantsAgd(&store, sorted, *reference_, options);
  ASSERT_TRUE(report.ok());
  ASSERT_GT(report->records_called, report->records_passing) << "filters must bind";

  // Annotation accounting must be consistent: the passing-only score sees exactly the
  // records the filter admitted, non-passing records carry a reason, and filtering can
  // only remove calls (recall of the passing set never exceeds the unfiltered set).
  VariantAccuracy all = ScoreVariants(donor_->variants, report->records, false, reference_);
  VariantAccuracy passing =
      ScoreVariants(donor_->variants, report->records, true, reference_);
  EXPECT_EQ(passing.overall.called, static_cast<int64_t>(report->records_passing));
  EXPECT_LE(passing.overall.Recall(), all.overall.Recall());
  for (const format::VariantRecord& record : report->records) {
    EXPECT_FALSE(record.filter.empty());
    if (record.filter != "PASS") {
      EXPECT_TRUE(record.filter.find("LowQual") != std::string::npos ||
                  record.filter.find("BadDepth") != std::string::npos ||
                  record.filter.find("LowAltFraction") != std::string::npos ||
                  record.filter.find("StrandBias") != std::string::npos)
          << record.filter;
    }
  }
}

TEST_F(VariantPipelineTest, RequiresMandatoryColumns) {
  storage::MemoryStore store;
  std::vector<genome::Read> reads(10, genome::Read{"ACGTACGT", "IIIIIIII", "r"});
  auto manifest = pipeline::WriteAgdToStore(&store, "ds", reads, 10);
  ASSERT_TRUE(manifest.ok());
  // No results column.
  EXPECT_FALSE(CallVariantsAgd(&store, *manifest, *reference_, {}).ok());
}

TEST_F(VariantPipelineTest, UnsortedDatasetIsRejected) {
  storage::MemoryStore store;
  format::Manifest aligned = StageAlignedDataset(&store);
  // Reads were generated in random genome order, so the unsorted dataset violates the
  // streaming engine's ordering precondition almost surely.
  auto report = CallVariantsAgd(&store, aligned, *reference_, {});
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace persona::variant
