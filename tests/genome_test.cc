// Tests for the reference model, synthetic genome generator, and read simulator.

#include <gtest/gtest.h>

#include <cmath>

#include "src/compress/base_compaction.h"
#include "src/genome/generator.h"
#include "src/genome/read_simulator.h"
#include "src/genome/reference.h"

namespace persona::genome {
namespace {

ReferenceGenome SmallReference() {
  return ReferenceGenome({{"chr1", "ACGTACGTAC"}, {"chr2", "GGGGG"}, {"chr3", "TTTT"}});
}

TEST(ReferenceTest, TotalLengthAndStarts) {
  ReferenceGenome ref = SmallReference();
  EXPECT_EQ(ref.total_length(), 19);
  EXPECT_EQ(ref.contig_start(0), 0);
  EXPECT_EQ(ref.contig_start(1), 10);
  EXPECT_EQ(ref.contig_start(2), 15);
}

TEST(ReferenceTest, GlobalToLocalBoundaries) {
  ReferenceGenome ref = SmallReference();
  auto p0 = ref.GlobalToLocal(0);
  ASSERT_TRUE(p0.ok());
  EXPECT_EQ(p0->contig_index, 0);
  EXPECT_EQ(p0->offset, 0);

  auto p9 = ref.GlobalToLocal(9);
  ASSERT_TRUE(p9.ok());
  EXPECT_EQ(p9->contig_index, 0);
  EXPECT_EQ(p9->offset, 9);

  auto p10 = ref.GlobalToLocal(10);
  ASSERT_TRUE(p10.ok());
  EXPECT_EQ(p10->contig_index, 1);
  EXPECT_EQ(p10->offset, 0);

  auto p18 = ref.GlobalToLocal(18);
  ASSERT_TRUE(p18.ok());
  EXPECT_EQ(p18->contig_index, 2);
  EXPECT_EQ(p18->offset, 3);

  EXPECT_FALSE(ref.GlobalToLocal(-1).ok());
  EXPECT_FALSE(ref.GlobalToLocal(19).ok());
}

TEST(ReferenceTest, LocalToGlobalRoundTrip) {
  ReferenceGenome ref = SmallReference();
  for (int64_t g = 0; g < ref.total_length(); ++g) {
    auto local = ref.GlobalToLocal(g);
    ASSERT_TRUE(local.ok());
    auto back = ref.LocalToGlobal(local->contig_index, local->offset);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, g);
  }
  EXPECT_FALSE(ref.LocalToGlobal(0, 10).ok());
  EXPECT_FALSE(ref.LocalToGlobal(5, 0).ok());
}

TEST(ReferenceTest, SliceWithinContig) {
  ReferenceGenome ref = SmallReference();
  auto s = ref.Slice(2, 4);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, "GTAC");
  EXPECT_FALSE(ref.Slice(8, 4).ok());  // would span chr1/chr2
}

TEST(ReferenceTest, FindContig) {
  ReferenceGenome ref = SmallReference();
  EXPECT_EQ(*ref.FindContig("chr2"), 1);
  EXPECT_FALSE(ref.FindContig("chrX").ok());
}

TEST(ReferenceTest, BaseAt) {
  ReferenceGenome ref = SmallReference();
  EXPECT_EQ(ref.BaseAt(0), 'A');
  EXPECT_EQ(ref.BaseAt(10), 'G');
  EXPECT_EQ(ref.BaseAt(15), 'T');
  EXPECT_EQ(ref.BaseAt(100), 'N');  // out of range
}

TEST(GeneratorTest, DeterministicForSeed) {
  GenomeSpec spec;
  spec.num_contigs = 2;
  spec.contig_length = 5000;
  ReferenceGenome a = GenerateGenome(spec);
  ReferenceGenome b = GenerateGenome(spec);
  ASSERT_EQ(a.num_contigs(), 2u);
  EXPECT_EQ(a.contig(0).sequence, b.contig(0).sequence);
  EXPECT_EQ(a.contig(1).sequence, b.contig(1).sequence);

  spec.seed = 43;
  ReferenceGenome c = GenerateGenome(spec);
  EXPECT_NE(a.contig(0).sequence, c.contig(0).sequence);
}

TEST(GeneratorTest, RespectsShape) {
  GenomeSpec spec;
  spec.num_contigs = 3;
  spec.contig_length = 2000;
  ReferenceGenome ref = GenerateGenome(spec);
  ASSERT_EQ(ref.num_contigs(), 3u);
  EXPECT_EQ(ref.contig(0).name, "chr1");
  EXPECT_EQ(ref.contig(2).name, "chr3");
  EXPECT_EQ(ref.total_length(), 6000);
}

TEST(GeneratorTest, GcContentIsRespected) {
  GenomeSpec spec;
  spec.num_contigs = 1;
  spec.contig_length = 200'000;
  spec.gc_content = 0.41;
  spec.repeat_fraction = 0;
  ReferenceGenome ref = GenerateGenome(spec);
  int64_t gc = 0;
  for (char c : ref.contig(0).sequence) {
    if (c == 'G' || c == 'C') {
      ++gc;
    }
  }
  double fraction = static_cast<double>(gc) / static_cast<double>(spec.contig_length);
  EXPECT_NEAR(fraction, 0.41, 0.01);
}

TEST(GeneratorTest, OnlyValidBases) {
  GenomeSpec spec;
  spec.contig_length = 10'000;
  ReferenceGenome ref = GenerateGenome(spec);
  for (size_t ci = 0; ci < ref.num_contigs(); ++ci) {
    for (char c : ref.contig(ci).sequence) {
      EXPECT_TRUE(c == 'A' || c == 'C' || c == 'G' || c == 'T') << c;
    }
  }
}

class ReadSimulatorTest : public ::testing::Test {
 protected:
  ReadSimulatorTest() {
    GenomeSpec spec;
    spec.num_contigs = 2;
    spec.contig_length = 20'000;
    reference_ = GenerateGenome(spec);
  }
  ReferenceGenome reference_;
};

TEST_F(ReadSimulatorTest, ProducesWellFormedReads) {
  ReadSimSpec spec;
  spec.read_length = 101;
  ReadSimulator sim(&reference_, spec);
  for (int i = 0; i < 200; ++i) {
    Read read = sim.NextRead();
    EXPECT_EQ(read.bases.size(), 101u);
    EXPECT_EQ(read.qual.size(), 101u);
    for (char c : read.bases) {
      EXPECT_TRUE(c == 'A' || c == 'C' || c == 'G' || c == 'T' || c == 'N');
    }
    for (char q : read.qual) {
      EXPECT_GE(q, '!');
      EXPECT_LE(q, '!' + 41);
    }
  }
}

TEST_F(ReadSimulatorTest, TruthMetadataParsesBack) {
  ReadSimSpec spec;
  ReadSimulator sim(&reference_, spec);
  for (int i = 0; i < 100; ++i) {
    Read read = sim.NextRead();
    auto truth = ParseReadTruth(reference_, read.metadata);
    ASSERT_TRUE(truth.ok()) << read.metadata;
    EXPECT_GE(truth->contig_index, 0);
    EXPECT_LT(truth->contig_index, 2);
    EXPECT_GE(truth->position, 0);
    // Read must fit inside its contig.
    const Contig& contig = reference_.contig(static_cast<size_t>(truth->contig_index));
    EXPECT_LE(truth->position + spec.read_length,
              static_cast<int64_t>(contig.sequence.size()));
  }
}

TEST_F(ReadSimulatorTest, LowErrorReadsMatchReference) {
  ReadSimSpec spec;
  spec.substitution_rate = 0.0;
  spec.indel_rate = 0.0;
  ReadSimulator sim(&reference_, spec);
  int mismatches_total = 0;
  for (int i = 0; i < 50; ++i) {
    Read read = sim.NextRead();
    auto truth = ParseReadTruth(reference_, read.metadata);
    ASSERT_TRUE(truth.ok());
    const Contig& contig = reference_.contig(static_cast<size_t>(truth->contig_index));
    std::string expected = contig.sequence.substr(static_cast<size_t>(truth->position),
                                                  static_cast<size_t>(spec.read_length));
    std::string oriented = read.bases;
    if (truth->reverse) {
      oriented = compress::ReverseComplement(oriented);
    }
    // Only quality-model errors remain; expect few mismatches.
    int mismatches = 0;
    for (size_t k = 0; k < expected.size(); ++k) {
      if (expected[k] != oriented[k]) {
        ++mismatches;
      }
    }
    mismatches_total += mismatches;
    EXPECT_LT(mismatches, 10);
  }
  // Across 50 reads of 101bp with ~0.5% error, expect a small, nonzero total.
  EXPECT_LT(mismatches_total, 150);
}

TEST_F(ReadSimulatorTest, DeterministicForSeed) {
  ReadSimSpec spec;
  ReadSimulator a(&reference_, spec);
  ReadSimulator b(&reference_, spec);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.NextRead(), b.NextRead());
  }
}

TEST_F(ReadSimulatorTest, DuplicatesAreMarkedInTruth) {
  ReadSimSpec spec;
  spec.duplicate_fraction = 0.5;
  ReadSimulator sim(&reference_, spec);
  int duplicates = 0;
  const int kReads = 400;
  for (int i = 0; i < kReads; ++i) {
    Read read = sim.NextRead();
    auto truth = ParseReadTruth(reference_, read.metadata);
    ASSERT_TRUE(truth.ok());
    if (truth->duplicate) {
      ++duplicates;
    }
  }
  EXPECT_GT(duplicates, kReads / 4);
  EXPECT_LT(duplicates, 3 * kReads / 4);
}

TEST_F(ReadSimulatorTest, PairedReadsHaveSaneGeometry) {
  ReadSimSpec spec;
  spec.paired = true;
  spec.insert_mean = 300;
  spec.insert_stddev = 20;
  ReadSimulator sim(&reference_, spec);
  for (int i = 0; i < 50; ++i) {
    auto [r1, r2] = sim.NextPair();
    auto t1 = ParseReadTruth(reference_, r1.metadata.substr(0, r1.metadata.size() - 2));
    auto t2 = ParseReadTruth(reference_, r2.metadata.substr(0, r2.metadata.size() - 2));
    ASSERT_TRUE(t1.ok());
    ASSERT_TRUE(t2.ok());
    EXPECT_EQ(t1->contig_index, t2->contig_index);
    EXPECT_FALSE(t1->reverse);
    EXPECT_TRUE(t2->reverse);
    int64_t insert = t2->position + spec.read_length - t1->position;
    EXPECT_GT(insert, 150);
    EXPECT_LT(insert, 500);
  }
}

TEST_F(ReadSimulatorTest, TruthParserRejectsForeignMetadata) {
  EXPECT_FALSE(ParseReadTruth(reference_, "ERR174324.1").ok());
  EXPECT_FALSE(ParseReadTruth(reference_, "sim:chr9:5:F:1").ok());    // no such contig
  EXPECT_FALSE(ParseReadTruth(reference_, "sim:chr1:x:F:1").ok());    // bad position
  EXPECT_FALSE(ParseReadTruth(reference_, "sim:chr1:5:Q:1").ok());    // bad strand
}

}  // namespace
}  // namespace persona::genome
