// Failure-injection tests: corrupted, truncated, and missing data at every layer that
// touches persisted bytes. The invariant under test is uniform — operations fail with a
// clean Status (never crash, never return garbage silently).

#include <gtest/gtest.h>

#include <vector>

#include "src/format/agd_chunk.h"
#include "src/format/agd_dataset.h"
#include "src/format/agd_index.h"
#include "src/pipeline/agd_store_util.h"
#include "src/pipeline/dedup.h"
#include "src/pipeline/sort.h"
#include "src/storage/memory_store.h"
#include "src/util/file_util.h"
#include "src/util/string_util.h"
#include "src/variant/call_pipeline.h"

namespace persona::format {
namespace {

// One serialized bases+qual-style chunk with enough records to have a real index.
Buffer MakeChunkFile(int records, compress::CodecId codec = compress::CodecId::kZlib) {
  ChunkBuilder builder(RecordType::kMetadata, codec);
  for (int i = 0; i < records; ++i) {
    builder.AddRecord(StrFormat("metadata-record-%03d-with-some-payload", i));
  }
  Buffer file;
  EXPECT_TRUE(builder.Finalize(&file).ok());
  return file;
}

// --- Truncation sweep: every prefix of a chunk file must fail to parse cleanly. ---

class TruncationSweep : public ::testing::TestWithParam<int> {};

TEST_P(TruncationSweep, TruncatedChunkParsesToError) {
  Buffer file = MakeChunkFile(40);
  const size_t keep = file.size() * static_cast<size_t>(GetParam()) / 100;
  ASSERT_LT(keep, file.size());
  auto result = ParsedChunk::Parse(file.span().subspan(0, keep));
  EXPECT_FALSE(result.ok()) << "parsed a " << keep << "-byte prefix of " << file.size();
}

INSTANTIATE_TEST_SUITE_P(Prefixes, TruncationSweep,
                         ::testing::Values(0, 3, 10, 25, 40, 55, 70, 85, 95, 99));

// --- Bit-flip sweep: a flip anywhere either fails parsing or leaves records intact
//     (flips in ignored header padding may legitimately survive). ---

class BitFlipSweep : public ::testing::TestWithParam<int> {};

TEST_P(BitFlipSweep, FlippedByteNeverYieldsGarbage) {
  Buffer original = MakeChunkFile(25);
  auto baseline = ParsedChunk::Parse(original.span());
  ASSERT_TRUE(baseline.ok());

  const size_t stride = 7;
  size_t flips = 0;
  size_t failures = 0;
  for (size_t pos = static_cast<size_t>(GetParam()); pos < original.size();
       pos += stride, ++flips) {
    Buffer corrupt;
    corrupt.Append(original.span());
    corrupt.data()[pos] ^= 0xFF;
    auto result = ParsedChunk::Parse(corrupt.span());
    if (!result.ok()) {
      ++failures;
      continue;
    }
    // Survived: every record must still match the baseline bytes.
    ASSERT_EQ(result->record_count(), baseline->record_count()) << "flip at " << pos;
    for (size_t i = 0; i < result->record_count(); ++i) {
      EXPECT_EQ(result->RecordBytes(i), baseline->RecordBytes(i)) << "flip at " << pos;
    }
  }
  ASSERT_GT(flips, 0u);
  // The format is dense: almost every byte matters.
  EXPECT_GT(failures * 10, flips * 9) << "too many corruptions went undetected";
}

INSTANTIATE_TEST_SUITE_P(Offsets, BitFlipSweep, ::testing::Values(0, 1, 2, 3, 4, 5, 6));

// --- Identity-codec chunks detect data-block corruption through the CRC. ---

TEST(FailureInjection, IdentityCodecStillCrcProtected) {
  Buffer file = MakeChunkFile(10, compress::CodecId::kIdentity);
  Buffer corrupt;
  corrupt.Append(file.span());
  corrupt.data()[corrupt.size() - 3] ^= 0x01;  // inside the data block
  EXPECT_FALSE(ParsedChunk::Parse(corrupt.span()).ok());
}

TEST(FailureInjection, EmptyFileAndTinyFilesFailCleanly) {
  EXPECT_FALSE(ParsedChunk::Parse(std::span<const uint8_t>()).ok());
  for (int n = 1; n < 24; ++n) {
    std::vector<uint8_t> bytes(static_cast<size_t>(n), 0xAB);
    EXPECT_FALSE(ParsedChunk::Parse(bytes).ok()) << n;
  }
}

// --- Dataset-level: missing files, lying manifests. ---

std::vector<genome::Read> SmallReads(int n) {
  std::vector<genome::Read> reads;
  for (int i = 0; i < n; ++i) {
    reads.push_back({std::string(30, "ACGT"[i % 4]), std::string(30, 'I'),
                     StrFormat("r%02d", i)});
  }
  return reads;
}

void WriteSmallDataset(const std::string& dir, int n, int64_t chunk_size) {
  AgdWriter::Options options;
  options.chunk_size = chunk_size;
  auto writer = AgdWriter::Create(dir, "ds", options);
  ASSERT_TRUE(writer.ok());
  for (const genome::Read& read : SmallReads(n)) {
    ASSERT_TRUE(writer->Append(read).ok());
  }
  ASSERT_TRUE(writer->Finalize().ok());
}

TEST(FailureInjection, MissingColumnFileFailsReadAndVerify) {
  ScopedTempDir dir("failinj");
  WriteSmallDataset(dir.path(), 30, 10);
  ASSERT_EQ(::remove(dir.FilePath("ds-1.qual").c_str()), 0);

  auto dataset = AgdDataset::Open(dir.path());
  ASSERT_TRUE(dataset.ok());
  EXPECT_TRUE(dataset->ReadChunk(0, "qual").ok());   // other chunks unaffected
  EXPECT_FALSE(dataset->ReadChunk(1, "qual").ok());  // the deleted one
  EXPECT_FALSE(dataset->Verify().ok());
  EXPECT_FALSE(ValidateRowGrouping(*dataset).ok());
}

TEST(FailureInjection, ManifestReferencingMissingChunksFailsLazily) {
  ScopedTempDir dir("failinj");
  WriteSmallDataset(dir.path(), 20, 10);

  auto manifest_text = ReadFileToString(dir.FilePath("manifest.json"));
  ASSERT_TRUE(manifest_text.ok());
  auto manifest = Manifest::FromJson(*manifest_text);
  ASSERT_TRUE(manifest.ok());
  manifest->chunks.push_back({"ds-9", 20, 10});  // phantom chunk
  ASSERT_TRUE(WriteStringToFile(dir.FilePath("manifest.json"), manifest->ToJson()).ok());

  auto dataset = AgdDataset::Open(dir.path());
  ASSERT_TRUE(dataset.ok());  // open is metadata-only
  EXPECT_FALSE(dataset->ReadChunk(2, "bases").ok());
  EXPECT_FALSE(dataset->Verify().ok());
}

TEST(FailureInjection, GarbageManifestJsonIsRejected) {
  EXPECT_FALSE(Manifest::FromJson("").ok());
  EXPECT_FALSE(Manifest::FromJson("{\"name\": \"x\"").ok());     // unterminated
  EXPECT_FALSE(Manifest::FromJson("[1, 2, 3]").ok());            // wrong shape
  EXPECT_FALSE(Manifest::FromJson("not json at all {{{{").ok());
}

TEST(FailureInjection, RandomAccessReaderSurfacesCorruptChunks) {
  ScopedTempDir dir("failinj");
  WriteSmallDataset(dir.path(), 30, 10);

  // Corrupt one column file of chunk 1.
  std::string path = dir.FilePath("ds-1.bases");
  auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  std::string corrupted = *bytes;
  corrupted[corrupted.size() / 2] ^= 0x40;
  ASSERT_TRUE(WriteStringToFile(path, corrupted).ok());

  auto reader = RandomAccessReader::Open(dir.path());
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader->GetRead(5).ok());    // chunk 0 intact
  EXPECT_FALSE(reader->GetRead(15).ok());  // chunk 1 corrupt
  EXPECT_TRUE(reader->GetRead(25).ok());   // chunk 2 intact
}

// --- Store-backed operations propagate missing/corrupt objects. ---

TEST(FailureInjection, DedupFailsOnMissingResultsObject) {
  storage::MemoryStore store;
  auto manifest = pipeline::WriteAgdToStore(&store, "ds", SmallReads(20), 10);
  ASSERT_TRUE(manifest.ok());
  format::Manifest with_results = *manifest;
  with_results.columns.push_back(ResultsColumn());
  // Results objects were never written.
  EXPECT_FALSE(pipeline::DedupAgdResults(&store, with_results).ok());
}

TEST(FailureInjection, SortFailsOnCorruptColumnObject) {
  storage::MemoryStore store;
  auto manifest = pipeline::WriteAgdToStore(&store, "ds", SmallReads(20), 10);
  ASSERT_TRUE(manifest.ok());
  format::Manifest with_results = *manifest;
  with_results.columns.push_back(ResultsColumn());
  Buffer file;
  for (size_t ci = 0; ci < manifest->chunks.size(); ++ci) {
    ChunkBuilder builder(RecordType::kResults, compress::CodecId::kZlib);
    for (int64_t i = 0; i < manifest->chunks[ci].num_records; ++i) {
      align::AlignmentResult result;
      result.location = i * 10;
      result.cigar = "30M";
      result.flags = 0;
      builder.AddResult(result);
    }
    ASSERT_TRUE(builder.Finalize(&file).ok());
    ASSERT_TRUE(store.Put(manifest->chunks[ci].path_base + ".results", file).ok());
  }

  // Overwrite one bases object with garbage.
  ASSERT_TRUE(store.Put("ds-1.bases", std::string_view("not a chunk file")).ok());
  format::Manifest sorted;
  EXPECT_FALSE(pipeline::SortAgdDataset(&store, with_results, "out", {}, &sorted).ok());
}

TEST(FailureInjection, VariantCallingFailsOnTruncatedResultsObject) {
  storage::MemoryStore store;
  auto manifest = pipeline::WriteAgdToStore(&store, "ds", SmallReads(20), 20);
  ASSERT_TRUE(manifest.ok());
  format::Manifest with_results = *manifest;
  with_results.columns.push_back(ResultsColumn());
  ASSERT_TRUE(store.Put("ds-0.results", std::string_view("\x00\x01\x02")).ok());

  genome::ReferenceGenome reference({{"c1", std::string(1000, 'A')}});
  EXPECT_FALSE(variant::CallVariantsAgd(&store, with_results, reference, {}).ok());
}

}  // namespace
}  // namespace persona::format
