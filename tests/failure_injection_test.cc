// Failure-injection tests: corrupted, truncated, and missing data at every layer that
// touches persisted bytes. The invariant under test is uniform — operations fail with a
// clean Status (never crash, never return garbage silently).

#include <gtest/gtest.h>

#include <vector>

#include "src/format/agd_chunk.h"
#include "src/format/agd_dataset.h"
#include "src/format/agd_index.h"
#include "src/pipeline/agd_store_util.h"
#include "src/pipeline/dedup.h"
#include "src/pipeline/sort.h"
#include "src/storage/memory_store.h"
#include "src/util/file_util.h"
#include "src/util/string_util.h"
#include "src/variant/call_pipeline.h"

namespace persona::format {
namespace {

// One serialized bases+qual-style chunk with enough records to have a real index.
Buffer MakeChunkFile(int records, compress::CodecId codec = compress::CodecId::kZlib) {
  ChunkBuilder builder(RecordType::kMetadata, codec);
  for (int i = 0; i < records; ++i) {
    builder.AddRecord(StrFormat("metadata-record-%03d-with-some-payload", i));
  }
  Buffer file;
  EXPECT_TRUE(builder.Finalize(&file).ok());
  return file;
}

// --- Truncation sweep: every prefix of a chunk file must fail to parse cleanly. ---

class TruncationSweep : public ::testing::TestWithParam<int> {};

TEST_P(TruncationSweep, TruncatedChunkParsesToError) {
  Buffer file = MakeChunkFile(40);
  const size_t keep = file.size() * static_cast<size_t>(GetParam()) / 100;
  ASSERT_LT(keep, file.size());
  auto result = ParsedChunk::Parse(file.span().subspan(0, keep));
  EXPECT_FALSE(result.ok()) << "parsed a " << keep << "-byte prefix of " << file.size();
}

INSTANTIATE_TEST_SUITE_P(Prefixes, TruncationSweep,
                         ::testing::Values(0, 3, 10, 25, 40, 55, 70, 85, 95, 99));

// --- Bit-flip sweep: a flip anywhere either fails parsing or leaves records intact
//     (flips in ignored header padding may legitimately survive). ---

class BitFlipSweep : public ::testing::TestWithParam<int> {};

TEST_P(BitFlipSweep, FlippedByteNeverYieldsGarbage) {
  Buffer original = MakeChunkFile(25);
  auto baseline = ParsedChunk::Parse(original.span());
  ASSERT_TRUE(baseline.ok());

  const size_t stride = 7;
  size_t flips = 0;
  size_t failures = 0;
  for (size_t pos = static_cast<size_t>(GetParam()); pos < original.size();
       pos += stride, ++flips) {
    Buffer corrupt;
    corrupt.Append(original.span());
    corrupt.data()[pos] ^= 0xFF;
    auto result = ParsedChunk::Parse(corrupt.span());
    if (!result.ok()) {
      ++failures;
      continue;
    }
    // Survived: every record must still match the baseline bytes.
    ASSERT_EQ(result->record_count(), baseline->record_count()) << "flip at " << pos;
    for (size_t i = 0; i < result->record_count(); ++i) {
      EXPECT_EQ(result->RecordBytes(i), baseline->RecordBytes(i)) << "flip at " << pos;
    }
  }
  ASSERT_GT(flips, 0u);
  // The format is dense: almost every byte matters.
  EXPECT_GT(failures * 10, flips * 9) << "too many corruptions went undetected";
}

INSTANTIATE_TEST_SUITE_P(Offsets, BitFlipSweep, ::testing::Values(0, 1, 2, 3, 4, 5, 6));

// --- Identity-codec chunks detect data-block corruption through the CRC. ---

TEST(FailureInjection, IdentityCodecStillCrcProtected) {
  Buffer file = MakeChunkFile(10, compress::CodecId::kIdentity);
  Buffer corrupt;
  corrupt.Append(file.span());
  corrupt.data()[corrupt.size() - 3] ^= 0x01;  // inside the data block
  EXPECT_FALSE(ParsedChunk::Parse(corrupt.span()).ok());
}

TEST(FailureInjection, EmptyFileAndTinyFilesFailCleanly) {
  EXPECT_FALSE(ParsedChunk::Parse(std::span<const uint8_t>()).ok());
  for (int n = 1; n < 24; ++n) {
    std::vector<uint8_t> bytes(static_cast<size_t>(n), 0xAB);
    EXPECT_FALSE(ParsedChunk::Parse(bytes).ok()) << n;
  }
}

// --- Dataset-level: missing files, lying manifests. ---

std::vector<genome::Read> SmallReads(int n) {
  std::vector<genome::Read> reads;
  for (int i = 0; i < n; ++i) {
    reads.push_back({std::string(30, "ACGT"[i % 4]), std::string(30, 'I'),
                     StrFormat("r%02d", i)});
  }
  return reads;
}

void WriteSmallDataset(const std::string& dir, int n, int64_t chunk_size) {
  AgdWriter::Options options;
  options.chunk_size = chunk_size;
  auto writer = AgdWriter::Create(dir, "ds", options);
  ASSERT_TRUE(writer.ok());
  for (const genome::Read& read : SmallReads(n)) {
    ASSERT_TRUE(writer->Append(read).ok());
  }
  ASSERT_TRUE(writer->Finalize().ok());
}

TEST(FailureInjection, MissingColumnFileFailsReadAndVerify) {
  ScopedTempDir dir("failinj");
  WriteSmallDataset(dir.path(), 30, 10);
  ASSERT_EQ(::remove(dir.FilePath("ds-1.qual").c_str()), 0);

  auto dataset = AgdDataset::Open(dir.path());
  ASSERT_TRUE(dataset.ok());
  EXPECT_TRUE(dataset->ReadChunk(0, "qual").ok());   // other chunks unaffected
  EXPECT_FALSE(dataset->ReadChunk(1, "qual").ok());  // the deleted one
  EXPECT_FALSE(dataset->Verify().ok());
  EXPECT_FALSE(ValidateRowGrouping(*dataset).ok());
}

TEST(FailureInjection, ManifestReferencingMissingChunksFailsLazily) {
  ScopedTempDir dir("failinj");
  WriteSmallDataset(dir.path(), 20, 10);

  auto manifest_text = ReadFileToString(dir.FilePath("manifest.json"));
  ASSERT_TRUE(manifest_text.ok());
  auto manifest = Manifest::FromJson(*manifest_text);
  ASSERT_TRUE(manifest.ok());
  manifest->chunks.push_back({"ds-9", 20, 10});  // phantom chunk
  ASSERT_TRUE(WriteStringToFile(dir.FilePath("manifest.json"), manifest->ToJson()).ok());

  auto dataset = AgdDataset::Open(dir.path());
  ASSERT_TRUE(dataset.ok());  // open is metadata-only
  EXPECT_FALSE(dataset->ReadChunk(2, "bases").ok());
  EXPECT_FALSE(dataset->Verify().ok());
}

TEST(FailureInjection, GarbageManifestJsonIsRejected) {
  EXPECT_FALSE(Manifest::FromJson("").ok());
  EXPECT_FALSE(Manifest::FromJson("{\"name\": \"x\"").ok());     // unterminated
  EXPECT_FALSE(Manifest::FromJson("[1, 2, 3]").ok());            // wrong shape
  EXPECT_FALSE(Manifest::FromJson("not json at all {{{{").ok());
}

TEST(FailureInjection, RandomAccessReaderSurfacesCorruptChunks) {
  ScopedTempDir dir("failinj");
  WriteSmallDataset(dir.path(), 30, 10);

  // Corrupt one column file of chunk 1.
  std::string path = dir.FilePath("ds-1.bases");
  auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  std::string corrupted = *bytes;
  corrupted[corrupted.size() / 2] ^= 0x40;
  ASSERT_TRUE(WriteStringToFile(path, corrupted).ok());

  auto reader = RandomAccessReader::Open(dir.path());
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader->GetRead(5).ok());    // chunk 0 intact
  EXPECT_FALSE(reader->GetRead(15).ok());  // chunk 1 corrupt
  EXPECT_TRUE(reader->GetRead(25).ok());   // chunk 2 intact
}

// --- Store-backed operations propagate missing/corrupt objects. ---

TEST(FailureInjection, DedupFailsOnMissingResultsObject) {
  storage::MemoryStore store;
  auto manifest = pipeline::WriteAgdToStore(&store, "ds", SmallReads(20), 10);
  ASSERT_TRUE(manifest.ok());
  format::Manifest with_results = *manifest;
  with_results.columns.push_back(ResultsColumn());
  // Results objects were never written.
  EXPECT_FALSE(pipeline::DedupAgdResults(&store, with_results).ok());
}

TEST(FailureInjection, SortFailsOnCorruptColumnObject) {
  storage::MemoryStore store;
  auto manifest = pipeline::WriteAgdToStore(&store, "ds", SmallReads(20), 10);
  ASSERT_TRUE(manifest.ok());
  format::Manifest with_results = *manifest;
  with_results.columns.push_back(ResultsColumn());
  Buffer file;
  for (size_t ci = 0; ci < manifest->chunks.size(); ++ci) {
    ChunkBuilder builder(RecordType::kResults, compress::CodecId::kZlib);
    for (int64_t i = 0; i < manifest->chunks[ci].num_records; ++i) {
      align::AlignmentResult result;
      result.location = i * 10;
      result.cigar = "30M";
      result.flags = 0;
      builder.AddResult(result);
    }
    ASSERT_TRUE(builder.Finalize(&file).ok());
    ASSERT_TRUE(store.Put(manifest->chunks[ci].path_base + ".results", file).ok());
  }

  // Overwrite one bases object with garbage.
  ASSERT_TRUE(store.Put("ds-1.bases", std::string_view("not a chunk file")).ok());
  format::Manifest sorted;
  EXPECT_FALSE(pipeline::SortAgdDataset(&store, with_results, "out", {}, &sorted).ok());
}

TEST(FailureInjection, VariantCallingFailsOnTruncatedResultsObject) {
  storage::MemoryStore store;
  auto manifest = pipeline::WriteAgdToStore(&store, "ds", SmallReads(20), 20);
  ASSERT_TRUE(manifest.ok());
  format::Manifest with_results = *manifest;
  with_results.columns.push_back(ResultsColumn());
  ASSERT_TRUE(store.Put("ds-0.results", std::string_view("\x00\x01\x02")).ok());

  genome::ReferenceGenome reference({{"c1", std::string(1000, 'A')}});
  EXPECT_FALSE(variant::CallVariantsAgd(&store, with_results, reference, {}).ok());
}

}  // namespace
}  // namespace persona::format

// ---------------------------------------------------------------------------
// Fault-tolerant storage: deterministic fault injection, retry recovery, crash-safe
// resume, and graceful degradation. The invariant here is stronger than "fails
// cleanly": with transient faults and a retry budget, every tool must complete
// *bit-identically* to a fault-free run; with permanent faults it must fail with a
// clean Status, never hang, and never leak pooled buffers.
// ---------------------------------------------------------------------------

#include "src/align/snap_aligner.h"
#include "src/dataflow/executor.h"
#include "src/genome/generator.h"
#include "src/genome/read_simulator.h"
#include "src/pipeline/chunk_pipeline.h"
#include "src/pipeline/convert.h"
#include "src/pipeline/filter.h"
#include "src/pipeline/job_journal.h"
#include "src/pipeline/persona_pipeline.h"
#include "src/pipeline/recompress.h"
#include "src/storage/ceph_sim.h"
#include "src/storage/fault_injection.h"
#include "src/storage/retry.h"

namespace persona::pipeline {
namespace {

using storage::FaultInjectingStore;
using storage::FaultInjectingStoreOptions;
using storage::FaultRule;

// Snapshot of every object in a store: the bit-identity comparator.
std::map<std::string, std::string> DumpStore(storage::ObjectStore* store) {
  std::map<std::string, std::string> objects;
  auto keys = store->List("");
  EXPECT_TRUE(keys.ok());
  if (!keys.ok()) {
    return objects;
  }
  Buffer buffer;
  for (const std::string& key : *keys) {
    EXPECT_TRUE(store->Get(key, &buffer).ok()) << key;
    objects[key] = std::string(buffer.view());
  }
  return objects;
}

void RestoreInto(const std::map<std::string, std::string>& objects,
                 storage::ObjectStore* store) {
  for (const auto& [key, bytes] : objects) {
    ASSERT_TRUE(store->Put(key, std::string_view(bytes)).ok()) << key;
  }
}

// Expects byte-identical store maps, with a readable diff on mismatch.
void ExpectSameObjects(const std::map<std::string, std::string>& golden,
                       const std::map<std::string, std::string>& actual) {
  for (const auto& [key, bytes] : golden) {
    auto it = actual.find(key);
    if (it == actual.end()) {
      ADD_FAILURE() << "missing object: " << key;
      continue;
    }
    EXPECT_TRUE(it->second == bytes) << "object differs: " << key;
  }
  for (const auto& [key, bytes] : actual) {
    EXPECT_TRUE(golden.count(key)) << "unexpected object: " << key;
  }
}

// Shared aligned dataset: 600 simulated reads in 6 chunks, aligned once (golden).
class FaultToleranceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    genome::GenomeSpec gspec;
    gspec.num_contigs = 2;
    gspec.contig_length = 20'000;
    reference_ = new genome::ReferenceGenome(genome::GenerateGenome(gspec));
    align::SeedIndexOptions seed_options;
    seed_options.seed_length = 20;
    index_ =
        new align::SeedIndex(align::SeedIndex::Build(*reference_, seed_options).value());
    aligner_ = new align::SnapAligner(reference_, index_);

    genome::ReadSimSpec rspec;
    rspec.read_length = 101;
    rspec.duplicate_fraction = 0.10;
    genome::ReadSimulator sim(reference_, rspec);
    reads_ = new std::vector<genome::Read>(sim.Simulate(600));

    // Golden aligned dataset, built fault-free.
    storage::MemoryStore store;
    auto manifest = WriteAgdToStore(&store, "ds", *reads_, 100);
    ASSERT_TRUE(manifest.ok());
    dataflow::Executor executor(2);
    AlignPipelineOptions options;
    options.align_nodes = 2;
    options.subchunk_size = 128;
    ASSERT_TRUE(RunPersonaAlignment(&store, *manifest, *aligner_, &executor, options).ok());
    auto aligned = ReadManifestFromStore(&store);
    ASSERT_TRUE(aligned.ok());
    aligned_manifest_ = new format::Manifest(*aligned);
    aligned_map_ = new std::map<std::string, std::string>(DumpStore(&store));
  }

  static void TearDownTestSuite() {
    delete aligned_map_;
    delete aligned_manifest_;
    delete reads_;
    delete aligner_;
    delete index_;
    delete reference_;
  }

  // The acceptance configuration: the paper's 7-node simulated Ceph cluster behind a
  // 20% per-attempt transient fault rate on every op, with a deterministic seed
  // (PERSONA_FAULT_SEED sweeps it in CI's chaos matrix).
  static FaultInjectingStoreOptions ChaosOptions(uint64_t salt) {
    FaultInjectingStoreOptions options;
    options.seed = storage::FaultSeedFromEnv(1) ^ (salt * 0x9E3779B97F4A7C15ull);
    options.rules.push_back(FaultRule::TransientWithProbability(
        0.2, storage::kFaultGet | storage::kFaultPut));
    // Every key's first touch also fails: guarantees a non-empty injection for any
    // seed (a short run can dodge the 20% rule entirely), keeping the
    // "chaos run injected nothing" guard below deterministic.
    options.rules.push_back(
        FaultRule::TransientTimes(1, storage::kFaultGet | storage::kFaultPut));
    return options;
  }

  // At 20% per attempt, 8 attempts push the chance of exhausting the budget on any
  // single op below 3e-6 — the sweep stays deterministic-green across seeds.
  static storage::RetryPolicy ChaosRetryPolicy() {
    storage::RetryPolicy policy = storage::RetryPolicy::Default();
    policy.max_attempts = 8;
    policy.initial_backoff_sec = 1e-5;  // keep the test fast
    policy.max_backoff_sec = 1e-3;
    return policy;
  }

  // Runs `tool` on a plain MemoryStore and on the chaos configuration; both must
  // succeed and leave bit-identical objects, with all injected faults absorbed by
  // retries (no give-ups).
  void ExpectFaultTolerantParity(
      const std::map<std::string, std::string>& input,
      const std::function<Status(storage::ObjectStore*)>& tool, uint64_t salt) {
    storage::MemoryStore golden;
    RestoreInto(input, &golden);
    Status golden_status = tool(&golden);
    ASSERT_TRUE(golden_status.ok()) << golden_status.ToString();

    storage::CephSimStore ceph((storage::CephSimConfig()));
    ASSERT_EQ(ceph.config().num_osd_nodes, 7);
    RestoreInto(input, &ceph);
    FaultInjectingStore faulty(&ceph, ChaosOptions(salt));
    faulty.SetRetryPolicy(ChaosRetryPolicy());
    Status status = tool(&faulty);
    ASSERT_TRUE(status.ok()) << status.ToString();

    const storage::StoreStats stats = faulty.stats();
    const storage::FaultInjectionStats injected = faulty.injection_stats();
    EXPECT_EQ(stats.give_ups, 0u);
    // Every injected transient failure costs exactly one retry, and nothing else
    // retries: the counters must agree.
    EXPECT_EQ(stats.retries, injected.failures);
    EXPECT_GT(injected.failures, 0u) << "chaos run injected nothing — dead test";

    ExpectSameObjects(DumpStore(&golden), DumpStore(&ceph));
  }

  static genome::ReferenceGenome* reference_;
  static align::SeedIndex* index_;
  static align::SnapAligner* aligner_;
  static std::vector<genome::Read>* reads_;
  static format::Manifest* aligned_manifest_;
  static std::map<std::string, std::string>* aligned_map_;
};

genome::ReferenceGenome* FaultToleranceTest::reference_ = nullptr;
align::SeedIndex* FaultToleranceTest::index_ = nullptr;
align::SnapAligner* FaultToleranceTest::aligner_ = nullptr;
std::vector<genome::Read>* FaultToleranceTest::reads_ = nullptr;
format::Manifest* FaultToleranceTest::aligned_manifest_ = nullptr;
std::map<std::string, std::string>* FaultToleranceTest::aligned_map_ = nullptr;

// --- The parity sweep: every pipeline tool over 20% transient faults. ---

TEST_F(FaultToleranceTest, AlignParityUnderTransientFaults) {
  // Stage the *unaligned* dataset (no results column) for the align runs.
  std::map<std::string, std::string> input;
  {
    storage::MemoryStore store;
    auto manifest = WriteAgdToStore(&store, "ds", *reads_, 100);
    ASSERT_TRUE(manifest.ok());
    input = DumpStore(&store);
  }
  ExpectFaultTolerantParity(
      input,
      [&](storage::ObjectStore* store) -> Status {
        auto manifest = ReadManifestFromStore(store);
        PERSONA_RETURN_IF_ERROR(manifest.status());
        dataflow::Executor executor(2);
        AlignPipelineOptions options;
        options.align_nodes = 2;
        options.subchunk_size = 128;
        return RunPersonaAlignment(store, *manifest, *aligner_, &executor, options)
            .status();
      },
      1);
}

TEST_F(FaultToleranceTest, ImportFastqParityUnderTransientFaults) {
  std::map<std::string, std::string> input;
  {
    storage::MemoryStore store;
    ASSERT_TRUE(WriteGzippedFastqToStore(&store, "in", *reads_).ok());
    input = DumpStore(&store);
  }
  ExpectFaultTolerantParity(
      input,
      [](storage::ObjectStore* store) -> Status {
        format::Manifest out;
        return ImportFastqToAgd(store, "in", 100, compress::CodecId::kZlib, &out)
            .status();
      },
      2);
}

TEST_F(FaultToleranceTest, ExportSamParityUnderTransientFaults) {
  ExpectFaultTolerantParity(
      *aligned_map_,
      [&](storage::ObjectStore* store) -> Status {
        return ExportAgdToSam(store, *aligned_manifest_, *reference_, "out.sam")
            .status();
      },
      3);
}

TEST_F(FaultToleranceTest, DedupParityUnderTransientFaults) {
  ExpectFaultTolerantParity(
      *aligned_map_,
      [&](storage::ObjectStore* store) -> Status {
        return DedupAgdResults(store, *aligned_manifest_).status();
      },
      4);
}

TEST_F(FaultToleranceTest, FilterParityUnderTransientFaults) {
  ExpectFaultTolerantParity(
      *aligned_map_,
      [&](storage::ObjectStore* store) -> Status {
        ReadFilterSpec spec;
        spec.min_mapq = 10;
        format::Manifest out;
        return FilterAgdDataset(store, *aligned_manifest_, "flt", spec, {}, &out)
            .status();
      },
      5);
}

TEST_F(FaultToleranceTest, RecompressParityUnderTransientFaults) {
  ExpectFaultTolerantParity(
      *aligned_map_,
      [&](storage::ObjectStore* store) -> Status {
        RecompressOptions options;
        format::Manifest out;
        return RefCompressBasesColumn(store, *aligned_manifest_, *reference_, options,
                                      &out)
            .status();
      },
      6);
}

TEST_F(FaultToleranceTest, SortParityUnderTransientFaults) {
  ExpectFaultTolerantParity(
      *aligned_map_,
      [&](storage::ObjectStore* store) -> Status {
        format::Manifest out;
        return SortAgdDataset(store, *aligned_manifest_, "srt", {}, &out).status();
      },
      7);
}

TEST_F(FaultToleranceTest, VariantCallParityUnderTransientFaults) {
  // The caller wants a location-sorted dataset: sort fault-free once, then run the
  // caller itself under chaos.
  std::map<std::string, std::string> sorted_input;
  format::Manifest sorted;
  {
    storage::MemoryStore store;
    RestoreInto(*aligned_map_, &store);
    ASSERT_TRUE(SortAgdDataset(&store, *aligned_manifest_, "srt", {}, &sorted).ok());
    sorted_input = DumpStore(&store);
  }
  ExpectFaultTolerantParity(
      sorted_input,
      [&](storage::ObjectStore* store) -> Status {
        return variant::CallVariantsAgd(store, sorted, *reference_, {}).status();
      },
      8);
}

// --- Permanent failures: clean Status, no retries, no leaks, never hang. ---

TEST_F(FaultToleranceTest, PermanentFailuresAreNeverRetried) {
  storage::MemoryStore base;
  RestoreInto(*aligned_map_, &base);
  FaultInjectingStoreOptions options;
  options.rules.push_back(FaultRule::PermanentOn(".results", storage::kFaultGet));
  FaultInjectingStore faulty(&base, options);
  faulty.SetRetryPolicy(ChaosRetryPolicy());

  Status status = DedupAgdResults(&faulty, *aligned_manifest_).status();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  // kDataLoss is permanent: the retry budget must not have been spent on it.
  EXPECT_EQ(faulty.stats().retries, 0u);
  EXPECT_EQ(faulty.stats().give_ups, 0u);
  EXPECT_GT(faulty.injection_stats().failures, 0u);
}

// Rebuilds the first column of each work item into "copy-<chunk>" — a minimal
// exactly-one-emission-per-item transform for raw-pipeline fault/resume tests.
// (The metadata column round-trips through AddRecord byte-exactly.)
Status CopyTransform(ChunkPipeline::Input&& input, ChunkPipeline::Emitter& emit) {
  const format::ParsedChunk& column = input.column(0, 0);
  format::ChunkBuilder builder(column.type(), compress::CodecId::kZlib);
  for (size_t i = 0; i < column.record_count(); ++i) {
    builder.AddRecord(column.RecordBytes(i));
  }
  ChunkPipeline::SerializeRequest request;
  request.keys.push_back("copy-" + std::to_string(input.chunk_begin));
  request.builders.push_back(std::move(builder));
  return emit.Emit(std::move(request));
}

TEST_F(FaultToleranceTest, PermanentFailureFailsCleanWithoutPoolLeaks) {
  storage::MemoryStore base;
  RestoreInto(*aligned_map_, &base);
  FaultInjectingStoreOptions options;
  options.rules.push_back(FaultRule::PermanentOn("ds-3.metadata", storage::kFaultGet));
  FaultInjectingStore faulty(&base, options);
  faulty.SetRetryPolicy(ChaosRetryPolicy());

  ChunkPipeline pipeline({});
  pipeline.SetManifestSource(&faulty, aligned_manifest_, {"metadata"});
  pipeline.SetWriter(&faulty, 1);
  pipeline.SetTransform("copy", CopyTransform);
  auto report = pipeline.Run();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kDataLoss);
  // Cancellation returned every pooled buffer even with writes in flight.
  EXPECT_GT(pipeline.pool_capacity(), 0u);
  EXPECT_EQ(pipeline.pool_available(), pipeline.pool_capacity());
}

// --- Crash-safe resume: kill-and-restart re-reads only unfinished chunks. ---

TEST_F(FaultToleranceTest, KillAndRestartResumesBitIdentically) {
  const size_t kChunks = aligned_manifest_->chunks.size();
  ASSERT_EQ(kChunks, 6u);

  // Golden: the same copy job, uninterrupted.
  std::map<std::string, std::string> golden;
  {
    storage::MemoryStore store;
    RestoreInto(*aligned_map_, &store);
    ChunkPipeline pipeline({});
    pipeline.SetManifestSource(&store, aligned_manifest_, {"metadata"});
    pipeline.SetWriter(&store, 1);
    pipeline.SetTransform("copy", CopyTransform);
    ASSERT_TRUE(pipeline.Run().ok());
    golden = DumpStore(&store);
  }

  // Run 1: "crash" mid-job — chunk 4's read fails permanently, cancelling the run
  // after some items already landed. The journal lives in its own store so the data
  // store's op counts below measure exactly the resumed work.
  storage::MemoryStore data_store;
  storage::MemoryStore journal_store;
  RestoreInto(*aligned_map_, &data_store);
  size_t completed_before_crash = 0;
  {
    FaultInjectingStoreOptions options;
    options.rules.push_back(FaultRule::PermanentOn("ds-4.metadata", storage::kFaultGet));
    FaultInjectingStore faulty(&data_store, options);
    JobJournal journal(&journal_store, "copy.journal.json", "copy:ds:6");
    ASSERT_TRUE(journal.Load().ok());
    ChunkPipeline pipeline({});
    pipeline.SetManifestSource(&faulty, aligned_manifest_, {"metadata"});
    pipeline.SetWriter(&faulty, 1);
    pipeline.SetResumeJournal(&journal);
    pipeline.SetTransform("copy", CopyTransform);
    auto report = pipeline.Run();
    ASSERT_FALSE(report.ok());
    EXPECT_EQ(pipeline.pool_available(), pipeline.pool_capacity());
    completed_before_crash = journal.completed_count();
    EXPECT_LT(completed_before_crash, kChunks);
    EXPECT_FALSE(journal.IsCompleted(4));  // the failed chunk was never committed
  }

  // Run 2: a fresh process — new journal instance loaded from storage, fault-free
  // store. Only the chunks the journal does not hold may be re-read.
  {
    JobJournal journal(&journal_store, "copy.journal.json", "copy:ds:6");
    ASSERT_TRUE(journal.Load().ok());
    ASSERT_EQ(journal.completed_count(), completed_before_crash);

    const storage::StoreStats before = data_store.stats();
    ChunkPipeline pipeline({});
    pipeline.SetManifestSource(&data_store, aligned_manifest_, {"metadata"});
    pipeline.SetWriter(&data_store, 1);
    pipeline.SetResumeJournal(&journal);
    pipeline.SetTransform("copy", CopyTransform);
    auto report = pipeline.Run();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->resumed_items, completed_before_crash);
    EXPECT_EQ(report->items, kChunks - completed_before_crash);

    // Store op accounting: exactly one column read and one object written per
    // unfinished chunk — the journaled ones were not touched.
    const storage::StoreStats delta =
        storage::StatsDelta(before, data_store.stats());
    EXPECT_EQ(delta.read_ops, kChunks - completed_before_crash);
    EXPECT_EQ(delta.write_ops, kChunks - completed_before_crash);

    // The journal now holds everything; the job owner clears it after success.
    EXPECT_EQ(journal.completed_count(), kChunks);
    ASSERT_TRUE(journal.Clear().ok());
    EXPECT_FALSE(journal_store.Exists("copy.journal.json"));
  }

  // Bit-identity: interrupted-then-resumed output equals the uninterrupted run's.
  ExpectSameObjects(golden, DumpStore(&data_store));
}

TEST_F(FaultToleranceTest, RecompressResumesThroughToolOption) {
  // Golden: uninterrupted recompression.
  std::map<std::string, std::string> golden;
  {
    storage::MemoryStore store;
    RestoreInto(*aligned_map_, &store);
    format::Manifest out;
    ASSERT_TRUE(
        RefCompressBasesColumn(&store, *aligned_manifest_, *reference_, {}, &out).ok());
    golden = DumpStore(&store);
  }

  storage::MemoryStore data_store;
  storage::MemoryStore journal_store;
  RestoreInto(*aligned_map_, &data_store);
  {
    // Run 1 dies on chunk 2's bases read.
    FaultInjectingStoreOptions options;
    options.rules.push_back(FaultRule::PermanentOn("ds-2.bases", storage::kFaultGet));
    FaultInjectingStore faulty(&data_store, options);
    JobJournal journal(&journal_store, "rc.journal.json", "recompress:ds");
    ASSERT_TRUE(journal.Load().ok());
    RecompressOptions recompress;
    recompress.resume_journal = &journal;
    format::Manifest out;
    ASSERT_FALSE(
        RefCompressBasesColumn(&faulty, *aligned_manifest_, *reference_, recompress, &out)
            .ok());
    EXPECT_LT(journal.completed_count(), aligned_manifest_->chunks.size());
  }
  {
    // Run 2 resumes and completes; the journal is cleared after success.
    JobJournal journal(&journal_store, "rc.journal.json", "recompress:ds");
    ASSERT_TRUE(journal.Load().ok());
    RecompressOptions recompress;
    recompress.resume_journal = &journal;
    format::Manifest out;
    auto report = RefCompressBasesColumn(&data_store, *aligned_manifest_, *reference_,
                                         recompress, &out);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    ASSERT_TRUE(journal.Clear().ok());
  }
  ExpectSameObjects(golden, DumpStore(&data_store));
}

TEST_F(FaultToleranceTest, ResumeRejectsUnsoundConfigurations) {
  storage::MemoryStore store;
  RestoreInto(*aligned_map_, &store);
  JobJournal journal(&store, "j.json", "fp");

  {
    // Ordered transforms carry cross-chunk state: resume is unsound.
    ChunkPipeline pipeline({});
    pipeline.SetManifestSource(&store, aligned_manifest_, {"metadata"});
    pipeline.SetWriter(&store, 1);
    pipeline.SetResumeJournal(&journal);
    pipeline.SetTransform("copy", CopyTransform, /*ordered=*/true);
    EXPECT_EQ(pipeline.Run().status().code(), StatusCode::kInvalidArgument);
  }
  {
    // Cluster work-source indices are not stable across runs.
    ChunkPipeline pipeline({});
    pipeline.SetManifestSource(&store, aligned_manifest_, {"metadata"}, 1,
                               []() -> std::optional<size_t> { return std::nullopt; });
    pipeline.SetWriter(&store, 1);
    pipeline.SetResumeJournal(&journal);
    pipeline.SetTransform("copy", CopyTransform);
    EXPECT_EQ(pipeline.Run().status().code(), StatusCode::kInvalidArgument);
  }
  {
    // Record mode has no stable work-item identity.
    ChunkPipeline pipeline({});
    pipeline.SetRecordSource(
        [](std::optional<ChunkPipeline::Input>* out) -> Status {
          out->reset();
          return OkStatus();
        });
    pipeline.SetWriter(&store, 1);
    pipeline.SetResumeJournal(&journal);
    pipeline.SetTransform("copy", CopyTransform);
    EXPECT_EQ(pipeline.Run().status().code(), StatusCode::kInvalidArgument);
  }
  {
    // skip_bad_chunks would stall an ordered resequencer.
    ChunkPipeline::Options options;
    options.skip_bad_chunks = true;
    ChunkPipeline pipeline(options);
    pipeline.SetManifestSource(&store, aligned_manifest_, {"metadata"});
    pipeline.SetWriter(&store, 1);
    pipeline.SetTransform("copy", CopyTransform, /*ordered=*/true);
    EXPECT_EQ(pipeline.Run().status().code(), StatusCode::kInvalidArgument);
  }
}

TEST_F(FaultToleranceTest, ResumeRejectsMultiEmissionTransforms) {
  storage::MemoryStore store;
  RestoreInto(*aligned_map_, &store);
  JobJournal journal(&store, "j.json", "fp");
  ChunkPipeline pipeline({});
  pipeline.SetManifestSource(&store, aligned_manifest_, {"metadata"});
  pipeline.SetWriter(&store, 1);
  pipeline.SetResumeJournal(&journal);
  pipeline.SetTransform(
      "double-emit",
      [](ChunkPipeline::Input&& input, ChunkPipeline::Emitter& emit) -> Status {
        ChunkPipeline::BufferRef a = emit.AcquireBuffer();
        a->Append(std::string_view("x"));
        PERSONA_RETURN_IF_ERROR(
            emit.Write("a-" + std::to_string(input.chunk_begin), std::move(a)));
        ChunkPipeline::BufferRef b = emit.AcquireBuffer();
        b->Append(std::string_view("y"));
        return emit.Write("b-" + std::to_string(input.chunk_begin), std::move(b));
      });
  auto report = pipeline.Run();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
}

// --- Graceful degradation: skip_bad_chunks quarantines instead of cancelling. ---

TEST_F(FaultToleranceTest, SkipBadChunksQuarantinesPermanentReadFailures) {
  storage::MemoryStore base;
  RestoreInto(*aligned_map_, &base);
  FaultInjectingStoreOptions options;
  options.rules.push_back(FaultRule::PermanentOn("ds-3.metadata", storage::kFaultGet));
  FaultInjectingStore faulty(&base, options);

  ChunkPipeline::Options pipeline_options;
  pipeline_options.skip_bad_chunks = true;
  ChunkPipeline pipeline(pipeline_options);
  pipeline.SetManifestSource(&faulty, aligned_manifest_, {"metadata"});
  pipeline.SetWriter(&faulty, 1);
  pipeline.SetTransform("copy", CopyTransform);
  auto report = pipeline.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->quarantined_items, 1u);
  ASSERT_EQ(report->quarantined_keys.size(), 1u);
  EXPECT_EQ(report->quarantined_keys[0], "ds-3.metadata");
  EXPECT_EQ(report->items, aligned_manifest_->chunks.size() - 1);
  EXPECT_FALSE(base.Exists("copy-3"));
  EXPECT_TRUE(base.Exists("copy-2"));
  EXPECT_EQ(pipeline.pool_available(), pipeline.pool_capacity());
}

TEST_F(FaultToleranceTest, SkipBadChunksQuarantinesUndecodableChunks) {
  storage::MemoryStore store;
  RestoreInto(*aligned_map_, &store);
  // Corruption the parser (not the store) catches.
  ASSERT_TRUE(store.Put("ds-1.metadata", std::string_view("not a chunk file")).ok());

  ChunkPipeline::Options pipeline_options;
  pipeline_options.skip_bad_chunks = true;
  ChunkPipeline pipeline(pipeline_options);
  pipeline.SetManifestSource(&store, aligned_manifest_, {"metadata"});
  pipeline.SetWriter(&store, 1);
  pipeline.SetTransform("copy", CopyTransform);
  auto report = pipeline.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->quarantined_items, 1u);
  ASSERT_EQ(report->quarantined_keys.size(), 1u);
  EXPECT_EQ(report->quarantined_keys[0], "ds-1.metadata");
  EXPECT_EQ(pipeline.pool_available(), pipeline.pool_capacity());

  // Default (fail-fast) still cancels on the same corruption.
  ChunkPipeline strict({});
  strict.SetManifestSource(&store, aligned_manifest_, {"metadata"});
  strict.SetWriter(&store, 1);
  strict.SetTransform("copy", CopyTransform);
  EXPECT_FALSE(strict.Run().ok());
}

// --- JobJournal unit behaviour. ---

TEST(JobJournalTest, CommitLoadRoundTripAndIdempotence) {
  storage::MemoryStore store;
  JobJournal journal(&store, "job.journal.json", "tool:ds:v1");
  ASSERT_TRUE(journal.Load().ok());  // fresh: no object yet
  EXPECT_EQ(journal.completed_count(), 0u);

  ASSERT_TRUE(journal.Commit(2, {"ds-2.results"}).ok());
  ASSERT_TRUE(journal.Commit(0, {"ds-0.results", "ds-0.extra"}).ok());
  ASSERT_TRUE(journal.Commit(2, {"ds-2.results"}).ok());  // idempotent re-commit
  EXPECT_EQ(journal.completed_count(), 2u);
  EXPECT_TRUE(journal.IsCompleted(0));
  EXPECT_TRUE(journal.IsCompleted(2));
  EXPECT_FALSE(journal.IsCompleted(1));

  // A fresh instance (a restarted process) sees the same state.
  JobJournal reloaded(&store, "job.journal.json", "tool:ds:v1");
  ASSERT_TRUE(reloaded.Load().ok());
  EXPECT_EQ(reloaded.completed_count(), 2u);
  EXPECT_TRUE(reloaded.IsCompleted(0));
  EXPECT_TRUE(reloaded.IsCompleted(2));
  const std::vector<std::string> keys = reloaded.CompletedKeys();
  ASSERT_EQ(keys.size(), 3u);  // item order: 0 then 2
  EXPECT_EQ(keys[0], "ds-0.results");
  EXPECT_EQ(keys[2], "ds-2.results");

  ASSERT_TRUE(reloaded.Clear().ok());
  EXPECT_FALSE(store.Exists("job.journal.json"));
  JobJournal after_clear(&store, "job.journal.json", "tool:ds:v1");
  ASSERT_TRUE(after_clear.Load().ok());
  EXPECT_EQ(after_clear.completed_count(), 0u);
}

TEST(JobJournalTest, FingerprintMismatchFailsLoudly) {
  storage::MemoryStore store;
  JobJournal journal(&store, "job.journal.json", "tool:ds:v1");
  ASSERT_TRUE(journal.Load().ok());
  ASSERT_TRUE(journal.Commit(0, {"k"}).ok());

  JobJournal other(&store, "job.journal.json", "tool:OTHER:v1");
  Status status = other.Load();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(JobJournalTest, CheckpointIntervalBatchesDurability) {
  storage::MemoryStore store;
  JobJournal journal(&store, "job.journal.json", "fp");
  journal.set_checkpoint_interval(3);
  ASSERT_TRUE(journal.Load().ok());
  ASSERT_TRUE(journal.Commit(0, {}).ok());
  ASSERT_TRUE(journal.Commit(1, {}).ok());
  EXPECT_FALSE(store.Exists("job.journal.json"));  // not yet durable
  ASSERT_TRUE(journal.Commit(2, {}).ok());         // third commit checkpoints
  EXPECT_TRUE(store.Exists("job.journal.json"));

  JobJournal reloaded(&store, "job.journal.json", "fp");
  ASSERT_TRUE(reloaded.Load().ok());
  EXPECT_EQ(reloaded.completed_count(), 3u);

  // An explicit Checkpoint flushes pending commits.
  ASSERT_TRUE(journal.Commit(3, {}).ok());
  ASSERT_TRUE(journal.Checkpoint().ok());
  JobJournal reloaded2(&store, "job.journal.json", "fp");
  ASSERT_TRUE(reloaded2.Load().ok());
  EXPECT_EQ(reloaded2.completed_count(), 4u);
}

TEST(JobJournalTest, GarbageJournalIsRejected) {
  storage::MemoryStore store;
  ASSERT_TRUE(store.Put("job.journal.json", std::string_view("{{{ not json")).ok());
  JobJournal journal(&store, "job.journal.json", "fp");
  EXPECT_FALSE(journal.Load().ok());
}

// --- Deterministic injection: the same seed fires the same faults. ---

TEST(FaultInjectionTest, SameSeedInjectsIdenticalFaults) {
  for (int round = 0; round < 2; ++round) {
    storage::MemoryStore base;
    ASSERT_TRUE(base.Put("k0", std::string_view("v0")).ok());
    FaultInjectingStoreOptions options;
    options.seed = 42;
    options.rules.push_back(FaultRule::TransientWithProbability(0.5, storage::kFaultGet));
    FaultInjectingStore faulty(&base, options);
    Buffer out;
    std::string pattern;
    for (int i = 0; i < 32; ++i) {
      pattern += faulty.Get("k0", &out).ok() ? 'o' : 'x';
    }
    static std::string first_round;
    if (round == 0) {
      first_round = pattern;
      EXPECT_NE(pattern.find('x'), std::string::npos);
      EXPECT_NE(pattern.find('o'), std::string::npos);
    } else {
      EXPECT_EQ(pattern, first_round);
    }
  }
}

TEST(FaultInjectionTest, FailNTimesThenSucceedPerKey) {
  storage::MemoryStore base;
  ASSERT_TRUE(base.Put("a", std::string_view("1")).ok());
  ASSERT_TRUE(base.Put("b", std::string_view("2")).ok());
  FaultInjectingStoreOptions options;
  options.rules.push_back(FaultRule::TransientTimes(2, storage::kFaultGet));
  FaultInjectingStore faulty(&base, options);

  Buffer out;
  // No retry policy: the first two attempts per key fail, the third succeeds.
  EXPECT_EQ(faulty.Get("a", &out).code(), StatusCode::kUnavailable);
  EXPECT_EQ(faulty.Get("a", &out).code(), StatusCode::kUnavailable);
  EXPECT_TRUE(faulty.Get("a", &out).ok());
  EXPECT_EQ(std::string(out.view()), "1");
  // Per-key accounting: "b" starts its own fail count.
  EXPECT_EQ(faulty.Get("b", &out).code(), StatusCode::kUnavailable);

  // With a retry budget the same shape recovers transparently.
  FaultInjectingStore recovering(&base, options);
  storage::RetryPolicy policy = storage::RetryPolicy::Default();
  policy.initial_backoff_sec = 1e-5;
  recovering.SetRetryPolicy(policy);
  EXPECT_TRUE(recovering.Get("a", &out).ok());
  EXPECT_EQ(recovering.stats().retries, 2u);
  EXPECT_EQ(recovering.stats().give_ups, 0u);
}

TEST(FaultInjectionTest, CorruptionRuleFlipsOneByte) {
  storage::MemoryStore base;
  const std::string payload(256, 'A');
  ASSERT_TRUE(base.Put("k", std::string_view(payload)).ok());
  FaultInjectingStoreOptions options;
  FaultRule rule;
  rule.ops = storage::kFaultGet;
  rule.fail_times = 1;
  rule.outcome = FaultRule::Outcome::kCorrupt;
  options.rules.push_back(rule);
  FaultInjectingStore faulty(&base, options);

  Buffer out;
  ASSERT_TRUE(faulty.Get("k", &out).ok());
  ASSERT_EQ(out.size(), payload.size());
  size_t diffs = 0;
  for (size_t i = 0; i < out.size(); ++i) {
    diffs += out.data()[i] != 'A';
  }
  EXPECT_EQ(diffs, 1u);
  EXPECT_EQ(faulty.injection_stats().corruptions, 1u);
  // The corruption budget is spent: the next read is clean.
  ASSERT_TRUE(faulty.Get("k", &out).ok());
  EXPECT_EQ(std::string(out.view()), payload);
}

}  // namespace
}  // namespace persona::pipeline
