// Tests for the CacheStore decorator: hit/miss/eviction accounting, the write-through
// and invalidation contract (including Delete/Put racing concurrent GetBatch — the
// TSan target), prefetch warming, sharing one cache across pipelines, and bit-identical
// pipeline output with the cache tier on vs off.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/format/agd_chunk.h"
#include "src/pipeline/agd_store_util.h"
#include "src/pipeline/filter.h"
#include "src/storage/cache_store.h"
#include "src/storage/memory_store.h"
#include "src/util/string_util.h"

namespace persona::storage {
namespace {

std::string Blob(char fill, size_t n) { return std::string(n, fill); }

TEST(CacheStore, HitMissAccountingAndUsage) {
  MemoryStore base;
  CacheStore cache(&base);
  ASSERT_TRUE(base.Put("a", std::string_view("hello")).ok());

  Buffer out;
  ASSERT_TRUE(cache.Get("a", &out).ok());  // cold: backend read, fills cache
  EXPECT_EQ(out.view(), "hello");
  ASSERT_TRUE(cache.Get("a", &out).ok());  // warm: served from memory
  EXPECT_EQ(out.view(), "hello");

  const StoreStats stats = cache.stats();
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_hit_bytes, 5u);
  // Hits are memory-served: device counters show exactly one backend read.
  EXPECT_EQ(stats.read_ops, 1u);
  EXPECT_EQ(stats.bytes_read, 5u);

  const CacheStore::Usage usage = cache.usage();
  EXPECT_EQ(usage.entries, 1u);
  EXPECT_EQ(usage.bytes, 5u);
}

TEST(CacheStore, WriteThroughPopulatesAndOverwrites) {
  MemoryStore base;
  CacheStore cache(&base);
  ASSERT_TRUE(cache.Put("k", std::string_view("v1")).ok());

  // The backend saw the write (write-through)...
  Buffer out;
  ASSERT_TRUE(base.Get("k", &out).ok());
  EXPECT_EQ(out.view(), "v1");

  // ...and the cache was populated by it: the read below never touches the device.
  const uint64_t base_reads_before = base.stats().read_ops;
  ASSERT_TRUE(cache.Get("k", &out).ok());
  EXPECT_EQ(out.view(), "v1");
  EXPECT_EQ(base.stats().read_ops, base_reads_before);
  EXPECT_EQ(cache.stats().cache_hits, 1u);

  // Overwrite through the cache: a later Get must see the new bytes.
  ASSERT_TRUE(cache.Put("k", std::string_view("v2")).ok());
  ASSERT_TRUE(cache.Get("k", &out).ok());
  EXPECT_EQ(out.view(), "v2");
}

TEST(CacheStore, CacheWritesOffOnlyInvalidates) {
  MemoryStore base;
  CacheStoreOptions options;
  options.cache_writes = false;
  CacheStore cache(&base, options);

  ASSERT_TRUE(cache.Put("k", std::string_view("v1")).ok());
  EXPECT_EQ(cache.usage().entries, 0u);

  Buffer out;
  ASSERT_TRUE(cache.Get("k", &out).ok());  // miss: Put did not populate
  EXPECT_EQ(out.view(), "v1");
  EXPECT_EQ(cache.stats().cache_misses, 1u);

  // Put still invalidates a cached entry even when it does not repopulate.
  ASSERT_TRUE(cache.Put("k", std::string_view("v2")).ok());
  ASSERT_TRUE(cache.Get("k", &out).ok());
  EXPECT_EQ(out.view(), "v2");
}

TEST(CacheStore, DeleteInvalidates) {
  MemoryStore base;
  CacheStore cache(&base);
  ASSERT_TRUE(cache.Put("k", std::string_view("v1")).ok());

  Buffer out;
  ASSERT_TRUE(cache.Get("k", &out).ok());
  ASSERT_TRUE(cache.Delete("k").ok());
  EXPECT_EQ(cache.Get("k", &out).code(), StatusCode::kNotFound);
  EXPECT_FALSE(cache.Exists("k"));

  std::vector<DeleteOp> deletes = {{"gone", {}}};
  ASSERT_TRUE(cache.Put("gone", std::string_view("x")).ok());
  ASSERT_TRUE(cache.DeleteBatch(deletes).ok());
  EXPECT_EQ(cache.Get("gone", &out).code(), StatusCode::kNotFound);
}

TEST(CacheStore, EvictsLeastRecentlyUsedAtBudget) {
  MemoryStore base;
  CacheStoreOptions options;
  options.budget_bytes = 256;
  CacheStore cache(&base, options);

  ASSERT_TRUE(cache.Put("a", Blob('a', 100)).ok());
  ASSERT_TRUE(cache.Put("b", Blob('b', 100)).ok());
  // Touch "a" so "b" is the LRU entry when "c" overflows the budget.
  Buffer out;
  ASSERT_TRUE(cache.Get("a", &out).ok());
  ASSERT_TRUE(cache.Put("c", Blob('c', 100)).ok());

  const CacheStore::Usage usage = cache.usage();
  EXPECT_LE(usage.bytes, 256u);
  EXPECT_EQ(usage.entries, 2u);
  EXPECT_EQ(cache.stats().cache_evictions, 1u);

  // "b" was evicted: reading it is a miss; "a" and "c" still hit.
  const uint64_t base_reads = base.stats().read_ops;
  ASSERT_TRUE(cache.Get("a", &out).ok());
  ASSERT_TRUE(cache.Get("c", &out).ok());
  EXPECT_EQ(base.stats().read_ops, base_reads);
  ASSERT_TRUE(cache.Get("b", &out).ok());
  EXPECT_EQ(base.stats().read_ops, base_reads + 1);
  EXPECT_EQ(out.view(), Blob('b', 100));
}

TEST(CacheStore, OversizeObjectsAreNeverCached) {
  MemoryStore base;
  CacheStoreOptions options;
  options.budget_bytes = 64;
  CacheStore cache(&base, options);

  ASSERT_TRUE(cache.Put("big", Blob('x', 1000)).ok());
  EXPECT_EQ(cache.usage().entries, 0u);
  Buffer out;
  ASSERT_TRUE(cache.Get("big", &out).ok());
  ASSERT_TRUE(cache.Get("big", &out).ok());
  EXPECT_EQ(cache.stats().cache_hits, 0u);
  EXPECT_EQ(cache.stats().cache_misses, 2u);
  EXPECT_EQ(out.view(), Blob('x', 1000));
}

TEST(CacheStore, GetBatchServesHitsAndForwardsOnlyMisses) {
  MemoryStore base;
  CacheStore cache(&base);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(base.Put("k" + std::to_string(i), Blob('0' + i, 10 + i)).ok());
  }
  // Warm the even keys.
  Buffer warm;
  for (int i = 0; i < 6; i += 2) {
    ASSERT_TRUE(cache.Get("k" + std::to_string(i), &warm).ok());
  }

  const uint64_t base_reads = base.stats().read_ops;
  std::vector<Buffer> outs(6);
  std::vector<GetOp> gets;
  for (int i = 0; i < 6; ++i) {
    gets.push_back({"k" + std::to_string(i), &outs[i], {}});
  }
  ASSERT_TRUE(cache.GetBatch(gets).ok());
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(gets[i].status.ok());
    EXPECT_EQ(outs[i].view(), Blob('0' + i, 10 + i)) << "key k" << i;
  }
  // Only the three odd (cold) keys went to the device.
  EXPECT_EQ(base.stats().read_ops, base_reads + 3);
  EXPECT_EQ(cache.stats().cache_hits, 3u);

  // A missing key reports per-op NotFound; the batch returns the first error but the
  // other ops still complete.
  Buffer missing;
  std::vector<GetOp> mixed;
  mixed.push_back({"k0", &outs[0], {}});
  mixed.push_back({"absent", &missing, {}});
  EXPECT_EQ(cache.GetBatch(mixed).code(), StatusCode::kNotFound);
  EXPECT_TRUE(mixed[0].status.ok());
  EXPECT_EQ(mixed[1].status.code(), StatusCode::kNotFound);
}

TEST(CacheStore, PrefetchWarmsWithoutCallerBuffers) {
  MemoryStore base;
  CacheStore cache(&base);
  std::vector<std::string> keys;
  for (int i = 0; i < 4; ++i) {
    keys.push_back("p" + std::to_string(i));
    ASSERT_TRUE(base.Put(keys.back(), Blob('p', 50)).ok());
  }
  keys.push_back("p1");      // duplicate: fetched once
  keys.push_back("absent");  // best-effort: failure is invisible

  cache.Prefetch(keys);
  EXPECT_EQ(cache.usage().entries, 4u);

  // Every real key now hits; the device sees no further reads.
  const uint64_t base_reads = base.stats().read_ops;
  Buffer out;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(cache.Get("p" + std::to_string(i), &out).ok());
    EXPECT_EQ(out.view(), Blob('p', 50));
  }
  EXPECT_EQ(base.stats().read_ops, base_reads);
  EXPECT_EQ(cache.stats().cache_hits, 4u);

  // Prefetching already-cached keys is a no-op.
  cache.Prefetch(keys);
  EXPECT_EQ(base.stats().read_ops, base_reads);
}

TEST(CacheStore, SubmitAsyncKeysStayUncacheableUntilDone) {
  MemoryStore base;
  CacheStore cache(&base);
  ASSERT_TRUE(cache.Put("k", std::string_view("old")).ok());

  const std::string payload = "new-bytes";
  std::vector<PutOp> puts = {
      {"k",
       std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(payload.data()),
                                payload.size()),
       {}}};
  IoTicket ticket = cache.SubmitAsync(puts, {});
  ticket.Wait();
  ASSERT_TRUE(ticket.Await().ok());

  Buffer out;
  ASSERT_TRUE(cache.Get("k", &out).ok());
  EXPECT_EQ(out.view(), "new-bytes");
  // And once re-read, the new bytes are cacheable again.
  const uint64_t base_reads = base.stats().read_ops;
  ASSERT_TRUE(cache.Get("k", &out).ok());
  EXPECT_EQ(out.view(), "new-bytes");
  EXPECT_EQ(base.stats().read_ops, base_reads);
}

TEST(CacheStore, StatsStackAcrossSharedDecorator) {
  // One cache shared by two "pipelines" (threads): counters aggregate, entries shared.
  MemoryStore base;
  CacheStore cache(&base);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(base.Put("s" + std::to_string(i), Blob('s', 100)).ok());
  }
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&cache] {
      Buffer out;
      for (int pass = 0; pass < 3; ++pass) {
        for (int i = 0; i < 8; ++i) {
          ASSERT_TRUE(cache.Get("s" + std::to_string(i), &out).ok());
          ASSERT_EQ(out.view(), Blob('s', 100));
        }
      }
    });
  }
  for (std::thread& reader : readers) {
    reader.join();
  }
  const StoreStats stats = cache.stats();
  // 48 reads total; every key is filled at most... once per racing cold pass, and the
  // backend can have served at most one read per (thread, key) before the fill lands.
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, 48u);
  EXPECT_GE(stats.cache_hits, 32u);  // second and third passes hit for both threads
  EXPECT_EQ(cache.usage().entries, 8u);
}

// The TSan target: Put/Delete invalidation racing concurrent GetBatch. The invariant
// is that a reader observes only bytes that were stored for that key at some point
// (self-consistent payloads, never torn, never resurrected-after-delete at the end).
TEST(CacheStore, InvalidationRacesGetBatch) {
  MemoryStore base;
  CacheStoreOptions options;
  options.budget_bytes = 1 << 16;
  CacheStore cache(&base, options);
  constexpr int kKeys = 4;
  auto payload = [](int key, int version) {
    // Self-describing payload: a torn or mixed read cannot parse back to a version.
    return StrFormat("key%d-v%04d-%s", key, version,
                     std::string(64, static_cast<char>('a' + version % 26)).c_str());
  };
  for (int k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(cache.Put("r" + std::to_string(k), payload(k, 0)).ok());
  }

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int version = 1; version <= 200; ++version) {
      const int k = version % kKeys;
      const std::string key = "r" + std::to_string(k);
      if (version % 7 == 0) {
        ASSERT_TRUE(cache.Delete(key).ok());
        ASSERT_TRUE(cache.Put(key, payload(k, version)).ok());
      } else {
        ASSERT_TRUE(cache.Put(key, payload(k, version)).ok());
      }
    }
    stop.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      std::vector<Buffer> outs(kKeys);
      while (!stop.load(std::memory_order_acquire)) {
        std::vector<GetOp> gets;
        for (int k = 0; k < kKeys; ++k) {
          gets.push_back({"r" + std::to_string(k), &outs[k], {}});
        }
        // The batch's first-error return mirrors a racing Delete's NotFound.
        const Status status = cache.GetBatch(gets);
        ASSERT_TRUE(status.ok() || status.code() == StatusCode::kNotFound)
            << status.ToString();
        for (int k = 0; k < kKeys; ++k) {
          if (!gets[k].status.ok()) {
            // Only a racing Delete can make a key vanish.
            ASSERT_EQ(gets[k].status.code(), StatusCode::kNotFound);
            continue;
          }
          const std::string_view view = outs[k].view();
          const std::string prefix = "key" + std::to_string(k) + "-v";
          ASSERT_EQ(view.substr(0, prefix.size()), prefix);
          const int version =
              static_cast<int>(ParseInt64(view.substr(prefix.size(), 4)));
          ASSERT_EQ(view, payload(k, version)) << "torn or stale-mix read";
        }
      }
    });
  }
  writer.join();
  for (std::thread& reader : readers) {
    reader.join();
  }

  // Quiescent: the cache must agree with the backend exactly (no stale entries).
  for (int k = 0; k < kKeys; ++k) {
    Buffer from_cache;
    Buffer from_base;
    const std::string key = "r" + std::to_string(k);
    ASSERT_TRUE(cache.Get(key, &from_cache).ok());
    ASSERT_TRUE(base.Get(key, &from_base).ok());
    EXPECT_EQ(from_cache.view(), from_base.view()) << key;
  }
}

TEST(CacheBudgetFromEnv, ReadsMegabytes) {
  ASSERT_EQ(::setenv("PERSONA_CACHE_MB", "3", 1), 0);
  EXPECT_EQ(CacheBudgetFromEnv(1), 3u << 20);
  ASSERT_EQ(::setenv("PERSONA_CACHE_MB", "not-a-number", 1), 0);
  EXPECT_EQ(CacheBudgetFromEnv(7), 7u);
  ASSERT_EQ(::unsetenv("PERSONA_CACHE_MB"), 0);
  EXPECT_EQ(CacheBudgetFromEnv(7), 7u);
}

// Pipeline parity: filtering through an explicitly shared CacheStore (prefetch stage
// active) produces bit-identical output objects to the same run on the bare store.
TEST(CacheStore, FilterPipelineParityCacheOnVsOff) {
  auto build_dataset = [](ObjectStore* store) {
    std::vector<genome::Read> reads;
    for (int i = 0; i < 300; ++i) {
      genome::Read read;
      read.bases = std::string(24, "ACGT"[i % 4]);
      read.qual = std::string(24, 'I');
      read.metadata = StrFormat("r%03d", i);
      reads.push_back(std::move(read));
    }
    auto manifest = pipeline::WriteAgdToStore(store, "ds", reads, 50);
    EXPECT_TRUE(manifest.ok());
    format::Manifest with_results = *manifest;
    with_results.columns.push_back(format::ResultsColumn());
    Buffer file;
    for (size_t ci = 0; ci < manifest->chunks.size(); ++ci) {
      const format::ManifestChunk& chunk = manifest->chunks[ci];
      format::ChunkBuilder builder(format::RecordType::kResults,
                                   compress::CodecId::kZlib);
      for (int64_t i = chunk.first_record; i < chunk.first_record + chunk.num_records;
           ++i) {
        align::AlignmentResult result;
        if (i % 5 == 0) {
          result.flags = align::kFlagUnmapped;
        } else {
          result.location = i * 100;
          result.mapq = static_cast<uint8_t>(i % 60);
          result.cigar = "24M";
        }
        builder.AddResult(result);
      }
      EXPECT_TRUE(builder.Finalize(&file).ok());
      EXPECT_TRUE(store->Put(chunk.path_base + ".results", file).ok());
    }
    return with_results;
  };

  MemoryStore plain;
  MemoryStore cached_base;
  const format::Manifest manifest_a = build_dataset(&plain);
  const format::Manifest manifest_b = build_dataset(&cached_base);
  CacheStore cache(&cached_base);

  pipeline::ReadFilterSpec spec;
  spec.excluded_flags = align::kFlagUnmapped;
  pipeline::FilterOptions options;
  options.chunk_size = 40;
  pipeline::ChunkPipeline::Options uncached_pipeline;
  uncached_pipeline.read_ahead = false;

  format::Manifest out_a;
  format::Manifest out_b;
  auto report_a = pipeline::FilterAgdDataset(&plain, manifest_a, "flt", spec, options,
                                             &out_a, uncached_pipeline);
  auto report_b =
      pipeline::FilterAgdDataset(&cache, manifest_b, "flt", spec, options, &out_b);
  ASSERT_TRUE(report_a.ok()) << report_a.status().message();
  ASSERT_TRUE(report_b.ok()) << report_b.status().message();
  EXPECT_EQ(report_a->records_out, report_b->records_out);
  EXPECT_GT(report_b->store_stats.cache_hits, 0u);

  auto out_keys = plain.List("flt");
  ASSERT_TRUE(out_keys.ok());
  ASSERT_FALSE(out_keys->empty());
  Buffer object_a;
  Buffer object_b;
  for (const std::string& key : *out_keys) {
    ASSERT_TRUE(plain.Get(key, &object_a).ok());
    ASSERT_TRUE(cached_base.Get(key, &object_b).ok()) << key;
    EXPECT_EQ(object_a.view(), object_b.view()) << "object '" << key << "' differs";
  }
}

}  // namespace
}  // namespace persona::storage
