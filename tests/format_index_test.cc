// Tests for record-level random access: the cross-chunk RecordLocator, the LRU-cached
// RandomAccessReader, and row-group validation (paper §3 random access / row grouping).

#include <gtest/gtest.h>

#include "src/format/agd_index.h"
#include "src/genome/generator.h"
#include "src/util/file_util.h"
#include "src/util/string_util.h"

namespace persona::format {
namespace {

std::vector<genome::Read> MakeReads(int n) {
  std::vector<genome::Read> reads;
  reads.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    genome::Read read;
    read.bases = std::string(static_cast<size_t>(20 + i % 7), "ACGT"[i % 4]);
    read.qual = std::string(read.bases.size(), static_cast<char>('!' + i % 40));
    read.metadata = StrFormat("read-%04d", i);
    reads.push_back(std::move(read));
  }
  return reads;
}

// Writes a dataset of `n` reads with `chunk_size` records per chunk into `dir`.
void WriteDataset(const std::string& dir, int n, int64_t chunk_size) {
  AgdWriter::Options options;
  options.chunk_size = chunk_size;
  auto writer = AgdWriter::Create(dir, "ds", options);
  ASSERT_TRUE(writer.ok());
  for (const genome::Read& read : MakeReads(n)) {
    ASSERT_TRUE(writer->Append(read).ok());
  }
  ASSERT_TRUE(writer->Finalize().ok());
}

TEST(RecordLocator, MapsBoundariesExactly) {
  Manifest manifest;
  manifest.chunks.push_back({"ds-0", 0, 10});
  manifest.chunks.push_back({"ds-1", 10, 5});
  manifest.chunks.push_back({"ds-2", 15, 20});
  auto locator = RecordLocator::Create(&manifest);
  ASSERT_TRUE(locator.ok());
  EXPECT_EQ(locator->total_records(), 35);

  EXPECT_EQ(*locator->Locate(0), (RecordLocation{0, 0}));
  EXPECT_EQ(*locator->Locate(9), (RecordLocation{0, 9}));
  EXPECT_EQ(*locator->Locate(10), (RecordLocation{1, 0}));
  EXPECT_EQ(*locator->Locate(14), (RecordLocation{1, 4}));
  EXPECT_EQ(*locator->Locate(15), (RecordLocation{2, 0}));
  EXPECT_EQ(*locator->Locate(34), (RecordLocation{2, 19}));

  EXPECT_FALSE(locator->Locate(-1).ok());
  EXPECT_FALSE(locator->Locate(35).ok());
}

TEST(RecordLocator, RejectsNonContiguousChunks) {
  Manifest gap;
  gap.chunks.push_back({"ds-0", 0, 10});
  gap.chunks.push_back({"ds-1", 12, 5});  // two-record hole
  EXPECT_FALSE(RecordLocator::Create(&gap).ok());

  Manifest overlap;
  overlap.chunks.push_back({"ds-0", 0, 10});
  overlap.chunks.push_back({"ds-1", 8, 5});
  EXPECT_FALSE(RecordLocator::Create(&overlap).ok());
}

TEST(RecordLocator, EmptyManifestHasNoRecords) {
  Manifest manifest;
  auto locator = RecordLocator::Create(&manifest);
  ASSERT_TRUE(locator.ok());
  EXPECT_EQ(locator->total_records(), 0);
  EXPECT_FALSE(locator->Locate(0).ok());
}

TEST(RandomAccessReader, ReadsMatchSequentialContent) {
  ScopedTempDir dir("agdindex");
  WriteDataset(dir.path(), 120, 25);
  std::vector<genome::Read> expected = MakeReads(120);

  auto reader = RandomAccessReader::Open(dir.path());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->total_records(), 120);

  // Scattered accesses, including chunk boundaries and both dataset ends.
  for (int64_t id : {0LL, 24LL, 25LL, 57LL, 99LL, 100LL, 119LL, 3LL}) {
    auto read = reader->GetRead(id);
    ASSERT_TRUE(read.ok()) << id;
    EXPECT_EQ(*read, expected[static_cast<size_t>(id)]) << id;
  }
  EXPECT_FALSE(reader->GetRead(120).ok());
  EXPECT_FALSE(reader->GetRead(-5).ok());
}

TEST(RandomAccessReader, GetFieldSelectsOneColumn) {
  ScopedTempDir dir("agdindex");
  WriteDataset(dir.path(), 40, 16);
  std::vector<genome::Read> expected = MakeReads(40);

  auto reader = RandomAccessReader::Open(dir.path());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(*reader->GetField(17, "bases"), expected[17].bases);
  EXPECT_EQ(*reader->GetField(17, "qual"), expected[17].qual);
  EXPECT_EQ(*reader->GetField(17, "metadata"), expected[17].metadata);
  EXPECT_FALSE(reader->GetField(17, "results").ok());  // column absent
}

TEST(RandomAccessReader, LruCacheServesClusteredAccesses) {
  ScopedTempDir dir("agdindex");
  WriteDataset(dir.path(), 100, 10);  // 10 chunks

  auto reader = RandomAccessReader::Open(dir.path(), /*cache_capacity=*/6);
  ASSERT_TRUE(reader.ok());

  // First access to a chunk: 3 misses (bases/qual/metadata); repeats hit.
  ASSERT_TRUE(reader->GetRead(5).ok());
  EXPECT_EQ(reader->cache_misses(), 3u);
  EXPECT_EQ(reader->cache_hits(), 0u);
  ASSERT_TRUE(reader->GetRead(6).ok());
  EXPECT_EQ(reader->cache_misses(), 3u);
  EXPECT_EQ(reader->cache_hits(), 3u);

  // A different chunk evicts nothing yet (capacity 6 = two chunks' columns).
  ASSERT_TRUE(reader->GetRead(15).ok());
  EXPECT_EQ(reader->cache_misses(), 6u);
  ASSERT_TRUE(reader->GetRead(5).ok());
  EXPECT_EQ(reader->cache_misses(), 6u);  // still cached

  // Touching a third chunk evicts the LRU one (chunk of record 15).
  ASSERT_TRUE(reader->GetRead(25).ok());
  EXPECT_EQ(reader->cache_misses(), 9u);
  ASSERT_TRUE(reader->GetRead(15).ok());
  EXPECT_EQ(reader->cache_misses(), 12u);  // had been evicted
}

TEST(RandomAccessReader, RejectsZeroCapacity) {
  ScopedTempDir dir("agdindex");
  WriteDataset(dir.path(), 10, 10);
  EXPECT_FALSE(RandomAccessReader::Open(dir.path(), 0).ok());
}

TEST(ValidateRowGrouping, AcceptsConsistentDataset) {
  ScopedTempDir dir("agdindex");
  WriteDataset(dir.path(), 75, 20);
  auto dataset = AgdDataset::Open(dir.path());
  ASSERT_TRUE(dataset.ok());
  EXPECT_TRUE(ValidateRowGrouping(*dataset).ok());
}

TEST(ValidateRowGrouping, DetectsManifestChunkMiscount) {
  ScopedTempDir dir("agdindex");
  WriteDataset(dir.path(), 30, 10);

  // Corrupt the manifest: claim chunk 1 holds 9 records (real chunks hold 10).
  auto manifest_text = ReadFileToString(dir.FilePath("manifest.json"));
  ASSERT_TRUE(manifest_text.ok());
  auto manifest = Manifest::FromJson(*manifest_text);
  ASSERT_TRUE(manifest.ok());
  manifest->chunks[1].num_records = 9;
  manifest->chunks[2].first_record = 19;
  ASSERT_TRUE(WriteStringToFile(dir.FilePath("manifest.json"), manifest->ToJson()).ok());

  auto dataset = AgdDataset::Open(dir.path());
  ASSERT_TRUE(dataset.ok());
  EXPECT_FALSE(ValidateRowGrouping(*dataset).ok());
}

}  // namespace
}  // namespace persona::format
