// End-to-end aligner tests: SNAP-style and BWA-MEM-style aligners on simulated reads
// with ground truth, single-end and paired-end, plus profiling counters.

#include <gtest/gtest.h>

#include <memory>

#include "src/align/accuracy.h"
#include "src/align/bwa_aligner.h"
#include "src/align/snap_aligner.h"
#include "src/genome/generator.h"
#include "src/genome/read_simulator.h"

namespace persona::align {
namespace {

class AlignerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    genome::GenomeSpec spec;
    spec.num_contigs = 2;
    spec.contig_length = 50'000;
    spec.repeat_fraction = 0.03;
    reference_ = new genome::ReferenceGenome(genome::GenerateGenome(spec));

    SeedIndexOptions seed_options;
    seed_options.seed_length = 20;
    seed_index_ = new SeedIndex(SeedIndex::Build(*reference_, seed_options).value());

    fm_index_ = new FmIndex(FmIndex::Build(*reference_).value());
  }

  static void TearDownTestSuite() {
    delete fm_index_;
    delete seed_index_;
    delete reference_;
    fm_index_ = nullptr;
    seed_index_ = nullptr;
    reference_ = nullptr;
  }

  static std::vector<genome::Read> SimulateReads(size_t n, double error_rate,
                                                 uint64_t seed = 7) {
    genome::ReadSimSpec spec;
    spec.read_length = 101;
    spec.substitution_rate = error_rate;
    spec.seed = seed;
    genome::ReadSimulator sim(reference_, spec);
    return sim.Simulate(n);
  }

  static genome::ReferenceGenome* reference_;
  static SeedIndex* seed_index_;
  static FmIndex* fm_index_;
};

genome::ReferenceGenome* AlignerTest::reference_ = nullptr;
SeedIndex* AlignerTest::seed_index_ = nullptr;
FmIndex* AlignerTest::fm_index_ = nullptr;

TEST_F(AlignerTest, SnapAlignsCleanReadsAccurately) {
  SnapAligner aligner(reference_, seed_index_);
  auto reads = SimulateReads(300, 0.001);
  std::vector<AlignmentResult> results;
  for (const auto& read : reads) {
    results.push_back(aligner.Align(read, nullptr));
  }
  AccuracyReport report = ScoreAlignments(*reference_, reads, results);
  EXPECT_EQ(report.total, 300);
  EXPECT_GT(report.aligned_fraction(), 0.98);
  EXPECT_GT(report.correct_fraction(), 0.95);
}

TEST_F(AlignerTest, SnapAlignsNoisyReads) {
  SnapAligner aligner(reference_, seed_index_);
  auto reads = SimulateReads(200, 0.02, 11);
  std::vector<AlignmentResult> results;
  for (const auto& read : reads) {
    results.push_back(aligner.Align(read, nullptr));
  }
  AccuracyReport report = ScoreAlignments(*reference_, reads, results);
  EXPECT_GT(report.aligned_fraction(), 0.90);
  EXPECT_GT(report.correct_fraction(), 0.85);
}

TEST_F(AlignerTest, SnapProducesValidCigars) {
  SnapAligner aligner(reference_, seed_index_);
  auto reads = SimulateReads(100, 0.01, 13);
  for (const auto& read : reads) {
    AlignmentResult r = aligner.Align(read, nullptr);
    if (!r.mapped()) {
      continue;
    }
    EXPECT_FALSE(r.cigar.empty());
    // Reference span of the CIGAR must stay within the genome.
    int64_t span = CigarReferenceSpan(r.cigar);
    EXPECT_GT(span, 0);
    EXPECT_TRUE(reference_->Slice(r.location, static_cast<size_t>(span)).ok())
        << "location " << r.location << " cigar " << r.cigar;
    EXPECT_LE(r.edit_distance, 12);
    EXPECT_LE(r.mapq, 60);
  }
}

TEST_F(AlignerTest, SnapGarbageReadIsUnmapped) {
  SnapAligner aligner(reference_, seed_index_);
  genome::Read garbage;
  garbage.bases = std::string(101, 'A');  // poly-A absent from random genome
  garbage.qual = std::string(101, 'I');
  garbage.metadata = "garbage";
  AlignmentResult r = aligner.Align(garbage, nullptr);
  EXPECT_FALSE(r.mapped());
}

TEST_F(AlignerTest, SnapShortReadIsUnmapped) {
  SnapAligner aligner(reference_, seed_index_);
  genome::Read tiny{"ACGT", "IIII", "tiny"};
  EXPECT_FALSE(aligner.Align(tiny, nullptr).mapped());
}

TEST_F(AlignerTest, SnapProfileCountersAccumulate) {
  SnapAligner aligner(reference_, seed_index_);
  auto reads = SimulateReads(50, 0.005, 17);
  AlignProfile profile;
  for (const auto& read : reads) {
    aligner.Align(read, &profile);
  }
  EXPECT_EQ(profile.reads, 50u);
  EXPECT_EQ(profile.bases, 50u * 101u);
  EXPECT_GT(profile.index_probes, 0u);
  EXPECT_GT(profile.candidates, 0u);
  EXPECT_GT(profile.seed_ns + profile.verify_ns, 0u);
}

TEST_F(AlignerTest, BwaAlignsCleanReadsAccurately) {
  BwaMemAligner aligner(reference_, fm_index_);
  auto reads = SimulateReads(200, 0.001, 19);
  std::vector<AlignmentResult> results;
  for (const auto& read : reads) {
    results.push_back(aligner.Align(read, nullptr));
  }
  AccuracyReport report = ScoreAlignments(*reference_, reads, results);
  EXPECT_GT(report.aligned_fraction(), 0.98);
  EXPECT_GT(report.correct_fraction(), 0.95);
}

TEST_F(AlignerTest, BwaSoftClipsNoisyEnds) {
  BwaMemAligner aligner(reference_, fm_index_);
  // Construct a read with 15 junk bases at the front of a true genome segment.
  auto slice = reference_->Slice(5000, 86);
  ASSERT_TRUE(slice.ok());
  genome::Read read;
  read.bases = std::string(15, 'A') + std::string(*slice);
  read.qual = std::string(101, 'I');
  read.metadata = "clipped";
  AlignmentResult r = aligner.Align(read, nullptr);
  ASSERT_TRUE(r.mapped());
  EXPECT_NE(r.cigar.find('S'), std::string::npos) << r.cigar;
}

TEST_F(AlignerTest, BwaGarbageReadIsUnmapped) {
  BwaMemAligner aligner(reference_, fm_index_);
  genome::Read garbage;
  garbage.bases = std::string(101, 'A');
  garbage.qual = std::string(101, 'I');
  garbage.metadata = "garbage";
  EXPECT_FALSE(aligner.Align(garbage, nullptr).mapped());
}

TEST_F(AlignerTest, PairedAlignmentSetsPairFlags) {
  SnapAligner aligner(reference_, seed_index_);
  genome::ReadSimSpec spec;
  spec.paired = true;
  spec.seed = 23;
  genome::ReadSimulator sim(reference_, spec);
  int proper = 0;
  for (int i = 0; i < 30; ++i) {
    auto [read1, read2] = sim.NextPair();
    auto [r1, r2] = aligner.AlignPair(read1, read2, nullptr);
    EXPECT_TRUE(r1.flags & kFlagPaired);
    EXPECT_TRUE(r2.flags & kFlagPaired);
    EXPECT_TRUE(r1.flags & kFlagFirstInPair);
    EXPECT_TRUE(r2.flags & kFlagSecondInPair);
    if (r1.mapped() && r2.mapped()) {
      EXPECT_EQ(r1.mate_location, r2.location);
      EXPECT_EQ(r2.mate_location, r1.location);
      if (r1.flags & kFlagProperPair) {
        ++proper;
        EXPECT_EQ(r1.template_length, -r2.template_length);
        EXPECT_NE(r1.template_length, 0);
      }
    }
  }
  EXPECT_GT(proper, 20);  // most simulated pairs should be proper
}

TEST_F(AlignerTest, BwaInsertSizeInference) {
  BwaMemAligner aligner(reference_, fm_index_);
  genome::ReadSimSpec spec;
  spec.paired = true;
  spec.insert_mean = 350;
  spec.insert_stddev = 30;
  spec.seed = 29;
  genome::ReadSimulator sim(reference_, spec);
  std::vector<std::pair<genome::Read, genome::Read>> pairs;
  for (int i = 0; i < 60; ++i) {
    pairs.push_back(sim.NextPair());
  }
  InsertSizeStats stats = aligner.InferInsertStats(pairs, 60, nullptr);
  EXPECT_GT(stats.samples, 30);
  EXPECT_NEAR(stats.mean, 350, 40);
  EXPECT_LT(stats.stddev, 80);

  auto [r1, r2] = aligner.AlignPairWithStats(pairs[0].first, pairs[0].second, stats, nullptr);
  EXPECT_TRUE(r1.flags & kFlagPaired);
  EXPECT_TRUE(r2.flags & kFlagPaired);
}

TEST_F(AlignerTest, MapqReflectsRepeatAmbiguity) {
  // A read taken from a repeat copy should get low MAPQ; unique reads high MAPQ.
  SnapAligner aligner(reference_, seed_index_);
  auto reads = SimulateReads(300, 0.001, 31);
  std::vector<AlignmentResult> results;
  int high_mapq = 0;
  for (const auto& read : reads) {
    AlignmentResult r = aligner.Align(read, nullptr);
    if (r.mapped() && r.mapq >= 30) {
      ++high_mapq;
    }
    results.push_back(std::move(r));
  }
  // Most of the genome is unique, so most reads must be confidently placed.
  EXPECT_GT(high_mapq, 240);
}

TEST_F(AlignerTest, AlignerNamesAreStable) {
  SnapAligner snap(reference_, seed_index_);
  BwaMemAligner bwa(reference_, fm_index_);
  EXPECT_EQ(snap.name(), "snap");
  EXPECT_EQ(bwa.name(), "bwa-mem");
}

}  // namespace
}  // namespace persona::align
