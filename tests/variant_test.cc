// Unit tests for the variant-calling substrate: pileup construction across CIGAR shapes,
// genotype-caller math, hard filters, and the accuracy scorer.

#include <gtest/gtest.h>

#include "src/compress/base_compaction.h"
#include "src/variant/accuracy.h"
#include "src/variant/caller.h"
#include "src/variant/coverage.h"
#include "src/variant/filter.h"
#include "src/variant/normalize.h"
#include "src/variant/pileup.h"

namespace persona::variant {
namespace {

using align::AlignmentResult;
using align::kFlagDuplicate;
using align::kFlagReverse;

//                                 0         1         2         3
//                                 0123456789012345678901234567890123456789
const char kRefSequence[] = "ACGTACGTTAGCCATGGCATTACGGATCCAGTTCAGACGT";

genome::ReferenceGenome FixedReference() {
  std::vector<genome::Contig> contigs = {{"c1", kRefSequence}};
  return genome::ReferenceGenome(std::move(contigs));
}

AlignmentResult MappedAt(int64_t location, const std::string& cigar, bool reverse = false,
                         uint8_t mapq = 60) {
  AlignmentResult result;
  result.location = location;
  result.cigar = cigar;
  result.flags = reverse ? kFlagReverse : 0;
  result.mapq = mapq;
  return result;
}

// Quality string of Phred `q` for `n` bases.
std::string Qual(int n, int q = 35) { return std::string(static_cast<size_t>(n), static_cast<char>(33 + q)); }

const PileupColumn* FindColumn(const std::vector<PileupColumn>& columns,
                               genome::GenomeLocation location) {
  for (const PileupColumn& column : columns) {
    if (column.location == location) {
      return &column;
    }
  }
  return nullptr;
}

// --- Pileup ---

TEST(Pileup, PerfectReadCoversItsSpan) {
  genome::ReferenceGenome reference = FixedReference();
  PileupEngine engine(&reference, PileupOptions{});
  std::string bases(kRefSequence + 4, 10);
  ASSERT_TRUE(engine.AddRead(bases, Qual(10), MappedAt(4, "10M")).ok());

  std::vector<PileupColumn> columns;
  engine.FlushAll(&columns);
  ASSERT_EQ(columns.size(), 10u);
  for (size_t i = 0; i < columns.size(); ++i) {
    EXPECT_EQ(columns[i].location, static_cast<int64_t>(4 + i));
    EXPECT_EQ(columns[i].ref_base, kRefSequence[4 + i]);
    EXPECT_EQ(columns[i].depth(), 1);
    EXPECT_EQ(columns[i].spanning_reads, 1);
    EXPECT_EQ(columns[i].observations[0].base_code,
              compress::BaseToCode(kRefSequence[4 + i]));
    EXPECT_FALSE(columns[i].observations[0].reverse);
  }
  EXPECT_EQ(engine.reads_used(), 1u);
}

TEST(Pileup, OverlappingReadsStackDepth) {
  genome::ReferenceGenome reference = FixedReference();
  PileupEngine engine(&reference, PileupOptions{});
  ASSERT_TRUE(engine.AddRead(std::string(kRefSequence + 4, 10), Qual(10), MappedAt(4, "10M")).ok());
  ASSERT_TRUE(engine.AddRead(std::string(kRefSequence + 8, 10), Qual(10), MappedAt(8, "10M")).ok());

  std::vector<PileupColumn> columns;
  engine.FlushAll(&columns);
  const PileupColumn* overlap = FindColumn(columns, 9);
  ASSERT_NE(overlap, nullptr);
  EXPECT_EQ(overlap->depth(), 2);
  const PileupColumn* solo = FindColumn(columns, 5);
  ASSERT_NE(solo, nullptr);
  EXPECT_EQ(solo->depth(), 1);
}

TEST(Pileup, ReverseReadProjectsComplement) {
  genome::ReferenceGenome reference = FixedReference();
  PileupEngine engine(&reference, PileupOptions{});
  // As-sequenced bases of a reverse-strand read are the reverse complement.
  std::string as_sequenced = compress::ReverseComplement(std::string_view(kRefSequence + 6, 12));
  ASSERT_TRUE(
      engine.AddRead(as_sequenced, Qual(12), MappedAt(6, "12M", /*reverse=*/true)).ok());

  std::vector<PileupColumn> columns;
  engine.FlushAll(&columns);
  const PileupColumn* column = FindColumn(columns, 10);
  ASSERT_NE(column, nullptr);
  ASSERT_EQ(column->depth(), 1);
  // The projected observation must equal the reference (forward) base.
  EXPECT_EQ(column->observations[0].base_code, compress::BaseToCode(kRefSequence[10]));
  EXPECT_TRUE(column->observations[0].reverse);
}

TEST(Pileup, InsertionAnchorsAtPrecedingBase) {
  genome::ReferenceGenome reference = FixedReference();
  PileupEngine engine(&reference, PileupOptions{});
  // 5M 3I 5M at 8: insertion "TTT" between reference positions 12 and 13, anchor 12.
  std::string bases =
      std::string(kRefSequence + 8, 5) + "TTT" + std::string(kRefSequence + 13, 5);
  ASSERT_TRUE(engine.AddRead(bases, Qual(13), MappedAt(8, "5M3I5M")).ok());

  std::vector<PileupColumn> columns;
  engine.FlushAll(&columns);
  const PileupColumn* anchor = FindColumn(columns, 12);
  ASSERT_NE(anchor, nullptr);
  ASSERT_EQ(anchor->insertions.size(), 1u);
  EXPECT_EQ(anchor->insertions.begin()->first, "TTT");
  EXPECT_EQ(anchor->insertions.begin()->second, 1);
  EXPECT_TRUE(anchor->deletions.empty());
}

TEST(Pileup, DeletionAnchorsAndSpansGap) {
  genome::ReferenceGenome reference = FixedReference();
  PileupEngine engine(&reference, PileupOptions{});
  // 6M 2D 6M at 2: positions 8 and 9 deleted, anchor 7.
  std::string bases = std::string(kRefSequence + 2, 6) + std::string(kRefSequence + 10, 6);
  ASSERT_TRUE(engine.AddRead(bases, Qual(12), MappedAt(2, "6M2D6M")).ok());

  std::vector<PileupColumn> columns;
  engine.FlushAll(&columns);
  const PileupColumn* anchor = FindColumn(columns, 7);
  ASSERT_NE(anchor, nullptr);
  ASSERT_EQ(anchor->deletions.size(), 1u);
  EXPECT_EQ(anchor->deletions.begin()->first, 2);

  // Deleted columns: spanned but without base observations.
  const PileupColumn* deleted = FindColumn(columns, 8);
  ASSERT_NE(deleted, nullptr);
  EXPECT_EQ(deleted->spanning_reads, 1);
  EXPECT_EQ(deleted->depth(), 0);
}

TEST(Pileup, SoftClipsContributeNothing) {
  genome::ReferenceGenome reference = FixedReference();
  PileupEngine engine(&reference, PileupOptions{});
  std::string bases = "GG" + std::string(kRefSequence + 20, 8);
  ASSERT_TRUE(engine.AddRead(bases, Qual(10), MappedAt(20, "2S8M")).ok());

  std::vector<PileupColumn> columns;
  engine.FlushAll(&columns);
  EXPECT_EQ(columns.size(), 8u);  // only the M span
  EXPECT_EQ(columns.front().location, 20);
}

TEST(Pileup, LowQualityBasesAreDroppedButStillSpan) {
  genome::ReferenceGenome reference = FixedReference();
  PileupOptions options;
  options.min_base_qual = 20;
  PileupEngine engine(&reference, options);
  std::string qual = Qual(10, 30);
  qual[4] = static_cast<char>(33 + 5);  // one bad base
  ASSERT_TRUE(engine.AddRead(std::string(kRefSequence + 4, 10), qual, MappedAt(4, "10M")).ok());

  std::vector<PileupColumn> columns;
  engine.FlushAll(&columns);
  const PileupColumn* filtered = FindColumn(columns, 8);  // read offset 4
  ASSERT_NE(filtered, nullptr);
  EXPECT_EQ(filtered->depth(), 0);
  EXPECT_EQ(filtered->spanning_reads, 1);
}

TEST(Pileup, ReadLevelFiltersSkipWholeReads) {
  genome::ReferenceGenome reference = FixedReference();
  PileupOptions options;
  options.min_mapq = 30;
  options.skip_duplicates = true;
  PileupEngine engine(&reference, options);

  // Low MAPQ.
  ASSERT_TRUE(engine
                  .AddRead(std::string(kRefSequence + 4, 8), Qual(8),
                           MappedAt(4, "8M", false, /*mapq=*/10))
                  .ok());
  // Duplicate.
  AlignmentResult duplicate = MappedAt(4, "8M");
  duplicate.flags |= kFlagDuplicate;
  ASSERT_TRUE(engine.AddRead(std::string(kRefSequence + 4, 8), Qual(8), duplicate).ok());
  // Unmapped.
  ASSERT_TRUE(engine.AddRead("ACGT", Qual(4), AlignmentResult{}).ok());

  std::vector<PileupColumn> columns;
  engine.FlushAll(&columns);
  EXPECT_TRUE(columns.empty());
  EXPECT_EQ(engine.reads_skipped(), 3u);
  EXPECT_EQ(engine.reads_used(), 0u);

  // With the duplicate filter off, the duplicate read contributes.
  options.skip_duplicates = false;
  options.min_mapq = 0;
  PileupEngine permissive(&reference, options);
  ASSERT_TRUE(permissive.AddRead(std::string(kRefSequence + 4, 8), Qual(8), duplicate).ok());
  columns.clear();
  permissive.FlushAll(&columns);
  EXPECT_EQ(columns.size(), 8u);
}

TEST(Pileup, RejectsOutOfOrderInput) {
  genome::ReferenceGenome reference = FixedReference();
  PileupEngine engine(&reference, PileupOptions{});
  ASSERT_TRUE(engine.AddRead(std::string(kRefSequence + 20, 8), Qual(8), MappedAt(20, "8M")).ok());
  EXPECT_FALSE(engine.AddRead(std::string(kRefSequence + 4, 8), Qual(8), MappedAt(4, "8M")).ok());
}

TEST(Pileup, FlushBeforeReleasesOnlyFinishedColumns) {
  genome::ReferenceGenome reference = FixedReference();
  PileupOptions options;
  options.realign_indels = false;  // no realignment slack: frontier == last read start
  PileupEngine engine(&reference, options);
  ASSERT_TRUE(engine.AddRead(std::string(kRefSequence + 2, 8), Qual(8), MappedAt(2, "8M")).ok());
  ASSERT_TRUE(engine.AddRead(std::string(kRefSequence + 20, 8), Qual(8), MappedAt(20, "8M")).ok());

  EXPECT_EQ(engine.flush_frontier(), 20);
  std::vector<PileupColumn> columns;
  engine.FlushBefore(engine.flush_frontier(), &columns);
  EXPECT_EQ(columns.size(), 8u);  // the first read's columns only
  EXPECT_LT(columns.back().location, 20);

  columns.clear();
  engine.FlushAll(&columns);
  EXPECT_EQ(columns.size(), 8u);  // the second read's columns
}

TEST(Pileup, FlushFrontierReservesRealignmentSlack) {
  genome::ReferenceGenome reference = FixedReference();
  PileupOptions options;
  options.realign_indels = true;
  options.realign_padding = 16;
  PileupEngine engine(&reference, options);
  ASSERT_TRUE(engine.AddRead(std::string(kRefSequence + 20, 8), Qual(8), MappedAt(20, "8M")).ok());
  // Realignment may shift a future read's start left by up to the padding, so columns
  // within that slack must stay resident.
  EXPECT_EQ(engine.flush_frontier(), 4);
}

TEST(Pileup, RealignmentConsolidatesFragmentedGap) {
  // A read carrying one contiguous 3-base deletion, but presented with a CIGAR that
  // fragments it ("2D1M1D" instead of "3D...") — the unit-cost edit-distance failure
  // mode. With realignment on, the pileup must re-derive the contiguous gap.
  genome::ReferenceGenome reference = FixedReference();
  std::string_view ref = kRefSequence;
  // True story: 8M 3D 8M at location 12: read = ref[12..20) + ref[23..31).
  std::string bases = std::string(ref.substr(12, 8)) + std::string(ref.substr(23, 8));
  // Fragmented presentation of the same read: 8M 2D 1M' 1D 7M — the M' base mismatches,
  // but the read bytes are identical; only the CIGAR decomposition differs.
  PileupOptions options;
  options.realign_indels = true;
  PileupEngine engine(&reference, options);
  ASSERT_TRUE(engine.AddRead(bases, Qual(16), MappedAt(12, "8M2D1M1D7M")).ok());

  std::vector<PileupColumn> columns;
  engine.FlushAll(&columns);
  const PileupColumn* anchor = FindColumn(columns, 19);
  ASSERT_NE(anchor, nullptr);
  ASSERT_EQ(anchor->deletions.size(), 1u) << "gap must consolidate at one anchor";
  EXPECT_EQ(anchor->deletions.begin()->first, 3);

  // With realignment off, the fragmented CIGAR is taken at face value.
  options.realign_indels = false;
  PileupEngine verbatim(&reference, options);
  ASSERT_TRUE(verbatim.AddRead(bases, Qual(16), MappedAt(12, "8M2D1M1D7M")).ok());
  columns.clear();
  verbatim.FlushAll(&columns);
  const PileupColumn* split_anchor = FindColumn(columns, 19);
  ASSERT_NE(split_anchor, nullptr);
  EXPECT_EQ(split_anchor->deletions.begin()->first, 2);
}

TEST(Pileup, MalformedCigarSkipsRead) {
  genome::ReferenceGenome reference = FixedReference();
  PileupEngine engine(&reference, PileupOptions{});
  // CIGAR consumes more reference than the contig holds.
  ASSERT_TRUE(engine.AddRead(std::string(10, 'A'), Qual(10), MappedAt(35, "10M")).ok());
  // Query span mismatch.
  ASSERT_TRUE(engine.AddRead(std::string(10, 'A'), Qual(10), MappedAt(4, "5M")).ok());
  EXPECT_EQ(engine.reads_skipped(), 2u);
}

TEST(Pileup, BuildPileupHandlesUnsortedInput) {
  genome::ReferenceGenome reference = FixedReference();
  std::vector<std::string> bases = {std::string(kRefSequence + 20, 8),
                                    std::string(kRefSequence + 4, 8)};
  std::vector<std::string> quals = {Qual(8), Qual(8)};
  std::vector<AlignmentResult> results = {MappedAt(20, "8M"), MappedAt(4, "8M")};
  auto columns = BuildPileup(reference, bases, quals, results, PileupOptions{});
  ASSERT_TRUE(columns.ok());
  EXPECT_EQ(columns->size(), 16u);
  EXPECT_EQ(columns->front().location, 4);
  EXPECT_EQ(columns->back().location, 27);
}

// --- Caller ---

// A column with `ref_count` reference observations and `alt_count` alt observations.
PileupColumn MakeSnvColumn(const genome::ReferenceGenome& reference,
                           genome::GenomeLocation location, char alt, int ref_count,
                           int alt_count, int qual = 35) {
  PileupColumn column;
  column.location = location;
  column.ref_base = reference.BaseAt(location);
  for (int i = 0; i < ref_count; ++i) {
    column.observations.push_back({compress::BaseToCode(column.ref_base),
                                   static_cast<uint8_t>(qual), i % 2 == 1});
  }
  for (int i = 0; i < alt_count; ++i) {
    column.observations.push_back(
        {compress::BaseToCode(alt), static_cast<uint8_t>(qual), i % 2 == 0});
  }
  column.spanning_reads = ref_count + alt_count;
  return column;
}

char AltFor(char ref) { return ref == 'A' ? 'G' : 'A'; }

TEST(Caller, HomozygousAltSite) {
  genome::ReferenceGenome reference = FixedReference();
  GenotypeCaller caller(&reference, CallerOptions{});
  const char alt = AltFor(reference.BaseAt(10));
  PileupColumn column = MakeSnvColumn(reference, 10, alt, 0, 20);
  std::vector<format::VariantRecord> records = caller.CallSite(column);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].ref_allele[0], reference.BaseAt(10));
  EXPECT_EQ(records[0].alt_allele[0], alt);
  EXPECT_EQ(records[0].genotype, "1/1");
  EXPECT_GT(records[0].qual, 50);
  EXPECT_EQ(records[0].depth, 20);
  EXPECT_NEAR(records[0].alt_fraction, 1.0, 1e-9);
}

TEST(Caller, HeterozygousSite) {
  genome::ReferenceGenome reference = FixedReference();
  GenotypeCaller caller(&reference, CallerOptions{});
  const char alt = AltFor(reference.BaseAt(15));
  PileupColumn column = MakeSnvColumn(reference, 15, alt, 12, 11);
  std::vector<format::VariantRecord> records = caller.CallSite(column);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].genotype, "0/1");
  EXPECT_NEAR(records[0].alt_fraction, 11.0 / 23.0, 1e-9);
}

TEST(Caller, HomozygousReferenceStaysSilent) {
  genome::ReferenceGenome reference = FixedReference();
  GenotypeCaller caller(&reference, CallerOptions{});
  PileupColumn column = MakeSnvColumn(reference, 10, 'G', 25, 0);
  EXPECT_TRUE(caller.CallSite(column).empty());
}

TEST(Caller, SequencingNoiseBelowFractionGateIsIgnored) {
  genome::ReferenceGenome reference = FixedReference();
  GenotypeCaller caller(&reference, CallerOptions{});
  const char alt = AltFor(reference.BaseAt(10));
  // 1 alt in 30: plausible sequencing error, below the 15% candidate gate.
  PileupColumn column = MakeSnvColumn(reference, 10, alt, 29, 1);
  EXPECT_TRUE(caller.CallSite(column).empty());
}

TEST(Caller, DepthGateSuppressesShallowSites) {
  genome::ReferenceGenome reference = FixedReference();
  CallerOptions options;
  options.min_depth = 8;
  GenotypeCaller caller(&reference, options);
  const char alt = AltFor(reference.BaseAt(10));
  PileupColumn column = MakeSnvColumn(reference, 10, alt, 0, 7);
  EXPECT_TRUE(caller.CallSite(column).empty());
}

TEST(Caller, PosteriorsFormDistribution) {
  genome::ReferenceGenome reference = FixedReference();
  GenotypeCaller caller(&reference, CallerOptions{});
  const char alt = AltFor(reference.BaseAt(10));
  PileupColumn column = MakeSnvColumn(reference, 10, alt, 10, 10);
  auto posteriors = caller.SnvPosteriors(column, compress::BaseToCode(alt));
  ASSERT_TRUE(posteriors.has_value());
  EXPECT_NEAR(posteriors->hom_ref + posteriors->het + posteriors->hom_alt, 1.0, 1e-9);
  EXPECT_GT(posteriors->het, posteriors->hom_ref);
  EXPECT_GT(posteriors->het, posteriors->hom_alt);
}

TEST(Caller, LowQualityEvidenceLowersConfidence) {
  genome::ReferenceGenome reference = FixedReference();
  GenotypeCaller caller(&reference, CallerOptions{});
  const char alt = AltFor(reference.BaseAt(10));
  std::vector<format::VariantRecord> high =
      caller.CallSite(MakeSnvColumn(reference, 10, alt, 0, 10, /*qual=*/38));
  std::vector<format::VariantRecord> low =
      caller.CallSite(MakeSnvColumn(reference, 10, alt, 0, 10, /*qual=*/8));
  ASSERT_EQ(high.size(), 1u);
  if (!low.empty()) {
    EXPECT_LT(low[0].qual, high[0].qual);
  }
}

TEST(Caller, InsertionCall) {
  genome::ReferenceGenome reference = FixedReference();
  GenotypeCaller caller(&reference, CallerOptions{});
  PileupColumn column;
  column.location = 12;
  column.ref_base = reference.BaseAt(12);
  column.spanning_reads = 20;
  column.insertions["AC"] = 18;
  std::vector<format::VariantRecord> records = caller.CallSite(column);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].insertion());
  EXPECT_EQ(records[0].ref_allele, std::string(1, reference.BaseAt(12)));
  EXPECT_EQ(records[0].alt_allele, std::string(1, reference.BaseAt(12)) + "AC");
  EXPECT_EQ(records[0].genotype, "1/1");
}

TEST(Caller, HeterozygousDeletionCall) {
  genome::ReferenceGenome reference = FixedReference();
  GenotypeCaller caller(&reference, CallerOptions{});
  PileupColumn column;
  column.location = 12;
  column.ref_base = reference.BaseAt(12);
  column.spanning_reads = 24;
  column.deletions[3] = 11;  // ~46%: heterozygous
  std::vector<format::VariantRecord> records = caller.CallSite(column);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].deletion());
  EXPECT_EQ(records[0].ref_allele.size(), 4u);  // anchor + 3 deleted
  EXPECT_EQ(records[0].genotype, "0/1");
}

TEST(Caller, WeakIndelEvidenceSuppressed) {
  genome::ReferenceGenome reference = FixedReference();
  GenotypeCaller caller(&reference, CallerOptions{});
  PileupColumn column;
  column.location = 12;
  column.ref_base = reference.BaseAt(12);
  column.spanning_reads = 40;
  column.insertions["A"] = 2;  // below min_indel_observations and fraction gate
  EXPECT_TRUE(caller.CallSite(column).empty());
}

TEST(Caller, StrandBiasReportedWhenAltIsOneSided) {
  genome::ReferenceGenome reference = FixedReference();
  GenotypeCaller caller(&reference, CallerOptions{});
  const char alt = AltFor(reference.BaseAt(10));
  PileupColumn column;
  column.location = 10;
  column.ref_base = reference.BaseAt(10);
  // Ref observations split across strands; alt only on forward.
  for (int i = 0; i < 10; ++i) {
    column.observations.push_back({compress::BaseToCode(column.ref_base), 35, i % 2 == 0});
  }
  for (int i = 0; i < 10; ++i) {
    column.observations.push_back({compress::BaseToCode(alt), 35, false});
  }
  column.spanning_reads = 20;
  std::vector<format::VariantRecord> records = caller.CallSite(column);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_GT(records[0].strand_bias, 0.5);
}

// --- Filters ---

TEST(VariantFilters, AnnotateAndSummarize) {
  std::vector<format::VariantRecord> records(4);
  records[0].qual = 50;
  records[0].depth = 30;
  records[0].alt_fraction = 0.5;
  records[0].strand_bias = 0.1;
  records[1].qual = 5;  // LowQual
  records[1].depth = 30;
  records[1].alt_fraction = 0.5;
  records[2].qual = 50;
  records[2].depth = 2;  // BadDepth
  records[2].alt_fraction = 0.5;
  records[3].qual = 4;   // LowQual + StrandBias
  records[3].depth = 30;
  records[3].alt_fraction = 0.5;
  records[3].strand_bias = 0.95;

  VariantFilterSpec spec;
  spec.min_qual = 20;
  spec.min_depth = 5;
  spec.max_strand_bias = 0.8;
  VariantFilterSummary summary = ApplyVariantFilters(records, spec);
  EXPECT_EQ(summary.total, 4);
  EXPECT_EQ(summary.passed, 1);
  EXPECT_EQ(summary.failed_qual, 2);
  EXPECT_EQ(summary.failed_depth, 1);
  EXPECT_EQ(summary.failed_strand_bias, 1);

  EXPECT_EQ(records[0].filter, "PASS");
  EXPECT_EQ(records[1].filter, "LowQual");
  EXPECT_EQ(records[2].filter, "BadDepth");
  EXPECT_EQ(records[3].filter, "LowQual;StrandBias");

  std::vector<format::VariantRecord> passing = PassingOnly(records);
  ASSERT_EQ(passing.size(), 1u);
  EXPECT_EQ(passing[0].qual, 50);
}

TEST(VariantFilters, MaxDepthCatchesPileupArtifacts) {
  std::vector<format::VariantRecord> records(1);
  records[0].qual = 80;
  records[0].depth = 900;
  VariantFilterSpec spec;
  spec.max_depth = 400;
  ApplyVariantFilters(records, spec);
  EXPECT_EQ(records[0].filter, "BadDepth");
}

// --- Accuracy scorer ---

genome::TrueVariant Truth(int32_t contig, int64_t pos, const std::string& ref,
                          const std::string& alt, genome::VariantType type,
                          bool het = false) {
  genome::TrueVariant v;
  v.contig_index = contig;
  v.position = pos;
  v.ref_allele = ref;
  v.alt_allele = alt;
  v.type = type;
  v.heterozygous = het;
  return v;
}

format::VariantRecord Call(int32_t contig, int64_t pos, const std::string& ref,
                           const std::string& alt, const std::string& genotype = "1/1") {
  format::VariantRecord r;
  r.contig_index = contig;
  r.position = pos;
  r.ref_allele = ref;
  r.alt_allele = alt;
  r.genotype = genotype;
  return r;
}

TEST(ScoreVariants, CountsTypeSplitsAndGenotypes) {
  std::vector<genome::TrueVariant> truth = {
      Truth(0, 10, "A", "G", genome::VariantType::kSnv),
      Truth(0, 50, "C", "CTT", genome::VariantType::kInsertion, /*het=*/true),
      Truth(1, 5, "GAA", "G", genome::VariantType::kDeletion),
  };
  std::vector<format::VariantRecord> calls = {
      Call(0, 10, "A", "G", "1/1"),      // TP, genotype match
      Call(0, 50, "C", "CTT", "1/1"),    // TP, genotype mismatch (truth is het)
      Call(0, 99, "T", "A"),             // FP
  };
  VariantAccuracy accuracy = ScoreVariants(truth, calls);
  EXPECT_EQ(accuracy.overall.truth, 3);
  EXPECT_EQ(accuracy.overall.called, 3);
  EXPECT_EQ(accuracy.overall.true_positives, 2);
  EXPECT_NEAR(accuracy.overall.Precision(), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(accuracy.overall.Recall(), 2.0 / 3.0, 1e-9);
  EXPECT_EQ(accuracy.snv.true_positives, 1);
  EXPECT_EQ(accuracy.insertion.true_positives, 1);
  EXPECT_EQ(accuracy.deletion.true_positives, 0);
  EXPECT_EQ(accuracy.genotype_matches, 1);
  EXPECT_NEAR(accuracy.GenotypeConcordance(), 0.5, 1e-9);
}

TEST(ScoreVariants, AlleleMismatchIsFalsePositive) {
  std::vector<genome::TrueVariant> truth = {Truth(0, 10, "A", "G", genome::VariantType::kSnv)};
  std::vector<format::VariantRecord> calls = {Call(0, 10, "A", "T")};  // wrong alt
  VariantAccuracy accuracy = ScoreVariants(truth, calls);
  EXPECT_EQ(accuracy.overall.true_positives, 0);
}

TEST(ScoreVariants, DuplicateCallsCountOnceAsTruePositive) {
  std::vector<genome::TrueVariant> truth = {Truth(0, 10, "A", "G", genome::VariantType::kSnv)};
  std::vector<format::VariantRecord> calls = {Call(0, 10, "A", "G"), Call(0, 10, "A", "G")};
  VariantAccuracy accuracy = ScoreVariants(truth, calls);
  EXPECT_EQ(accuracy.overall.true_positives, 1);
  EXPECT_EQ(accuracy.overall.called, 2);
}

TEST(ScoreVariants, PassingOnlyIgnoresFilteredCalls) {
  std::vector<genome::TrueVariant> truth = {Truth(0, 10, "A", "G", genome::VariantType::kSnv)};
  std::vector<format::VariantRecord> calls = {Call(0, 10, "A", "G")};
  calls[0].filter = "LowQual";
  VariantAccuracy strict = ScoreVariants(truth, calls, /*passing_only=*/true);
  EXPECT_EQ(strict.overall.called, 0);
  EXPECT_EQ(strict.overall.true_positives, 0);
  VariantAccuracy lax = ScoreVariants(truth, calls, /*passing_only=*/false);
  EXPECT_EQ(lax.overall.true_positives, 1);
}

// --- Coverage ---

PileupColumn DepthColumn(genome::GenomeLocation location, int32_t depth) {
  PileupColumn column;
  column.location = location;
  column.spanning_reads = depth;
  return column;
}

TEST(Coverage, AggregatesDepthStatistics) {
  genome::ReferenceGenome reference = FixedReference();  // 40 bases
  std::vector<PileupColumn> columns = {
      DepthColumn(0, 3), DepthColumn(1, 3), DepthColumn(2, 1), DepthColumn(3, 7)};
  CoverageReport report = ComputeCoverage(reference, columns);

  EXPECT_EQ(report.genome_length, 40);
  EXPECT_EQ(report.covered_positions, 4);
  EXPECT_EQ(report.total_depth, 14);
  EXPECT_EQ(report.max_depth, 7);
  EXPECT_NEAR(report.MeanDepth(), 14.0 / 40.0, 1e-9);
  EXPECT_NEAR(report.Breadth(1), 4.0 / 40.0, 1e-9);
  EXPECT_NEAR(report.Breadth(3), 3.0 / 40.0, 1e-9);
  EXPECT_NEAR(report.Breadth(4), 1.0 / 40.0, 1e-9);
  EXPECT_NEAR(report.Breadth(8), 0.0, 1e-9);
  EXPECT_EQ(report.histogram[3], 2);
  EXPECT_EQ(report.histogram[0], 36);  // uncovered positions
}

TEST(Coverage, HistogramCapAbsorbsExtremeDepths) {
  genome::ReferenceGenome reference = FixedReference();
  CoverageOptions options;
  options.histogram_cap = 10;
  std::vector<PileupColumn> columns = {DepthColumn(0, 250), DepthColumn(1, 11)};
  CoverageReport report = ComputeCoverage(reference, columns, options);
  EXPECT_EQ(report.histogram.size(), 11u);
  EXPECT_EQ(report.histogram[10], 2);  // both above the cap
  EXPECT_EQ(report.max_depth, 250);    // max is tracked exactly
  // Thresholds beyond the cap clamp to the cap (conservative).
  EXPECT_NEAR(report.Breadth(200), 2.0 / 40.0, 1e-9);
}

TEST(Coverage, ZeroDepthColumnsAndEmptyInputsAreNeutral) {
  genome::ReferenceGenome reference = FixedReference();
  std::vector<PileupColumn> none;
  CoverageReport empty = ComputeCoverage(reference, none);
  EXPECT_EQ(empty.covered_positions, 0);
  EXPECT_EQ(empty.MeanDepth(), 0);
  EXPECT_NEAR(empty.Breadth(0), 1.0, 1e-9);  // every position has depth >= 0

  std::vector<PileupColumn> zero = {DepthColumn(5, 0)};
  CoverageReport with_zero = ComputeCoverage(reference, zero);
  EXPECT_EQ(with_zero.covered_positions, 0);
  EXPECT_EQ(with_zero.histogram[0], 40);
}

// --- Normalization ---

format::VariantRecord RawRecord(const genome::ReferenceGenome& /*reference*/, int64_t pos,
                                std::string ref, std::string alt) {
  format::VariantRecord r;
  r.contig_index = 0;
  r.position = pos;
  r.ref_allele = std::move(ref);
  r.alt_allele = std::move(alt);
  return r;
}

TEST(Normalize, SnvIsUnchanged) {
  genome::ReferenceGenome reference = FixedReference();
  // kRefSequence[10] == 'G'.
  format::VariantRecord r = RawRecord(reference, 10, "G", "T");
  ASSERT_TRUE(NormalizeVariant(reference, &r).ok());
  EXPECT_EQ(r.position, 10);
  EXPECT_EQ(r.ref_allele, "G");
  EXPECT_EQ(r.alt_allele, "T");
}

TEST(Normalize, TrimsSharedSuffix) {
  genome::ReferenceGenome reference = FixedReference();
  // ref[5..8) = "CGT"; deleting "G" can be written as CGT->CT (shared suffix T).
  format::VariantRecord r = RawRecord(reference, 5, "CGT", "CT");
  ASSERT_TRUE(NormalizeVariant(reference, &r).ok());
  EXPECT_EQ(r.position, 5);
  EXPECT_EQ(r.ref_allele, "CG");
  EXPECT_EQ(r.alt_allele, "C");
}

TEST(Normalize, LeftAlignsInsertionInHomopolymer) {
  // Reference with a TT run: inserting a T "after the run" is equivalent to inserting
  // it at the run's left edge; normalization must settle on the left edge.
  std::vector<genome::Contig> contigs = {{"c1", "ACGTTTTACG"}};
  genome::ReferenceGenome reference(std::move(contigs));
  //          0123456789  positions 3..6 are the T run.
  format::VariantRecord r = RawRecord(reference, 6, "T", "TT");
  ASSERT_TRUE(NormalizeVariant(reference, &r).ok());
  EXPECT_EQ(r.position, 2);  // anchored at the G before the run
  EXPECT_EQ(r.ref_allele, "G");
  EXPECT_EQ(r.alt_allele, "GT");
}

TEST(Normalize, LeftAlignsDeletionInRepeat) {
  std::vector<genome::Contig> contigs = {{"c1", "ACGATATATCG"}};
  genome::ReferenceGenome reference(std::move(contigs));
  //          01234567890  AT repeat at 3..8.
  // Deleting the last "AT" copy (positions 7-8) == deleting the first copy (3-4).
  format::VariantRecord r = RawRecord(reference, 6, "TAT", "T");
  ASSERT_TRUE(NormalizeVariant(reference, &r).ok());
  EXPECT_EQ(r.position, 2);
  EXPECT_EQ(r.ref_allele, "GAT");
  EXPECT_EQ(r.alt_allele, "G");
}

TEST(Normalize, TrimsSharedPrefixKeepingAnchor) {
  genome::ReferenceGenome reference = FixedReference();
  // ref[8..12) = "TAGC": "TAGC" -> "TAGG" is really the SNV C->G at position 11.
  format::VariantRecord r = RawRecord(reference, 8, "TAGC", "TAGG");
  ASSERT_TRUE(NormalizeVariant(reference, &r).ok());
  EXPECT_EQ(r.position, 11);
  EXPECT_EQ(r.ref_allele, "C");
  EXPECT_EQ(r.alt_allele, "G");
}

TEST(Normalize, RejectsRefMismatchAndBadShapes) {
  genome::ReferenceGenome reference = FixedReference();
  format::VariantRecord wrong_ref = RawRecord(reference, 10, "T", "C");  // ref is 'G'
  EXPECT_FALSE(NormalizeVariant(reference, &wrong_ref).ok());
  EXPECT_EQ(wrong_ref.ref_allele, "T") << "failed normalization must not mutate";

  format::VariantRecord empty = RawRecord(reference, 10, "", "C");
  EXPECT_FALSE(NormalizeVariant(reference, &empty).ok());

  format::VariantRecord off_end = RawRecord(reference, 38, "GTACG", "G");
  EXPECT_FALSE(NormalizeVariant(reference, &off_end).ok());
}

TEST(Normalize, ScorerMatchesEquivalentIndelPlacements) {
  std::vector<genome::Contig> contigs = {{"c1", "ACGTTTTACG"}};
  genome::ReferenceGenome reference(std::move(contigs));
  // Truth at the right edge of the T run, call at a middle placement.
  std::vector<genome::TrueVariant> truth = {
      Truth(0, 6, "T", "TT", genome::VariantType::kInsertion)};
  std::vector<format::VariantRecord> calls = {Call(0, 4, "T", "TT")};

  VariantAccuracy raw = ScoreVariants(truth, calls, false, nullptr);
  EXPECT_EQ(raw.overall.true_positives, 0) << "literal comparison cannot match";
  VariantAccuracy normalized = ScoreVariants(truth, calls, false, &reference);
  EXPECT_EQ(normalized.overall.true_positives, 1)
      << "normalized comparison must unify equivalent placements";
}

TEST(Normalize, BatchCountsChangedRecords) {
  std::vector<genome::Contig> contigs = {{"c1", "ACGTTTTACG"}};
  genome::ReferenceGenome reference(std::move(contigs));
  std::vector<format::VariantRecord> records = {
      RawRecord(reference, 6, "T", "TT"),   // shifts
      RawRecord(reference, 1, "C", "A"),    // SNV, unchanged
      RawRecord(reference, 9, "X", "Y"),    // unnormalizable, skipped
  };
  EXPECT_EQ(NormalizeVariants(reference, records), 1);
  EXPECT_EQ(records[0].position, 2);
  EXPECT_EQ(records[1].position, 1);
  EXPECT_EQ(records[2].ref_allele, "X");
}

TEST(ScoreVariants, EmptyInputsAreWellDefined) {
  VariantAccuracy accuracy = ScoreVariants({}, {});
  EXPECT_EQ(accuracy.overall.Precision(), 0);
  EXPECT_EQ(accuracy.overall.Recall(), 0);
  EXPECT_EQ(accuracy.overall.F1(), 0);
  EXPECT_EQ(accuracy.GenotypeConcordance(), 0);
}

}  // namespace
}  // namespace persona::variant
