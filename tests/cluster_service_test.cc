// Tests for the distributed work service: the LeaseTable ledger (expiry, re-issue,
// duplicate dedup, quarantine), the wire protocol (JSON round trips, violation
// handling against a live WorkService), and worker-vs-offline parity for the
// persona_node daemon driving real pipelines over a shared store.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/align/seed_index.h"
#include "src/align/snap_aligner.h"
#include "src/cluster/lease_table.h"
#include "src/cluster/persona_node.h"
#include "src/cluster/work_client.h"
#include "src/cluster/work_protocol.h"
#include "src/cluster/work_service.h"
#include "src/genome/generator.h"
#include "src/genome/read_simulator.h"
#include "src/ingest/service.h"
#include "src/ingest/socket.h"
#include "src/ingest/wire.h"
#include "src/pipeline/agd_store_util.h"
#include "src/pipeline/persona_pipeline.h"
#include "src/pipeline/quarantine.h"
#include "src/pipeline/recompress.h"
#include "src/storage/memory_store.h"
#include "src/util/file_util.h"

namespace persona::cluster {
namespace {

// ---------------------------------------------------------------------------
// LeaseTable: deterministic ledger tests (time injected, no sleeps).
// ---------------------------------------------------------------------------

TEST(LeaseTableTest, ExpiredLeaseIsReclaimedAndReissued) {
  LeaseTableOptions options;
  options.lease_timeout_sec = 10;
  LeaseTable table(1, 2, options);

  auto first = table.Acquire(/*node=*/0, /*now=*/0.0);
  ASSERT_TRUE(first.has_value());
  // Nothing else pending, and the lease is still live at t=5.
  EXPECT_FALSE(table.Acquire(1, 5.0).has_value());
  EXPECT_FALSE(table.drained());

  // At t=11 the lease is past its deadline: Acquire reclaims it inline and hands
  // the group to the asking node under a fresh lease id.
  auto second = table.Acquire(1, 11.0);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->group, first->group);
  EXPECT_NE(second->lease_id, first->lease_id);

  const LeaseTableStats stats = table.stats();
  EXPECT_EQ(stats.expired_reclaims, 1u);
  EXPECT_EQ(stats.reissues, 1u);
  EXPECT_EQ(stats.outstanding, 1u);
}

TEST(LeaseTableTest, HeartbeatRenewalKeepsLeaseAlive) {
  LeaseTableOptions options;
  options.lease_timeout_sec = 10;
  LeaseTable table(1, 2, options);
  ASSERT_TRUE(table.Acquire(0, 0.0).has_value());
  table.Renew(0, 8.0);  // deadline moves to 18
  EXPECT_EQ(table.ReapExpired(15.0), 0u);
  EXPECT_EQ(table.ReapExpired(19.0), 1u);
  EXPECT_EQ(table.stats().expired_reclaims, 1u);
}

TEST(LeaseTableTest, DuplicateCompletionIsDedupedIdempotently) {
  LeaseTableOptions options;
  options.lease_timeout_sec = 1;
  LeaseTable table(1, 2, options);

  auto slow = table.Acquire(0, 0.0);
  ASSERT_TRUE(slow.has_value());
  // The slow worker's lease expires; the group is re-issued to node 1, which
  // completes it first.
  auto fast = table.Acquire(1, 2.0);
  ASSERT_TRUE(fast.has_value());
  EXPECT_EQ(table.Complete(1, fast->lease_id, fast->group), CompleteOutcome::kFirst);
  EXPECT_TRUE(table.drained());

  // The slow worker lands the same (bit-identical, same key) output afterwards:
  // acknowledged as a duplicate, counters unchanged.
  EXPECT_EQ(table.Complete(0, slow->lease_id, slow->group),
            CompleteOutcome::kDuplicate);
  const LeaseTableStats stats = table.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.duplicate_completions, 1u);
  ASSERT_EQ(stats.per_node_completed.size(), 2u);
  EXPECT_EQ(stats.per_node_completed[1], 1u);  // only the first completion counts
  EXPECT_EQ(stats.per_node_completed[0], 0u);
  EXPECT_EQ(table.Complete(0, 999, /*group=*/5), CompleteOutcome::kUnknown);
}

TEST(LeaseTableTest, RepeatedFailureQuarantinesAfterAttemptBudget) {
  LeaseTableOptions options;
  options.max_attempts = 2;
  LeaseTable table(1, 1, options);

  auto grant = table.Acquire(0, 0.0);
  ASSERT_TRUE(grant.has_value());
  EXPECT_FALSE(table.Fail(0, grant->lease_id, grant->group, "first failure"));
  EXPECT_FALSE(table.drained());  // back to pending, budget not yet spent

  grant = table.Acquire(0, 1.0);
  ASSERT_TRUE(grant.has_value());
  EXPECT_TRUE(table.Fail(0, grant->lease_id, grant->group, "second failure"));
  EXPECT_TRUE(table.drained());  // quarantined groups settle the run

  const auto quarantined = table.quarantined_groups();
  ASSERT_EQ(quarantined.size(), 1u);
  EXPECT_EQ(quarantined[0].group, 0u);
  EXPECT_EQ(quarantined[0].attempts, 2);
  EXPECT_EQ(quarantined[0].last_error, "second failure");
  EXPECT_FALSE(table.Acquire(0, 2.0).has_value());  // never re-issued
}

TEST(LeaseTableTest, ReleaseNodeReturnsItsLeasesToPending) {
  LeaseTableOptions options;
  options.lease_timeout_sec = 0;  // no expiry: disconnect is the only reclaim path
  LeaseTable table(3, 2, options);

  ASSERT_TRUE(table.Acquire(0, 0.0).has_value());
  ASSERT_TRUE(table.Acquire(0, 0.0).has_value());
  ASSERT_TRUE(table.Acquire(1, 0.0).has_value());
  EXPECT_EQ(table.stats().outstanding, 3u);

  EXPECT_EQ(table.ReleaseNode(0), 2u);  // node 0 disconnected holding two leases
  EXPECT_EQ(table.stats().outstanding, 1u);

  // The released groups are grantable again and count as re-issues.
  ASSERT_TRUE(table.Acquire(1, 1.0).has_value());
  ASSERT_TRUE(table.Acquire(1, 1.0).has_value());
  EXPECT_EQ(table.stats().reissues, 2u);
}

TEST(LeaseTableTest, AcquireCompletedHandsOutEachGroupExactlyOnce) {
  LeaseTable table(200, 4, LeaseTableOptions{});
  std::vector<std::vector<size_t>> per_node(4);
  std::vector<std::thread> nodes;
  for (size_t node = 0; node < 4; ++node) {
    nodes.emplace_back([&table, &mine = per_node[node], node] {
      while (auto group = table.AcquireCompleted(node)) {
        mine.push_back(*group);
      }
    });
  }
  for (auto& t : nodes) {
    t.join();
  }
  std::vector<bool> seen(200, false);
  const LeaseTableStats stats = table.stats();
  for (size_t node = 0; node < 4; ++node) {
    for (size_t group : per_node[node]) {
      EXPECT_FALSE(seen[group]) << "group " << group << " dispensed twice";
      seen[group] = true;
    }
    // Hand-out and accounting are one critical section, so the per-node counters
    // must agree exactly with what each thread observed.
    EXPECT_EQ(stats.per_node_completed[node], per_node[node].size());
  }
  EXPECT_EQ(stats.completed, 200u);
  EXPECT_TRUE(table.drained());
}

// ---------------------------------------------------------------------------
// Wire protocol: JSON round trips.
// ---------------------------------------------------------------------------

TEST(WorkProtocolTest, JobSpecRoundTripsWithParams) {
  JobSpec job;
  job.tool = "align";
  job.manifest_key = "datasets/m.json";
  job.group_size = 4;
  job.num_groups = 25;
  job.lease_timeout_sec = 12.5;
  job.heartbeat_interval_sec = 2.5;
  job.params = GenomeJobParams(/*genome_seed=*/4242, /*num_contigs=*/2,
                               /*contig_length=*/60'000, /*seed_length=*/20);

  auto back = JobSpec::FromJson(job.ToJson());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->tool, "align");
  EXPECT_EQ(back->manifest_key, "datasets/m.json");
  EXPECT_EQ(back->group_size, 4);
  EXPECT_EQ(back->num_groups, 25);
  EXPECT_DOUBLE_EQ(back->lease_timeout_sec, 12.5);
  EXPECT_DOUBLE_EQ(back->heartbeat_interval_sec, 2.5);
  const json::Value params{back->params};
  auto seed = params.GetInt("genome_seed");
  ASSERT_TRUE(seed.ok());
  EXPECT_EQ(*seed, 4242);
  auto seed_length = params.GetInt("seed_length");
  ASSERT_TRUE(seed_length.ok());
  EXPECT_EQ(*seed_length, 20);
}

TEST(WorkProtocolTest, LeaseCompleteRoundTripsKeysAndStoreStats) {
  LeaseCompleteMsg msg;
  msg.lease_id = 77;
  msg.group = 12;
  msg.keys = {"ds-12.results", "ds-12.index"};
  msg.records = 100'000;
  msg.store.bytes_read = 123;
  msg.store.bytes_written = 456;
  msg.store.read_ops = 7;
  msg.store.write_ops = 8;

  auto back = LeaseCompleteMsg::FromJson(msg.ToJson());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->lease_id, 77u);
  EXPECT_EQ(back->group, 12u);
  EXPECT_EQ(back->keys, msg.keys);
  EXPECT_EQ(back->records, 100'000u);
  EXPECT_EQ(back->store.bytes_read, 123u);
  EXPECT_EQ(back->store.bytes_written, 456u);
  EXPECT_EQ(back->store.read_ops, 7u);
  EXPECT_EQ(back->store.write_ops, 8u);
}

TEST(WorkProtocolTest, ClusterReportRoundTripsWorkerSlices) {
  ClusterWorkReport report;
  report.num_groups = 24;
  report.completed = 20;
  report.quarantined = 4;
  report.reissues = 3;
  report.expired_reclaims = 2;
  report.duplicate_completions = 1;
  report.drained = true;
  report.records = 2'000'000;
  report.store.bytes_written = 987;
  WorkerReport worker;
  worker.node_name = "node-a";
  worker.completed_groups = 20;
  worker.records = 2'000'000;
  report.workers.push_back(worker);

  auto back = ClusterWorkReport::FromJson(report.ToJson());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_groups, 24u);
  EXPECT_EQ(back->completed, 20u);
  EXPECT_EQ(back->quarantined, 4u);
  EXPECT_EQ(back->reissues, 3u);
  EXPECT_EQ(back->expired_reclaims, 2u);
  EXPECT_EQ(back->duplicate_completions, 1u);
  EXPECT_TRUE(back->drained);
  EXPECT_EQ(back->records, 2'000'000u);
  EXPECT_EQ(back->store.bytes_written, 987u);
  ASSERT_EQ(back->workers.size(), 1u);
  EXPECT_EQ(back->workers[0].node_name, "node-a");
  EXPECT_EQ(back->workers[0].completed_groups, 20u);
}

// ---------------------------------------------------------------------------
// WorkService over real sockets: protocol violations and fault handling.
// ---------------------------------------------------------------------------

Result<std::unique_ptr<WorkService>> StartAlignService(int num_groups,
                                                       double lease_timeout_sec = 30,
                                                       int max_attempts = 3) {
  WorkServiceOptions options;
  options.job.tool = "align";
  options.job.num_groups = num_groups;
  options.job.group_size = 1;
  options.job.lease_timeout_sec = lease_timeout_sec;
  options.job.heartbeat_interval_sec = 0.2;
  options.max_attempts = max_attempts;
  options.sweep_interval_sec = 0.05;
  return WorkService::Start(options);
}

// Registers over a raw socket and returns the connection, for tests that need a
// worker the WorkClient's own protocol discipline would not allow.
Result<ingest::Connection> RawRegister(uint16_t port, const std::string& name) {
  PERSONA_ASSIGN_OR_RETURN(ingest::Connection conn, ingest::ConnectLoopback(port));
  RegisterWorker reg;
  reg.node_name = name;
  reg.pid = 1;
  PERSONA_RETURN_IF_ERROR(ingest::WriteRawFrame(
      conn, static_cast<uint8_t>(WorkFrame::kRegisterWorker), reg.ToJson()));
  ingest::RawFrame frame;
  PERSONA_RETURN_IF_ERROR(ingest::ReadRawFrame(conn, &frame));
  if (frame.type != static_cast<uint8_t>(WorkFrame::kRegistered)) {
    return InternalError("registration not acknowledged");
  }
  return conn;
}

TEST(WorkServiceProtocolTest, FirstFrameMustBeRegisterWorker) {
  auto service = StartAlignService(1);
  ASSERT_TRUE(service.ok());
  auto conn = ingest::ConnectLoopback((*service)->port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(ingest::WriteRawFrame(
                  *conn, static_cast<uint8_t>(WorkFrame::kLeaseRequest), "")
                  .ok());
  ingest::RawFrame reply;
  ASSERT_TRUE(ingest::ReadRawFrame(*conn, &reply).ok());
  EXPECT_EQ(reply.type, static_cast<uint8_t>(WorkFrame::kError));
  // The service closes the connection after kError: no leases for rogue speakers.
  EXPECT_FALSE(ingest::ReadRawFrame(*conn, &reply).ok());
  (*service)->Shutdown();
}

TEST(WorkServiceProtocolTest, MalformedRegistrationJsonIsRejected) {
  auto service = StartAlignService(1);
  ASSERT_TRUE(service.ok());
  auto conn = ingest::ConnectLoopback((*service)->port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(ingest::WriteRawFrame(*conn,
                                    static_cast<uint8_t>(WorkFrame::kRegisterWorker),
                                    "{not json")
                  .ok());
  ingest::RawFrame reply;
  ASSERT_TRUE(ingest::ReadRawFrame(*conn, &reply).ok());
  EXPECT_EQ(reply.type, static_cast<uint8_t>(WorkFrame::kError));
  (*service)->Shutdown();
}

TEST(WorkServiceProtocolTest, UnexpectedFrameAfterRegisterClosesSession) {
  auto service = StartAlignService(1);
  ASSERT_TRUE(service.ok());
  auto conn = RawRegister((*service)->port(), "rogue");
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(ingest::WriteRawFrame(*conn, /*type=*/99, "payload").ok());
  ingest::RawFrame reply;
  ASSERT_TRUE(ingest::ReadRawFrame(*conn, &reply).ok());
  EXPECT_EQ(reply.type, static_cast<uint8_t>(WorkFrame::kError));
  EXPECT_FALSE(ingest::ReadRawFrame(*conn, &reply).ok());
  (*service)->Shutdown();
}

TEST(WorkServiceProtocolTest, TruncatedFrameDoesNotKillTheService) {
  auto service = StartAlignService(1);
  ASSERT_TRUE(service.ok());
  {
    // Three bytes of a five-byte header, then a hard close mid-frame.
    auto conn = ingest::ConnectLoopback((*service)->port());
    ASSERT_TRUE(conn.ok());
    const char partial[3] = {1, 0, 0};
    ASSERT_TRUE(conn->SendAll(partial, sizeof(partial)).ok());
  }
  // The accept loop must survive the mangled session: a well-behaved worker can
  // still register, lease the group, and complete it.
  auto conn = RawRegister((*service)->port(), "survivor");
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  ASSERT_TRUE(ingest::WriteRawFrame(
                  *conn, static_cast<uint8_t>(WorkFrame::kLeaseRequest), "")
                  .ok());
  ingest::RawFrame reply;
  ASSERT_TRUE(ingest::ReadRawFrame(*conn, &reply).ok());
  ASSERT_EQ(reply.type, static_cast<uint8_t>(WorkFrame::kLeaseGrant));
  auto grant = LeaseGrantMsg::FromJson(reply.payload);
  ASSERT_TRUE(grant.ok());
  LeaseCompleteMsg done;
  done.lease_id = grant->lease_id;
  done.group = grant->group;
  ASSERT_TRUE(ingest::WriteRawFrame(
                  *conn, static_cast<uint8_t>(WorkFrame::kLeaseComplete), done.ToJson())
                  .ok());
  ASSERT_TRUE(ingest::ReadRawFrame(*conn, &reply).ok());
  EXPECT_EQ(reply.type, static_cast<uint8_t>(WorkFrame::kAck));
  EXPECT_TRUE((*service)->AwaitDrained(10).ok());
  conn->Close();  // Shutdown waits for connected workers to go away
  (*service)->Shutdown();
}

TEST(WorkServiceTest, ForceShutdownAbortsLiveWorkersAndUnblocksAwait) {
  auto service = StartAlignService(1);
  ASSERT_TRUE(service.ok());
  auto conn = RawRegister((*service)->port(), "wedged");
  ASSERT_TRUE(conn.ok());

  Status await_status;
  std::thread waiter(
      [&] { await_status = (*service)->AwaitDrained(/*timeout_sec=*/0); });
  (*service)->ForceShutdown();
  waiter.join();
  EXPECT_EQ(await_status.code(), StatusCode::kCancelled);
  // The worker's socket was aborted, not left dangling.
  ingest::RawFrame reply;
  EXPECT_FALSE(ingest::ReadRawFrame(*conn, &reply).ok());
}

TEST(WorkServiceTest, QuarantineManifestPersistedOnDrain) {
  ScopedTempDir temp("quarantine");
  const std::string manifest_path = temp.FilePath("quarantine.json");
  WorkServiceOptions options;
  options.job.tool = "align";
  options.job.num_groups = 2;
  options.job.group_size = 1;
  options.max_attempts = 1;  // first failure quarantines
  options.quarantine_manifest_path = manifest_path;
  auto service = WorkService::Start(options);
  ASSERT_TRUE(service.ok());

  auto conn = RawRegister((*service)->port(), "poisoned");
  ASSERT_TRUE(conn.ok());
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(ingest::WriteRawFrame(
                    *conn, static_cast<uint8_t>(WorkFrame::kLeaseRequest), "")
                    .ok());
    ingest::RawFrame reply;
    ASSERT_TRUE(ingest::ReadRawFrame(*conn, &reply).ok());
    ASSERT_EQ(reply.type, static_cast<uint8_t>(WorkFrame::kLeaseGrant));
    auto grant = LeaseGrantMsg::FromJson(reply.payload);
    ASSERT_TRUE(grant.ok());
    LeaseFailMsg fail;
    fail.lease_id = grant->lease_id;
    fail.group = grant->group;
    fail.error = "synthetic poison";
    ASSERT_TRUE(ingest::WriteRawFrame(
                    *conn, static_cast<uint8_t>(WorkFrame::kLeaseFail), fail.ToJson())
                    .ok());
    ASSERT_TRUE(ingest::ReadRawFrame(*conn, &reply).ok());
    ASSERT_EQ(reply.type, static_cast<uint8_t>(WorkFrame::kAck));
    auto ack = AckMsg::FromJson(reply.payload);
    ASSERT_TRUE(ack.ok());
    EXPECT_TRUE(ack->quarantined);
  }

  ASSERT_TRUE((*service)->AwaitDrained(10).ok());
  ClusterWorkReport report = (*service)->Report();
  EXPECT_TRUE(report.drained);
  EXPECT_EQ(report.quarantined, 2u);
  EXPECT_EQ(report.completed, 0u);

  auto manifest = pipeline::LoadQuarantineManifest(manifest_path);
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  ASSERT_EQ(manifest->entries.size(), 2u);
  EXPECT_NE(manifest->entries[0].error.find("synthetic poison"), std::string::npos);
  conn->Close();  // Shutdown waits for connected workers to go away
  (*service)->Shutdown();
}

// ---------------------------------------------------------------------------
// persona_node workers vs the offline pipelines: same store objects, same bytes.
// ---------------------------------------------------------------------------

class PersonaNodeParityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    genome::GenomeSpec gspec;
    gspec.num_contigs = 1;
    gspec.contig_length = 30'000;
    reference_ = new genome::ReferenceGenome(genome::GenerateGenome(gspec));
    align::SeedIndexOptions options;
    options.seed_length = 20;
    index_ =
        new align::SeedIndex(align::SeedIndex::Build(*reference_, options).value());
    aligner_ = new align::SnapAligner(reference_, index_);
  }
  static void TearDownTestSuite() {
    delete aligner_;
    delete index_;
    delete reference_;
  }

  // Writes the same deterministic 6-chunk dataset into `store` (generation is
  // seeded, so every call produces bit-identical objects).
  static format::Manifest StageDataset(storage::ObjectStore* store) {
    genome::ReadSimSpec rspec;
    genome::ReadSimulator sim(reference_, rspec);
    auto reads = sim.Simulate(600);
    auto manifest = pipeline::WriteAgdToStore(store, "pr", reads, 100);
    EXPECT_TRUE(manifest.ok());
    return *manifest;
  }

  static PersonaNodeOptions WorkerOptions(uint16_t port, const std::string& name,
                                          storage::ObjectStore* store) {
    PersonaNodeOptions node;
    node.port = port;
    node.node_name = name;
    node.store = store;
    node.aligner = aligner_;
    node.reference = reference_;
    node.executor_threads = 1;
    node.align.read_parallelism = 1;
    node.align.parse_parallelism = 1;
    node.align.align_nodes = 1;
    node.align.write_parallelism = 1;
    return node;
  }

  static void ExpectObjectsEqual(storage::ObjectStore* a, storage::ObjectStore* b,
                                 const std::string& key) {
    Buffer buf_a;
    Buffer buf_b;
    ASSERT_TRUE(a->Get(key, &buf_a).ok()) << key;
    ASSERT_TRUE(b->Get(key, &buf_b).ok()) << key;
    EXPECT_EQ(buf_a.view(), buf_b.view()) << key;
  }

  static genome::ReferenceGenome* reference_;
  static align::SeedIndex* index_;
  static align::SnapAligner* aligner_;
};

genome::ReferenceGenome* PersonaNodeParityTest::reference_ = nullptr;
align::SeedIndex* PersonaNodeParityTest::index_ = nullptr;
align::SnapAligner* PersonaNodeParityTest::aligner_ = nullptr;

TEST_F(PersonaNodeParityTest, AlignWorkersMatchOfflinePipeline) {
  storage::MemoryStore cluster_store;
  storage::MemoryStore offline_store;
  format::Manifest manifest = StageDataset(&cluster_store);
  format::Manifest offline_manifest = StageDataset(&offline_store);

  auto service = StartAlignService(static_cast<int>(manifest.chunks.size()));
  ASSERT_TRUE(service.ok());

  constexpr size_t kWorkers = 2;
  std::vector<std::thread> workers;
  std::vector<Result<PersonaNodeReport>> reports(kWorkers, PersonaNodeReport{});
  for (size_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      reports[w] = RunPersonaNode(
          WorkerOptions((*service)->port(), "worker-" + std::to_string(w),
                        &cluster_store));
    });
  }
  ASSERT_TRUE((*service)->AwaitDrained(60).ok());
  for (auto& t : workers) {
    t.join();
  }
  for (const auto& report : reports) {
    ASSERT_TRUE(report.ok()) << report.status().ToString();
  }
  ClusterWorkReport report = (*service)->Report();
  EXPECT_TRUE(report.drained);
  EXPECT_EQ(report.completed, manifest.chunks.size());
  EXPECT_EQ(report.quarantined, 0u);
  EXPECT_EQ(report.records, 600u);
  (*service)->Shutdown();

  dataflow::Executor executor(2);
  pipeline::AlignPipelineOptions offline;
  offline.read_parallelism = 1;
  offline.parse_parallelism = 1;
  offline.align_nodes = 1;
  offline.write_parallelism = 1;
  auto offline_report = pipeline::RunPersonaAlignment(
      &offline_store, offline_manifest, *aligner_, &executor, offline);
  ASSERT_TRUE(offline_report.ok());

  for (size_t c = 0; c < manifest.chunks.size(); ++c) {
    ExpectObjectsEqual(&cluster_store, &offline_store,
                       "pr-" + std::to_string(c) + ".results");
  }
}

TEST_F(PersonaNodeParityTest, RecompressWorkersMatchOfflinePipeline) {
  // Both stores start from the same aligned dataset (offline alignment is
  // deterministic, so the results columns are bit-identical going in).
  storage::MemoryStore cluster_store;
  storage::MemoryStore offline_store;
  StageDataset(&cluster_store);
  StageDataset(&offline_store);
  dataflow::Executor executor(2);
  for (storage::ObjectStore* store :
       {static_cast<storage::ObjectStore*>(&cluster_store),
        static_cast<storage::ObjectStore*>(&offline_store)}) {
    auto manifest = pipeline::ReadManifestFromStore(store);
    ASSERT_TRUE(manifest.ok());
    auto aligned = pipeline::RunPersonaAlignment(store, *manifest, *aligner_,
                                                 &executor, {});
    ASSERT_TRUE(aligned.ok());
  }
  auto aligned_manifest = pipeline::ReadManifestFromStore(&cluster_store);
  ASSERT_TRUE(aligned_manifest.ok());

  WorkServiceOptions options;
  options.job.tool = "recompress";
  options.job.num_groups = static_cast<int64_t>(aligned_manifest->chunks.size());
  options.job.group_size = 1;
  options.job.heartbeat_interval_sec = 0.2;
  auto service = WorkService::Start(options);
  ASSERT_TRUE(service.ok());

  std::thread worker([&] {
    auto report = RunPersonaNode(
        WorkerOptions((*service)->port(), "recompress-worker", &cluster_store));
    EXPECT_TRUE(report.ok()) << report.status().ToString();
  });
  ASSERT_TRUE((*service)->AwaitDrained(60).ok());
  worker.join();
  EXPECT_EQ((*service)->Report().completed, aligned_manifest->chunks.size());
  (*service)->Shutdown();

  auto offline_manifest = pipeline::ReadManifestFromStore(&offline_store);
  ASSERT_TRUE(offline_manifest.ok());
  pipeline::RecompressOptions recompress;
  format::Manifest out_manifest;
  auto offline_report = pipeline::RefCompressBasesColumn(
      &offline_store, *offline_manifest, *reference_, recompress, &out_manifest);
  ASSERT_TRUE(offline_report.ok()) << offline_report.status().ToString();

  for (size_t c = 0; c < aligned_manifest->chunks.size(); ++c) {
    ExpectObjectsEqual(&cluster_store, &offline_store,
                       "pr-" + std::to_string(c) + ".ref_bases");
  }
}

TEST_F(PersonaNodeParityTest, SilentWorkerLeaseExpiresAndIsReissued) {
  storage::MemoryStore store;
  format::Manifest manifest = StageDataset(&store);

  // Short lease so the silent worker's grant is reclaimed within the test budget.
  auto service = StartAlignService(static_cast<int>(manifest.chunks.size()),
                                   /*lease_timeout_sec=*/0.3);
  ASSERT_TRUE(service.ok());

  // A worker that registers, takes one lease, and goes silent — connected but
  // never completing, never heartbeating (a wedged process, not a dead one).
  auto silent = RawRegister((*service)->port(), "wedged");
  ASSERT_TRUE(silent.ok());
  ASSERT_TRUE(ingest::WriteRawFrame(
                  *silent, static_cast<uint8_t>(WorkFrame::kLeaseRequest), "")
                  .ok());
  ingest::RawFrame reply;
  ASSERT_TRUE(ingest::ReadRawFrame(*silent, &reply).ok());
  ASSERT_EQ(reply.type, static_cast<uint8_t>(WorkFrame::kLeaseGrant));

  std::thread worker([&] {
    auto report =
        RunPersonaNode(WorkerOptions((*service)->port(), "healthy", &store));
    EXPECT_TRUE(report.ok()) << report.status().ToString();
  });
  ASSERT_TRUE((*service)->AwaitDrained(60).ok());
  worker.join();

  ClusterWorkReport report = (*service)->Report();
  EXPECT_TRUE(report.drained);
  EXPECT_EQ(report.completed, manifest.chunks.size());
  EXPECT_GE(report.expired_reclaims, 1u);
  EXPECT_GE(report.reissues, 1u);
  silent->Close();  // Shutdown waits for connected workers to go away
  (*service)->Shutdown();
}

// ---------------------------------------------------------------------------
// IngestService force-abort (the same LiveConnectionSet mechanism).
// ---------------------------------------------------------------------------

TEST(IngestForceShutdownTest, AbortsLiveSessionsInsteadOfWaitingForThem) {
  storage::MemoryStore store;
  ingest::IngestOptions options;
  auto service = ingest::IngestService::Start(&store, options);
  ASSERT_TRUE(service.ok());

  // A client that starts a session and then stalls forever mid-stream.
  auto conn = ingest::ConnectLoopback((*service)->port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(ingest::WriteFrame(*conn, ingest::FrameType::kStart, "stalled").ok());
  ingest::Frame frame;
  ASSERT_TRUE(ingest::ReadFrame(*conn, &frame).ok());
  ASSERT_EQ(frame.type, ingest::FrameType::kStarted);

  // Plain Shutdown would wait on the stalled session; ForceShutdown must cut its
  // socket and return. (The test's own TIMEOUT is the hang detector here.)
  (*service)->ForceShutdown();
  EXPECT_FALSE(ingest::ReadFrame(*conn, &frame).ok());
}

}  // namespace
}  // namespace persona::cluster
