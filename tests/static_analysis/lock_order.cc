// MUST NOT compile under Clang -Wthread-safety -Werror: calls a method annotated
// EXCLUDES(mu_) while already holding mu_ — the self-deadlock / lock-ordering
// violation class. The analysis also flags the underlying double acquisition.

#include "src/util/mutex.h"

namespace {

class Registry {
 public:
  void Clear() EXCLUDES(mu_) {
    persona::MutexLock lock(mu_);
    size_ = 0;
  }

  void Reset() EXCLUDES(mu_) {
    persona::MutexLock lock(mu_);
    Clear();  // error: cannot call function 'Clear' while mutex 'mu_' is held
  }

 private:
  persona::Mutex mu_;
  int size_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Registry r;
  r.Reset();
  return 0;
}
