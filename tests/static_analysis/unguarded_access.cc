// MUST NOT compile under Clang -Wthread-safety -Werror: writes a GUARDED_BY field
// without holding its mutex. This is the core property the tentpole buys — if this
// snippet ever compiles on the Clang leg, the thread-safety gate is dead.

#include "src/util/mutex.h"

namespace {

class Counter {
 public:
  void Increment() EXCLUDES(mu_) {
    ++value_;  // error: writing variable 'value_' requires holding mutex 'mu_'
  }

 private:
  persona::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return 0;
}
