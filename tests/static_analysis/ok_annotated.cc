// Positive control for the negative-compile harness: a correctly annotated class
// that MUST compile under -Wthread-safety -Werror. If this snippet stops building,
// the harness is broken (wrong flags, wrong include path) and the negative cases
// below would "pass" vacuously — so this one failing fails the whole gate.

#include "src/util/mutex.h"

namespace {

class Counter {
 public:
  void Increment() EXCLUDES(mu_) {
    persona::MutexLock lock(mu_);
    ++value_;
  }

  int Get() const EXCLUDES(mu_) {
    persona::MutexLock lock(mu_);
    return value_;
  }

 private:
  mutable persona::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return c.Get() == 1 ? 0 : 1;
}
