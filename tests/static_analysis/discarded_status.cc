// MUST NOT compile under -Werror (any supported compiler, not just Clang):
// silently dropping a Status. `class [[nodiscard]] Status` makes the discard a
// -Wunused-result diagnostic, which -Werror promotes. This is the second prong of
// the gate — if this snippet compiles, errors can be ignored invisibly again.

#include "src/util/status.h"

namespace {

persona::Status MightFail() { return persona::InternalError("boom"); }

}  // namespace

int main() {
  MightFail();  // error: ignoring return value of function declared 'nodiscard'
  return 0;
}
