// Tests for block codecs (identity/zlib/lzss) and 3-bit base compaction.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "src/compress/base_compaction.h"
#include "src/compress/codec.h"
#include "src/util/rng.h"

namespace persona::compress {
namespace {

std::string MakePayload(std::string_view kind, size_t size) {
  Rng rng(static_cast<uint64_t>(size) * 1337 + kind.size());
  std::string data;
  data.reserve(size);
  if (kind == "zeros") {
    data.assign(size, '\0');
  } else if (kind == "random") {
    for (size_t i = 0; i < size; ++i) {
      data.push_back(static_cast<char>(rng.Uniform(256)));
    }
  } else if (kind == "dna") {
    static const char kBases[] = {'A', 'C', 'G', 'T'};
    for (size_t i = 0; i < size; ++i) {
      data.push_back(kBases[rng.Uniform(4)]);
    }
  } else {  // "text": repetitive english-ish content
    static const char* kWords[] = {"read", "align", "genome", "chunk", "persona", " "};
    while (data.size() < size) {
      data += kWords[rng.Uniform(6)];
    }
    data.resize(size);
  }
  return data;
}

using RoundTripParam = std::tuple<CodecId, const char*, size_t>;

class CodecRoundTripTest : public ::testing::TestWithParam<RoundTripParam> {};

TEST_P(CodecRoundTripTest, RoundTrips) {
  auto [id, kind, size] = GetParam();
  const Codec& codec = GetCodec(id);
  std::string payload = MakePayload(kind, size);
  std::span<const uint8_t> input(reinterpret_cast<const uint8_t*>(payload.data()),
                                 payload.size());

  Buffer compressed;
  ASSERT_TRUE(codec.Compress(input, &compressed).ok());

  Buffer decompressed;
  ASSERT_TRUE(codec.Decompress(compressed.span(), payload.size(), &decompressed).ok());
  ASSERT_EQ(decompressed.size(), payload.size());
  EXPECT_EQ(decompressed.view(), payload);
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, CodecRoundTripTest,
    ::testing::Combine(
        ::testing::Values(CodecId::kIdentity, CodecId::kZlib, CodecId::kLzss),
        ::testing::Values("zeros", "random", "dna", "text"),
        ::testing::Values(size_t{0}, size_t{1}, size_t{7}, size_t{256}, size_t{65536},
                          size_t{262144})),
    [](const ::testing::TestParamInfo<RoundTripParam>& info) {
      return std::string(CodecName(std::get<0>(info.param))) + "_" +
             std::get<1>(info.param) + "_" + std::to_string(std::get<2>(info.param));
    });

TEST(CodecTest, CompressibleDataShrinks) {
  std::string payload = MakePayload("text", 65536);
  std::span<const uint8_t> input(reinterpret_cast<const uint8_t*>(payload.data()),
                                 payload.size());
  for (CodecId id : {CodecId::kZlib, CodecId::kLzss}) {
    Buffer compressed;
    ASSERT_TRUE(GetCodec(id).Compress(input, &compressed).ok());
    EXPECT_LT(compressed.size(), payload.size() / 2)
        << CodecName(id) << " should at least halve repetitive text";
  }
}

TEST(CodecTest, NamesRoundTrip) {
  for (CodecId id : {CodecId::kIdentity, CodecId::kZlib, CodecId::kLzss}) {
    auto back = CodecIdFromName(CodecName(id));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, id);
  }
  EXPECT_EQ(*CodecIdFromName("gzip"), CodecId::kZlib);
  EXPECT_FALSE(CodecIdFromName("brotli").ok());
}

TEST(CodecTest, LzssRejectsCorruptStreams) {
  const Codec& lzss = GetCodec(CodecId::kLzss);
  std::string payload = MakePayload("text", 4096);
  Buffer compressed;
  ASSERT_TRUE(lzss.Compress({reinterpret_cast<const uint8_t*>(payload.data()), payload.size()},
                            &compressed)
                  .ok());

  // Truncation must be detected.
  Buffer truncated;
  truncated.Append(compressed.data(), compressed.size() / 2);
  Buffer out;
  EXPECT_FALSE(lzss.Decompress(truncated.span(), payload.size(), &out).ok());

  // A match distance pointing before the start of output must be detected.
  Buffer bogus;
  bogus.AppendByte(0x01);  // first token is a match
  bogus.AppendByte(0xFF);  // distance 0xFFFF
  bogus.AppendByte(0xFF);
  bogus.AppendByte(0x10);  // length
  out.Clear();
  EXPECT_FALSE(lzss.Decompress(bogus.span(), 64, &out).ok());
}

TEST(CodecTest, IdentityRejectsSizeMismatch) {
  const Codec& identity = GetCodec(CodecId::kIdentity);
  Buffer out;
  uint8_t data[4] = {1, 2, 3, 4};
  EXPECT_FALSE(identity.Decompress({data, 4}, 5, &out).ok());
}

TEST(BaseCompactionTest, CodeMapping) {
  EXPECT_EQ(BaseToCode('A'), kBaseCodeA);
  EXPECT_EQ(BaseToCode('c'), kBaseCodeC);
  EXPECT_EQ(BaseToCode('G'), kBaseCodeG);
  EXPECT_EQ(BaseToCode('t'), kBaseCodeT);
  EXPECT_EQ(BaseToCode('N'), kBaseCodeN);
  EXPECT_EQ(BaseToCode('R'), kBaseCodeN);  // IUPAC ambiguity -> N
  EXPECT_EQ(BaseToCode('*'), kBaseCodePad);
  for (uint8_t code = 0; code <= kBaseCodeN; ++code) {
    EXPECT_EQ(BaseToCode(CodeToBase(code)), code);
  }
}

TEST(BaseCompactionTest, PackedSizeIs21PerWord) {
  EXPECT_EQ(PackedBasesSize(0), 0u);
  EXPECT_EQ(PackedBasesSize(1), 8u);
  EXPECT_EQ(PackedBasesSize(21), 8u);
  EXPECT_EQ(PackedBasesSize(22), 16u);
  EXPECT_EQ(PackedBasesSize(101), 40u);  // ceil(101/21) = 5 words
}

class BasePackRoundTripTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BasePackRoundTripTest, RoundTrips) {
  size_t length = GetParam();
  Rng rng(length + 5);
  static const char kAlphabet[] = {'A', 'C', 'G', 'T', 'N'};
  std::string bases;
  for (size_t i = 0; i < length; ++i) {
    bases.push_back(kAlphabet[rng.Uniform(5)]);
  }
  Buffer packed;
  PackBases(bases, &packed);
  EXPECT_EQ(packed.size(), PackedBasesSize(length));

  std::string unpacked;
  ASSERT_TRUE(UnpackBases(packed.span(), length, &unpacked).ok());
  EXPECT_EQ(unpacked, bases);
}

INSTANTIATE_TEST_SUITE_P(Lengths, BasePackRoundTripTest,
                         ::testing::Values(0, 1, 20, 21, 22, 42, 100, 101, 1000));

TEST(BaseCompactionTest, UnpackDetectsShortInput) {
  Buffer packed;
  PackBases("ACGT", &packed);
  std::string out;
  EXPECT_FALSE(UnpackBases(packed.span().subspan(0, 4), 4, &out).ok());
}

TEST(BaseCompactionTest, ReverseComplement) {
  EXPECT_EQ(ReverseComplement("ACGT"), "ACGT");  // palindrome
  EXPECT_EQ(ReverseComplement("AACC"), "GGTT");
  EXPECT_EQ(ReverseComplement("ANT"), "ANT");
  EXPECT_EQ(ReverseComplement(""), "");
  // Involution property on random strings.
  Rng rng(3);
  static const char kAlphabet[] = {'A', 'C', 'G', 'T', 'N'};
  for (int trial = 0; trial < 20; ++trial) {
    std::string s;
    for (int i = 0; i < 50; ++i) {
      s.push_back(kAlphabet[rng.Uniform(5)]);
    }
    EXPECT_EQ(ReverseComplement(ReverseComplement(s)), s);
  }
}

}  // namespace
}  // namespace persona::compress
