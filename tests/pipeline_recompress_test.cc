// Tests for dataset-level reference-based recompression: the cold-storage workflow of
// paper §6.1 (bases -> ref_bases -> archive -> reconstruct), including the new AGD
// record type it introduces (§3 extensibility path).

#include <gtest/gtest.h>

#include "src/format/agd_chunk.h"
#include "src/genome/generator.h"
#include "src/genome/read_simulator.h"
#include "src/pipeline/agd_store_util.h"
#include "src/pipeline/recompress.h"
#include "src/storage/memory_store.h"

namespace persona::pipeline {
namespace {

class RecompressTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    genome::GenomeSpec gspec;
    gspec.num_contigs = 2;
    gspec.contig_length = 30'000;
    gspec.seed = 17;
    reference_ = new genome::ReferenceGenome(genome::GenerateGenome(gspec));

    genome::ReadSimSpec rspec;
    rspec.read_length = 101;
    rspec.substitution_rate = 0.004;
    rspec.indel_rate = 0;  // exact "<len>M" truth CIGARs
    genome::ReadSimulator simulator(reference_, rspec);
    reads_ = new std::vector<genome::Read>(simulator.Simulate(1'500));
  }

  static void TearDownTestSuite() {
    delete reads_;
    delete reference_;
  }

  // Stages the dataset plus a results column built from simulator truth. Every 10th
  // read is left unmapped to exercise the raw-fallback path at dataset level.
  format::Manifest StageAligned(storage::ObjectStore* store) {
    auto manifest = WriteAgdToStore(store, "ds", *reads_, 500);
    EXPECT_TRUE(manifest.ok());
    format::Manifest with_results = *manifest;
    with_results.columns.push_back(format::ResultsColumn());
    with_results.SetReference(*reference_);

    Buffer file;
    size_t index = 0;
    for (size_t ci = 0; ci < manifest->chunks.size(); ++ci) {
      format::ChunkBuilder builder(format::RecordType::kResults, compress::CodecId::kZlib);
      for (int64_t i = 0; i < manifest->chunks[ci].num_records; ++i, ++index) {
        align::AlignmentResult result;  // unmapped by default
        if (index % 10 != 0) {
          auto truth = genome::ParseReadTruth(*reference_, (*reads_)[index].metadata);
          EXPECT_TRUE(truth.ok());
          auto location = reference_->LocalToGlobal(truth->contig_index, truth->position);
          EXPECT_TRUE(location.ok());
          result.location = *location;
          result.cigar = "101M";
          result.flags = truth->reverse ? align::kFlagReverse : 0;
          result.mapq = 60;
        }
        builder.AddResult(result);
      }
      EXPECT_TRUE(builder.Finalize(&file).ok());
      EXPECT_TRUE(store->Put(manifest->chunks[ci].path_base + ".results", file).ok());
    }
    // Persist the results-bearing manifest, as the alignment pipeline would.
    EXPECT_TRUE(store->Put("manifest.json", with_results.ToJson()).ok());
    return with_results;
  }

  static genome::ReferenceGenome* reference_;
  static std::vector<genome::Read>* reads_;
};

genome::ReferenceGenome* RecompressTest::reference_ = nullptr;
std::vector<genome::Read>* RecompressTest::reads_ = nullptr;

TEST_F(RecompressTest, ColdStorageRoundTripIsExact) {
  storage::MemoryStore store;
  format::Manifest aligned = StageAligned(&store);

  // Compress: bases -> ref_bases, dropping the hot-path column.
  RecompressOptions options;
  options.delete_source_column = true;
  format::Manifest cold;
  auto compress_report =
      RefCompressBasesColumn(&store, aligned, *reference_, options, &cold);
  ASSERT_TRUE(compress_report.ok()) << compress_report.status().message();

  EXPECT_EQ(compress_report->records, reads_->size());
  EXPECT_GT(compress_report->CompressionRatio(), 4.0)
      << "diff encoding should shrink the bases column several-fold";
  EXPECT_EQ(compress_report->stats.raw_fallback,
            static_cast<int64_t>(reads_->size() / 10))
      << "exactly the unmapped reads fall back to packed form";
  EXPECT_TRUE(cold.HasColumn("ref_bases"));
  EXPECT_FALSE(cold.HasColumn("bases"));
  EXPECT_FALSE(store.Exists("ds-0.bases")) << "source column deleted";
  EXPECT_TRUE(store.Exists("ds-0.ref_bases"));

  // The stored manifest round-trips with the new record type.
  Buffer manifest_file;
  ASSERT_TRUE(store.Get("manifest.json", &manifest_file).ok());
  auto stored = format::Manifest::FromJson(manifest_file.view());
  ASSERT_TRUE(stored.ok());
  auto column = stored->FindColumn("ref_bases");
  ASSERT_TRUE(column.ok());
  EXPECT_EQ((*column)->type, format::RecordType::kRefBases);

  // Rehydrate: ref_bases -> bases, dropping the archive column.
  format::Manifest hot;
  auto reconstruct_report =
      ReconstructBasesColumn(&store, cold, *reference_, options, &hot);
  ASSERT_TRUE(reconstruct_report.ok()) << reconstruct_report.status().message();
  EXPECT_TRUE(hot.HasColumn("bases"));
  EXPECT_FALSE(hot.HasColumn("ref_bases"));
  EXPECT_FALSE(store.Exists("ds-0.ref_bases"));

  // Every base of every read survives the round trip exactly.
  Buffer file;
  size_t index = 0;
  for (size_t ci = 0; ci < hot.chunks.size(); ++ci) {
    ASSERT_TRUE(store.Get(hot.ChunkFileName(ci, "bases"), &file).ok());
    auto chunk = format::ParsedChunk::Parse(file.span());
    ASSERT_TRUE(chunk.ok());
    for (size_t i = 0; i < chunk->record_count(); ++i, ++index) {
      EXPECT_EQ(*chunk->GetBases(i), (*reads_)[index].bases) << "record " << index;
    }
  }
  EXPECT_EQ(index, reads_->size());
}

TEST_F(RecompressTest, KeepsSourceColumnWhenNotAskedToDelete) {
  storage::MemoryStore store;
  format::Manifest aligned = StageAligned(&store);
  format::Manifest cold;
  auto report = RefCompressBasesColumn(&store, aligned, *reference_, {}, &cold);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(store.Exists("ds-0.bases")) << "default keeps the source objects";
  EXPECT_TRUE(store.Exists("ds-0.ref_bases"));
}

TEST_F(RecompressTest, RequiresMandatoryColumns) {
  storage::MemoryStore store;
  auto bare = WriteAgdToStore(&store, "ds", *reads_, 500);  // no results column
  ASSERT_TRUE(bare.ok());
  format::Manifest out;
  EXPECT_FALSE(RefCompressBasesColumn(&store, *bare, *reference_, {}, &out).ok());
  EXPECT_FALSE(ReconstructBasesColumn(&store, *bare, *reference_, {}, &out).ok());
}

TEST_F(RecompressTest, ReconstructionValidatesRecordType) {
  storage::MemoryStore store;
  format::Manifest aligned = StageAligned(&store);
  // Lie in the manifest: claim the plain bases column is ref_bases.
  format::Manifest lying = aligned;
  for (auto& column : lying.columns) {
    if (column.name == "bases") {
      column.name = "ref_bases";
      column.type = format::RecordType::kRefBases;
    }
  }
  // The chunk objects still carry RecordType::kBases headers under the old names, so
  // reconstruction must fail on the missing/typed objects rather than emit garbage.
  format::Manifest out;
  EXPECT_FALSE(ReconstructBasesColumn(&store, lying, *reference_, {}, &out).ok());
}

}  // namespace
}  // namespace persona::pipeline
