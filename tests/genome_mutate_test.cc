// Tests for the diploid donor mutation model: allele correctness against the reference,
// zygosity semantics, haplotype reconstruction, spacing, and determinism.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/genome/generator.h"
#include "src/genome/mutate.h"

namespace persona::genome {
namespace {

GenomeSpec SmallGenomeSpec() {
  GenomeSpec spec;
  spec.num_contigs = 2;
  spec.contig_length = 30'000;
  spec.seed = 11;
  return spec;
}

TEST(MutateGenome, ProducesVariantsOfAllTypesAtExpectedScale) {
  ReferenceGenome reference = GenerateGenome(SmallGenomeSpec());
  MutationSpec spec;
  spec.snv_rate = 0.002;
  spec.insertion_rate = 5e-4;
  spec.deletion_rate = 5e-4;
  DonorGenome donor = MutateGenome(reference, spec);

  const double bases = static_cast<double>(reference.total_length());
  const int64_t snvs = donor.CountType(VariantType::kSnv);
  const int64_t ins = donor.CountType(VariantType::kInsertion);
  const int64_t del = donor.CountType(VariantType::kDeletion);
  EXPECT_GT(snvs, 0);
  EXPECT_GT(ins, 0);
  EXPECT_GT(del, 0);
  // Within a loose factor of the requested rates (spacing suppresses some density).
  EXPECT_LT(static_cast<double>(snvs), bases * spec.snv_rate * 2.0);
  EXPECT_GT(static_cast<double>(snvs), bases * spec.snv_rate * 0.3);
}

TEST(MutateGenome, SnvAllelesMatchReferenceAndDiffer) {
  ReferenceGenome reference = GenerateGenome(SmallGenomeSpec());
  DonorGenome donor = MutateGenome(reference, MutationSpec{});
  for (const TrueVariant& v : donor.variants) {
    const std::string& ref_seq = reference.contig(static_cast<size_t>(v.contig_index)).sequence;
    ASSERT_LE(v.position + static_cast<int64_t>(v.ref_allele.size()),
              static_cast<int64_t>(ref_seq.size()));
    EXPECT_EQ(v.ref_allele,
              ref_seq.substr(static_cast<size_t>(v.position), v.ref_allele.size()))
        << "ref allele must equal the reference sequence at its position";
    EXPECT_NE(v.ref_allele, v.alt_allele);
    switch (v.type) {
      case VariantType::kSnv:
        EXPECT_EQ(v.ref_allele.size(), 1u);
        EXPECT_EQ(v.alt_allele.size(), 1u);
        break;
      case VariantType::kInsertion:
        EXPECT_EQ(v.ref_allele.size(), 1u);
        EXPECT_GT(v.alt_allele.size(), 1u);
        EXPECT_EQ(v.alt_allele[0], v.ref_allele[0]) << "insertion keeps its anchor base";
        break;
      case VariantType::kDeletion:
        EXPECT_GT(v.ref_allele.size(), 1u);
        EXPECT_EQ(v.alt_allele.size(), 1u);
        EXPECT_EQ(v.alt_allele[0], v.ref_allele[0]) << "deletion keeps its anchor base";
        break;
    }
  }
}

TEST(MutateGenome, ZygosityControlsHaplotypeMasks) {
  ReferenceGenome reference = GenerateGenome(SmallGenomeSpec());
  MutationSpec spec;
  spec.heterozygous_fraction = 0.5;
  DonorGenome donor = MutateGenome(reference, spec);
  int64_t het = 0;
  int64_t hom = 0;
  for (const TrueVariant& v : donor.variants) {
    if (v.heterozygous) {
      ++het;
      EXPECT_TRUE(v.haplotype_mask == 0x1 || v.haplotype_mask == 0x2);
      EXPECT_EQ(v.GenotypeString(), "0/1");
    } else {
      ++hom;
      EXPECT_EQ(v.haplotype_mask, 0x3);
      EXPECT_EQ(v.GenotypeString(), "1/1");
    }
  }
  EXPECT_GT(het, 0);
  EXPECT_GT(hom, 0);
}

TEST(MutateGenome, HaplotypeLengthsReflectIndels) {
  ReferenceGenome reference = GenerateGenome(SmallGenomeSpec());
  MutationSpec spec;
  spec.snv_rate = 0;  // isolate indels
  spec.insertion_rate = 1e-3;
  spec.deletion_rate = 1e-3;
  DonorGenome donor = MutateGenome(reference, spec);

  for (int hap = 0; hap < 2; ++hap) {
    int64_t expected_delta = 0;
    for (const TrueVariant& v : donor.variants) {
      if ((v.haplotype_mask & (1 << hap)) == 0) {
        continue;
      }
      expected_delta += static_cast<int64_t>(v.alt_allele.size()) -
                        static_cast<int64_t>(v.ref_allele.size());
    }
    EXPECT_EQ(donor.haplotypes[static_cast<size_t>(hap)].total_length(),
              reference.total_length() + expected_delta)
        << "haplotype " << hap;
  }
}

TEST(MutateGenome, SnvAppearsInCarryingHaplotypeSequence) {
  ReferenceGenome reference = GenerateGenome(SmallGenomeSpec());
  MutationSpec spec;
  spec.insertion_rate = 0;
  spec.deletion_rate = 0;  // SNV-only: reference and haplotype coordinates stay aligned
  DonorGenome donor = MutateGenome(reference, spec);
  ASSERT_FALSE(donor.variants.empty());
  for (const TrueVariant& v : donor.variants) {
    for (int hap = 0; hap < 2; ++hap) {
      const std::string& seq =
          donor.haplotypes[static_cast<size_t>(hap)].contig(static_cast<size_t>(v.contig_index)).sequence;
      const char base = seq[static_cast<size_t>(v.position)];
      if (v.haplotype_mask & (1 << hap)) {
        EXPECT_EQ(base, v.alt_allele[0]);
      } else {
        EXPECT_EQ(base, v.ref_allele[0]);
      }
    }
  }
}

TEST(MutateGenome, RespectsMinimumSpacing) {
  ReferenceGenome reference = GenerateGenome(SmallGenomeSpec());
  MutationSpec spec;
  spec.snv_rate = 0.05;  // dense enough that spacing is the binding constraint
  spec.min_spacing = 25;
  DonorGenome donor = MutateGenome(reference, spec);
  for (size_t i = 1; i < donor.variants.size(); ++i) {
    const TrueVariant& prev = donor.variants[i - 1];
    const TrueVariant& cur = donor.variants[i];
    if (prev.contig_index == cur.contig_index) {
      EXPECT_GE(cur.position - prev.position, spec.min_spacing);
    }
  }
}

TEST(MutateGenome, DeterministicForSeed) {
  ReferenceGenome reference = GenerateGenome(SmallGenomeSpec());
  DonorGenome a = MutateGenome(reference, MutationSpec{});
  DonorGenome b = MutateGenome(reference, MutationSpec{});
  ASSERT_EQ(a.variants.size(), b.variants.size());
  EXPECT_TRUE(std::equal(a.variants.begin(), a.variants.end(), b.variants.begin()));
  MutationSpec other;
  other.seed = 2222;
  DonorGenome c = MutateGenome(reference, other);
  EXPECT_NE(a.variants.size(), c.variants.size());
}

TEST(MutateGenome, ContigNamesPreserved) {
  ReferenceGenome reference = GenerateGenome(SmallGenomeSpec());
  DonorGenome donor = MutateGenome(reference, MutationSpec{});
  ASSERT_EQ(donor.haplotypes[0].num_contigs(), reference.num_contigs());
  for (size_t i = 0; i < reference.num_contigs(); ++i) {
    EXPECT_EQ(donor.haplotypes[0].contig(i).name, reference.contig(i).name);
    EXPECT_EQ(donor.haplotypes[1].contig(i).name, reference.contig(i).name);
  }
}

TEST(MutateGenome, ZeroRatesProduceIdenticalHaplotypes) {
  ReferenceGenome reference = GenerateGenome(SmallGenomeSpec());
  MutationSpec spec;
  spec.snv_rate = 0;
  spec.insertion_rate = 0;
  spec.deletion_rate = 0;
  DonorGenome donor = MutateGenome(reference, spec);
  EXPECT_TRUE(donor.variants.empty());
  for (size_t i = 0; i < reference.num_contigs(); ++i) {
    EXPECT_EQ(donor.haplotypes[0].contig(i).sequence, reference.contig(i).sequence);
    EXPECT_EQ(donor.haplotypes[1].contig(i).sequence, reference.contig(i).sequence);
  }
}

}  // namespace
}  // namespace persona::genome
