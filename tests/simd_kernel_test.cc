// Parity oracles for the SIMD alignment kernels (src/util/simd.h dispatch):
//   * LvBatch at every CPU-supported level == scalar LandauVishkin, bit-identical,
//     across randomized read lengths 1..513, edge k values, all-N reads, and
//     planted-repeat reads;
//   * LandauVishkinKnownDistance == the full adaptive call's CIGAR;
//   * striped SmithWaterman at every supported level == the scalar banded kernel
//     (score, positions, CIGAR) and both == the full-matrix oracle's score;
//   * dispatch: PERSONA_SIMD parsing, forcing, and clean refusal of levels the
//     CPU cannot execute.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/align/edit_distance.h"
#include "src/align/smith_waterman.h"
#include "src/util/rng.h"
#include "src/util/simd.h"

namespace persona::align {
namespace {

constexpr char kBases[] = {'A', 'C', 'G', 'T'};

std::string RandomBases(Rng* rng, size_t len) {
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kBases[rng->Uniform(4)]);
  }
  return out;
}

// Applies `edits` random point mutations / indels to `s`.
std::string Mutate(Rng* rng, std::string s, int edits) {
  for (int e = 0; e < edits && !s.empty(); ++e) {
    const size_t pos = rng->Uniform(s.size());
    switch (rng->Uniform(3)) {
      case 0:
        s[pos] = kBases[rng->Uniform(4)];
        break;
      case 1:
        s.insert(s.begin() + static_cast<ptrdiff_t>(pos), kBases[rng->Uniform(4)]);
        break;
      default:
        s.erase(s.begin() + static_cast<ptrdiff_t>(pos));
        break;
    }
  }
  return s;
}

std::vector<SimdLevel> SupportedVectorLevels() {
  std::vector<SimdLevel> levels;
  for (SimdLevel level : {SimdLevel::kSse4, SimdLevel::kAvx2}) {
    if (SimdLevelSupported(level)) {
      levels.push_back(level);
    }
  }
  return levels;
}

// ---------------------------------------------------------------------------
// LvBatch parity

// Runs one corpus of jobs through scalar LandauVishkin and through LvBatch at
// every supported vector level, requiring bit-identical distances.
void CheckLvParity(const std::vector<std::pair<std::string, std::string>>& pairs, int max_k) {
  std::vector<LvBatchJob> jobs;
  jobs.reserve(pairs.size());
  for (const auto& [text, pattern] : pairs) {
    jobs.push_back(LvBatchJob{text, pattern});
  }
  LvWorkspace ws;
  std::vector<int> want(jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    want[i] = LandauVishkin(jobs[i].text, jobs[i].pattern, max_k, nullptr, &ws);
  }
  LvBatchScratch scratch;
  for (SimdLevel level : SupportedVectorLevels()) {
    std::vector<int> got(jobs.size(), -2);
    LvBatch(jobs.data(), got.data(), jobs.size(), max_k, level, &scratch);
    for (size_t i = 0; i < jobs.size(); ++i) {
      ASSERT_EQ(got[i], want[i])
          << "level=" << SimdLevelName(level) << " job=" << i << " max_k=" << max_k
          << " text=" << jobs[i].text << " pattern=" << jobs[i].pattern;
    }
  }
  // The scalar batch path must agree too (it is the PERSONA_SIMD=off route).
  std::vector<int> scalar_got(jobs.size(), -2);
  LvBatch(jobs.data(), scalar_got.data(), jobs.size(), max_k, SimdLevel::kScalar, &scratch);
  for (size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_EQ(scalar_got[i], want[i]) << "scalar batch job=" << i;
  }
}

TEST(LvBatchParityTest, RandomizedLengthsOneTo513) {
  Rng rng(0x51u);
  for (int max_k : {0, 1, 2, 7, 12, 40}) {
    std::vector<std::pair<std::string, std::string>> pairs;
    for (int rep = 0; rep < 200; ++rep) {
      const size_t m = 1 + rng.Uniform(513);
      std::string pattern = RandomBases(&rng, m);
      // Mix of near-identical (realistic candidate) and unrelated texts.
      std::string text;
      if (rng.Uniform(4) != 0) {
        text = Mutate(&rng, pattern, static_cast<int>(rng.Uniform(6)));
        text += RandomBases(&rng, rng.Uniform(16));
      } else {
        text = RandomBases(&rng, 1 + rng.Uniform(600));
      }
      pairs.emplace_back(std::move(text), std::move(pattern));
    }
    CheckLvParity(pairs, max_k);
  }
}

TEST(LvBatchParityTest, EdgeShapesAndDegenerateInputs) {
  std::vector<std::pair<std::string, std::string>> pairs = {
      {"", ""},
      {"", "A"},
      {"A", ""},
      {"A", "A"},
      {"A", "C"},
      {"ACGT", "ACGT"},
      {"ACGTACGT", "ACGT"},
      {"ACGT", "ACGTACGT"},          // pattern longer than text
      {"AAAA", "AAAAAAAAAAAAAAAA"},  // pattern far longer than text
      {std::string(513, 'A'), std::string(513, 'A')},
      {std::string(513, 'A'), std::string(513, 'C')},
  };
  for (int max_k : {0, 1, 3, 12, 513}) {
    CheckLvParity(pairs, max_k);
  }
}

TEST(LvBatchParityTest, AllNReadsAndPlantedRepeats) {
  Rng rng(0xA07u);
  std::vector<std::pair<std::string, std::string>> pairs;
  // All-N reads: N == N is a match at the byte level, same as the scalar kernel.
  for (size_t len : {1u, 8u, 101u, 512u, 513u}) {
    pairs.emplace_back(std::string(len + 4, 'N'), std::string(len, 'N'));
    pairs.emplace_back(RandomBases(&rng, len + 4), std::string(len, 'N'));
  }
  // Planted repeats: short period -> many equally-good alignments, stressing
  // tie behavior in the band.
  for (int rep = 0; rep < 40; ++rep) {
    const size_t period = 1 + rng.Uniform(8);
    std::string unit = RandomBases(&rng, period);
    std::string pattern;
    while (pattern.size() < 101) {
      pattern += unit;
    }
    std::string text = Mutate(&rng, pattern, static_cast<int>(rng.Uniform(5)));
    pairs.emplace_back(std::move(text), std::move(pattern));
  }
  for (int max_k : {1, 4, 12}) {
    CheckLvParity(pairs, max_k);
  }
}

TEST(LvKnownDistanceTest, MatchesFullAdaptiveCigar) {
  Rng rng(0xD1u);
  LvWorkspace ws_a;
  LvWorkspace ws_b;
  const int max_k = 12;
  for (int rep = 0; rep < 300; ++rep) {
    std::string pattern = RandomBases(&rng, 1 + rng.Uniform(200));
    std::string text = Mutate(&rng, pattern, static_cast<int>(rng.Uniform(8)));
    std::string want_cigar;
    const int want = LandauVishkin(text, pattern, max_k, &want_cigar, &ws_a);
    if (want < 0) {
      continue;
    }
    std::string got_cigar;
    const int got = LandauVishkinKnownDistance(text, pattern, max_k, want, &got_cigar, &ws_b);
    ASSERT_EQ(got, want) << "text=" << text << " pattern=" << pattern;
    ASSERT_EQ(got_cigar, want_cigar) << "text=" << text << " pattern=" << pattern;
  }
}

TEST(LvBatchCigarParityTest, RandomizedDistancesAndCigarsMatchScalar) {
  Rng rng(0xC16u);
  const int max_k = 12;
  LvWorkspace ws;
  for (int round = 0; round < 6; ++round) {
    // One corpus per round: random pairs whose distance is known from the scalar
    // adaptive call, including d == 0 (fast path) and d == max_k (widest band).
    std::vector<std::pair<std::string, std::string>> pairs;
    std::vector<int> want_dist;
    std::vector<std::string> want_cigar;
    for (int rep = 0; rep < 150; ++rep) {
      std::string pattern = RandomBases(&rng, 1 + rng.Uniform(300));
      std::string text = Mutate(&rng, pattern, static_cast<int>(rng.Uniform(8)));
      text += RandomBases(&rng, rng.Uniform(12));
      std::string cigar;
      const int d = LandauVishkin(text, pattern, max_k, &cigar, &ws);
      if (d < 0) {
        continue;  // beyond max_k; the aligner never builds a CIGAR job for these
      }
      pairs.emplace_back(std::move(text), std::move(pattern));
      want_dist.push_back(d);
      want_cigar.push_back(std::move(cigar));
    }
    ASSERT_FALSE(pairs.empty());
    std::vector<std::string> got_cigar(pairs.size());
    std::vector<LvCigarJob> jobs;
    for (size_t i = 0; i < pairs.size(); ++i) {
      jobs.push_back(LvCigarJob{pairs[i].first, pairs[i].second, want_dist[i],
                                &got_cigar[i]});
    }
    std::vector<SimdLevel> levels = SupportedVectorLevels();
    levels.push_back(SimdLevel::kScalar);
    LvBatchScratch scratch;
    for (SimdLevel level : levels) {
      for (auto& c : got_cigar) {
        c = "stale";  // must be overwritten, never merely left alone
      }
      std::vector<int> got_dist(jobs.size(), -2);
      LvBatchCigar(jobs.data(), got_dist.data(), jobs.size(), max_k, level, &scratch);
      for (size_t i = 0; i < jobs.size(); ++i) {
        ASSERT_EQ(got_dist[i], want_dist[i])
            << "level=" << SimdLevelName(level) << " job=" << i
            << " text=" << pairs[i].first << " pattern=" << pairs[i].second;
        ASSERT_EQ(got_cigar[i], want_cigar[i])
            << "level=" << SimdLevelName(level) << " job=" << i
            << " text=" << pairs[i].first << " pattern=" << pairs[i].second;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Striped Smith-Waterman parity

void CheckSwParity(std::string_view ref, std::string_view query, const SwParams& params) {
  SwScratch scalar_ws;
  const SwResult want = SmithWatermanAtLevel(ref, query, params, &scalar_ws, SimdLevel::kScalar);
  for (SimdLevel level : SupportedVectorLevels()) {
    SwScratch ws;
    const SwResult got = SmithWatermanAtLevel(ref, query, params, &ws, level);
    ASSERT_EQ(got.score, want.score)
        << "level=" << SimdLevelName(level) << " ref=" << ref << " query=" << query;
    ASSERT_EQ(got.query_begin, want.query_begin) << "level=" << SimdLevelName(level);
    ASSERT_EQ(got.query_end, want.query_end) << "level=" << SimdLevelName(level);
    ASSERT_EQ(got.ref_begin, want.ref_begin)
        << "level=" << SimdLevelName(level) << " ref=" << ref << " query=" << query;
    ASSERT_EQ(got.ref_end, want.ref_end) << "level=" << SimdLevelName(level);
    ASSERT_EQ(got.cigar, want.cigar)
        << "level=" << SimdLevelName(level) << " ref=" << ref << " query=" << query;
  }
}

TEST(SwStripedParityTest, RandomizedPairsAcrossShapesAndBands) {
  Rng rng(0x5157u);
  for (int rep = 0; rep < 400; ++rep) {
    const size_t m = 1 + rng.Uniform(140);
    std::string query = RandomBases(&rng, m);
    std::string ref;
    if (rng.Uniform(3) != 0) {
      ref = Mutate(&rng, query, static_cast<int>(rng.Uniform(10)));
      ref += RandomBases(&rng, rng.Uniform(30));
    } else {
      ref = RandomBases(&rng, 1 + rng.Uniform(200));
    }
    SwParams params;
    if (rng.Uniform(2) == 0) {
      params.band_radius = 1 + static_cast<int>(rng.Uniform(48));
    }
    if (rng.Uniform(4) == 0) {
      params.match = 1 + static_cast<int>(rng.Uniform(4));
      params.mismatch = -1 - static_cast<int>(rng.Uniform(4));
      params.gap_open = -2 - static_cast<int>(rng.Uniform(6));
      params.gap_extend = -1 - static_cast<int>(rng.Uniform(2));
    }
    CheckSwParity(ref, query, params);
  }
}

TEST(SwStripedParityTest, GapHeavyAndDegenerateInputs) {
  // Long deletions/insertions force the lazy-F loop across lane boundaries.
  CheckSwParity("ACGTACGTACGTAAAAAAAAAAAAAAAAACGTACGTACGT", "ACGTACGTACGTACGTACGTACGT", {});
  CheckSwParity("ACGTACGTACGTACGTACGTACGT", "ACGTACGTACGTAAAAAAAAAAAAAAAAACGTACGTACGT", {});
  CheckSwParity("A", "A", {});
  CheckSwParity("A", "C", {});
  CheckSwParity(std::string(200, 'A'), std::string(150, 'A'), {});
  CheckSwParity(std::string(31, 'N'), std::string(33, 'N'), {});  // N==N matches, odd sizes
  CheckSwParity("acgt", "ACGT", {});  // case-sensitive byte compare, direct-compare path
  CheckSwParity("xyzw", "xyzw", {});  // entirely off-alphabet bytes
  // Wide band: banded == full-matrix regime.
  SwParams wide;
  wide.band_radius = 4096;
  CheckSwParity("GATTACAGATTACAGATTACA", "GATTACATTACAGATT", wide);
}

TEST(SwStripedParityTest, MatchesFullMatrixOracleThroughDispatch) {
  // Transitively: striped == scalar banded == (wide-band) full oracle.
  Rng rng(0x0aceu);
  SwParams wide;
  wide.band_radius = 1024;
  for (int rep = 0; rep < 50; ++rep) {
    std::string query = RandomBases(&rng, 1 + rng.Uniform(60));
    std::string ref = Mutate(&rng, query, static_cast<int>(rng.Uniform(8)));
    const SwResult oracle = SmithWatermanFull(ref, query, wide);
    for (SimdLevel level : SupportedVectorLevels()) {
      SwScratch ws;
      const SwResult got = SmithWatermanAtLevel(ref, query, wide, &ws, level);
      ASSERT_EQ(got.score, oracle.score) << "ref=" << ref << " query=" << query;
      ASSERT_EQ(got.cigar, oracle.cigar) << "ref=" << ref << " query=" << query;
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch

TEST(SimdDispatchTest, ParseAcceptsDocumentedTokensOnly) {
  EXPECT_TRUE(ParseSimdLevel("off").ok());
  EXPECT_TRUE(ParseSimdLevel("scalar").ok());
  EXPECT_TRUE(ParseSimdLevel("sse4").ok());
  EXPECT_TRUE(ParseSimdLevel("avx2").ok());
  EXPECT_EQ(*ParseSimdLevel("off"), SimdLevel::kScalar);
  EXPECT_EQ(*ParseSimdLevel("scalar"), SimdLevel::kScalar);
  EXPECT_EQ(*ParseSimdLevel("sse4"), SimdLevel::kSse4);
  EXPECT_EQ(*ParseSimdLevel("avx2"), SimdLevel::kAvx2);
  EXPECT_FALSE(ParseSimdLevel("").ok());
  EXPECT_FALSE(ParseSimdLevel("avx512").ok());
  EXPECT_FALSE(ParseSimdLevel("AVX2").ok());
}

TEST(SimdDispatchTest, ResolveRefusesUnsupportedLevelsCleanly) {
  // "off" is supported everywhere.
  ASSERT_TRUE(ResolveSimdLevel("off").ok());
  EXPECT_EQ(*ResolveSimdLevel("off"), SimdLevel::kScalar);
  // Unknown tokens are refused with InvalidArgument, not a crash.
  EXPECT_FALSE(ResolveSimdLevel("neon").ok());
  // Every supported level resolves to itself; anything above the CPU's highest
  // level must be refused.
  const SimdLevel highest = HighestSupportedSimdLevel();
  for (SimdLevel level : {SimdLevel::kSse4, SimdLevel::kAvx2}) {
    const char* name = level == SimdLevel::kSse4 ? "sse4" : "avx2";
    if (static_cast<int>(level) <= static_cast<int>(highest)) {
      ASSERT_TRUE(ResolveSimdLevel(name).ok()) << name;
      EXPECT_EQ(*ResolveSimdLevel(name), level);
    } else {
      EXPECT_FALSE(ResolveSimdLevel(name).ok()) << name;
    }
  }
}

TEST(SimdDispatchTest, ActiveLevelHonorsEnvironmentForcing) {
  // ActiveSimdLevel caches on first use, and PERSONA_SIMD is set by the CI
  // matrix before the process starts — so this test verifies consistency with
  // the environment rather than mutating it.
  const char* env = std::getenv("PERSONA_SIMD");
  const SimdLevel active = ActiveSimdLevel();
  ASSERT_TRUE(SimdLevelSupported(active));
  if (env != nullptr && *env != '\0') {
    Result<SimdLevel> forced = ResolveSimdLevel(env);
    if (forced.ok()) {
      EXPECT_EQ(active, *forced) << "PERSONA_SIMD=" << env << " not honored";
      return;
    }
  }
  EXPECT_EQ(active, HighestSupportedSimdLevel());
}

TEST(SimdDispatchTest, BatchWidthTracksLevel) {
  EXPECT_EQ(LvBatchWidth(SimdLevel::kScalar), 1);
  EXPECT_EQ(LvBatchWidth(SimdLevel::kSse4), 4);
  EXPECT_EQ(LvBatchWidth(SimdLevel::kAvx2), 8);
}

}  // namespace
}  // namespace persona::align
