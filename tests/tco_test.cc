// Tests for the TCO model against the paper's published Table 3 numbers.

#include <gtest/gtest.h>

#include "src/tco/tco_model.h"

namespace persona::tco {
namespace {

TEST(TcoTest, CapexMatchesTable3) {
  TcoReport report = ComputeTco(TcoParams{});
  EXPECT_DOUBLE_EQ(report.compute_capex, 507'000);
  EXPECT_DOUBLE_EQ(report.storage_capex, 53'025);
  EXPECT_NEAR(report.fabric_capex, 53'064, 1);
  EXPECT_NEAR(report.total_capex, 613'089, 100);   // paper: $613K
  EXPECT_NEAR(report.tco_5yr, 943'000, 1'500);     // paper: $943K
}

TEST(TcoTest, CostPerAlignmentNearPaperValue) {
  TcoReport report = ComputeTco(TcoParams{});
  // Paper: 6.07 cents at 100% utilization. Our model lands within ~10% given its
  // published single-server rate (144 alignments/day).
  EXPECT_GT(report.cost_per_alignment_cents, 5.4);
  EXPECT_LT(report.cost_per_alignment_cents, 6.7);
}

TEST(TcoTest, SingleServerScenario) {
  TcoReport report = ComputeTco(TcoParams{});
  EXPECT_NEAR(report.single_server_alignments_per_day, 144, 1);  // paper: ~144/day
  // Paper: 4.1 cents. Our uplift assumption gives the same order.
  EXPECT_GT(report.single_server_cost_per_alignment_cents, 3.5);
  EXPECT_LT(report.single_server_cost_per_alignment_cents, 5.5);
}

TEST(TcoTest, StorageEconomics) {
  TcoReport report = ComputeTco(TcoParams{});
  // Paper: 126 TB usable ~ 6000 genomes; storage cost $8.83/genome; Glacier $6.72/5yr.
  EXPECT_NEAR(report.genomes_stored, 7'875, 1);  // 126 TB / 16 GB
  TcoParams paper_capacity;
  paper_capacity.genome_size_gb = 21;  // full-coverage genome -> paper's ~6000
  TcoReport full = ComputeTco(paper_capacity);
  EXPECT_NEAR(full.genomes_stored, 6'000, 30);
  EXPECT_NEAR(full.storage_cost_per_genome, 8.83, 0.1);
  EXPECT_NEAR(report.glacier_cost_per_genome_5yr, 6.72, 0.01);
}

TEST(TcoTest, StorageDwarfsComputePerGenomeLongTerm) {
  TcoReport report = ComputeTco(TcoParams{});
  // §6.1: storage cost/genome is two orders of magnitude above alignment cost.
  double alignment_dollars = report.cost_per_alignment_cents / 100;
  TcoParams paper_capacity;
  paper_capacity.genome_size_gb = 21;
  double storage_dollars = ComputeTco(paper_capacity).storage_cost_per_genome;
  EXPECT_GT(storage_dollars / alignment_dollars, 100);
}

TEST(TcoTest, ScalingKnobs) {
  TcoParams params;
  params.compute_servers = 120;  // double the compute tier
  TcoReport report = ComputeTco(params);
  EXPECT_DOUBLE_EQ(report.compute_capex, 1'014'000);
  EXPECT_NEAR(report.alignments_per_day, 2 * ComputeTco(TcoParams{}).alignments_per_day, 1);
}

TEST(TcoTest, FormattedTableContainsKeyRows) {
  TcoParams params;
  TcoReport report = ComputeTco(params);
  std::string table = FormatTcoTable(params, report);
  EXPECT_NE(table.find("Compute Server"), std::string::npos);
  EXPECT_NE(table.find("TCO(5yr)"), std::string::npos);
  EXPECT_NE(table.find("Cost/Alignment"), std::string::npos);
  EXPECT_NE(table.find("Glacier"), std::string::npos);
}

}  // namespace
}  // namespace persona::tco
