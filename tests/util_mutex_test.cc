// Tests for the annotated locking wrappers (src/util/mutex.h) and the
// FirstErrorCollector built on them. The wrappers are thin by design — what these
// tests pin down is the behavioral contract the rest of the codebase leans on:
// scoped release, early Unlock/relock, TryLock semantics, and CondVar wakeups
// against a persona::Mutex.

#include "src/util/mutex.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/first_error.h"
#include "src/util/status.h"

namespace persona {
namespace {

TEST(Mutex, ProvidesMutualExclusion) {
  Mutex mu;
  int counter = 0;  // deliberately non-atomic: the mutex is the only protection
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mu, &counter] {
      for (int i = 0; i < kPerThread; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  MutexLock lock(mu);
  EXPECT_EQ(counter, kThreads * kPerThread);
}

TEST(Mutex, TryLockFailsWhileHeldAndSucceedsAfterRelease) {
  Mutex mu;
  mu.Lock();
  std::atomic<bool> acquired{false};
  std::thread contender([&mu, &acquired] { acquired.store(mu.TryLock()); });
  contender.join();
  EXPECT_FALSE(acquired.load());
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexLock, EarlyUnlockReleasesAndDestructorDoesNotDoubleRelease) {
  Mutex mu;
  {
    MutexLock lock(mu);
    lock.Unlock();
    // Proof the lock is free again: an uncontended TryLock must succeed.
    ASSERT_TRUE(mu.TryLock());
    mu.Unlock();
  }  // destructor must notice held_ == false and not release a lock it lost
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexLock, RelockAfterEarlyUnlock) {
  Mutex mu;
  int guarded = 0;
  {
    MutexLock lock(mu);
    guarded = 1;
    lock.Unlock();
    lock.Lock();
    guarded = 2;
  }
  MutexLock lock(mu);
  EXPECT_EQ(guarded, 2);
}

TEST(CondVar, WaitWakesOnNotifyWithStateChange) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) {
      cv.Wait(mu);
    }
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();  // hangs (then times out under ctest) if the wakeup is lost
}

TEST(CondVar, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  std::atomic<int> woke{0};
  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      while (!go) {
        cv.Wait(mu);
      }
      woke.fetch_add(1);
    });
  }
  {
    MutexLock lock(mu);
    go = true;
  }
  cv.NotifyAll();
  for (std::thread& t : waiters) {
    t.join();
  }
  EXPECT_EQ(woke.load(), kWaiters);
}

TEST(CondVar, ProducerConsumerHandoff) {
  // The exact shape every queue in the codebase uses: explicit predicate loop,
  // mutation under the lock, notify after the scope closes.
  Mutex mu;
  CondVar cv;
  std::vector<int> items;
  constexpr int kItems = 1000;
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      {
        MutexLock lock(mu);
        items.push_back(i);
      }
      cv.NotifyOne();
    }
  });
  int consumed = 0;
  int last = -1;
  while (consumed < kItems) {
    MutexLock lock(mu);
    while (items.empty()) {
      cv.Wait(mu);
    }
    for (int v : items) {
      EXPECT_EQ(v, last + 1);
      last = v;
      ++consumed;
    }
    items.clear();
  }
  producer.join();
  EXPECT_EQ(last, kItems - 1);
}

TEST(FirstErrorCollector, StartsOkAndKeepsFirstError) {
  FirstErrorCollector errors;
  EXPECT_TRUE(errors.ok());
  EXPECT_TRUE(errors.first().ok());
  errors.Record(OkStatus());  // OK statuses are ignored
  EXPECT_TRUE(errors.ok());
  errors.Record(InternalError("first"));
  errors.Record(InternalError("second"));
  EXPECT_FALSE(errors.ok());
  EXPECT_EQ(errors.first().message(), "first");
}

TEST(FirstErrorCollector, ConcurrentRecordsKeepExactlyOneError) {
  FirstErrorCollector errors;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&errors, t] {
      for (int i = 0; i < 1000; ++i) {
        errors.Record(InternalError("thread " + std::to_string(t)));
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_FALSE(errors.ok());
  // Whichever thread won, the stored error is one of the recorded ones and never
  // a torn mixture.
  EXPECT_EQ(errors.first().message().rfind("thread ", 0), 0u);
}

}  // namespace
}  // namespace persona
