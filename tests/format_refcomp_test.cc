// Tests for reference-based compression: exact round-trips across CIGAR shapes and
// strands, raw fallbacks, corruption handling, and the compression-ratio property that
// motivates the scheme (paper §6.1).

#include <gtest/gtest.h>

#include "src/compress/base_compaction.h"
#include "src/format/refcomp.h"
#include "src/genome/generator.h"
#include "src/genome/read_simulator.h"

namespace persona::format {
namespace {

using align::AlignmentResult;
using align::kFlagReverse;
using align::kFlagUnmapped;

// A fixed reference whose bases are easy to reason about in CIGAR walks.
genome::ReferenceGenome FixedReference() {
  //                        0         1         2         3
  //                        0123456789012345678901234567890123456789
  std::string sequence = "ACGTACGTTAGCCATGGCATTACGGATCCAGTTCAGACGT";
  return genome::ReferenceGenome({{"c1", sequence}});
}

AlignmentResult MappedAt(int64_t location, const std::string& cigar, bool reverse = false) {
  AlignmentResult result;
  result.location = location;
  result.cigar = cigar;
  result.flags = reverse ? kFlagReverse : 0;
  result.mapq = 60;
  return result;
}

AlignmentResult Unmapped() { return AlignmentResult{}; }

std::string RoundTrip(const genome::ReferenceGenome& reference, const std::string& bases,
                      const AlignmentResult& result, RefCompStats* stats) {
  Buffer encoded;
  RefEncodeRead(reference, bases, result, &encoded, stats);
  auto decoded = RefDecodeRead(reference, encoded.span(), result);
  EXPECT_TRUE(decoded.ok()) << decoded.status().message();
  return decoded.ok() ? *decoded : std::string();
}

TEST(RefComp, PerfectMatchStoresNoDiffs) {
  genome::ReferenceGenome reference = FixedReference();
  const std::string bases = std::string(reference.contig(0).sequence.substr(4, 12));
  RefCompStats stats;
  EXPECT_EQ(RoundTrip(reference, bases, MappedAt(4, "12M"), &stats), bases);
  EXPECT_EQ(stats.ref_encoded, 1);
  EXPECT_EQ(stats.raw_fallback, 0);
  EXPECT_EQ(stats.substitutions, 0);
  EXPECT_EQ(stats.extra_bases, 0);
  // tag + zero-sub count = 2 bytes; no packed words.
  EXPECT_EQ(stats.encoded_bytes, 2);
}

TEST(RefComp, SubstitutionsRoundTripAndAreCounted) {
  genome::ReferenceGenome reference = FixedReference();
  std::string bases = std::string(reference.contig(0).sequence.substr(10, 10));
  bases[2] = bases[2] == 'A' ? 'C' : 'A';
  bases[7] = bases[7] == 'G' ? 'T' : 'G';
  RefCompStats stats;
  EXPECT_EQ(RoundTrip(reference, bases, MappedAt(10, "10M"), &stats), bases);
  EXPECT_EQ(stats.substitutions, 2);
  EXPECT_EQ(stats.ref_encoded, 1);
}

TEST(RefComp, ReverseStrandProjectsThroughReverseComplement) {
  genome::ReferenceGenome reference = FixedReference();
  // A reverse-strand read stores as-sequenced bases: revcomp of the reference slice.
  std::string fwd = std::string(reference.contig(0).sequence.substr(6, 14));
  std::string as_sequenced = compress::ReverseComplement(fwd);
  RefCompStats stats;
  EXPECT_EQ(RoundTrip(reference, as_sequenced, MappedAt(6, "14M", /*reverse=*/true), &stats),
            as_sequenced);
  EXPECT_EQ(stats.substitutions, 0);
  EXPECT_EQ(stats.ref_encoded, 1);
}

TEST(RefComp, InsertionBasesStoredVerbatim) {
  genome::ReferenceGenome reference = FixedReference();
  std::string_view ref = reference.contig(0).sequence;
  // 5M 3I 5M at location 8: read = ref[8..13) + "TTT" + ref[13..18).
  std::string bases =
      std::string(ref.substr(8, 5)) + "TTT" + std::string(ref.substr(13, 5));
  RefCompStats stats;
  EXPECT_EQ(RoundTrip(reference, bases, MappedAt(8, "5M3I5M"), &stats), bases);
  EXPECT_EQ(stats.extra_bases, 3);
  EXPECT_EQ(stats.substitutions, 0);
}

TEST(RefComp, DeletionConsumesReferenceOnly) {
  genome::ReferenceGenome reference = FixedReference();
  std::string_view ref = reference.contig(0).sequence;
  // 6M 2D 6M at location 2: read skips ref[8..10).
  std::string bases = std::string(ref.substr(2, 6)) + std::string(ref.substr(10, 6));
  RefCompStats stats;
  EXPECT_EQ(RoundTrip(reference, bases, MappedAt(2, "6M2D6M"), &stats), bases);
  EXPECT_EQ(stats.extra_bases, 0);
  EXPECT_EQ(stats.substitutions, 0);
}

TEST(RefComp, SoftClipsStoredVerbatim) {
  genome::ReferenceGenome reference = FixedReference();
  std::string_view ref = reference.contig(0).sequence;
  std::string bases = "GG" + std::string(ref.substr(20, 8)) + "C";
  RefCompStats stats;
  EXPECT_EQ(RoundTrip(reference, bases, MappedAt(20, "2S8M1S"), &stats), bases);
  EXPECT_EQ(stats.extra_bases, 3);
}

TEST(RefComp, MixedCigarWithSubstitutions) {
  genome::ReferenceGenome reference = FixedReference();
  std::string_view ref = reference.contig(0).sequence;
  // 1S 4M 2I 3M 2D 4M: bases = S + ref[5..9) + II + ref[9..12) + ref[14..18).
  std::string bases = "T" + std::string(ref.substr(5, 4)) + "CA" +
                      std::string(ref.substr(9, 3)) + std::string(ref.substr(14, 4));
  bases[3] = bases[3] == 'C' ? 'G' : 'C';  // one substitution inside the first M block
  RefCompStats stats;
  EXPECT_EQ(RoundTrip(reference, bases, MappedAt(5, "1S4M2I3M2D4M"), &stats), bases);
  EXPECT_EQ(stats.substitutions, 1);
  EXPECT_EQ(stats.extra_bases, 3);  // 1 soft clip + 2 inserted
}

TEST(RefComp, UnmappedFallsBackToRaw) {
  genome::ReferenceGenome reference = FixedReference();
  RefCompStats stats;
  EXPECT_EQ(RoundTrip(reference, "ACGTNACGT", Unmapped(), &stats), "ACGTNACGT");
  EXPECT_EQ(stats.raw_fallback, 1);
  EXPECT_EQ(stats.ref_encoded, 0);
}

TEST(RefComp, InconsistentCigarFallsBackToRaw) {
  genome::ReferenceGenome reference = FixedReference();
  RefCompStats stats;
  // CIGAR consumes 12 read bases but the read has 8.
  EXPECT_EQ(RoundTrip(reference, "ACGTACGT", MappedAt(0, "12M"), &stats), "ACGTACGT");
  EXPECT_EQ(stats.raw_fallback, 1);
}

TEST(RefComp, OffContigAlignmentFallsBackToRaw) {
  genome::ReferenceGenome reference = FixedReference();
  RefCompStats stats;
  // Alignment runs past the 40-base contig.
  EXPECT_EQ(RoundTrip(reference, "ACGTACGTAC", MappedAt(35, "10M"), &stats), "ACGTACGTAC");
  EXPECT_EQ(stats.raw_fallback, 1);
}

TEST(RefComp, NBasesRoundTrip) {
  genome::ReferenceGenome reference = FixedReference();
  std::string bases = std::string(reference.contig(0).sequence.substr(0, 8));
  bases[3] = 'N';  // N substituting a real reference base
  RefCompStats stats;
  EXPECT_EQ(RoundTrip(reference, bases, MappedAt(0, "8M"), &stats), bases);
  EXPECT_EQ(stats.substitutions, 1);
}

TEST(RefComp, DecodeRejectsCorruptRecords) {
  genome::ReferenceGenome reference = FixedReference();
  AlignmentResult result = MappedAt(4, "12M");
  Buffer encoded;
  RefCompStats stats;
  RefEncodeRead(reference, std::string(reference.contig(0).sequence.substr(4, 12)), result,
                &encoded, &stats);

  // Unknown tag.
  Buffer bad_tag;
  bad_tag.AppendByte(0x7F);
  EXPECT_FALSE(RefDecodeRead(reference, bad_tag.span(), result).ok());

  // Ref-based record paired with an unmapped result.
  EXPECT_FALSE(RefDecodeRead(reference, encoded.span(), Unmapped()).ok());

  // Empty record.
  EXPECT_FALSE(RefDecodeRead(reference, std::span<const uint8_t>(), result).ok());
}

TEST(RefComp, DecodeRejectsTruncatedRawRecord) {
  genome::ReferenceGenome reference = FixedReference();
  Buffer encoded;
  RefCompStats stats;
  RefEncodeRead(reference, "ACGTACGTACGTACGTACGTACGTACGT", Unmapped(), &encoded, &stats);
  auto truncated = encoded.span().subspan(0, encoded.size() - 1);
  EXPECT_FALSE(RefDecodeRead(reference, truncated, Unmapped()).ok());
}

TEST(RefComp, ChunkRoundTripMixedRecords) {
  genome::ReferenceGenome reference = FixedReference();
  std::string_view ref = reference.contig(0).sequence;
  std::vector<std::string> bases = {
      std::string(ref.substr(0, 10)),                     // perfect
      "NNNNNNN",                                          // unmapped
      compress::ReverseComplement(ref.substr(12, 9)),     // reverse perfect
  };
  std::vector<AlignmentResult> results = {MappedAt(0, "10M"), Unmapped(),
                                          MappedAt(12, "9M", /*reverse=*/true)};

  Buffer data;
  std::vector<uint32_t> lengths;
  RefCompStats stats = RefEncodeChunk(reference, bases, results, &data, &lengths);
  EXPECT_EQ(stats.records, 3);
  EXPECT_EQ(stats.ref_encoded, 2);
  EXPECT_EQ(stats.raw_fallback, 1);
  ASSERT_EQ(lengths.size(), 3u);

  auto decoded = RefDecodeChunk(reference, data.span(), lengths, results);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(*decoded, bases);
}

TEST(RefComp, ChunkDecodeValidatesShape) {
  genome::ReferenceGenome reference = FixedReference();
  std::vector<AlignmentResult> results = {Unmapped()};
  std::vector<uint32_t> lengths = {5, 5};  // two entries, one result
  EXPECT_FALSE(RefDecodeChunk(reference, std::span<const uint8_t>(), lengths, results).ok());

  // Record length extends past the data block.
  std::vector<uint32_t> oversized = {100};
  Buffer tiny;
  tiny.AppendByte(0);
  EXPECT_FALSE(
      RefDecodeChunk(reference, tiny.span(), oversized, std::span(results.data(), 1)).ok());
}

// Builds an internally consistent (read, CIGAR) pair by walking randomly generated ops
// over the reference, injecting substitutions in M segments and random bases for I/S.
struct FuzzRead {
  std::string bases;         // as-sequenced (reverse-complemented when reverse)
  AlignmentResult result;
};

FuzzRead MakeFuzzRead(const genome::ReferenceGenome& reference, Rng& rng) {
  const std::string& contig = reference.contig(0).sequence;
  const int64_t location = static_cast<int64_t>(rng.Uniform(contig.size() - 400));
  std::string fwd;
  std::string cigar;
  int64_t ref_pos = location;
  const int segments = 2 + static_cast<int>(rng.Uniform(4));

  auto append_op = [&cigar](int64_t len, char op) {
    cigar += std::to_string(len);
    cigar.push_back(op);
  };

  if (rng.Bernoulli(0.3)) {  // leading soft clip
    const int64_t len = 1 + static_cast<int64_t>(rng.Uniform(8));
    for (int64_t i = 0; i < len; ++i) {
      fwd.push_back("ACGT"[rng.Uniform(4)]);
    }
    append_op(len, 'S');
  }
  for (int s = 0; s < segments; ++s) {
    // M segment with occasional substitutions.
    const int64_t mlen = 10 + static_cast<int64_t>(rng.Uniform(40));
    for (int64_t i = 0; i < mlen; ++i) {
      char base = contig[static_cast<size_t>(ref_pos + i)];
      if (rng.Bernoulli(0.02)) {
        base = "ACGT"[rng.Uniform(4)];  // may coincide with the reference; still valid
      }
      fwd.push_back(base);
    }
    append_op(mlen, 'M');
    ref_pos += mlen;
    if (s + 1 == segments) {
      break;
    }
    // Connect segments with an indel.
    const int64_t indel = 1 + static_cast<int64_t>(rng.Uniform(6));
    if (rng.Bernoulli(0.5)) {
      for (int64_t i = 0; i < indel; ++i) {
        fwd.push_back("ACGT"[rng.Uniform(4)]);
      }
      append_op(indel, 'I');
    } else {
      append_op(indel, 'D');
      ref_pos += indel;
    }
  }
  if (rng.Bernoulli(0.3)) {  // trailing soft clip
    const int64_t len = 1 + static_cast<int64_t>(rng.Uniform(8));
    for (int64_t i = 0; i < len; ++i) {
      fwd.push_back("ACGT"[rng.Uniform(4)]);
    }
    append_op(len, 'S');
  }

  FuzzRead fuzz;
  fuzz.result.location = location;
  fuzz.result.cigar = cigar;
  fuzz.result.mapq = 60;
  if (rng.Bernoulli(0.5)) {
    fuzz.result.flags = kFlagReverse;
    fuzz.bases = compress::ReverseComplement(fwd);
  } else {
    fuzz.result.flags = 0;
    fuzz.bases = std::move(fwd);
  }
  return fuzz;
}

class RefCompFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RefCompFuzz, RandomCigarShapesRoundTripExactly) {
  genome::GenomeSpec gspec;
  gspec.num_contigs = 1;
  gspec.contig_length = 20'000;
  gspec.seed = GetParam();
  genome::ReferenceGenome reference = genome::GenerateGenome(gspec);

  Rng rng(GetParam() * 7919 + 13);
  std::vector<std::string> bases;
  std::vector<AlignmentResult> results;
  for (int i = 0; i < 150; ++i) {
    FuzzRead fuzz = MakeFuzzRead(reference, rng);
    bases.push_back(std::move(fuzz.bases));
    results.push_back(std::move(fuzz.result));
  }

  Buffer data;
  std::vector<uint32_t> lengths;
  RefCompStats stats = RefEncodeChunk(reference, bases, results, &data, &lengths);
  EXPECT_EQ(stats.records, 150);
  EXPECT_EQ(stats.raw_fallback, 0) << "all fuzz reads are projectable by construction";

  auto decoded = RefDecodeChunk(reference, data.span(), lengths, results);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  ASSERT_EQ(decoded->size(), bases.size());
  for (size_t i = 0; i < bases.size(); ++i) {
    EXPECT_EQ((*decoded)[i], bases[i]) << "read " << i << " cigar " << results[i].cigar;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RefCompFuzz, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(RefComp, BeatsPackedEncodingOnRealisticErrorRates) {
  genome::GenomeSpec genome_spec;
  genome_spec.num_contigs = 1;
  genome_spec.contig_length = 40'000;
  genome::ReferenceGenome reference = genome::GenerateGenome(genome_spec);

  genome::ReadSimSpec sim_spec;
  sim_spec.read_length = 101;
  sim_spec.substitution_rate = 0.005;  // Illumina-like
  sim_spec.indel_rate = 0;             // keep truth CIGARs exact
  genome::ReadSimulator simulator(&reference, sim_spec);

  Buffer data;
  std::vector<uint32_t> lengths;
  std::vector<std::string> all_bases;
  std::vector<AlignmentResult> all_results;
  RefCompStats stats;
  for (int i = 0; i < 400; ++i) {
    genome::Read read = simulator.NextRead();
    auto truth = genome::ParseReadTruth(reference, read.metadata);
    ASSERT_TRUE(truth.ok());
    auto location = reference.LocalToGlobal(truth->contig_index, truth->position);
    ASSERT_TRUE(location.ok());
    AlignmentResult result = MappedAt(*location, "101M", truth->reverse);
    all_bases.push_back(read.bases);
    all_results.push_back(result);
  }
  stats = RefEncodeChunk(reference, all_bases, all_results, &data, &lengths);

  // Every record should project cleanly (no indel errors were simulated).
  EXPECT_EQ(stats.raw_fallback, 0);
  // ~0.5 subs expected per 101-bp read; far below packed-3-bit cost (38 bytes/read).
  const int64_t packed_bytes =
      static_cast<int64_t>(all_bases.size()) *
      static_cast<int64_t>(compress::PackedBasesSize(sim_spec.read_length));
  EXPECT_LT(stats.encoded_bytes * 5, packed_bytes)
      << "reference-based encoding should be >5x smaller than 3-bit packing";

  auto decoded = RefDecodeChunk(reference, data.span(), lengths, all_results);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, all_bases);
}

}  // namespace
}  // namespace persona::format
