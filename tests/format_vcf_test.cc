// Tests for the VCF writer/parser: header structure, record round-trips, coordinate
// conventions, INFO handling, and malformed-input rejection.

#include <gtest/gtest.h>

#include "src/format/vcf.h"
#include "src/genome/generator.h"

namespace persona::format {
namespace {

genome::ReferenceGenome TestReference() {
  genome::GenomeSpec spec;
  spec.num_contigs = 2;
  spec.contig_length = 5'000;
  return genome::GenerateGenome(spec);
}

VariantRecord TestSnv() {
  VariantRecord record;
  record.contig_index = 0;
  record.position = 122;  // 0-based
  record.ref_allele = "A";
  record.alt_allele = "G";
  record.qual = 57.31;
  record.depth = 31;
  record.alt_fraction = 0.516;
  record.strand_bias = 0.04;
  record.genotype = "0/1";
  return record;
}

TEST(VcfHeader, DeclaresContigsAndFields) {
  genome::ReferenceGenome reference = TestReference();
  std::string header = VcfHeader(reference, "patient7");
  EXPECT_NE(header.find("##fileformat=VCFv4.2"), std::string::npos);
  EXPECT_NE(header.find("##contig=<ID=chr1,length=5000>"), std::string::npos);
  EXPECT_NE(header.find("##contig=<ID=chr2,length=5000>"), std::string::npos);
  EXPECT_NE(header.find("##INFO=<ID=DP"), std::string::npos);
  EXPECT_NE(header.find("##FORMAT=<ID=GT"), std::string::npos);
  EXPECT_NE(header.find("#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\tpatient7\n"),
            std::string::npos);
}

TEST(VcfRecord, WritesOneBasedPosition) {
  genome::ReferenceGenome reference = TestReference();
  std::string line;
  ASSERT_TRUE(AppendVcfRecord(reference, TestSnv(), &line).ok());
  EXPECT_NE(line.find("chr1\t123\t"), std::string::npos) << line;
  EXPECT_NE(line.find("TYPE=SNV"), std::string::npos);
  EXPECT_NE(line.find("GT\t0/1"), std::string::npos);
}

TEST(VcfRecord, RoundTripsThroughText) {
  genome::ReferenceGenome reference = TestReference();
  VariantRecord original = TestSnv();
  std::string line;
  ASSERT_TRUE(AppendVcfRecord(reference, original, &line).ok());
  ASSERT_FALSE(line.empty());
  line.pop_back();  // strip '\n'

  VariantRecord parsed;
  ASSERT_TRUE(ParseVcfRecord(reference, line, &parsed).ok());
  EXPECT_EQ(parsed.contig_index, original.contig_index);
  EXPECT_EQ(parsed.position, original.position);
  EXPECT_EQ(parsed.ref_allele, original.ref_allele);
  EXPECT_EQ(parsed.alt_allele, original.alt_allele);
  EXPECT_NEAR(parsed.qual, original.qual, 0.01);
  EXPECT_EQ(parsed.depth, original.depth);
  EXPECT_NEAR(parsed.alt_fraction, original.alt_fraction, 1e-4);
  EXPECT_NEAR(parsed.strand_bias, original.strand_bias, 1e-4);
  EXPECT_EQ(parsed.genotype, original.genotype);
  EXPECT_EQ(parsed.filter, "PASS");
}

TEST(VcfRecord, IndelTypeTagsAndShapePredicates) {
  genome::ReferenceGenome reference = TestReference();
  VariantRecord ins = TestSnv();
  ins.ref_allele = "A";
  ins.alt_allele = "ACCG";
  EXPECT_TRUE(ins.insertion());
  EXPECT_FALSE(ins.snv());
  std::string line;
  ASSERT_TRUE(AppendVcfRecord(reference, ins, &line).ok());
  EXPECT_NE(line.find("TYPE=INS"), std::string::npos);

  VariantRecord del = TestSnv();
  del.ref_allele = "ATT";
  del.alt_allele = "A";
  EXPECT_TRUE(del.deletion());
  line.clear();
  ASSERT_TRUE(AppendVcfRecord(reference, del, &line).ok());
  EXPECT_NE(line.find("TYPE=DEL"), std::string::npos);
}

TEST(VcfRecord, RejectsInvalidRecords) {
  genome::ReferenceGenome reference = TestReference();
  std::string line;

  VariantRecord bad_contig = TestSnv();
  bad_contig.contig_index = 99;
  EXPECT_FALSE(AppendVcfRecord(reference, bad_contig, &line).ok());

  VariantRecord bad_allele = TestSnv();
  bad_allele.alt_allele = "AZ";
  EXPECT_FALSE(AppendVcfRecord(reference, bad_allele, &line).ok());

  VariantRecord empty_allele = TestSnv();
  empty_allele.ref_allele.clear();
  EXPECT_FALSE(AppendVcfRecord(reference, empty_allele, &line).ok());

  VariantRecord off_end = TestSnv();
  off_end.position = 4'999;
  off_end.ref_allele = "AAA";  // runs past the 5000-base contig
  EXPECT_FALSE(AppendVcfRecord(reference, off_end, &line).ok());
}

TEST(VcfParse, RejectsMalformedLines) {
  genome::ReferenceGenome reference = TestReference();
  VariantRecord record;
  // Too few fields.
  EXPECT_FALSE(ParseVcfRecord(reference, "chr1\t5\t.\tA\tG", &record).ok());
  // Unknown contig.
  EXPECT_FALSE(
      ParseVcfRecord(reference, "chrX\t5\t.\tA\tG\t40\tPASS\tDP=9", &record).ok());
  // Zero / non-numeric position.
  EXPECT_FALSE(
      ParseVcfRecord(reference, "chr1\t0\t.\tA\tG\t40\tPASS\tDP=9", &record).ok());
  EXPECT_FALSE(
      ParseVcfRecord(reference, "chr1\tabc\t.\tA\tG\t40\tPASS\tDP=9", &record).ok());
  // Multi-allelic ALT.
  EXPECT_FALSE(
      ParseVcfRecord(reference, "chr1\t5\t.\tA\tG,T\t40\tPASS\tDP=9", &record).ok());
  // Bad allele characters.
  EXPECT_FALSE(
      ParseVcfRecord(reference, "chr1\t5\t.\tA\tg\t40\tPASS\tDP=9", &record).ok());
}

TEST(VcfParse, ToleratesMissingOptionalFields) {
  genome::ReferenceGenome reference = TestReference();
  VariantRecord record;
  // No FORMAT/sample, '.' QUAL, unknown INFO keys.
  ASSERT_TRUE(ParseVcfRecord(reference, "chr2\t10\trs1\tT\tC\t.\tq10\tFOO=1;BAR;DP=5",
                             &record)
                  .ok());
  EXPECT_EQ(record.contig_index, 1);
  EXPECT_EQ(record.position, 9);
  EXPECT_EQ(record.id, "rs1");
  EXPECT_EQ(record.qual, 0);
  EXPECT_EQ(record.filter, "q10");
  EXPECT_EQ(record.depth, 5);
  EXPECT_EQ(record.genotype, "./.");
}

TEST(VcfFile, WriteParseRoundTrip) {
  genome::ReferenceGenome reference = TestReference();
  std::vector<VariantRecord> records;
  records.push_back(TestSnv());
  VariantRecord second = TestSnv();
  second.contig_index = 1;
  second.position = 777;
  second.ref_allele = "C";
  second.alt_allele = "CTA";
  second.genotype = "1/1";
  records.push_back(second);

  std::string text = WriteVcf(reference, "s1", records);
  auto parsed = ParseVcf(reference, text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].position, records[0].position);
  EXPECT_EQ((*parsed)[1].alt_allele, "CTA");
  EXPECT_EQ((*parsed)[1].genotype, "1/1");
}

TEST(VcfFile, ParseSkipsHeadersAndBlankLines) {
  genome::ReferenceGenome reference = TestReference();
  std::string text = "##fileformat=VCFv4.2\n\n#CHROM\tstuff\nchr1\t3\t.\tG\tT\t22\tPASS\tDP=7\n";
  auto parsed = ParseVcf(reference, text);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].position, 2);
}

TEST(VcfFile, ParsePropagatesRecordErrors) {
  genome::ReferenceGenome reference = TestReference();
  EXPECT_FALSE(ParseVcf(reference, "chrNOPE\t3\t.\tG\tT\t22\tPASS\tDP=7\n").ok());
}

}  // namespace
}  // namespace persona::format
