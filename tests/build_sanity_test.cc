// Cheap library-wide invariants that catch a broken `persona` link before the
// heavier suites run: Status defaults, a known CRC-32 vector, and a varint
// round-trip across the value range.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "src/util/buffer.h"
#include "src/util/crc32.h"
#include "src/util/result.h"
#include "src/util/status.h"
#include "src/util/varint.h"

namespace persona {
namespace {

TEST(BuildSanityTest, StatusDefaultConstructsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_TRUE(status.message().empty());

  Status error(StatusCode::kNotFound, "missing");
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.code(), StatusCode::kNotFound);
  EXPECT_EQ(error.message(), "missing");
}

TEST(BuildSanityTest, Crc32KnownVector) {
  // The canonical CRC-32 check value: crc32("123456789") == 0xCBF43926.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(BuildSanityTest, VarintRoundTrip) {
  const std::vector<uint64_t> values = {
      0, 1, 127, 128, 300, 16383, 16384,
      std::numeric_limits<uint32_t>::max(),
      std::numeric_limits<uint64_t>::max()};

  Buffer encoded;
  for (uint64_t value : values) {
    PutVarint(value, &encoded);
  }

  size_t offset = 0;
  for (uint64_t expected : values) {
    Result<uint64_t> decoded = GetVarint(encoded.span(), &offset);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(*decoded, expected);
  }
  EXPECT_EQ(offset, encoded.size());
}

TEST(BuildSanityTest, SignedVarintRoundTrip) {
  const std::vector<int64_t> values = {
      0, -1, 1, -64, 63, -65, 64,
      std::numeric_limits<int64_t>::min(),
      std::numeric_limits<int64_t>::max()};

  Buffer encoded;
  for (int64_t value : values) {
    PutSignedVarint(value, &encoded);
  }

  size_t offset = 0;
  for (int64_t expected : values) {
    Result<int64_t> decoded = GetSignedVarint(encoded.span(), &offset);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(*decoded, expected);
  }
  EXPECT_EQ(offset, encoded.size());
}

}  // namespace
}  // namespace persona
