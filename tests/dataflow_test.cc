// Tests for the dataflow engine: object pools, resource manager, executor, and graphs.

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "src/dataflow/executor.h"
#include "src/dataflow/graph.h"
#include "src/dataflow/object_pool.h"
#include "src/dataflow/resource_manager.h"
#include "src/dataflow/stats.h"
#include "src/util/buffer.h"

namespace persona::dataflow {
namespace {

TEST(ObjectPoolTest, AcquireReleaseCycle) {
  auto pool = ObjectPool<Buffer>::Create(2, [] { return std::make_unique<Buffer>(); },
                                         [](Buffer* b) { b->Clear(); });
  EXPECT_EQ(pool->capacity(), 2u);
  EXPECT_EQ(pool->available(), 2u);
  {
    auto ref1 = pool->Acquire();
    auto ref2 = pool->Acquire();
    EXPECT_EQ(pool->available(), 0u);
    ref1->Append(std::string_view("data"));
    EXPECT_FALSE(pool->TryAcquire());
  }
  EXPECT_EQ(pool->available(), 2u);
}

TEST(ObjectPoolTest, RecyclerRunsOnReturn) {
  auto pool = ObjectPool<Buffer>::Create(1, [] { return std::make_unique<Buffer>(); },
                                         [](Buffer* b) { b->Clear(); });
  {
    auto ref = pool->Acquire();
    ref->Append(std::string_view("dirty"));
  }
  auto ref = pool->Acquire();
  EXPECT_EQ(ref->size(), 0u) << "recycler must clear returned buffers";
}

TEST(ObjectPoolTest, ObjectsAreReusedNotReallocated) {
  auto pool = ObjectPool<Buffer>::Create(1, [] { return std::make_unique<Buffer>(); });
  Buffer* first;
  {
    auto ref = pool->Acquire();
    first = ref.get();
  }
  auto ref = pool->Acquire();
  EXPECT_EQ(ref.get(), first);
}

TEST(ObjectPoolTest, BlockedAcquireWakesOnReturn) {
  auto pool = ObjectPool<Buffer>::Create(1, [] { return std::make_unique<Buffer>(); });
  auto held = std::make_shared<ObjectPool<Buffer>::Ref>(pool->Acquire());
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    auto ref = pool->Acquire();  // blocks until `held` returns
    acquired.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  held.reset();
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

TEST(ObjectPoolTest, MoveSemantics) {
  auto pool = ObjectPool<Buffer>::Create(1, [] { return std::make_unique<Buffer>(); });
  auto ref = pool->Acquire();
  auto moved = std::move(ref);
  EXPECT_FALSE(ref);  // NOLINT(bugprone-use-after-move): testing moved-from state
  EXPECT_TRUE(moved);
  moved = ObjectPool<Buffer>::Ref();  // releasing via assignment
  EXPECT_EQ(pool->available(), 1u);
}

TEST(ResourceManagerTest, TypedRegistryContract) {
  ResourceManager manager;
  auto buffer = std::make_shared<Buffer>();
  buffer->Append(std::string_view("ref-index"));
  ASSERT_TRUE(manager.Register<Buffer>("genome-index", buffer).ok());
  EXPECT_TRUE(manager.Has("genome-index"));
  EXPECT_EQ(manager.size(), 1u);

  auto fetched = manager.Get<Buffer>("genome-index");
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ((*fetched)->view(), "ref-index");
  EXPECT_EQ(fetched->get(), buffer.get());  // shared, not copied

  // Duplicate registration fails; wrong type fails; missing fails.
  EXPECT_EQ(manager.Register<Buffer>("genome-index", buffer).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(manager.Get<int>("genome-index").status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(manager.Get<Buffer>("nope").status().code(), StatusCode::kNotFound);
}

TEST(ExecutorTest, TaskBatchWaitsForAllTasks) {
  Executor executor(4);
  TaskBatch batch(&executor);
  std::atomic<int> done{0};
  for (int i = 0; i < 64; ++i) {
    batch.Add([&done] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      ++done;
    });
  }
  batch.Wait();
  EXPECT_EQ(done.load(), 64);
  EXPECT_EQ(executor.tasks_executed(), 64u);
}

TEST(ExecutorTest, MultipleBatchesInterleave) {
  // The Fig. 4 property: several kernels feed one executor; each batch completes
  // independently while sharing the same threads.
  Executor executor(3);
  std::atomic<int> a_done{0};
  std::atomic<int> b_done{0};
  std::thread kernel_a([&] {
    TaskBatch batch(&executor);
    for (int i = 0; i < 30; ++i) {
      batch.Add([&a_done] { ++a_done; });
    }
    batch.Wait();
    EXPECT_EQ(a_done.load(), 30);
  });
  std::thread kernel_b([&] {
    TaskBatch batch(&executor);
    for (int i = 0; i < 40; ++i) {
      batch.Add([&b_done] { ++b_done; });
    }
    batch.Wait();
    EXPECT_EQ(b_done.load(), 40);
  });
  kernel_a.join();
  kernel_b.join();
  EXPECT_EQ(executor.tasks_executed(), 70u);
}

TEST(GraphTest, LinearPipelineProcessesEverything) {
  Graph graph;
  auto q1 = Graph::MakeQueue<int>(4);
  auto q2 = Graph::MakeQueue<int>(4);

  std::atomic<int> next{0};
  graph.AddSource<int>("source", q1, [&]() -> std::optional<int> {
    int v = next.fetch_add(1);
    return v < 100 ? std::optional<int>(v) : std::nullopt;
  });
  graph.AddStage<int, int>("double", 3, q1, q2,
                           [](int&& v, MpmcQueue<int>& out) -> Status {
                             out.Push(v * 2);
                             return OkStatus();
                           });
  std::atomic<int64_t> sum{0};
  std::atomic<int> count{0};
  graph.AddSink<int>("sink", 2, q2, [&](int&& v) -> Status {
    sum += v;
    ++count;
    return OkStatus();
  });

  ASSERT_TRUE(graph.Run().ok());
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(sum.load(), 2 * 99 * 100 / 2);
}

TEST(GraphTest, StatsCountItems) {
  Graph graph;
  auto q1 = Graph::MakeQueue<int>(2);
  std::atomic<int> next{0};
  graph.AddSource<int>("source", q1, [&]() -> std::optional<int> {
    int v = next.fetch_add(1);
    return v < 10 ? std::optional<int>(v) : std::nullopt;
  });
  graph.AddSink<int>("sink", 1, q1, [](int&&) -> Status { return OkStatus(); });
  ASSERT_TRUE(graph.Run().ok());

  ASSERT_EQ(graph.stats().size(), 2u);
  EXPECT_EQ(graph.stats()[0]->name, "source");
  EXPECT_EQ(graph.stats()[0]->items.load(), 10u);
  EXPECT_EQ(graph.stats()[1]->items.load(), 10u);
}

TEST(GraphTest, StageErrorCancelsAndPropagates) {
  Graph graph;
  auto q1 = Graph::MakeQueue<int>(1);
  auto q2 = Graph::MakeQueue<int>(1);
  std::atomic<int> next{0};
  graph.AddSource<int>("source", q1, [&]() -> std::optional<int> {
    int v = next.fetch_add(1);
    return v < 1'000'000 ? std::optional<int>(v) : std::nullopt;
  });
  graph.AddStage<int, int>("failing", 1, q1, q2,
                           [](int&& v, MpmcQueue<int>& out) -> Status {
                             if (v == 5) {
                               return DataLossError("bad chunk");
                             }
                             out.Push(v);
                             return OkStatus();
                           });
  graph.AddSink<int>("sink", 1, q2, [](int&&) -> Status { return OkStatus(); });

  Status status = graph.Run();  // must terminate (not deadlock) and report the error
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_LT(next.load(), 1'000'000);  // source stopped early
}

TEST(GraphTest, FanOutStage) {
  Graph graph;
  auto q1 = Graph::MakeQueue<int>(2);
  auto q2 = Graph::MakeQueue<int>(4);
  std::atomic<int> next{0};
  graph.AddSource<int>("source", q1, [&]() -> std::optional<int> {
    int v = next.fetch_add(1);
    return v < 20 ? std::optional<int>(v) : std::nullopt;
  });
  // Each input yields two outputs.
  graph.AddStage<int, int>("fanout", 2, q1, q2,
                           [](int&& v, MpmcQueue<int>& out) -> Status {
                             out.Push(v);
                             out.Push(v);
                             return OkStatus();
                           });
  std::atomic<int> count{0};
  graph.AddSink<int>("sink", 1, q2, [&](int&&) -> Status {
    ++count;
    return OkStatus();
  });
  ASSERT_TRUE(graph.Run().ok());
  EXPECT_EQ(count.load(), 40);
}

TEST(GraphTest, RunTwiceFails) {
  Graph graph;
  auto q = Graph::MakeQueue<int>(1);
  graph.AddSource<int>("source", q, []() -> std::optional<int> { return std::nullopt; });
  graph.AddSink<int>("sink", 1, q, [](int&&) -> Status { return OkStatus(); });
  ASSERT_TRUE(graph.Run().ok());
  EXPECT_FALSE(graph.Run().ok());
}

TEST(GraphTest, MoveOnlyPayloads) {
  // Pooled buffers (move-only) must flow through queues without copying.
  auto pool = ObjectPool<Buffer>::Create(4, [] { return std::make_unique<Buffer>(); },
                                         [](Buffer* b) { b->Clear(); });
  Graph graph;
  auto q1 = Graph::MakeQueue<ObjectPool<Buffer>::Ref>(2);
  std::atomic<int> next{0};
  graph.AddSource<ObjectPool<Buffer>::Ref>(
      "source", q1, [&]() -> std::optional<ObjectPool<Buffer>::Ref> {
        if (next.fetch_add(1) >= 16) {
          return std::nullopt;
        }
        auto ref = pool->Acquire();
        ref->Append(std::string_view("payload"));
        return ref;
      });
  std::atomic<int> seen{0};
  graph.AddSink<ObjectPool<Buffer>::Ref>("sink", 2, q1,
                                         [&](ObjectPool<Buffer>::Ref&& ref) -> Status {
                                           EXPECT_EQ(ref->view(), "payload");
                                           ++seen;
                                           return OkStatus();
                                         });
  ASSERT_TRUE(graph.Run().ok());
  EXPECT_EQ(seen.load(), 16);
  EXPECT_EQ(pool->available(), 4u);  // every buffer returned to the pool
}

TEST(UtilizationSamplerTest, CapturesBusyStages) {
  Graph graph;
  auto q = Graph::MakeQueue<int>(2);
  std::atomic<int> next{0};
  graph.AddSource<int>("source", q, [&]() -> std::optional<int> {
    int v = next.fetch_add(1);
    return v < 30 ? std::optional<int>(v) : std::nullopt;
  });
  graph.AddSink<int>("busy-sink", 1, q, [](int&&) -> Status {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    return OkStatus();
  });

  UtilizationSampler sampler(&graph, 0.02, 2);
  sampler.Start();
  ASSERT_TRUE(graph.Run().ok());
  sampler.Stop();

  ASSERT_FALSE(sampler.samples().empty());
  double peak = 0;
  for (const auto& sample : sampler.samples()) {
    ASSERT_EQ(sample.per_stage.size(), 2u);
    peak = std::max(peak, sample.per_stage[1]);
    EXPECT_LE(sample.total_utilization, 1.0);
  }
  EXPECT_GT(peak, 0.5) << "sink sleeps 10ms/item: should appear busy";
}

}  // namespace
}  // namespace persona::dataflow
