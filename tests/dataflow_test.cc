// Tests for the dataflow engine: object pools, resource manager, executor, and graphs.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <vector>

#include "src/dataflow/executor.h"
#include "src/dataflow/graph.h"
#include "src/dataflow/object_pool.h"
#include "src/dataflow/resource_manager.h"
#include "src/dataflow/stats.h"
#include "src/util/buffer.h"

namespace persona::dataflow {
namespace {

TEST(ObjectPoolTest, AcquireReleaseCycle) {
  auto pool = ObjectPool<Buffer>::Create(2, [] { return std::make_unique<Buffer>(); },
                                         [](Buffer* b) { b->Clear(); });
  EXPECT_EQ(pool->capacity(), 2u);
  EXPECT_EQ(pool->available(), 2u);
  {
    auto ref1 = pool->Acquire();
    auto ref2 = pool->Acquire();
    EXPECT_EQ(pool->available(), 0u);
    ref1->Append(std::string_view("data"));
    EXPECT_FALSE(pool->TryAcquire());
  }
  EXPECT_EQ(pool->available(), 2u);
}

TEST(ObjectPoolTest, RecyclerRunsOnReturn) {
  auto pool = ObjectPool<Buffer>::Create(1, [] { return std::make_unique<Buffer>(); },
                                         [](Buffer* b) { b->Clear(); });
  {
    auto ref = pool->Acquire();
    ref->Append(std::string_view("dirty"));
  }
  auto ref = pool->Acquire();
  EXPECT_EQ(ref->size(), 0u) << "recycler must clear returned buffers";
}

TEST(ObjectPoolTest, ObjectsAreReusedNotReallocated) {
  auto pool = ObjectPool<Buffer>::Create(1, [] { return std::make_unique<Buffer>(); });
  Buffer* first;
  {
    auto ref = pool->Acquire();
    first = ref.get();
  }
  auto ref = pool->Acquire();
  EXPECT_EQ(ref.get(), first);
}

TEST(ObjectPoolTest, BlockedAcquireWakesOnReturn) {
  auto pool = ObjectPool<Buffer>::Create(1, [] { return std::make_unique<Buffer>(); });
  auto held = std::make_shared<ObjectPool<Buffer>::Ref>(pool->Acquire());
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    auto ref = pool->Acquire();  // blocks until `held` returns
    acquired.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  held.reset();
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

TEST(ObjectPoolTest, MoveSemantics) {
  auto pool = ObjectPool<Buffer>::Create(1, [] { return std::make_unique<Buffer>(); });
  auto ref = pool->Acquire();
  auto moved = std::move(ref);
  EXPECT_FALSE(ref);  // NOLINT(bugprone-use-after-move): testing moved-from state
  EXPECT_TRUE(moved);
  moved = ObjectPool<Buffer>::Ref();  // releasing via assignment
  EXPECT_EQ(pool->available(), 1u);
}

TEST(ResourceManagerTest, TypedRegistryContract) {
  ResourceManager manager;
  auto buffer = std::make_shared<Buffer>();
  buffer->Append(std::string_view("ref-index"));
  ASSERT_TRUE(manager.Register<Buffer>("genome-index", buffer).ok());
  EXPECT_TRUE(manager.Has("genome-index"));
  EXPECT_EQ(manager.size(), 1u);

  auto fetched = manager.Get<Buffer>("genome-index");
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ((*fetched)->view(), "ref-index");
  EXPECT_EQ(fetched->get(), buffer.get());  // shared, not copied

  // Duplicate registration fails; wrong type fails; missing fails.
  EXPECT_EQ(manager.Register<Buffer>("genome-index", buffer).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(manager.Get<int>("genome-index").status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(manager.Get<Buffer>("nope").status().code(), StatusCode::kNotFound);
}

TEST(ExecutorTest, TaskBatchWaitsForAllTasks) {
  Executor executor(4);
  TaskBatch batch(&executor);
  std::atomic<int> done{0};
  for (int i = 0; i < 64; ++i) {
    batch.Add([&done] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      ++done;
    });
  }
  batch.Wait();
  EXPECT_EQ(done.load(), 64);
  EXPECT_EQ(executor.tasks_executed(), 64u);
}

TEST(ExecutorTest, MultipleBatchesInterleave) {
  // The Fig. 4 property: several kernels feed one executor; each batch completes
  // independently while sharing the same threads.
  Executor executor(3);
  std::atomic<int> a_done{0};
  std::atomic<int> b_done{0};
  std::thread kernel_a([&] {
    TaskBatch batch(&executor);
    for (int i = 0; i < 30; ++i) {
      batch.Add([&a_done] { ++a_done; });
    }
    batch.Wait();
    EXPECT_EQ(a_done.load(), 30);
  });
  std::thread kernel_b([&] {
    TaskBatch batch(&executor);
    for (int i = 0; i < 40; ++i) {
      batch.Add([&b_done] { ++b_done; });
    }
    batch.Wait();
    EXPECT_EQ(b_done.load(), 40);
  });
  kernel_a.join();
  kernel_b.join();
  EXPECT_EQ(executor.tasks_executed(), 70u);
}

TEST(GraphTest, LinearPipelineProcessesEverything) {
  Graph graph;
  auto q1 = Graph::MakeQueue<int>(4);
  auto q2 = Graph::MakeQueue<int>(4);

  std::atomic<int> next{0};
  graph.AddSource<int>("source", q1, [&]() -> std::optional<int> {
    int v = next.fetch_add(1);
    return v < 100 ? std::optional<int>(v) : std::nullopt;
  });
  graph.AddStage<int, int>("double", 3, q1, q2,
                           [](int&& v, StageOutput<int>& out) -> Status {
                             return out.Push(v * 2);
                           });
  std::atomic<int64_t> sum{0};
  std::atomic<int> count{0};
  graph.AddSink<int>("sink", 2, q2, [&](int&& v) -> Status {
    sum += v;
    ++count;
    return OkStatus();
  });

  ASSERT_TRUE(graph.Run().ok());
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(sum.load(), 2 * 99 * 100 / 2);
}

TEST(GraphTest, StatsCountItems) {
  Graph graph;
  auto q1 = Graph::MakeQueue<int>(2);
  std::atomic<int> next{0};
  graph.AddSource<int>("source", q1, [&]() -> std::optional<int> {
    int v = next.fetch_add(1);
    return v < 10 ? std::optional<int>(v) : std::nullopt;
  });
  graph.AddSink<int>("sink", 1, q1, [](int&&) -> Status { return OkStatus(); });
  ASSERT_TRUE(graph.Run().ok());

  ASSERT_EQ(graph.stats().size(), 2u);
  EXPECT_EQ(graph.stats()[0]->name, "source");
  EXPECT_EQ(graph.stats()[0]->items.load(), 10u);
  EXPECT_EQ(graph.stats()[1]->items.load(), 10u);
}

TEST(GraphTest, StageErrorCancelsAndPropagates) {
  Graph graph;
  auto q1 = Graph::MakeQueue<int>(1);
  auto q2 = Graph::MakeQueue<int>(1);
  std::atomic<int> next{0};
  graph.AddSource<int>("source", q1, [&]() -> std::optional<int> {
    int v = next.fetch_add(1);
    return v < 1'000'000 ? std::optional<int>(v) : std::nullopt;
  });
  graph.AddStage<int, int>("failing", 1, q1, q2,
                           [](int&& v, StageOutput<int>& out) -> Status {
                             if (v == 5) {
                               return DataLossError("bad chunk");
                             }
                             return out.Push(v);
                           });
  graph.AddSink<int>("sink", 1, q2, [](int&&) -> Status { return OkStatus(); });

  Status status = graph.Run();  // must terminate (not deadlock) and report the error
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_LT(next.load(), 1'000'000);  // source stopped early
}

TEST(GraphTest, FanOutStage) {
  Graph graph;
  auto q1 = Graph::MakeQueue<int>(2);
  auto q2 = Graph::MakeQueue<int>(4);
  std::atomic<int> next{0};
  graph.AddSource<int>("source", q1, [&]() -> std::optional<int> {
    int v = next.fetch_add(1);
    return v < 20 ? std::optional<int>(v) : std::nullopt;
  });
  // Each input yields two outputs.
  graph.AddStage<int, int>("fanout", 2, q1, q2,
                           [](int&& v, StageOutput<int>& out) -> Status {
                             PERSONA_RETURN_IF_ERROR(out.Push(v));
                             return out.Push(v);
                           });
  std::atomic<int> count{0};
  graph.AddSink<int>("sink", 1, q2, [&](int&&) -> Status {
    ++count;
    return OkStatus();
  });
  ASSERT_TRUE(graph.Run().ok());
  EXPECT_EQ(count.load(), 40);
}

TEST(GraphTest, RunTwiceFails) {
  Graph graph;
  auto q = Graph::MakeQueue<int>(1);
  graph.AddSource<int>("source", q, []() -> std::optional<int> { return std::nullopt; });
  graph.AddSink<int>("sink", 1, q, [](int&&) -> Status { return OkStatus(); });
  ASSERT_TRUE(graph.Run().ok());
  EXPECT_FALSE(graph.Run().ok());
}

TEST(GraphTest, MoveOnlyPayloads) {
  // Pooled buffers (move-only) must flow through queues without copying.
  auto pool = ObjectPool<Buffer>::Create(4, [] { return std::make_unique<Buffer>(); },
                                         [](Buffer* b) { b->Clear(); });
  Graph graph;
  auto q1 = Graph::MakeQueue<ObjectPool<Buffer>::Ref>(2);
  std::atomic<int> next{0};
  graph.AddSource<ObjectPool<Buffer>::Ref>(
      "source", q1, [&]() -> std::optional<ObjectPool<Buffer>::Ref> {
        if (next.fetch_add(1) >= 16) {
          return std::nullopt;
        }
        auto ref = pool->Acquire();
        ref->Append(std::string_view("payload"));
        return ref;
      });
  std::atomic<int> seen{0};
  graph.AddSink<ObjectPool<Buffer>::Ref>("sink", 2, q1,
                                         [&](ObjectPool<Buffer>::Ref&& ref) -> Status {
                                           EXPECT_EQ(ref->view(), "payload");
                                           ++seen;
                                           return OkStatus();
                                         });
  ASSERT_TRUE(graph.Run().ok());
  EXPECT_EQ(seen.load(), 16);
  EXPECT_EQ(pool->available(), 4u);  // every buffer returned to the pool
}

TEST(GraphTest, OnDrainRunsOnceAtEndOfStreamAndMayEmit) {
  Graph graph;
  auto q1 = Graph::MakeQueue<int>(2);
  auto q2 = Graph::MakeQueue<int>(4);
  std::atomic<int> next{0};
  graph.AddSource<int>("source", q1, [&]() -> std::optional<int> {
    int v = next.fetch_add(1);
    return v < 10 ? std::optional<int>(v) : std::nullopt;
  });
  // The stage accumulates and only flushes its running sum at end-of-stream — the
  // cross-item-state pattern (dedup's signature set, filter's partial chunk).
  auto sum = std::make_shared<std::atomic<int>>(0);
  std::atomic<int> drains{0};
  graph.AddStage<int, int>(
      "accumulate", 3, q1, q2,
      [sum](int&& v, StageOutput<int>&) -> Status {
        sum->fetch_add(v);
        return OkStatus();
      },
      [sum, &drains](StageOutput<int>& out) -> Status {
        ++drains;
        return out.Push(sum->load());
      });
  std::vector<int> seen;
  std::mutex seen_mu;
  graph.AddSink<int>("sink", 1, q2, [&](int&& v) -> Status {
    std::lock_guard<std::mutex> lock(seen_mu);
    seen.push_back(v);
    return OkStatus();
  });
  ASSERT_TRUE(graph.Run().ok());
  EXPECT_EQ(drains.load(), 1) << "only the last worker runs the epilogue";
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], 45);
}

TEST(GraphTest, OnDrainSkippedOnCancellationAndErrorStillPropagates) {
  Graph graph;
  auto q1 = Graph::MakeQueue<int>(1);
  auto q2 = Graph::MakeQueue<int>(1);
  std::atomic<int> next{0};
  graph.AddSource<int>("source", q1, [&]() -> std::optional<int> {
    int v = next.fetch_add(1);
    return v < 100 ? std::optional<int>(v) : std::nullopt;
  });
  std::atomic<int> drains{0};
  graph.AddStage<int, int>(
      "failing", 1, q1, q2,
      [](int&& v, StageOutput<int>& out) -> Status {
        if (v == 3) {
          return DataLossError("bad item");
        }
        return out.Push(v);
      },
      [&drains](StageOutput<int>&) -> Status {
        ++drains;
        return OkStatus();
      });
  graph.AddSink<int>("sink", 1, q2, [](int&&) -> Status { return OkStatus(); });
  Status status = graph.Run();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_EQ(drains.load(), 0) << "a cancelled run must not flush end-of-stream state";
}

TEST(GraphTest, PushOntoClosedQueueIsACleanStopNotAnError) {
  // A sink error cancels the graph; an upstream stage mid-Push must then observe the
  // closed queue as kCancelled (clean stop) — the run reports the sink's error, not a
  // spurious one from the stage, and nothing deadlocks.
  Graph graph;
  auto q1 = Graph::MakeQueue<int>(1);
  auto q2 = Graph::MakeQueue<int>(1);
  std::atomic<int> next{0};
  graph.AddSource<int>("source", q1, [&]() -> std::optional<int> {
    int v = next.fetch_add(1);
    return v < 1'000'000 ? std::optional<int>(v) : std::nullopt;
  });
  std::atomic<int> push_cancelled{0};
  graph.AddStage<int, int>("forward", 1, q1, q2,
                           [&](int&& v, StageOutput<int>& out) -> Status {
                             Status status = out.Push(v);
                             if (status.code() == StatusCode::kCancelled) {
                               ++push_cancelled;
                             }
                             return status;
                           });
  graph.AddSink<int>("sink", 1, q2, [](int&& v) -> Status {
    if (v >= 5) {
      return ResourceExhaustedError("sink full");
    }
    return OkStatus();
  });
  Status status = graph.Run();  // must terminate
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted)
      << "the sink's error wins; the stage's cancelled push is not recorded";
  EXPECT_LT(next.load(), 1'000'000);
}

TEST(GraphTest, StageReturningCancelledUnwindsTheWholeGraphCleanly) {
  Graph graph;
  auto q1 = Graph::MakeQueue<int>(1);
  std::atomic<int> next{0};
  graph.AddSource<int>("source", q1, [&]() -> std::optional<int> {
    int v = next.fetch_add(1);
    return v < 1'000'000 ? std::optional<int>(v) : std::nullopt;
  });
  graph.AddSink<int>("sink", 1, q1, [](int&& v) -> Status {
    if (v >= 3) {
      return CancelledError("stop requested");
    }
    return OkStatus();
  });
  Status status = graph.Run();  // must terminate without deadlock
  EXPECT_TRUE(status.ok()) << "a requested stop is not an error";
  EXPECT_LT(next.load(), 1'000'000) << "the source must stop producing";
}

TEST(GraphTest, QueueWaitCountersSeparateStarvationFromBackpressure) {
  Graph graph;
  auto q = Graph::MakeQueue<int>(1);
  std::atomic<int> next{0};
  graph.AddSource<int>("source", q, [&]() -> std::optional<int> {
    int v = next.fetch_add(1);
    return v < 20 ? std::optional<int>(v) : std::nullopt;
  });
  graph.AddSink<int>("slow-sink", 1, q, [](int&&) -> Status {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    return OkStatus();
  });
  ASSERT_TRUE(graph.Run().ok());
  // The fast source blocks pushing into the slow sink's full queue.
  EXPECT_GT(graph.stats()[0]->output_wait_ns.load(), 10'000'000u);
  // busy_ns excludes that wait: 20 trivial next() calls are far under 10ms.
  EXPECT_LT(graph.stats()[0]->busy_ns.load(), 10'000'000u);
  // The sink is never starved for long (items are always waiting).
  EXPECT_GT(graph.stats()[1]->busy_ns.load(), 50'000'000u);
}

TEST(UtilizationSamplerTest, SamplesQueueOccupancy) {
  Graph graph;
  auto q = Graph::MakeQueue<int>(2);
  graph.ObserveQueue("work", q);
  std::atomic<int> next{0};
  graph.AddSource<int>("source", q, [&]() -> std::optional<int> {
    int v = next.fetch_add(1);
    return v < 40 ? std::optional<int>(v) : std::nullopt;
  });
  graph.AddSink<int>("slow-sink", 1, q, [](int&&) -> Status {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    return OkStatus();
  });
  UtilizationSampler sampler(&graph, 0.02, 2);
  sampler.Start();
  ASSERT_TRUE(graph.Run().ok());
  sampler.Stop();

  ASSERT_FALSE(sampler.samples().empty());
  double peak_fill = 0;
  for (const auto& sample : sampler.samples()) {
    ASSERT_EQ(sample.queue_fill.size(), 1u);
    peak_fill = std::max(peak_fill, sample.queue_fill[0]);
  }
  EXPECT_GT(peak_fill, 0.49) << "a fast source behind a slow sink keeps the queue full";
}

TEST(UtilizationSamplerTest, CapturesBusyStages) {
  Graph graph;
  auto q = Graph::MakeQueue<int>(2);
  std::atomic<int> next{0};
  graph.AddSource<int>("source", q, [&]() -> std::optional<int> {
    int v = next.fetch_add(1);
    return v < 30 ? std::optional<int>(v) : std::nullopt;
  });
  graph.AddSink<int>("busy-sink", 1, q, [](int&&) -> Status {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    return OkStatus();
  });

  UtilizationSampler sampler(&graph, 0.02, 2);
  sampler.Start();
  ASSERT_TRUE(graph.Run().ok());
  sampler.Stop();

  ASSERT_FALSE(sampler.samples().empty());
  double peak = 0;
  for (const auto& sample : sampler.samples()) {
    ASSERT_EQ(sample.per_stage.size(), 2u);
    peak = std::max(peak, sample.per_stage[1]);
    EXPECT_LE(sample.total_utilization, 1.0);
  }
  EXPECT_GT(peak, 0.5) << "sink sleeps 10ms/item: should appear busy";
}

}  // namespace
}  // namespace persona::dataflow
