// Tests for Status/Result, varint, CRC32, string utilities, RNG, and file helpers.

#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "src/storage/retry.h"
#include "src/util/crc32.h"
#include "src/util/file_util.h"
#include "src/util/result.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/string_util.h"
#include "src/util/varint.h"

namespace persona {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad chunk size");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad chunk size");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad chunk size");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(CancelledError("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(UnavailableError("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(DataLossError("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(ResourceExhaustedError("x").code(), StatusCode::kResourceExhausted);
}

Status FailsWhenNegative(int x) {
  if (x < 0) {
    return InvalidArgumentError("negative");
  }
  return OkStatus();
}

Status UsesReturnIfError(int x) {
  PERSONA_RETURN_IF_ERROR(FailsWhenNegative(x));
  return OkStatus();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) {
    return OutOfRangeError("not positive");
  }
  return x;
}

Result<int> DoublePositive(int x) {
  PERSONA_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> ok = ParsePositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 21);

  Result<int> err = ParsePositive(-3);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(err.value_or(7), 7);
}

TEST(ResultTest, AssignOrReturnChains) {
  EXPECT_EQ(*DoublePositive(5), 10);
  EXPECT_FALSE(DoublePositive(0).ok());
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(9));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 9);
}

TEST(VarintTest, RoundTripBoundaryValues) {
  const uint64_t values[] = {0,    1,    127,        128,         16383, 16384,
                             1u << 21, (1ull << 35) - 1, 1ull << 62, ~0ull};
  Buffer buf;
  for (uint64_t v : values) {
    PutVarint(v, &buf);
  }
  size_t offset = 0;
  for (uint64_t v : values) {
    auto got = GetVarint(buf.span(), &offset);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
  EXPECT_EQ(offset, buf.size());
}

TEST(VarintTest, SignedZigZagRoundTrip) {
  const int64_t values[] = {0, -1, 1, -64, 64, INT64_MIN, INT64_MAX, -123456789};
  Buffer buf;
  for (int64_t v : values) {
    PutSignedVarint(v, &buf);
  }
  size_t offset = 0;
  for (int64_t v : values) {
    auto got = GetSignedVarint(buf.span(), &offset);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
}

TEST(VarintTest, TruncatedInputIsError) {
  Buffer buf;
  PutVarint(1ull << 40, &buf);
  Buffer truncated;
  truncated.Append(buf.data(), buf.size() - 1);
  size_t offset = 0;
  EXPECT_FALSE(GetVarint(truncated.span(), &offset).ok());
}

TEST(VarintTest, LengthMatchesEncoding) {
  Buffer buf;
  for (uint64_t v : {0ull, 127ull, 128ull, 300ull, ~0ull}) {
    buf.Clear();
    PutVarint(v, &buf);
    EXPECT_EQ(VarintLength(v), buf.size()) << v;
  }
}

TEST(Crc32Test, KnownVectors) {
  // Standard test vector: CRC32("123456789") = 0xCBF43926.
  EXPECT_EQ(Crc32(std::string_view("123456789")), 0xCBF43926u);
  EXPECT_EQ(Crc32(std::string_view("")), 0u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t one_shot = Crc32(std::string_view(data));
  uint32_t crc = 0;
  for (size_t i = 0; i < data.size(); i += 7) {
    std::string_view piece = std::string_view(data).substr(i, 7);
    crc = Crc32Update(crc, std::span<const uint8_t>(
                               reinterpret_cast<const uint8_t*>(piece.data()), piece.size()));
  }
  EXPECT_EQ(crc, one_shot);
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = SplitString("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, JoinAndAffixes) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, "/"), "a/b/c");
  EXPECT_TRUE(StartsWith("chunk-0.bases", "chunk-"));
  EXPECT_TRUE(EndsWith("chunk-0.bases", ".bases"));
  EXPECT_FALSE(EndsWith("x", ".bases"));
}

TEST(StringUtilTest, FormatAndHumanBytes) {
  EXPECT_EQ(StrFormat("%d/%s", 3, "four"), "3/four");
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(3670016), "3.50 MB");
}

TEST(StringUtilTest, ParseInt64) {
  EXPECT_EQ(ParseInt64("0"), 0);
  EXPECT_EQ(ParseInt64("123456"), 123456);
  EXPECT_EQ(ParseInt64(""), -1);
  EXPECT_EQ(ParseInt64("12x"), -1);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NormalHasRoughMoments) {
  Rng rng(11);
  double sum = 0;
  double sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(10.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(FileUtilTest, RoundTripAndMetadata) {
  ScopedTempDir dir("futest");
  std::string path = dir.FilePath("data.bin");
  EXPECT_FALSE(FileExists(path));
  ASSERT_TRUE(WriteStringToFile(path, "hello persona").ok());
  EXPECT_TRUE(FileExists(path));
  auto size = FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 13u);
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "hello persona");
  ASSERT_TRUE(RemoveFile(path).ok());
  EXPECT_FALSE(FileExists(path));
}

TEST(FileUtilTest, BufferRoundTrip) {
  ScopedTempDir dir("futest");
  std::string path = dir.FilePath("buf.bin");
  Buffer out;
  for (int i = 0; i < 1000; ++i) {
    out.AppendByte(static_cast<uint8_t>(i * 31));
  }
  ASSERT_TRUE(WriteBufferToFile(path, out).ok());
  Buffer in;
  ASSERT_TRUE(ReadFileToBuffer(path, &in).ok());
  ASSERT_EQ(in.size(), out.size());
  EXPECT_EQ(0, memcmp(in.data(), out.data(), in.size()));
}

TEST(FileUtilTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadFileToString("/nonexistent/persona/file").status().code(),
            StatusCode::kNotFound);
}

TEST(BufferTest, ScalarRoundTrip) {
  Buffer buf;
  buf.AppendScalar<uint32_t>(0xDEADBEEF);
  buf.AppendScalar<uint64_t>(0x0123456789ABCDEFull);
  EXPECT_EQ(buf.ReadScalar<uint32_t>(0), 0xDEADBEEFu);
  EXPECT_EQ(buf.ReadScalar<uint64_t>(4), 0x0123456789ABCDEFull);
}

TEST(BufferTest, ClearKeepsCapacity) {
  Buffer buf;
  buf.Resize(4096);
  size_t cap = buf.capacity();
  buf.Clear();
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_GE(buf.capacity(), cap);
}

TEST(StatusTest, DeadlineExceededConstructor) {
  Status s = DeadlineExceededError("recv: timed out");
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(s.ToString(), "DeadlineExceeded: recv: timed out");
  EXPECT_EQ(StatusCodeName(StatusCode::kDeadlineExceeded), "DeadlineExceeded");
}

TEST(StatusTest, IsTransientTruthTable) {
  // Retryable: the op may succeed if simply re-attempted.
  EXPECT_TRUE(IsTransient(StatusCode::kUnavailable));
  EXPECT_TRUE(IsTransient(StatusCode::kDeadlineExceeded));
  // Permanent: retrying cannot help (wrong input, gone data, logic error).
  EXPECT_FALSE(IsTransient(StatusCode::kOk));
  EXPECT_FALSE(IsTransient(StatusCode::kNotFound));
  EXPECT_FALSE(IsTransient(StatusCode::kDataLoss));
  EXPECT_FALSE(IsTransient(StatusCode::kInvalidArgument));
  EXPECT_FALSE(IsTransient(StatusCode::kFailedPrecondition));
  EXPECT_FALSE(IsTransient(StatusCode::kInternal));
  EXPECT_FALSE(IsTransient(StatusCode::kResourceExhausted));

  EXPECT_TRUE(IsTransient(UnavailableError("node down")));
  EXPECT_FALSE(IsTransient(OkStatus()));  // nothing to retry
  EXPECT_FALSE(IsTransient(DataLossError("bad crc")));
}

TEST(FileUtilTest, WriteFileAtomicCreatesAndReplaces) {
  ScopedTempDir dir("atomic");
  const std::string path = dir.FilePath("manifest.json");
  ASSERT_TRUE(WriteFileAtomic(path, "v1").ok());
  auto first = ReadFileToString(path);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, "v1");

  // Replace is whole-file: readers see v1 or v2, never a splice.
  ASSERT_TRUE(WriteFileAtomic(path, "v2 with longer contents").ok());
  auto second = ReadFileToString(path);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, "v2 with longer contents");

  // The temp file was renamed away, not left behind.
  size_t entries = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path())) {
    ++entries;
    EXPECT_EQ(entry.path().filename(), "manifest.json");
  }
  EXPECT_EQ(entries, 1u);
}

TEST(FileUtilTest, WriteFileAtomicFailsCleanOnBadDirectory) {
  EXPECT_FALSE(WriteFileAtomic("/nonexistent/persona/dir/file", "x").ok());
}

TEST(RetryTest, TransientFailuresRecoverWithCounters) {
  storage::RetryPolicy policy = storage::RetryPolicy::Default();
  policy.initial_backoff_sec = 1e-6;
  policy.max_backoff_sec = 1e-5;
  storage::RetryCounters counters;
  int calls = 0;
  Status status = storage::RunWithRetry(policy, &counters, "key", [&]() -> Status {
    return ++calls < 3 ? UnavailableError("flaky") : OkStatus();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(counters.retries.load(), 2u);
  EXPECT_EQ(counters.give_ups.load(), 0u);
}

TEST(RetryTest, PermanentFailuresAreNeverRetried) {
  storage::RetryPolicy policy = storage::RetryPolicy::Default();
  storage::RetryCounters counters;
  int calls = 0;
  Status status = storage::RunWithRetry(policy, &counters, "key", [&]() -> Status {
    ++calls;
    return DataLossError("bad crc");
  });
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(counters.retries.load(), 0u);
  EXPECT_EQ(counters.give_ups.load(), 0u);  // permanent errors are not give-ups
}

TEST(RetryTest, ExhaustedBudgetGivesUpWithLastError) {
  storage::RetryPolicy policy = storage::RetryPolicy::Default();
  policy.max_attempts = 3;
  policy.initial_backoff_sec = 1e-6;
  storage::RetryCounters counters;
  int calls = 0;
  Status status = storage::RunWithRetry(policy, &counters, "key", [&]() -> Status {
    ++calls;
    return UnavailableError("still down");
  });
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(counters.retries.load(), 2u);
  EXPECT_EQ(counters.give_ups.load(), 1u);
}

TEST(RetryTest, DisabledPolicyIsSingleShot) {
  storage::RetryPolicy policy;  // max_attempts = 1
  EXPECT_FALSE(policy.enabled());
  int calls = 0;
  Status status = storage::RunWithRetry(policy, nullptr, "key", [&]() -> Status {
    ++calls;
    return UnavailableError("down");
  });
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, BackoffIsDeterministicBoundedAndGrows) {
  storage::RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff_sec = 0.001;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_sec = 0.01;
  policy.jitter = 0.25;
  double previous = 0;
  for (int attempt = 2; attempt <= 6; ++attempt) {
    const double a = storage::retry_internal::BackoffSec(policy, attempt, "chunk-3");
    const double b = storage::retry_internal::BackoffSec(policy, attempt, "chunk-3");
    EXPECT_EQ(a, b);  // same (key, attempt) -> same jitter: runs reproduce
    EXPECT_LE(a, policy.max_backoff_sec * (1 + policy.jitter));
    EXPECT_GT(a, 0);
    if (attempt <= 4) {
      EXPECT_GT(a, previous * 1.2);  // grows roughly exponentially below the cap
      previous = a;
    }
  }
  // Different keys decorrelate their sleeps.
  EXPECT_NE(storage::retry_internal::BackoffSec(policy, 2, "chunk-3"),
            storage::retry_internal::BackoffSec(policy, 2, "chunk-4"));
}

}  // namespace
}  // namespace persona
