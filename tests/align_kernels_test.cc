// Tests for alignment kernels: banded edit distance (vs full-DP oracle), Smith-Waterman,
// and alignment record encoding.

#include <gtest/gtest.h>

#include "src/align/alignment.h"
#include "src/align/edit_distance.h"
#include "src/align/smith_waterman.h"
#include "src/util/rng.h"

namespace persona::align {
namespace {

TEST(LandauVishkinTest, ExactMatch) {
  std::string cigar;
  EXPECT_EQ(LandauVishkin("ACGTACGT", "ACGTACGT", 3, &cigar), 0);
  EXPECT_EQ(cigar, "8M");
}

TEST(LandauVishkinTest, SingleSubstitution) {
  std::string cigar;
  EXPECT_EQ(LandauVishkin("ACGTACGT", "ACGAACGT", 3, &cigar), 1);
  EXPECT_EQ(cigar, "8M");  // substitutions stay inside M runs
}

TEST(LandauVishkinTest, SingleInsertion) {
  // Pattern has an extra base relative to text.
  EXPECT_EQ(LandauVishkin("ACGTACGT", "ACGTTACGT", 3), 1);
}

TEST(LandauVishkinTest, SingleDeletion) {
  EXPECT_EQ(LandauVishkin("ACGTACGT", "ACGACGT", 3), 1);
}

TEST(LandauVishkinTest, ExceedsBound) {
  EXPECT_EQ(LandauVishkin("AAAAAAAA", "TTTTTTTT", 3), -1);
}

TEST(LandauVishkinTest, EmptyPattern) {
  std::string cigar = "junk";
  EXPECT_EQ(LandauVishkin("ACGT", "", 2, &cigar), 0);
  EXPECT_EQ(cigar, "");
}

TEST(LandauVishkinTest, TrailingTextIsFree) {
  // Semi-global: extra text after the pattern costs nothing.
  EXPECT_EQ(LandauVishkin("ACGTACGTAAAAAAAA", "ACGTACGT", 3), 0);
}

TEST(LandauVishkinTest, MatchesFullDpOracleOnRandomInputs) {
  Rng rng(99);
  static const char kBases[] = {'A', 'C', 'G', 'T'};
  for (int trial = 0; trial < 300; ++trial) {
    int len = 20 + static_cast<int>(rng.Uniform(60));
    std::string text;
    for (int i = 0; i < len; ++i) {
      text.push_back(kBases[rng.Uniform(4)]);
    }
    // Derive the pattern by mutating the text a bounded number of times.
    std::string pattern = text;
    int edits = static_cast<int>(rng.Uniform(5));
    for (int e = 0; e < edits && !pattern.empty(); ++e) {
      size_t pos = rng.Uniform(pattern.size());
      switch (rng.Uniform(3)) {
        case 0:
          pattern[pos] = kBases[rng.Uniform(4)];
          break;
        case 1:
          pattern.insert(pattern.begin() + static_cast<int64_t>(pos), kBases[rng.Uniform(4)]);
          break;
        default:
          pattern.erase(pattern.begin() + static_cast<int64_t>(pos));
          break;
      }
    }
    // Oracle: semi-global distance = min over text prefixes of full edit distance.
    int oracle = INT32_MAX;
    for (size_t cut = 0; cut <= text.size(); ++cut) {
      oracle = std::min(oracle, FullEditDistance(std::string_view(text).substr(0, cut),
                                                 pattern));
    }
    constexpr int kMaxK = 8;
    int got = LandauVishkin(text, pattern, kMaxK);
    if (oracle <= kMaxK) {
      EXPECT_EQ(got, oracle) << "text=" << text << " pattern=" << pattern;
    } else {
      EXPECT_EQ(got, -1) << "text=" << text << " pattern=" << pattern;
    }
  }
}

TEST(LandauVishkinTest, CigarConsumesWholePattern) {
  Rng rng(7);
  static const char kBases[] = {'A', 'C', 'G', 'T'};
  for (int trial = 0; trial < 100; ++trial) {
    std::string text;
    for (int i = 0; i < 60; ++i) {
      text.push_back(kBases[rng.Uniform(4)]);
    }
    std::string pattern = text.substr(5, 40);
    pattern[10] = pattern[10] == 'A' ? 'C' : 'A';
    std::string cigar;
    int dist = LandauVishkin(std::string_view(text).substr(5), pattern, 4, &cigar);
    ASSERT_GE(dist, 0);
    // Sum of M+I runs must equal the pattern length.
    int64_t consumed = 0;
    int64_t run = 0;
    for (char c : cigar) {
      if (c >= '0' && c <= '9') {
        run = run * 10 + (c - '0');
      } else {
        if (c == 'M' || c == 'I') {
          consumed += run;
        }
        run = 0;
      }
    }
    EXPECT_EQ(consumed, static_cast<int64_t>(pattern.size())) << cigar;
  }
}

TEST(FullEditDistanceTest, KnownValues) {
  EXPECT_EQ(FullEditDistance("", ""), 0);
  EXPECT_EQ(FullEditDistance("abc", ""), 3);
  EXPECT_EQ(FullEditDistance("", "abc"), 3);
  EXPECT_EQ(FullEditDistance("kitten", "sitting"), 3);
  EXPECT_EQ(FullEditDistance("ACGT", "ACGT"), 0);
}

TEST(SmithWatermanTest, ExactSubstring) {
  SwResult r = SmithWaterman("TTTTACGTACGTTTTT", "ACGTACGT");
  EXPECT_EQ(r.score, 16);  // 8 matches * 2
  EXPECT_EQ(r.ref_begin, 4);
  EXPECT_EQ(r.ref_end, 12);
  EXPECT_EQ(r.query_begin, 0);
  EXPECT_EQ(r.query_end, 8);
  EXPECT_EQ(r.cigar, "8M");
}

TEST(SmithWatermanTest, MismatchInMiddle) {
  SwResult r = SmithWaterman("AAAACGTACGTAAA", "ACGTCCGT");
  EXPECT_GT(r.score, 0);
  EXPECT_LE(r.score, 16);
}

TEST(SmithWatermanTest, GapIsScoredAffine) {
  // Query = reference with a 2-base deletion; one gap open + extend beats two opens.
  std::string ref = "ACGTACGTACGTACGTACGT";
  std::string query = ref;
  query.erase(8, 2);
  SwResult r = SmithWaterman(ref, query);
  EXPECT_NE(r.cigar.find('D'), std::string::npos);
  // 18 matches, one 2-base gap: 18*2 + (-5 -1 -1) = 29
  EXPECT_EQ(r.score, 29);
}

TEST(SmithWatermanTest, InsertionInQuery) {
  std::string ref = "ACGTACGTACGTACGTACGT";
  std::string query = ref;
  query.insert(10, "CC");
  SwResult r = SmithWaterman(ref, query);
  EXPECT_NE(r.cigar.find('I'), std::string::npos);
}

TEST(SmithWatermanTest, NoAlignmentOnDisjointAlphabets) {
  SwResult r = SmithWaterman("AAAAAAA", "TTTTTTT");
  EXPECT_EQ(r.score, 0);
  EXPECT_TRUE(r.cigar.empty());
}

TEST(SmithWatermanTest, EmptyInputs) {
  EXPECT_EQ(SmithWaterman("", "ACGT").score, 0);
  EXPECT_EQ(SmithWaterman("ACGT", "").score, 0);
}

TEST(SmithWatermanTest, LocalAlignmentClipsNoise) {
  // Query: 10 junk + perfect 20-mer + 10 junk. Local alignment should pick the core.
  std::string core = "ACGTTGCAACGTTGCAACGT";
  std::string ref = "GGGG" + core + "GGGG";
  std::string query = "TTTTTTTTTT" + core + "CCCCCCCCCC";
  SwResult r = SmithWaterman(ref, query);
  EXPECT_EQ(r.query_begin, 10);
  EXPECT_EQ(r.query_end, 30);
  EXPECT_EQ(r.score, 40);
}

// Re-scores a SW result by walking its CIGAR over the aligned windows. Any divergence
// from result.score means the traceback took a path the DP did not (the bug class where
// gaps fragment because per-cell backtrack ops cannot represent staying inside a gap).
int RescoreFromCigar(std::string_view ref, std::string_view query, const SwResult& r,
                     const SwParams& params = {}) {
  auto ops = ParseCigar(r.cigar);
  EXPECT_TRUE(ops.ok());
  int score = 0;
  int qi = r.query_begin;
  int rj = r.ref_begin;
  for (const CigarOp& op : *ops) {
    switch (op.op) {
      case 'M':
        for (int64_t k = 0; k < op.length; ++k, ++qi, ++rj) {
          score += query[static_cast<size_t>(qi)] == ref[static_cast<size_t>(rj)]
                       ? params.match
                       : params.mismatch;
        }
        break;
      case 'D':
        score += params.gap_open + static_cast<int>(op.length) * params.gap_extend;
        rj += static_cast<int>(op.length);
        break;
      case 'I':
        score += params.gap_open + static_cast<int>(op.length) * params.gap_extend;
        qi += static_cast<int>(op.length);
        break;
      default:
        ADD_FAILURE() << "unexpected op " << op.op;
    }
  }
  EXPECT_EQ(qi, r.query_end);
  EXPECT_EQ(rj, r.ref_end);
  return score;
}

TEST(SmithWatermanTest, MultiBaseDeletionStaysContiguous) {
  // Regression: the traceback must keep a 6-base deletion as one run ("...6D...") and
  // not fragment it into short gaps whose total cost exceeds the reported score.
  std::string ref = "ACCTGATCGATTAGCAGTAGGGTTCAGGACTTACGGATC";
  std::string query = "ACCTGATCGATTAGCATTCAGGACTTACGGATC";  // "GTAGGG" deleted
  SwResult r = SmithWaterman(ref, query);
  EXPECT_EQ(r.cigar, "16M6D17M");
  EXPECT_EQ(RescoreFromCigar(ref, query, r), r.score);
}

TEST(SmithWatermanTest, MultiBaseInsertionStaysContiguous) {
  std::string ref = "ACCTGATCGATTAGCATTCAGGACTTACGGATC";
  std::string query = "ACCTGATCGATTAGCATATCCAGTTCAGGACTTACGGATC";
  SwResult r = SmithWaterman(ref, query);
  auto ops = ParseCigar(r.cigar);
  ASSERT_TRUE(ops.ok());
  int insertion_runs = 0;
  for (const CigarOp& op : *ops) {
    insertion_runs += op.op == 'I' ? 1 : 0;
  }
  EXPECT_EQ(insertion_runs, 1) << r.cigar;
  EXPECT_EQ(RescoreFromCigar(ref, query, r), r.score);
}

TEST(SmithWatermanTest, CigarScoreMatchesDpScoreOnRandomInputs) {
  // Property sweep: mutate a reference slice with substitutions and one indel, align,
  // and check the emitted CIGAR actually achieves the DP score.
  Rng rng(2024);
  const char* alphabet = "ACGT";
  for (int trial = 0; trial < 200; ++trial) {
    std::string ref;
    for (int i = 0; i < 120; ++i) {
      ref.push_back(alphabet[rng.Uniform(4)]);
    }
    std::string query = ref.substr(10, 80);
    for (int s = 0; s < 3; ++s) {
      query[rng.Uniform(query.size())] = alphabet[rng.Uniform(4)];
    }
    const size_t cut = 10 + rng.Uniform(40);
    const size_t indel_len = 1 + rng.Uniform(6);
    if (rng.Bernoulli(0.5)) {
      query.erase(cut, indel_len);  // deletion vs reference
    } else {
      std::string inserted;
      for (size_t k = 0; k < indel_len; ++k) {
        inserted.push_back(alphabet[rng.Uniform(4)]);
      }
      query.insert(cut, inserted);
    }
    SwResult r = SmithWaterman(ref, query);
    if (r.score > 0) {
      EXPECT_EQ(RescoreFromCigar(ref, query, r), r.score) << "trial " << trial;
    }
  }
}

TEST(AlignmentRecordTest, EncodeDecodeRoundTrip) {
  AlignmentResult original;
  original.location = 123456789;
  original.mate_location = 123457089;
  original.template_length = -401;
  original.flags = kFlagPaired | kFlagReverse | kFlagFirstInPair;
  original.mapq = 60;
  original.edit_distance = 3;
  original.score = -3;
  original.cigar = "50M1I50M";

  Buffer buf;
  EncodeResult(original, &buf);
  AlignmentResult decoded;
  size_t offset = 0;
  ASSERT_TRUE(DecodeResult(buf.span(), &offset, &decoded).ok());
  EXPECT_EQ(offset, buf.size());
  EXPECT_EQ(decoded, original);
}

TEST(AlignmentRecordTest, UnmappedRoundTrip) {
  AlignmentResult unmapped;
  Buffer buf;
  EncodeResult(unmapped, &buf);
  AlignmentResult decoded;
  size_t offset = 0;
  ASSERT_TRUE(DecodeResult(buf.span(), &offset, &decoded).ok());
  EXPECT_EQ(decoded, unmapped);
  EXPECT_FALSE(decoded.mapped());
}

TEST(AlignmentRecordTest, SequentialRecordsDecode) {
  Buffer buf;
  std::vector<AlignmentResult> originals;
  for (int i = 0; i < 10; ++i) {
    AlignmentResult r;
    r.location = i * 1000;
    r.flags = i % 2 == 0 ? 0 : kFlagReverse;
    r.mapq = static_cast<uint8_t>(i * 6);
    r.cigar = std::to_string(100 + i) + "M";
    originals.push_back(r);
    EncodeResult(r, &buf);
  }
  size_t offset = 0;
  for (const AlignmentResult& expected : originals) {
    AlignmentResult got;
    ASSERT_TRUE(DecodeResult(buf.span(), &offset, &got).ok());
    EXPECT_EQ(got, expected);
  }
  EXPECT_EQ(offset, buf.size());
}

TEST(AlignmentRecordTest, TruncatedDecodeFails) {
  AlignmentResult r;
  r.location = 42;
  r.cigar = "101M";
  Buffer buf;
  EncodeResult(r, &buf);
  Buffer truncated;
  truncated.Append(buf.data(), buf.size() - 2);
  AlignmentResult decoded;
  size_t offset = 0;
  EXPECT_FALSE(DecodeResult(truncated.span(), &offset, &decoded).ok());
}

TEST(CigarTest, ReferenceSpan) {
  EXPECT_EQ(CigarReferenceSpan("101M"), 101);
  EXPECT_EQ(CigarReferenceSpan("50M2I49M"), 99);
  EXPECT_EQ(CigarReferenceSpan("50M2D49M"), 101);
  EXPECT_EQ(CigarReferenceSpan("10S91M"), 91);
  EXPECT_EQ(CigarReferenceSpan(""), 0);
}

}  // namespace
}  // namespace persona::align
