// Tests for the cluster layer: manifest server, multi-node runner, and the DES
// scaling simulator (linear region, saturation knee, balance).

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "src/align/snap_aligner.h"
#include "src/cluster/cluster_runner.h"
#include "src/cluster/des_sim.h"
#include "src/cluster/manifest_server.h"
#include "src/genome/generator.h"
#include "src/genome/read_simulator.h"
#include "src/pipeline/agd_store_util.h"
#include "src/storage/memory_store.h"

namespace persona::cluster {
namespace {

TEST(ManifestServerTest, EachChunkHandedOutOnce) {
  ManifestServer server(100, 4);
  std::set<size_t> seen;
  std::mutex mu;
  std::vector<std::thread> nodes;
  for (size_t node = 0; node < 4; ++node) {
    nodes.emplace_back([&, node] {
      while (auto chunk = server.Next(node)) {
        std::lock_guard<std::mutex> lock(mu);
        EXPECT_TRUE(seen.insert(*chunk).second) << "chunk dispensed twice";
      }
    });
  }
  for (auto& t : nodes) {
    t.join();
  }
  EXPECT_EQ(seen.size(), 100u);
  uint64_t total = 0;
  for (uint64_t count : server.per_node_chunks()) {
    total += count;
  }
  EXPECT_EQ(total, 100u);
}

class ClusterRunnerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    genome::GenomeSpec gspec;
    gspec.num_contigs = 1;
    gspec.contig_length = 30'000;
    reference_ = new genome::ReferenceGenome(genome::GenerateGenome(gspec));
    align::SeedIndexOptions options;
    options.seed_length = 20;
    index_ = new align::SeedIndex(align::SeedIndex::Build(*reference_, options).value());
    aligner_ = new align::SnapAligner(reference_, index_);
  }
  static void TearDownTestSuite() {
    delete aligner_;
    delete index_;
    delete reference_;
  }

  static genome::ReferenceGenome* reference_;
  static align::SeedIndex* index_;
  static align::SnapAligner* aligner_;
};

genome::ReferenceGenome* ClusterRunnerTest::reference_ = nullptr;
align::SeedIndex* ClusterRunnerTest::index_ = nullptr;
align::SnapAligner* ClusterRunnerTest::aligner_ = nullptr;

TEST_F(ClusterRunnerTest, MultiNodeAlignsWholeDataset) {
  genome::ReadSimSpec rspec;
  genome::ReadSimulator sim(reference_, rspec);
  auto reads = sim.Simulate(600);

  storage::MemoryStore store;
  auto manifest = pipeline::WriteAgdToStore(&store, "cl", reads, 100);  // 6 chunks
  ASSERT_TRUE(manifest.ok());

  ClusterOptions options;
  options.num_nodes = 3;
  options.threads_per_node = 1;
  options.node_options.read_parallelism = 1;
  options.node_options.parse_parallelism = 1;
  options.node_options.align_nodes = 1;
  options.node_options.write_parallelism = 1;
  auto report = RunCluster(&store, *manifest, *aligner_, options);
  ASSERT_TRUE(report.ok());

  EXPECT_EQ(report->total_reads, 600u);
  EXPECT_GT(report->gigabases_per_sec, 0);
  ASSERT_EQ(report->node_seconds.size(), 3u);
  ASSERT_EQ(report->node_chunks.size(), 3u);
  uint64_t chunk_total = 0;
  for (uint64_t c : report->node_chunks) {
    chunk_total += c;
  }
  EXPECT_EQ(chunk_total, 6u);
  // Every chunk's results object must exist.
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(store.Exists("cl-" + std::to_string(i) + ".results"));
  }
  EXPECT_GE(report->imbalance(), 0);
  EXPECT_LE(report->imbalance(), 1);
}

TEST(DesSimTest, ScalesLinearlyBeforeSaturation) {
  DesParams params;
  params.num_chunks = 400;  // smaller dataset: faster simulation, same shape
  auto points = SimulateScaling(params, {1, 2, 4, 8, 16, 32});
  ASSERT_EQ(points.size(), 6u);
  // Linear region: each doubling of nodes roughly doubles throughput.
  for (size_t i = 1; i < points.size(); ++i) {
    double ratio = points[i].gigabases_per_sec / points[i - 1].gigabases_per_sec;
    EXPECT_GT(ratio, 1.8) << "nodes " << points[i].nodes;
    EXPECT_LT(ratio, 2.2) << "nodes " << points[i].nodes;
  }
  // Absolute anchor: 32 nodes ~ 32 * 45.45 Mbases/s ~ 1.45 Gbases/s (paper: 1.353
  // including the write tail on the full dataset).
  EXPECT_GT(points.back().gigabases_per_sec, 1.2);
  EXPECT_LT(points.back().gigabases_per_sec, 1.6);
}

TEST(DesSimTest, SaturatesNearSixtyNodes) {
  DesParams params;
  params.num_chunks = 800;
  auto points = SimulateScaling(params, {40, 50, 60, 70, 80, 100});
  // Below the knee: still scaling. Past the knee: flat.
  double at40 = points[0].gigabases_per_sec;
  double at60 = points[2].gigabases_per_sec;
  double at80 = points[4].gigabases_per_sec;
  double at100 = points[5].gigabases_per_sec;
  EXPECT_GT(at60 / at40, 1.3);             // 40 -> 60 still mostly linear
  EXPECT_LT(at100 / at80, 1.05);           // 80 -> 100 flat (saturated)
  EXPECT_LT(at100 / at60, 1.15);           // the knee is near 60
  // At saturation the write channel is the limiting resource.
  EXPECT_GT(points[5].write_utilization, 0.9);
  EXPECT_LT(points[5].read_utilization, 0.6);
}

TEST(DesSimTest, SixteenPointSevenSecondsAt32Nodes) {
  // The paper's headline: full dataset (2231 chunks), 32 nodes, ~16.7 s.
  DesParams params;
  DesPoint point = SimulateCluster(params, 32);
  EXPECT_GT(point.seconds, 14.0);
  EXPECT_LT(point.seconds, 20.0);
  EXPECT_GT(point.gigabases_per_sec, 1.1);
  EXPECT_LT(point.gigabases_per_sec, 1.6);
}

TEST(DesSimTest, DeterministicForSeed) {
  DesParams params;
  params.num_chunks = 200;
  DesPoint a = SimulateCluster(params, 8);
  DesPoint b = SimulateCluster(params, 8);
  EXPECT_EQ(a.seconds, b.seconds);
}

TEST(DesSimTest, WriteVolumeDrivesSaturation) {
  // Shrinking the results column (smaller chunk_write_mb) pushes the knee out: at 100
  // nodes the heavy configuration is write-saturated while the light one is not.
  DesParams heavy;
  heavy.num_chunks = 2'000;  // enough chunks that pipeline ramp effects are small
  DesParams light = heavy;
  light.chunk_write_mb = 0.5;
  DesPoint heavy_at_100 = SimulateCluster(heavy, 100);
  DesPoint light_at_100 = SimulateCluster(light, 100);
  EXPECT_GT(light_at_100.gigabases_per_sec, heavy_at_100.gigabases_per_sec * 1.3);
  EXPECT_GT(heavy_at_100.write_utilization, 0.9);
  EXPECT_LT(light_at_100.write_utilization, 0.5);
}

}  // namespace
}  // namespace persona::cluster
