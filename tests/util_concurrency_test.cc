// Tests for the concurrency primitives: MPMC queue, thread pool, token bucket.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/util/mpmc_queue.h"
#include "src/util/stopwatch.h"
#include "src/util/thread_pool.h"
#include "src/util/token_bucket.h"

namespace persona {
namespace {

TEST(MpmcQueueTest, FifoSingleThread) {
  MpmcQueue<int> q(4);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(*q.Pop(), 2);
}

TEST(MpmcQueueTest, TryPushRespectsCapacity) {
  MpmcQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
  EXPECT_EQ(*q.TryPop(), 1);
  EXPECT_TRUE(q.TryPush(3));
}

TEST(MpmcQueueTest, CloseDrainsThenSignalsEnd) {
  MpmcQueue<int> q(4);
  ASSERT_TRUE(q.Push(10));
  ASSERT_TRUE(q.Push(11));
  q.Close();
  EXPECT_FALSE(q.Push(12));
  EXPECT_EQ(*q.Pop(), 10);
  EXPECT_EQ(*q.Pop(), 11);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(MpmcQueueTest, BlockedPopWakesOnClose) {
  MpmcQueue<int> q(1);
  std::thread popper([&] {
    auto v = q.Pop();
    EXPECT_FALSE(v.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  popper.join();
}

TEST(MpmcQueueTest, ManyProducersManyConsumers) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;
  MpmcQueue<int> q(64);
  std::atomic<int64_t> sum{0};
  std::atomic<int> count{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.Pop()) {
        sum += *v;
        ++count;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads[static_cast<size_t>(p)].join();
  }
  q.Close();
  for (size_t t = kProducers; t < threads.size(); ++t) {
    threads[t].join();
  }

  int total = kProducers * kPerProducer;
  EXPECT_EQ(count.load(), total);
  EXPECT_EQ(sum.load(), static_cast<int64_t>(total) * (total - 1) / 2);
  EXPECT_EQ(q.total_pushed(), static_cast<uint64_t>(total));
}

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&counter] { ++counter; }));
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      ++done;
    }));
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPoolTest, ShutdownRejectsNewTasks) {
  ThreadPool pool(2);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(pool.Submit([&counter] { ++counter; }));
    }
  }  // destructor shuts down; queued tasks must still run
  EXPECT_EQ(counter.load(), 50);
}

TEST(TokenBucketTest, UnlimitedNeverBlocks) {
  TokenBucket bucket(0, 0);
  Stopwatch timer;
  bucket.Acquire(100'000'000);
  EXPECT_LT(timer.ElapsedSeconds(), 0.05);
  EXPECT_EQ(bucket.total_acquired(), 100'000'000u);
}

TEST(TokenBucketTest, ThrottlesToConfiguredRate) {
  // 10 MB/s with a small burst: acquiring 1 MB beyond the burst should take ~0.1s.
  TokenBucket bucket(10'000'000, 16'384);
  Stopwatch timer;
  bucket.Acquire(1'000'000);
  double elapsed = timer.ElapsedSeconds();
  EXPECT_GT(elapsed, 0.05);
  EXPECT_LT(elapsed, 0.6);
}

TEST(TokenBucketTest, TryAcquireFailsWhenEmpty) {
  TokenBucket bucket(1'000, 1'000);
  EXPECT_TRUE(bucket.TryAcquire(1'000));
  EXPECT_FALSE(bucket.TryAcquire(100'000));
}

TEST(TokenBucketTest, BurstAllowsInstantInitialAcquire) {
  TokenBucket bucket(1'000, 1'000'000);
  Stopwatch timer;
  bucket.Acquire(1'000'000);
  EXPECT_LT(timer.ElapsedSeconds(), 0.05);
}

}  // namespace
}  // namespace persona
