// Tests for AGD dataset filtering: the keep-predicate semantics, re-chunking of
// surviving records, selective column I/O, and end-to-end dataset integrity.

#include <gtest/gtest.h>

#include "src/format/agd_chunk.h"
#include "src/genome/generator.h"
#include "src/pipeline/agd_store_util.h"
#include "src/pipeline/filter.h"
#include "src/storage/memory_store.h"
#include "src/util/string_util.h"

namespace persona::pipeline {
namespace {

using align::AlignmentResult;
using align::kFlagDuplicate;
using align::kFlagReverse;
using align::kFlagUnmapped;

// Builds a dataset of `n` reads in `store` whose results are crafted per-index:
//   every 5th record unmapped; every 3rd a duplicate; mapq cycles 0..59;
//   locations spread 100 apart.
format::Manifest BuildDataset(storage::ObjectStore* store, int n, int64_t chunk_size) {
  std::vector<genome::Read> reads;
  for (int i = 0; i < n; ++i) {
    genome::Read read;
    read.bases = std::string(24, "ACGT"[i % 4]);
    read.qual = std::string(24, 'I');
    read.metadata = StrFormat("r%03d", i);
    reads.push_back(std::move(read));
  }
  auto manifest = WriteAgdToStore(store, "ds", reads, chunk_size);
  EXPECT_TRUE(manifest.ok());

  // Append a results column chunk by chunk.
  format::Manifest with_results = *manifest;
  with_results.columns.push_back(format::ResultsColumn());
  Buffer file;
  for (size_t ci = 0; ci < manifest->chunks.size(); ++ci) {
    const format::ManifestChunk& chunk = manifest->chunks[ci];
    format::ChunkBuilder builder(format::RecordType::kResults, compress::CodecId::kZlib);
    for (int64_t i = chunk.first_record; i < chunk.first_record + chunk.num_records; ++i) {
      AlignmentResult result;
      if (i % 5 == 0) {
        result.flags = kFlagUnmapped;
      } else {
        result.flags = 0;
        result.location = i * 100;
        result.mapq = static_cast<uint8_t>(i % 60);
        result.cigar = "24M";
        if (i % 3 == 0) {
          result.flags |= kFlagDuplicate;
        }
        if (i % 2 == 0) {
          result.flags |= kFlagReverse;
        }
      }
      builder.AddResult(result);
    }
    EXPECT_TRUE(builder.Finalize(&file).ok());
    EXPECT_TRUE(store->Put(chunk.path_base + ".results", file).ok());
  }
  return with_results;
}

// Decodes every result of `manifest` from `store`.
std::vector<AlignmentResult> LoadResults(storage::ObjectStore* store,
                                         const format::Manifest& manifest) {
  std::vector<AlignmentResult> all;
  Buffer file;
  for (size_t ci = 0; ci < manifest.chunks.size(); ++ci) {
    EXPECT_TRUE(store->Get(manifest.ChunkFileName(ci, "results"), &file).ok());
    auto chunk = format::ParsedChunk::Parse(file.span());
    EXPECT_TRUE(chunk.ok());
    for (size_t i = 0; i < chunk->record_count(); ++i) {
      all.push_back(*chunk->GetResult(i));
    }
  }
  return all;
}

TEST(ReadFilterSpec, PredicateSemantics) {
  AlignmentResult mapped;
  mapped.flags = 0;
  mapped.location = 500;
  mapped.mapq = 30;

  AlignmentResult unmapped;
  unmapped.flags = kFlagUnmapped;

  ReadFilterSpec pass_all;
  EXPECT_TRUE(pass_all.Keep(mapped));
  EXPECT_TRUE(pass_all.Keep(unmapped));

  ReadFilterSpec drop_unmapped;
  drop_unmapped.excluded_flags = kFlagUnmapped;
  EXPECT_TRUE(drop_unmapped.Keep(mapped));
  EXPECT_FALSE(drop_unmapped.Keep(unmapped));

  ReadFilterSpec require_reverse;
  require_reverse.required_flags = kFlagReverse;
  EXPECT_FALSE(require_reverse.Keep(mapped));
  AlignmentResult reverse = mapped;
  reverse.flags |= kFlagReverse;
  EXPECT_TRUE(require_reverse.Keep(reverse));

  ReadFilterSpec mapq40;
  mapq40.min_mapq = 40;
  EXPECT_FALSE(mapq40.Keep(mapped));   // mapq 30
  EXPECT_FALSE(mapq40.Keep(unmapped)); // unmapped never passes a MAPQ gate
  AlignmentResult good = mapped;
  good.mapq = 40;
  EXPECT_TRUE(mapq40.Keep(good));

  ReadFilterSpec region;
  region.region_begin = 400;
  region.region_end = 600;
  EXPECT_TRUE(region.Keep(mapped));    // 500 in [400, 600)
  EXPECT_FALSE(region.Keep(unmapped));
  AlignmentResult outside = mapped;
  outside.location = 600;  // half-open: end is excluded
  EXPECT_FALSE(region.Keep(outside));
  outside.location = 400;
  EXPECT_TRUE(region.Keep(outside));
}

TEST(FilterAgdDataset, DropsUnmappedAndRechunks) {
  storage::MemoryStore store;
  format::Manifest manifest = BuildDataset(&store, 50, 10);

  ReadFilterSpec spec;
  spec.excluded_flags = kFlagUnmapped;
  FilterOptions options;
  options.chunk_size = 8;
  format::Manifest out;
  auto report = FilterAgdDataset(&store, manifest, "flt", spec, options, &out);
  ASSERT_TRUE(report.ok()) << report.status().message();

  EXPECT_EQ(report->records_in, 50u);
  EXPECT_EQ(report->records_out, 40u);  // 10 unmapped (every 5th) dropped
  EXPECT_EQ(out.total_records(), 40);
  EXPECT_EQ(out.chunk_size, 8);
  EXPECT_EQ(out.chunks.size(), 5u);  // ceil(40 / 8)

  // All surviving records are mapped, and the other columns stayed row-grouped.
  std::vector<AlignmentResult> results = LoadResults(&store, out);
  ASSERT_EQ(results.size(), 40u);
  for (const AlignmentResult& r : results) {
    EXPECT_TRUE(r.mapped());
  }
  Buffer file;
  ASSERT_TRUE(store.Get(out.ChunkFileName(0, "metadata"), &file).ok());
  auto metadata = format::ParsedChunk::Parse(file.span());
  ASSERT_TRUE(metadata.ok());
  EXPECT_EQ(metadata->record_count(), 8u);
  // Record 0 of the input was unmapped, so the first survivor is input record 1.
  EXPECT_EQ(*metadata->GetString(0), "r001");

  // Stored manifest round-trips.
  ASSERT_TRUE(store.Get("flt.manifest.json", &file).ok());
  auto stored = format::Manifest::FromJson(file.view());
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(stored->total_records(), 40);
}

TEST(FilterAgdDataset, MapqAndDuplicateFilterCompose) {
  storage::MemoryStore store;
  format::Manifest manifest = BuildDataset(&store, 60, 20);

  ReadFilterSpec spec;
  spec.excluded_flags = kFlagUnmapped | kFlagDuplicate;
  spec.min_mapq = 20;
  format::Manifest out;
  auto report = FilterAgdDataset(&store, manifest, "flt", spec, {}, &out);
  ASSERT_TRUE(report.ok());

  // Cross-check against the predicate applied to the synthetic schedule.
  uint64_t expected = 0;
  for (int i = 0; i < 60; ++i) {
    if (i % 5 == 0) continue;              // unmapped
    if (i % 3 == 0) continue;              // duplicate
    if (i % 60 < 20) continue;             // mapq
    ++expected;
  }
  EXPECT_EQ(report->records_out, expected);

  std::vector<AlignmentResult> results = LoadResults(&store, out);
  for (const AlignmentResult& r : results) {
    EXPECT_TRUE(r.mapped());
    EXPECT_FALSE(r.duplicate());
    EXPECT_GE(r.mapq, 20);
  }
}

TEST(FilterAgdDataset, RegionFilterSkipsColumnFetchesForEmptyChunks) {
  storage::MemoryStore store;
  format::Manifest manifest = BuildDataset(&store, 100, 10);

  // Locations are i*100; restrict to records 20..39 → exactly chunks 2 and 3.
  ReadFilterSpec spec;
  spec.region_begin = 2'000;
  spec.region_end = 4'000;
  format::Manifest out;
  const storage::StoreStats before = store.stats();
  auto report = FilterAgdDataset(&store, manifest, "flt", spec, {}, &out);
  ASSERT_TRUE(report.ok());
  const storage::StoreStats after = store.stats();

  // 20 candidate records minus the unmapped ones (i % 5 == 0: 4 of them).
  EXPECT_EQ(report->records_out, 16u);

  // Chunks with no survivors must only fetch the results column: 10 results reads plus
  // 3 extra columns for only the 2 surviving chunks.
  EXPECT_EQ(after.read_ops - before.read_ops, 10u + 2u * 3u);
}

TEST(FilterAgdDataset, EmptyResultFilterProducesEmptyDataset) {
  storage::MemoryStore store;
  format::Manifest manifest = BuildDataset(&store, 30, 10);

  ReadFilterSpec spec;
  spec.min_mapq = 255;  // nothing passes
  format::Manifest out;
  auto report = FilterAgdDataset(&store, manifest, "flt", spec, {}, &out);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->records_out, 0u);
  EXPECT_TRUE(out.chunks.empty());
  EXPECT_EQ(out.total_records(), 0);
}

TEST(FilterAgdDataset, FilteringIsIdempotent) {
  storage::MemoryStore store;
  format::Manifest manifest = BuildDataset(&store, 60, 10);

  ReadFilterSpec spec;
  spec.excluded_flags = kFlagUnmapped | kFlagDuplicate;
  spec.min_mapq = 15;
  format::Manifest once;
  auto first = FilterAgdDataset(&store, manifest, "f1", spec, {}, &once);
  ASSERT_TRUE(first.ok());

  // Re-applying the same predicate to its own output must keep every record.
  format::Manifest twice;
  auto second = FilterAgdDataset(&store, once, "f2", spec, {}, &twice);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->records_in, first->records_out);
  EXPECT_EQ(second->records_out, first->records_out);
  EXPECT_EQ(LoadResults(&store, once), LoadResults(&store, twice));
}

TEST(ParseRegion, SamtoolsConventions) {
  genome::GenomeSpec gspec;
  gspec.num_contigs = 2;
  gspec.contig_length = 1'000;
  genome::ReferenceGenome reference = genome::GenerateGenome(gspec);
  const genome::GenomeLocation chr2_start = reference.contig_start(1);

  // Whole contig.
  auto whole = ParseRegion(reference, "chr2");
  ASSERT_TRUE(whole.ok());
  EXPECT_EQ(whole->begin, chr2_start);
  EXPECT_EQ(whole->end, chr2_start + 1'000);

  // From a 1-based start to the contig end.
  auto tail = ParseRegion(reference, "chr1:901");
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail->begin, 900);
  EXPECT_EQ(tail->end, 1'000);

  // Inclusive 1-based range: chr1:100-200 covers 0-based [99, 200).
  auto range = ParseRegion(reference, "chr1:100-200");
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->begin, 99);
  EXPECT_EQ(range->end, 200);

  // Single-base region.
  auto base = ParseRegion(reference, "chr1:5-5");
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(base->end - base->begin, 1);

  // End clamped to the contig.
  auto clamped = ParseRegion(reference, "chr2:990-2000");
  ASSERT_TRUE(clamped.ok());
  EXPECT_EQ(clamped->end, chr2_start + 1'000);
}

TEST(ParseRegion, RejectsMalformedInput) {
  genome::GenomeSpec gspec;
  gspec.num_contigs = 1;
  gspec.contig_length = 1'000;
  genome::ReferenceGenome reference = genome::GenerateGenome(gspec);

  EXPECT_FALSE(ParseRegion(reference, "chrX").ok());            // unknown contig
  EXPECT_FALSE(ParseRegion(reference, "chr1:abc").ok());        // non-numeric
  EXPECT_FALSE(ParseRegion(reference, "chr1:0").ok());          // 1-based start
  EXPECT_FALSE(ParseRegion(reference, "chr1:200-100").ok());    // inverted
  EXPECT_FALSE(ParseRegion(reference, "chr1:2000").ok());       // start past end
}

TEST(ParseRegion, ComposesWithFilter) {
  storage::MemoryStore store;
  format::Manifest manifest = BuildDataset(&store, 100, 10);
  // BuildDataset has no reference contigs, so craft a reference matching the
  // synthetic location schedule (locations are i*100 < 10'000).
  std::vector<genome::Contig> contigs = {{"c0", std::string(10'000, 'A')}};
  genome::ReferenceGenome reference{std::move(contigs)};

  auto region = ParseRegion(reference, "c0:2001-4000");
  ASSERT_TRUE(region.ok());
  ReadFilterSpec spec;
  spec.region_begin = region->begin;
  spec.region_end = region->end;
  format::Manifest out;
  auto report = FilterAgdDataset(&store, manifest, "flt", spec, {}, &out);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->records_out, 16u);  // same slice as the global-coordinate test
}

TEST(FilterAgdDataset, RequiresResultsColumn) {
  storage::MemoryStore store;
  std::vector<genome::Read> reads(5, genome::Read{"ACGT", "IIII", "r"});
  auto manifest = WriteAgdToStore(&store, "ds", reads, 5);
  ASSERT_TRUE(manifest.ok());
  format::Manifest out;
  EXPECT_FALSE(FilterAgdDataset(&store, *manifest, "flt", {}, {}, &out).ok());
}

}  // namespace
}  // namespace persona::pipeline
