// Tests for FASTQ and SAM/BSAM interop formats.

#include <gtest/gtest.h>

#include "src/compress/base_compaction.h"
#include "src/format/fastq.h"
#include "src/format/sam.h"
#include "src/genome/generator.h"
#include "src/genome/read_simulator.h"

namespace persona::format {
namespace {

genome::ReferenceGenome TestReference() {
  genome::GenomeSpec spec;
  spec.num_contigs = 2;
  spec.contig_length = 5'000;
  return genome::GenerateGenome(spec);
}

std::vector<genome::Read> MakeReads(const genome::ReferenceGenome& reference, size_t n) {
  genome::ReadSimSpec spec;
  spec.read_length = 80;
  genome::ReadSimulator sim(&reference, spec);
  return sim.Simulate(n);
}

TEST(FastqTest, RoundTrip) {
  auto reference = TestReference();
  auto reads = MakeReads(reference, 40);
  std::string text;
  WriteFastq(reads, &text);

  std::vector<genome::Read> parsed;
  ASSERT_TRUE(ParseFastq(text, &parsed).ok());
  ASSERT_EQ(parsed.size(), reads.size());
  for (size_t i = 0; i < reads.size(); ++i) {
    EXPECT_EQ(parsed[i], reads[i]);
  }
}

TEST(FastqTest, QualityLineStartingWithAtParses) {
  // The classic FASTQ ambiguity: '@' (quality 31) leading the quality line.
  std::string text = "@read1\nACGT\n+\n@@@@\n";
  std::vector<genome::Read> parsed;
  ASSERT_TRUE(ParseFastq(text, &parsed).ok());
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].qual, "@@@@");
}

TEST(FastqTest, StreamedFeedAcrossRecordBoundaries) {
  auto reference = TestReference();
  auto reads = MakeReads(reference, 25);
  std::string text;
  WriteFastq(reads, &text);

  // Feed in awkward 7-byte windows.
  FastqParser parser;
  std::vector<genome::Read> parsed;
  for (size_t offset = 0; offset < text.size(); offset += 7) {
    ASSERT_TRUE(
        parser.Feed(std::string_view(text).substr(offset, 7), &parsed).ok());
  }
  ASSERT_TRUE(parser.Finish().ok());
  ASSERT_EQ(parsed.size(), reads.size());
  EXPECT_EQ(parsed[24], reads[24]);
}

TEST(FastqTest, CrlfLineEndings) {
  std::string text = "@r1\r\nACGT\r\n+\r\nIIII\r\n";
  std::vector<genome::Read> parsed;
  ASSERT_TRUE(ParseFastq(text, &parsed).ok());
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].bases, "ACGT");
}

TEST(FastqTest, MissingTrailingNewline) {
  std::string text = "@r1\nACGT\n+\nIIII";
  std::vector<genome::Read> parsed;
  ASSERT_TRUE(ParseFastq(text, &parsed).ok());
  EXPECT_EQ(parsed.size(), 1u);
}

TEST(FastqTest, MalformedInputs) {
  std::vector<genome::Read> parsed;
  EXPECT_FALSE(ParseFastq("ACGT\n+\nIIII\n", &parsed).ok());          // no header
  EXPECT_FALSE(ParseFastq("@r\nACGT\nIIII\n@r2\n", &parsed).ok());    // no separator
  EXPECT_FALSE(ParseFastq("@r\nACGT\n+\nII\n", &parsed).ok());        // length mismatch
  EXPECT_FALSE(ParseFastq("@r\nACGT\n+\n", &parsed).ok());            // truncated
}

class SamRecordTest : public ::testing::Test {
 protected:
  SamRecordTest() : reference_(TestReference()) {}
  genome::ReferenceGenome reference_;
};

TEST_F(SamRecordTest, HeaderListsContigs) {
  std::string header = SamHeader(reference_);
  EXPECT_NE(header.find("@SQ\tSN:chr1\tLN:5000"), std::string::npos);
  EXPECT_NE(header.find("@SQ\tSN:chr2\tLN:5000"), std::string::npos);
}

TEST_F(SamRecordTest, ForwardRecordRoundTrip) {
  genome::Read read{"ACGTACGTAC", "IIIIIIIIII", "read-7"};
  align::AlignmentResult result;
  result.location = 5123;  // chr2, offset 123
  result.flags = 0;
  result.mapq = 55;
  result.edit_distance = 2;
  result.cigar = "10M";

  std::string sam;
  ASSERT_TRUE(AppendSamRecord(reference_, read, result, &sam).ok());
  EXPECT_NE(sam.find("chr2\t124\t"), std::string::npos);  // 1-based position
  EXPECT_NE(sam.find("NM:i:2"), std::string::npos);

  genome::Read back_read;
  align::AlignmentResult back_result;
  ASSERT_TRUE(ParseSamRecord(reference_, std::string_view(sam).substr(0, sam.size() - 1),
                             &back_read, &back_result)
                  .ok());
  EXPECT_EQ(back_read, read);
  EXPECT_EQ(back_result.location, result.location);
  EXPECT_EQ(back_result.mapq, result.mapq);
  EXPECT_EQ(back_result.cigar, result.cigar);
  EXPECT_EQ(back_result.edit_distance, result.edit_distance);
}

TEST_F(SamRecordTest, ReverseRecordRestoresOriginalOrientation) {
  genome::Read read{"AACCGGTTAA", "ABCDEFGHIJ", "rev-read"};
  align::AlignmentResult result;
  result.location = 100;
  result.flags = align::kFlagReverse;
  result.cigar = "10M";

  std::string sam;
  ASSERT_TRUE(AppendSamRecord(reference_, read, result, &sam).ok());
  // SEQ column must hold the reverse complement.
  EXPECT_NE(sam.find(compress::ReverseComplement(read.bases)), std::string::npos);

  genome::Read back_read;
  align::AlignmentResult back_result;
  ASSERT_TRUE(ParseSamRecord(reference_, std::string_view(sam).substr(0, sam.size() - 1),
                             &back_read, &back_result)
                  .ok());
  EXPECT_EQ(back_read.bases, read.bases);
  EXPECT_EQ(back_read.qual, read.qual);
  EXPECT_TRUE(back_result.reverse());
}

TEST_F(SamRecordTest, UnmappedRecord) {
  genome::Read read{"ACGT", "IIII", "unmapped"};
  align::AlignmentResult result;  // default: unmapped
  std::string sam;
  ASSERT_TRUE(AppendSamRecord(reference_, read, result, &sam).ok());
  EXPECT_NE(sam.find("\t*\t0\t"), std::string::npos);

  genome::Read back_read;
  align::AlignmentResult back_result;
  ASSERT_TRUE(ParseSamRecord(reference_, std::string_view(sam).substr(0, sam.size() - 1),
                             &back_read, &back_result)
                  .ok());
  EXPECT_FALSE(back_result.mapped());
}

TEST_F(SamRecordTest, MateFieldsRoundTrip) {
  genome::Read read{"ACGTACGTAC", "IIIIIIIIII", "paired"};
  align::AlignmentResult result;
  result.location = 200;
  result.mate_location = 520;
  result.flags = align::kFlagPaired | align::kFlagProperPair;
  result.template_length = -330;
  result.cigar = "10M";

  std::string sam;
  ASSERT_TRUE(AppendSamRecord(reference_, read, result, &sam).ok());
  EXPECT_NE(sam.find("=\t521\t-330"), std::string::npos);

  genome::Read back_read;
  align::AlignmentResult back_result;
  ASSERT_TRUE(ParseSamRecord(reference_, std::string_view(sam).substr(0, sam.size() - 1),
                             &back_read, &back_result)
                  .ok());
  EXPECT_EQ(back_result.mate_location, 520);
  EXPECT_EQ(back_result.template_length, -330);
}

TEST_F(SamRecordTest, MalformedRecordsRejected) {
  genome::Read read;
  align::AlignmentResult result;
  EXPECT_FALSE(ParseSamRecord(reference_, "too\tfew\tfields", &read, &result).ok());
  EXPECT_FALSE(ParseSamRecord(reference_,
                              "q\tXX\tchr1\t1\t60\t4M\t*\t0\t0\tACGT\tIIII", &read, &result)
                   .ok());  // bad flag
  EXPECT_FALSE(ParseSamRecord(reference_,
                              "q\t0\tchr9\t1\t60\t4M\t*\t0\t0\tACGT\tIIII", &read, &result)
                   .ok());  // unknown contig
}

TEST_F(SamRecordTest, BsamRoundTrip) {
  auto reads = MakeReads(reference_, 500);
  BsamWriter writer(16 * 1024);  // small blocks to exercise framing
  std::vector<align::AlignmentResult> results;
  for (size_t i = 0; i < reads.size(); ++i) {
    align::AlignmentResult r;
    r.location = static_cast<int64_t>(i * 13 % 5000);
    r.mapq = static_cast<uint8_t>(i % 61);
    r.cigar = "80M";
    r.flags = i % 2 ? align::kFlagReverse : 0;
    results.push_back(r);
    writer.Add(reads[i], r);
  }
  auto file = writer.Finish();
  ASSERT_TRUE(file.ok());

  auto reader = BsamReader::Open(file->span());
  ASSERT_TRUE(reader.ok());
  ASSERT_EQ(reader->size(), reads.size());
  for (size_t i = 0; i < reads.size(); i += 37) {
    EXPECT_EQ(reader->read(i), reads[i]);
    EXPECT_EQ(reader->result(i), results[i]);
  }
}

TEST_F(SamRecordTest, BsamCorruptionDetected) {
  BsamWriter writer;
  writer.Add({"ACGT", "IIII", "r"}, {});
  auto file = writer.Finish();
  ASSERT_TRUE(file.ok());
  EXPECT_FALSE(BsamReader::Open(file->span().subspan(0, file->size() - 2)).ok());
  Buffer garbage;
  garbage.Append(std::string_view("NOTBSAMDATA!"));
  EXPECT_FALSE(BsamReader::Open(garbage.span()).ok());
}

}  // namespace
}  // namespace persona::format
