// Parity and regression tests for the batched, allocation-free aligner hot path:
//   * AlignBatch == per-read Align, bit-identical (location/flags/CIGAR/MAPQ);
//   * RollingSeedPacker == SeedIndex::PackSeed across N-containing windows;
//   * banded two-row SmithWaterman == full-matrix oracle;
//   * VoteMap saturation: a read yielding more distinct candidate locations than the
//     table holds terminates (regression for the unbounded linear-probe spin).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/align/smith_waterman.h"
#include "src/align/snap_aligner.h"
#include "src/align/vote_map.h"
#include "src/compress/base_compaction.h"
#include "src/genome/generator.h"
#include "src/genome/read_simulator.h"
#include "src/util/rng.h"
#include "src/util/simd.h"

namespace persona::align {
namespace {

constexpr char kBases[] = {'A', 'C', 'G', 'T'};

std::string RandomBases(Rng* rng, size_t len) {
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kBases[rng->Uniform(4)]);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rolling seed packing vs the naive per-offset re-pack.

TEST(RollingSeedPackerTest, MatchesPackSeedOnCleanSequence) {
  Rng rng(31);
  const std::string seq = RandomBases(&rng, 300);
  for (int seed_len : {8, 20, 31}) {
    RollingSeedPacker packer(seq, seed_len);
    for (size_t off = 0; off + static_cast<size_t>(seed_len) <= seq.size(); ++off) {
      uint64_t rolled = 0;
      uint64_t packed = 0;
      ASSERT_TRUE(packer.Seed(off, &rolled));
      ASSERT_TRUE(SeedIndex::PackSeed(seq, off, seed_len, &packed));
      EXPECT_EQ(rolled, packed) << "seed_len=" << seed_len << " off=" << off;
    }
  }
}

TEST(RollingSeedPackerTest, MatchesPackSeedAcrossNWindows) {
  Rng rng(32);
  for (int trial = 0; trial < 50; ++trial) {
    std::string seq = RandomBases(&rng, 200);
    // Sprinkle N's (and one lowercase/invalid char) to exercise window rejection.
    for (int k = 0; k < 8; ++k) {
      seq[rng.Uniform(seq.size())] = 'N';
    }
    seq[rng.Uniform(seq.size())] = 'x';
    const int seed_len = 16;
    RollingSeedPacker packer(seq, seed_len);
    for (size_t off = 0; off + static_cast<size_t>(seed_len) <= seq.size(); ++off) {
      uint64_t rolled = 0;
      uint64_t packed = 0;
      const bool rolled_ok = packer.Seed(off, &rolled);
      const bool packed_ok = SeedIndex::PackSeed(seq, off, seed_len, &packed);
      ASSERT_EQ(rolled_ok, packed_ok) << "trial=" << trial << " off=" << off;
      if (packed_ok) {
        EXPECT_EQ(rolled, packed) << "trial=" << trial << " off=" << off;
      }
    }
  }
}

TEST(RollingSeedPackerTest, StridedQueriesAndEndOfSequence) {
  Rng rng(33);
  const std::string seq = RandomBases(&rng, 101);
  const int seed_len = 20;
  RollingSeedPacker packer(seq, seed_len);
  for (size_t off = 0; off + static_cast<size_t>(seed_len) <= seq.size(); off += 8) {
    uint64_t rolled = 0;
    uint64_t packed = 0;
    ASSERT_TRUE(packer.Seed(off, &rolled));
    ASSERT_TRUE(SeedIndex::PackSeed(seq, off, seed_len, &packed));
    EXPECT_EQ(rolled, packed);
  }
  uint64_t seed = 0;
  EXPECT_FALSE(packer.Seed(seq.size() - seed_len + 1, &seed));  // overruns
}

// ---------------------------------------------------------------------------
// Banded Smith-Waterman vs the full-matrix oracle.

void ExpectSwEqual(const SwResult& banded, const SwResult& full, const char* context) {
  EXPECT_EQ(banded.score, full.score) << context;
  EXPECT_EQ(banded.query_begin, full.query_begin) << context;
  EXPECT_EQ(banded.query_end, full.query_end) << context;
  EXPECT_EQ(banded.ref_begin, full.ref_begin) << context;
  EXPECT_EQ(banded.ref_end, full.ref_end) << context;
  EXPECT_EQ(banded.cigar, full.cigar) << context;
}

TEST(BandedSmithWatermanTest, MatchesFullOracleOnMutatedSubstrings) {
  Rng rng(2025);
  SwScratch scratch;  // reused across all calls: exercises the reuse path
  for (int trial = 0; trial < 200; ++trial) {
    std::string ref = RandomBases(&rng, 120);
    std::string query = ref.substr(10, 80);
    for (int s = 0; s < 3; ++s) {
      query[rng.Uniform(query.size())] = kBases[rng.Uniform(4)];
    }
    const size_t cut = 10 + rng.Uniform(40);
    const size_t indel_len = 1 + rng.Uniform(6);
    if (rng.Bernoulli(0.5)) {
      query.erase(cut, indel_len);
    } else {
      query.insert(cut, RandomBases(&rng, indel_len));
    }
    SwResult banded = SmithWaterman(ref, query, {}, &scratch);
    SwResult full = SmithWatermanFull(ref, query);
    ExpectSwEqual(banded, full, ("trial " + std::to_string(trial)).c_str());
  }
}

TEST(BandedSmithWatermanTest, WideBandIsExactlyTheFullKernel) {
  // With a band radius >= max(|ref|, |query|) every cell is in band, so the banded
  // kernel must reproduce the full kernel exactly, whatever the inputs.
  Rng rng(77);
  SwParams wide;
  wide.band_radius = 200;
  SwScratch scratch;
  for (int trial = 0; trial < 100; ++trial) {
    std::string ref = RandomBases(&rng, 20 + rng.Uniform(80));
    std::string query = RandomBases(&rng, 10 + rng.Uniform(60));
    SwResult banded = SmithWaterman(ref, query, wide, &scratch);
    SwResult full = SmithWatermanFull(ref, query, wide);
    ExpectSwEqual(banded, full, ("trial " + std::to_string(trial)).c_str());
  }
}

TEST(BandedSmithWatermanTest, EmptyAndDisjointInputs) {
  EXPECT_EQ(SmithWaterman("", "ACGT").score, 0);
  EXPECT_EQ(SmithWaterman("ACGT", "").score, 0);
  SwResult r = SmithWaterman("AAAAAAA", "TTTTTTT");
  EXPECT_EQ(r.score, 0);
  EXPECT_TRUE(r.cigar.empty());
}

// ---------------------------------------------------------------------------
// VoteMap saturation (regression: unbounded probe loop on pathological reads).

TEST(VoteMapTest, SaturationCapsOccupancyAndTerminates) {
  VoteMap votes;
  votes.Reset();
  // Insert far more distinct locations than the table can hold. The old map would
  // spin forever once all slots filled; the capped map drops the overflow.
  size_t accepted = 0;
  for (int64_t loc = 0; loc < 4'000; ++loc) {
    accepted += votes.Vote(loc * 997 + 13) ? 1 : 0;
  }
  EXPECT_EQ(accepted, VoteMap::capacity());
  EXPECT_EQ(votes.occupancy(), VoteMap::capacity());
  // Votes for locations already present still accumulate after saturation.
  EXPECT_TRUE(votes.Vote(13));  // loc 0 inserted first, certainly present
}

TEST(VoteMapTest, EpochResetIsLogicalClear) {
  VoteMap votes;
  votes.Reset();
  for (int64_t loc = 0; loc < 100; ++loc) {
    ASSERT_TRUE(votes.Vote(loc));
  }
  EXPECT_EQ(votes.occupancy(), 100u);
  votes.Reset();
  EXPECT_EQ(votes.occupancy(), 0u);
  ASSERT_TRUE(votes.Vote(7));
  std::vector<VoteCandidate> out;
  votes.ExtractSorted(&out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].location, 7);
  EXPECT_EQ(out[0].votes, 1);
}

TEST(VoteMapTest, SortedOrderIsCanonical) {
  VoteMap votes;
  votes.Reset();
  for (int rep = 0; rep < 3; ++rep) {
    votes.Vote(50);
  }
  votes.Vote(10);
  votes.Vote(90);
  std::vector<VoteCandidate> out;
  votes.ExtractSorted(&out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].location, 50);  // most votes first
  EXPECT_EQ(out[1].location, 10);  // then by location on vote ties
  EXPECT_EQ(out[2].location, 90);
}

// A hyper-repetitive read against a reference engineered so the seeds hit hundreds of
// scattered positions: yields > 512 distinct candidate start locations on the forward
// strand, which made the old uncapped vote map probe forever. The assertion is simply
// that Align returns.
TEST(VoteMapTest, PathologicalRepetitiveReadTerminates) {
  Rng rng(404);
  constexpr int kKmerLen = 20;
  constexpr int kNumKmers = 13;
  constexpr int kCopies = 110;  // below the index's 128 positions-per-seed cap
  std::vector<std::string> kmers;
  for (int k = 0; k < kNumKmers; ++k) {
    kmers.push_back(RandomBases(&rng, kKmerLen));
  }
  // Reference: the k-mers tiled in pseudorandom order, so each appears ~kCopies times
  // at scattered (non-periodic) positions.
  std::string sequence;
  sequence.reserve(static_cast<size_t>(kNumKmers) * kCopies * kKmerLen);
  for (int block = 0; block < kNumKmers * kCopies; ++block) {
    sequence += kmers[rng.Uniform(kNumKmers)];
  }
  genome::ReferenceGenome reference(
      {genome::Contig{"pathological", std::move(sequence)}});

  SeedIndexOptions options;
  options.seed_length = kKmerLen;
  auto index = SeedIndex::Build(reference, options);
  ASSERT_TRUE(index.ok());

  // Read: one copy of every k-mer back to back. In-register seeds each hit ~kCopies
  // scattered positions, so distinct (position - offset) counts blow past the table.
  std::string read_bases;
  for (const std::string& kmer : kmers) {
    read_bases += kmer;
  }
  genome::Read read;
  read.bases = read_bases;
  read.qual = std::string(read_bases.size(), 'I');
  read.metadata = "pathological";

  SnapAligner aligner(&reference, &*index);
  AlignProfile profile;
  AlignmentResult result = aligner.Align(read, &profile);  // must terminate
  EXPECT_EQ(profile.reads, 1u);
  // The read is genuinely ambiguous; mapped or not, any answer is acceptable as long
  // as a mapped placement is internally consistent.
  if (result.mapped()) {
    EXPECT_LE(result.mapq, 60);
  }
}

// ---------------------------------------------------------------------------
// AlignBatch vs per-read Align parity.

class AlignBatchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    genome::GenomeSpec spec;
    spec.num_contigs = 2;
    spec.contig_length = 40'000;
    spec.repeat_fraction = 0.05;
    spec.seed = 99;
    reference_ = new genome::ReferenceGenome(genome::GenerateGenome(spec));
    SeedIndexOptions seed_options;
    seed_options.seed_length = 20;
    seed_index_ = new SeedIndex(SeedIndex::Build(*reference_, seed_options).value());
  }

  static void TearDownTestSuite() {
    delete seed_index_;
    delete reference_;
    seed_index_ = nullptr;
    reference_ = nullptr;
  }

  static std::vector<genome::Read> SimulateReads(size_t n, double error_rate,
                                                 uint64_t seed) {
    genome::ReadSimSpec spec;
    spec.read_length = 101;
    spec.substitution_rate = error_rate;
    spec.seed = seed;
    genome::ReadSimulator sim(reference_, spec);
    return sim.Simulate(n);
  }

  static genome::ReferenceGenome* reference_;
  static SeedIndex* seed_index_;
};

genome::ReferenceGenome* AlignBatchTest::reference_ = nullptr;
SeedIndex* AlignBatchTest::seed_index_ = nullptr;

TEST_F(AlignBatchTest, BatchMatchesPerReadExactly) {
  SnapAligner aligner(reference_, seed_index_);
  auto reads = SimulateReads(400, 0.01, 5);
  // Mix in degenerate reads: too short to seed, and N-rich.
  genome::Read tiny;
  tiny.bases = "ACGT";
  tiny.qual = "IIII";
  reads[17] = tiny;
  reads[101].bases.replace(10, 30, std::string(30, 'N'));

  std::vector<AlignmentResult> expected;
  expected.reserve(reads.size());
  for (const auto& read : reads) {
    expected.push_back(aligner.Align(read, nullptr));
  }

  // One scratch reused across several batch sizes; results must be bit-identical
  // (location, flags, CIGAR, MAPQ, score — AlignmentResult equality covers all).
  auto scratch = aligner.MakeScratch();
  for (size_t batch_size : {1u, 7u, 64u, 400u}) {
    std::vector<AlignmentResult> got(reads.size());
    for (size_t begin = 0; begin < reads.size(); begin += batch_size) {
      const size_t count = std::min(batch_size, reads.size() - begin);
      aligner.AlignBatch({reads.data() + begin, count}, {got.data() + begin, count},
                         scratch.get(), nullptr);
    }
    for (size_t i = 0; i < reads.size(); ++i) {
      EXPECT_EQ(got[i], expected[i]) << "batch_size=" << batch_size << " read " << i;
    }
  }
}

// Every SIMD dispatch level must produce bit-identical alignments on identical
// batches. The scalar side runs the per-read VerifyOne loop; the vector sides run
// the lane-refill wave engine, so this is the direct engine-vs-scalar oracle (the
// batch-vs-per-read test alone cannot catch engine drift: both routes share the
// process-wide active level).
TEST_F(AlignBatchTest, AllDispatchLevelsProduceIdenticalAlignments) {
  SnapAligner aligner(reference_, seed_index_);
  auto reads = SimulateReads(300, 0.02, 11);
  genome::Read tiny;
  tiny.bases = "ACGT";
  tiny.qual = "IIII";
  reads[23] = tiny;
  reads[57].bases.replace(20, 40, std::string(40, 'N'));

  auto scratch = aligner.MakeScratch();
  std::vector<AlignmentResult> expected(reads.size());
  AlignProfile scalar_profile;
  aligner.AlignBatchAtLevel({reads.data(), reads.size()},
                            {expected.data(), expected.size()}, scratch.get(),
                            &scalar_profile, SimdLevel::kScalar);
  EXPECT_EQ(scalar_profile.lv_batch_runs, 0u);  // scalar path never vectorizes

  for (SimdLevel level : {SimdLevel::kSse4, SimdLevel::kAvx2}) {
    if (!SimdLevelSupported(level)) {
      continue;
    }
    std::vector<AlignmentResult> got(reads.size());
    AlignProfile profile;
    aligner.AlignBatchAtLevel({reads.data(), reads.size()}, {got.data(), got.size()},
                              scratch.get(), &profile, level);
    for (size_t i = 0; i < reads.size(); ++i) {
      EXPECT_EQ(got[i], expected[i]) << SimdLevelName(level) << " read " << i;
    }
    // Same candidate set scanned, and the DP work actually went through LvBatch.
    EXPECT_EQ(profile.candidates, scalar_profile.candidates) << SimdLevelName(level);
    if (profile.lv_batch_runs > 0) {
      EXPECT_GE(profile.lv_batch_jobs, profile.lv_batch_runs) << SimdLevelName(level);
    }
  }
}

TEST_F(AlignBatchTest, NullAndForeignScratchFallBack) {
  SnapAligner aligner(reference_, seed_index_);
  auto reads = SimulateReads(50, 0.01, 6);
  std::vector<AlignmentResult> expected(reads.size());
  for (size_t i = 0; i < reads.size(); ++i) {
    expected[i] = aligner.Align(reads[i], nullptr);
  }

  std::vector<AlignmentResult> with_null(reads.size());
  aligner.AlignBatch({reads.data(), reads.size()}, {with_null.data(), with_null.size()},
                     nullptr, nullptr);

  class ForeignScratch final : public AlignerScratch {};
  ForeignScratch foreign;
  std::vector<AlignmentResult> with_foreign(reads.size());
  aligner.AlignBatch({reads.data(), reads.size()},
                     {with_foreign.data(), with_foreign.size()}, &foreign, nullptr);

  for (size_t i = 0; i < reads.size(); ++i) {
    EXPECT_EQ(with_null[i], expected[i]) << i;
    EXPECT_EQ(with_foreign[i], expected[i]) << i;
  }
}

TEST_F(AlignBatchTest, ProfileCountersMatchPerReadAndClocksAreBatched) {
  SnapAligner aligner(reference_, seed_index_);
  auto reads = SimulateReads(120, 0.01, 8);

  AlignProfile per_read;
  for (const auto& read : reads) {
    (void)aligner.Align(read, &per_read);
  }
  AlignProfile batched;
  auto scratch = aligner.MakeScratch();
  std::vector<AlignmentResult> got(reads.size());
  aligner.AlignBatch({reads.data(), reads.size()}, {got.data(), got.size()},
                     scratch.get(), &batched);

  EXPECT_EQ(batched.reads, per_read.reads);
  EXPECT_EQ(batched.bases, per_read.bases);
  EXPECT_EQ(batched.index_probes, per_read.index_probes);
  EXPECT_EQ(batched.candidates, per_read.candidates);
  EXPECT_GT(batched.seed_ns, 0u);
  EXPECT_GT(batched.verify_ns, 0u);
}

TEST_F(AlignBatchTest, DefaultAlignBatchLoopsAlign) {
  // The base-class fallback (used by aligners without a batched path) must also be
  // output-identical to Align.
  class LoopAligner final : public Aligner {
   public:
    std::string_view name() const override { return "loop"; }
    AlignmentResult Align(const genome::Read& read, AlignProfile* profile) const override {
      if (profile != nullptr) {
        ++profile->reads;
      }
      AlignmentResult r;
      r.location = static_cast<int64_t>(read.bases.size());
      r.flags = 0;
      return r;
    }
  };
  LoopAligner aligner;
  auto reads = SimulateReads(10, 0.0, 9);
  std::vector<AlignmentResult> got(reads.size());
  AlignProfile profile;
  aligner.AlignBatch({reads.data(), reads.size()}, {got.data(), got.size()},
                     aligner.MakeScratch().get(), &profile);
  EXPECT_EQ(profile.reads, reads.size());
  for (size_t i = 0; i < reads.size(); ++i) {
    EXPECT_EQ(got[i].location, static_cast<int64_t>(reads[i].bases.size()));
  }
}

TEST(ReverseComplementIntoTest, MatchesAllocatingVariant) {
  Rng rng(12);
  std::string buffer;
  for (int trial = 0; trial < 20; ++trial) {
    std::string bases = RandomBases(&rng, 1 + rng.Uniform(150));
    compress::ReverseComplementInto(bases, &buffer);
    EXPECT_EQ(buffer, compress::ReverseComplement(bases));
  }
}

}  // namespace
}  // namespace persona::align
