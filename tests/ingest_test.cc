// Tests for the stream-ingest subsystem (src/ingest): wire framing and socket
// semantics (short writes, EPIPE-as-Status, truncation detection), bit-identical
// parity between socket-streamed ingest and the offline ImportFastqToAgd on the same
// FASTQ input, real backpressure (a slow store bounds in-flight records to the
// pipeline depth instead of buffering the stream), control-plane stats/manifest
// requests, concurrent sessions, and mid-stream disconnect cancelling the session's
// pipeline without leaking pooled buffers or leaving a manifest behind.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/format/fastq.h"
#include "src/ingest/service.h"
#include "src/ingest/socket.h"
#include "src/ingest/wire.h"
#include "src/pipeline/agd_store_util.h"
#include "src/pipeline/convert.h"
#include "src/storage/memory_store.h"
#include "src/util/json.h"
#include "src/util/rng.h"

namespace persona::ingest {
namespace {

using pipeline::ChunkPipeline;

std::vector<genome::Read> MakeReads(size_t n, uint64_t seed = 7) {
  Rng rng(seed);
  const char kBases[] = "ACGT";
  std::vector<genome::Read> reads;
  reads.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    genome::Read read;
    const size_t len = 80 + rng.Uniform(41);  // variable-length records
    read.bases.reserve(len);
    read.qual.reserve(len);
    for (size_t b = 0; b < len; ++b) {
      read.bases.push_back(kBases[rng.Uniform(4)]);
      read.qual.push_back(static_cast<char>('!' + rng.Uniform(40)));
    }
    read.metadata = "read-" + std::to_string(i);
    reads.push_back(std::move(read));
  }
  return reads;
}

std::string FastqText(const std::vector<genome::Read>& reads) {
  std::string text;
  format::WriteFastq(reads, &text);
  return text;
}

ChunkPipeline::Options SmallPipeline() {
  ChunkPipeline::Options options;
  options.read_parallelism = 1;
  options.parse_parallelism = 1;
  options.transform_parallelism = 2;
  options.serialize_parallelism = 1;
  options.write_parallelism = 1;
  options.queue_depth = 1;
  options.write_window = 1;
  return options;
}

// Streams `fastq` as kData frames of `window` bytes and waits for the terminal
// frame; `control_at` (byte offset), when hit, issues stats+manifest requests and
// stores the replies.
struct ClientRun {
  Frame terminal;                // kDone or kError
  std::string stats_reply;       // set when control_at fired
  std::string manifest_reply;
};

Status StreamDatasetToPort(uint16_t port, const std::string& dataset,
                           std::string_view fastq, size_t window, ClientRun* out,
                           size_t control_at = std::string::npos) {
  PERSONA_ASSIGN_OR_RETURN(Connection conn, ConnectLoopback(port));
  PERSONA_RETURN_IF_ERROR(WriteFrame(conn, FrameType::kStart, dataset));
  Frame frame;
  PERSONA_RETURN_IF_ERROR(ReadFrame(conn, &frame));
  if (frame.type != FrameType::kStarted) {
    return InternalError("expected Started, got " + frame.payload);
  }
  bool control_sent = false;
  for (size_t offset = 0; offset < fastq.size(); offset += window) {
    const size_t len = std::min(window, fastq.size() - offset);
    PERSONA_RETURN_IF_ERROR(
        WriteFrame(conn, FrameType::kData, fastq.substr(offset, len)));
    if (!control_sent && offset + len >= control_at) {
      control_sent = true;
      PERSONA_RETURN_IF_ERROR(WriteFrame(conn, FrameType::kStatsRequest, ""));
      PERSONA_RETURN_IF_ERROR(WriteFrame(conn, FrameType::kManifestRequest, ""));
    }
  }
  PERSONA_RETURN_IF_ERROR(WriteFrame(conn, FrameType::kEnd, ""));
  while (true) {
    PERSONA_RETURN_IF_ERROR(ReadFrame(conn, &frame));
    if (frame.type == FrameType::kStatsReply) {
      out->stats_reply = std::move(frame.payload);
    } else if (frame.type == FrameType::kManifestReply) {
      out->manifest_reply = std::move(frame.payload);
    } else {
      out->terminal = std::move(frame);
      return OkStatus();
    }
  }
}

void WaitForSessions(const IngestService& service, size_t count) {
  for (int i = 0; i < 2000 && service.completed_sessions() < count; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(service.completed_sessions(), count);
}

// MemoryStore wrapper whose Put sleeps, modelling a store far slower than the
// socket; counts concurrently executing puts to verify the writer stage is the only
// place store pressure is absorbed.
class SlowStore final : public storage::ObjectStore {
 public:
  explicit SlowStore(int put_sleep_ms) : put_sleep_ms_(put_sleep_ms) {}

  using ObjectStore::Put;
  Status Put(const std::string& key, std::span<const uint8_t> data) override {
    const int in_flight = concurrent_puts_.fetch_add(1, std::memory_order_relaxed) + 1;
    int expected = max_concurrent_puts_.load(std::memory_order_relaxed);
    while (in_flight > expected &&
           !max_concurrent_puts_.compare_exchange_weak(expected, in_flight)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(put_sleep_ms_));
    Status status = base_.Put(key, data);
    concurrent_puts_.fetch_sub(1, std::memory_order_relaxed);
    return status;
  }
  Status Get(const std::string& key, Buffer* out) override { return base_.Get(key, out); }
  Result<uint64_t> Size(const std::string& key) override { return base_.Size(key); }
  Status Delete(const std::string& key) override { return base_.Delete(key); }
  bool Exists(const std::string& key) override { return base_.Exists(key); }
  Result<std::vector<std::string>> List(std::string_view prefix) override {
    return base_.List(prefix);
  }
  storage::StoreStats stats() const override { return base_.stats(); }

  int max_concurrent_puts() const {
    return max_concurrent_puts_.load(std::memory_order_relaxed);
  }

 private:
  storage::MemoryStore base_;
  const int put_sleep_ms_;
  std::atomic<int> concurrent_puts_{0};
  std::atomic<int> max_concurrent_puts_{0};
};

// --- Wire and socket semantics. ---

TEST(IngestWireTest, FrameRoundTripAllSizes) {
  auto server = SocketServer::Listen(0);
  ASSERT_TRUE(server.ok());
  std::thread echo([&server] {
    auto conn = (*server)->Accept();
    ASSERT_TRUE(conn.ok());
    Frame frame;
    while (ReadFrame(*conn, &frame).ok()) {
      ASSERT_TRUE(WriteFrame(*conn, frame.type, frame.payload).ok());
    }
  });
  auto client = ConnectLoopback((*server)->port());
  ASSERT_TRUE(client.ok());

  const std::vector<std::pair<FrameType, std::string>> cases = {
      {FrameType::kStart, "dataset-a"},
      {FrameType::kData, std::string(1 << 20, 'x')},  // bigger than one send window
      {FrameType::kEnd, ""},
      {FrameType::kStatsRequest, ""},
      {FrameType::kError, "boom"},
  };
  for (const auto& [type, payload] : cases) {
    ASSERT_TRUE(WriteFrame(*client, type, payload).ok());
    Frame frame;
    ASSERT_TRUE(ReadFrame(*client, &frame).ok());
    EXPECT_EQ(frame.type, type);
    EXPECT_EQ(frame.payload, payload);
  }
  client->Close();
  echo.join();
}

TEST(IngestWireTest, CleanCloseIsBoundaryTruncationIsDataLoss) {
  auto server = SocketServer::Listen(0);
  ASSERT_TRUE(server.ok());
  std::thread peer([&server] {
    auto conn = (*server)->Accept();
    ASSERT_TRUE(conn.ok());
    // One whole frame, then a torn header-only frame, then close.
    ASSERT_TRUE(WriteFrame(*conn, FrameType::kEnd, "").ok());
    const char torn[5] = {static_cast<char>(FrameType::kData), 100, 0, 0, 0};
    ASSERT_TRUE(conn->SendAll(torn, sizeof(torn)).ok());
    conn->Close();
  });
  auto client = ConnectLoopback((*server)->port());
  ASSERT_TRUE(client.ok());
  Frame frame;
  ASSERT_TRUE(ReadFrame(*client, &frame).ok());
  EXPECT_EQ(frame.type, FrameType::kEnd);
  Status truncated = ReadFrame(*client, &frame);
  EXPECT_EQ(truncated.code(), StatusCode::kDataLoss);  // payload never arrived
  Status closed = ReadFrame(*client, &frame);
  EXPECT_EQ(closed.code(), StatusCode::kOutOfRange);  // now a clean boundary
  peer.join();
}

TEST(IngestSocketTest, SendToClosedPeerReturnsStatusInsteadOfSigpipe) {
  auto server = SocketServer::Listen(0);
  ASSERT_TRUE(server.ok());
  std::thread peer([&server] {
    auto conn = (*server)->Accept();
    ASSERT_TRUE(conn.ok());
    conn->Close();  // immediately abandon the client
  });
  auto client = ConnectLoopback((*server)->port());
  ASSERT_TRUE(client.ok());
  peer.join();
  // Keep sending until the kernel surfaces the close (first sends may land in the
  // socket buffer). Without MSG_NOSIGNAL this would kill the test with SIGPIPE.
  const std::string chunk(1 << 16, 'y');
  Status status;
  for (int i = 0; i < 256 && status.ok(); ++i) {
    status = client->SendAll(chunk);
  }
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

// --- Service behaviour. ---

TEST(IngestServiceTest, StreamedIngestIsBitIdenticalToOfflineImport) {
  const auto reads = MakeReads(1'200);
  const std::string fastq = FastqText(reads);

  // Offline reference: the existing importer on its own store.
  storage::MemoryStore offline;
  ASSERT_TRUE(pipeline::WriteGzippedFastqToStore(&offline, "imp", reads).ok());
  format::Manifest offline_manifest;
  auto offline_report = pipeline::ImportFastqToAgd(&offline, "imp", 256,
                                                   compress::CodecId::kZlib,
                                                   &offline_manifest, SmallPipeline());
  ASSERT_TRUE(offline_report.ok());

  // Streamed: same records, same chunk size, over the socket.
  storage::MemoryStore streamed;
  IngestOptions options;
  options.chunk_size = 256;
  options.pipeline = SmallPipeline();
  auto service = IngestService::Start(&streamed, options);
  ASSERT_TRUE(service.ok());
  ClientRun run;
  ASSERT_TRUE(
      StreamDatasetToPort((*service)->port(), "imp", fastq, 8'192, &run).ok());
  ASSERT_EQ(run.terminal.type, FrameType::kDone) << run.terminal.payload;
  (*service)->Shutdown();

  // Every chunk object byte-identical, including the partial tail chunk (1200 =
  // 4*256 + 176).
  auto offline_keys = offline.List("imp-");
  ASSERT_TRUE(offline_keys.ok());
  ASSERT_EQ(offline_keys->size(), 5u * 3u);
  Buffer a;
  Buffer b;
  for (const std::string& key : *offline_keys) {
    ASSERT_TRUE(offline.Get(key, &a).ok());
    ASSERT_TRUE(streamed.Get(key, &b).ok()) << key;
    EXPECT_EQ(a.view(), b.view()) << key;
  }
  // Manifests agree (different object keys, same content).
  Buffer streamed_manifest;
  ASSERT_TRUE(streamed.Get("imp.manifest.json", &streamed_manifest).ok());
  EXPECT_EQ(offline_manifest.ToJson(), streamed_manifest.view());

  const auto sessions = (*service)->Sessions();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_TRUE(sessions[0].status.ok());
  EXPECT_EQ(sessions[0].records_built, 1'200u);
  EXPECT_EQ(sessions[0].chunks_built, 5u);
  EXPECT_EQ(sessions[0].pool_available, sessions[0].pool_capacity);
}

TEST(IngestServiceTest, ServesConcurrentSessions) {
  const auto reads = MakeReads(600, /*seed=*/11);
  const std::string fastq = FastqText(reads);
  storage::MemoryStore store;
  IngestOptions options;
  options.chunk_size = 128;
  options.pipeline = SmallPipeline();
  auto service = IngestService::Start(&store, options);
  ASSERT_TRUE(service.ok());

  constexpr int kClients = 3;
  std::vector<std::thread> clients;
  std::vector<Status> results(kClients);
  std::vector<ClientRun> runs(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      results[i] = StreamDatasetToPort((*service)->port(), "c" + std::to_string(i),
                                       fastq, 4'096, &runs[i]);
    });
  }
  for (auto& thread : clients) {
    thread.join();
  }
  (*service)->Shutdown();

  for (int i = 0; i < kClients; ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i];
    ASSERT_EQ(runs[i].terminal.type, FrameType::kDone) << runs[i].terminal.payload;
    Buffer manifest_bytes;
    const std::string key = "c" + std::to_string(i) + ".manifest.json";
    ASSERT_TRUE(store.Get(key, &manifest_bytes).ok());
    auto manifest = format::Manifest::FromJson(manifest_bytes.view());
    ASSERT_TRUE(manifest.ok());
    EXPECT_EQ(manifest->total_records(), 600);
    EXPECT_EQ(manifest->chunks.size(), 5u);  // 4*128 + 88
  }
  EXPECT_EQ((*service)->completed_sessions(), static_cast<size_t>(kClients));
}

TEST(IngestServiceTest, ControlRequestsReportLiveStatsAndManifest) {
  const auto reads = MakeReads(800, /*seed=*/13);
  const std::string fastq = FastqText(reads);
  storage::MemoryStore store;
  IngestOptions options;
  options.chunk_size = 100;
  options.pipeline = SmallPipeline();
  auto service = IngestService::Start(&store, options);
  ASSERT_TRUE(service.ok());

  ClientRun run;
  ASSERT_TRUE(StreamDatasetToPort((*service)->port(), "ctl", fastq, 2'048, &run,
                                  /*control_at=*/fastq.size() / 2)
                  .ok());
  ASSERT_EQ(run.terminal.type, FrameType::kDone) << run.terminal.payload;
  (*service)->Shutdown();

  ASSERT_FALSE(run.stats_reply.empty());
  auto stats = json::Parse(run.stats_reply);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(*stats->GetString("dataset"), "ctl");
  EXPECT_GT(*stats->GetInt("records_parsed"), 0);
  EXPECT_LT(*stats->GetInt("records_parsed"), 800);  // mid-stream, not the total

  ASSERT_FALSE(run.manifest_reply.empty());
  auto partial = format::Manifest::FromJson(run.manifest_reply);
  ASSERT_TRUE(partial.ok());
  EXPECT_LT(partial->chunks.size(), 8u);  // only the chunks emitted so far

  auto done = json::Parse(run.terminal.payload);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(*done->GetInt("records"), 800);
}

TEST(IngestServiceTest, BackpressureBoundsInFlightRecordsUnderSlowStore) {
  const int64_t kChunk = 50;
  const size_t kTotal = 3'000;  // 60 chunks — far more than the pipeline can hold
  const auto reads = MakeReads(kTotal, /*seed=*/17);
  const std::string fastq = FastqText(reads);

  SlowStore store(/*put_sleep_ms=*/3);
  IngestOptions options;
  options.chunk_size = kChunk;
  options.pipeline = SmallPipeline();
  auto service = IngestService::Start(&store, options);
  ASSERT_TRUE(service.ok());

  Status client_status;
  ClientRun run;
  std::thread client([&] {
    client_status =
        StreamDatasetToPort((*service)->port(), "bp", fastq, 4'096, &run);
  });

  // Sample the live in-flight record count while the store crawls. Bounded means the
  // source stopped reading the socket; unbounded would race to ~kTotal parsed.
  uint64_t max_in_flight = 0;
  while ((*service)->completed_sessions() == 0) {
    for (const auto& session : (*service)->Sessions()) {
      max_in_flight = std::max(max_in_flight, session.records_in_flight);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  client.join();
  (*service)->Shutdown();
  ASSERT_TRUE(client_status.ok()) << client_status;
  ASSERT_EQ(run.terminal.type, FrameType::kDone) << run.terminal.payload;

  // Bound: batcher refill (≤ 1 chunk + one data frame's records) + input queue +
  // transform workers + source hand. 16 chunks of headroom is generous; without
  // backpressure this reaches ~60 chunks.
  EXPECT_LE(max_in_flight, static_cast<uint64_t>(kChunk * 16));
  EXPECT_GT(max_in_flight, 0u);
  // Store pressure is absorbed only by the writer stage (1 writer worker; the async
  // window adds in-flight submissions, but the sequential base store executes puts
  // from the submitting thread, so concurrency stays at the writer count).
  EXPECT_LE(store.max_concurrent_puts(), 2);

  const auto sessions = (*service)->Sessions();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].records_built, kTotal);
  EXPECT_EQ(sessions[0].pool_available, sessions[0].pool_capacity);
}

TEST(IngestServiceTest, DisconnectMidStreamCancelsWithoutLeakOrManifest) {
  const auto reads = MakeReads(1'000, /*seed=*/23);
  const std::string fastq = FastqText(reads);
  storage::MemoryStore store;
  IngestOptions options;
  options.chunk_size = 100;
  options.pipeline = SmallPipeline();
  auto service = IngestService::Start(&store, options);
  ASSERT_TRUE(service.ok());

  {
    auto conn = ConnectLoopback((*service)->port());
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(WriteFrame(*conn, FrameType::kStart, "gone").ok());
    Frame frame;
    ASSERT_TRUE(ReadFrame(*conn, &frame).ok());
    ASSERT_EQ(frame.type, FrameType::kStarted);
    // Several full chunks' worth, ending mid-record, then vanish without kEnd.
    const size_t cut = fastq.size() / 2 + 13;
    ASSERT_TRUE(WriteFrame(*conn, FrameType::kData, fastq.substr(0, cut)).ok());
    conn->Close();
  }
  WaitForSessions(**service, 1);

  auto sessions = (*service)->Sessions();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_FALSE(sessions[0].status.ok());
  EXPECT_EQ(sessions[0].status.code(), StatusCode::kUnavailable);
  // Cancellation returned every pooled buffer and skipped the manifest epilogue.
  EXPECT_GT(sessions[0].pool_capacity, 0u);
  EXPECT_EQ(sessions[0].pool_available, sessions[0].pool_capacity);
  EXPECT_FALSE(store.Exists("gone.manifest.json"));

  // The service survives the aborted session and still serves new clients.
  ClientRun run;
  ASSERT_TRUE(StreamDatasetToPort((*service)->port(), "after", fastq, 8'192, &run).ok());
  EXPECT_EQ(run.terminal.type, FrameType::kDone) << run.terminal.payload;
  (*service)->Shutdown();
}

TEST(IngestServiceTest, AcceptsFastqWithoutTrailingNewline) {
  const auto reads = MakeReads(300, /*seed=*/29);
  std::string fastq = FastqText(reads);
  fastq.pop_back();  // drop the final '\n' — still a complete last record
  storage::MemoryStore store;
  IngestOptions options;
  options.chunk_size = 100;
  options.pipeline = SmallPipeline();
  auto service = IngestService::Start(&store, options);
  ASSERT_TRUE(service.ok());
  ClientRun run;
  ASSERT_TRUE(StreamDatasetToPort((*service)->port(), "nl", fastq, 4'096, &run).ok());
  ASSERT_EQ(run.terminal.type, FrameType::kDone) << run.terminal.payload;
  (*service)->Shutdown();
  auto done = json::Parse(run.terminal.payload);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(*done->GetInt("records"), 300);
}

TEST(IngestServiceTest, RejectsConcurrentSessionsOnSameDataset) {
  storage::MemoryStore store;
  IngestOptions options;
  options.chunk_size = 100;
  options.pipeline = SmallPipeline();
  auto service = IngestService::Start(&store, options);
  ASSERT_TRUE(service.ok());

  // First session claims "dup" and stays mid-stream.
  auto first = ConnectLoopback((*service)->port());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(WriteFrame(*first, FrameType::kStart, "dup").ok());
  Frame frame;
  ASSERT_TRUE(ReadFrame(*first, &frame).ok());
  ASSERT_EQ(frame.type, FrameType::kStarted);

  // Second session on the same name must be refused — interleaved writes to the
  // same chunk keys would corrupt the dataset.
  {
    auto second = ConnectLoopback((*service)->port());
    ASSERT_TRUE(second.ok());
    ASSERT_TRUE(WriteFrame(*second, FrameType::kStart, "dup").ok());
    Frame refusal;
    ASSERT_TRUE(ReadFrame(*second, &refusal).ok());
    EXPECT_EQ(refusal.type, FrameType::kError);
  }

  // The first session finishes normally, releasing the name for future sessions.
  ASSERT_TRUE(WriteFrame(*first, FrameType::kData, "@r0\nACGT\n+\nIIII\n").ok());
  ASSERT_TRUE(WriteFrame(*first, FrameType::kEnd, "").ok());
  ASSERT_TRUE(ReadFrame(*first, &frame).ok());
  EXPECT_EQ(frame.type, FrameType::kDone) << frame.payload;
  WaitForSessions(**service, 2);

  ClientRun rerun;
  ASSERT_TRUE(StreamDatasetToPort((*service)->port(), "dup", "@r1\nACGT\n+\nIIII\n",
                                  4'096, &rerun)
                  .ok());
  EXPECT_EQ(rerun.terminal.type, FrameType::kDone) << rerun.terminal.payload;
  (*service)->Shutdown();
}

TEST(IngestServiceTest, RejectsProtocolViolationsAndBadNames) {
  storage::MemoryStore store;
  IngestOptions options;
  options.pipeline = SmallPipeline();
  auto service = IngestService::Start(&store, options);
  ASSERT_TRUE(service.ok());

  {
    // Data before Start.
    auto conn = ConnectLoopback((*service)->port());
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(WriteFrame(*conn, FrameType::kData, "@r\nACGT\n+\n!!!!\n").ok());
    Frame frame;
    ASSERT_TRUE(ReadFrame(*conn, &frame).ok());
    EXPECT_EQ(frame.type, FrameType::kError);
  }
  {
    // Dataset name that would escape the store namespace.
    auto conn = ConnectLoopback((*service)->port());
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(WriteFrame(*conn, FrameType::kStart, "../etc/passwd").ok());
    Frame frame;
    ASSERT_TRUE(ReadFrame(*conn, &frame).ok());
    EXPECT_EQ(frame.type, FrameType::kError);
  }
  WaitForSessions(**service, 2);
  (*service)->Shutdown();
  for (const auto& session : (*service)->Sessions()) {
    EXPECT_FALSE(session.status.ok());
  }
}

TEST(IngestServiceTest, IdleTimeoutReclaimsSilentMidStreamSessions) {
  storage::MemoryStore store;
  IngestOptions options;
  options.pipeline = SmallPipeline();
  options.idle_timeout_sec = 0.1;
  auto service = IngestService::Start(&store, options);
  ASSERT_TRUE(service.ok());

  // Handshake, send a partial record, then go silent: without the idle deadline
  // this session (and the Shutdown below) would hang forever.
  auto conn = ConnectLoopback((*service)->port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(WriteFrame(*conn, FrameType::kStart, "stalled").ok());
  Frame frame;
  ASSERT_TRUE(ReadFrame(*conn, &frame).ok());
  ASSERT_EQ(frame.type, FrameType::kStarted);
  ASSERT_TRUE(WriteFrame(*conn, FrameType::kData, "@read-0\nACGT\n").ok());

  WaitForSessions(**service, 1);
  (*service)->Shutdown();
  const auto sessions = (*service)->Sessions();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].status.code(), StatusCode::kDeadlineExceeded);
  // Cancelled cleanly: no manifest for the truncated stream, no leaked buffers.
  EXPECT_FALSE(store.Exists("stalled.manifest.json"));
  EXPECT_EQ(sessions[0].pool_available, sessions[0].pool_capacity);
}

TEST(IngestServiceTest, HandshakeTimeoutFreesTheSessionThread) {
  storage::MemoryStore store;
  IngestOptions options;
  options.handshake_timeout_sec = 0.1;
  options.pipeline = SmallPipeline();
  auto service = IngestService::Start(&store, options);
  ASSERT_TRUE(service.ok());
  auto conn = ConnectLoopback((*service)->port());
  ASSERT_TRUE(conn.ok());
  // Say nothing: the server must give up on its own, or Shutdown would hang.
  WaitForSessions(**service, 1);
  (*service)->Shutdown();
  const auto sessions = (*service)->Sessions();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_FALSE(sessions[0].status.ok());
}

}  // namespace
}  // namespace persona::ingest
