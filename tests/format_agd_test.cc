// Tests for the AGD format: chunk serialization, manifest JSON, dataset round trips,
// corruption detection, and selective column access.

#include <gtest/gtest.h>

#include "src/format/agd_chunk.h"
#include "src/format/agd_dataset.h"
#include "src/format/agd_manifest.h"
#include "src/genome/generator.h"
#include "src/genome/read_simulator.h"
#include "src/util/file_util.h"

namespace persona::format {
namespace {

std::vector<genome::Read> MakeReads(size_t n, uint64_t seed = 3) {
  genome::GenomeSpec gspec;
  gspec.num_contigs = 1;
  gspec.contig_length = 10'000;
  static genome::ReferenceGenome reference = genome::GenerateGenome(gspec);
  genome::ReadSimSpec spec;
  spec.read_length = 101;
  spec.seed = seed;
  genome::ReadSimulator sim(&reference, spec);
  return sim.Simulate(n);
}

class ChunkCodecTest : public ::testing::TestWithParam<compress::CodecId> {};

TEST_P(ChunkCodecTest, BasesChunkRoundTrip) {
  auto reads = MakeReads(50);
  ChunkBuilder builder(RecordType::kBases, GetParam());
  for (const auto& read : reads) {
    builder.AddBases(read.bases);
  }
  Buffer file;
  ASSERT_TRUE(builder.Finalize(&file).ok());

  auto chunk = ParsedChunk::Parse(file.span());
  ASSERT_TRUE(chunk.ok());
  EXPECT_EQ(chunk->type(), RecordType::kBases);
  EXPECT_EQ(chunk->codec(), GetParam());
  ASSERT_EQ(chunk->record_count(), reads.size());
  for (size_t i = 0; i < reads.size(); ++i) {
    auto bases = chunk->GetBases(i);
    ASSERT_TRUE(bases.ok());
    EXPECT_EQ(*bases, reads[i].bases);
  }
}

TEST_P(ChunkCodecTest, StringChunkRoundTrip) {
  auto reads = MakeReads(50);
  ChunkBuilder builder(RecordType::kMetadata, GetParam());
  for (const auto& read : reads) {
    builder.AddRecord(read.metadata);
  }
  Buffer file;
  ASSERT_TRUE(builder.Finalize(&file).ok());
  auto chunk = ParsedChunk::Parse(file.span());
  ASSERT_TRUE(chunk.ok());
  for (size_t i = 0; i < reads.size(); ++i) {
    EXPECT_EQ(*chunk->GetString(i), reads[i].metadata);
  }
}

TEST_P(ChunkCodecTest, ResultsChunkRoundTrip) {
  ChunkBuilder builder(RecordType::kResults, GetParam());
  std::vector<align::AlignmentResult> originals;
  for (int i = 0; i < 30; ++i) {
    align::AlignmentResult r;
    r.location = i * 997;
    r.flags = i % 3 == 0 ? align::kFlagReverse : 0;
    r.mapq = static_cast<uint8_t>(i * 2);
    r.edit_distance = static_cast<int16_t>(i % 5);
    r.cigar = "101M";
    originals.push_back(r);
    builder.AddResult(r);
  }
  Buffer file;
  ASSERT_TRUE(builder.Finalize(&file).ok());
  auto chunk = ParsedChunk::Parse(file.span());
  ASSERT_TRUE(chunk.ok());
  for (size_t i = 0; i < originals.size(); ++i) {
    EXPECT_EQ(*chunk->GetResult(i), originals[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Codecs, ChunkCodecTest,
                         ::testing::Values(compress::CodecId::kIdentity,
                                           compress::CodecId::kZlib,
                                           compress::CodecId::kLzss),
                         [](const auto& info) {
                           return std::string(compress::CodecName(info.param));
                         });

TEST(ChunkTest, EmptyChunk) {
  ChunkBuilder builder(RecordType::kQual, compress::CodecId::kZlib);
  Buffer file;
  ASSERT_TRUE(builder.Finalize(&file).ok());
  auto chunk = ParsedChunk::Parse(file.span());
  ASSERT_TRUE(chunk.ok());
  EXPECT_EQ(chunk->record_count(), 0u);
}

TEST(ChunkTest, CompressionShrinksBasesChunk) {
  auto reads = MakeReads(200);
  ChunkBuilder packed(RecordType::kBases, compress::CodecId::kZlib);
  uint64_t ascii_bytes = 0;
  for (const auto& read : reads) {
    packed.AddBases(read.bases);
    ascii_bytes += read.bases.size();
  }
  Buffer file;
  ASSERT_TRUE(packed.Finalize(&file).ok());
  // 3-bit packing alone gives ~2.6x; zlib on top should keep it well under half.
  EXPECT_LT(file.size(), ascii_bytes / 2);
}

TEST(ChunkTest, CorruptionIsDetected) {
  auto reads = MakeReads(20);
  ChunkBuilder builder(RecordType::kBases, compress::CodecId::kZlib);
  for (const auto& read : reads) {
    builder.AddBases(read.bases);
  }
  Buffer file;
  ASSERT_TRUE(builder.Finalize(&file).ok());

  // Flip a byte in the data block: CRC must catch it.
  Buffer corrupt;
  corrupt.Append(file.span());
  corrupt[corrupt.size() - 1] ^= 0xFF;
  EXPECT_FALSE(ParsedChunk::Parse(corrupt.span()).ok());

  // Truncation must be caught.
  EXPECT_FALSE(ParsedChunk::Parse(file.span().subspan(0, file.size() - 3)).ok());

  // Bad magic must be caught.
  Buffer bad_magic;
  bad_magic.Append(file.span());
  bad_magic[0] = 'X';
  EXPECT_FALSE(ParsedChunk::Parse(bad_magic.span()).ok());

  // Empty file.
  EXPECT_FALSE(ParsedChunk::Parse({}).ok());
}

TEST(ChunkTest, TypeMismatchAccessorsFail) {
  ChunkBuilder builder(RecordType::kQual, compress::CodecId::kIdentity);
  builder.AddRecord("IIII");
  Buffer file;
  ASSERT_TRUE(builder.Finalize(&file).ok());
  auto chunk = ParsedChunk::Parse(file.span());
  ASSERT_TRUE(chunk.ok());
  EXPECT_FALSE(chunk->GetBases(0).ok());
  EXPECT_FALSE(chunk->GetResult(0).ok());
  EXPECT_TRUE(chunk->GetString(0).ok());
  EXPECT_FALSE(chunk->GetString(1).ok());  // out of range
}

TEST(ManifestTest, JsonRoundTrip) {
  Manifest manifest;
  manifest.name = "test";
  manifest.chunk_size = 100'000;
  manifest.columns = StandardReadColumns();
  manifest.columns.push_back(ResultsColumn());
  manifest.chunks.push_back(ManifestChunk{"test-0", 0, 100'000});
  manifest.chunks.push_back(ManifestChunk{"test-1", 100'000, 50'000});
  manifest.reference_contigs.push_back(ManifestContig{"chr1", 248'956'422});

  auto parsed = Manifest::FromJson(manifest.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->name, "test");
  EXPECT_EQ(parsed->chunk_size, 100'000);
  EXPECT_EQ(parsed->total_records(), 150'000);
  ASSERT_EQ(parsed->columns.size(), 4u);
  EXPECT_EQ(parsed->columns[0].name, "bases");
  EXPECT_EQ(parsed->columns[3].type, RecordType::kResults);
  ASSERT_EQ(parsed->chunks.size(), 2u);
  EXPECT_EQ(parsed->chunks[1].first_record, 100'000);
  ASSERT_EQ(parsed->reference_contigs.size(), 1u);
  EXPECT_EQ(parsed->reference_contigs[0].length, 248'956'422);
}

TEST(ManifestTest, RejectsNonContiguousChunks) {
  Manifest manifest;
  manifest.name = "bad";
  manifest.columns = StandardReadColumns();
  manifest.chunks.push_back(ManifestChunk{"bad-0", 0, 10});
  manifest.chunks.push_back(ManifestChunk{"bad-1", 99, 10});  // gap
  EXPECT_FALSE(Manifest::FromJson(manifest.ToJson()).ok());
}

TEST(ManifestTest, ColumnLookupAndFileNames) {
  Manifest manifest;
  manifest.name = "ds";
  manifest.columns = StandardReadColumns();
  manifest.chunks.push_back(ManifestChunk{"ds-0", 0, 10});
  EXPECT_TRUE(manifest.HasColumn("qual"));
  EXPECT_FALSE(manifest.HasColumn("results"));
  EXPECT_EQ(manifest.ChunkFileName(0, "bases"), "ds-0.bases");
}

TEST(DatasetTest, WriteOpenReadVerify) {
  ScopedTempDir dir("agdtest");
  auto reads = MakeReads(120);

  AgdWriter::Options options;
  options.chunk_size = 50;  // forces 3 chunks (50+50+20)
  auto writer = AgdWriter::Create(dir.path(), "ds", options);
  ASSERT_TRUE(writer.ok());
  for (const auto& read : reads) {
    ASSERT_TRUE(writer->Append(read).ok());
  }
  ASSERT_TRUE(writer->Finalize().ok());

  auto dataset = AgdDataset::Open(dir.path());
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->num_chunks(), 3u);
  EXPECT_EQ(dataset->manifest().total_records(), 120);

  auto verified = dataset->Verify();
  ASSERT_TRUE(verified.ok());
  EXPECT_EQ(*verified, 120);

  auto loaded = dataset->ReadAllReads();
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), reads.size());
  for (size_t i = 0; i < reads.size(); ++i) {
    EXPECT_EQ((*loaded)[i], reads[i]) << i;
  }
}

TEST(DatasetTest, SelectiveColumnAccess) {
  ScopedTempDir dir("agdtest");
  auto reads = MakeReads(30);
  AgdWriter::Options options;
  options.chunk_size = 30;
  auto writer = AgdWriter::Create(dir.path(), "ds", options);
  ASSERT_TRUE(writer.ok());
  for (const auto& read : reads) {
    ASSERT_TRUE(writer->Append(read).ok());
  }
  ASSERT_TRUE(writer->Finalize().ok());

  auto dataset = AgdDataset::Open(dir.path());
  ASSERT_TRUE(dataset.ok());
  // Reading just the qual column must not require the others.
  auto qual = dataset->ReadChunk(0, "qual");
  ASSERT_TRUE(qual.ok());
  EXPECT_EQ(qual->record_count(), 30u);
  EXPECT_EQ(*qual->GetString(7), reads[7].qual);
  // Unknown column is an error.
  EXPECT_FALSE(dataset->ReadChunk(0, "variants").ok());
  EXPECT_FALSE(dataset->ReadChunk(9, "qual").ok());
}

TEST(DatasetTest, AddResultsColumn) {
  ScopedTempDir dir("agdtest");
  auto reads = MakeReads(60);
  AgdWriter::Options options;
  options.chunk_size = 25;
  auto writer = AgdWriter::Create(dir.path(), "ds", options);
  ASSERT_TRUE(writer.ok());
  for (const auto& read : reads) {
    ASSERT_TRUE(writer->Append(read).ok());
  }
  ASSERT_TRUE(writer->Finalize().ok());

  genome::GenomeSpec gspec;
  gspec.num_contigs = 1;
  gspec.contig_length = 10'000;
  genome::ReferenceGenome reference = genome::GenerateGenome(gspec);

  auto dataset = AgdDataset::Open(dir.path());
  ASSERT_TRUE(dataset.ok());
  std::vector<std::vector<align::AlignmentResult>> results(3);
  size_t sizes[3] = {25, 25, 10};
  for (size_t ci = 0; ci < 3; ++ci) {
    for (size_t i = 0; i < sizes[ci]; ++i) {
      align::AlignmentResult r;
      r.location = static_cast<int64_t>(ci * 1000 + i);
      r.cigar = "101M";
      results[ci].push_back(r);
    }
  }
  ASSERT_TRUE(dataset->AddResultsColumn(reference, results, compress::CodecId::kZlib).ok());

  // Reopen: results column present, reference recorded, verification passes.
  auto reopened = AgdDataset::Open(dir.path());
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(reopened->manifest().HasColumn("results"));
  ASSERT_EQ(reopened->manifest().reference_contigs.size(), 1u);
  auto chunk = reopened->ReadChunk(1, "results");
  ASSERT_TRUE(chunk.ok());
  EXPECT_EQ(chunk->GetResult(3)->location, 1003);
  EXPECT_TRUE(reopened->Verify().ok());

  // Adding again must fail.
  EXPECT_FALSE(reopened->AddResultsColumn(reference, results, compress::CodecId::kZlib).ok());
}

TEST(DatasetTest, OpenMissingDirectoryFails) {
  EXPECT_FALSE(AgdDataset::Open("/nonexistent/persona/dataset").ok());
}

TEST(RecordTypeTest, NamesRoundTrip) {
  for (RecordType type : {RecordType::kBases, RecordType::kQual, RecordType::kMetadata,
                          RecordType::kResults}) {
    auto back = RecordTypeFromName(RecordTypeName(type));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, type);
  }
  EXPECT_FALSE(RecordTypeFromName("variants").ok());
}

}  // namespace
}  // namespace persona::format
