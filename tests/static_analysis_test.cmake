# Negative-compile harness for the static-analysis gate (included from
# tests/CMakeLists.txt).
#
# Each snippet under tests/static_analysis/ is a single-file program with a
# documented expectation: the positive control must build, the violation snippets
# must NOT. Two layers enforce it:
#
#   1. Configure time: try_compile() each snippet and FATAL_ERROR if any outcome
#      flips — a regression in the gate (annotation macros gutted, [[nodiscard]]
#      dropped, flags lost) breaks the build before a single test runs.
#   2. Test time: the same snippets are registered with CTest as -fsyntax-only
#      compiler invocations (WILL_FAIL for the violations), so `ctest` re-verifies
#      the gate on every run and the suite lists it explicitly.
#
# The thread-safety snippets (unguarded_access, lock_order) are Clang-only: GCC
# compiles the annotation macros to nothing, so only the Clang CI leg can reject
# them. discarded_status must fail under every supported compiler — [[nodiscard]]
# is standard C++ and -Werror is unconditional.

set(_sa_src_dir ${CMAKE_CURRENT_SOURCE_DIR}/static_analysis)
set(_sa_flags -Wall -Wextra -Werror)
set(_sa_is_clang FALSE)
if(CMAKE_CXX_COMPILER_ID MATCHES "Clang")
  set(_sa_is_clang TRUE)
  list(APPEND _sa_flags -Wthread-safety)
endif()
list(JOIN _sa_flags " " _sa_flags_str)

# Re-evaluate on every configure: try_compile caches its result variable, and a
# stale cached verdict would mask a regression introduced since the last configure.
function(persona_check_snippet name expect_build)
  unset(_sa_result CACHE)
  try_compile(_sa_result
    ${CMAKE_CURRENT_BINARY_DIR}/static_analysis/${name}
    SOURCES ${_sa_src_dir}/${name}.cc
    CMAKE_FLAGS
      -DINCLUDE_DIRECTORIES=${PROJECT_SOURCE_DIR}
      -DCMAKE_CXX_FLAGS=${_sa_flags_str}
    CXX_STANDARD 20
    CXX_STANDARD_REQUIRED TRUE
    OUTPUT_VARIABLE _sa_output)
  if(expect_build AND NOT _sa_result)
    message(FATAL_ERROR
      "static-analysis gate: positive control '${name}' failed to compile — the "
      "harness itself is broken (flags or include path), so the negative cases "
      "prove nothing.\n${_sa_output}")
  elseif(NOT expect_build AND _sa_result)
    message(FATAL_ERROR
      "static-analysis gate: violation snippet '${name}' COMPILED — the gate no "
      "longer rejects this class of bug. Check the annotation macros in "
      "src/util/mutex.h, the [[nodiscard]] markers, and the warning flags.")
  endif()

  # CTest mirror of the same check. -fsyntax-only keeps it to a fraction of a
  # second per snippet; WILL_FAIL inverts the verdict for the violation cases.
  add_test(NAME static_analysis_${name}
    COMMAND ${CMAKE_CXX_COMPILER} -std=c++20 -fsyntax-only ${_sa_flags}
            -I${PROJECT_SOURCE_DIR} ${_sa_src_dir}/${name}.cc)
  if(NOT expect_build)
    set_tests_properties(static_analysis_${name} PROPERTIES WILL_FAIL TRUE)
  endif()
endfunction()

persona_check_snippet(ok_annotated TRUE)
persona_check_snippet(discarded_status FALSE)
if(_sa_is_clang)
  persona_check_snippet(unguarded_access FALSE)
  persona_check_snippet(lock_order FALSE)
else()
  message(STATUS "static-analysis gate: thread-safety snippets skipped "
                 "(${CMAKE_CXX_COMPILER_ID} has no -Wthread-safety; the Clang CI "
                 "leg runs them)")
endif()

# Reconfigure when a snippet changes, not just when this file does.
file(GLOB _sa_snippets CONFIGURE_DEPENDS ${_sa_src_dir}/*.cc)
