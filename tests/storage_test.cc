// Tests for the storage substrates: memory store, local store, throttled devices, and
// the simulated distributed object store.

#include <gtest/gtest.h>

#include <thread>

#include "src/storage/ceph_sim.h"
#include "src/storage/local_store.h"
#include "src/storage/memory_store.h"
#include "src/util/file_util.h"
#include "src/util/stopwatch.h"

namespace persona::storage {
namespace {

void ExerciseStoreContract(ObjectStore* store) {
  Buffer out;
  EXPECT_FALSE(store->Exists("a"));
  EXPECT_EQ(store->Get("a", &out).code(), StatusCode::kNotFound);
  EXPECT_FALSE(store->Size("a").ok());
  EXPECT_FALSE(store->Delete("a").ok());

  ASSERT_TRUE(store->Put("a", std::string_view("hello")).ok());
  ASSERT_TRUE(store->Put("ab", std::string_view("world!")).ok());
  ASSERT_TRUE(store->Put("b", std::string_view("x")).ok());
  EXPECT_TRUE(store->Exists("a"));
  EXPECT_EQ(*store->Size("ab"), 6u);

  ASSERT_TRUE(store->Get("ab", &out).ok());
  EXPECT_EQ(out.view(), "world!");

  // Overwrite.
  ASSERT_TRUE(store->Put("a", std::string_view("HELLO")).ok());
  ASSERT_TRUE(store->Get("a", &out).ok());
  EXPECT_EQ(out.view(), "HELLO");

  auto list = store->List("a");
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->size(), 2u);

  ASSERT_TRUE(store->Delete("a").ok());
  EXPECT_FALSE(store->Exists("a"));

  StoreStats stats = store->stats();
  EXPECT_GT(stats.bytes_written, 0u);
  EXPECT_GT(stats.bytes_read, 0u);
  EXPECT_GE(stats.write_ops, 4u);
}

TEST(MemoryStoreTest, Contract) {
  MemoryStore store;
  ExerciseStoreContract(&store);
}

TEST(LocalStoreTest, Contract) {
  ScopedTempDir dir("storetest");
  auto store = LocalStore::Create(dir.path() + "/objs", nullptr);
  ASSERT_TRUE(store.ok());
  ExerciseStoreContract(store->get());
}

TEST(CephSimStoreTest, Contract) {
  CephSimConfig config;
  config.per_node_bandwidth = 0;  // unthrottled for the contract test
  CephSimStore store(config);
  ExerciseStoreContract(&store);
}

TEST(LocalStoreTest, FilesLandOnDisk) {
  ScopedTempDir dir("storetest");
  auto store = LocalStore::Create(dir.path() + "/objs", nullptr);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("chunk-0.bases", std::string_view("data")).ok());
  EXPECT_TRUE(FileExists(dir.path() + "/objs/chunk-0.bases"));
}

TEST(ThrottledDeviceTest, ProfilesHaveExpectedRatios) {
  DeviceProfile single = DeviceProfile::SingleDisk();
  DeviceProfile raid = DeviceProfile::Raid0();
  DeviceProfile nic = DeviceProfile::TenGbeNic();
  EXPECT_EQ(raid.bandwidth_bytes_per_sec, 6 * single.bandwidth_bytes_per_sec);
  EXPECT_GT(nic.bandwidth_bytes_per_sec, raid.bandwidth_bytes_per_sec);
  EXPECT_EQ(DeviceProfile::Unlimited().bandwidth_bytes_per_sec, 0u);

  // Scaled profiles preserve the ratio.
  DeviceProfile scaled = DeviceProfile::SingleDisk(0.01);
  EXPECT_NEAR(static_cast<double>(scaled.bandwidth_bytes_per_sec),
              0.01 * static_cast<double>(single.bandwidth_bytes_per_sec),
              static_cast<double>(single.bandwidth_bytes_per_sec) * 0.001);
}

TEST(ThrottledDeviceTest, ThrottlesTransfers) {
  DeviceProfile profile;
  profile.bandwidth_bytes_per_sec = 10'000'000;  // 10 MB/s
  profile.op_latency_sec = 0;
  ThrottledDevice device(profile);
  device.Read(1 << 20);  // warm up the burst allowance
  Stopwatch timer;
  device.Read(2 << 20);  // 2 MB at 10 MB/s ~ 0.2 s
  double elapsed = timer.ElapsedSeconds();
  EXPECT_GT(elapsed, 0.08);
  EXPECT_LT(elapsed, 1.0);
  EXPECT_EQ(device.bytes_read(), (1u << 20) + (2u << 20));
}

TEST(ThrottledDeviceTest, SharedBandwidthStarvesConcurrentReaders) {
  // Two threads transferring through one device take about twice as long each.
  DeviceProfile profile;
  profile.bandwidth_bytes_per_sec = 20'000'000;
  ThrottledDevice device(profile);
  device.Write(4 << 20);  // drain burst
  Stopwatch timer;
  std::thread other([&] { device.Write(4 << 20); });
  device.Read(4 << 20);
  other.join();
  // 8 MB total at 20 MB/s ~ 0.4 s (minus residual burst credit).
  EXPECT_GT(timer.ElapsedSeconds(), 0.15);
}

TEST(MemoryStoreTest, ThrottledStoreIsSlower) {
  auto slow_device = std::make_shared<ThrottledDevice>(
      DeviceProfile{5'000'000, 0, "slow"});
  MemoryStore throttled(slow_device);
  MemoryStore fast;

  std::string payload(4 << 20, 'x');
  ASSERT_TRUE(fast.Put("k", payload).ok());
  ASSERT_TRUE(throttled.Put("k", payload).ok());  // consumes the burst

  Buffer out;
  Stopwatch fast_timer;
  ASSERT_TRUE(fast.Get("k", &out).ok());
  double fast_sec = fast_timer.ElapsedSeconds();

  Stopwatch slow_timer;
  ASSERT_TRUE(throttled.Get("k", &out).ok());
  double slow_sec = slow_timer.ElapsedSeconds();
  EXPECT_GT(slow_sec, fast_sec * 5);
}

TEST(CephSimStoreTest, ReplicationConsumesReplicaBandwidth) {
  CephSimConfig config;
  config.num_osd_nodes = 4;
  config.replication = 3;
  config.per_node_bandwidth = 0;  // unthrottled: just count bytes
  config.op_latency_sec = 0;
  CephSimStore store(config);

  std::string payload(1 << 20, 'y');
  ASSERT_TRUE(store.Put("obj", payload).ok());
  auto per_node = store.PerNodeBytes();
  uint64_t total = 0;
  int touched = 0;
  for (uint64_t bytes : per_node) {
    total += bytes;
    touched += bytes > 0 ? 1 : 0;
  }
  EXPECT_EQ(total, 3u << 20);  // 3 replicas
  EXPECT_EQ(touched, 3);

  Buffer out;
  ASSERT_TRUE(store.Get("obj", &out).ok());
  EXPECT_EQ(out.size(), 1u << 20);
  uint64_t total_after = 0;
  for (uint64_t bytes : store.PerNodeBytes()) {
    total_after += bytes;
  }
  EXPECT_EQ(total_after, 4u << 20);  // read pays only the primary
}

TEST(CephSimStoreTest, PlacementIsStable) {
  CephSimConfig config;
  config.per_node_bandwidth = 0;
  config.op_latency_sec = 0;
  CephSimStore a(config);
  CephSimStore b(config);
  std::string payload(1024, 'z');
  ASSERT_TRUE(a.Put("chunk-17.bases", payload).ok());
  ASSERT_TRUE(b.Put("chunk-17.bases", payload).ok());
  EXPECT_EQ(a.PerNodeBytes(), b.PerNodeBytes());
}

TEST(CephSimStoreTest, ManyObjectsSpreadAcrossNodes) {
  CephSimConfig config;
  config.num_osd_nodes = 7;
  config.replication = 1;
  config.per_node_bandwidth = 0;
  config.op_latency_sec = 0;
  CephSimStore store(config);
  std::string payload(1000, 'w');
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(store.Put("obj-" + std::to_string(i), payload).ok());
  }
  int nodes_used = 0;
  for (uint64_t bytes : store.PerNodeBytes()) {
    nodes_used += bytes > 0 ? 1 : 0;
  }
  EXPECT_EQ(nodes_used, 7);  // hash placement should touch every node
}

}  // namespace
}  // namespace persona::storage
