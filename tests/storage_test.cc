// Tests for the storage substrates: memory store, local store, throttled devices, the
// simulated distributed object store, the sharded-namespace adapter, and the
// batched/async I/O protocol (io_scheduler).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/storage/ceph_sim.h"
#include "src/storage/local_store.h"
#include "src/storage/memory_store.h"
#include "src/storage/sharded_store.h"
#include "src/util/file_util.h"
#include "src/util/stopwatch.h"

namespace persona::storage {
namespace {

void ExerciseStoreContract(ObjectStore* store) {
  Buffer out;
  EXPECT_FALSE(store->Exists("a"));
  EXPECT_EQ(store->Get("a", &out).code(), StatusCode::kNotFound);
  EXPECT_FALSE(store->Size("a").ok());
  EXPECT_FALSE(store->Delete("a").ok());

  ASSERT_TRUE(store->Put("a", std::string_view("hello")).ok());
  ASSERT_TRUE(store->Put("ab", std::string_view("world!")).ok());
  ASSERT_TRUE(store->Put("b", std::string_view("x")).ok());
  EXPECT_TRUE(store->Exists("a"));
  EXPECT_EQ(*store->Size("ab"), 6u);

  ASSERT_TRUE(store->Get("ab", &out).ok());
  EXPECT_EQ(out.view(), "world!");

  // Overwrite.
  ASSERT_TRUE(store->Put("a", std::string_view("HELLO")).ok());
  ASSERT_TRUE(store->Get("a", &out).ok());
  EXPECT_EQ(out.view(), "HELLO");

  auto list = store->List("a");
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->size(), 2u);

  ASSERT_TRUE(store->Delete("a").ok());
  EXPECT_FALSE(store->Exists("a"));

  StoreStats stats = store->stats();
  EXPECT_GT(stats.bytes_written, 0u);
  EXPECT_GT(stats.bytes_read, 0u);
  EXPECT_GE(stats.write_ops, 4u);
}

TEST(MemoryStoreTest, Contract) {
  MemoryStore store;
  ExerciseStoreContract(&store);
}

TEST(LocalStoreTest, Contract) {
  ScopedTempDir dir("storetest");
  auto store = LocalStore::Create(dir.path() + "/objs", nullptr);
  ASSERT_TRUE(store.ok());
  ExerciseStoreContract(store->get());
}

TEST(CephSimStoreTest, Contract) {
  CephSimConfig config;
  config.per_node_bandwidth = 0;  // unthrottled for the contract test
  CephSimStore store(config);
  ExerciseStoreContract(&store);
}

TEST(LocalStoreTest, FilesLandOnDisk) {
  ScopedTempDir dir("storetest");
  auto store = LocalStore::Create(dir.path() + "/objs", nullptr);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("chunk-0.bases", std::string_view("data")).ok());
  EXPECT_TRUE(FileExists(dir.path() + "/objs/chunk-0.bases"));
}

TEST(ThrottledDeviceTest, ProfilesHaveExpectedRatios) {
  DeviceProfile single = DeviceProfile::SingleDisk();
  DeviceProfile raid = DeviceProfile::Raid0();
  DeviceProfile nic = DeviceProfile::TenGbeNic();
  EXPECT_EQ(raid.bandwidth_bytes_per_sec, 6 * single.bandwidth_bytes_per_sec);
  EXPECT_GT(nic.bandwidth_bytes_per_sec, raid.bandwidth_bytes_per_sec);
  EXPECT_EQ(DeviceProfile::Unlimited().bandwidth_bytes_per_sec, 0u);

  // Scaled profiles preserve the ratio.
  DeviceProfile scaled = DeviceProfile::SingleDisk(0.01);
  EXPECT_NEAR(static_cast<double>(scaled.bandwidth_bytes_per_sec),
              0.01 * static_cast<double>(single.bandwidth_bytes_per_sec),
              static_cast<double>(single.bandwidth_bytes_per_sec) * 0.001);
}

TEST(ThrottledDeviceTest, ThrottlesTransfers) {
  DeviceProfile profile;
  profile.bandwidth_bytes_per_sec = 10'000'000;  // 10 MB/s
  profile.op_latency_sec = 0;
  ThrottledDevice device(profile);
  device.Read(1 << 20);  // warm up the burst allowance
  Stopwatch timer;
  device.Read(2 << 20);  // 2 MB at 10 MB/s ~ 0.2 s
  double elapsed = timer.ElapsedSeconds();
  EXPECT_GT(elapsed, 0.08);
  EXPECT_LT(elapsed, 1.0);
  EXPECT_EQ(device.bytes_read(), (1u << 20) + (2u << 20));
}

TEST(ThrottledDeviceTest, SharedBandwidthStarvesConcurrentReaders) {
  // Two threads transferring through one device take about twice as long each.
  DeviceProfile profile;
  profile.bandwidth_bytes_per_sec = 20'000'000;
  ThrottledDevice device(profile);
  device.Write(4 << 20);  // drain burst
  Stopwatch timer;
  std::thread other([&] { device.Write(4 << 20); });
  device.Read(4 << 20);
  other.join();
  // 8 MB total at 20 MB/s ~ 0.4 s (minus residual burst credit).
  EXPECT_GT(timer.ElapsedSeconds(), 0.15);
}

TEST(MemoryStoreTest, ThrottledStoreIsSlower) {
  auto slow_device = std::make_shared<ThrottledDevice>(
      DeviceProfile{5'000'000, 0, "slow"});
  MemoryStore throttled(slow_device);
  MemoryStore fast;

  std::string payload(4 << 20, 'x');
  ASSERT_TRUE(fast.Put("k", payload).ok());
  ASSERT_TRUE(throttled.Put("k", payload).ok());  // consumes the burst

  Buffer out;
  Stopwatch fast_timer;
  ASSERT_TRUE(fast.Get("k", &out).ok());
  double fast_sec = fast_timer.ElapsedSeconds();

  Stopwatch slow_timer;
  ASSERT_TRUE(throttled.Get("k", &out).ok());
  double slow_sec = slow_timer.ElapsedSeconds();
  EXPECT_GT(slow_sec, fast_sec * 5);
}

TEST(CephSimStoreTest, ReplicationConsumesReplicaBandwidth) {
  CephSimConfig config;
  config.num_osd_nodes = 4;
  config.replication = 3;
  config.per_node_bandwidth = 0;  // unthrottled: just count bytes
  config.op_latency_sec = 0;
  CephSimStore store(config);

  std::string payload(1 << 20, 'y');
  ASSERT_TRUE(store.Put("obj", payload).ok());
  auto per_node = store.PerNodeBytes();
  uint64_t total = 0;
  int touched = 0;
  for (uint64_t bytes : per_node) {
    total += bytes;
    touched += bytes > 0 ? 1 : 0;
  }
  EXPECT_EQ(total, 3u << 20);  // 3 replicas
  EXPECT_EQ(touched, 3);

  Buffer out;
  ASSERT_TRUE(store.Get("obj", &out).ok());
  EXPECT_EQ(out.size(), 1u << 20);
  uint64_t total_after = 0;
  for (uint64_t bytes : store.PerNodeBytes()) {
    total_after += bytes;
  }
  EXPECT_EQ(total_after, 4u << 20);  // read pays only the primary
}

TEST(CephSimStoreTest, PlacementIsStable) {
  CephSimConfig config;
  config.per_node_bandwidth = 0;
  config.op_latency_sec = 0;
  CephSimStore a(config);
  CephSimStore b(config);
  std::string payload(1024, 'z');
  ASSERT_TRUE(a.Put("chunk-17.bases", payload).ok());
  ASSERT_TRUE(b.Put("chunk-17.bases", payload).ok());
  EXPECT_EQ(a.PerNodeBytes(), b.PerNodeBytes());
}

TEST(CephSimStoreTest, ManyObjectsSpreadAcrossNodes) {
  CephSimConfig config;
  config.num_osd_nodes = 7;
  config.replication = 1;
  config.per_node_bandwidth = 0;
  config.op_latency_sec = 0;
  CephSimStore store(config);
  std::string payload(1000, 'w');
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(store.Put("obj-" + std::to_string(i), payload).ok());
  }
  int nodes_used = 0;
  for (uint64_t bytes : store.PerNodeBytes()) {
    nodes_used += bytes > 0 ? 1 : 0;
  }
  EXPECT_EQ(nodes_used, 7);  // hash placement should touch every node
}

// --- Sharded store. ---

std::unique_ptr<ShardedStore> MakeShardedMemory(size_t shards) {
  return ShardedStore::Create(shards,
                              [](size_t) { return std::make_unique<MemoryStore>(); });
}

TEST(ShardedStoreTest, Contract) {
  auto store = MakeShardedMemory(4);
  ExerciseStoreContract(store.get());
}

TEST(ShardedStoreTest, KeysSpreadAcrossShardsAndListMerges) {
  auto store = MakeShardedMemory(4);
  std::string payload(100, 'p');
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(store->Put("obj-" + std::to_string(i), payload).ok());
  }
  int shards_used = 0;
  for (size_t s = 0; s < store->num_shards(); ++s) {
    shards_used += store->shard(s)->stats().write_ops > 0 ? 1 : 0;
  }
  EXPECT_EQ(shards_used, 4);  // hash partitioning touches every shard

  auto keys = store->List("obj-");
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys->size(), 64u);
  EXPECT_TRUE(std::is_sorted(keys->begin(), keys->end()));

  // Aggregate stats must equal the whole workload.
  StoreStats stats = store->stats();
  EXPECT_EQ(stats.write_ops, 64u);
  EXPECT_EQ(stats.bytes_written, 64u * 100u);
}

// --- Batched / async protocol. ---

TEST(BatchIoTest, DefaultBatchLoopsScalarOpsAndReportsPerOpStatus) {
  MemoryStore store;  // inherits the sequential base-class defaults
  ASSERT_TRUE(store.Put("present-1", std::string_view("alpha")).ok());
  ASSERT_TRUE(store.Put("present-2", std::string_view("beta")).ok());

  Buffer out1;
  Buffer out2;
  Buffer out_missing;
  std::vector<GetOp> gets;
  gets.push_back({"present-1", &out1, {}});
  gets.push_back({"missing", &out_missing, {}});
  gets.push_back({"present-2", &out2, {}});
  Status status = store.GetBatch(gets);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);  // first error surfaces
  EXPECT_TRUE(gets[0].status.ok());
  EXPECT_EQ(gets[1].status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(gets[2].status.ok());  // the batch keeps going past a failed op
  EXPECT_EQ(out1.view(), "alpha");
  EXPECT_EQ(out2.view(), "beta");
}

TEST(BatchIoTest, DeleteBatchDefaultLoopsScalarDeletes) {
  MemoryStore store;  // inherits the sequential base-class default
  ASSERT_TRUE(store.Put("del-1", std::string_view("a")).ok());
  ASSERT_TRUE(store.Put("del-2", std::string_view("b")).ok());

  std::vector<DeleteOp> deletes;
  deletes.push_back({"del-1", {}});
  deletes.push_back({"missing", {}});
  deletes.push_back({"del-2", {}});
  Status status = store.DeleteBatch(deletes);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);  // first error surfaces
  EXPECT_TRUE(deletes[0].status.ok());
  EXPECT_EQ(deletes[1].status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(deletes[2].status.ok());  // the batch keeps going past a failed op
  EXPECT_FALSE(store.Exists("del-1"));
  EXPECT_FALSE(store.Exists("del-2"));
}

TEST(BatchIoTest, DeleteBatchFansOutOverShardsAndCephNodes) {
  // ShardedStore: every key must land on (and be removed from) its home shard.
  auto sharded = MakeShardedMemory(4);
  std::vector<DeleteOp> deletes;
  for (int i = 0; i < 32; ++i) {
    std::string key = "bulk-" + std::to_string(i);
    ASSERT_TRUE(sharded->Put(key, std::string_view("x")).ok());
    deletes.push_back({std::move(key), {}});
  }
  ASSERT_TRUE(sharded->DeleteBatch(deletes).ok());
  auto left = sharded->List("bulk-");
  ASSERT_TRUE(left.ok());
  EXPECT_TRUE(left->empty());

  // CephSim: the batched path overlaps the per-op metadata latency across OSD nodes,
  // so bulk cleanup beats the one-round-trip-at-a-time loop.
  CephSimConfig config;
  config.op_latency_sec = 0.002;
  CephSimStore seq_store(config);
  CephSimStore batch_store(config);
  constexpr int kObjects = 28;
  std::vector<DeleteOp> batch_deletes;
  for (int i = 0; i < kObjects; ++i) {
    std::string key = "temp-" + std::to_string(i);
    ASSERT_TRUE(seq_store.Put(key, std::string_view("x")).ok());
    ASSERT_TRUE(batch_store.Put(key, std::string_view("x")).ok());
    batch_deletes.push_back({std::move(key), {}});
  }
  Stopwatch seq_timer;
  for (int i = 0; i < kObjects; ++i) {
    ASSERT_TRUE(seq_store.Delete("temp-" + std::to_string(i)).ok());
  }
  const double seq_seconds = seq_timer.ElapsedSeconds();
  Stopwatch batch_timer;
  ASSERT_TRUE(batch_store.DeleteBatch(batch_deletes).ok());
  const double batch_seconds = batch_timer.ElapsedSeconds();
  for (const DeleteOp& op : batch_deletes) {
    EXPECT_TRUE(op.status.ok());
    EXPECT_FALSE(batch_store.Exists(op.key));
  }
  EXPECT_LT(batch_seconds, seq_seconds) << "batched delete should overlap node latency";
}

TEST(BatchIoTest, EmptyBatchesAndDefaultTicketsAreOk) {
  MemoryStore store;
  EXPECT_TRUE(store.PutBatch({}).ok());
  EXPECT_TRUE(store.GetBatch({}).ok());
  EXPECT_TRUE(store.DeleteBatch({}).ok());
  IoTicket ticket;  // default-constructed: complete + OK
  EXPECT_TRUE(ticket.done());
  EXPECT_TRUE(ticket.Await().ok());
  EXPECT_TRUE(store.SubmitAsync({}, {}).Await().ok());
}

TEST(BatchIoTest, SubmitAsyncTicketsAndWaitAllPropagateFirstError) {
  auto store = MakeShardedMemory(3);
  std::string payload = "ticket-payload";
  ASSERT_TRUE(store->Put("have", payload).ok());

  std::vector<PutOp> puts;
  puts.push_back({"async-put", std::span<const uint8_t>(
                                   reinterpret_cast<const uint8_t*>(payload.data()),
                                   payload.size()),
                  {}});
  Buffer have_out;
  Buffer missing_out;
  std::vector<GetOp> ok_gets;
  ok_gets.push_back({"have", &have_out, {}});
  std::vector<GetOp> bad_gets;
  bad_gets.push_back({"nope", &missing_out, {}});

  std::vector<IoTicket> tickets;
  tickets.push_back(store->SubmitAsync(puts, ok_gets));
  tickets.push_back(store->SubmitAsync({}, bad_gets));
  Status status = WaitAll(tickets);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(puts[0].status.ok());
  EXPECT_TRUE(ok_gets[0].status.ok());
  EXPECT_EQ(have_out.view(), payload);
  EXPECT_EQ(bad_gets[0].status.code(), StatusCode::kNotFound);
  for (const IoTicket& ticket : tickets) {
    EXPECT_TRUE(ticket.done());
  }
  // The async put really landed.
  Buffer readback;
  ASSERT_TRUE(store->Get("async-put", &readback).ok());
  EXPECT_EQ(readback.view(), payload);
}

// Deterministic payload for stress verification: the key text repeated.
std::string StressPayload(const std::string& key) {
  std::string payload;
  payload.reserve(key.size() * 17);
  for (int r = 0; r < 17; ++r) {
    payload += key;
  }
  return payload;
}

// Hammers a store with concurrent batched puts/gets/deletes and verifies that no
// object is lost or torn and that the final stats totals add up exactly.
void RunBatchedStress(ObjectStore* store) {
  constexpr int kThreads = 4;
  constexpr int kObjects = 48;  // per thread; every 3rd is deleted at the end
  std::atomic<int> torn{0};
  std::atomic<int> failed{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<std::string> keys;
      std::vector<std::string> payloads;
      for (int i = 0; i < kObjects; ++i) {
        keys.push_back("stress-t" + std::to_string(t) + "-obj-" + std::to_string(i));
        payloads.push_back(StressPayload(keys.back()));
      }
      std::vector<PutOp> puts;
      for (int i = 0; i < kObjects; ++i) {
        puts.push_back({keys[static_cast<size_t>(i)],
                        std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(
                                                     payloads[static_cast<size_t>(i)].data()),
                                                 payloads[static_cast<size_t>(i)].size()),
                        {}});
      }
      if (!store->PutBatch(puts).ok()) {
        ++failed;
        return;
      }
      std::vector<Buffer> outs(kObjects);
      std::vector<GetOp> gets;
      for (int i = 0; i < kObjects; ++i) {
        gets.push_back({keys[static_cast<size_t>(i)], &outs[static_cast<size_t>(i)], {}});
      }
      if (!store->GetBatch(gets).ok()) {
        ++failed;
        return;
      }
      for (int i = 0; i < kObjects; ++i) {
        if (outs[static_cast<size_t>(i)].view() != payloads[static_cast<size_t>(i)]) {
          ++torn;
        }
      }
      for (int i = 0; i < kObjects; i += 3) {
        if (!store->Delete(keys[static_cast<size_t>(i)]).ok()) {
          ++failed;
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  ASSERT_EQ(failed.load(), 0);
  EXPECT_EQ(torn.load(), 0);

  // Survivors: every key not divisible by 3, with intact content.
  auto keys = store->List("stress-");
  ASSERT_TRUE(keys.ok());
  constexpr size_t kDeleted = (kObjects + 2) / 3;
  EXPECT_EQ(keys->size(), static_cast<size_t>(kThreads) * (kObjects - kDeleted));
  Buffer out;
  uint64_t expected_bytes = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kObjects; ++i) {
      std::string key = "stress-t" + std::to_string(t) + "-obj-" + std::to_string(i);
      expected_bytes += StressPayload(key).size();
      if (i % 3 == 0) {
        continue;
      }
      ASSERT_TRUE(store->Get(key, &out).ok()) << key;
      EXPECT_EQ(out.view(), StressPayload(key)) << key;
    }
  }

  // Stats totals: every byte written and read exactly once by the batched phase
  // (+ the verification re-reads of the survivors, which we exclude by checking >=),
  // every op counted.
  StoreStats stats = store->stats();
  EXPECT_GE(stats.bytes_written, expected_bytes);
  EXPECT_GE(stats.bytes_read, expected_bytes);
  EXPECT_GE(stats.write_ops, static_cast<uint64_t>(kThreads) * (kObjects + kDeleted));
  EXPECT_GE(stats.read_ops, static_cast<uint64_t>(kThreads) * kObjects);
}

TEST(BatchIoTest, MultiThreadedBatchedStressOnShardedStore) {
  auto store = MakeShardedMemory(4);
  RunBatchedStress(store.get());
}

TEST(BatchIoTest, MultiThreadedBatchedStressOnCephSim) {
  CephSimConfig config;
  config.per_node_bandwidth = 0;  // unthrottled: correctness under concurrency only
  config.op_latency_sec = 0;
  CephSimStore store(config);
  RunBatchedStress(&store);
}

TEST(CephSimStoreTest, BatchedGetMatchesScalarAndParallelizesAcrossNodes) {
  CephSimConfig config;
  config.num_osd_nodes = 7;
  config.replication = 1;
  config.per_node_bandwidth = 0;   // latency-dominated
  config.op_latency_sec = 0.010;   // 10 ms per op
  CephSimStore store(config);

  constexpr int kObjects = 28;
  std::vector<std::string> keys;
  std::vector<std::string> payloads;
  std::vector<PutOp> puts;
  for (int i = 0; i < kObjects; ++i) {
    keys.push_back("par-" + std::to_string(i));
    payloads.push_back(StressPayload(keys.back()));
    puts.push_back({keys.back(),
                    std::span<const uint8_t>(
                        reinterpret_cast<const uint8_t*>(payloads.back().data()),
                        payloads.back().size()),
                    {}});
  }
  ASSERT_TRUE(store.PutBatch(puts).ok());

  // Sequential scalar loop: every op's latency is paid serially on this thread.
  std::vector<Buffer> scalar_outs(kObjects);
  Stopwatch scalar_timer;
  for (int i = 0; i < kObjects; ++i) {
    ASSERT_TRUE(
        store.Get(keys[static_cast<size_t>(i)], &scalar_outs[static_cast<size_t>(i)]).ok());
  }
  const double scalar_sec = scalar_timer.ElapsedSeconds();

  // Batched: ops overlap across the 7 per-OSD-node queues.
  std::vector<Buffer> batch_outs(kObjects);
  std::vector<GetOp> gets;
  for (int i = 0; i < kObjects; ++i) {
    gets.push_back({keys[static_cast<size_t>(i)], &batch_outs[static_cast<size_t>(i)], {}});
  }
  Stopwatch batch_timer;
  ASSERT_TRUE(store.GetBatch(gets).ok());
  const double batch_sec = batch_timer.ElapsedSeconds();

  for (int i = 0; i < kObjects; ++i) {
    EXPECT_EQ(batch_outs[static_cast<size_t>(i)].view(),
              scalar_outs[static_cast<size_t>(i)].view());
  }
  // 28 ops / 7 nodes: ideal 7x; demand >= 2x to stay robust on loaded CI machines.
  EXPECT_LT(batch_sec, scalar_sec / 2.0)
      << "batched=" << batch_sec << "s sequential=" << scalar_sec << "s";
}

// --- List-prefix edge cases (satellite). ---

void ExerciseListEdgeCases(ObjectStore* store) {
  ASSERT_TRUE(store->Put("alpha", std::string_view("1")).ok());
  ASSERT_TRUE(store->Put("beta/nested/key", std::string_view("2")).ok());
  ASSERT_TRUE(store->Put("beta/other", std::string_view("3")).ok());
  ASSERT_TRUE(store->Put("gamma", std::string_view("4")).ok());

  // Empty prefix: everything, sorted, nested keys spelled with '/'.
  auto all = store->List("");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, (std::vector<std::string>{"alpha", "beta/nested/key", "beta/other",
                                            "gamma"}));

  // Prefix past the last key: empty, not an error.
  auto past = store->List("zzz");
  ASSERT_TRUE(past.ok());
  EXPECT_TRUE(past->empty());

  // Prefix equal to a full key includes it; nested prefixes match path-wise.
  auto exact = store->List("alpha");
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(*exact, std::vector<std::string>{"alpha"});
  auto nested = store->List("beta/");
  ASSERT_TRUE(nested.ok());
  EXPECT_EQ(*nested, (std::vector<std::string>{"beta/nested/key", "beta/other"}));
}

TEST(MemoryStoreTest, ListPrefixEdgeCases) {
  MemoryStore store;
  ExerciseListEdgeCases(&store);
}

TEST(LocalStoreTest, ListPrefixEdgeCasesAndNestedKeys) {
  ScopedTempDir dir("storetest");
  auto store = LocalStore::Create(dir.path() + "/objs", nullptr);
  ASSERT_TRUE(store.ok());
  ExerciseListEdgeCases(store->get());

  // Nested keys land as nested files and round-trip through every scalar op.
  EXPECT_TRUE(FileExists(dir.path() + "/objs/beta/nested/key"));
  Buffer out;
  ASSERT_TRUE((*store)->Get("beta/nested/key", &out).ok());
  EXPECT_EQ(out.view(), "2");
  EXPECT_TRUE((*store)->Exists("beta/nested/key"));
  EXPECT_EQ(*(*store)->Size("beta/nested/key"), 1u);
  ASSERT_TRUE((*store)->Delete("beta/nested/key").ok());
  EXPECT_FALSE((*store)->Exists("beta/nested/key"));
  auto remaining = (*store)->List("beta/");
  ASSERT_TRUE(remaining.ok());
  EXPECT_EQ(*remaining, std::vector<std::string>{"beta/other"});
}

TEST(ShardedStoreTest, ListPrefixEdgeCases) {
  auto store = MakeShardedMemory(3);
  ExerciseListEdgeCases(store.get());
}

// --- Metadata ops pay the device profile and are accounted (satellite). ---

TEST(LocalStoreTest, MetadataOpsAreThrottledAndCounted) {
  ScopedTempDir dir("storetest");
  DeviceProfile profile;
  profile.bandwidth_bytes_per_sec = 0;  // unlimited bandwidth
  profile.op_latency_sec = 0.02;        // but every op pays a 20 ms round-trip
  auto device = std::make_shared<ThrottledDevice>(profile);
  auto store = LocalStore::Create(dir.path() + "/objs", device);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("meta-key", std::string_view("x")).ok());

  StoreStats before = (*store)->stats();
  Stopwatch timer;
  EXPECT_TRUE((*store)->Exists("meta-key"));
  EXPECT_EQ(*(*store)->Size("meta-key"), 1u);
  ASSERT_TRUE((*store)->Delete("meta-key").ok());
  const double elapsed = timer.ElapsedSeconds();
  StoreStats after = (*store)->stats();

  // Three metadata round-trips at 20 ms each.
  EXPECT_GT(elapsed, 0.05);
  EXPECT_EQ(after.read_ops - before.read_ops, 2u);    // Exists + Size
  EXPECT_EQ(after.write_ops - before.write_ops, 1u);  // Delete
  EXPECT_EQ(after.bytes_read, before.bytes_read);     // no payload moved
}

TEST(CephSimStoreTest, MetadataOpsAreCounted) {
  CephSimConfig config;
  config.per_node_bandwidth = 0;
  config.op_latency_sec = 0;
  CephSimStore store(config);
  ASSERT_TRUE(store.Put("meta", std::string_view("x")).ok());
  StoreStats before = store.stats();
  EXPECT_TRUE(store.Exists("meta"));
  EXPECT_EQ(*store.Size("meta"), 1u);
  ASSERT_TRUE(store.Delete("meta").ok());
  StoreStats after = store.stats();
  EXPECT_EQ(after.read_ops - before.read_ops, 2u);
  EXPECT_EQ(after.write_ops - before.write_ops, 1u);
}

}  // namespace
}  // namespace persona::storage
