// Tests for the SNAP seed index and the FM-index (suffix array, BWT search, locate),
// cross-checked against naive oracles.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/align/fm_index.h"
#include "src/align/seed_index.h"
#include "src/genome/generator.h"
#include "src/util/rng.h"

namespace persona::align {
namespace {

genome::ReferenceGenome TestReference(int64_t length, uint64_t seed = 42) {
  genome::GenomeSpec spec;
  spec.num_contigs = 2;
  spec.contig_length = length / 2;
  spec.seed = seed;
  return genome::GenerateGenome(spec);
}

// --- Seed index ---

TEST(SeedIndexTest, PackSeedRejectsNAndShortWindows) {
  uint64_t seed;
  EXPECT_TRUE(SeedIndex::PackSeed("ACGTACGTACGT", 0, 12, &seed));
  EXPECT_FALSE(SeedIndex::PackSeed("ACGTACGTACGT", 1, 12, &seed));  // runs off the end
  EXPECT_FALSE(SeedIndex::PackSeed("ACGNACGTACGT", 0, 12, &seed));  // contains N
}

TEST(SeedIndexTest, PackSeedIsPositional) {
  uint64_t a;
  uint64_t b;
  ASSERT_TRUE(SeedIndex::PackSeed("ACGTACGTA", 0, 8, &a));
  ASSERT_TRUE(SeedIndex::PackSeed("ACGTACGTA", 1, 8, &b));
  EXPECT_NE(a, b);
}

TEST(SeedIndexTest, BuildValidatesOptions) {
  genome::ReferenceGenome ref = TestReference(2000);
  SeedIndexOptions options;
  options.seed_length = 4;
  EXPECT_FALSE(SeedIndex::Build(ref, options).ok());
  options.seed_length = 33;
  EXPECT_FALSE(SeedIndex::Build(ref, options).ok());
  options.seed_length = 16;
  options.build_stride = 0;
  EXPECT_FALSE(SeedIndex::Build(ref, options).ok());
}

TEST(SeedIndexTest, LookupFindsEveryIndexedPosition) {
  genome::ReferenceGenome ref = TestReference(20'000);
  SeedIndexOptions options;
  options.seed_length = 16;
  auto index = SeedIndex::Build(ref, options);
  ASSERT_TRUE(index.ok());

  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    size_t ci = rng.Uniform(ref.num_contigs());
    const std::string& seq = ref.contig(ci).sequence;
    size_t off = rng.Uniform(seq.size() - 16);
    uint64_t seed;
    ASSERT_TRUE(SeedIndex::PackSeed(seq, off, 16, &seed));
    auto hits = index->Lookup(seed);
    int64_t expected = ref.contig_start(ci) + static_cast<int64_t>(off);
    EXPECT_TRUE(std::find(hits.begin(), hits.end(), static_cast<uint32_t>(expected)) !=
                hits.end())
        << "position " << expected << " missing from seed hits";
  }
}

TEST(SeedIndexTest, LookupReturnsOnlyTruePositions) {
  genome::ReferenceGenome ref = TestReference(10'000);
  SeedIndexOptions options;
  options.seed_length = 20;
  auto index = SeedIndex::Build(ref, options);
  ASSERT_TRUE(index.ok());

  Rng rng(6);
  for (int trial = 0; trial < 100; ++trial) {
    size_t ci = rng.Uniform(ref.num_contigs());
    const std::string& seq = ref.contig(ci).sequence;
    size_t off = rng.Uniform(seq.size() - 20);
    uint64_t seed;
    ASSERT_TRUE(SeedIndex::PackSeed(seq, off, 20, &seed));
    for (uint32_t pos : index->Lookup(seed)) {
      auto slice = ref.Slice(static_cast<int64_t>(pos), 20);
      ASSERT_TRUE(slice.ok());
      EXPECT_EQ(*slice, seq.substr(off, 20));
    }
  }
}

TEST(SeedIndexTest, UnknownSeedReturnsEmpty) {
  genome::ReferenceGenome ref = TestReference(5'000);
  SeedIndexOptions options;
  options.seed_length = 20;
  auto index = SeedIndex::Build(ref, options);
  ASSERT_TRUE(index.ok());
  // A poly-A seed is vanishingly unlikely in a 5kb random genome.
  uint64_t seed;
  ASSERT_TRUE(SeedIndex::PackSeed(std::string(20, 'A'), 0, 20, &seed));
  EXPECT_TRUE(index->Lookup(seed).empty());
}

TEST(SeedIndexTest, StrideReducesPositions) {
  genome::ReferenceGenome ref = TestReference(20'000);
  SeedIndexOptions dense;
  dense.seed_length = 16;
  SeedIndexOptions sparse = dense;
  sparse.build_stride = 4;
  auto a = SeedIndex::Build(ref, dense);
  auto b = SeedIndex::Build(ref, sparse);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(a->num_positions(), b->num_positions() * 3);
  EXPECT_GT(a->MemoryBytes(), b->MemoryBytes());
}

// --- Suffix array ---

std::vector<int32_t> NaiveSuffixArray(std::span<const uint8_t> text) {
  std::vector<int32_t> sa(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    sa[i] = static_cast<int32_t>(i);
  }
  std::sort(sa.begin(), sa.end(), [&](int32_t a, int32_t b) {
    return std::lexicographical_compare(text.begin() + a, text.end(), text.begin() + b,
                                        text.end());
  });
  return sa;
}

TEST(SuffixArrayTest, MatchesNaiveOnRandomTexts) {
  Rng rng(17);
  for (int trial = 0; trial < 30; ++trial) {
    size_t len = 2 + rng.Uniform(300);
    std::vector<uint8_t> text(len);
    for (size_t i = 0; i < len - 1; ++i) {
      text[i] = static_cast<uint8_t>(1 + rng.Uniform(4));
    }
    text[len - 1] = 0;  // sentinel
    EXPECT_EQ(BuildSuffixArray(text), NaiveSuffixArray(text)) << "trial " << trial;
  }
}

TEST(SuffixArrayTest, HandlesHighlyRepetitiveText) {
  std::vector<uint8_t> text;
  for (int i = 0; i < 500; ++i) {
    text.push_back(1 + (i % 2));  // ABAB...
  }
  text.push_back(0);
  EXPECT_EQ(BuildSuffixArray(text), NaiveSuffixArray(text));
}

// --- FM-index ---

class FmIndexTest : public ::testing::Test {
 protected:
  FmIndexTest() : reference_(TestReference(6'000)) {
    // Concatenated text for the naive oracle.
    for (const auto& contig : reference_.contigs()) {
      text_ += contig.sequence;
    }
    auto built = FmIndex::Build(reference_);
    index_ = std::make_unique<FmIndex>(std::move(built).value());
  }

  // All occurrences of `pattern` in the concatenated text (naive scan).
  std::set<int64_t> NaiveFind(std::string_view pattern) const {
    std::set<int64_t> hits;
    size_t pos = text_.find(pattern, 0);
    while (pos != std::string::npos) {
      hits.insert(static_cast<int64_t>(pos));
      pos = text_.find(pattern, pos + 1);
    }
    return hits;
  }

  genome::ReferenceGenome reference_;
  std::string text_;
  std::unique_ptr<FmIndex> index_;
};

TEST_F(FmIndexTest, CountMatchesNaiveScan) {
  Rng rng(23);
  for (int trial = 0; trial < 100; ++trial) {
    size_t len = 4 + rng.Uniform(24);
    size_t start = rng.Uniform(text_.size() - len);
    std::string pattern = text_.substr(start, len);
    auto iv = index_->Count(pattern);
    EXPECT_EQ(static_cast<size_t>(iv.size()), NaiveFind(pattern).size()) << pattern;
  }
}

TEST_F(FmIndexTest, AbsentPatternHasEmptyInterval) {
  // Patterns with N can never match.
  EXPECT_TRUE(index_->Count("ACGTNACGT").empty());
  // A 40-char random pattern is essentially never present in 6kb.
  Rng rng(29);
  std::string pattern;
  static const char kBases[] = {'A', 'C', 'G', 'T'};
  for (int i = 0; i < 40; ++i) {
    pattern.push_back(kBases[rng.Uniform(4)]);
  }
  if (NaiveFind(pattern).empty()) {
    EXPECT_TRUE(index_->Count(pattern).empty());
  }
}

TEST_F(FmIndexTest, LocateRecoversAllPositions) {
  Rng rng(31);
  for (int trial = 0; trial < 60; ++trial) {
    size_t len = 8 + rng.Uniform(16);
    size_t start = rng.Uniform(text_.size() - len);
    std::string pattern = text_.substr(start, len);
    auto iv = index_->Count(pattern);
    std::vector<int64_t> located;
    index_->Locate(iv, 10'000, &located);
    std::set<int64_t> got(located.begin(), located.end());
    EXPECT_EQ(got, NaiveFind(pattern)) << pattern;
  }
}

TEST_F(FmIndexTest, LocateHonorsMaxHits) {
  // Short patterns are frequent; cap should bound output.
  auto iv = index_->Count("AC");
  ASSERT_GT(iv.size(), 4);
  std::vector<int64_t> located;
  index_->Locate(iv, 4, &located);
  EXPECT_EQ(located.size(), 4u);
}

TEST_F(FmIndexTest, BatchedLocateIsByteIdenticalToSerial) {
  // Locate's lockstep prefetch-batched walk must reproduce LocateSerial exactly
  // — same positions, same order, same max_hits cutoff point — across interval
  // sizes from singleton to hundreds of suffixes.
  Rng rng(37);
  for (int trial = 0; trial < 80; ++trial) {
    const size_t len = 1 + rng.Uniform(14);
    const size_t start = rng.Uniform(text_.size() - len);
    const std::string pattern = text_.substr(start, len);
    const FmIndex::Interval iv = index_->Count(pattern);
    for (size_t max_hits : {size_t{0}, size_t{1}, size_t{3}, size_t{10'000}}) {
      std::vector<int64_t> serial;
      std::vector<int64_t> batched;
      index_->LocateSerial(iv, max_hits, &serial);
      index_->Locate(iv, max_hits, &batched);
      ASSERT_EQ(batched, serial) << "pattern=" << pattern << " max_hits=" << max_hits;
    }
  }
}

TEST_F(FmIndexTest, ExtendBackwardAgreesWithCount) {
  std::string pattern = text_.substr(100, 12);
  FmIndex::Interval iv = index_->Whole();
  for (auto it = pattern.rbegin(); it != pattern.rend(); ++it) {
    iv = index_->ExtendBackward(iv, *it);
  }
  auto direct = index_->Count(pattern);
  EXPECT_EQ(iv.lo, direct.lo);
  EXPECT_EQ(iv.hi, direct.hi);
}

TEST_F(FmIndexTest, TextLengthMatchesReference) {
  EXPECT_EQ(index_->text_length(), reference_.total_length());
  EXPECT_GT(index_->MemoryBytes(), 0u);
}

TEST(FmIndexBuildTest, SampleRateSweepStillLocates) {
  genome::ReferenceGenome ref = TestReference(3'000, 77);
  std::string text;
  for (const auto& contig : ref.contigs()) {
    text += contig.sequence;
  }
  for (int rate : {1, 4, 16, 64}) {
    FmIndex::Options options;
    options.sa_sample_rate = rate;
    auto index = FmIndex::Build(ref, options);
    ASSERT_TRUE(index.ok()) << rate;
    std::string pattern = text.substr(500, 15);
    auto iv = index->Count(pattern);
    ASSERT_FALSE(iv.empty());
    std::vector<int64_t> located;
    index->Locate(iv, 100, &located);
    ASSERT_FALSE(located.empty());
    for (int64_t pos : located) {
      EXPECT_EQ(text.substr(static_cast<size_t>(pos), pattern.size()), pattern);
    }
  }
}

TEST(FmIndexBuildTest, RejectsBadOptions) {
  genome::ReferenceGenome ref = TestReference(1'000);
  FmIndex::Options options;
  options.sa_sample_rate = 0;
  EXPECT_FALSE(FmIndex::Build(ref, options).ok());
}

}  // namespace
}  // namespace persona::align
