// Thin POSIX TCP wrappers for the stream-ingest service (ROADMAP: stream-ingest
// workload; the resident-service shape of arXiv:1208.4436's multi-stage streaming
// composition).
//
// Connection owns one connected socket and exposes whole-message semantics: SendAll
// loops over short/interrupted sends with MSG_NOSIGNAL (a vanished peer surfaces as a
// kUnavailable Status, never a SIGPIPE), RecvAll loops over short reads and
// distinguishes a clean close at a message boundary from a mid-message truncation.
// SocketServer accepts connections with a poll loop so Shutdown() can stop a blocked
// accept promptly without platform-specific close/shutdown races.

#ifndef PERSONA_SRC_INGEST_SOCKET_H_
#define PERSONA_SRC_INGEST_SOCKET_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/result.h"

namespace persona::ingest {

class Connection {
 public:
  Connection() = default;
  explicit Connection(int fd) : fd_(fd) {}
  ~Connection() { Close(); }

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;
  Connection(Connection&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Connection& operator=(Connection&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // Writes all `n` bytes, looping on partial and EINTR-interrupted sends. Sends with
  // MSG_NOSIGNAL: a peer that closed mid-write returns kUnavailable (EPIPE /
  // ECONNRESET) instead of killing the process.
  [[nodiscard]] Status SendAll(const void* data, size_t n);
  [[nodiscard]] Status SendAll(std::string_view data) {
    return SendAll(data.data(), data.size());
  }

  // Reads exactly `n` bytes, looping on partial reads. A clean peer close before the
  // first byte returns kOutOfRange ("end of stream" — a frame boundary); a close
  // mid-message returns kDataLoss; transport errors return kUnavailable.
  [[nodiscard]] Status RecvAll(void* data, size_t n);

  // Half-close: no more reads will be served to the peer's writes (used by tests).
  [[nodiscard]] Status ShutdownWrite();

  // Force-abort: shuts down both directions so a thread blocked in RecvAll/SendAll
  // on this connection returns immediately (recv sees EOF, send sees EPIPE). Unlike
  // Close() the fd stays allocated, so calling it from another thread cannot race a
  // concurrent recv against fd reuse. Used by service force-shutdown.
  void Abort();

  // Receive timeout for subsequent RecvAll calls (0 = block forever). Used for the
  // session handshake so a silent client cannot pin a server thread; cleared once
  // streaming starts, because a backpressure stall is a legitimate long silence.
  [[nodiscard]] Status SetRecvTimeout(double seconds);

  void Close();

 private:
  int fd_ = -1;
};

class SocketServer {
 public:
  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;
  ~SocketServer();

  // Binds and listens on 127.0.0.1:`port` (0 = kernel-assigned; read back via
  // port()). Loopback only: the service speaks an unauthenticated frame protocol.
  [[nodiscard]] static Result<std::unique_ptr<SocketServer>> Listen(uint16_t port,
                                                                    int backlog = 16);

  uint16_t port() const { return port_; }

  // Blocks until a client connects. Returns kCancelled once Shutdown() is called and
  // kUnavailable on unrecoverable accept errors.
  [[nodiscard]] Result<Connection> Accept();

  // Stops Accept (current and future calls). Idempotent; safe from any thread.
  void Shutdown();

 private:
  SocketServer(int fd, uint16_t port) : listen_fd_(fd), port_(port) {}

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> shutdown_{false};
};

// Connects to 127.0.0.1:`port` (the test/bench/client side of SocketServer).
[[nodiscard]] Result<Connection> ConnectLoopback(uint16_t port);

// Registry of live session connections for a service's force-abort shutdown path.
// Sessions register their connection after accept and must Remove() it before
// Close(): Remove and AbortAll serialize on the same mutex and Abort never closes
// the fd, so an abort can race a session's reads but never its close (no fd-reuse
// hazard). Shared by IngestService::ForceShutdown and WorkService::ForceShutdown.
class LiveConnectionSet {
 public:
  void Add(const std::shared_ptr<Connection>& conn) EXCLUDES(mu_);
  void Remove(const Connection* conn) EXCLUDES(mu_);
  // Aborts every registered connection (under the lock; shutdown(2) does not
  // block). Returns how many were aborted.
  size_t AbortAll() EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::vector<std::weak_ptr<Connection>> conns_ GUARDED_BY(mu_);
};

}  // namespace persona::ingest

#endif  // PERSONA_SRC_INGEST_SOCKET_H_
