#include "src/ingest/wire.h"

#include "src/util/string_util.h"

namespace persona::ingest {

namespace {

constexpr size_t kHeaderBytes = 1 + sizeof(uint32_t);

bool KnownFrameType(uint8_t raw) {
  switch (static_cast<FrameType>(raw)) {
    case FrameType::kStart:
    case FrameType::kData:
    case FrameType::kEnd:
    case FrameType::kStatsRequest:
    case FrameType::kManifestRequest:
    case FrameType::kStarted:
    case FrameType::kStatsReply:
    case FrameType::kManifestReply:
    case FrameType::kDone:
    case FrameType::kError:
      return true;
  }
  return false;
}

}  // namespace

std::string_view FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kStart:
      return "Start";
    case FrameType::kData:
      return "Data";
    case FrameType::kEnd:
      return "End";
    case FrameType::kStatsRequest:
      return "StatsRequest";
    case FrameType::kManifestRequest:
      return "ManifestRequest";
    case FrameType::kStarted:
      return "Started";
    case FrameType::kStatsReply:
      return "StatsReply";
    case FrameType::kManifestReply:
      return "ManifestReply";
    case FrameType::kDone:
      return "Done";
    case FrameType::kError:
      return "Error";
  }
  return "Unknown";
}

Status WriteRawFrame(Connection& conn, uint8_t type, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    return InvalidArgumentError(StrFormat("frame payload too large: %zu bytes",
                                          payload.size()));
  }
  // The length is encoded explicitly little-endian (the documented wire format),
  // not by memcpy of host order — clients in other languages or on big-endian hosts
  // must interoperate. Header and payload go out as two sends so the payload is
  // never copied; length-prefixed framing doesn't care about write boundaries.
  char header[kHeaderBytes];
  header[0] = static_cast<char>(type);
  const uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    header[1 + i] = static_cast<char>((len >> (8 * i)) & 0xff);
  }
  PERSONA_RETURN_IF_ERROR(conn.SendAll(header, sizeof(header)));
  if (!payload.empty()) {
    return conn.SendAll(payload);
  }
  return OkStatus();
}

Status ReadRawFrame(Connection& conn, RawFrame* out) {
  char header[kHeaderBytes];
  PERSONA_RETURN_IF_ERROR(conn.RecvAll(header, sizeof(header)));
  out->type = static_cast<uint8_t>(header[0]);
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(header[1 + i])) << (8 * i);
  }
  if (len > kMaxFramePayload) {
    return DataLossError(StrFormat("frame payload length %u exceeds limit", len));
  }
  out->payload.resize(len);
  if (len > 0) {
    Status status = conn.RecvAll(out->payload.data(), len);
    if (!status.ok()) {
      // EOF between header and payload is truncation even if it hit a read boundary.
      if (status.code() == StatusCode::kOutOfRange) {
        return DataLossError("connection closed mid-frame");
      }
      return status;
    }
  }
  return OkStatus();
}

Status WriteFrame(Connection& conn, FrameType type, std::string_view payload) {
  return WriteRawFrame(conn, static_cast<uint8_t>(type), payload);
}

Status ReadFrame(Connection& conn, Frame* out) {
  RawFrame raw;
  PERSONA_RETURN_IF_ERROR(ReadRawFrame(conn, &raw));
  if (!KnownFrameType(raw.type)) {
    return DataLossError(StrFormat("unknown frame type %u", raw.type));
  }
  out->type = static_cast<FrameType>(raw.type);
  out->payload = std::move(raw.payload);
  return OkStatus();
}

}  // namespace persona::ingest
