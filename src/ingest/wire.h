// Wire format of the stream-ingest service: length-prefixed frames over TCP.
//
// Frame layout (little-endian):   type u8 | payload_length u32 | payload bytes
//
// A session is: client sends kStart (payload = dataset name), then any number of
// kData frames carrying raw FASTQ text (frames may split the text anywhere, even
// mid-line), then kEnd. The server replies kStarted after a valid kStart and kDone
// (payload = summary JSON) once the session's pipeline has drained and the manifest
// is written. At any point between data frames the client may send kStatsRequest /
// kManifestRequest; the server replies kStatsReply / kManifestReply in order. A
// mid-stream kManifestReply is a monitoring snapshot: it lists chunks accepted by
// the build stage, whose objects may still be in flight to the store — only the
// manifest object written at kDone is authoritative.
// Control replies share the ingest path's ordering — when the pipeline is
// backpressured the server is deliberately not reading the socket, so replies are
// delayed exactly like data: that is the observable backpressure signal.
// kError (payload = message) is terminal in either direction.

#ifndef PERSONA_SRC_INGEST_WIRE_H_
#define PERSONA_SRC_INGEST_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/ingest/socket.h"
#include "src/util/result.h"

namespace persona::ingest {

enum class FrameType : uint8_t {
  // Client → server.
  kStart = 1,            // payload: dataset name
  kData = 2,             // payload: raw FASTQ bytes
  kEnd = 3,              // payload: empty
  kStatsRequest = 4,     // payload: empty
  kManifestRequest = 5,  // payload: empty
  // Server → client.
  kStarted = 16,        // payload: empty
  kStatsReply = 17,     // payload: session stats JSON
  kManifestReply = 18,  // payload: manifest JSON of chunks emitted so far
  kDone = 19,           // payload: final summary JSON
  kError = 20,          // payload: error message
};

std::string_view FrameTypeName(FrameType type);

// Refuse absurd lengths before allocating: a corrupt or misaligned stream must fail
// with a parse error, not an OOM.
inline constexpr uint32_t kMaxFramePayload = 64u << 20;

// The protocol-agnostic frame core: `type u8 | payload_length u32 LE | payload`.
// The ingest session protocol and the cluster work-service protocol are different
// type vocabularies over this one encoding, so the raw read/write pair lives here
// and each protocol validates its own type set on top.
struct RawFrame {
  uint8_t type = 0;
  std::string payload;
};

// Sends one raw frame (explicit little-endian header; header and payload as two
// sends so the payload is never copied).
[[nodiscard]] Status WriteRawFrame(Connection& conn, uint8_t type,
                                   std::string_view payload);

// Receives one raw frame. A clean peer close at a frame boundary returns kOutOfRange
// ("connection closed"); a close inside a frame (header or payload) returns
// kDataLoss; an over-limit length returns kDataLoss before allocating.
[[nodiscard]] Status ReadRawFrame(Connection& conn, RawFrame* out);

struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

// Sends one ingest-protocol frame.
[[nodiscard]] Status WriteFrame(Connection& conn, FrameType type, std::string_view payload);

// Receives one ingest-protocol frame (raw frame + ingest type validation).
[[nodiscard]] Status ReadFrame(Connection& conn, Frame* out);

}  // namespace persona::ingest

#endif  // PERSONA_SRC_INGEST_WIRE_H_
