#include "src/ingest/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace persona::ingest {

namespace {

Status ErrnoStatus(std::string_view what, int err) {
  return UnavailableError(StrFormat("%.*s: %s", static_cast<int>(what.size()),
                                    what.data(), std::strerror(err)));
}

}  // namespace

Status Connection::SendAll(const void* data, size_t n) {
  if (fd_ < 0) {
    return FailedPreconditionError("send on closed connection");
  }
  const char* p = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a peer that disappeared must surface as a Status (EPIPE), not a
    // process-killing SIGPIPE; short sends are normal under TCP flow control, so
    // loop until the whole message is accepted.
    const ssize_t rc = ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoStatus("send", errno);
    }
    sent += static_cast<size_t>(rc);
  }
  return OkStatus();
}

Status Connection::RecvAll(void* data, size_t n) {
  if (fd_ < 0) {
    return FailedPreconditionError("recv on closed connection");
  }
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < n) {
    const ssize_t rc = ::recv(fd_, p + got, n - got, 0);
    if (rc < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // A receive deadline (SO_RCVTIMEO) expiring is a deadline, not a transport
        // fault: callers distinguish "peer is slow/idle" from "peer is gone".
        return DeadlineExceededError("recv: timed out");
      }
      return ErrnoStatus("recv", errno);
    }
    if (rc == 0) {
      if (got == 0) {
        return OutOfRangeError("connection closed");  // clean close at a boundary
      }
      return DataLossError("connection closed mid-message");
    }
    got += static_cast<size_t>(rc);
  }
  return OkStatus();
}

Status Connection::SetRecvTimeout(double seconds) {
  if (fd_ < 0) {
    return FailedPreconditionError("timeout on closed connection");
  }
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return ErrnoStatus("setsockopt(SO_RCVTIMEO)", errno);
  }
  return OkStatus();
}

Status Connection::ShutdownWrite() {
  if (fd_ >= 0 && ::shutdown(fd_, SHUT_WR) != 0 && errno != ENOTCONN) {
    return ErrnoStatus("shutdown(WR)", errno);
  }
  return OkStatus();
}

void Connection::Abort() {
  if (fd_ >= 0 && ::shutdown(fd_, SHUT_RDWR) != 0 && errno != ENOTCONN) {
    // Nothing to hand the error to — the blocked reader observes the abort (or its
    // absence) directly; anything but "peer already gone" is worth a debug line.
    PLOG(DEBUG) << "abort: shutdown(RDWR): " << std::strerror(errno);
  }
}

void Connection::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

SocketServer::~SocketServer() {
  Shutdown();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

Result<std::unique_ptr<SocketServer>> SocketServer::Listen(uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return ErrnoStatus("socket", errno);
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return ErrnoStatus("bind", err);
  }
  if (::listen(fd, backlog) != 0) {
    const int err = errno;
    ::close(fd);
    return ErrnoStatus("listen", err);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const int err = errno;
    ::close(fd);
    return ErrnoStatus("getsockname", err);
  }
  return std::unique_ptr<SocketServer>(new SocketServer(fd, ntohs(addr.sin_port)));
}

Result<Connection> SocketServer::Accept() {
  // Poll with a short timeout instead of blocking in accept(): Shutdown() only has to
  // flip a flag, with no reliance on close()-wakes-accept semantics.
  while (!shutdown_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (rc < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoStatus("poll", errno);
    }
    if (rc == 0) {
      continue;
    }
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      // Transient conditions must not kill a resident service's accept loop: the
      // poll above rate-limits the retry, and fd pressure (EMFILE/ENFILE) clears
      // when sessions finish. Only genuinely unrecoverable errors surface.
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
          errno == EWOULDBLOCK || errno == EMFILE || errno == ENFILE ||
          errno == ENOBUFS || errno == ENOMEM) {
        continue;
      }
      return ErrnoStatus("accept", errno);
    }
    return Connection(client);
  }
  return CancelledError("server shut down");
}

void SocketServer::Shutdown() { shutdown_.store(true, std::memory_order_release); }

void LiveConnectionSet::Add(const std::shared_ptr<Connection>& conn) {
  MutexLock lock(mu_);
  // Prune entries whose sessions ended without an explicit Remove (defensive; the
  // session contract is Remove-before-Close, but an expired weak_ptr is harmless).
  std::erase_if(conns_, [](const std::weak_ptr<Connection>& weak) {
    return weak.expired();
  });
  conns_.push_back(conn);
}

void LiveConnectionSet::Remove(const Connection* conn) {
  MutexLock lock(mu_);
  std::erase_if(conns_, [conn](const std::weak_ptr<Connection>& weak) {
    std::shared_ptr<Connection> live = weak.lock();
    return live == nullptr || live.get() == conn;
  });
}

size_t LiveConnectionSet::AbortAll() {
  MutexLock lock(mu_);
  size_t aborted = 0;
  for (const std::weak_ptr<Connection>& weak : conns_) {
    if (std::shared_ptr<Connection> live = weak.lock()) {
      live->Abort();
      ++aborted;
    }
  }
  conns_.clear();
  return aborted;
}

Result<Connection> ConnectLoopback(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return ErrnoStatus("socket", errno);
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return ErrnoStatus("connect", err);
  }
  return Connection(fd);
}

}  // namespace persona::ingest
