#include "src/ingest/service.h"

#include <cctype>
#include <system_error>
#include <utility>

#include "src/format/fastq.h"
#include "src/ingest/wire.h"
#include "src/pipeline/convert.h"
#include "src/util/json.h"
#include "src/util/logging.h"
#include "src/util/stopwatch.h"
#include "src/util/string_util.h"

namespace persona::ingest {

namespace {

bool ValidDatasetName(std::string_view name) {
  if (name.empty() || name.size() > 128) {
    return false;
  }
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '.' && c != '_' &&
        c != '-') {
      return false;
    }
  }
  return true;
}

std::string StatsJson(const IngestSessionStats& stats) {
  json::Object o;
  o["session_id"] = json::Value(stats.session_id);
  o["dataset"] = json::Value(stats.dataset);
  o["bytes_received"] = json::Value(stats.bytes_received);
  o["records_parsed"] = json::Value(stats.records_parsed);
  o["chunks_built"] = json::Value(stats.chunks_built);
  o["records_built"] = json::Value(stats.records_built);
  o["records_in_flight"] = json::Value(stats.records_in_flight);
  o["done"] = json::Value(stats.done);
  o["status"] = json::Value(stats.status.ToString());
  return json::Value(std::move(o)).Dump();
}

std::string SummaryJson(const IngestSessionStats& stats, std::string_view manifest_key) {
  json::Object o;
  o["dataset"] = json::Value(stats.dataset);
  o["records"] = json::Value(stats.records_built);
  o["chunks"] = json::Value(stats.chunks_built);
  o["bytes_received"] = json::Value(stats.bytes_received);
  o["seconds"] = json::Value(stats.seconds);
  o["manifest_key"] = json::Value(manifest_key);
  return json::Value(std::move(o)).Dump();
}

// Frame write for refusal and terminal paths, where the peer may already have
// disconnected. A failed write means there is nobody left to tell; the session
// teardown proceeds regardless, so the failure is only worth a debug line.
void WriteFrameBestEffort(Connection& conn, FrameType type, std::string_view payload) {
  Status status = WriteFrame(conn, type, payload);
  if (!status.ok()) {
    PLOG(DEBUG) << "terminal frame not delivered (peer gone): " << status.ToString();
  }
}

}  // namespace

struct IngestService::SessionState {
  uint64_t id = 0;

  std::atomic<uint64_t> bytes_received{0};
  std::atomic<uint64_t> records_parsed{0};
  std::atomic<bool> done{false};
  // Set as RunSession's very last action: the thread has nothing left to block on,
  // so a reaper's join completes immediately.
  std::atomic<bool> reapable{false};

  mutable Mutex mu;
  std::string dataset GUARDED_BY(mu);
  std::shared_ptr<pipeline::FastqToAgdCore> core GUARDED_BY(mu);  // set after the handshake
  Status status GUARDED_BY(mu);
  double seconds GUARDED_BY(mu) = 0;
  size_t pool_capacity GUARDED_BY(mu) = 0;
  size_t pool_available GUARDED_BY(mu) = 0;
  pipeline::ChunkPipelineReport report GUARDED_BY(mu);

  IngestSessionStats Snapshot() const {
    IngestSessionStats stats;
    stats.session_id = id;
    stats.bytes_received = bytes_received.load(std::memory_order_relaxed);
    stats.records_parsed = records_parsed.load(std::memory_order_relaxed);
    MutexLock lock(mu);
    stats.dataset = dataset;
    if (core != nullptr) {
      stats.chunks_built = core->chunks();
      stats.records_built = core->records();
    }
    // The two counters are read at slightly different instants; clamp instead of
    // underflowing when the transform advanced between the loads.
    stats.records_in_flight = stats.records_parsed > stats.records_built
                                  ? stats.records_parsed - stats.records_built
                                  : 0;
    stats.done = done.load(std::memory_order_acquire);
    if (stats.done) {
      stats.status = status;
      stats.seconds = seconds;
      stats.pool_capacity = pool_capacity;
      stats.pool_available = pool_available;
      stats.report = report;
    }
    return stats;
  }
};

Result<std::unique_ptr<IngestService>> IngestService::Start(storage::ObjectStore* store,
                                                            const IngestOptions& options) {
  if (store == nullptr) {
    return InvalidArgumentError("IngestService: null store");
  }
  PERSONA_ASSIGN_OR_RETURN(std::unique_ptr<SocketServer> server,
                           SocketServer::Listen(options.port));
  auto service = std::unique_ptr<IngestService>(
      new IngestService(store, options, std::move(server)));
  service->accept_thread_ = std::thread([svc = service.get()] { svc->AcceptLoop(); });
  return service;
}

IngestService::~IngestService() { Shutdown(); }

void IngestService::Shutdown() {
  // Serializes concurrent Shutdown calls (including the destructor's): joins must
  // not race. The accept loop never takes this mutex, so it cannot deadlock.
  MutexLock shutdown_lock(shutdown_mu_);
  server_->Shutdown();
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  std::vector<SessionThread> threads;
  {
    MutexLock lock(mu_);
    threads.swap(session_threads_);
  }
  for (SessionThread& entry : threads) {
    entry.thread.join();
  }
}

void IngestService::ForceShutdown() {
  // Aborting the sockets first turns every session blocked in recv (handshake,
  // between frames, mid-frame) into an immediate error, so the graceful path's
  // joins cannot be pinned by a stalled client. Sessions whose pipeline is busy
  // on the store still drain their in-flight work — the abort cuts the *input*,
  // it does not abandon buffers mid-write.
  server_->Shutdown();
  const size_t aborted = live_conns_.AbortAll();
  if (aborted > 0) {
    PLOG(INFO) << "force shutdown: aborted " << aborted << " live session socket(s)";
  }
  Shutdown();
}

void IngestService::ReapFinishedLocked() {
  std::erase_if(session_threads_, [](SessionThread& entry) {
    if (!entry.session->reapable.load(std::memory_order_acquire)) {
      return false;
    }
    entry.thread.join();
    return true;
  });
  // Session history is bounded too: a resident service over millions of
  // connections must not retain every past SessionState (each holds a full
  // per-stage report). Oldest completed entries are dropped first; live sessions
  // are always kept.
  for (auto it = sessions_.begin();
       sessions_.size() > options_.max_session_history && it != sessions_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

bool IngestService::ClaimDataset(const std::string& dataset) {
  MutexLock lock(mu_);
  return active_datasets_.insert(dataset).second;
}

void IngestService::ReleaseDataset(const std::string& dataset) {
  MutexLock lock(mu_);
  active_datasets_.erase(dataset);
}

std::vector<IngestSessionStats> IngestService::Sessions() const {
  std::vector<IngestSessionStats> out;
  MutexLock lock(mu_);
  out.reserve(sessions_.size());
  for (const auto& session : sessions_) {
    out.push_back(session->Snapshot());
  }
  return out;
}

void IngestService::AcceptLoop() {
  while (true) {
    Result<Connection> conn = server_->Accept();
    if (!conn.ok()) {
      // kCancelled is the normal Shutdown path; anything else means the resident
      // service stopped accepting — record it so operators can see the death
      // instead of a silently zombie process.
      if (conn.status().code() != StatusCode::kCancelled) {
        MutexLock lock(mu_);
        accept_status_ = conn.status();
      }
      break;
    }
    auto moved = std::make_shared<Connection>(std::move(*conn));
    // The accept thread claims the session slot itself — checking a counter the
    // session threads increment later would let a connection burst pass the cap
    // before any of them got scheduled.
    const size_t now_active = active_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (options_.max_concurrent_sessions > 0 &&
        now_active > options_.max_concurrent_sessions) {
      active_.fetch_sub(1, std::memory_order_relaxed);
      WriteFrameBestEffort(*moved, FrameType::kError, "too many concurrent sessions");
      continue;  // destructor closes the connection
    }
    auto session = std::make_shared<SessionState>();
    session->id = next_session_id_.fetch_add(1, std::memory_order_relaxed);
    MutexLock lock(mu_);
    ReapFinishedLocked();
    SessionThread entry;
    entry.session = session;
    try {
      entry.thread = std::thread(
          [this, session, moved] { RunSession(std::move(*moved), session); });
    } catch (const std::system_error&) {
      // Thread/resource exhaustion must refuse one client, not std::terminate the
      // resident service from an uncaught accept-thread exception.
      active_.fetch_sub(1, std::memory_order_relaxed);
      WriteFrameBestEffort(*moved, FrameType::kError,
                           "server cannot start a session thread");
      continue;
    }
    sessions_.push_back(session);
    session_threads_.push_back(std::move(entry));
  }
}

void IngestService::RunSession(Connection conn_in,
                               const std::shared_ptr<SessionState>& session) {
  // active_ was claimed by the accept thread (admission control); released here.
  auto conn = std::make_shared<Connection>(std::move(conn_in));
  // Registered for ForceShutdown; Remove-before-Close is the registry contract
  // that keeps an abort from racing the close (see LiveConnectionSet).
  live_conns_.Add(conn);

  // --- Handshake: one Start frame within the deadline, then streaming. ---
  Status status = conn->SetRecvTimeout(options_.handshake_timeout_sec);
  std::string manifest_key;
  std::string claimed_dataset;
  if (status.ok()) {
    Frame frame;
    status = ReadFrame(*conn, &frame);
    if (status.ok() && frame.type != FrameType::kStart) {
      status = InvalidArgumentError(
          StrFormat("expected Start frame, got %s",
                    std::string(FrameTypeName(frame.type)).c_str()));
    }
    if (status.ok() && !ValidDatasetName(frame.payload)) {
      status = InvalidArgumentError("invalid dataset name");
    }
    if (status.ok()) {
      if (ClaimDataset(frame.payload)) {
        claimed_dataset = frame.payload;
      } else {
        // Two live sessions on one name would interleave writes to the same chunk
        // keys and leave a manifest that matches neither stream.
        status = AlreadyExistsError("dataset '" + frame.payload +
                                    "' is already being ingested");
      }
    }
    if (status.ok()) {
      manifest_key = frame.payload + ".manifest.json";
      MutexLock lock(session->mu);
      session->dataset = frame.payload;
      session->core = std::make_shared<pipeline::FastqToAgdCore>(
          frame.payload, options_.chunk_size, options_.codec);
    }
    if (status.ok()) {
      // Backpressure stalls are legitimate (the source blocks before recv, so the
      // timer never runs against a stalled pipeline); the idle deadline only guards
      // against a client that is connected but silent.
      status = conn->SetRecvTimeout(options_.idle_timeout_sec);
    }
    if (status.ok()) {
      status = WriteFrame(*conn, FrameType::kStarted, "");
    }
  }

  if (status.ok()) {
    status = StreamDataset(conn, session);
  }
  if (!claimed_dataset.empty()) {
    ReleaseDataset(claimed_dataset);
  }

  {
    MutexLock lock(session->mu);
    session->status = status;
  }
  session->done.store(true, std::memory_order_release);

  // Best-effort terminal frame; the client may already be gone.
  if (status.ok()) {
    WriteFrameBestEffort(*conn, FrameType::kDone,
                         SummaryJson(session->Snapshot(), manifest_key));
  } else {
    WriteFrameBestEffort(*conn, FrameType::kError, status.ToString());
  }
  live_conns_.Remove(conn.get());
  conn->Close();
  completed_.fetch_add(1, std::memory_order_relaxed);
  active_.fetch_sub(1, std::memory_order_relaxed);
  session->reapable.store(true, std::memory_order_release);
}

Status IngestService::StreamDataset(const std::shared_ptr<Connection>& conn,
                                    const std::shared_ptr<SessionState>& session) {
  std::shared_ptr<pipeline::FastqToAgdCore> core;
  std::string dataset;
  {
    MutexLock lock(session->mu);
    core = session->core;
    dataset = session->dataset;
  }
  const size_t records_per_chunk =
      options_.chunk_size > 0 ? static_cast<size_t>(options_.chunk_size) : 1;
  auto batcher = std::make_shared<format::FastqRecordBatcher>(records_per_chunk);

  pipeline::ChunkPipeline pipeline(options_.pipeline);
  pipeline.SetWriter(store_, 3);

  // The record source is the session's only socket reader. It refills the batcher one
  // frame at a time and, crucially, runs on the pipeline's source thread: when the
  // bounded input queue is full this function simply is not called, no bytes leave
  // the kernel receive buffer, and TCP flow control stalls the client. Control frames
  // are answered inline, which means a backpressured session also answers its control
  // plane late — stats cannot lie about a stall.
  pipeline.SetRecordSource(
      [this, conn, batcher, session,
       core](std::optional<pipeline::ChunkPipeline::Input>* out) -> Status {
        while (!batcher->HasBatch() && !batcher->finished()) {
          Frame frame;
          Status status = ReadFrame(*conn, &frame);
          if (!status.ok()) {
            if (status.code() == StatusCode::kOutOfRange) {
              return UnavailableError("client disconnected before End");
            }
            return status;  // mid-frame truncation or transport error
          }
          switch (frame.type) {
            case FrameType::kData:
              session->bytes_received.fetch_add(frame.payload.size(),
                                                std::memory_order_relaxed);
              PERSONA_RETURN_IF_ERROR(batcher->Feed(frame.payload));
              session->records_parsed.store(batcher->total_records(),
                                            std::memory_order_relaxed);
              break;
            case FrameType::kEnd:
              PERSONA_RETURN_IF_ERROR(batcher->Finish());
              break;
            case FrameType::kStatsRequest:
              PERSONA_RETURN_IF_ERROR(WriteFrame(*conn, FrameType::kStatsReply,
                                                 StatsJson(session->Snapshot())));
              break;
            case FrameType::kManifestRequest:
              PERSONA_RETURN_IF_ERROR(
                  WriteFrame(*conn, FrameType::kManifestReply,
                             core->ManifestSnapshot().ToJson()));
              break;
            default:
              return DataLossError(
                  StrFormat("unexpected %s frame mid-stream",
                            std::string(FrameTypeName(frame.type)).c_str()));
          }
        }
        std::optional<std::vector<genome::Read>> batch = batcher->TakeBatch();
        if (batch.has_value()) {
          pipeline::ChunkPipeline::Input input;
          input.reads = std::move(*batch);
          *out = std::move(input);
        }
        return OkStatus();
      });

  const std::string manifest_key = dataset + ".manifest.json";
  pipeline.SetTransform(
      "agd-build",
      [core](pipeline::ChunkPipeline::Input&& input,
             pipeline::ChunkPipeline::Emitter& emit) -> Status {
        return core->BuildChunk(std::move(input), emit);
      },
      /*ordered=*/false,
      // End-of-stream epilogue: the manifest rides the same writer stage as the
      // chunks. Skipped on cancellation, so a truncated stream never leaves a
      // manifest behind (its orphan chunk objects are unreachable without one).
      [core, manifest_key](pipeline::ChunkPipeline::Emitter& emit) -> Status {
        pipeline::ChunkPipeline::BufferRef object = emit.AcquireBuffer();
        object->Append(std::string_view(core->ManifestSnapshot().ToJson()));
        return emit.Write(manifest_key, std::move(object));
      });

  Stopwatch timer;
  Result<pipeline::ChunkPipelineReport> report = pipeline.Run();
  const Status status = report.status();
  {
    MutexLock lock(session->mu);
    session->seconds = timer.ElapsedSeconds();
    session->pool_capacity = pipeline.pool_capacity();
    session->pool_available = pipeline.pool_available();
    if (report.ok()) {
      session->report = std::move(*report);
    }
  }
  return status;
}

}  // namespace persona::ingest
