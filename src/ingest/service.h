// IngestService: the long-running stream-ingest workload (ROADMAP's last open
// workload; paper §4's "tools are resident dataflow services" premise, the streaming
// multi-stage composition argued by arXiv:1208.4436, with the operational stats
// surface BioWorkbench-style monitoring needs).
//
// A resident process accepts FASTQ records over loopback TCP (wire.h framing) and
// emits AGD chunks into an ObjectStore. Each client connection is one session: a
// ChunkPipeline in record mode whose source thread reads frames off the socket, cuts
// chunk-sized read batches (FastqRecordBatcher), and hands them to the same
// FastqToAgdCore column builders the offline importer uses — so a streamed dataset is
// bit-identical to `ImportFastqToAgd` on the same input.
//
// Backpressure is real, not buffered away: the source thread is the only reader of
// the socket, and it pushes into the pipeline's bounded MPMC input queue. When the
// store or any stage falls behind, that push blocks, the source stops reading, the
// kernel receive buffer fills, and TCP flow control pushes back on the client. Peak
// in-flight memory is therefore bounded by the pipeline's queue depths and buffer
// pool, never by the length of the input stream.
//
// Session end:
//   - clean (client sends End): the pipeline drains — the partial tail chunk is
//     flushed, the transform's on_drain writes "<dataset>.manifest.json" through the
//     writer stage — and the server replies Done with a summary.
//   - disconnect mid-stream: the record source fails, the session's pipeline cancels
//     (drain epilogues skipped — no manifest for a truncated stream), and every
//     pooled buffer is verifiably returned (pool_capacity == pool_available).

#ifndef PERSONA_SRC_INGEST_SERVICE_H_
#define PERSONA_SRC_INGEST_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/compress/codec.h"
#include "src/ingest/socket.h"
#include "src/pipeline/chunk_pipeline.h"
#include "src/storage/object_store.h"
#include "src/util/mutex.h"
#include "src/util/result.h"

namespace persona::ingest {

struct IngestOptions {
  uint16_t port = 0;              // 0 = kernel-assigned (read back via port())
  int64_t chunk_size = 100'000;   // records per AGD chunk (paper §4.5 default)
  compress::CodecId codec = compress::CodecId::kZlib;
  pipeline::ChunkPipeline::Options pipeline;  // per-session stage widths / depths
  double handshake_timeout_sec = 10;  // Start frame deadline for a new connection
  // Mid-stream receive deadline. A client that connects and then goes silent pins a
  // session (its pipeline threads, pool, and a Shutdown() waiter) forever; with a
  // deadline the session fails with DeadlineExceeded and its resources are reclaimed.
  // Backpressure is unaffected: a stalled pipeline blocks the source *before* recv,
  // so the timer only runs while the server is genuinely waiting on the client.
  // 0 = wait forever (previous behaviour).
  double idle_timeout_sec = 0;
  // Connections beyond this many live sessions are refused with an Error frame
  // (each session owns a pipeline's threads and pools; unbounded admission would
  // let a connection burst exhaust the process). 0 = unlimited.
  size_t max_concurrent_sessions = 64;
  // Completed sessions retained for Sessions() history; oldest evicted first so a
  // resident service's memory does not grow with its connection count.
  size_t max_session_history = 256;
};

// Point-in-time view of one session; also the payload of a StatsReply control frame.
// Safe to snapshot while the session is streaming.
struct IngestSessionStats {
  uint64_t session_id = 0;
  std::string dataset;
  uint64_t bytes_received = 0;   // FASTQ payload bytes read off the socket
  uint64_t records_parsed = 0;   // records out of the FASTQ parser
  uint64_t chunks_built = 0;     // chunk work items through the transform
  uint64_t records_built = 0;    // records in those chunks
  // records_parsed - records_built: bounded by the pipeline depth when
  // backpressure is working (the stream-ingest invariant the tests pin down).
  uint64_t records_in_flight = 0;
  bool done = false;
  // Valid once done:
  Status status;
  double seconds = 0;
  size_t pool_capacity = 0;   // buffer-pool bookkeeping (leak check)
  size_t pool_available = 0;
  pipeline::ChunkPipelineReport report;  // populated when status.ok()
};

class IngestService {
 public:
  ~IngestService();  // Shutdown() + join

  IngestService(const IngestService&) = delete;
  IngestService& operator=(const IngestService&) = delete;

  // Binds, starts the accept loop, and returns a running service writing AGD to
  // `store` (which must outlive the service).
  static Result<std::unique_ptr<IngestService>> Start(storage::ObjectStore* store,
                                                      const IngestOptions& options);

  uint16_t port() const { return server_->port(); }

  // Stops accepting new clients and waits for in-flight sessions to drain (their
  // sockets keep being served until the client finishes or disconnects). Idempotent.
  // Note: a connected client that stalls forever mid-stream pins Shutdown with it —
  // use ForceShutdown when the sessions must not outlive the call.
  void Shutdown() EXCLUDES(shutdown_mu_, mu_);

  // Force-abort variant: closes every live session socket (blocked recvs fail
  // immediately, their sessions end with a transport error) and then runs the
  // normal Shutdown join path. In-flight store writes still complete — only the
  // client input is cut. Idempotent, like Shutdown.
  void ForceShutdown() EXCLUDES(shutdown_mu_, mu_);

  // Snapshots of every session, in accept order (running and completed).
  std::vector<IngestSessionStats> Sessions() const EXCLUDES(mu_);

  size_t active_sessions() const { return active_.load(std::memory_order_relaxed); }
  size_t completed_sessions() const {
    return completed_.load(std::memory_order_relaxed);
  }

  // OK while the accept loop is (or cleanly stopped) accepting; the fatal error if
  // it died and the service will take no more clients.
  [[nodiscard]] Status accept_status() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return accept_status_;
  }

 private:
  struct SessionState;

  IngestService(storage::ObjectStore* store, const IngestOptions& options,
                std::unique_ptr<SocketServer> server)
      : store_(store), options_(options), server_(std::move(server)) {}

  void AcceptLoop();
  void RunSession(Connection conn, const std::shared_ptr<SessionState>& session);
  // The streaming body: handshake already done; returns the pipeline outcome.
  Status StreamDataset(const std::shared_ptr<Connection>& conn,
                       const std::shared_ptr<SessionState>& session);
  // Joins threads whose sessions have fully finished (called on each accept, so a
  // resident service does not accumulate one dead thread per past connection).
  void ReapFinishedLocked() REQUIRES(mu_);
  // Registers `dataset` as actively ingesting; false if another live session owns
  // it (two sessions writing the same chunk keys would corrupt the dataset).
  bool ClaimDataset(const std::string& dataset) EXCLUDES(mu_);
  void ReleaseDataset(const std::string& dataset) EXCLUDES(mu_);

  storage::ObjectStore* const store_;
  const IngestOptions options_;
  std::unique_ptr<SocketServer> server_;
  std::thread accept_thread_;

  struct SessionThread {
    std::thread thread;
    std::shared_ptr<SessionState> session;
  };

  LiveConnectionSet live_conns_;  // session sockets, for ForceShutdown
  mutable Mutex mu_;
  Mutex shutdown_mu_;  // serializes Shutdown (thread joins)
  std::vector<std::shared_ptr<SessionState>> sessions_ GUARDED_BY(mu_);
  std::vector<SessionThread> session_threads_ GUARDED_BY(mu_);
  std::set<std::string> active_datasets_ GUARDED_BY(mu_);
  Status accept_status_ GUARDED_BY(mu_);
  std::atomic<size_t> active_{0};
  std::atomic<size_t> completed_{0};
  std::atomic<uint64_t> next_session_id_{0};
};

}  // namespace persona::ingest

#endif  // PERSONA_SRC_INGEST_SERVICE_H_
