#include "src/pipeline/dedup.h"

#include <bit>
#include <memory>
#include <unordered_set>
#include <vector>

#include "src/format/agd_chunk.h"
#include "src/pipeline/chunk_pipeline.h"
#include "src/util/stopwatch.h"

namespace persona::pipeline {

namespace {

// Signature: position + orientation (+ mate position when paired), mixed into 64 bits.
// Matches Samblaster's key: reads mapping to the exact same location/orientation.
inline uint64_t Signature(const align::AlignmentResult& r) {
  uint64_t sig = static_cast<uint64_t>(r.location) << 2;
  sig |= r.reverse() ? 1u : 0u;
  if (r.mate_location >= 0) {
    sig |= 2u;
    uint64_t mate = static_cast<uint64_t>(r.mate_location);
    // splitmix-style mix of the mate position into the high bits.
    mate *= 0xBF58476D1CE4E5B9ull;
    mate ^= mate >> 27;
    sig ^= mate << 20;
  }
  return sig;
}

// Minimal open-addressing set tuned like a dense hashtable: power-of-two capacity,
// linear probing, flat storage, no per-entry allocation.
class DenseSignatureSet {
 public:
  explicit DenseSignatureSet(size_t expected) {
    size_t capacity = std::bit_ceil(std::max<size_t>(expected * 2, 16));
    slots_.assign(capacity, kEmpty);
    mask_ = capacity - 1;
  }

  // Returns true if `sig` was newly inserted (first occurrence).
  bool Insert(uint64_t sig) {
    if (sig == kEmpty) {
      sig = 0x1234567890ABCDEFull;  // remap the reserved value
    }
    size_t bucket = Mix(sig) & mask_;
    while (true) {
      uint64_t current = slots_[bucket];
      if (current == sig) {
        return false;
      }
      if (current == kEmpty) {
        slots_[bucket] = sig;
        ++size_;
        if (size_ * 2 > slots_.size()) {
          Grow();
        }
        return true;
      }
      bucket = (bucket + 1) & mask_;
    }
  }

 private:
  static constexpr uint64_t kEmpty = ~0ull;

  static uint64_t Mix(uint64_t x) {
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 33;
    return x;
  }

  void Grow() {
    std::vector<uint64_t> old;
    old.swap(slots_);
    slots_.assign(old.size() * 2, kEmpty);
    mask_ = slots_.size() - 1;
    size_ = 0;
    for (uint64_t sig : old) {
      if (sig != kEmpty) {
        Insert(sig);
      }
    }
  }

  std::vector<uint64_t> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace

DedupReport MarkDuplicatesDense(std::span<align::AlignmentResult> results) {
  Stopwatch timer;
  DedupReport report;
  DenseSignatureSet seen(results.size());
  for (align::AlignmentResult& r : results) {
    ++report.total;
    if (!r.mapped()) {
      continue;
    }
    if (!seen.Insert(Signature(r))) {
      r.flags |= align::kFlagDuplicate;
      ++report.duplicates;
    }
  }
  report.seconds = timer.ElapsedSeconds();
  report.reads_per_sec =
      report.seconds > 0 ? static_cast<double>(report.total) / report.seconds : 0;
  return report;
}

DedupReport MarkDuplicatesChained(std::span<align::AlignmentResult> results) {
  Stopwatch timer;
  DedupReport report;
  // Node-based chained hashing with a conservative load factor: every insert allocates,
  // every lookup chases pointers — the baseline's cost model.
  std::unordered_set<uint64_t> seen;
  seen.max_load_factor(0.7f);
  for (align::AlignmentResult& r : results) {
    ++report.total;
    if (!r.mapped()) {
      continue;
    }
    if (!seen.insert(Signature(r)).second) {
      r.flags |= align::kFlagDuplicate;
      ++report.duplicates;
    }
  }
  report.seconds = timer.ElapsedSeconds();
  report.reads_per_sec =
      report.seconds > 0 ? static_cast<double>(report.total) / report.seconds : 0;
  return report;
}

Result<DedupReport> DedupAgdResults(storage::ObjectStore* store,
                                    const format::Manifest& manifest,
                                    compress::CodecId codec,
                                    const ChunkPipeline::Options& pipeline_options) {
  if (!manifest.HasColumn("results")) {
    return FailedPreconditionError("dedup requires a results column");
  }
  Stopwatch timer;

  // Duplicate marking is a running scan over one global signature set, so the mark
  // stage is ordered (chunks in dataset order); the results-column reads ahead of it
  // and the rebuild/compress/write-back behind it overlap across chunks.
  ChunkPipeline pipeline(pipeline_options);
  pipeline.SetManifestSource(store, &manifest, {"results"});
  pipeline.SetWriter(store, 1);

  DedupReport report;
  auto seen = std::make_shared<DenseSignatureSet>(
      static_cast<size_t>(manifest.total_records()));
  pipeline.SetTransform(
      "dedup-mark",
      [&report, &manifest, seen, codec](ChunkPipeline::Input&& input,
                                        ChunkPipeline::Emitter& emit) -> Status {
        const format::ParsedChunk& results = input.column(0, 0);
        format::ChunkBuilder builder(format::RecordType::kResults, codec);
        for (size_t i = 0; i < results.record_count(); ++i) {
          PERSONA_ASSIGN_OR_RETURN(align::AlignmentResult r, results.GetResult(i));
          ++report.total;
          if (r.mapped() && !seen->Insert(Signature(r))) {
            r.flags |= align::kFlagDuplicate;
            ++report.duplicates;
          }
          builder.AddResult(r);
        }
        ChunkPipeline::SerializeRequest request;
        request.keys.push_back(manifest.chunks[input.chunk_begin].path_base + ".results");
        request.builders.push_back(std::move(builder));
        return emit.Emit(std::move(request));
      },
      /*ordered=*/true);
  PERSONA_RETURN_IF_ERROR(pipeline.Run().status());

  report.seconds = timer.ElapsedSeconds();
  report.reads_per_sec =
      report.seconds > 0 ? static_cast<double>(report.total) / report.seconds : 0;
  return report;
}

}  // namespace persona::pipeline
