#include "src/pipeline/dedup.h"

#include <bit>
#include <unordered_set>
#include <vector>

#include "src/format/agd_chunk.h"
#include "src/util/stopwatch.h"

namespace persona::pipeline {

namespace {

// Signature: position + orientation (+ mate position when paired), mixed into 64 bits.
// Matches Samblaster's key: reads mapping to the exact same location/orientation.
inline uint64_t Signature(const align::AlignmentResult& r) {
  uint64_t sig = static_cast<uint64_t>(r.location) << 2;
  sig |= r.reverse() ? 1u : 0u;
  if (r.mate_location >= 0) {
    sig |= 2u;
    uint64_t mate = static_cast<uint64_t>(r.mate_location);
    // splitmix-style mix of the mate position into the high bits.
    mate *= 0xBF58476D1CE4E5B9ull;
    mate ^= mate >> 27;
    sig ^= mate << 20;
  }
  return sig;
}

// Minimal open-addressing set tuned like a dense hashtable: power-of-two capacity,
// linear probing, flat storage, no per-entry allocation.
class DenseSignatureSet {
 public:
  explicit DenseSignatureSet(size_t expected) {
    size_t capacity = std::bit_ceil(std::max<size_t>(expected * 2, 16));
    slots_.assign(capacity, kEmpty);
    mask_ = capacity - 1;
  }

  // Returns true if `sig` was newly inserted (first occurrence).
  bool Insert(uint64_t sig) {
    if (sig == kEmpty) {
      sig = 0x1234567890ABCDEFull;  // remap the reserved value
    }
    size_t bucket = Mix(sig) & mask_;
    while (true) {
      uint64_t current = slots_[bucket];
      if (current == sig) {
        return false;
      }
      if (current == kEmpty) {
        slots_[bucket] = sig;
        ++size_;
        if (size_ * 2 > slots_.size()) {
          Grow();
        }
        return true;
      }
      bucket = (bucket + 1) & mask_;
    }
  }

 private:
  static constexpr uint64_t kEmpty = ~0ull;

  static uint64_t Mix(uint64_t x) {
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 33;
    return x;
  }

  void Grow() {
    std::vector<uint64_t> old;
    old.swap(slots_);
    slots_.assign(old.size() * 2, kEmpty);
    mask_ = slots_.size() - 1;
    size_ = 0;
    for (uint64_t sig : old) {
      if (sig != kEmpty) {
        Insert(sig);
      }
    }
  }

  std::vector<uint64_t> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace

DedupReport MarkDuplicatesDense(std::span<align::AlignmentResult> results) {
  Stopwatch timer;
  DedupReport report;
  DenseSignatureSet seen(results.size());
  for (align::AlignmentResult& r : results) {
    ++report.total;
    if (!r.mapped()) {
      continue;
    }
    if (!seen.Insert(Signature(r))) {
      r.flags |= align::kFlagDuplicate;
      ++report.duplicates;
    }
  }
  report.seconds = timer.ElapsedSeconds();
  report.reads_per_sec =
      report.seconds > 0 ? static_cast<double>(report.total) / report.seconds : 0;
  return report;
}

DedupReport MarkDuplicatesChained(std::span<align::AlignmentResult> results) {
  Stopwatch timer;
  DedupReport report;
  // Node-based chained hashing with a conservative load factor: every insert allocates,
  // every lookup chases pointers — the baseline's cost model.
  std::unordered_set<uint64_t> seen;
  seen.max_load_factor(0.7f);
  for (align::AlignmentResult& r : results) {
    ++report.total;
    if (!r.mapped()) {
      continue;
    }
    if (!seen.insert(Signature(r)).second) {
      r.flags |= align::kFlagDuplicate;
      ++report.duplicates;
    }
  }
  report.seconds = timer.ElapsedSeconds();
  report.reads_per_sec =
      report.seconds > 0 ? static_cast<double>(report.total) / report.seconds : 0;
  return report;
}

Result<DedupReport> DedupAgdResults(storage::ObjectStore* store,
                                    const format::Manifest& manifest,
                                    compress::CodecId codec) {
  if (!manifest.HasColumn("results")) {
    return FailedPreconditionError("dedup requires a results column");
  }
  Stopwatch timer;

  // Load only the results column — every chunk's column object in one batched Get.
  const size_t num_chunks = manifest.chunks.size();
  std::vector<Buffer> files(num_chunks);
  {
    std::vector<storage::GetOp> gets;
    gets.reserve(num_chunks);
    for (size_t ci = 0; ci < num_chunks; ++ci) {
      gets.push_back({manifest.ChunkFileName(ci, "results"), &files[ci], {}});
    }
    PERSONA_RETURN_IF_ERROR(store->GetBatch(gets));
  }
  std::vector<align::AlignmentResult> all;
  std::vector<size_t> chunk_sizes;
  for (size_t ci = 0; ci < num_chunks; ++ci) {
    PERSONA_ASSIGN_OR_RETURN(format::ParsedChunk chunk,
                             format::ParsedChunk::Parse(files[ci].span()));
    chunk_sizes.push_back(chunk.record_count());
    for (size_t i = 0; i < chunk.record_count(); ++i) {
      PERSONA_ASSIGN_OR_RETURN(align::AlignmentResult r, chunk.GetResult(i));
      all.push_back(std::move(r));
    }
  }

  DedupReport report = MarkDuplicatesDense(all);

  // Write the flagged results back: rebuild every chunk's column, then store them all
  // with one batched Put (the builders' output buffers stay alive for the batch).
  size_t offset = 0;
  std::vector<storage::PutOp> puts;
  puts.reserve(num_chunks);
  for (size_t ci = 0; ci < num_chunks; ++ci) {
    format::ChunkBuilder builder(format::RecordType::kResults, codec);
    for (size_t i = 0; i < chunk_sizes[ci]; ++i) {
      builder.AddResult(all[offset + i]);
    }
    offset += chunk_sizes[ci];
    files[ci].Clear();
    PERSONA_RETURN_IF_ERROR(builder.Finalize(&files[ci]));
    puts.push_back({manifest.chunks[ci].path_base + ".results", files[ci].span(), {}});
  }
  PERSONA_RETURN_IF_ERROR(store->PutBatch(puts));
  report.seconds = timer.ElapsedSeconds();
  report.reads_per_sec =
      report.seconds > 0 ? static_cast<double>(report.total) / report.seconds : 0;
  return report;
}

}  // namespace persona::pipeline
