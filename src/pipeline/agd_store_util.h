// Helpers for AGD datasets living in an ObjectStore (rather than a plain directory):
// dataset creation from reads, manifest storage, batched whole-chunk column I/O, and
// gzipped-FASTQ staging for the row-oriented baseline pipelines.

#ifndef PERSONA_SRC_PIPELINE_AGD_STORE_UTIL_H_
#define PERSONA_SRC_PIPELINE_AGD_STORE_UTIL_H_

#include <span>
#include <string>
#include <vector>

#include "src/align/alignment.h"
#include "src/format/agd_chunk.h"
#include "src/format/agd_manifest.h"
#include "src/genome/read.h"
#include "src/storage/object_store.h"

namespace persona::pipeline {

// Writes `reads` as an AGD dataset (bases/qual/metadata columns) into `store` under
// keys "<name>-<i>.<column>", plus "manifest.json". Each chunk's columns are stored
// with one batched Put. Returns the manifest.
Result<format::Manifest> WriteAgdToStore(storage::ObjectStore* store,
                                         const std::string& name,
                                         std::span<const genome::Read> reads,
                                         int64_t chunk_size,
                                         compress::CodecId codec = compress::CodecId::kZlib);

// Loads a manifest previously written by WriteAgdToStore.
Result<format::Manifest> ReadManifestFromStore(storage::ObjectStore* store);

// Fetches the named columns of chunk `chunk_index` with one batched Get — on a sharded
// or simulated-distributed store the column objects transfer in parallel. `outs` must
// be as large as `columns`; outs[i] receives the file of columns[i].
Status GetChunkColumns(storage::ObjectStore* store, const format::Manifest& manifest,
                       size_t chunk_index, std::span<const char* const> columns,
                       std::span<Buffer> outs);

// Reconstructs record `i` of an aligned chunk from its four parsed read columns —
// the one shared decode used by SAM/BSAM export and sort's row loader.
Status DecodeAlignedRecord(const format::ParsedChunk& bases,
                           const format::ParsedChunk& qual,
                           const format::ParsedChunk& metadata,
                           const format::ParsedChunk& results, size_t i,
                           genome::Read* read, align::AlignmentResult* result);

// Writes `reads` as one gzip-compressed FASTQ object (key "<name>.fastq.gz" by blocks)
// — the input format of the standalone baseline. Returns total compressed bytes.
Result<uint64_t> WriteGzippedFastqToStore(storage::ObjectStore* store,
                                          const std::string& name,
                                          std::span<const genome::Read> reads);

// Reads back a gzipped FASTQ object written by WriteGzippedFastqToStore.
Result<std::vector<genome::Read>> ReadGzippedFastqFromStore(storage::ObjectStore* store,
                                                            const std::string& name);

}  // namespace persona::pipeline

#endif  // PERSONA_SRC_PIPELINE_AGD_STORE_UTIL_H_
