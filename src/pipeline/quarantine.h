// Quarantine manifest: the durable record of work items a run (or the cluster work
// service) gave up on.
//
// skip_bad_chunks quarantines a chunk whose columns cannot be fetched or parsed and
// keeps the run alive; the cluster WorkService quarantines a group whose lease failed
// on every attempt. Both used to be report-only — visible to whoever read the return
// value and gone with the process. Persisting them as a small JSON file (written with
// WriteFileAtomic, so a crash never leaves a half manifest) gives a repair tool or a
// re-run something machine-readable to consume: which groups, which object keys, and
// why.

#ifndef PERSONA_SRC_PIPELINE_QUARANTINE_H_
#define PERSONA_SRC_PIPELINE_QUARANTINE_H_

#include <string>
#include <vector>

#include "src/util/result.h"

namespace persona::pipeline {

struct QuarantineManifest {
  // The dataset the quarantined items belong to (manifest name; may be empty when
  // the producer had no manifest in hand).
  std::string dataset;

  struct Entry {
    size_t group = 0;               // work-item (group) index
    std::vector<std::string> keys;  // object keys the item covered (may be empty)
    std::string error;              // why it was quarantined
  };
  std::vector<Entry> entries;

  std::string ToJson() const;
  static Result<QuarantineManifest> FromJson(std::string_view text);
};

// Writes `manifest` to `path` atomically (WriteFileAtomic: tmp file + rename).
[[nodiscard]] Status SaveQuarantineManifest(const std::string& path,
                                            const QuarantineManifest& manifest);

[[nodiscard]] Result<QuarantineManifest> LoadQuarantineManifest(const std::string& path);

}  // namespace persona::pipeline

#endif  // PERSONA_SRC_PIPELINE_QUARANTINE_H_
