// The Persona alignment pipeline: reader -> parser -> aligner(executor) -> writer
// (paper Figure 3), assembled on the dataflow engine. This module is the C++ analogue of
// Persona's "thin Python library that stitches nodes together into optimized subgraphs".
//
// Reader nodes fetch AGD chunk files (bases + qual columns only — selective column
// access) from an ObjectStore into pooled buffers; parser nodes decompress/parse them;
// aligner nodes split chunks into subchunks on the shared executor resource; writer
// nodes serialize the results column back to the store.

#ifndef PERSONA_SRC_PIPELINE_PERSONA_PIPELINE_H_
#define PERSONA_SRC_PIPELINE_PERSONA_PIPELINE_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/align/aligner.h"
#include "src/dataflow/executor.h"
#include "src/dataflow/graph.h"
#include "src/dataflow/stats.h"
#include "src/format/agd_manifest.h"
#include "src/pipeline/chunk_pipeline.h"
#include "src/storage/object_store.h"

namespace persona::pipeline {

class JobJournal;

struct AlignPipelineOptions {
  int read_parallelism = 2;
  int parse_parallelism = 2;
  int align_nodes = 4;        // parallel aligner kernels feeding the executor
  int write_parallelism = 2;
  int subchunk_size = 2'048;  // reads per fine-grain executor task
  // Paired-end mode (paper §1, §4.3): records are interleaved mate pairs — read 1 of a
  // pair at even record indices, read 2 at the following odd index. Every chunk must
  // then hold an even record count; subchunk boundaries are kept pair-aligned and ends
  // are aligned together via Aligner::AlignPair.
  bool paired = false;
  // Queue depth; 0 = default to the consumer-stage parallelism (paper §4.5: "default
  // queue lengths are set to the number of parallel downstream nodes they feed").
  size_t queue_depth = 0;
  compress::CodecId results_codec = compress::CodecId::kZlib;
  double utilization_sample_sec = 0;  // 0 disables the sampler
  bool collect_results = false;       // also return decoded results (tests/benches)
  // Cluster mode: when set (borrowed), chunk indices come from this shared source —
  // the in-process manifest server or a network lease client — instead of iterating
  // the local manifest, and each chunk's completion is reported back once its
  // results column is durable. Must be thread-safe.
  pipeline::WorkSource* work_source = nullptr;
  // Whether to write the updated "manifest.json" (adding the results column) after
  // the run. Cluster worker nodes turn this off: N workers racing to Put the same
  // manifest would be wasted writes at best — the coordinator owns the manifest.
  bool update_manifest = true;
  // Crash-safe resume (borrowed): the caller Loads it before the run and Clears it
  // after success; the pipeline skips journaled chunks and commits each results
  // column as it lands. Incompatible with work_source and with collect_results
  // (skipped chunks would have no decoded results).
  JobJournal* resume_journal = nullptr;
};

struct AlignRunReport {
  double seconds = 0;
  uint64_t reads = 0;
  uint64_t bases = 0;
  uint64_t chunks = 0;
  storage::StoreStats store_stats;  // deltas for this run
  align::AlignProfile profile;      // merged across executor threads
  std::vector<dataflow::UtilizationSample> utilization;
  // Decoded per-chunk results when options.collect_results is set.
  std::vector<std::vector<align::AlignmentResult>> results;
};

// Runs whole-dataset alignment. Results are written back to `store` as a "results"
// column ("<path_base>.results"). `executor` is the shared thread resource; it should
// own the machine's compute threads.
Result<AlignRunReport> RunPersonaAlignment(storage::ObjectStore* store,
                                           const format::Manifest& manifest,
                                           const align::Aligner& aligner,
                                           dataflow::Executor* executor,
                                           const AlignPipelineOptions& options);

}  // namespace persona::pipeline

#endif  // PERSONA_SRC_PIPELINE_PERSONA_PIPELINE_H_
