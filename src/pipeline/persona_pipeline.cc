#include "src/pipeline/persona_pipeline.h"

#include <array>
#include <atomic>
#include <mutex>

#include "src/dataflow/object_pool.h"
#include "src/format/agd_chunk.h"
#include "src/util/stopwatch.h"

namespace persona::pipeline {

namespace {

using BufferPool = dataflow::ObjectPool<Buffer>;

// Compressed column files of one chunk, in pooled buffers (zero-copy hand-off).
struct RawChunk {
  size_t chunk_index = 0;
  BufferPool::Ref bases_file;
  BufferPool::Ref qual_file;
};

// Parsed, decompressed chunk object.
struct ChunkObject {
  size_t chunk_index = 0;
  std::shared_ptr<format::ParsedChunk> bases;
  std::shared_ptr<format::ParsedChunk> qual;
};

// Serialized results column for one chunk.
struct ResultChunk {
  size_t chunk_index = 0;
  BufferPool::Ref file;
  uint64_t reads = 0;
  uint64_t bases = 0;
};

}  // namespace

Result<AlignRunReport> RunPersonaAlignment(storage::ObjectStore* store,
                                           const format::Manifest& manifest,
                                           const align::Aligner& aligner,
                                           dataflow::Executor* executor,
                                           const AlignPipelineOptions& options) {
  if (manifest.chunks.empty()) {
    return InvalidArgumentError("dataset has no chunks");
  }
  PERSONA_RETURN_IF_ERROR(manifest.FindColumn("bases").status());
  PERSONA_RETURN_IF_ERROR(manifest.FindColumn("qual").status());

  const storage::StoreStats store_before = store->stats();

  // Queue capacities: the explicit depth, or "the number of parallel downstream nodes
  // they feed" (paper §4.5 default).
  const size_t work_cap = options.queue_depth > 0
                              ? options.queue_depth
                              : static_cast<size_t>(options.read_parallelism);
  const size_t raw_cap = options.queue_depth > 0
                             ? options.queue_depth
                             : static_cast<size_t>(options.parse_parallelism);
  const size_t chunk_cap = options.queue_depth > 0
                               ? options.queue_depth
                               : static_cast<size_t>(options.align_nodes);
  const size_t result_cap = options.queue_depth > 0
                                ? options.queue_depth
                                : static_cast<size_t>(options.write_parallelism);

  // Bounded pool, sized by the paper's §4.5 rule: "the total quantity of objects is the
  // sum of the queue lengths and the number of dataflow nodes that use an object". Each
  // RawChunk parks 2 buffers (bases + qual) in raw_queue and while a reader/parser holds
  // it; each ResultChunk parks 1 in result_queue and while an aligner/writer holds it.
  // Undersizing deadlocks: with every buffer parked on the input side, aligners block in
  // Acquire() and nothing downstream can ever release one.
  const size_t pool_size = raw_cap * 2 + result_cap +
                           static_cast<size_t>(options.read_parallelism) * 2 +
                           static_cast<size_t>(options.parse_parallelism) * 2 +
                           static_cast<size_t>(options.align_nodes) +
                           static_cast<size_t>(options.write_parallelism) + 4;
  auto buffer_pool =
      BufferPool::Create(pool_size, [] { return std::make_unique<Buffer>(); },
                         [](Buffer* b) { b->Clear(); });

  dataflow::Graph graph;
  auto work_queue = dataflow::Graph::MakeQueue<size_t>(work_cap);
  auto raw_queue = dataflow::Graph::MakeQueue<RawChunk>(raw_cap);
  auto chunk_queue = dataflow::Graph::MakeQueue<ChunkObject>(chunk_cap);
  auto result_queue = dataflow::Graph::MakeQueue<ResultChunk>(result_cap);

  // --- Source: the manifest server hands out chunk indices. In cluster mode the
  // source is shared across nodes (options.work_source); locally it iterates chunks. ---
  const size_t num_chunks = manifest.chunks.size();
  if (options.work_source) {
    graph.AddSource<size_t>("manifest-server", work_queue, options.work_source);
  } else {
    auto next_chunk = std::make_shared<std::atomic<size_t>>(0);
    graph.AddSource<size_t>("manifest-server", work_queue,
                            [next_chunk, num_chunks]() -> std::optional<size_t> {
                              size_t i = next_chunk->fetch_add(1);
                              if (i >= num_chunks) {
                                return std::nullopt;
                              }
                              return i;
                            });
  }

  // --- Reader: fetch the two needed columns into pooled buffers with one batched Get,
  // so both column objects stream from their OSD nodes/shards in parallel. ---
  graph.AddStage<size_t, RawChunk>(
      "reader", options.read_parallelism, work_queue, raw_queue,
      [store, &manifest, buffer_pool](size_t&& index, MpmcQueue<RawChunk>& out) -> Status {
        RawChunk raw;
        raw.chunk_index = index;
        raw.bases_file = buffer_pool->Acquire();
        raw.qual_file = buffer_pool->Acquire();
        std::array<storage::GetOp, 2> gets = {
            storage::GetOp{manifest.ChunkFileName(index, "bases"), raw.bases_file.get(),
                           {}},
            storage::GetOp{manifest.ChunkFileName(index, "qual"), raw.qual_file.get(),
                           {}},
        };
        PERSONA_RETURN_IF_ERROR(store->GetBatch(gets));
        out.Push(std::move(raw));
        return OkStatus();
      });

  // --- Parser: decompress + parse into chunk objects; recycle the raw buffers. ---
  graph.AddStage<RawChunk, ChunkObject>(
      "agd-parser", options.parse_parallelism, raw_queue, chunk_queue,
      [](RawChunk&& raw, MpmcQueue<ChunkObject>& out) -> Status {
        ChunkObject chunk;
        chunk.chunk_index = raw.chunk_index;
        PERSONA_ASSIGN_OR_RETURN(format::ParsedChunk bases,
                                 format::ParsedChunk::Parse(raw.bases_file->span()));
        PERSONA_ASSIGN_OR_RETURN(format::ParsedChunk qual,
                                 format::ParsedChunk::Parse(raw.qual_file->span()));
        if (bases.record_count() != qual.record_count()) {
          return DataLossError("bases/qual record counts disagree");
        }
        chunk.bases = std::make_shared<format::ParsedChunk>(std::move(bases));
        chunk.qual = std::make_shared<format::ParsedChunk>(std::move(qual));
        out.Push(std::move(chunk));
        return OkStatus();
      });

  // --- Aligner nodes: subchunk via the executor resource (paper Fig. 4). ---
  auto profile_mu = std::make_shared<std::mutex>();
  auto merged_profile = std::make_shared<align::AlignProfile>();
  auto collected = std::make_shared<std::vector<std::vector<align::AlignmentResult>>>();
  if (options.collect_results) {
    collected->resize(num_chunks);
  }
  const bool collect = options.collect_results;
  const bool paired = options.paired;
  // Paired mode must never split a mate pair across executor tasks.
  const int subchunk_size =
      options.paired ? std::max(options.subchunk_size + (options.subchunk_size % 2), 2)
                     : std::max(options.subchunk_size, 1);
  const compress::CodecId results_codec = options.results_codec;

  graph.AddStage<ChunkObject, ResultChunk>(
      "aligner", options.align_nodes, chunk_queue, result_queue,
      [&aligner, executor, buffer_pool, profile_mu, merged_profile, collected, collect,
       paired, subchunk_size, results_codec](ChunkObject&& chunk,
                                             MpmcQueue<ResultChunk>& out) -> Status {
        const size_t n = chunk.bases->record_count();
        if (paired && n % 2 != 0) {
          return FailedPreconditionError(
              "paired alignment requires an even record count per chunk");
        }
        std::vector<align::AlignmentResult> results(n);
        std::vector<align::AlignProfile> profiles;
        const size_t num_tasks = (n + static_cast<size_t>(subchunk_size) - 1) /
                                 std::max<size_t>(static_cast<size_t>(subchunk_size), 1);
        profiles.resize(std::max<size_t>(num_tasks, 1));

        // Logical subchunks: (subchunk, output range) pairs on the fine-grain queue.
        dataflow::TaskBatch batch(executor);
        std::atomic<bool> failed{false};
        for (size_t task = 0; task < num_tasks; ++task) {
          size_t begin = task * static_cast<size_t>(subchunk_size);
          size_t end = std::min(n, begin + static_cast<size_t>(subchunk_size));
          batch.Add([&, begin, end, task] {
            auto load = [&](size_t i, genome::Read* read) {
              auto bases = chunk.bases->GetBases(i);
              auto qual = chunk.qual->GetString(i);
              if (!bases.ok() || !qual.ok()) {
                return false;
              }
              read->bases = std::move(bases).value();
              read->qual = std::string(*qual);
              return true;
            };
            if (paired) {
              // Even n and even subchunk_size make every [begin, end) pair-aligned.
              for (size_t i = begin;
                   i + 1 < end && !failed.load(std::memory_order_relaxed); i += 2) {
                genome::Read read1;
                genome::Read read2;
                if (!load(i, &read1) || !load(i + 1, &read2)) {
                  failed.store(true, std::memory_order_relaxed);
                  return;
                }
                std::tie(results[i], results[i + 1]) =
                    aligner.AlignPair(read1, read2, &profiles[task]);
              }
              return;
            }
            // Batched single-end path: stage the subchunk's reads, then hand the whole
            // span to the aligner's allocation-free batch entry point. The staging
            // vector and aligner scratch are thread-local so executor threads reuse
            // them across subchunks and chunks.
            if (failed.load(std::memory_order_relaxed)) {
              return;
            }
            thread_local std::vector<genome::Read> batch_reads;
            thread_local const align::Aligner* scratch_owner = nullptr;
            thread_local std::unique_ptr<align::AlignerScratch> scratch;
            if (scratch_owner != &aligner) {
              scratch = aligner.MakeScratch();
              scratch_owner = &aligner;
            }
            const size_t count = end - begin;
            batch_reads.resize(count);
            for (size_t i = begin; i < end; ++i) {
              if (!load(i, &batch_reads[i - begin])) {
                failed.store(true, std::memory_order_relaxed);
                return;
              }
            }
            aligner.AlignBatch({batch_reads.data(), count}, {results.data() + begin, count},
                               scratch.get(), &profiles[task]);
          });
        }
        batch.Wait();
        if (failed.load()) {
          return DataLossError("chunk record parse failed during alignment");
        }

        // Merge per-task profiles.
        {
          std::lock_guard<std::mutex> lock(*profile_mu);
          for (const align::AlignProfile& p : profiles) {
            merged_profile->Merge(p);
          }
        }

        // Serialize the results column for this chunk.
        format::ChunkBuilder builder(format::RecordType::kResults, results_codec);
        uint64_t base_count = 0;
        for (size_t i = 0; i < n; ++i) {
          builder.AddResult(results[i]);
          base_count += chunk.bases->RecordLength(i);
        }
        ResultChunk result;
        result.chunk_index = chunk.chunk_index;
        result.reads = n;
        result.bases = base_count;
        result.file = buffer_pool->Acquire();
        PERSONA_RETURN_IF_ERROR(builder.Finalize(result.file.get()));
        if (collect) {
          (*collected)[chunk.chunk_index] = std::move(results);
        }
        out.Push(std::move(result));
        return OkStatus();
      });

  // --- Writer: store the results column. ---
  auto total_reads = std::make_shared<std::atomic<uint64_t>>(0);
  auto total_bases = std::make_shared<std::atomic<uint64_t>>(0);
  graph.AddSink<ResultChunk>(
      "writer", options.write_parallelism, result_queue,
      [store, &manifest, total_reads, total_bases](ResultChunk&& result) -> Status {
        PERSONA_RETURN_IF_ERROR(store->Put(
            manifest.chunks[result.chunk_index].path_base + ".results", *result.file));
        total_reads->fetch_add(result.reads, std::memory_order_relaxed);
        total_bases->fetch_add(result.bases, std::memory_order_relaxed);
        return OkStatus();
      });

  // --- Run, optionally sampling utilization. ---
  dataflow::UtilizationSampler sampler(&graph, options.utilization_sample_sec > 0
                                                   ? options.utilization_sample_sec
                                                   : 1.0,
                                       static_cast<int>(executor->num_threads()));
  if (options.utilization_sample_sec > 0) {
    sampler.Start();
  }
  Stopwatch timer;
  Status run_status = graph.Run();
  double seconds = timer.ElapsedSeconds();
  sampler.Stop();
  PERSONA_RETURN_IF_ERROR(run_status);

  // Persist the dataset's new shape: the results column now exists (paper §3:
  // "Persona appends alignment results to a new AGD column").
  if (!manifest.HasColumn("results")) {
    format::Manifest updated = manifest;
    updated.columns.push_back(format::ResultsColumn(options.results_codec));
    PERSONA_RETURN_IF_ERROR(store->Put("manifest.json", updated.ToJson()));
  }

  AlignRunReport report;
  report.seconds = seconds;
  report.reads = total_reads->load();
  report.bases = total_bases->load();
  report.chunks = num_chunks;
  report.profile = *merged_profile;
  report.utilization = sampler.samples();
  storage::StoreStats after = store->stats();
  report.store_stats.bytes_read = after.bytes_read - store_before.bytes_read;
  report.store_stats.bytes_written = after.bytes_written - store_before.bytes_written;
  report.store_stats.read_ops = after.read_ops - store_before.read_ops;
  report.store_stats.write_ops = after.write_ops - store_before.write_ops;
  if (options.collect_results) {
    report.results = std::move(*collected);
  }
  return report;
}

}  // namespace persona::pipeline
