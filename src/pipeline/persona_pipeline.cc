#include "src/pipeline/persona_pipeline.h"

#include <atomic>
#include <memory>
#include "src/util/mutex.h"
#include <vector>

#include "src/format/agd_chunk.h"
#include "src/pipeline/chunk_pipeline.h"
#include "src/pipeline/job_journal.h"

namespace persona::pipeline {

Result<AlignRunReport> RunPersonaAlignment(storage::ObjectStore* store,
                                           const format::Manifest& manifest,
                                           const align::Aligner& aligner,
                                           dataflow::Executor* executor,
                                           const AlignPipelineOptions& options) {
  if (manifest.chunks.empty()) {
    return InvalidArgumentError("dataset has no chunks");
  }
  PERSONA_RETURN_IF_ERROR(manifest.FindColumn("bases").status());
  PERSONA_RETURN_IF_ERROR(manifest.FindColumn("qual").status());

  const storage::StoreStats store_before = store->stats();
  const size_t num_chunks = manifest.chunks.size();

  ChunkPipeline::Options pipeline_options;
  pipeline_options.read_parallelism = options.read_parallelism;
  pipeline_options.parse_parallelism = options.parse_parallelism;
  pipeline_options.transform_parallelism = options.align_nodes;
  // Results-column Finalize/compression used to run inside the aligner stage; keep it
  // align-wide so the serialize stage cannot cap thread-scaling runs.
  pipeline_options.serialize_parallelism = options.align_nodes;
  pipeline_options.write_parallelism = options.write_parallelism;
  pipeline_options.queue_depth = options.queue_depth;
  pipeline_options.utilization_sample_sec = options.utilization_sample_sec;
  pipeline_options.sampler_total_workers = static_cast<int>(executor->num_threads());

  ChunkPipeline pipeline(pipeline_options);
  // Selective column access (paper §3): alignment reads only bases + qual.
  pipeline.SetManifestSource(store, &manifest, {"bases", "qual"}, 1,
                             options.work_source);
  pipeline.SetWriter(store, 1);
  if (options.resume_journal != nullptr) {
    if (options.collect_results) {
      return InvalidArgumentError(
          "resume_journal + collect_results: chunks skipped on resume would have no "
          "decoded results");
    }
    pipeline.SetResumeJournal(options.resume_journal);
  }

  auto profile_mu = std::make_shared<Mutex>();
  auto merged_profile = std::make_shared<align::AlignProfile>();
  auto collected = std::make_shared<std::vector<std::vector<align::AlignmentResult>>>();
  if (options.collect_results) {
    collected->resize(num_chunks);
  }
  const bool collect = options.collect_results;
  const bool paired = options.paired;
  // Paired mode must never split a mate pair across executor tasks.
  const int subchunk_size =
      options.paired ? std::max(options.subchunk_size + (options.subchunk_size % 2), 2)
                     : std::max(options.subchunk_size, 1);
  const compress::CodecId results_codec = options.results_codec;
  auto total_reads = std::make_shared<std::atomic<uint64_t>>(0);
  auto total_bases = std::make_shared<std::atomic<uint64_t>>(0);

  // --- Aligner nodes: subchunk via the executor resource (paper Fig. 4). ---
  pipeline.SetTransform(
      "aligner",
      [&aligner, executor, profile_mu, merged_profile, collected, collect, paired,
       subchunk_size, results_codec, total_reads, total_bases, &manifest](
          ChunkPipeline::Input&& chunk, ChunkPipeline::Emitter& emit) -> Status {
        const format::ParsedChunk& bases = chunk.column(0, 0);
        const format::ParsedChunk& qual = chunk.column(0, 1);
        const size_t n = bases.record_count();
        if (paired && n % 2 != 0) {
          return FailedPreconditionError(
              "paired alignment requires an even record count per chunk");
        }
        std::vector<align::AlignmentResult> results(n);
        std::vector<align::AlignProfile> profiles;
        const size_t num_tasks = (n + static_cast<size_t>(subchunk_size) - 1) /
                                 std::max<size_t>(static_cast<size_t>(subchunk_size), 1);
        profiles.resize(std::max<size_t>(num_tasks, 1));

        // Logical subchunks: (subchunk, output range) pairs on the fine-grain queue.
        dataflow::TaskBatch batch(executor);
        std::atomic<bool> failed{false};
        for (size_t task = 0; task < num_tasks; ++task) {
          size_t begin = task * static_cast<size_t>(subchunk_size);
          size_t end = std::min(n, begin + static_cast<size_t>(subchunk_size));
          batch.Add([&, begin, end, task] {
            auto load = [&](size_t i, genome::Read* read) {
              auto read_bases = bases.GetBases(i);
              auto read_qual = qual.GetString(i);
              if (!read_bases.ok() || !read_qual.ok()) {
                return false;
              }
              read->bases = std::move(read_bases).value();
              read->qual = std::string(*read_qual);
              return true;
            };
            if (paired) {
              // Even n and even subchunk_size make every [begin, end) pair-aligned.
              for (size_t i = begin;
                   i + 1 < end && !failed.load(std::memory_order_relaxed); i += 2) {
                genome::Read read1;
                genome::Read read2;
                if (!load(i, &read1) || !load(i + 1, &read2)) {
                  failed.store(true, std::memory_order_relaxed);
                  return;
                }
                std::tie(results[i], results[i + 1]) =
                    aligner.AlignPair(read1, read2, &profiles[task]);
              }
              return;
            }
            // Batched single-end path: stage the subchunk's reads, then hand the whole
            // span to the aligner's allocation-free batch entry point. The staging
            // vector and aligner scratch are thread-local so executor threads reuse
            // them across subchunks and chunks.
            if (failed.load(std::memory_order_relaxed)) {
              return;
            }
            thread_local std::vector<genome::Read> batch_reads;
            thread_local const align::Aligner* scratch_owner = nullptr;
            thread_local std::unique_ptr<align::AlignerScratch> scratch;
            if (scratch_owner != &aligner) {
              scratch = aligner.MakeScratch();
              scratch_owner = &aligner;
            }
            const size_t count = end - begin;
            batch_reads.resize(count);
            for (size_t i = begin; i < end; ++i) {
              if (!load(i, &batch_reads[i - begin])) {
                failed.store(true, std::memory_order_relaxed);
                return;
              }
            }
            aligner.AlignBatch({batch_reads.data(), count}, {results.data() + begin, count},
                               scratch.get(), &profiles[task]);
          });
        }
        batch.Wait();
        if (failed.load()) {
          return DataLossError("chunk record parse failed during alignment");
        }

        // Merge per-task profiles.
        {
          MutexLock lock(*profile_mu);
          for (const align::AlignProfile& p : profiles) {
            merged_profile->Merge(p);
          }
        }

        // Hand the results column to the serialize stage; the writer lands it as
        // "<path_base>.results" (paper §3: results are a new AGD column).
        format::ChunkBuilder builder(format::RecordType::kResults, results_codec);
        uint64_t base_count = 0;
        for (size_t i = 0; i < n; ++i) {
          builder.AddResult(results[i]);
          base_count += bases.RecordLength(i);
        }
        total_reads->fetch_add(n, std::memory_order_relaxed);
        total_bases->fetch_add(base_count, std::memory_order_relaxed);
        if (collect) {
          (*collected)[chunk.chunk_begin] = std::move(results);
        }
        ChunkPipeline::SerializeRequest request;
        request.keys.push_back(manifest.chunks[chunk.chunk_begin].path_base + ".results");
        request.builders.push_back(std::move(builder));
        return emit.Emit(std::move(request));
      });

  PERSONA_ASSIGN_OR_RETURN(ChunkPipelineReport pipeline_report, pipeline.Run());

  // Persist the dataset's new shape: the results column now exists (paper §3:
  // "Persona appends alignment results to a new AGD column").
  if (options.update_manifest && !manifest.HasColumn("results")) {
    format::Manifest updated = manifest;
    updated.columns.push_back(format::ResultsColumn(options.results_codec));
    PERSONA_RETURN_IF_ERROR(store->Put("manifest.json", updated.ToJson()));
  }

  AlignRunReport report;
  report.seconds = pipeline_report.seconds;
  report.reads = total_reads->load();
  report.bases = total_bases->load();
  report.chunks = num_chunks;
  report.profile = *merged_profile;
  report.utilization = std::move(pipeline_report.utilization);
  report.store_stats = storage::StatsDelta(store_before, store->stats());
  if (options.collect_results) {
    report.results = std::move(*collected);
  }
  return report;
}

}  // namespace persona::pipeline
