// Dataset filtering (paper §1: Persona's goal includes "filtering"; §8: "work ongoing to
// integrate comprehensive data filtering").
//
// Produces a new AGD dataset containing only the records that pass a predicate over the
// results column — the samtools-view operations (required/excluded flag masks, minimum
// MAPQ, genomic region), expressed against AGD instead of SAM. The decision needs only
// the results column; the other columns are then copied selectively for surviving
// records and re-chunked, so the paper's columnar I/O advantage applies here too: a
// filter that drops most records writes a small fraction of the input volume.

#ifndef PERSONA_SRC_PIPELINE_FILTER_H_
#define PERSONA_SRC_PIPELINE_FILTER_H_

#include <string>

#include "src/align/alignment.h"
#include "src/format/agd_manifest.h"
#include "src/pipeline/chunk_pipeline.h"
#include "src/storage/object_store.h"

namespace persona::pipeline {

struct ReadFilterSpec {
  uint16_t required_flags = 0;  // record must have all of these (samtools view -f)
  uint16_t excluded_flags = 0;  // record must have none of these (samtools view -F)
  int min_mapq = 0;             // mapped records below this are dropped
  // Half-open global-coordinate interval; active when region_end > region_begin.
  // Unmapped records never pass an active region (they have no position).
  genome::GenomeLocation region_begin = 0;
  genome::GenomeLocation region_end = 0;

  bool region_active() const { return region_end > region_begin; }

  // The predicate itself (exposed so tests and other ops can reuse it).
  bool Keep(const align::AlignmentResult& result) const;
};

struct FilterReport {
  double seconds = 0;
  uint64_t records_in = 0;
  uint64_t records_out = 0;
  uint64_t chunks_in = 0;
  uint64_t chunks_out = 0;
  storage::StoreStats store_stats;  // deltas for this run
};

struct FilterOptions {
  // Records per output chunk; 0 = keep the input manifest's chunk size.
  int64_t chunk_size = 0;
  compress::CodecId codec = compress::CodecId::kZlib;
};

// Filters the dataset described by `manifest` (which must include a results column)
// into a new dataset named `out_name` in the same store. On success `out_manifest`
// describes the filtered dataset (also stored as "<out_name>.manifest.json"). Runs on
// the shared ChunkPipeline: results-column reads run ahead of the ordered filter
// stage, and output-chunk compression/writes run behind it.
Result<FilterReport> FilterAgdDataset(
    storage::ObjectStore* store, const format::Manifest& manifest,
    const std::string& out_name, const ReadFilterSpec& spec,
    const FilterOptions& options, format::Manifest* out_manifest,
    const ChunkPipeline::Options& pipeline_options = {});

// Parses a samtools-style region string against a reference: "chr1" (whole contig),
// "chr1:100" (from 1-based position 100 to contig end), or "chr1:100-500" (1-based,
// inclusive on both ends, per samtools convention). Returns the global-coordinate
// half-open interval ready for ReadFilterSpec::{region_begin, region_end}.
struct GlobalRegion {
  genome::GenomeLocation begin = 0;
  genome::GenomeLocation end = 0;

  bool operator==(const GlobalRegion&) const = default;
};
Result<GlobalRegion> ParseRegion(const genome::ReferenceGenome& reference,
                                 std::string_view text);

}  // namespace persona::pipeline

#endif  // PERSONA_SRC_PIPELINE_FILTER_H_
