#include "src/pipeline/recompress.h"

#include <memory>
#include "src/util/mutex.h"
#include <vector>

#include "src/format/agd_chunk.h"
#include "src/pipeline/chunk_pipeline.h"
#include "src/pipeline/job_journal.h"
#include "src/util/stopwatch.h"
#include "src/util/string_util.h"

namespace persona::pipeline {
namespace {

// Replaces `from` with `to` in the manifest's column table.
Status SwapColumn(format::Manifest* manifest, std::string_view from,
                  const format::ManifestColumn& to) {
  for (format::ManifestColumn& column : manifest->columns) {
    if (column.name == from) {
      column = to;
      return OkStatus();
    }
  }
  return NotFoundError(StrFormat("column '%.*s' not found",
                                 static_cast<int>(from.size()), from.data()));
}

void FillStoreDelta(const storage::StoreStats& before, const storage::StoreStats& after,
                    RecompressReport* report) {
  report->store_stats = storage::StatsDelta(before, after);
}

// Report counters shared by the parallel transcode workers.
struct SharedCounters {
  Mutex mu;
  uint64_t records GUARDED_BY(mu) = 0;
  uint64_t bases_bytes GUARDED_BY(mu) = 0;
  uint64_t ref_bases_bytes GUARDED_BY(mu) = 0;
  format::RefCompStats stats GUARDED_BY(mu);
};

// Deletes every chunk's `column` object with one batched call (overlaps the per-op
// metadata round-trips across the store's shards).
Status DeleteColumnObjects(storage::ObjectStore* store, const format::Manifest& manifest,
                           const char* column) {
  std::vector<storage::DeleteOp> deletes;
  deletes.reserve(manifest.chunks.size());
  for (size_t ci = 0; ci < manifest.chunks.size(); ++ci) {
    deletes.push_back({manifest.ChunkFileName(ci, column), {}});
  }
  return store->DeleteBatch(deletes);
}

}  // namespace

Result<RecompressReport> RefCompressBasesColumn(storage::ObjectStore* store,
                                                const format::Manifest& manifest,
                                                const genome::ReferenceGenome& reference,
                                                const RecompressOptions& options,
                                                format::Manifest* out_manifest) {
  if (!manifest.HasColumn("bases") || !manifest.HasColumn("results")) {
    return FailedPreconditionError(
        "reference recompression requires bases and results columns");
  }
  Stopwatch timer;
  const storage::StoreStats stats_before = store->stats();
  RecompressReport report;

  // Chunks transcode independently, so the transform runs fully parallel; reads ahead
  // and writes behind it overlap. Finalize runs in the transform (not the serialize
  // stage) because the report needs each output object's stored size.
  auto counters = std::make_shared<SharedCounters>();
  ChunkPipeline pipeline(options.pipeline);
  pipeline.SetManifestSource(store, &manifest, {"bases", "results"}, 1,
                             options.work_source);
  pipeline.SetWriter(store, 1);
  if (options.resume_journal != nullptr) {
    pipeline.SetResumeJournal(options.resume_journal);
  }
  pipeline.SetTransform(
      "ref-encode",
      [&manifest, &reference, &options, counters](
          ChunkPipeline::Input&& input, ChunkPipeline::Emitter& emit) -> Status {
        const format::ParsedChunk& bases = input.column(0, 0);
        const format::ParsedChunk& results = input.column(0, 1);

        format::ChunkBuilder builder(format::RecordType::kRefBases, options.codec);
        format::RefCompStats local_stats;
        Buffer record;
        for (size_t i = 0; i < bases.record_count(); ++i) {
          PERSONA_ASSIGN_OR_RETURN(std::string read_bases, bases.GetBases(i));
          PERSONA_ASSIGN_OR_RETURN(align::AlignmentResult result, results.GetResult(i));
          record.Clear();
          format::RefEncodeRead(reference, read_bases, result, &record, &local_stats);
          builder.AddRecord(record.view());
        }
        ChunkPipeline::BufferRef object = emit.AcquireBuffer();
        PERSONA_RETURN_IF_ERROR(builder.Finalize(object.get()));
        {
          MutexLock lock(counters->mu);
          counters->records += bases.record_count();
          counters->bases_bytes += input.file_size(0, 0);
          counters->ref_bases_bytes += object->size();
          counters->stats.Add(local_stats);
        }
        return emit.Write(manifest.ChunkFileName(input.chunk_begin, "ref_bases"),
                          std::move(object));
      });
  PERSONA_RETURN_IF_ERROR(pipeline.Run().status());
  {
    // Workers have all exited (Run returned); the lock states the invariant.
    MutexLock lock(counters->mu);
    report.records = counters->records;
    report.bases_bytes = counters->bases_bytes;
    report.ref_bases_bytes = counters->ref_bases_bytes;
    report.stats = counters->stats;
  }

  format::Manifest out = manifest;
  PERSONA_RETURN_IF_ERROR(SwapColumn(
      &out, "bases", {"ref_bases", format::RecordType::kRefBases, options.codec}));
  if (options.update_manifest) {
    PERSONA_RETURN_IF_ERROR(store->Put("manifest.json", out.ToJson()));
    if (options.delete_source_column) {
      PERSONA_RETURN_IF_ERROR(DeleteColumnObjects(store, manifest, "bases"));
    }
  }
  *out_manifest = std::move(out);

  report.seconds = timer.ElapsedSeconds();
  FillStoreDelta(stats_before, store->stats(), &report);
  return report;
}

Result<RecompressReport> ReconstructBasesColumn(storage::ObjectStore* store,
                                                const format::Manifest& manifest,
                                                const genome::ReferenceGenome& reference,
                                                const RecompressOptions& options,
                                                format::Manifest* out_manifest) {
  if (!manifest.HasColumn("ref_bases") || !manifest.HasColumn("results")) {
    return FailedPreconditionError(
        "bases reconstruction requires ref_bases and results columns");
  }
  Stopwatch timer;
  const storage::StoreStats stats_before = store->stats();
  RecompressReport report;

  auto counters = std::make_shared<SharedCounters>();
  ChunkPipeline pipeline(options.pipeline);
  pipeline.SetManifestSource(store, &manifest, {"ref_bases", "results"}, 1,
                             options.work_source);
  pipeline.SetWriter(store, 1);
  if (options.resume_journal != nullptr) {
    pipeline.SetResumeJournal(options.resume_journal);
  }
  pipeline.SetTransform(
      "ref-decode",
      [&manifest, &reference, &options, counters](
          ChunkPipeline::Input&& input, ChunkPipeline::Emitter& emit) -> Status {
        const format::ParsedChunk& encoded = input.column(0, 0);
        const format::ParsedChunk& results = input.column(0, 1);
        if (encoded.type() != format::RecordType::kRefBases) {
          return FailedPreconditionError(
              StrFormat("chunk %zu: ref_bases column has wrong record type",
                        input.chunk_begin));
        }

        format::ChunkBuilder builder(format::RecordType::kBases, options.codec);
        for (size_t i = 0; i < encoded.record_count(); ++i) {
          PERSONA_ASSIGN_OR_RETURN(align::AlignmentResult result, results.GetResult(i));
          std::string_view record_bytes = encoded.RecordBytes(i);
          PERSONA_ASSIGN_OR_RETURN(
              std::string read_bases,
              format::RefDecodeRead(
                  reference,
                  std::span<const uint8_t>(
                      reinterpret_cast<const uint8_t*>(record_bytes.data()),
                      record_bytes.size()),
                  result));
          builder.AddBases(read_bases);
        }
        ChunkPipeline::BufferRef object = emit.AcquireBuffer();
        PERSONA_RETURN_IF_ERROR(builder.Finalize(object.get()));
        {
          MutexLock lock(counters->mu);
          counters->records += encoded.record_count();
          counters->ref_bases_bytes += input.file_size(0, 0);
          counters->bases_bytes += object->size();
        }
        return emit.Write(manifest.ChunkFileName(input.chunk_begin, "bases"),
                          std::move(object));
      });
  PERSONA_RETURN_IF_ERROR(pipeline.Run().status());
  {
    MutexLock lock(counters->mu);
    report.records = counters->records;
    report.bases_bytes = counters->bases_bytes;
    report.ref_bases_bytes = counters->ref_bases_bytes;
  }

  format::Manifest out = manifest;
  PERSONA_RETURN_IF_ERROR(SwapColumn(
      &out, "ref_bases", {"bases", format::RecordType::kBases, options.codec}));
  if (options.update_manifest) {
    PERSONA_RETURN_IF_ERROR(store->Put("manifest.json", out.ToJson()));
    if (options.delete_source_column) {
      PERSONA_RETURN_IF_ERROR(DeleteColumnObjects(store, manifest, "ref_bases"));
    }
  }
  *out_manifest = std::move(out);

  report.seconds = timer.ElapsedSeconds();
  FillStoreDelta(stats_before, store->stats(), &report);
  return report;
}

}  // namespace persona::pipeline
