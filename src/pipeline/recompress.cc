#include "src/pipeline/recompress.h"

#include <array>
#include <vector>

#include "src/format/agd_chunk.h"
#include "src/util/stopwatch.h"
#include "src/util/string_util.h"

namespace persona::pipeline {
namespace {

// Batched fetch of one chunk's source column + results column.
Status GetColumnPair(storage::ObjectStore* store, const format::Manifest& manifest,
                     size_t chunk_index, const char* column, Buffer* column_file,
                     Buffer* results_file) {
  std::array<storage::GetOp, 2> gets = {
      storage::GetOp{manifest.ChunkFileName(chunk_index, column), column_file, {}},
      storage::GetOp{manifest.ChunkFileName(chunk_index, "results"), results_file, {}},
  };
  return store->GetBatch(gets);
}

// Replaces `from` with `to` in the manifest's column table.
Status SwapColumn(format::Manifest* manifest, std::string_view from,
                  const format::ManifestColumn& to) {
  for (format::ManifestColumn& column : manifest->columns) {
    if (column.name == from) {
      column = to;
      return OkStatus();
    }
  }
  return NotFoundError(StrFormat("column '%.*s' not found",
                                 static_cast<int>(from.size()), from.data()));
}

void FillStoreDelta(const storage::StoreStats& before, const storage::StoreStats& after,
                    RecompressReport* report) {
  report->store_stats.bytes_read = after.bytes_read - before.bytes_read;
  report->store_stats.bytes_written = after.bytes_written - before.bytes_written;
  report->store_stats.read_ops = after.read_ops - before.read_ops;
  report->store_stats.write_ops = after.write_ops - before.write_ops;
}

}  // namespace

Result<RecompressReport> RefCompressBasesColumn(storage::ObjectStore* store,
                                                const format::Manifest& manifest,
                                                const genome::ReferenceGenome& reference,
                                                const RecompressOptions& options,
                                                format::Manifest* out_manifest) {
  if (!manifest.HasColumn("bases") || !manifest.HasColumn("results")) {
    return FailedPreconditionError(
        "reference recompression requires bases and results columns");
  }
  Stopwatch timer;
  const storage::StoreStats stats_before = store->stats();
  RecompressReport report;

  Buffer bases_file;
  Buffer results_file;
  Buffer out_file;
  for (size_t ci = 0; ci < manifest.chunks.size(); ++ci) {
    PERSONA_RETURN_IF_ERROR(
        GetColumnPair(store, manifest, ci, "bases", &bases_file, &results_file));
    PERSONA_ASSIGN_OR_RETURN(format::ParsedChunk bases,
                             format::ParsedChunk::Parse(bases_file.span()));
    PERSONA_ASSIGN_OR_RETURN(format::ParsedChunk results,
                             format::ParsedChunk::Parse(results_file.span()));
    if (bases.record_count() != results.record_count()) {
      return DataLossError(StrFormat("chunk %zu: bases/results record counts disagree", ci));
    }
    report.bases_bytes += bases_file.size();

    format::ChunkBuilder builder(format::RecordType::kRefBases, options.codec);
    Buffer record;
    for (size_t i = 0; i < bases.record_count(); ++i) {
      PERSONA_ASSIGN_OR_RETURN(std::string read_bases, bases.GetBases(i));
      PERSONA_ASSIGN_OR_RETURN(align::AlignmentResult result, results.GetResult(i));
      record.Clear();
      format::RefEncodeRead(reference, read_bases, result, &record, &report.stats);
      builder.AddRecord(record.view());
      ++report.records;
    }
    PERSONA_RETURN_IF_ERROR(builder.Finalize(&out_file));
    PERSONA_RETURN_IF_ERROR(
        store->Put(manifest.ChunkFileName(ci, "ref_bases"), out_file));
    report.ref_bases_bytes += out_file.size();
  }

  format::Manifest out = manifest;
  PERSONA_RETURN_IF_ERROR(SwapColumn(
      &out, "bases", {"ref_bases", format::RecordType::kRefBases, options.codec}));
  PERSONA_RETURN_IF_ERROR(store->Put("manifest.json", out.ToJson()));
  if (options.delete_source_column) {
    for (size_t ci = 0; ci < manifest.chunks.size(); ++ci) {
      PERSONA_RETURN_IF_ERROR(store->Delete(manifest.ChunkFileName(ci, "bases")));
    }
  }
  *out_manifest = std::move(out);

  report.seconds = timer.ElapsedSeconds();
  FillStoreDelta(stats_before, store->stats(), &report);
  return report;
}

Result<RecompressReport> ReconstructBasesColumn(storage::ObjectStore* store,
                                                const format::Manifest& manifest,
                                                const genome::ReferenceGenome& reference,
                                                const RecompressOptions& options,
                                                format::Manifest* out_manifest) {
  if (!manifest.HasColumn("ref_bases") || !manifest.HasColumn("results")) {
    return FailedPreconditionError(
        "bases reconstruction requires ref_bases and results columns");
  }
  Stopwatch timer;
  const storage::StoreStats stats_before = store->stats();
  RecompressReport report;

  Buffer ref_file;
  Buffer results_file;
  Buffer out_file;
  for (size_t ci = 0; ci < manifest.chunks.size(); ++ci) {
    PERSONA_RETURN_IF_ERROR(
        GetColumnPair(store, manifest, ci, "ref_bases", &ref_file, &results_file));
    PERSONA_ASSIGN_OR_RETURN(format::ParsedChunk encoded,
                             format::ParsedChunk::Parse(ref_file.span()));
    PERSONA_ASSIGN_OR_RETURN(format::ParsedChunk results,
                             format::ParsedChunk::Parse(results_file.span()));
    if (encoded.record_count() != results.record_count()) {
      return DataLossError(
          StrFormat("chunk %zu: ref_bases/results record counts disagree", ci));
    }
    if (encoded.type() != format::RecordType::kRefBases) {
      return FailedPreconditionError(
          StrFormat("chunk %zu: ref_bases column has wrong record type", ci));
    }
    report.ref_bases_bytes += ref_file.size();

    format::ChunkBuilder builder(format::RecordType::kBases, options.codec);
    for (size_t i = 0; i < encoded.record_count(); ++i) {
      PERSONA_ASSIGN_OR_RETURN(align::AlignmentResult result, results.GetResult(i));
      std::string_view record_bytes = encoded.RecordBytes(i);
      PERSONA_ASSIGN_OR_RETURN(
          std::string read_bases,
          format::RefDecodeRead(
              reference,
              std::span<const uint8_t>(
                  reinterpret_cast<const uint8_t*>(record_bytes.data()),
                  record_bytes.size()),
              result));
      builder.AddBases(read_bases);
      ++report.records;
    }
    PERSONA_RETURN_IF_ERROR(builder.Finalize(&out_file));
    PERSONA_RETURN_IF_ERROR(store->Put(manifest.ChunkFileName(ci, "bases"), out_file));
    report.bases_bytes += out_file.size();
  }

  format::Manifest out = manifest;
  PERSONA_RETURN_IF_ERROR(SwapColumn(
      &out, "ref_bases", {"bases", format::RecordType::kBases, options.codec}));
  PERSONA_RETURN_IF_ERROR(store->Put("manifest.json", out.ToJson()));
  if (options.delete_source_column) {
    for (size_t ci = 0; ci < manifest.chunks.size(); ++ci) {
      PERSONA_RETURN_IF_ERROR(store->Delete(manifest.ChunkFileName(ci, "ref_bases")));
    }
  }
  *out_manifest = std::move(out);

  report.seconds = timer.ElapsedSeconds();
  FillStoreDelta(stats_before, store->stats(), &report);
  return report;
}

}  // namespace persona::pipeline
