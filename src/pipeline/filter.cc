#include "src/pipeline/filter.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "src/format/agd_chunk.h"
#include "src/pipeline/chunk_pipeline.h"
#include "src/storage/cache_store.h"
#include "src/util/stopwatch.h"
#include "src/util/string_util.h"

namespace persona::pipeline {
namespace {

// Cross-chunk state of the (ordered) filter stage: the output manifest under
// construction and the partially filled output-chunk builders.
struct FilterState {
  format::Manifest out;
  std::vector<format::ChunkBuilder> builders;
  FilterReport report;
  // Scratch reused across input chunks (the stage runs one worker).
  std::vector<Buffer> column_files;
  std::vector<format::ParsedChunk> parsed;
  size_t results_index = 0;

  // Hands the filled output chunk to the serialize stage and appends its manifest
  // entry; builders are replaced fresh (they travel with the request).
  Status Flush(ChunkPipeline::Emitter& emit) {
    if (builders.front().record_count() == 0) {
      return OkStatus();
    }
    format::ManifestChunk chunk;
    chunk.path_base = out.name + "-" + std::to_string(out.chunks.size());
    chunk.first_record = out.total_records();
    chunk.num_records = static_cast<int64_t>(builders.front().record_count());

    ChunkPipeline::SerializeRequest request;
    request.keys.reserve(out.columns.size());
    request.builders.reserve(out.columns.size());
    for (size_t c = 0; c < out.columns.size(); ++c) {
      request.keys.push_back(chunk.path_base + "." + out.columns[c].name);
      request.builders.push_back(std::move(builders[c]));
      builders[c] = format::ChunkBuilder(out.columns[c].type, out.columns[c].codec);
    }
    out.chunks.push_back(std::move(chunk));
    ++report.chunks_out;
    return emit.Emit(std::move(request));
  }
};

}  // namespace

bool ReadFilterSpec::Keep(const align::AlignmentResult& result) const {
  if ((result.flags & required_flags) != required_flags) {
    return false;
  }
  if ((result.flags & excluded_flags) != 0) {
    return false;
  }
  if (min_mapq > 0 && (!result.mapped() || result.mapq < min_mapq)) {
    return false;
  }
  if (region_active()) {
    if (!result.mapped()) {
      return false;
    }
    if (result.location < region_begin || result.location >= region_end) {
      return false;
    }
  }
  return true;
}

Result<GlobalRegion> ParseRegion(const genome::ReferenceGenome& reference,
                                 std::string_view text) {
  std::string_view contig_name = text;
  std::string_view range;
  const size_t colon = text.rfind(':');
  if (colon != std::string_view::npos) {
    contig_name = text.substr(0, colon);
    range = text.substr(colon + 1);
  }
  PERSONA_ASSIGN_OR_RETURN(int32_t contig_index, reference.FindContig(contig_name));
  const int64_t contig_length =
      static_cast<int64_t>(reference.contig(static_cast<size_t>(contig_index)).sequence.size());

  int64_t start1 = 1;              // 1-based inclusive
  int64_t end1 = contig_length;    // 1-based inclusive
  if (!range.empty()) {
    const size_t dash = range.find('-');
    std::string_view start_text = dash == std::string_view::npos ? range : range.substr(0, dash);
    start1 = ParseInt64(start_text);
    if (start1 < 1) {
      return InvalidArgumentError(StrFormat("malformed region start in '%.*s'",
                                            static_cast<int>(text.size()), text.data()));
    }
    if (dash != std::string_view::npos) {
      end1 = ParseInt64(range.substr(dash + 1));
      if (end1 < start1) {
        return InvalidArgumentError(StrFormat("empty or inverted region '%.*s'",
                                              static_cast<int>(text.size()), text.data()));
      }
    }
  }
  if (start1 > contig_length) {
    return OutOfRangeError(StrFormat("region start past contig end in '%.*s'",
                                     static_cast<int>(text.size()), text.data()));
  }
  end1 = std::min(end1, contig_length);

  GlobalRegion region;
  PERSONA_ASSIGN_OR_RETURN(region.begin,
                           reference.LocalToGlobal(contig_index, start1 - 1));
  // end1 is the last included base; the half-open end is one past it.
  PERSONA_ASSIGN_OR_RETURN(region.end, reference.LocalToGlobal(contig_index, end1 - 1));
  region.end += 1;
  return region;
}

Result<FilterReport> FilterAgdDataset(storage::ObjectStore* store,
                                      const format::Manifest& manifest,
                                      const std::string& out_name,
                                      const ReadFilterSpec& spec,
                                      const FilterOptions& options,
                                      format::Manifest* out_manifest,
                                      const ChunkPipeline::Options& pipeline_options) {
  if (!manifest.HasColumn("results")) {
    return FailedPreconditionError("filtering requires a results column");
  }
  Stopwatch timer;

  // The ordered filter stage refetches every surviving chunk's remaining columns;
  // run serially inside the single ordered worker, those fetches used to pay device
  // latency one chunk at a time (the PR 4 headroom). Route reads through a cache
  // tier — the caller's, or a run-local one — and declare *all* columns for
  // read-ahead below, so the pipeline's prefetch stage pulls them in parallel ahead
  // of the transform and the ordered fetch becomes a memory-speed cache hit.
  std::unique_ptr<storage::CacheStore> owned_cache;
  storage::ObjectStore* read_store = store;
  if (!store->CachesReads()) {
    storage::CacheStoreOptions cache_options;
    cache_options.budget_bytes = storage::CacheBudgetFromEnv(cache_options.budget_bytes);
    cache_options.cache_writes = false;  // output chunks are written, never reread here
    owned_cache = std::make_unique<storage::CacheStore>(store, cache_options);
    read_store = owned_cache.get();
  }
  const storage::StoreStats stats_before = read_store->stats();

  auto state = std::make_shared<FilterState>();
  state->out.name = out_name;
  state->out.chunk_size =
      options.chunk_size > 0 ? options.chunk_size : manifest.chunk_size;
  state->out.reference_contigs = manifest.reference_contigs;
  for (const format::ManifestColumn& column : manifest.columns) {
    state->out.columns.push_back({column.name, column.type, options.codec});
  }
  state->builders.reserve(state->out.columns.size());
  for (const format::ManifestColumn& column : state->out.columns) {
    state->builders.emplace_back(column.type, column.codec);
  }
  state->column_files.resize(manifest.columns.size());
  state->parsed.resize(manifest.columns.size());
  state->results_index = manifest.columns.size();
  for (size_t c = 0; c < manifest.columns.size(); ++c) {
    if (manifest.columns[c].name == "results") {
      state->results_index = c;
    }
  }

  // The keep decision needs only the results column, so the pipeline's readers fetch
  // just that; the (ordered — output chunks span input chunks) filter stage fetches
  // the other columns itself, only for chunks with survivors, keeping the
  // selective-column I/O advantage. The drain flushes the final partial chunk.
  ChunkPipeline pipeline(pipeline_options);
  pipeline.SetManifestSource(read_store, &manifest, {"results"});
  // Region filters are sparse — most chunks have no survivors and must stay
  // results-only I/O — so the widened warm set applies to flag/MAPQ filters,
  // where nearly every chunk survives and refetches its remaining columns.
  if (!spec.region_active()) {
    std::vector<std::string> all_columns;
    all_columns.reserve(manifest.columns.size());
    for (const format::ManifestColumn& column : manifest.columns) {
      all_columns.push_back(column.name);
    }
    pipeline.SetReadAheadColumns(std::move(all_columns));
  }
  pipeline.SetWriter(store, manifest.columns.size());
  pipeline.SetTransform(
      "filter",
      [state, store = read_store, &manifest, &spec](ChunkPipeline::Input&& input,
                                                    ChunkPipeline::Emitter& emit) -> Status {
        const size_t ci = input.chunk_begin;
        ++state->report.chunks_in;
        state->parsed[state->results_index] = std::move(input.columns[0]);
        const format::ParsedChunk& results = state->parsed[state->results_index];

        std::vector<bool> keep(results.record_count());
        size_t kept = 0;
        for (size_t i = 0; i < results.record_count(); ++i) {
          PERSONA_ASSIGN_OR_RETURN(align::AlignmentResult result, results.GetResult(i));
          keep[i] = spec.Keep(result);
          kept += keep[i] ? 1 : 0;
        }
        state->report.records_in += results.record_count();
        if (kept == 0) {
          return OkStatus();
        }

        // Surviving chunk: fetch the remaining columns with one batched Get.
        {
          std::vector<storage::GetOp> gets;
          gets.reserve(manifest.columns.size() - 1);
          for (size_t c = 0; c < manifest.columns.size(); ++c) {
            if (c == state->results_index) {
              continue;
            }
            gets.push_back({manifest.ChunkFileName(ci, manifest.columns[c].name),
                            &state->column_files[c], {}});
          }
          PERSONA_RETURN_IF_ERROR(store->GetBatch(gets));
        }
        for (size_t c = 0; c < manifest.columns.size(); ++c) {
          if (c == state->results_index) {
            continue;
          }
          PERSONA_ASSIGN_OR_RETURN(state->parsed[c],
                                   format::ParsedChunk::Parse(state->column_files[c].span()));
          if (state->parsed[c].record_count() != results.record_count()) {
            return DataLossError(
                StrFormat("chunk %zu: column '%s' record count disagrees with results",
                          ci, manifest.columns[c].name.c_str()));
          }
        }

        for (size_t i = 0; i < results.record_count(); ++i) {
          if (!keep[i]) {
            continue;
          }
          for (size_t c = 0; c < state->out.columns.size(); ++c) {
            if (state->out.columns[c].type == format::RecordType::kBases) {
              PERSONA_ASSIGN_OR_RETURN(std::string bases, state->parsed[c].GetBases(i));
              state->builders[c].AddBases(bases);
            } else {
              // Raw byte passthrough works for qual, metadata, and encoded results alike.
              state->builders[c].AddRecord(state->parsed[c].RecordBytes(i));
            }
          }
          ++state->report.records_out;
          if (static_cast<int64_t>(state->builders.front().record_count()) >=
              state->out.chunk_size) {
            PERSONA_RETURN_IF_ERROR(state->Flush(emit));
          }
        }
        return OkStatus();
      },
      /*ordered=*/true,
      [state](ChunkPipeline::Emitter& emit) -> Status { return state->Flush(emit); });
  PERSONA_RETURN_IF_ERROR(pipeline.Run().status());

  PERSONA_RETURN_IF_ERROR(store->Put(out_name + ".manifest.json", state->out.ToJson()));
  FilterReport report = state->report;
  *out_manifest = std::move(state->out);

  report.seconds = timer.ElapsedSeconds();
  // Delta over the read store: byte/op counters remain device traffic (hits are
  // memory-served) and the cache hit/miss counters ride along in the report.
  report.store_stats = storage::StatsDelta(stats_before, read_store->stats());
  return report;
}

}  // namespace persona::pipeline
