#include "src/pipeline/filter.h"

#include <algorithm>
#include <vector>

#include "src/format/agd_chunk.h"
#include "src/util/stopwatch.h"
#include "src/util/string_util.h"

namespace persona::pipeline {
namespace {

// Writes one output chunk (all columns, one batched Put) and appends its manifest entry.
Status FlushOutputChunk(storage::ObjectStore* store, const std::string& out_name,
                        std::vector<format::ChunkBuilder>& builders,
                        const std::vector<format::ManifestColumn>& columns,
                        format::Manifest* out, FilterReport* report) {
  if (builders.front().record_count() == 0) {
    return OkStatus();
  }
  format::ManifestChunk chunk;
  chunk.path_base = out_name + "-" + std::to_string(out->chunks.size());
  chunk.first_record = out->total_records();
  chunk.num_records = static_cast<int64_t>(builders.front().record_count());

  std::vector<Buffer> files(columns.size());
  std::vector<storage::PutOp> puts;
  puts.reserve(columns.size());
  for (size_t c = 0; c < columns.size(); ++c) {
    PERSONA_RETURN_IF_ERROR(builders[c].Finalize(&files[c]));
    puts.push_back({chunk.path_base + "." + columns[c].name, files[c].span(), {}});
    builders[c].Reset();
  }
  PERSONA_RETURN_IF_ERROR(store->PutBatch(puts));
  out->chunks.push_back(std::move(chunk));
  ++report->chunks_out;
  return OkStatus();
}

}  // namespace

bool ReadFilterSpec::Keep(const align::AlignmentResult& result) const {
  if ((result.flags & required_flags) != required_flags) {
    return false;
  }
  if ((result.flags & excluded_flags) != 0) {
    return false;
  }
  if (min_mapq > 0 && (!result.mapped() || result.mapq < min_mapq)) {
    return false;
  }
  if (region_active()) {
    if (!result.mapped()) {
      return false;
    }
    if (result.location < region_begin || result.location >= region_end) {
      return false;
    }
  }
  return true;
}

Result<GlobalRegion> ParseRegion(const genome::ReferenceGenome& reference,
                                 std::string_view text) {
  std::string_view contig_name = text;
  std::string_view range;
  const size_t colon = text.rfind(':');
  if (colon != std::string_view::npos) {
    contig_name = text.substr(0, colon);
    range = text.substr(colon + 1);
  }
  PERSONA_ASSIGN_OR_RETURN(int32_t contig_index, reference.FindContig(contig_name));
  const int64_t contig_length =
      static_cast<int64_t>(reference.contig(static_cast<size_t>(contig_index)).sequence.size());

  int64_t start1 = 1;              // 1-based inclusive
  int64_t end1 = contig_length;    // 1-based inclusive
  if (!range.empty()) {
    const size_t dash = range.find('-');
    std::string_view start_text = dash == std::string_view::npos ? range : range.substr(0, dash);
    start1 = ParseInt64(start_text);
    if (start1 < 1) {
      return InvalidArgumentError(StrFormat("malformed region start in '%.*s'",
                                            static_cast<int>(text.size()), text.data()));
    }
    if (dash != std::string_view::npos) {
      end1 = ParseInt64(range.substr(dash + 1));
      if (end1 < start1) {
        return InvalidArgumentError(StrFormat("empty or inverted region '%.*s'",
                                              static_cast<int>(text.size()), text.data()));
      }
    }
  }
  if (start1 > contig_length) {
    return OutOfRangeError(StrFormat("region start past contig end in '%.*s'",
                                     static_cast<int>(text.size()), text.data()));
  }
  end1 = std::min(end1, contig_length);

  GlobalRegion region;
  PERSONA_ASSIGN_OR_RETURN(region.begin,
                           reference.LocalToGlobal(contig_index, start1 - 1));
  // end1 is the last included base; the half-open end is one past it.
  PERSONA_ASSIGN_OR_RETURN(region.end, reference.LocalToGlobal(contig_index, end1 - 1));
  region.end += 1;
  return region;
}

Result<FilterReport> FilterAgdDataset(storage::ObjectStore* store,
                                      const format::Manifest& manifest,
                                      const std::string& out_name,
                                      const ReadFilterSpec& spec,
                                      const FilterOptions& options,
                                      format::Manifest* out_manifest) {
  if (!manifest.HasColumn("results")) {
    return FailedPreconditionError("filtering requires a results column");
  }
  Stopwatch timer;
  const storage::StoreStats stats_before = store->stats();

  format::Manifest out;
  out.name = out_name;
  out.chunk_size = options.chunk_size > 0 ? options.chunk_size : manifest.chunk_size;
  out.reference_contigs = manifest.reference_contigs;
  for (const format::ManifestColumn& column : manifest.columns) {
    out.columns.push_back({column.name, column.type, options.codec});
  }

  std::vector<format::ChunkBuilder> builders;
  builders.reserve(out.columns.size());
  for (const format::ManifestColumn& column : out.columns) {
    builders.emplace_back(column.type, column.codec);
  }

  FilterReport report;
  Buffer file;
  std::vector<Buffer> column_files(manifest.columns.size());
  std::vector<format::ParsedChunk> parsed(manifest.columns.size());
  size_t results_index = manifest.columns.size();
  for (size_t c = 0; c < manifest.columns.size(); ++c) {
    if (manifest.columns[c].name == "results") {
      results_index = c;
    }
  }
  for (size_t ci = 0; ci < manifest.chunks.size(); ++ci) {
    ++report.chunks_in;
    // The keep decision needs only the results column; fetch it first so fully-dropped
    // chunks skip the other columns entirely (selective-column I/O).
    PERSONA_RETURN_IF_ERROR(store->Get(manifest.ChunkFileName(ci, "results"), &file));
    PERSONA_ASSIGN_OR_RETURN(parsed[results_index],
                             format::ParsedChunk::Parse(file.span()));
    const format::ParsedChunk& results = parsed[results_index];

    std::vector<bool> keep(results.record_count());
    size_t kept = 0;
    for (size_t i = 0; i < results.record_count(); ++i) {
      PERSONA_ASSIGN_OR_RETURN(align::AlignmentResult result, results.GetResult(i));
      keep[i] = spec.Keep(result);
      kept += keep[i] ? 1 : 0;
    }
    report.records_in += results.record_count();
    if (kept == 0) {
      continue;
    }

    // Surviving chunk: fetch the remaining columns with one batched Get.
    {
      std::vector<storage::GetOp> gets;
      gets.reserve(manifest.columns.size() - 1);
      for (size_t c = 0; c < manifest.columns.size(); ++c) {
        if (c == results_index) {
          continue;
        }
        gets.push_back(
            {manifest.ChunkFileName(ci, manifest.columns[c].name), &column_files[c], {}});
      }
      PERSONA_RETURN_IF_ERROR(store->GetBatch(gets));
    }
    for (size_t c = 0; c < manifest.columns.size(); ++c) {
      if (c == results_index) {
        continue;
      }
      PERSONA_ASSIGN_OR_RETURN(parsed[c],
                               format::ParsedChunk::Parse(column_files[c].span()));
      if (parsed[c].record_count() != results.record_count()) {
        return DataLossError(
            StrFormat("chunk %zu: column '%s' record count disagrees with results", ci,
                      manifest.columns[c].name.c_str()));
      }
    }

    for (size_t i = 0; i < results.record_count(); ++i) {
      if (!keep[i]) {
        continue;
      }
      for (size_t c = 0; c < out.columns.size(); ++c) {
        if (out.columns[c].type == format::RecordType::kBases) {
          PERSONA_ASSIGN_OR_RETURN(std::string bases, parsed[c].GetBases(i));
          builders[c].AddBases(bases);
        } else {
          // Raw byte passthrough works for qual, metadata, and encoded results alike.
          builders[c].AddRecord(parsed[c].RecordBytes(i));
        }
      }
      ++report.records_out;
      if (static_cast<int64_t>(builders.front().record_count()) >= out.chunk_size) {
        PERSONA_RETURN_IF_ERROR(
            FlushOutputChunk(store, out_name, builders, out.columns, &out, &report));
      }
    }
  }
  PERSONA_RETURN_IF_ERROR(
      FlushOutputChunk(store, out_name, builders, out.columns, &out, &report));

  PERSONA_RETURN_IF_ERROR(store->Put(out_name + ".manifest.json", out.ToJson()));
  *out_manifest = std::move(out);

  report.seconds = timer.ElapsedSeconds();
  const storage::StoreStats stats_after = store->stats();
  report.store_stats.bytes_read = stats_after.bytes_read - stats_before.bytes_read;
  report.store_stats.bytes_written = stats_after.bytes_written - stats_before.bytes_written;
  report.store_stats.read_ops = stats_after.read_ops - stats_before.read_ops;
  report.store_stats.write_ops = stats_after.write_ops - stats_before.write_ops;
  return report;
}

}  // namespace persona::pipeline
