#include "src/pipeline/convert.h"

#include <algorithm>
#include <map>
#include <memory>

#include "src/format/agd_chunk.h"
#include "src/format/fastq.h"
#include "src/format/sam.h"
#include "src/pipeline/agd_store_util.h"
#include "src/pipeline/chunk_pipeline.h"
#include "src/util/stopwatch.h"

namespace persona::pipeline {

namespace {

double Throughput(uint64_t bytes, double seconds) {
  return seconds > 0 ? static_cast<double>(bytes) / 1e6 / seconds : 0;
}

// Reconstructs record `i` of an exported work item whose columns are
// bases/qual/metadata/results (the export tools' declared column order).
Status DecodeInputRecord(const ChunkPipeline::Input& input, size_t i,
                         genome::Read* read, align::AlignmentResult* result) {
  return DecodeAlignedRecord(input.column(0, 0), input.column(0, 1),
                             input.column(0, 2), input.column(0, 3), i, read, result);
}

}  // namespace

FastqToAgdCore::FastqToAgdCore(std::string name, int64_t chunk_size,
                               compress::CodecId codec)
    : name_(std::move(name)),
      chunk_size_(chunk_size > 0 ? chunk_size : 1),
      codec_(codec) {}

Status FastqToAgdCore::BuildChunk(ChunkPipeline::Input&& input,
                                  ChunkPipeline::Emitter& emit) {
  format::ChunkBuilder bases(format::RecordType::kBases, codec_);
  format::ChunkBuilder qual(format::RecordType::kQual, codec_);
  format::ChunkBuilder metadata(format::RecordType::kMetadata, codec_);
  for (const genome::Read& read : input.reads) {
    bases.AddBases(read.bases);
    qual.AddRecord(read.qual);
    metadata.AddRecord(read.metadata);
  }
  const std::string path_base = name_ + "-" + std::to_string(input.index);
  format::ManifestChunk chunk;
  chunk.path_base = path_base;
  chunk.first_record = static_cast<int64_t>(input.index) * chunk_size_;
  chunk.num_records = static_cast<int64_t>(input.reads.size());
  {
    MutexLock lock(mu_);
    entries_.emplace(input.index, std::move(chunk));
  }
  records_.fetch_add(input.reads.size(), std::memory_order_relaxed);
  chunks_.fetch_add(1, std::memory_order_relaxed);
  ChunkPipeline::SerializeRequest request;
  request.keys = {path_base + ".bases", path_base + ".qual", path_base + ".metadata"};
  request.builders.push_back(std::move(bases));
  request.builders.push_back(std::move(qual));
  request.builders.push_back(std::move(metadata));
  return emit.Emit(std::move(request));
}

format::Manifest FastqToAgdCore::ManifestSnapshot() const {
  format::Manifest manifest;
  manifest.name = name_;
  manifest.chunk_size = chunk_size_;
  manifest.columns = format::StandardReadColumns(codec_);
  MutexLock lock(mu_);
  manifest.chunks.reserve(entries_.size());
  for (const auto& [index, chunk] : entries_) {
    manifest.chunks.push_back(chunk);
  }
  return manifest;
}

Result<ConvertReport> ImportFastqToAgd(storage::ObjectStore* store, const std::string& name,
                                       int64_t chunk_size, compress::CodecId codec,
                                       format::Manifest* out_manifest,
                                       const ChunkPipeline::Options& pipeline_options,
                                       storage::ObjectStore* input_store) {
  Stopwatch timer;
  const storage::StoreStats before = store->stats();
  const size_t records_per_chunk = chunk_size > 0 ? static_cast<size_t>(chunk_size) : 1;

  Buffer object;
  PERSONA_RETURN_IF_ERROR(
      (input_store != nullptr ? input_store : store)->Get(name + ".fastq.gz", &object));
  if (object.size() < sizeof(uint64_t)) {
    return DataLossError("gzipped FASTQ object too small");
  }
  uint64_t raw_size = object.ReadScalar<uint64_t>(0);

  // FASTQ parsing is inherently serial (records are variable-length), so it is the
  // pipeline's record source: it feeds the text in windows and hands out one
  // chunk-sized batch of reads per work item. Column building/compression and the
  // batched chunk writes run behind it in parallel.
  struct ImportState {
    explicit ImportState(size_t batch) : batcher(batch) {}
    Buffer fastq;
    size_t offset = 0;
    format::FastqRecordBatcher batcher;
  };
  auto state = std::make_shared<ImportState>(records_per_chunk);
  PERSONA_RETURN_IF_ERROR(compress::GetCodec(compress::CodecId::kZlib)
                              .Decompress(object.span().subspan(sizeof(uint64_t)),
                                          static_cast<size_t>(raw_size), &state->fastq));

  ChunkPipeline pipeline(pipeline_options);
  pipeline.SetRecordSource([state](std::optional<ChunkPipeline::Input>* out) -> Status {
    constexpr size_t kWindow = 1 << 20;
    while (!state->batcher.HasBatch() && !state->batcher.finished()) {
      if (state->offset >= state->fastq.size()) {
        PERSONA_RETURN_IF_ERROR(state->batcher.Finish());
        break;
      }
      const size_t len = std::min(kWindow, state->fastq.size() - state->offset);
      PERSONA_RETURN_IF_ERROR(state->batcher.Feed(
          std::string_view(state->fastq.view().data() + state->offset, len)));
      state->offset += len;
    }
    std::optional<std::vector<genome::Read>> batch = state->batcher.TakeBatch();
    if (!batch.has_value()) {
      return OkStatus();  // end of stream
    }
    ChunkPipeline::Input input;
    input.reads = std::move(*batch);
    *out = std::move(input);
    return OkStatus();
  });
  pipeline.SetWriter(store, 3);

  auto core = std::make_shared<FastqToAgdCore>(name, chunk_size, codec);
  pipeline.SetTransform(
      "agd-build",
      [core](ChunkPipeline::Input&& input, ChunkPipeline::Emitter& emit) -> Status {
        return core->BuildChunk(std::move(input), emit);
      });
  PERSONA_RETURN_IF_ERROR(pipeline.Run().status());

  format::Manifest manifest = core->ManifestSnapshot();
  PERSONA_RETURN_IF_ERROR(store->Put("manifest.json", manifest.ToJson()));

  ConvertReport report;
  report.seconds = timer.ElapsedSeconds();
  report.records = core->records();
  report.bytes_in = state->fastq.size();
  report.bytes_out = store->stats().bytes_written - before.bytes_written;
  report.throughput_mb_per_sec = Throughput(report.bytes_in, report.seconds);
  if (out_manifest != nullptr) {
    *out_manifest = std::move(manifest);
  }
  return report;
}

Result<ConvertReport> ExportAgdToSam(storage::ObjectStore* store,
                                     const format::Manifest& manifest,
                                     const genome::ReferenceGenome& reference,
                                     const std::string& out_key,
                                     const ChunkPipeline::Options& pipeline_options) {
  if (!manifest.HasColumn("results")) {
    return FailedPreconditionError("SAM export requires a results column");
  }
  Stopwatch timer;
  const storage::StoreStats before = store->stats();

  // SAM output is one sequential text stream, so the append stage is ordered; chunk
  // fetching/parsing ahead of it and part writes behind it overlap. The drain flushes
  // the final partial part.
  struct SamState {
    ConvertReport report;
    std::string sam;
    int part = 0;

    Status FlushPart(ChunkPipeline::Emitter& emit, const std::string& out_key) {
      ChunkPipeline::BufferRef object = emit.AcquireBuffer();
      object->Append(std::string_view(sam));
      report.bytes_in += sam.size();
      sam.clear();
      return emit.Write(out_key + "." + std::to_string(part++), std::move(object));
    }
  };
  auto state = std::make_shared<SamState>();
  state->sam = format::SamHeader(reference);

  ChunkPipeline pipeline(pipeline_options);
  pipeline.SetManifestSource(store, &manifest, {"bases", "qual", "metadata", "results"});
  pipeline.SetWriter(store, 1);
  pipeline.SetTransform(
      "sam-append",
      [state, &reference, &out_key](ChunkPipeline::Input&& input,
                                    ChunkPipeline::Emitter& emit) -> Status {
        genome::Read read;
        align::AlignmentResult result;
        for (size_t i = 0; i < input.column(0, 0).record_count(); ++i) {
          PERSONA_RETURN_IF_ERROR(DecodeInputRecord(input, i, &read, &result));
          PERSONA_RETURN_IF_ERROR(
              format::AppendSamRecord(reference, read, result, &state->sam));
          ++state->report.records;
        }
        if (state->sam.size() > (8u << 20)) {
          return state->FlushPart(emit, out_key);
        }
        return OkStatus();
      },
      /*ordered=*/true,
      [state, &out_key](ChunkPipeline::Emitter& emit) -> Status {
        if (state->sam.empty()) {
          return OkStatus();
        }
        return state->FlushPart(emit, out_key);
      });
  PERSONA_RETURN_IF_ERROR(pipeline.Run().status());

  ConvertReport report = state->report;
  report.seconds = timer.ElapsedSeconds();
  report.bytes_out = store->stats().bytes_written - before.bytes_written;
  report.throughput_mb_per_sec = Throughput(report.bytes_out, report.seconds);
  return report;
}

Result<ConvertReport> ExportAgdToBsam(storage::ObjectStore* store,
                                      const format::Manifest& manifest,
                                      const std::string& out_key,
                                      const ChunkPipeline::Options& pipeline_options) {
  if (!manifest.HasColumn("results")) {
    return FailedPreconditionError("BSAM export requires a results column");
  }
  Stopwatch timer;

  // One BSAM object accumulates across every chunk: ordered append stage, single
  // end-of-stream emission from the drain.
  struct BsamState {
    ConvertReport report;
    format::BsamWriter writer;
  };
  auto state = std::make_shared<BsamState>();

  ChunkPipeline pipeline(pipeline_options);
  pipeline.SetManifestSource(store, &manifest, {"bases", "qual", "metadata", "results"});
  pipeline.SetWriter(store, 1);
  pipeline.SetTransform(
      "bsam-append",
      [state](ChunkPipeline::Input&& input, ChunkPipeline::Emitter&) -> Status {
        genome::Read read;
        align::AlignmentResult result;
        for (size_t i = 0; i < input.column(0, 0).record_count(); ++i) {
          PERSONA_RETURN_IF_ERROR(DecodeInputRecord(input, i, &read, &result));
          state->writer.Add(read, result);
          ++state->report.records;
          state->report.bytes_in +=
              read.bases.size() + read.qual.size() + read.metadata.size();
        }
        return OkStatus();
      },
      /*ordered=*/true,
      [state, &out_key](ChunkPipeline::Emitter& emit) -> Status {
        PERSONA_ASSIGN_OR_RETURN(Buffer file, state->writer.Finish());
        state->report.bytes_out = file.size();
        ChunkPipeline::BufferRef object = emit.AcquireBuffer();
        *object = std::move(file);
        return emit.Write(out_key, std::move(object));
      });
  PERSONA_RETURN_IF_ERROR(pipeline.Run().status());

  ConvertReport report = state->report;
  report.seconds = timer.ElapsedSeconds();
  report.throughput_mb_per_sec = Throughput(report.bytes_out, report.seconds);
  return report;
}

}  // namespace persona::pipeline
