#include "src/pipeline/convert.h"

#include <array>

#include "src/format/agd_chunk.h"
#include "src/format/fastq.h"
#include "src/format/sam.h"
#include "src/pipeline/agd_store_util.h"
#include "src/util/stopwatch.h"

namespace persona::pipeline {

namespace {

double Throughput(uint64_t bytes, double seconds) {
  return seconds > 0 ? static_cast<double>(bytes) / 1e6 / seconds : 0;
}

}  // namespace

Result<ConvertReport> ImportFastqToAgd(storage::ObjectStore* store, const std::string& name,
                                       int64_t chunk_size, compress::CodecId codec,
                                       format::Manifest* out_manifest) {
  Stopwatch timer;
  const storage::StoreStats before = store->stats();

  Buffer object;
  PERSONA_RETURN_IF_ERROR(store->Get(name + ".fastq.gz", &object));
  if (object.size() < sizeof(uint64_t)) {
    return DataLossError("gzipped FASTQ object too small");
  }
  uint64_t raw_size = object.ReadScalar<uint64_t>(0);
  Buffer fastq;
  PERSONA_RETURN_IF_ERROR(compress::GetCodec(compress::CodecId::kZlib)
                              .Decompress(object.span().subspan(sizeof(uint64_t)),
                                          static_cast<size_t>(raw_size), &fastq));

  format::Manifest manifest;
  manifest.name = name;
  manifest.chunk_size = chunk_size;
  manifest.columns = format::StandardReadColumns(codec);

  format::ChunkBuilder bases(format::RecordType::kBases, codec);
  format::ChunkBuilder qual(format::RecordType::kQual, codec);
  format::ChunkBuilder metadata(format::RecordType::kMetadata, codec);
  Buffer bases_file;
  Buffer qual_file;
  Buffer metadata_file;
  int64_t in_chunk = 0;
  int64_t total = 0;

  auto flush = [&]() -> Status {
    if (in_chunk == 0) {
      return OkStatus();
    }
    format::ManifestChunk chunk;
    chunk.path_base = name + "-" + std::to_string(manifest.chunks.size());
    chunk.first_record = total - in_chunk;
    chunk.num_records = in_chunk;
    PERSONA_RETURN_IF_ERROR(bases.Finalize(&bases_file));
    PERSONA_RETURN_IF_ERROR(qual.Finalize(&qual_file));
    PERSONA_RETURN_IF_ERROR(metadata.Finalize(&metadata_file));
    std::array<storage::PutOp, 3> puts = {
        storage::PutOp{chunk.path_base + ".bases", bases_file.span(), {}},
        storage::PutOp{chunk.path_base + ".qual", qual_file.span(), {}},
        storage::PutOp{chunk.path_base + ".metadata", metadata_file.span(), {}},
    };
    PERSONA_RETURN_IF_ERROR(store->PutBatch(puts));
    manifest.chunks.push_back(std::move(chunk));
    bases.Reset();
    qual.Reset();
    metadata.Reset();
    in_chunk = 0;
    return OkStatus();
  };

  // Streamed parse: feed the decompressed text in windows, flushing chunks as they fill.
  format::FastqParser parser;
  std::vector<genome::Read> parsed;
  constexpr size_t kWindow = 1 << 20;
  for (size_t offset = 0; offset < fastq.size(); offset += kWindow) {
    size_t len = std::min(kWindow, fastq.size() - offset);
    PERSONA_RETURN_IF_ERROR(
        parser.Feed(std::string_view(fastq.view().data() + offset, len), &parsed));
    for (genome::Read& read : parsed) {
      bases.AddBases(read.bases);
      qual.AddRecord(read.qual);
      metadata.AddRecord(read.metadata);
      ++in_chunk;
      ++total;
      if (in_chunk >= chunk_size) {
        PERSONA_RETURN_IF_ERROR(flush());
      }
    }
    parsed.clear();
  }
  PERSONA_RETURN_IF_ERROR(parser.Finish());
  PERSONA_RETURN_IF_ERROR(flush());
  PERSONA_RETURN_IF_ERROR(store->Put("manifest.json", manifest.ToJson()));

  ConvertReport report;
  report.seconds = timer.ElapsedSeconds();
  report.records = static_cast<uint64_t>(total);
  report.bytes_in = fastq.size();
  report.bytes_out = store->stats().bytes_written - before.bytes_written;
  report.throughput_mb_per_sec = Throughput(report.bytes_in, report.seconds);
  if (out_manifest != nullptr) {
    *out_manifest = std::move(manifest);
  }
  return report;
}

Result<ConvertReport> ExportAgdToSam(storage::ObjectStore* store,
                                     const format::Manifest& manifest,
                                     const genome::ReferenceGenome& reference,
                                     const std::string& out_key) {
  if (!manifest.HasColumn("results")) {
    return FailedPreconditionError("SAM export requires a results column");
  }
  Stopwatch timer;
  const storage::StoreStats before = store->stats();

  ConvertReport report;
  std::string sam = format::SamHeader(reference);
  int part = 0;
  for (size_t ci = 0; ci < manifest.chunks.size(); ++ci) {
    std::vector<genome::Read> reads;
    std::vector<align::AlignmentResult> results;
    PERSONA_RETURN_IF_ERROR(LoadAlignedChunk(store, manifest, ci, &reads, &results));
    for (size_t i = 0; i < reads.size(); ++i) {
      PERSONA_RETURN_IF_ERROR(
          format::AppendSamRecord(reference, reads[i], results[i], &sam));
      ++report.records;
    }
    if (sam.size() > (8u << 20)) {
      PERSONA_RETURN_IF_ERROR(store->Put(out_key + "." + std::to_string(part++), sam));
      report.bytes_in += sam.size();
      sam.clear();
    }
  }
  if (!sam.empty()) {
    PERSONA_RETURN_IF_ERROR(store->Put(out_key + "." + std::to_string(part), sam));
    report.bytes_in += sam.size();
  }
  report.seconds = timer.ElapsedSeconds();
  report.bytes_out = store->stats().bytes_written - before.bytes_written;
  report.throughput_mb_per_sec = Throughput(report.bytes_out, report.seconds);
  return report;
}

Result<ConvertReport> ExportAgdToBsam(storage::ObjectStore* store,
                                      const format::Manifest& manifest,
                                      const std::string& out_key) {
  if (!manifest.HasColumn("results")) {
    return FailedPreconditionError("BSAM export requires a results column");
  }
  Stopwatch timer;
  ConvertReport report;
  format::BsamWriter writer;
  for (size_t ci = 0; ci < manifest.chunks.size(); ++ci) {
    std::vector<genome::Read> reads;
    std::vector<align::AlignmentResult> results;
    PERSONA_RETURN_IF_ERROR(LoadAlignedChunk(store, manifest, ci, &reads, &results));
    for (size_t i = 0; i < reads.size(); ++i) {
      writer.Add(reads[i], results[i]);
      ++report.records;
      report.bytes_in += reads[i].bases.size() + reads[i].qual.size() +
                         reads[i].metadata.size();
    }
  }
  PERSONA_ASSIGN_OR_RETURN(Buffer file, writer.Finish());
  report.bytes_out = file.size();
  PERSONA_RETURN_IF_ERROR(store->Put(out_key, file));
  report.seconds = timer.ElapsedSeconds();
  report.throughput_mb_per_sec = Throughput(report.bytes_out, report.seconds);
  return report;
}

}  // namespace persona::pipeline
