// Standalone aligner baseline: the "SNAP standalone" configuration of Table 1 / Fig. 5.
//
// Models how the standalone tool processes a dataset, in contrast to Persona+AGD:
//   - input is one monolithic gzipped FASTQ object (row-oriented: bases+qual+metadata
//     are all read even though alignment needs no metadata);
//   - output is row-oriented SAM text (~4x the input volume: the 16.75x write
//     amplification of Table 1 comes from here);
//   - output is buffered and flushed in large bursts, modelling the OS buffer-cache
//     writeback that competes with reads on a single disk (the Fig. 5a cycles);
//   - compute uses an ad-hoc thread pool rather than a dataflow graph.

#ifndef PERSONA_SRC_PIPELINE_BASELINE_STANDALONE_H_
#define PERSONA_SRC_PIPELINE_BASELINE_STANDALONE_H_

#include <string>

#include "src/align/aligner.h"
#include "src/genome/reference.h"
#include "src/storage/object_store.h"

namespace persona::pipeline {

struct StandaloneOptions {
  int threads = 4;
  size_t batch_reads = 4'096;           // reads handed to a worker at a time
  size_t writeback_threshold = 8 << 20; // SAM bytes buffered before a burst write
  double utilization_sample_sec = 0;    // 0 disables sampling
};

struct StandaloneReport {
  double seconds = 0;
  uint64_t reads = 0;
  uint64_t bases = 0;
  storage::StoreStats store_stats;
  // Utilization timeline: fraction of provisioned threads busy per sample interval.
  std::vector<double> utilization;
  double utilization_interval_sec = 0;
};

// Aligns `<name>.fastq.gz` from `store`, writing `<name>.sam` parts back to `store`.
Result<StandaloneReport> RunStandaloneAlignment(storage::ObjectStore* store,
                                                const std::string& name,
                                                const genome::ReferenceGenome& reference,
                                                const align::Aligner& aligner,
                                                const StandaloneOptions& options);

}  // namespace persona::pipeline

#endif  // PERSONA_SRC_PIPELINE_BASELINE_STANDALONE_H_
