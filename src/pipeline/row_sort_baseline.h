// Row-oriented sort baselines for Table 2 (samtools / samtools+conversion / Picard).
//
// These model the cost structure of the standard tools:
//   SamtoolsLikeSort — external merge sort over BSAM (binary, block-compressed rows),
//     multi-threaded phase 1; optionally preceded by SAM-text -> BSAM conversion (the
//     "sort + conversion" row of Table 2, since samtools sorts BAM, not SAM).
//   PicardLikeSort   — single-threaded BAM-style sort: decode every record into an
//     object collection, spill sorted runs, merge on one thread, re-encode.
//
// Against Persona's columnar sort these pay (a) full-row decode/encode per record,
// (b) text parsing (Picard / conversion path), and (c) no or limited parallelism —
// reproducing the 1.54x / 2.32x / 5.15x ordering.

#ifndef PERSONA_SRC_PIPELINE_ROW_SORT_BASELINE_H_
#define PERSONA_SRC_PIPELINE_ROW_SORT_BASELINE_H_

#include <string>

#include "src/genome/reference.h"
#include "src/storage/object_store.h"

namespace persona::pipeline {

struct RowSortReport {
  double seconds = 0;
  double convert_seconds = 0;        // SAM-text parse (serial; conversion runs only)
  double convert_encode_seconds = 0;  // BAM-equivalent block encode (parallelizable:
                                      // real samtools compresses BGZF blocks on -@ threads)
  double phase1_seconds = 0;   // sorted-run generation
  double merge_seconds = 0;    // single-threaded merge + output encode
  uint64_t records = 0;
  uint64_t superchunks = 0;
};

struct RowSortOptions {
  int threads = 2;
  int records_per_superchunk = 50'000;
};

// Sorts the BSAM object `in_key` by mapped location into `out_key`.
// If `convert_from_sam` is set, `in_key` is SAM text parts ("<in_key>.<i>") that are
// first converted to BSAM (timed as part of the run).
Result<RowSortReport> SamtoolsLikeSort(storage::ObjectStore* store,
                                       const genome::ReferenceGenome& reference,
                                       const std::string& in_key, const std::string& out_key,
                                       const RowSortOptions& options, bool convert_from_sam);

// Single-threaded BAM-style sort over the BSAM object `in_key` -> `out_key`.
Result<RowSortReport> PicardLikeSort(storage::ObjectStore* store,
                                     const genome::ReferenceGenome& reference,
                                     const std::string& in_key, const std::string& out_key);

}  // namespace persona::pipeline

#endif  // PERSONA_SRC_PIPELINE_ROW_SORT_BASELINE_H_
