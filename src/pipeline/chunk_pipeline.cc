#include "src/pipeline/chunk_pipeline.h"

#include <atomic>
#include <deque>
#include <map>
#include <utility>

#include "src/pipeline/job_journal.h"
#include "src/pipeline/quarantine.h"
#include "src/util/mutex.h"
#include "src/util/stopwatch.h"
#include "src/util/string_util.h"

namespace persona::pipeline {

namespace {

// Manifest-mode work item: one group of consecutive chunks.
struct Work {
  size_t index = 0;
  size_t chunk_begin = 0;
  size_t chunk_end = 0;
};

// Fetched-but-unparsed column files of one work item, chunk-major in pooled buffers.
// `keys` names the column files (parallel to `files`) so a quarantined item can be
// reported by key, not just index.
struct RawItem {
  size_t index = 0;
  size_t chunk_begin = 0;
  size_t chunk_end = 0;
  std::vector<ChunkPipeline::BufferRef> files;
  std::vector<std::string> keys;
};

// skip_bad_chunks accounting, shared by the reader and parser stages. Entries keep
// the work-item index and error alongside the keys so Run() can persist them as a
// quarantine manifest (and a cluster work source can be told the group failed).
struct Quarantine {
  Mutex mu;
  uint64_t items GUARDED_BY(mu) = 0;
  std::vector<std::string> keys GUARDED_BY(mu);
  std::vector<QuarantineManifest::Entry> entries GUARDED_BY(mu);

  void Add(size_t index, std::vector<std::string>&& item_keys,
           const Status& error) EXCLUDES(mu) {
    MutexLock lock(mu);
    ++items;
    QuarantineManifest::Entry entry;
    entry.group = index;
    entry.error = error.ToString();
    entry.keys = item_keys;
    entries.push_back(std::move(entry));
    for (std::string& key : item_keys) {
      keys.push_back(std::move(key));
    }
  }
};

// Read-ahead gate for ordered transforms. The resequencer must park whatever arrives
// out of order, and parked Inputs hold decompressed data that no queue or pool bounds
// — so the source stops handing out work more than `window` items ahead of the
// transform's completion watermark. One slow fetch then strands at most a
// pipeline-depth of parked items instead of the whole dataset.
struct OrderGate {
  Mutex mu;
  CondVar cv;
  size_t completed GUARDED_BY(mu) = 0;
  bool cancelled GUARDED_BY(mu) = false;

  void WaitForSlot(size_t index, size_t window) EXCLUDES(mu) {
    MutexLock lock(mu);
    while (!cancelled && index >= completed + window) {
      cv.Wait(mu);
    }
  }

  void Advance(size_t completed_count) EXCLUDES(mu) {
    {
      MutexLock lock(mu);
      completed = completed_count;
    }
    // Callers reach the gate through a shared_ptr that outlives every stage thread,
    // so notifying after the unlock cannot race the gate's destruction.
    cv.NotifyAll();
  }

  void CancelWaits() EXCLUDES(mu) {
    {
      MutexLock lock(mu);
      cancelled = true;
    }
    cv.NotifyAll();
  }
};

// Bounded window of in-flight asynchronous write submissions. Submitting past the
// window's depth awaits the oldest ticket first, so the writer keeps `depth` batches
// in flight while op/buffer memory stays owned until each ticket completes.
class WriteWindow {
 public:
  // `commit`, when set, is called with each request's work item and landed keys once
  // its ticket completes OK — the durable-output commit point shared by the resume
  // journal (mark the item done) and a cluster work source (report the lease
  // complete). Never called for kNoItem emissions (drain epilogues, manifests).
  using CommitFn = std::function<Status(size_t item, std::vector<std::string> keys)>;

  WriteWindow(storage::ObjectStore* store, size_t depth, CommitFn commit)
      : store_(store), depth_(depth == 0 ? 1 : depth), commit_(std::move(commit)) {}

  Status Submit(ChunkPipeline::WriteRequest&& request) {
    auto pending = std::make_unique<Pending>();
    pending->item = request.item;
    pending->objects = std::move(request.objects);
    pending->ops.reserve(request.keys.size());
    for (size_t i = 0; i < request.keys.size(); ++i) {
      pending->ops.push_back(
          {std::move(request.keys[i]), pending->objects[i]->span(), {}});
    }
    pending->ticket = store_->SubmitAsync(pending->ops, {});

    std::unique_ptr<Pending> evicted;
    {
      MutexLock lock(mu_);
      window_.push_back(std::move(pending));
      if (window_.size() > depth_) {
        evicted = std::move(window_.front());
        window_.pop_front();
      }
    }
    if (evicted != nullptr) {
      PERSONA_RETURN_IF_ERROR(evicted->ticket.Await());
      return CommitLanded(*evicted);
    }
    return OkStatus();
  }

  // Awaits every in-flight submission; returns the first error. Must run before the
  // pooled buffers feeding the ops can be considered returned — including on
  // cancellation, because the store's scheduler may still be touching op memory.
  Status Drain() {
    std::deque<std::unique_ptr<Pending>> all;
    {
      MutexLock lock(mu_);
      all.swap(window_);
    }
    Status first_error;
    for (const auto& pending : all) {
      Status status = pending->ticket.Await();
      if (status.ok()) {
        status = CommitLanded(*pending);
      }
      if (!status.ok() && first_error.ok()) {
        first_error = status;
      }
    }
    return first_error;
  }

 private:
  struct Pending {
    size_t item = ChunkPipeline::kNoItem;
    std::vector<ChunkPipeline::BufferRef> objects;
    std::vector<storage::PutOp> ops;
    storage::IoTicket ticket;
  };

  Status CommitLanded(const Pending& pending) {
    if (!commit_ || pending.item == ChunkPipeline::kNoItem) {
      return OkStatus();
    }
    std::vector<std::string> keys;
    keys.reserve(pending.ops.size());
    for (const storage::PutOp& op : pending.ops) {
      keys.push_back(op.key);
    }
    return commit_(pending.item, std::move(keys));
  }

  storage::ObjectStore* store_;
  const size_t depth_;
  const CommitFn commit_;
  Mutex mu_;
  std::deque<std::unique_ptr<Pending>> window_ GUARDED_BY(mu_);
};

}  // namespace

Status ChunkPipeline::Emitter::StampAndCheck(size_t* request_item) {
  *request_item = item_;
  if (enforce_single_emission_ && item_ != kNoItem) {
    if (emitted_) {
      return FailedPreconditionError(
          "ChunkPipeline resume: transform emitted more than once for work item " +
          std::to_string(item_) +
          "; journaled resume requires exactly one emission per item");
    }
    emitted_ = true;
  }
  return OkStatus();
}

Status ChunkPipeline::Emitter::Emit(SerializeRequest request) {
  PERSONA_RETURN_IF_ERROR(StampAndCheck(&request.item));
  return serialize_out_->Push(std::move(request));
}

Status ChunkPipeline::Emitter::Write(std::string key, BufferRef object) {
  WriteRequest request;
  request.keys.push_back(std::move(key));
  request.objects.push_back(std::move(object));
  return Write(std::move(request));
}

Status ChunkPipeline::Emitter::Write(WriteRequest request) {
  PERSONA_RETURN_IF_ERROR(StampAndCheck(&request.item));
  Stopwatch timer;
  const bool accepted = write_queue_->Push(std::move(request));
  // Attribute the (possibly blocked) push to the transform's output wait, same as the
  // serialize path.
  serialize_out_->AddWaitNanos(static_cast<uint64_t>(timer.ElapsedNanos()));
  if (!accepted) {
    return CancelledError("write queue closed");
  }
  return OkStatus();
}

void ChunkPipeline::SetManifestSource(storage::ObjectStore* store,
                                      const format::Manifest* manifest,
                                      std::vector<std::string> columns, size_t group_size,
                                      WorkSource* work_source) {
  source_store_ = store;
  manifest_ = manifest;
  columns_ = std::move(columns);
  group_size_ = group_size == 0 ? 1 : group_size;
  work_source_ = work_source;
  record_source_ = nullptr;
}

void ChunkPipeline::SetManifestSource(storage::ObjectStore* store,
                                      const format::Manifest* manifest,
                                      std::vector<std::string> columns, size_t group_size,
                                      WorkSourceFn work_source) {
  owned_work_source_ =
      work_source ? std::make_unique<FunctionWorkSource>(std::move(work_source))
                  : nullptr;
  SetManifestSource(store, manifest, std::move(columns), group_size,
                    owned_work_source_.get());
}

void ChunkPipeline::SetRecordSource(RecordSourceFn next) {
  record_source_ = std::move(next);
  source_store_ = nullptr;
  manifest_ = nullptr;
}

void ChunkPipeline::SetReadAheadColumns(std::vector<std::string> columns) {
  read_ahead_columns_ = std::move(columns);
}

void ChunkPipeline::SetTransform(std::string name, TransformFn fn, bool ordered,
                                 DrainFn drain) {
  transform_name_ = std::move(name);
  transform_ = std::move(fn);
  ordered_ = ordered;
  drain_ = std::move(drain);
}

void ChunkPipeline::SetWriter(storage::ObjectStore* store, size_t max_objects_per_request) {
  write_store_ = store;
  max_objects_per_request_ = max_objects_per_request == 0 ? 1 : max_objects_per_request;
}

void ChunkPipeline::SetResumeJournal(JobJournal* journal) { journal_ = journal; }

Result<ChunkPipelineReport> ChunkPipeline::Run() {
  if (ran_) {
    return FailedPreconditionError("ChunkPipeline::Run called twice");
  }
  ran_ = true;
  if (!transform_) {
    return FailedPreconditionError("ChunkPipeline: no transform set");
  }
  if (write_store_ == nullptr) {
    return FailedPreconditionError("ChunkPipeline: no writer set");
  }
  const bool manifest_mode = manifest_ != nullptr;
  if (!manifest_mode && !record_source_) {
    return FailedPreconditionError("ChunkPipeline: no source set");
  }
  if (manifest_mode && columns_.empty()) {
    return InvalidArgumentError("ChunkPipeline: manifest source needs at least one column");
  }
  if (ordered_ && work_source_) {
    // A cluster work source hands out groups in server order; resequencing on that
    // order would silently change an ordered tool's dataset-order semantics.
    return InvalidArgumentError(
        "ChunkPipeline: ordered transforms require local (dataset-order) chunk handout");
  }
  if (journal_ != nullptr) {
    // Per-item resume is only sound when each work item's outputs are self-contained
    // and locally indexed: ordered tools carry cross-chunk state (dedup's signature
    // set, filter's partial chunk) that skipping items would corrupt, a cluster work
    // source's dense indices differ run to run, and record mode has no stable item
    // identity at all.
    if (!manifest_mode) {
      return InvalidArgumentError(
          "ChunkPipeline: a resume journal requires the manifest source");
    }
    if (ordered_) {
      return InvalidArgumentError(
          "ChunkPipeline: ordered transforms carry cross-chunk state and cannot "
          "resume from a journal");
    }
    if (work_source_) {
      return InvalidArgumentError(
          "ChunkPipeline: a resume journal requires local chunk handout (cluster "
          "work-source indices are not stable across runs)");
    }
  }
  if (options_.skip_bad_chunks && ordered_) {
    return InvalidArgumentError(
        "ChunkPipeline: skip_bad_chunks would stall an ordered transform (its "
        "resequencer must see every work item)");
  }

  storage::ObjectStore* stats_store =
      source_store_ != nullptr ? source_store_ : write_store_;
  const storage::StoreStats store_before = stats_store->stats();

  const int read_par = std::max(1, options_.read_parallelism);
  const int parse_par = std::max(1, options_.parse_parallelism);
  const int transform_par = ordered_ ? 1 : std::max(1, options_.transform_parallelism);
  const int serialize_par = std::max(1, options_.serialize_parallelism);
  const int write_par = std::max(1, options_.write_parallelism);
  const size_t window_depth = options_.write_window > 0
                                  ? options_.write_window
                                  : static_cast<size_t>(write_par);

  auto cap = [&](int consumer_parallelism) {
    return options_.queue_depth > 0 ? options_.queue_depth
                                    : static_cast<size_t>(consumer_parallelism);
  };
  const size_t work_cap = cap(read_par);
  const size_t raw_cap = cap(parse_par);
  // Ordered transforms still get read-ahead depth: out-of-order items park in the
  // resequencer, so the input queue sizes to the configured parallelism either way.
  const size_t input_cap = cap(std::max(1, options_.transform_parallelism));
  const size_t serialize_cap = cap(serialize_par);
  const size_t write_cap = cap(write_par);

  // Pool sizing (paper §4.5): "the total quantity of objects is the sum of the queue
  // lengths and the number of dataflow nodes that use an object". Raw column files park
  // in the raw queue and in reader/parser hands; output objects park in the write
  // queue, the async window, and serializer/writer/transform hands. Undersizing
  // deadlocks, so every holder is counted.
  const size_t per_item_raw = manifest_mode ? group_size_ * columns_.size() : 0;
  const size_t raw_buffers =
      per_item_raw * (raw_cap + static_cast<size_t>(read_par) +
                      static_cast<size_t>(parse_par));
  const size_t out_buffers =
      max_objects_per_request_ *
      (write_cap + window_depth + static_cast<size_t>(transform_par) +
       static_cast<size_t>(serialize_par) + static_cast<size_t>(write_par));
  auto pool = BufferPool::Create(raw_buffers + out_buffers + 4,
                                 [] { return std::make_unique<Buffer>(); },
                                 [](Buffer* b) { b->Clear(); });
  pool_capacity_ = pool->capacity();

  // The durable-write commit point: the journal and a cluster work source want the
  // same notification (item's outputs landed), so they share the window's callback.
  WriteWindow::CommitFn commit;
  if (journal_ != nullptr) {
    commit = [journal = journal_](size_t item, std::vector<std::string> keys) {
      return journal->Commit(item, std::move(keys));
    };
  } else if (work_source_ != nullptr) {
    commit = [source = work_source_](size_t item, std::vector<std::string> keys) {
      return source->CompleteGroup(item, keys);
    };
  }
  auto window = std::make_shared<WriteWindow>(write_store_, window_depth,
                                              std::move(commit));
  auto quarantine = std::make_shared<Quarantine>();
  auto resumed = std::make_shared<std::atomic<uint64_t>>(0);
  Status source_error;

  ChunkPipelineReport report;
  Status run_status;
  std::vector<dataflow::UtilizationSample> utilization;
  {
    dataflow::Graph graph;
    auto input_queue = dataflow::Graph::MakeQueue<Input>(input_cap);
    auto serialize_queue = dataflow::Graph::MakeQueue<SerializeRequest>(serialize_cap);
    auto write_queue = dataflow::Graph::MakeQueue<WriteRequest>(write_cap);
    graph.ObserveQueue("input", input_queue);
    graph.ObserveQueue("serialize", serialize_queue);
    graph.ObserveQueue("write", write_queue);

    // Source-side read-ahead runs only when the store can actually hold the warmed
    // objects; against an uncached store it would fetch every byte twice.
    const bool read_ahead = manifest_mode && options_.read_ahead &&
                            source_store_->CachesReads();
    const size_t prefetch_cap = read_ahead ? cap(read_par) : 0;

    // Ordered manifest-mode pipelines bound their read-ahead (see OrderGate); the
    // window matches the pipeline's natural in-flight depth — including the prefetch
    // stage's queue and workers when active — so steady-state overlap is never
    // throttled. Record mode needs no gate: its serial source feeds the single
    // ordered worker FIFO, so nothing ever parks.
    std::shared_ptr<OrderGate> gate;
    size_t order_window = 0;
    if (ordered_ && manifest_mode) {
      gate = std::make_shared<OrderGate>();
      order_window = work_cap + raw_cap + input_cap + static_cast<size_t>(read_par) +
                     static_cast<size_t>(parse_par) + 2;
      if (read_ahead) {
        order_window += prefetch_cap + static_cast<size_t>(read_par);
      }
      graph.AddCancelHook([gate] { gate->CancelWaits(); });
    }

    if (manifest_mode) {
      auto work_queue = dataflow::Graph::MakeQueue<Work>(work_cap);
      auto raw_queue = dataflow::Graph::MakeQueue<RawItem>(raw_cap);
      graph.ObserveQueue("work", work_queue);
      graph.ObserveQueue("raw", raw_queue);

      // --- Source: dense group indices, locally or from the cluster's server. ---
      const size_t num_chunks = manifest_->chunks.size();
      const size_t group = group_size_;
      const size_t num_groups = (num_chunks + group - 1) / group;
      if (work_source_) {
        // Never combined with an OrderGate (ordered + work_source is rejected above).
        // The group index *is* the work-item index: completion notifications and
        // output keys must name the same group on every node, which a per-node
        // dense counter cannot do.
        graph.AddSource<Work>(
            "chunk-source", work_queue,
            [source = work_source_, group, num_chunks]() -> std::optional<Work> {
              while (true) {
                std::optional<size_t> g = source->NextGroup();
                if (!g.has_value()) {
                  return std::nullopt;
                }
                const size_t begin = *g * group;
                if (begin >= num_chunks) {
                  continue;  // out-of-range handout: nothing to do for it
                }
                Work work;
                work.index = *g;
                work.chunk_begin = begin;
                work.chunk_end = std::min(num_chunks, begin + group);
                return work;
              }
            });
      } else {
        auto next_group = std::make_shared<std::atomic<size_t>>(0);
        graph.AddSource<Work>(
            "chunk-source", work_queue,
            [next_group, group, num_groups, num_chunks, gate, order_window,
             journal = journal_,
             resumed](dataflow::Graph::SourceWait& wait) -> std::optional<Work> {
              while (true) {
                const size_t g = next_group->fetch_add(1);
                if (g >= num_groups) {
                  return std::nullopt;
                }
                if (journal != nullptr && journal->IsCompleted(g)) {
                  // Resume: this item's outputs already landed in a previous run —
                  // skip it without fetching a byte.
                  resumed->fetch_add(1, std::memory_order_relaxed);
                  continue;
                }
                Work work;
                work.index = g;
                work.chunk_begin = g * group;
                work.chunk_end = std::min(num_chunks, work.chunk_begin + group);
                if (gate != nullptr) {
                  // Gate waits are backpressure, not production time.
                  Stopwatch wait_timer;
                  gate->WaitForSlot(work.index, order_window);
                  wait.wait_ns += static_cast<uint64_t>(wait_timer.ElapsedNanos());
                }
                return work;
              }
            });
      }

      // --- Prefetch (read-ahead): warm the group's columns through the store's
      // cache tier before the reader claims them. With `read_par` workers the stage
      // naturally runs a work item ahead of the readers, so the device transfers
      // chunk N+1 while the reader's batched Get for chunk N hits memory. The warmed
      // set covers the declared columns — or the wider SetReadAheadColumns list for
      // tools whose transform fetches extra columns itself (filter's ordered stage).
      auto reader_in = work_queue;
      if (read_ahead) {
        auto prefetch_queue = dataflow::Graph::MakeQueue<Work>(prefetch_cap);
        graph.ObserveQueue("prefetch", prefetch_queue);
        const std::vector<std::string>* warm_columns =
            read_ahead_columns_.empty() ? &columns_ : &read_ahead_columns_;
        graph.AddStage<Work, Work>(
            "prefetch", read_par, work_queue, prefetch_queue,
            [store = source_store_, manifest = manifest_, warm_columns](
                Work&& work, dataflow::StageOutput<Work>& out) -> Status {
              std::vector<std::string> keys;
              keys.reserve((work.chunk_end - work.chunk_begin) * warm_columns->size());
              for (size_t c = work.chunk_begin; c < work.chunk_end; ++c) {
                for (const std::string& column : *warm_columns) {
                  keys.push_back(manifest->ChunkFileName(c, column));
                }
              }
              // Best-effort by contract: a failed warm-up surfaces as a reader miss,
              // where retry/quarantine handling applies.
              store->Prefetch(keys);
              return out.Push(std::move(work));
            });
        reader_in = prefetch_queue;
      }

      // --- Reader: all columns of every chunk in the group, one batched Get into
      // pooled buffers. ---
      graph.AddStage<Work, RawItem>(
          "reader", read_par, reader_in, raw_queue,
          [store = source_store_, manifest = manifest_, columns = &columns_, pool,
           skip = options_.skip_bad_chunks, quarantine,
           source = work_source_](Work&& work,
                                  dataflow::StageOutput<RawItem>& out) -> Status {
            RawItem raw;
            raw.index = work.index;
            raw.chunk_begin = work.chunk_begin;
            raw.chunk_end = work.chunk_end;
            const size_t n = (work.chunk_end - work.chunk_begin) * columns->size();
            raw.files.reserve(n);
            raw.keys.reserve(n);
            std::vector<storage::GetOp> gets;
            gets.reserve(n);
            for (size_t c = work.chunk_begin; c < work.chunk_end; ++c) {
              for (const std::string& column : *columns) {
                raw.files.push_back(pool->Acquire());
                raw.keys.push_back(manifest->ChunkFileName(c, column));
                gets.push_back({raw.keys.back(), raw.files.back().get(), {}});
              }
            }
            Status status = store->GetBatch(gets);
            if (!status.ok()) {
              if (!skip) {
                return status;
              }
              // Graceful degradation: the store (and its retry budget) gave up on
              // this item — quarantine it and keep the run alive. Dropping `raw`
              // returns the pooled buffers. A cluster work source is told so the
              // lease can fail over (or be quarantined server-side).
              if (source != nullptr) {
                PERSONA_RETURN_IF_ERROR(source->FailGroup(raw.index, status));
              }
              quarantine->Add(raw.index, std::move(raw.keys), status);
              return OkStatus();
            }
            return out.Push(std::move(raw));
          });

      // --- Parser: decompress + decode every column; recycle the raw buffers. ---
      const size_t num_columns = columns_.size();
      auto parse_item = [num_columns](RawItem& raw, Input* input) -> Status {
        input->index = raw.index;
        input->chunk_begin = raw.chunk_begin;
        input->chunk_end = raw.chunk_end;
        input->num_columns = num_columns;
        input->columns.reserve(raw.files.size());
        input->file_sizes.reserve(raw.files.size());
        for (const BufferRef& file : raw.files) {
          input->file_sizes.push_back(file->size());
          PERSONA_ASSIGN_OR_RETURN(format::ParsedChunk parsed,
                                   format::ParsedChunk::Parse(file->span()));
          input->columns.push_back(std::move(parsed));
        }
        raw.files.clear();  // raw buffers back to the pool before handing off
        for (size_t k = 0; k + num_columns <= input->columns.size(); k += num_columns) {
          const size_t records = input->columns[k].record_count();
          for (size_t c = 1; c < num_columns; ++c) {
            if (input->columns[k + c].record_count() != records) {
              return DataLossError(StrFormat("chunk %zu: column record counts disagree",
                                             input->chunk_begin + k / num_columns));
            }
          }
        }
        return OkStatus();
      };
      graph.AddStage<RawItem, Input>(
          "parser", parse_par, raw_queue, input_queue,
          [parse_item, skip = options_.skip_bad_chunks, quarantine,
           source = work_source_](RawItem&& raw,
                                  dataflow::StageOutput<Input>& out) -> Status {
            Input input;
            Status status = parse_item(raw, &input);
            if (!status.ok()) {
              if (!skip) {
                return status;
              }
              // A chunk that fetched but won't decode (corruption the codec or
              // record-count check caught): quarantine instead of cancelling.
              raw.files.clear();
              if (source != nullptr) {
                PERSONA_RETURN_IF_ERROR(source->FailGroup(raw.index, status));
              }
              quarantine->Add(raw.index, std::move(raw.keys), status);
              return OkStatus();
            }
            return out.Push(std::move(input));
          });
    } else {
      // --- Record-mode source: the generator runs serially; indices are stamped
      // densely so ordered transforms can resequence. ---
      auto stamp = std::make_shared<size_t>(0);
      graph.AddSource<Input>(
          "record-source", input_queue,
          [next = record_source_, stamp, &source_error,
           &graph]() -> std::optional<Input> {
            std::optional<Input> input;
            Status status = next(&input);
            if (!status.ok()) {
              source_error = status;
              // A failing source is a run failure, not end-of-stream: cancel so
              // downstream stages stop instead of draining, and end-of-stream
              // epilogues are skipped rather than flushing a half-ingested stream
              // (e.g. a client that disconnected mid-record) as if it completed.
              graph.Cancel();
              return std::nullopt;
            }
            if (input.has_value()) {
              input->index = (*stamp)++;
            }
            return input;
          });
    }

    // --- Transform: the tool stage. Ordered tools run one worker behind a
    // resequencer that releases Inputs in work-item order. ---
    auto make_emitter = [pool_ptr = pool.get(), write_queue](
                            dataflow::StageOutput<SerializeRequest>& out) {
      return Emitter(pool_ptr, &out, write_queue.get());
    };
    std::function<Status(Input&&, dataflow::StageOutput<SerializeRequest>&)> stage_fn;
    if (ordered_) {
      auto pending = std::make_shared<std::map<size_t, Input>>();
      auto next_index = std::make_shared<size_t>(0);
      stage_fn = [fn = transform_, pending, next_index, make_emitter, gate](
                     Input&& input,
                     dataflow::StageOutput<SerializeRequest>& out) -> Status {
        Emitter emitter = make_emitter(out);
        if (input.index != *next_index) {
          pending->emplace(input.index, std::move(input));
          return OkStatus();
        }
        PERSONA_RETURN_IF_ERROR(fn(std::move(input), emitter));
        ++*next_index;
        while (!pending->empty() && pending->begin()->first == *next_index) {
          Input next = std::move(pending->begin()->second);
          pending->erase(pending->begin());
          PERSONA_RETURN_IF_ERROR(fn(std::move(next), emitter));
          ++*next_index;
        }
        if (gate != nullptr) {
          gate->Advance(*next_index);
        }
        return OkStatus();
      };
    } else {
      stage_fn = [fn = transform_, make_emitter, journaled = journal_ != nullptr](
                     Input&& input,
                     dataflow::StageOutput<SerializeRequest>& out) -> Status {
        Emitter emitter = make_emitter(out);
        // Emissions carry the work item so the writer can journal it; with a journal
        // attached the one-emission-per-item contract is enforced.
        emitter.BindItem(input.index, journaled);
        return fn(std::move(input), emitter);
      };
    }
    std::function<Status(dataflow::StageOutput<SerializeRequest>&)> drain_fn;
    if (drain_) {
      drain_fn = [drain = drain_, make_emitter](
                     dataflow::StageOutput<SerializeRequest>& out) -> Status {
        Emitter emitter = make_emitter(out);
        return drain(emitter);
      };
    }
    graph.AddStage<Input, SerializeRequest>(transform_name_, transform_par, input_queue,
                                            serialize_queue, std::move(stage_fn),
                                            std::move(drain_fn));

    // --- Serializer: Finalize emitted builders (codec compression) into pooled
    // buffers. ---
    graph.AddStage<SerializeRequest, WriteRequest>(
        "serializer", serialize_par, serialize_queue, write_queue,
        [pool](SerializeRequest&& request,
               dataflow::StageOutput<WriteRequest>& out) -> Status {
          WriteRequest write;
          write.keys = std::move(request.keys);
          write.item = request.item;
          write.objects.reserve(request.builders.size());
          for (const format::ChunkBuilder& builder : request.builders) {
            BufferRef object = pool->Acquire();
            PERSONA_RETURN_IF_ERROR(builder.Finalize(object.get()));
            write.objects.push_back(std::move(object));
          }
          return out.Push(std::move(write));
        });

    // --- Writer: asynchronous batched puts through the bounded window. ---
    graph.AddSink<WriteRequest>(
        "writer", write_par, write_queue,
        [window](WriteRequest&& request) -> Status {
          return window->Submit(std::move(request));
        },
        [window]() -> Status { return window->Drain(); });

    dataflow::UtilizationSampler sampler(
        &graph,
        options_.utilization_sample_sec > 0 ? options_.utilization_sample_sec : 1.0,
        options_.sampler_total_workers);
    if (options_.utilization_sample_sec > 0) {
      sampler.Start();
    }
    Stopwatch timer;
    run_status = graph.Run();
    report.seconds = timer.ElapsedSeconds();
    sampler.Stop();
    utilization = sampler.samples();

    for (const auto& stage : graph.stats()) {
      ChunkPipelineReport::Stage s;
      s.name = stage->name;
      s.parallelism = stage->parallelism;
      s.items = stage->items.load(std::memory_order_relaxed);
      s.busy_ns = stage->busy_ns.load(std::memory_order_relaxed);
      s.input_wait_ns = stage->input_wait_ns.load(std::memory_order_relaxed);
      s.output_wait_ns = stage->output_wait_ns.load(std::memory_order_relaxed);
      if (s.name == transform_name_) {
        report.items = s.items;
      }
      report.stages.push_back(std::move(s));
    }
  }
  // The window must drain even on failure: in-flight tickets reference op memory and
  // pooled buffers that cannot be released (or counted as returned) until the store's
  // scheduler is done with them.
  Status drain_status = window->Drain();
  pool_available_ = pool->available();

  PERSONA_RETURN_IF_ERROR(run_status);
  PERSONA_RETURN_IF_ERROR(source_error);
  PERSONA_RETURN_IF_ERROR(drain_status);

  report.resumed_items = resumed->load(std::memory_order_relaxed);
  std::vector<QuarantineManifest::Entry> quarantine_entries;
  {
    MutexLock lock(quarantine->mu);
    report.quarantined_items = quarantine->items;
    report.quarantined_keys = std::move(quarantine->keys);
    quarantine_entries = std::move(quarantine->entries);
  }
  if (!options_.quarantine_manifest_path.empty() && !quarantine_entries.empty()) {
    QuarantineManifest qm;
    qm.dataset = manifest_ != nullptr ? manifest_->name : "";
    qm.entries = std::move(quarantine_entries);
    PERSONA_RETURN_IF_ERROR(
        SaveQuarantineManifest(options_.quarantine_manifest_path, qm));
  }
  report.store_stats = storage::StatsDelta(store_before, stats_store->stats());
  report.utilization = std::move(utilization);
  return report;
}

}  // namespace persona::pipeline
