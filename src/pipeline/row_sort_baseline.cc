#include "src/pipeline/row_sort_baseline.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "src/format/sam.h"
#include "src/util/first_error.h"
#include "src/util/logging.h"
#include "src/util/stopwatch.h"
#include "src/util/string_util.h"

namespace persona::pipeline {

namespace {

int64_t SortLocation(const align::AlignmentResult& r) {
  return r.mapped() ? r.location : INT64_MAX;
}

// Reads SAM text parts "<key>.<i>" until one is missing; returns record lines.
Result<std::vector<std::string>> LoadSamParts(storage::ObjectStore* store,
                                              const genome::ReferenceGenome& /*reference*/,
                                              const std::string& key) {
  std::vector<std::string> lines;
  Buffer buffer;
  for (int part = 0;; ++part) {
    std::string part_key = key + "." + std::to_string(part);
    if (!store->Exists(part_key)) {
      break;
    }
    PERSONA_RETURN_IF_ERROR(store->Get(part_key, &buffer));
    for (std::string_view line : SplitString(buffer.view(), '\n')) {
      if (line.empty() || line[0] == '@') {
        continue;  // headers
      }
      lines.emplace_back(line);
    }
  }
  if (lines.empty()) {
    return NotFoundError("no SAM parts under key: " + key);
  }
  return lines;
}

}  // namespace

Result<RowSortReport> SamtoolsLikeSort(storage::ObjectStore* store,
                                       const genome::ReferenceGenome& reference,
                                       const std::string& in_key, const std::string& out_key,
                                       const RowSortOptions& options, bool convert_from_sam) {
  Stopwatch timer;
  RowSortReport report;

  // Load input rows (optionally converting SAM text to binary rows first, like
  // `samtools view -b` before `samtools sort`).
  std::vector<genome::Read> reads;
  std::vector<align::AlignmentResult> results;
  if (convert_from_sam) {
    PERSONA_ASSIGN_OR_RETURN(std::vector<std::string> lines,
                             LoadSamParts(store, reference, in_key));
    reads.resize(lines.size());
    results.resize(lines.size());
    for (size_t i = 0; i < lines.size(); ++i) {
      PERSONA_RETURN_IF_ERROR(
          format::ParseSamRecord(reference, lines[i], &reads[i], &results[i]));
    }
    report.convert_seconds = timer.ElapsedSeconds();
    // The conversion writes a BAM-equivalent intermediate, as samtools must. Block
    // compression is the parallelizable part of `samtools view -b -@N`.
    format::BsamWriter conv;
    for (size_t i = 0; i < reads.size(); ++i) {
      conv.Add(reads[i], results[i]);
    }
    PERSONA_ASSIGN_OR_RETURN(Buffer converted, conv.Finish());
    PERSONA_RETURN_IF_ERROR(store->Put(in_key + ".bsam", converted));
    report.convert_encode_seconds =
        timer.ElapsedSeconds() - report.convert_seconds;
  } else {
    Buffer file;
    PERSONA_RETURN_IF_ERROR(store->Get(in_key, &file));
    PERSONA_ASSIGN_OR_RETURN(format::BsamReader reader, format::BsamReader::Open(file.span()));
    reads.reserve(reader.size());
    results.reserve(reader.size());
    for (size_t i = 0; i < reader.size(); ++i) {
      reads.push_back(reader.read(i));
      results.push_back(reader.result(i));
    }
  }
  report.records = reads.size();

  // Phase 1: sorted superchunks (parallel), spilled as BSAM objects.
  const size_t per_super = static_cast<size_t>(std::max(options.records_per_superchunk, 1));
  const size_t num_supers = (reads.size() + per_super - 1) / per_super;
  report.superchunks = num_supers;

  std::atomic<size_t> next_super{0};
  FirstErrorCollector errors;
  auto worker = [&] {
    while (true) {
      size_t s = next_super.fetch_add(1);
      if (s >= num_supers) {
        return;
      }
      size_t begin = s * per_super;
      size_t end = std::min(reads.size(), begin + per_super);
      std::vector<size_t> order(end - begin);
      for (size_t i = 0; i < order.size(); ++i) {
        order[i] = begin + i;
      }
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        int64_t la = SortLocation(results[a]);
        int64_t lb = SortLocation(results[b]);
        return la != lb ? la < lb : reads[a].metadata < reads[b].metadata;
      });
      format::BsamWriter writer;
      for (size_t idx : order) {
        writer.Add(reads[idx], results[idx]);
      }
      auto file = writer.Finish();
      Status status = file.ok()
                          ? store->Put(out_key + ".super-" + std::to_string(s), *file)
                          : file.status();
      if (!status.ok()) {
        errors.Record(status);
        return;
      }
    }
  };
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < std::max(1, options.threads); ++t) {
      threads.emplace_back(worker);
    }
    for (std::thread& t : threads) {
      t.join();
    }
  }
  PERSONA_RETURN_IF_ERROR(errors.first());
  report.phase1_seconds =
      timer.ElapsedSeconds() - report.convert_seconds - report.convert_encode_seconds;

  // Phase 2: single-threaded k-way merge of the row superchunks (samtools merges on one
  // thread), re-encoding each record into the output BSAM.
  struct Cursor {
    format::BsamReader reader;
    size_t pos = 0;
  };
  std::vector<Cursor> cursors;
  Buffer file;
  for (size_t s = 0; s < num_supers; ++s) {
    PERSONA_RETURN_IF_ERROR(store->Get(out_key + ".super-" + std::to_string(s), &file));
    PERSONA_ASSIGN_OR_RETURN(format::BsamReader reader, format::BsamReader::Open(file.span()));
    cursors.push_back(Cursor{std::move(reader), 0});
  }
  format::BsamWriter out;
  while (true) {
    int best = -1;
    for (size_t i = 0; i < cursors.size(); ++i) {
      if (cursors[i].pos >= cursors[i].reader.size()) {
        continue;
      }
      if (best < 0 ||
          SortLocation(cursors[i].reader.result(cursors[i].pos)) <
              SortLocation(cursors[static_cast<size_t>(best)].reader.result(
                  cursors[static_cast<size_t>(best)].pos))) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) {
      break;
    }
    Cursor& c = cursors[static_cast<size_t>(best)];
    out.Add(c.reader.read(c.pos), c.reader.result(c.pos));
    ++c.pos;
  }
  PERSONA_ASSIGN_OR_RETURN(Buffer sorted, out.Finish());
  PERSONA_RETURN_IF_ERROR(store->Put(out_key, sorted));
  for (size_t s = 0; s < num_supers; ++s) {
    // Best-effort cleanup: a leaked temporary must not fail a completed sort, but
    // the operator should hear about it.
    const std::string temp_key = out_key + ".super-" + std::to_string(s);
    Status cleanup = store->Delete(temp_key);
    if (!cleanup.ok()) {
      PLOG(WARN) << "leaked temporary " << temp_key << ": " << cleanup.ToString();
    }
  }

  report.seconds = timer.ElapsedSeconds();
  report.merge_seconds = report.seconds - report.phase1_seconds - report.convert_seconds -
                         report.convert_encode_seconds;
  return report;
}

Result<RowSortReport> PicardLikeSort(storage::ObjectStore* store,
                                     const genome::ReferenceGenome& /*reference*/,
                                     const std::string& in_key, const std::string& out_key) {
  // Picard sorts BAM single-threaded with an object-per-record collection: decode every
  // record into an object, spill sorted runs, merge runs, re-encode — all on one thread.
  Stopwatch timer;
  RowSortReport report;

  Buffer file;
  PERSONA_RETURN_IF_ERROR(store->Get(in_key, &file));
  PERSONA_ASSIGN_OR_RETURN(format::BsamReader reader, format::BsamReader::Open(file.span()));
  report.records = reader.size();

  // Object collection: full records (not indices) move during the sort, as Picard's
  // SortingCollection does.
  struct Record {
    genome::Read read;
    align::AlignmentResult result;
  };
  std::vector<Record> records;
  records.reserve(reader.size());
  for (size_t i = 0; i < reader.size(); ++i) {
    records.push_back(Record{reader.read(i), reader.result(i)});
  }

  // Sorted spill runs of bounded size, then a single-threaded merge.
  constexpr size_t kRunSize = 20'000;
  size_t num_runs = (records.size() + kRunSize - 1) / kRunSize;
  report.superchunks = num_runs;
  for (size_t r = 0; r < num_runs; ++r) {
    auto begin = records.begin() + static_cast<int64_t>(r * kRunSize);
    auto end = records.begin() +
               static_cast<int64_t>(std::min(records.size(), (r + 1) * kRunSize));
    std::stable_sort(begin, end, [](const Record& a, const Record& b) {
      int64_t la = SortLocation(a.result);
      int64_t lb = SortLocation(b.result);
      return la != lb ? la < lb : a.read.metadata < b.read.metadata;
    });
    format::BsamWriter run_writer;
    for (auto it = begin; it != end; ++it) {
      run_writer.Add(it->read, it->result);
    }
    PERSONA_ASSIGN_OR_RETURN(Buffer run, run_writer.Finish());
    PERSONA_RETURN_IF_ERROR(store->Put(out_key + ".run-" + std::to_string(r), run));
  }
  report.phase1_seconds = timer.ElapsedSeconds();

  // Merge the runs (decode again, as Picard re-reads its spill files).
  struct Cursor {
    format::BsamReader reader;
    size_t pos = 0;
  };
  std::vector<Cursor> cursors;
  for (size_t r = 0; r < num_runs; ++r) {
    PERSONA_RETURN_IF_ERROR(store->Get(out_key + ".run-" + std::to_string(r), &file));
    PERSONA_ASSIGN_OR_RETURN(format::BsamReader run_reader,
                             format::BsamReader::Open(file.span()));
    cursors.push_back(Cursor{std::move(run_reader), 0});
  }
  format::BsamWriter out;
  while (true) {
    int best = -1;
    for (size_t i = 0; i < cursors.size(); ++i) {
      if (cursors[i].pos >= cursors[i].reader.size()) {
        continue;
      }
      if (best < 0 ||
          SortLocation(cursors[i].reader.result(cursors[i].pos)) <
              SortLocation(cursors[static_cast<size_t>(best)].reader.result(
                  cursors[static_cast<size_t>(best)].pos))) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) {
      break;
    }
    Cursor& c = cursors[static_cast<size_t>(best)];
    out.Add(c.reader.read(c.pos), c.reader.result(c.pos));
    ++c.pos;
  }
  PERSONA_ASSIGN_OR_RETURN(Buffer sorted, out.Finish());
  PERSONA_RETURN_IF_ERROR(store->Put(out_key, sorted));
  for (size_t r = 0; r < num_runs; ++r) {
    // Best-effort cleanup, as above: log leaked temporaries instead of failing.
    const std::string temp_key = out_key + ".run-" + std::to_string(r);
    Status cleanup = store->Delete(temp_key);
    if (!cleanup.ok()) {
      PLOG(WARN) << "leaked temporary " << temp_key << ": " << cleanup.ToString();
    }
  }

  report.seconds = timer.ElapsedSeconds();
  report.merge_seconds = report.seconds - report.phase1_seconds;
  return report;
}

}  // namespace persona::pipeline
