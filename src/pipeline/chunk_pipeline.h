// ChunkPipeline: the reusable dataflow topology shared by every batch tool (paper §4,
// Figs. 3/5).
//
// Every Persona operation is the same coarse-grain graph: a manifest source hands out
// chunk (or chunk-group) work items; reader nodes fetch the tool's declared columns
// with one batched Get into pooled buffers; parser nodes decompress and decode them;
// a tool-supplied transform stage does the actual work (with the shared Executor
// available for subchunking); serialize nodes Finalize/compress emitted column
// builders; and a writer node lands the objects with asynchronous batched Puts, keeping
// a bounded window of IoTickets in flight. Instead of re-implementing that loop in
// every tool — and losing the overlap to phase barriers — tools declare their columns
// and transform here and inherit the whole overlapped topology.
//
// Two source modes:
//   - Manifest mode: work items are groups of `group_size` consecutive manifest chunks
//     (sort uses a group per superchunk; everything else group_size 1). An optional
//     work_source delegates group-index handout to a cluster manifest server.
//   - Record mode: a serial generator produces Inputs directly (FASTQ import, whose
//     input is not an AGD dataset); the reader/parser stages are skipped.
//
// Transforms are parallel by default. Tools that carry cross-chunk state (dedup's
// signature set, filter's partial output chunk) request `ordered = true`: the stage
// runs one worker behind a resequencer that delivers Inputs in work-item order, while
// reads ahead of it and serialization/writes behind it still overlap. The `drain`
// callback runs once at end-of-stream (the Graph's on_drain epilogue) to flush
// carried state.

#ifndef PERSONA_SRC_PIPELINE_CHUNK_PIPELINE_H_
#define PERSONA_SRC_PIPELINE_CHUNK_PIPELINE_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/dataflow/graph.h"
#include "src/dataflow/object_pool.h"
#include "src/dataflow/stats.h"
#include "src/format/agd_chunk.h"
#include "src/format/agd_manifest.h"
#include "src/genome/read.h"
#include "src/storage/object_store.h"
#include "src/util/buffer.h"

namespace persona::pipeline {

class JobJournal;

// Cluster work source: supplies group indices to a manifest-mode pipeline and
// receives the lease lifecycle back. NextGroup runs on the pipeline's single source
// thread (blocking there — e.g. polling a work service — is fine and is the
// backpressure point); CompleteGroup is called from writer workers once every
// object of the group's emission is durable in the store (the same commit point
// the resume journal uses), and FailGroup when the group is quarantined
// (skip_bad_chunks) and will produce no output on this node. Complete/Fail must be
// thread-safe; a non-OK return fails the run (the node cannot report its lease).
class WorkSource {
 public:
  virtual ~WorkSource() = default;
  virtual std::optional<size_t> NextGroup() = 0;
  [[nodiscard]] virtual Status CompleteGroup(size_t group,
                                             const std::vector<std::string>& keys) = 0;
  [[nodiscard]] virtual Status FailGroup(size_t group, const Status& error) = 0;
};

// Adapter for plain handout functions (the in-process manifest server, tests):
// completion and failure notifications are no-ops.
class FunctionWorkSource final : public WorkSource {
 public:
  explicit FunctionWorkSource(std::function<std::optional<size_t>()> next)
      : next_(std::move(next)) {}

  std::optional<size_t> NextGroup() override { return next_(); }
  Status CompleteGroup(size_t, const std::vector<std::string>&) override {
    return OkStatus();
  }
  Status FailGroup(size_t, const Status&) override { return OkStatus(); }

 private:
  std::function<std::optional<size_t>()> next_;
};

// Per-stage and whole-run statistics of one ChunkPipeline execution.
struct ChunkPipelineReport {
  double seconds = 0;
  uint64_t items = 0;  // work items through the transform stage

  // Resume mode: work items skipped because the journal already has them.
  uint64_t resumed_items = 0;
  // skip_bad_chunks: work items quarantined instead of cancelling the run, and the
  // column keys they cover (for operator follow-up).
  uint64_t quarantined_items = 0;
  std::vector<std::string> quarantined_keys;

  struct Stage {
    std::string name;
    int parallelism = 0;
    uint64_t items = 0;
    uint64_t busy_ns = 0;
    uint64_t input_wait_ns = 0;   // blocked popping the input queue (starved)
    uint64_t output_wait_ns = 0;  // blocked pushing downstream (backpressured)
  };
  std::vector<Stage> stages;

  storage::StoreStats store_stats;  // deltas over the run
  std::vector<dataflow::UtilizationSample> utilization;
};

class ChunkPipeline {
 public:
  using BufferPool = dataflow::ObjectPool<Buffer>;
  using BufferRef = BufferPool::Ref;

  struct Options {
    int read_parallelism = 2;
    int parse_parallelism = 2;
    int transform_parallelism = 4;  // ignored (forced to 1) for ordered transforms
    int serialize_parallelism = 2;
    int write_parallelism = 2;
    // Queue depth; 0 = the consumer stage's parallelism (paper §4.5: "default queue
    // lengths are set to the number of parallel downstream nodes they feed").
    size_t queue_depth = 0;
    // Async write submissions kept in flight beyond the writer workers themselves;
    // 0 = write_parallelism.
    size_t write_window = 0;
    double utilization_sample_sec = 0;  // 0 disables the sampler
    int sampler_total_workers = 0;      // machine thread budget for the Fig. 5 number

    // Source-side read-ahead (manifest mode): a prefetch stage ahead of the readers
    // warms the next work items' column objects through the store's cache tier, so
    // the reader's batched Get — and any in-transform column fetch covered by
    // SetReadAheadColumns — runs at memory speed while the device transfers chunk
    // N+1. Active only when the source store actually caches reads
    // (ObjectStore::CachesReads()); prefetching into an uncached store would fetch
    // every object twice. Default on — it is a no-op without a cache.
    bool read_ahead = true;

    // Graceful degradation: when a work item's columns cannot be fetched or parsed
    // (after the store's own retry budget is spent), quarantine the item — count it
    // and its keys in the report — and keep going instead of cancelling the run.
    // Default off: fail-fast. Incompatible with ordered transforms, whose resequencer
    // must see every index (Run() rejects the combination).
    bool skip_bad_chunks = false;

    // When set and the run quarantined anything, the quarantined items are persisted
    // to this path as a quarantine manifest (JSON via WriteFileAtomic; see
    // pipeline/quarantine.h) so a repair tool or the cluster work service can
    // consume them instead of scraping the report.
    std::string quarantine_manifest_path;
  };

  // Sentinel for WriteRequest/SerializeRequest::item: not tied to a work item (drain
  // emissions, manifests) — never journaled.
  static constexpr size_t kNoItem = static_cast<size_t>(-1);

  // One work item, ready for the transform. In manifest mode `columns` holds the
  // parsed column chunks, chunk-major: column c of manifest chunk (chunk_begin + k) is
  // columns[k * num_columns + c] (see column()). In record mode only `reads` is set.
  struct Input {
    // Dense work-item index (the resequencing key). With a cluster work source this
    // is the *group index* the source handed out — stable across nodes and runs, so
    // lease completion and output keys line up cluster-wide. (Ordered transforms are
    // rejected with a work source, so resequencing never sees the sparse indices.)
    size_t index = 0;
    size_t chunk_begin = 0;  // manifest chunks [chunk_begin, chunk_end)
    size_t chunk_end = 0;
    size_t num_columns = 0;
    std::vector<format::ParsedChunk> columns;
    std::vector<size_t> file_sizes;  // stored (compressed) size of each column file
    std::vector<genome::Read> reads;  // record mode only

    const format::ParsedChunk& column(size_t chunk_offset, size_t column_index) const {
      return columns[chunk_offset * num_columns + column_index];
    }
    size_t file_size(size_t chunk_offset, size_t column_index) const {
      return file_sizes[chunk_offset * num_columns + column_index];
    }
  };

  // Pre-serialized objects bound for the writer (keys[i] receives objects[i]).
  // `item` is the emitting work item's index (stamped by the Emitter); the writer
  // journals the item once its Put lands when a resume journal is attached.
  struct WriteRequest {
    std::vector<std::string> keys;
    std::vector<BufferRef> objects;
    size_t item = kNoItem;
  };

  // Column builders bound for the serialize stage (Finalize + codec compression run
  // there, off the transform's thread).
  struct SerializeRequest {
    std::vector<std::string> keys;
    std::vector<format::ChunkBuilder> builders;
    size_t item = kNoItem;
  };

  // Emission handle passed to the transform (and its drain). All sends surface a
  // closed downstream queue as kCancelled so cancellation stops tools cleanly.
  class Emitter {
   public:
    // Acquires a pooled buffer (blocks while the pool is exhausted — the §4.5 memory
    // cap). Use for the Write path; the Emit path acquires its own in the serializer.
    BufferRef AcquireBuffer() { return pool_->Acquire(); }

    // Sends column builders through the serialize stage to the writer.
    Status Emit(SerializeRequest request);

    // Sends an already-serialized object (or several) straight to the writer.
    Status Write(std::string key, BufferRef object);
    Status Write(WriteRequest request);

   private:
    friend class ChunkPipeline;
    Emitter(BufferPool* pool, dataflow::StageOutput<SerializeRequest>* serialize_out,
            MpmcQueue<WriteRequest>* write_queue)
        : pool_(pool), serialize_out_(serialize_out), write_queue_(write_queue) {}

    // Resume mode journals a work item as done when its emission lands, so the item ↔
    // emission mapping must be 1:1: stamps outgoing requests with `item` and, when
    // `enforce_single_emission`, rejects a second emission for the same item
    // (FailedPrecondition) — a multi-emission transform cannot be resumed safely.
    void BindItem(size_t item, bool enforce_single_emission) {
      item_ = item;
      enforce_single_emission_ = enforce_single_emission;
      emitted_ = false;
    }
    Status StampAndCheck(size_t* request_item);

    BufferPool* pool_;
    dataflow::StageOutput<SerializeRequest>* serialize_out_;
    MpmcQueue<WriteRequest>* write_queue_;
    size_t item_ = kNoItem;
    bool enforce_single_emission_ = false;
    bool emitted_ = false;
  };

  using TransformFn = std::function<Status(Input&&, Emitter&)>;
  using DrainFn = std::function<Status(Emitter&)>;
  // Record-mode generator: sets *out (or leaves it empty at end-of-stream); a non-OK
  // status cancels the run (in-flight items stop, drain epilogues are skipped) and
  // Run() returns that status.
  using RecordSourceFn = std::function<Status(std::optional<Input>*)>;
  // Manifest-mode group-index handout (cluster manifest server); nullopt ends the run.
  using WorkSourceFn = std::function<std::optional<size_t>()>;

  explicit ChunkPipeline(const Options& options) : options_(options) {}

  // Manifest mode: fetch `columns` of every chunk in each `group_size`-chunk group with
  // one batched Get, parse, and hand the group to the transform. `manifest` must
  // outlive Run(). `work_source`, when set, supplies group indices instead of local
  // iteration and receives the complete/fail lease lifecycle; it is borrowed and must
  // outlive Run().
  void SetManifestSource(storage::ObjectStore* store, const format::Manifest* manifest,
                         std::vector<std::string> columns, size_t group_size = 1,
                         WorkSource* work_source = nullptr);

  // Convenience overload for a plain handout function (wrapped in an owned
  // FunctionWorkSource; completion/failure notifications are dropped).
  void SetManifestSource(storage::ObjectStore* store, const format::Manifest* manifest,
                         std::vector<std::string> columns, size_t group_size,
                         WorkSourceFn work_source);

  // Record mode: `next` runs on one source thread and produces Inputs directly (their
  // `index` is stamped densely by the pipeline).
  void SetRecordSource(RecordSourceFn next);

  // Columns the read-ahead stage warms per chunk; defaults to the declared (reader)
  // columns. Tools that fetch extra columns inside their transform — filter reads
  // only "results" up front but pulls every surviving chunk's remaining columns in
  // its ordered stage — pass the full list here so those fetches hit the cache
  // instead of serializing on device latency (the PR 4 headroom).
  void SetReadAheadColumns(std::vector<std::string> columns);

  // The tool stage. Ordered transforms run one worker and see Inputs in index order
  // (dataset order; incompatible with a cluster work_source, whose handout order is
  // not the dataset's — Run() rejects the combination). The source paces itself
  // against the ordered stage's completion watermark so out-of-order items parked in
  // the resequencer stay bounded by the pipeline depth.
  void SetTransform(std::string name, TransformFn fn, bool ordered = false,
                    DrainFn drain = nullptr);

  // Destination store for emitted objects. `max_objects_per_request` is the most
  // keys any single Emit/Write carries (it sizes the buffer pool; e.g. one output
  // chunk's column count).
  void SetWriter(storage::ObjectStore* store, size_t max_objects_per_request = 4);

  // Crash-safe resume: skip work items the journal already holds and commit each
  // newly landed item to it. The caller owns the journal lifecycle (Load before
  // Run, Clear after the job's final manifest write). Requires the manifest source
  // with local handout and a parallel (unordered) transform that emits exactly once
  // per work item — Run() rejects every other combination, because committing
  // per-item is only sound when an item's outputs are self-contained.
  void SetResumeJournal(JobJournal* journal);

  // Assembles the graph and runs it to completion. May be called once.
  Result<ChunkPipelineReport> Run();

  // Buffer-pool bookkeeping after Run() — every pooled buffer must be back (available
  // == capacity) even when a mid-pipeline stage failed.
  size_t pool_capacity() const { return pool_capacity_; }
  size_t pool_available() const { return pool_available_; }

 private:
  Options options_;

  storage::ObjectStore* source_store_ = nullptr;
  const format::Manifest* manifest_ = nullptr;
  std::vector<std::string> columns_;
  std::vector<std::string> read_ahead_columns_;  // empty: use columns_
  size_t group_size_ = 1;
  WorkSource* work_source_ = nullptr;           // borrowed
  std::unique_ptr<WorkSource> owned_work_source_;  // function-adapter overload
  RecordSourceFn record_source_;

  std::string transform_name_ = "transform";
  TransformFn transform_;
  bool ordered_ = false;
  DrainFn drain_;

  storage::ObjectStore* write_store_ = nullptr;
  size_t max_objects_per_request_ = 4;
  JobJournal* journal_ = nullptr;

  bool ran_ = false;
  size_t pool_capacity_ = 0;
  size_t pool_available_ = 0;
};

}  // namespace persona::pipeline

#endif  // PERSONA_SRC_PIPELINE_CHUNK_PIPELINE_H_
