#include "src/pipeline/agd_store_util.h"

#include "src/format/fastq.h"

namespace persona::pipeline {

Result<format::Manifest> WriteAgdToStore(storage::ObjectStore* store, const std::string& name,
                                         std::span<const genome::Read> reads,
                                         int64_t chunk_size, compress::CodecId codec) {
  if (chunk_size <= 0) {
    return InvalidArgumentError("chunk_size must be positive");
  }
  format::Manifest manifest;
  manifest.name = name;
  manifest.chunk_size = chunk_size;
  manifest.columns = format::StandardReadColumns(codec);

  size_t offset = 0;
  Buffer file;
  while (offset < reads.size()) {
    size_t count = std::min(static_cast<size_t>(chunk_size), reads.size() - offset);
    format::ManifestChunk chunk;
    chunk.path_base = name + "-" + std::to_string(manifest.chunks.size());
    chunk.first_record = static_cast<int64_t>(offset);
    chunk.num_records = static_cast<int64_t>(count);

    format::ChunkBuilder bases(format::RecordType::kBases, codec);
    format::ChunkBuilder qual(format::RecordType::kQual, codec);
    format::ChunkBuilder metadata(format::RecordType::kMetadata, codec);
    for (size_t i = offset; i < offset + count; ++i) {
      bases.AddBases(reads[i].bases);
      qual.AddRecord(reads[i].qual);
      metadata.AddRecord(reads[i].metadata);
    }
    PERSONA_RETURN_IF_ERROR(bases.Finalize(&file));
    PERSONA_RETURN_IF_ERROR(store->Put(chunk.path_base + ".bases", file));
    PERSONA_RETURN_IF_ERROR(qual.Finalize(&file));
    PERSONA_RETURN_IF_ERROR(store->Put(chunk.path_base + ".qual", file));
    PERSONA_RETURN_IF_ERROR(metadata.Finalize(&file));
    PERSONA_RETURN_IF_ERROR(store->Put(chunk.path_base + ".metadata", file));

    manifest.chunks.push_back(std::move(chunk));
    offset += count;
  }
  PERSONA_RETURN_IF_ERROR(store->Put("manifest.json", manifest.ToJson()));
  return manifest;
}

Result<format::Manifest> ReadManifestFromStore(storage::ObjectStore* store) {
  Buffer buffer;
  PERSONA_RETURN_IF_ERROR(store->Get("manifest.json", &buffer));
  return format::Manifest::FromJson(buffer.view());
}

Result<uint64_t> WriteGzippedFastqToStore(storage::ObjectStore* store,
                                          const std::string& name,
                                          std::span<const genome::Read> reads) {
  std::string fastq;
  format::WriteFastq(reads, &fastq);
  Buffer compressed;
  const compress::Codec& codec = compress::GetCodec(compress::CodecId::kZlib);
  PERSONA_RETURN_IF_ERROR(codec.Compress(
      std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(fastq.data()), fastq.size()),
      &compressed));
  // Store the uncompressed size alongside for decompression.
  Buffer object;
  object.AppendScalar<uint64_t>(fastq.size());
  object.Append(compressed.span());
  PERSONA_RETURN_IF_ERROR(store->Put(name + ".fastq.gz", object));
  return static_cast<uint64_t>(object.size());
}

Result<std::vector<genome::Read>> ReadGzippedFastqFromStore(storage::ObjectStore* store,
                                                            const std::string& name) {
  Buffer object;
  PERSONA_RETURN_IF_ERROR(store->Get(name + ".fastq.gz", &object));
  if (object.size() < sizeof(uint64_t)) {
    return DataLossError("gzipped FASTQ object too small");
  }
  uint64_t raw_size = object.ReadScalar<uint64_t>(0);
  Buffer fastq;
  const compress::Codec& codec = compress::GetCodec(compress::CodecId::kZlib);
  PERSONA_RETURN_IF_ERROR(codec.Decompress(object.span().subspan(sizeof(uint64_t)),
                                           static_cast<size_t>(raw_size), &fastq));
  std::vector<genome::Read> reads;
  PERSONA_RETURN_IF_ERROR(format::ParseFastq(fastq.view(), &reads));
  return reads;
}

}  // namespace persona::pipeline
