#include "src/pipeline/agd_store_util.h"

#include <array>

#include "src/format/fastq.h"

namespace persona::pipeline {

Result<format::Manifest> WriteAgdToStore(storage::ObjectStore* store, const std::string& name,
                                         std::span<const genome::Read> reads,
                                         int64_t chunk_size, compress::CodecId codec) {
  if (chunk_size <= 0) {
    return InvalidArgumentError("chunk_size must be positive");
  }
  format::Manifest manifest;
  manifest.name = name;
  manifest.chunk_size = chunk_size;
  manifest.columns = format::StandardReadColumns(codec);

  size_t offset = 0;
  Buffer bases_file;
  Buffer qual_file;
  Buffer metadata_file;
  while (offset < reads.size()) {
    size_t count = std::min(static_cast<size_t>(chunk_size), reads.size() - offset);
    format::ManifestChunk chunk;
    chunk.path_base = name + "-" + std::to_string(manifest.chunks.size());
    chunk.first_record = static_cast<int64_t>(offset);
    chunk.num_records = static_cast<int64_t>(count);

    format::ChunkBuilder bases(format::RecordType::kBases, codec);
    format::ChunkBuilder qual(format::RecordType::kQual, codec);
    format::ChunkBuilder metadata(format::RecordType::kMetadata, codec);
    for (size_t i = offset; i < offset + count; ++i) {
      bases.AddBases(reads[i].bases);
      qual.AddRecord(reads[i].qual);
      metadata.AddRecord(reads[i].metadata);
    }
    PERSONA_RETURN_IF_ERROR(bases.Finalize(&bases_file));
    PERSONA_RETURN_IF_ERROR(qual.Finalize(&qual_file));
    PERSONA_RETURN_IF_ERROR(metadata.Finalize(&metadata_file));
    // One batched Put per chunk: the three column objects land in parallel on stores
    // with per-shard queues.
    std::array<storage::PutOp, 3> puts = {
        storage::PutOp{chunk.path_base + ".bases", bases_file.span(), {}},
        storage::PutOp{chunk.path_base + ".qual", qual_file.span(), {}},
        storage::PutOp{chunk.path_base + ".metadata", metadata_file.span(), {}},
    };
    PERSONA_RETURN_IF_ERROR(store->PutBatch(puts));

    manifest.chunks.push_back(std::move(chunk));
    offset += count;
  }
  PERSONA_RETURN_IF_ERROR(store->Put("manifest.json", manifest.ToJson()));
  return manifest;
}

Result<format::Manifest> ReadManifestFromStore(storage::ObjectStore* store) {
  Buffer buffer;
  PERSONA_RETURN_IF_ERROR(store->Get("manifest.json", &buffer));
  return format::Manifest::FromJson(buffer.view());
}

Status GetChunkColumns(storage::ObjectStore* store, const format::Manifest& manifest,
                       size_t chunk_index, std::span<const char* const> columns,
                       std::span<Buffer> outs) {
  if (outs.size() < columns.size()) {
    return InvalidArgumentError("GetChunkColumns: outs smaller than columns");
  }
  std::vector<storage::GetOp> gets;
  gets.reserve(columns.size());
  for (size_t c = 0; c < columns.size(); ++c) {
    gets.push_back({manifest.ChunkFileName(chunk_index, columns[c]), &outs[c], {}});
  }
  return store->GetBatch(gets);
}

Status DecodeAlignedRecord(const format::ParsedChunk& bases,
                           const format::ParsedChunk& qual,
                           const format::ParsedChunk& metadata,
                           const format::ParsedChunk& results, size_t i,
                           genome::Read* read, align::AlignmentResult* result) {
  PERSONA_ASSIGN_OR_RETURN(read->bases, bases.GetBases(i));
  PERSONA_ASSIGN_OR_RETURN(std::string_view q, qual.GetString(i));
  read->qual = std::string(q);
  PERSONA_ASSIGN_OR_RETURN(std::string_view m, metadata.GetString(i));
  read->metadata = std::string(m);
  PERSONA_ASSIGN_OR_RETURN(*result, results.GetResult(i));
  return OkStatus();
}

Result<uint64_t> WriteGzippedFastqToStore(storage::ObjectStore* store,
                                          const std::string& name,
                                          std::span<const genome::Read> reads) {
  std::string fastq;
  format::WriteFastq(reads, &fastq);
  Buffer compressed;
  const compress::Codec& codec = compress::GetCodec(compress::CodecId::kZlib);
  PERSONA_RETURN_IF_ERROR(codec.Compress(
      std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(fastq.data()), fastq.size()),
      &compressed));
  // Store the uncompressed size alongside for decompression.
  Buffer object;
  object.AppendScalar<uint64_t>(fastq.size());
  object.Append(compressed.span());
  PERSONA_RETURN_IF_ERROR(store->Put(name + ".fastq.gz", object));
  return static_cast<uint64_t>(object.size());
}

Result<std::vector<genome::Read>> ReadGzippedFastqFromStore(storage::ObjectStore* store,
                                                            const std::string& name) {
  Buffer object;
  PERSONA_RETURN_IF_ERROR(store->Get(name + ".fastq.gz", &object));
  if (object.size() < sizeof(uint64_t)) {
    return DataLossError("gzipped FASTQ object too small");
  }
  uint64_t raw_size = object.ReadScalar<uint64_t>(0);
  Buffer fastq;
  const compress::Codec& codec = compress::GetCodec(compress::CodecId::kZlib);
  PERSONA_RETURN_IF_ERROR(codec.Decompress(object.span().subspan(sizeof(uint64_t)),
                                           static_cast<size_t>(raw_size), &fastq));
  std::vector<genome::Read> reads;
  PERSONA_RETURN_IF_ERROR(format::ParseFastq(fastq.view(), &reads));
  return reads;
}

}  // namespace persona::pipeline
