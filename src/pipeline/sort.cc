#include "src/pipeline/sort.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <memory>
#include <queue>

#include "src/format/agd_chunk.h"
#include "src/pipeline/agd_store_util.h"
#include "src/pipeline/chunk_pipeline.h"
#include "src/util/logging.h"
#include "src/util/stopwatch.h"
#include "src/util/varint.h"

namespace persona::pipeline {

namespace {

struct Row {
  genome::Read read;
  align::AlignmentResult result;
};

// Sort keys: mapped location (unmapped last, ties by metadata for determinism) or read ID.
bool RowLess(SortKey key, const Row& a, const Row& b) {
  if (key == SortKey::kMetadata) {
    return a.read.metadata < b.read.metadata;
  }
  int64_t la = a.result.mapped() ? a.result.location : INT64_MAX;
  int64_t lb = b.result.mapped() ? b.result.location : INT64_MAX;
  if (la != lb) {
    return la < lb;
  }
  return a.read.metadata < b.read.metadata;
}

// Superchunk row coding (temporary spill format).
void EncodeRow(const Row& row, Buffer* out) {
  PutVarint(row.read.metadata.size(), out);
  out->Append(row.read.metadata);
  PutVarint(row.read.bases.size(), out);
  out->Append(row.read.bases);
  out->Append(row.read.qual);
  align::EncodeResult(row.result, out);
}

Status DecodeRow(std::span<const uint8_t> bytes, size_t* offset, Row* row) {
  PERSONA_ASSIGN_OR_RETURN(uint64_t meta_len, GetVarint(bytes, offset));
  if (*offset + meta_len > bytes.size()) {
    return DataLossError("superchunk: truncated metadata");
  }
  row->read.metadata.assign(reinterpret_cast<const char*>(bytes.data()) + *offset, meta_len);
  *offset += meta_len;
  PERSONA_ASSIGN_OR_RETURN(uint64_t base_len, GetVarint(bytes, offset));
  if (*offset + 2 * base_len > bytes.size()) {
    return DataLossError("superchunk: truncated read");
  }
  row->read.bases.assign(reinterpret_cast<const char*>(bytes.data()) + *offset, base_len);
  *offset += base_len;
  row->read.qual.assign(reinterpret_cast<const char*>(bytes.data()) + *offset, base_len);
  *offset += base_len;
  return DecodeResult(bytes, offset, &row->result);
}

// Decodes every record of one fetched+parsed superchunk group into rows. Column order
// matches the pipeline's declared columns: bases, qual, metadata, results.
Status DecodeSuperchunkRows(const ChunkPipeline::Input& input, std::vector<Row>* rows) {
  for (size_t c = 0; c < input.chunk_end - input.chunk_begin; ++c) {
    for (size_t i = 0; i < input.column(c, 0).record_count(); ++i) {
      Row row;
      PERSONA_RETURN_IF_ERROR(DecodeAlignedRecord(input.column(c, 0), input.column(c, 1),
                                                  input.column(c, 2), input.column(c, 3),
                                                  i, &row.read, &row.result));
      rows->push_back(std::move(row));
    }
  }
  return OkStatus();
}

// Streaming cursor over one decompressed superchunk.
class SuperchunkCursor {
 public:
  SuperchunkCursor(Buffer data, SortKey key) : data_(std::move(data)), key_(key) {
    Advance();
  }

  bool valid() const { return valid_; }
  const Row& row() const { return row_; }
  SortKey key() const { return key_; }

  void Advance() {
    if (offset_ >= data_.size()) {
      valid_ = false;
      return;
    }
    Status status = DecodeRow(data_.span(), &offset_, &row_);
    valid_ = status.ok();
  }

 private:
  Buffer data_;
  SortKey key_;
  size_t offset_ = 0;
  Row row_;
  bool valid_ = true;
};

}  // namespace

Result<SortPhase1Report> SortSuperchunks(storage::ObjectStore* store,
                                         const format::Manifest& manifest,
                                         const std::string& out_name,
                                         const SortOptions& options,
                                         WorkSource* work_source) {
  if (!manifest.HasColumn("results")) {
    return FailedPreconditionError("sort requires a results column (align first)");
  }
  if (options.chunks_per_superchunk <= 0) {
    return InvalidArgumentError("chunks_per_superchunk must be positive");
  }
  const storage::StoreStats store_before = store->stats();
  Stopwatch timer;

  // Sorted superchunks on the shared ChunkPipeline. Each work item is one superchunk
  // group (all four columns of every chunk, one batched Get); the sort transform runs
  // `sort_threads` wide, and spill writes overlap the next group's fetch+sort through
  // the writer's asynchronous ticket window. With a work source, groups come from the
  // shared lease table instead of local iteration, and each spill's completion is
  // reported back once it is durable.
  const size_t group = static_cast<size_t>(options.chunks_per_superchunk);
  const compress::Codec& temp_codec = compress::GetCodec(options.temp_codec);

  ChunkPipeline::Options phase1_options = options.pipeline;
  phase1_options.transform_parallelism = std::max(1, options.sort_threads);
  ChunkPipeline phase1(phase1_options);
  phase1.SetManifestSource(store, &manifest, {"bases", "qual", "metadata", "results"},
                           group, work_source);
  phase1.SetWriter(store, 1);
  auto sorted_groups = std::make_shared<std::atomic<uint64_t>>(0);
  phase1.SetTransform(
      "superchunk-sort",
      [&options, &temp_codec, &out_name, sorted_groups](
          ChunkPipeline::Input&& input, ChunkPipeline::Emitter& emit) -> Status {
        std::vector<Row> rows;
        PERSONA_RETURN_IF_ERROR(DecodeSuperchunkRows(input, &rows));
        std::sort(rows.begin(), rows.end(),
                  [&](const Row& a, const Row& b) { return RowLess(options.key, a, b); });
        Buffer raw;
        for (const Row& row : rows) {
          EncodeRow(row, &raw);
        }
        ChunkPipeline::BufferRef object = emit.AcquireBuffer();
        object->AppendScalar<uint64_t>(raw.size());
        PERSONA_RETURN_IF_ERROR(temp_codec.Compress(raw.span(), object.get()));
        sorted_groups->fetch_add(1, std::memory_order_relaxed);
        return emit.Write(out_name + ".super-" + std::to_string(input.index),
                          std::move(object));
      });
  PERSONA_RETURN_IF_ERROR(phase1.Run().status());

  SortPhase1Report report;
  report.seconds = timer.ElapsedSeconds();
  report.superchunks = sorted_groups->load();
  report.store_stats = storage::StatsDelta(store_before, store->stats());
  return report;
}

Result<SortReport> MergeSuperchunks(storage::ObjectStore* store,
                                    const format::Manifest& manifest,
                                    const std::string& out_name,
                                    const SortOptions& options,
                                    format::Manifest* out_manifest) {
  if (options.chunks_per_superchunk <= 0) {
    return InvalidArgumentError("chunks_per_superchunk must be positive");
  }
  const storage::StoreStats store_before = store->stats();
  Stopwatch timer;
  const size_t num_chunks = manifest.chunks.size();
  const size_t group = static_cast<size_t>(options.chunks_per_superchunk);
  const size_t num_supers = (num_chunks + group - 1) / group;
  const compress::Codec& temp_codec = compress::GetCodec(options.temp_codec);

  // K-way merge into the output dataset. All superchunk temporaries are
  // fetched with one batched Get (they live on distinct shards/OSD nodes). ---
  std::vector<Buffer> super_objects(num_supers);
  {
    std::vector<storage::GetOp> gets;
    gets.reserve(num_supers);
    for (size_t s = 0; s < num_supers; ++s) {
      gets.push_back({out_name + ".super-" + std::to_string(s), &super_objects[s], {}});
    }
    PERSONA_RETURN_IF_ERROR(store->GetBatch(gets));
  }
  std::vector<std::unique_ptr<SuperchunkCursor>> cursors;
  for (size_t s = 0; s < num_supers; ++s) {
    Buffer& object = super_objects[s];
    if (object.size() < sizeof(uint64_t)) {
      return DataLossError("superchunk too small");
    }
    uint64_t raw_size = object.ReadScalar<uint64_t>(0);
    Buffer raw;
    PERSONA_RETURN_IF_ERROR(temp_codec.Decompress(object.span().subspan(sizeof(uint64_t)),
                                                  static_cast<size_t>(raw_size), &raw));
    cursors.push_back(std::make_unique<SuperchunkCursor>(std::move(raw), options.key));
    object.Clear();  // compressed temporary no longer needed
  }
  super_objects.clear();

  auto cursor_greater = [&](size_t a, size_t b) {
    // Min-heap by row key.
    return RowLess(options.key, cursors[b]->row(), cursors[a]->row());
  };
  std::priority_queue<size_t, std::vector<size_t>, decltype(cursor_greater)> heap(
      cursor_greater);
  for (size_t i = 0; i < cursors.size(); ++i) {
    if (cursors[i]->valid()) {
      heap.push(i);
    }
  }

  format::Manifest out;
  out.name = out_name;
  out.chunk_size = manifest.chunk_size;
  out.columns = manifest.columns;
  out.reference_contigs = manifest.reference_contigs;

  format::ChunkBuilder bases(format::RecordType::kBases, options.codec);
  format::ChunkBuilder qual(format::RecordType::kQual, options.codec);
  format::ChunkBuilder metadata(format::RecordType::kMetadata, options.codec);
  format::ChunkBuilder results(format::RecordType::kResults, options.codec);
  int64_t emitted_in_chunk = 0;
  int64_t total_emitted = 0;
  Buffer bases_file;
  Buffer qual_file;
  Buffer metadata_file;
  Buffer results_file;

  auto flush_chunk = [&]() -> Status {
    if (emitted_in_chunk == 0) {
      return OkStatus();
    }
    format::ManifestChunk chunk;
    chunk.path_base = out_name + "-" + std::to_string(out.chunks.size());
    chunk.first_record = total_emitted - emitted_in_chunk;
    chunk.num_records = emitted_in_chunk;
    PERSONA_RETURN_IF_ERROR(bases.Finalize(&bases_file));
    PERSONA_RETURN_IF_ERROR(qual.Finalize(&qual_file));
    PERSONA_RETURN_IF_ERROR(metadata.Finalize(&metadata_file));
    PERSONA_RETURN_IF_ERROR(results.Finalize(&results_file));
    std::array<storage::PutOp, 4> puts = {
        storage::PutOp{chunk.path_base + ".bases", bases_file.span(), {}},
        storage::PutOp{chunk.path_base + ".qual", qual_file.span(), {}},
        storage::PutOp{chunk.path_base + ".metadata", metadata_file.span(), {}},
        storage::PutOp{chunk.path_base + ".results", results_file.span(), {}},
    };
    PERSONA_RETURN_IF_ERROR(store->PutBatch(puts));
    out.chunks.push_back(std::move(chunk));
    bases.Reset();
    qual.Reset();
    metadata.Reset();
    results.Reset();
    emitted_in_chunk = 0;
    return OkStatus();
  };

  while (!heap.empty()) {
    size_t i = heap.top();
    heap.pop();
    const Row& row = cursors[i]->row();
    bases.AddBases(row.read.bases);
    qual.AddRecord(row.read.qual);
    metadata.AddRecord(row.read.metadata);
    results.AddResult(row.result);
    ++emitted_in_chunk;
    ++total_emitted;
    if (emitted_in_chunk >= out.chunk_size) {
      PERSONA_RETURN_IF_ERROR(flush_chunk());
    }
    cursors[i]->Advance();
    if (cursors[i]->valid()) {
      heap.push(i);
    }
  }
  PERSONA_RETURN_IF_ERROR(flush_chunk());
  PERSONA_RETURN_IF_ERROR(store->Put(out_name + ".manifest.json", out.ToJson()));

  // Clean up superchunk temporaries with one batched delete: the per-object metadata
  // round-trips overlap across the store's shards/OSD nodes. Best-effort, as before.
  {
    std::vector<storage::DeleteOp> deletes;
    deletes.reserve(num_supers);
    for (size_t s = 0; s < num_supers; ++s) {
      deletes.push_back({out_name + ".super-" + std::to_string(s), {}});
    }
    Status cleanup = store->DeleteBatch(deletes);
    if (!cleanup.ok()) {
      PLOG(WARN) << "leaked superchunk temporaries for " << out_name << ": "
                 << cleanup.ToString();
    }
  }

  SortReport report;
  report.seconds = timer.ElapsedSeconds();
  report.merge_seconds = report.seconds;
  report.records = static_cast<uint64_t>(total_emitted);
  report.superchunks = num_supers;
  report.store_stats = storage::StatsDelta(store_before, store->stats());
  if (out_manifest != nullptr) {
    *out_manifest = std::move(out);
  }
  return report;
}

Result<SortReport> SortAgdDataset(storage::ObjectStore* store,
                                  const format::Manifest& manifest,
                                  const std::string& out_name, const SortOptions& options,
                                  format::Manifest* out_manifest) {
  PERSONA_ASSIGN_OR_RETURN(SortPhase1Report phase1,
                           SortSuperchunks(store, manifest, out_name, options));
  PERSONA_ASSIGN_OR_RETURN(SortReport report, MergeSuperchunks(store, manifest, out_name,
                                                               options, out_manifest));
  report.seconds += phase1.seconds;
  report.phase1_seconds = phase1.seconds;
  report.store_stats.Accumulate(phase1.store_stats);
  return report;
}

}  // namespace persona::pipeline
