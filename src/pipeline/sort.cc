#include "src/pipeline/sort.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>

#include "src/format/agd_chunk.h"
#include "src/util/stopwatch.h"
#include "src/util/varint.h"

namespace persona::pipeline {

namespace {

struct Row {
  genome::Read read;
  align::AlignmentResult result;
};

// Sort keys: mapped location (unmapped last, ties by metadata for determinism) or read ID.
bool RowLess(SortKey key, const Row& a, const Row& b) {
  if (key == SortKey::kMetadata) {
    return a.read.metadata < b.read.metadata;
  }
  int64_t la = a.result.mapped() ? a.result.location : INT64_MAX;
  int64_t lb = b.result.mapped() ? b.result.location : INT64_MAX;
  if (la != lb) {
    return la < lb;
  }
  return a.read.metadata < b.read.metadata;
}

// Superchunk row coding (temporary spill format).
void EncodeRow(const Row& row, Buffer* out) {
  PutVarint(row.read.metadata.size(), out);
  out->Append(row.read.metadata);
  PutVarint(row.read.bases.size(), out);
  out->Append(row.read.bases);
  out->Append(row.read.qual);
  align::EncodeResult(row.result, out);
}

Status DecodeRow(std::span<const uint8_t> bytes, size_t* offset, Row* row) {
  PERSONA_ASSIGN_OR_RETURN(uint64_t meta_len, GetVarint(bytes, offset));
  if (*offset + meta_len > bytes.size()) {
    return DataLossError("superchunk: truncated metadata");
  }
  row->read.metadata.assign(reinterpret_cast<const char*>(bytes.data()) + *offset, meta_len);
  *offset += meta_len;
  PERSONA_ASSIGN_OR_RETURN(uint64_t base_len, GetVarint(bytes, offset));
  if (*offset + 2 * base_len > bytes.size()) {
    return DataLossError("superchunk: truncated read");
  }
  row->read.bases.assign(reinterpret_cast<const char*>(bytes.data()) + *offset, base_len);
  *offset += base_len;
  row->read.qual.assign(reinterpret_cast<const char*>(bytes.data()) + *offset, base_len);
  *offset += base_len;
  return DecodeResult(bytes, offset, &row->result);
}

// Loads every record of chunks [chunk_begin, chunk_end) — all four columns of every
// chunk fetched with one batched Get, so the column objects stream from the store's
// shards/OSD nodes in parallel instead of one round-trip at a time.
Status LoadSuperchunkRows(storage::ObjectStore* store, const format::Manifest& manifest,
                          size_t chunk_begin, size_t chunk_end, std::vector<Row>* rows) {
  static constexpr const char* kColumns[] = {"bases", "qual", "metadata", "results"};
  const size_t num_chunks = chunk_end - chunk_begin;
  std::vector<Buffer> files(num_chunks * 4);
  std::vector<storage::GetOp> gets;
  gets.reserve(files.size());
  for (size_t c = 0; c < num_chunks; ++c) {
    for (size_t k = 0; k < 4; ++k) {
      gets.push_back({manifest.ChunkFileName(chunk_begin + c, kColumns[k]),
                      &files[c * 4 + k], {}});
    }
  }
  PERSONA_RETURN_IF_ERROR(store->GetBatch(gets));

  for (size_t c = 0; c < num_chunks; ++c) {
    PERSONA_ASSIGN_OR_RETURN(format::ParsedChunk bases,
                             format::ParsedChunk::Parse(files[c * 4 + 0].span()));
    PERSONA_ASSIGN_OR_RETURN(format::ParsedChunk qual,
                             format::ParsedChunk::Parse(files[c * 4 + 1].span()));
    PERSONA_ASSIGN_OR_RETURN(format::ParsedChunk metadata,
                             format::ParsedChunk::Parse(files[c * 4 + 2].span()));
    PERSONA_ASSIGN_OR_RETURN(format::ParsedChunk results,
                             format::ParsedChunk::Parse(files[c * 4 + 3].span()));
    if (bases.record_count() != results.record_count()) {
      return DataLossError("results column out of sync with bases");
    }
    for (size_t i = 0; i < bases.record_count(); ++i) {
      Row row;
      PERSONA_ASSIGN_OR_RETURN(row.read.bases, bases.GetBases(i));
      PERSONA_ASSIGN_OR_RETURN(std::string_view q, qual.GetString(i));
      row.read.qual = std::string(q);
      PERSONA_ASSIGN_OR_RETURN(std::string_view m, metadata.GetString(i));
      row.read.metadata = std::string(m);
      PERSONA_ASSIGN_OR_RETURN(row.result, results.GetResult(i));
      rows->push_back(std::move(row));
    }
  }
  return OkStatus();
}

// Streaming cursor over one decompressed superchunk.
class SuperchunkCursor {
 public:
  SuperchunkCursor(Buffer data, SortKey key) : data_(std::move(data)), key_(key) {
    Advance();
  }

  bool valid() const { return valid_; }
  const Row& row() const { return row_; }
  SortKey key() const { return key_; }

  void Advance() {
    if (offset_ >= data_.size()) {
      valid_ = false;
      return;
    }
    Status status = DecodeRow(data_.span(), &offset_, &row_);
    valid_ = status.ok();
  }

 private:
  Buffer data_;
  SortKey key_;
  size_t offset_ = 0;
  Row row_;
  bool valid_ = true;
};

}  // namespace

Result<SortReport> SortAgdDataset(storage::ObjectStore* store,
                                  const format::Manifest& manifest,
                                  const std::string& out_name, const SortOptions& options,
                                  format::Manifest* out_manifest) {
  if (!manifest.HasColumn("results")) {
    return FailedPreconditionError("sort requires a results column (align first)");
  }
  if (options.chunks_per_superchunk <= 0) {
    return InvalidArgumentError("chunks_per_superchunk must be positive");
  }
  const storage::StoreStats store_before = store->stats();
  Stopwatch timer;

  // --- Phase 1: sorted superchunks (parallel across superchunk groups). ---
  const size_t num_chunks = manifest.chunks.size();
  const size_t group = static_cast<size_t>(options.chunks_per_superchunk);
  const size_t num_supers = (num_chunks + group - 1) / group;
  const compress::Codec& temp_codec = compress::GetCodec(options.temp_codec);

  std::atomic<size_t> next_super{0};
  std::mutex error_mu;
  Status first_error;
  // One spill write kept in flight per worker: the Put of superchunk s overlaps the
  // fetch+sort+encode of superchunk s+1 (op/buffer owned until the ticket completes).
  struct PendingSpill {
    Buffer object;
    storage::PutOp op;
    storage::IoTicket ticket;
  };
  auto worker = [&] {
    std::unique_ptr<PendingSpill> pending;
    auto drain_pending = [&]() -> Status {
      if (pending == nullptr) {
        return OkStatus();
      }
      Status status = pending->ticket.Await();
      pending.reset();
      return status;
    };
    Status status;
    while (status.ok()) {
      size_t s = next_super.fetch_add(1);
      if (s >= num_supers) {
        status = drain_pending();
        break;
      }
      std::vector<Row> rows;
      status = LoadSuperchunkRows(store, manifest, s * group,
                                  std::min(num_chunks, (s + 1) * group), &rows);
      if (status.ok()) {
        std::sort(rows.begin(), rows.end(),
                  [&](const Row& a, const Row& b) { return RowLess(options.key, a, b); });
        Buffer raw;
        for (const Row& row : rows) {
          EncodeRow(row, &raw);
        }
        Buffer object;
        object.AppendScalar<uint64_t>(raw.size());
        status = temp_codec.Compress(raw.span(), &object);
        if (status.ok()) {
          Status spill_status = drain_pending();
          pending = std::make_unique<PendingSpill>();
          pending->object = std::move(object);
          pending->op = {out_name + ".super-" + std::to_string(s),
                         pending->object.span(), {}};
          pending->ticket = store->SubmitAsync({&pending->op, 1}, {});
          status = spill_status;
        }
      }
    }
    // Error path: the in-flight spill owns live op memory — always wait it out.
    (void)drain_pending();
    if (!status.ok()) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (first_error.ok()) {
        first_error = status;
      }
    }
  };
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < std::max(1, options.sort_threads); ++t) {
      threads.emplace_back(worker);
    }
    for (std::thread& t : threads) {
      t.join();
    }
  }
  PERSONA_RETURN_IF_ERROR(first_error);
  const double phase1_seconds = timer.ElapsedSeconds();

  // --- Phase 2: k-way merge into the output dataset. All superchunk temporaries are
  // fetched with one batched Get (they live on distinct shards/OSD nodes). ---
  std::vector<Buffer> super_objects(num_supers);
  {
    std::vector<storage::GetOp> gets;
    gets.reserve(num_supers);
    for (size_t s = 0; s < num_supers; ++s) {
      gets.push_back({out_name + ".super-" + std::to_string(s), &super_objects[s], {}});
    }
    PERSONA_RETURN_IF_ERROR(store->GetBatch(gets));
  }
  std::vector<std::unique_ptr<SuperchunkCursor>> cursors;
  for (size_t s = 0; s < num_supers; ++s) {
    Buffer& object = super_objects[s];
    if (object.size() < sizeof(uint64_t)) {
      return DataLossError("superchunk too small");
    }
    uint64_t raw_size = object.ReadScalar<uint64_t>(0);
    Buffer raw;
    PERSONA_RETURN_IF_ERROR(temp_codec.Decompress(object.span().subspan(sizeof(uint64_t)),
                                                  static_cast<size_t>(raw_size), &raw));
    cursors.push_back(std::make_unique<SuperchunkCursor>(std::move(raw), options.key));
    object.Clear();  // compressed temporary no longer needed
  }
  super_objects.clear();

  auto cursor_greater = [&](size_t a, size_t b) {
    // Min-heap by row key.
    return RowLess(options.key, cursors[b]->row(), cursors[a]->row());
  };
  std::priority_queue<size_t, std::vector<size_t>, decltype(cursor_greater)> heap(
      cursor_greater);
  for (size_t i = 0; i < cursors.size(); ++i) {
    if (cursors[i]->valid()) {
      heap.push(i);
    }
  }

  format::Manifest out;
  out.name = out_name;
  out.chunk_size = manifest.chunk_size;
  out.columns = manifest.columns;
  out.reference_contigs = manifest.reference_contigs;

  format::ChunkBuilder bases(format::RecordType::kBases, options.codec);
  format::ChunkBuilder qual(format::RecordType::kQual, options.codec);
  format::ChunkBuilder metadata(format::RecordType::kMetadata, options.codec);
  format::ChunkBuilder results(format::RecordType::kResults, options.codec);
  int64_t emitted_in_chunk = 0;
  int64_t total_emitted = 0;
  Buffer bases_file;
  Buffer qual_file;
  Buffer metadata_file;
  Buffer results_file;

  auto flush_chunk = [&]() -> Status {
    if (emitted_in_chunk == 0) {
      return OkStatus();
    }
    format::ManifestChunk chunk;
    chunk.path_base = out_name + "-" + std::to_string(out.chunks.size());
    chunk.first_record = total_emitted - emitted_in_chunk;
    chunk.num_records = emitted_in_chunk;
    PERSONA_RETURN_IF_ERROR(bases.Finalize(&bases_file));
    PERSONA_RETURN_IF_ERROR(qual.Finalize(&qual_file));
    PERSONA_RETURN_IF_ERROR(metadata.Finalize(&metadata_file));
    PERSONA_RETURN_IF_ERROR(results.Finalize(&results_file));
    std::array<storage::PutOp, 4> puts = {
        storage::PutOp{chunk.path_base + ".bases", bases_file.span(), {}},
        storage::PutOp{chunk.path_base + ".qual", qual_file.span(), {}},
        storage::PutOp{chunk.path_base + ".metadata", metadata_file.span(), {}},
        storage::PutOp{chunk.path_base + ".results", results_file.span(), {}},
    };
    PERSONA_RETURN_IF_ERROR(store->PutBatch(puts));
    out.chunks.push_back(std::move(chunk));
    bases.Reset();
    qual.Reset();
    metadata.Reset();
    results.Reset();
    emitted_in_chunk = 0;
    return OkStatus();
  };

  while (!heap.empty()) {
    size_t i = heap.top();
    heap.pop();
    const Row& row = cursors[i]->row();
    bases.AddBases(row.read.bases);
    qual.AddRecord(row.read.qual);
    metadata.AddRecord(row.read.metadata);
    results.AddResult(row.result);
    ++emitted_in_chunk;
    ++total_emitted;
    if (emitted_in_chunk >= out.chunk_size) {
      PERSONA_RETURN_IF_ERROR(flush_chunk());
    }
    cursors[i]->Advance();
    if (cursors[i]->valid()) {
      heap.push(i);
    }
  }
  PERSONA_RETURN_IF_ERROR(flush_chunk());
  PERSONA_RETURN_IF_ERROR(store->Put(out_name + ".manifest.json", out.ToJson()));

  // Clean up superchunk temporaries.
  for (size_t s = 0; s < num_supers; ++s) {
    (void)store->Delete(out_name + ".super-" + std::to_string(s));
  }

  SortReport report;
  report.seconds = timer.ElapsedSeconds();
  report.phase1_seconds = phase1_seconds;
  report.merge_seconds = report.seconds - phase1_seconds;
  report.records = static_cast<uint64_t>(total_emitted);
  report.superchunks = num_supers;
  storage::StoreStats after = store->stats();
  report.store_stats.bytes_read = after.bytes_read - store_before.bytes_read;
  report.store_stats.bytes_written = after.bytes_written - store_before.bytes_written;
  if (out_manifest != nullptr) {
    *out_manifest = std::move(out);
  }
  return report;
}

}  // namespace persona::pipeline
