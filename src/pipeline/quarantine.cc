#include "src/pipeline/quarantine.h"

#include <utility>

#include "src/util/file_util.h"
#include "src/util/json.h"

namespace persona::pipeline {

std::string QuarantineManifest::ToJson() const {
  json::Object root;
  root["dataset"] = json::Value(dataset);
  json::Array items;
  items.reserve(entries.size());
  for (const Entry& entry : entries) {
    json::Object o;
    o["group"] = json::Value(static_cast<uint64_t>(entry.group));
    json::Array keys;
    keys.reserve(entry.keys.size());
    for (const std::string& key : entry.keys) {
      keys.emplace_back(key);
    }
    o["keys"] = json::Value(std::move(keys));
    o["error"] = json::Value(entry.error);
    items.emplace_back(std::move(o));
  }
  root["entries"] = json::Value(std::move(items));
  return json::Value(std::move(root)).Dump(2);
}

Result<QuarantineManifest> QuarantineManifest::FromJson(std::string_view text) {
  PERSONA_ASSIGN_OR_RETURN(json::Value root, json::Parse(text));
  QuarantineManifest manifest;
  PERSONA_ASSIGN_OR_RETURN(manifest.dataset, root.GetString("dataset"));
  PERSONA_ASSIGN_OR_RETURN(const json::Array* entries, root.GetArray("entries"));
  manifest.entries.reserve(entries->size());
  for (const json::Value& item : *entries) {
    Entry entry;
    PERSONA_ASSIGN_OR_RETURN(const int64_t group, item.GetInt("group"));
    entry.group = static_cast<size_t>(group);
    PERSONA_ASSIGN_OR_RETURN(const json::Array* keys, item.GetArray("keys"));
    entry.keys.reserve(keys->size());
    for (const json::Value& key : *keys) {
      if (!key.is_string()) {
        return InvalidArgumentError("quarantine manifest: non-string key");
      }
      entry.keys.push_back(key.as_string());
    }
    PERSONA_ASSIGN_OR_RETURN(entry.error, item.GetString("error"));
    manifest.entries.push_back(std::move(entry));
  }
  return manifest;
}

Status SaveQuarantineManifest(const std::string& path,
                              const QuarantineManifest& manifest) {
  return WriteFileAtomic(path, manifest.ToJson());
}

Result<QuarantineManifest> LoadQuarantineManifest(const std::string& path) {
  PERSONA_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return QuarantineManifest::FromJson(text);
}

}  // namespace persona::pipeline
