#include "src/pipeline/baseline_standalone.h"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/format/sam.h"
#include "src/pipeline/agd_store_util.h"
#include "src/util/first_error.h"
#include "src/util/mutex.h"
#include "src/util/stopwatch.h"

namespace persona::pipeline {

Result<StandaloneReport> RunStandaloneAlignment(storage::ObjectStore* store,
                                                const std::string& name,
                                                const genome::ReferenceGenome& reference,
                                                const align::Aligner& aligner,
                                                const StandaloneOptions& options) {
  const storage::StoreStats store_before = store->stats();
  Stopwatch timer;

  // Phase 0: the monolithic input must be fetched and decompressed before worker
  // threads have anything to do (no chunked overlap as in Persona).
  PERSONA_ASSIGN_OR_RETURN(std::vector<genome::Read> reads,
                           ReadGzippedFastqFromStore(store, name));

  StandaloneReport report;
  report.reads = reads.size();

  // Shared output buffer with writeback bursts.
  Mutex out_mu;
  std::string sam_buffer;
  sam_buffer.reserve(options.writeback_threshold + (64 << 10));
  std::atomic<int> sam_part{0};
  auto flush_locked = [&]() -> Status {
    if (sam_buffer.empty()) {
      return OkStatus();
    }
    std::string part = name + ".sam." + std::to_string(sam_part.fetch_add(1));
    // The burst write happens while holding the output lock — workers needing to
    // append stall behind it, as they do behind writeback on a real single disk.
    // The write goes through the batched entry point but is deliberately awaited
    // in place: the baseline being modeled has no asynchronous writeback to hide it.
    storage::PutOp put{part,
                       std::span<const uint8_t>(
                           reinterpret_cast<const uint8_t*>(sam_buffer.data()),
                           sam_buffer.size()),
                       {}};
    Status status = store->PutBatch({&put, 1});
    sam_buffer.clear();
    return status;
  };

  {
    MutexLock lock(out_mu);
    sam_buffer += format::SamHeader(reference);
  }

  // Ad-hoc worker threads over read batches.
  std::atomic<size_t> next_read{0};
  std::atomic<uint64_t> total_bases{0};
  std::atomic<bool> failed{false};
  FirstErrorCollector errors;

  // Utilization sampling: accumulate per-worker busy time and sample the delta each
  // interval (instantaneous busy-thread counts are scheduler-biased on small machines).
  std::atomic<uint64_t> busy_ns{0};
  std::atomic<bool> sampling{options.utilization_sample_sec > 0};
  std::thread sampler;
  if (options.utilization_sample_sec > 0) {
    report.utilization_interval_sec = options.utilization_sample_sec;
    sampler = std::thread([&] {
      uint64_t last_busy = 0;
      Stopwatch clock;
      double last_time = 0;
      while (sampling.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(options.utilization_sample_sec));
        double now = clock.ElapsedSeconds();
        uint64_t busy = busy_ns.load(std::memory_order_relaxed);
        double util = static_cast<double>(busy - last_busy) * 1e-9 /
                      ((now - last_time) * std::max(1, options.threads));
        report.utilization.push_back(std::min(util, 1.0));
        last_busy = busy;
        last_time = now;
      }
    });
  }

  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(options.threads));
  for (int w = 0; w < options.threads; ++w) {
    workers.emplace_back([&] {
      std::string local_sam;
      // Worker-lifetime aligner scratch + result staging: the alignment hot loop runs
      // through the batched entry point, allocation-free after the first batch.
      std::unique_ptr<align::AlignerScratch> scratch = aligner.MakeScratch();
      std::vector<align::AlignmentResult> batch_results;
      while (!failed.load(std::memory_order_relaxed)) {
        size_t begin = next_read.fetch_add(options.batch_reads);
        if (begin >= reads.size()) {
          break;
        }
        size_t end = std::min(reads.size(), begin + options.batch_reads);
        Stopwatch busy_timer;
        local_sam.clear();
        uint64_t batch_bases = 0;
        const size_t count = end - begin;
        batch_results.resize(count);
        aligner.AlignBatch({reads.data() + begin, count}, {batch_results.data(), count},
                           scratch.get(), nullptr);
        for (size_t i = begin; i < end; ++i) {
          batch_bases += reads[i].bases.size();
          Status status = format::AppendSamRecord(reference, reads[i],
                                                  batch_results[i - begin], &local_sam);
          if (!status.ok()) {
            errors.Record(status);
            failed.store(true, std::memory_order_relaxed);
            break;
          }
        }
        total_bases.fetch_add(batch_bases, std::memory_order_relaxed);
        busy_ns.fetch_add(static_cast<uint64_t>(busy_timer.ElapsedNanos()),
                          std::memory_order_relaxed);

        // Append to the shared buffer; trigger writeback past the threshold.
        MutexLock lock(out_mu);
        sam_buffer += local_sam;
        if (sam_buffer.size() >= options.writeback_threshold) {
          Status status = flush_locked();
          if (!status.ok()) {
            errors.Record(status);
            failed.store(true, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& t : workers) {
    t.join();
  }
  {
    MutexLock lock(out_mu);
    errors.Record(flush_locked());
  }
  sampling.store(false);
  if (sampler.joinable()) {
    sampler.join();
  }
  PERSONA_RETURN_IF_ERROR(errors.first());

  report.seconds = timer.ElapsedSeconds();
  report.bases = total_bases.load();
  report.store_stats = storage::StatsDelta(store_before, store->stats());
  return report;
}

}  // namespace persona::pipeline
