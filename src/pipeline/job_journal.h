// JobJournal: crash-safe resume state for ChunkPipeline jobs.
//
// A multi-hour alignment or recompression job dies with the process today; the journal
// makes it resumable. It checkpoints the completed-work-item set — and the keys each
// item wrote, the output manifest-so-far — as a JSON object stored *through the
// ObjectStore* alongside the job's outputs. Store Puts are atomic replaces (LocalStore
// writes temp + fsync + rename; MemoryStore swaps under its lock), so a crash mid-
// checkpoint leaves the previous journal, never a torn one. On restart the tool Loads
// the journal, ChunkPipeline's manifest source skips journaled items, and the writer
// commits each newly finished item — the run re-reads only unfinished chunks and the
// final outputs are bit-identical to an uninterrupted run.
//
// The fingerprint ties a journal to one job shape (tool, dataset, chunk count):
// resuming with a different shape would silently skip the wrong items, so Load fails
// loudly on a mismatch instead.

#ifndef PERSONA_SRC_PIPELINE_JOB_JOURNAL_H_
#define PERSONA_SRC_PIPELINE_JOB_JOURNAL_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/storage/object_store.h"
#include "src/util/mutex.h"

namespace persona::pipeline {

class JobJournal {
 public:
  // `store` is borrowed; `key` names the journal object (e.g. "<job>.journal.json").
  // `fingerprint` identifies the job shape; Load rejects a journal written under a
  // different fingerprint.
  JobJournal(storage::ObjectStore* store, std::string key, std::string fingerprint);

  // Loads existing journal state. A missing journal is a fresh job (OK, empty state);
  // a journal with a different fingerprint is a FailedPrecondition.
  [[nodiscard]] Status Load();

  bool IsCompleted(size_t item) const EXCLUDES(mu_);
  size_t completed_count() const EXCLUDES(mu_);
  // Keys written by completed items, in item order: the journaled manifest-so-far.
  std::vector<std::string> CompletedKeys() const EXCLUDES(mu_);

  // Records that `item` finished and all of `keys` landed in the store, then
  // checkpoints every `checkpoint_interval` commits (and always on the first).
  // Thread-safe; called from writer workers.
  [[nodiscard]] Status Commit(size_t item, std::vector<std::string> keys) EXCLUDES(mu_);

  // Forces a checkpoint of the current state.
  [[nodiscard]] Status Checkpoint() EXCLUDES(mu_);

  // Deletes the journal object — call after the job (including its final manifest
  // write) fully succeeds, so a later run starts fresh instead of resuming.
  [[nodiscard]] Status Clear() EXCLUDES(mu_);

  // Checkpoint cadence: 1 (default) = every commit is durable before the pipeline
  // window moves on; raise to trade re-done work after a crash for fewer journal
  // writes on large jobs.
  void set_checkpoint_interval(size_t interval) {
    checkpoint_interval_ = interval == 0 ? 1 : interval;
  }

  const std::string& key() const { return key_; }

 private:
  [[nodiscard]] Status CheckpointLocked() REQUIRES(mu_);

  storage::ObjectStore* store_;
  const std::string key_;
  const std::string fingerprint_;
  size_t checkpoint_interval_ = 1;

  mutable Mutex mu_;
  // item index -> keys it wrote (map: deterministic JSON output, ordered resume scans)
  std::map<size_t, std::vector<std::string>> completed_ GUARDED_BY(mu_);
  size_t commits_since_checkpoint_ GUARDED_BY(mu_) = 0;
};

}  // namespace persona::pipeline

#endif  // PERSONA_SRC_PIPELINE_JOB_JOURNAL_H_
