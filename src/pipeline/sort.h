// Persona dataset sorting (paper §4.3): a simple external merge sort.
//
// Phase 1 reads groups of AGD chunks, sorts their records by the requested key, and
// writes temporary "superchunks". Phase 2 k-way merges the superchunks into the final
// sorted dataset. Sorting is by mapped location or by read ID (metadata), matching the
// paper's "sorting by various parameters".

#ifndef PERSONA_SRC_PIPELINE_SORT_H_
#define PERSONA_SRC_PIPELINE_SORT_H_

#include <string>

#include "src/format/agd_manifest.h"
#include "src/genome/read.h"
#include "src/pipeline/chunk_pipeline.h"
#include "src/storage/object_store.h"

namespace persona::pipeline {

enum class SortKey {
  kLocation,  // global mapped location; unmapped reads sort last
  kMetadata,  // read ID
};

struct SortReport {
  double seconds = 0;
  double phase1_seconds = 0;  // parallel superchunk sort
  double merge_seconds = 0;   // k-way merge + output encode
  uint64_t records = 0;
  uint64_t superchunks = 0;
  storage::StoreStats store_stats;
};

struct SortOptions {
  SortKey key = SortKey::kLocation;
  int chunks_per_superchunk = 4;
  compress::CodecId codec = compress::CodecId::kZlib;  // output chunks
  // Superchunk temporaries are spilled uncompressed by default: they are written and
  // read exactly once, so codec time is pure overhead unless storage is very slow.
  compress::CodecId temp_codec = compress::CodecId::kIdentity;
  int sort_threads = 2;  // phase-1 sort-stage parallelism across superchunks
  // Phase 1 runs on the shared ChunkPipeline (fetch/sort/spill overlap);
  // transform_parallelism is overridden by sort_threads.
  ChunkPipeline::Options pipeline;
};

// Phase-1-only report (the distributable half; see SortSuperchunks).
struct SortPhase1Report {
  double seconds = 0;
  // Superchunk groups this call processed (with a work source: only this node's
  // leased groups; the dataset-wide count is ceil(chunks / chunks_per_superchunk)).
  uint64_t superchunks = 0;
  storage::StoreStats store_stats;
};

// Phase 1 alone: sorts each group of `chunks_per_superchunk` consecutive chunks and
// spills it as "<out_name>.super-<group>". Groups are independent, so this is the
// cluster-distributable half of the sort — with `work_source` set (borrowed), this
// node sorts only the groups it leases, and a coordinator runs MergeSuperchunks
// once every group's spill is durable.
Result<SortPhase1Report> SortSuperchunks(storage::ObjectStore* store,
                                         const format::Manifest& manifest,
                                         const std::string& out_name,
                                         const SortOptions& options,
                                         WorkSource* work_source = nullptr);

// Phase 2 alone: k-way merges the dataset's superchunk spills (all
// ceil(chunks / chunks_per_superchunk) of them — they must all exist) into the
// final sorted dataset and deletes the temporaries. The returned report covers the
// merge only (phase1_seconds = 0).
Result<SortReport> MergeSuperchunks(storage::ObjectStore* store,
                                    const format::Manifest& manifest,
                                    const std::string& out_name,
                                    const SortOptions& options,
                                    format::Manifest* out_manifest);

// Sorts the dataset described by `manifest` (which must include a results column) into a
// new dataset named `out_name` in the same store: SortSuperchunks then
// MergeSuperchunks in one process. On success `out_manifest` describes the sorted
// dataset (also stored as "<out_name>.manifest.json").
Result<SortReport> SortAgdDataset(storage::ObjectStore* store,
                                  const format::Manifest& manifest,
                                  const std::string& out_name, const SortOptions& options,
                                  format::Manifest* out_manifest);

}  // namespace persona::pipeline

#endif  // PERSONA_SRC_PIPELINE_SORT_H_
