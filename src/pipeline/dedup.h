// Duplicate marking (paper §4.3, §5.6), Samblaster's algorithm: a read is a duplicate
// when a previous read mapped to the exact same signature — (unclipped position,
// orientation), extended with the mate's position for paired reads. The first occurrence
// stays unmarked; later ones get the SAM duplicate flag.
//
// Two implementations with identical semantics:
//   MarkDuplicatesDense   — open-addressing dense hash set (Persona's choice: Google's
//                           dense hashtable; no per-entry allocation, linear probing)
//   MarkDuplicatesChained — node-based chained hashing (the baseline's structure; one
//                           heap allocation per entry, pointer-chasing on lookup)
//
// Persona additionally needs only the results column from an AGD dataset — see
// DedupAgdResults — which is the I/O advantage §5.6 notes.

#ifndef PERSONA_SRC_PIPELINE_DEDUP_H_
#define PERSONA_SRC_PIPELINE_DEDUP_H_

#include <span>

#include "src/align/alignment.h"
#include "src/format/agd_manifest.h"
#include "src/pipeline/chunk_pipeline.h"
#include "src/storage/object_store.h"

namespace persona::pipeline {

struct DedupReport {
  uint64_t total = 0;
  uint64_t duplicates = 0;
  double seconds = 0;
  double reads_per_sec = 0;
};

// Marks duplicates in place (sets align::kFlagDuplicate).
DedupReport MarkDuplicatesDense(std::span<align::AlignmentResult> results);
DedupReport MarkDuplicatesChained(std::span<align::AlignmentResult> results);

// Whole-dataset dedup touching only the results column: read every "<chunk>.results"
// object, mark, write back. Other columns are never transferred. Runs on the shared
// ChunkPipeline: reads and write-backs overlap the (ordered) mark stage.
Result<DedupReport> DedupAgdResults(
    storage::ObjectStore* store, const format::Manifest& manifest,
    compress::CodecId codec = compress::CodecId::kZlib,
    const ChunkPipeline::Options& pipeline_options = {});

}  // namespace persona::pipeline

#endif  // PERSONA_SRC_PIPELINE_DEDUP_H_
