// Format conversion utilities (paper §4.4 output subgraph, §5.7 conversion rates):
// FASTQ -> AGD import, AGD -> SAM and AGD -> BSAM export.

#ifndef PERSONA_SRC_PIPELINE_CONVERT_H_
#define PERSONA_SRC_PIPELINE_CONVERT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "src/format/agd_manifest.h"
#include "src/genome/reference.h"
#include "src/pipeline/chunk_pipeline.h"
#include "src/storage/object_store.h"
#include "src/util/mutex.h"

namespace persona::pipeline {

// The record→column-chunk core shared by the offline FASTQ importer and the
// stream-ingest service: turns one ChunkPipeline record-mode Input (a chunk-sized
// batch of reads) into the three standard column builders (bases/qual/metadata),
// registers the chunk's manifest entry, and emits the column objects through the
// pipeline's serialize/write stages. Thread-safe: parallel transform workers may call
// BuildChunk concurrently; ManifestSnapshot/records/chunks may be read live from
// other threads (the ingest service's control requests do).
class FastqToAgdCore {
 public:
  // Chunks are named "<name>-<index>.<column>"; `chunk_size` is records per chunk
  // (used for first_record bookkeeping — inputs are expected to carry at most that
  // many reads).
  FastqToAgdCore(std::string name, int64_t chunk_size, compress::CodecId codec);

  // ChunkPipeline transform body (record mode).
  Status BuildChunk(ChunkPipeline::Input&& input, ChunkPipeline::Emitter& emit);

  // Manifest of the chunks emitted so far, in dataset order. Complete once the
  // pipeline has drained.
  format::Manifest ManifestSnapshot() const;

  uint64_t records() const { return records_.load(std::memory_order_relaxed); }
  uint64_t chunks() const { return chunks_.load(std::memory_order_relaxed); }

 private:
  const std::string name_;
  const int64_t chunk_size_;
  const compress::CodecId codec_;

  mutable Mutex mu_;
  std::map<size_t, format::ManifestChunk> entries_ GUARDED_BY(mu_);
  std::atomic<uint64_t> records_{0};
  std::atomic<uint64_t> chunks_{0};
};

struct ConvertReport {
  double seconds = 0;
  uint64_t records = 0;
  uint64_t bytes_in = 0;    // uncompressed input volume
  uint64_t bytes_out = 0;   // bytes written to the store
  double throughput_mb_per_sec = 0;  // bytes_in / seconds
};

// Imports "<name>.fastq.gz" from the store into an AGD dataset named `name`.
// Parsing streams serially as the ChunkPipeline's record source; column building,
// compression, and batched chunk writes run behind it in parallel. `input_store`,
// when set, is where the gzipped FASTQ is read from (the paper's §5 shape: sequencer
// output staged on local disk, AGD written to the cluster store); by default the
// input lives in `store` itself.
Result<ConvertReport> ImportFastqToAgd(
    storage::ObjectStore* store, const std::string& name, int64_t chunk_size,
    compress::CodecId codec, format::Manifest* out_manifest,
    const ChunkPipeline::Options& pipeline_options = {},
    storage::ObjectStore* input_store = nullptr);

// Exports an aligned AGD dataset to SAM text parts ("<out_key>.<i>"). Chunk fetching
// and parsing overlap the (ordered) SAM append stage.
Result<ConvertReport> ExportAgdToSam(
    storage::ObjectStore* store, const format::Manifest& manifest,
    const genome::ReferenceGenome& reference, const std::string& out_key,
    const ChunkPipeline::Options& pipeline_options = {});

// Exports an aligned AGD dataset to one BSAM object (`out_key`).
Result<ConvertReport> ExportAgdToBsam(
    storage::ObjectStore* store, const format::Manifest& manifest,
    const std::string& out_key, const ChunkPipeline::Options& pipeline_options = {});

}  // namespace persona::pipeline

#endif  // PERSONA_SRC_PIPELINE_CONVERT_H_
