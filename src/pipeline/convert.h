// Format conversion utilities (paper §4.4 output subgraph, §5.7 conversion rates):
// FASTQ -> AGD import, AGD -> SAM and AGD -> BSAM export.

#ifndef PERSONA_SRC_PIPELINE_CONVERT_H_
#define PERSONA_SRC_PIPELINE_CONVERT_H_

#include <string>

#include "src/format/agd_manifest.h"
#include "src/genome/reference.h"
#include "src/storage/object_store.h"

namespace persona::pipeline {

struct ConvertReport {
  double seconds = 0;
  uint64_t records = 0;
  uint64_t bytes_in = 0;    // uncompressed input volume
  uint64_t bytes_out = 0;   // bytes written to the store
  double throughput_mb_per_sec = 0;  // bytes_in / seconds
};

// Imports "<name>.fastq.gz" from the store into an AGD dataset named `name`.
// Parsing is streamed (FastqParser), chunks are flushed as they fill.
Result<ConvertReport> ImportFastqToAgd(storage::ObjectStore* store, const std::string& name,
                                       int64_t chunk_size,
                                       compress::CodecId codec,
                                       format::Manifest* out_manifest);

// Exports an aligned AGD dataset to SAM text parts ("<out_key>.<i>").
Result<ConvertReport> ExportAgdToSam(storage::ObjectStore* store,
                                     const format::Manifest& manifest,
                                     const genome::ReferenceGenome& reference,
                                     const std::string& out_key);

// Exports an aligned AGD dataset to one BSAM object (`out_key`).
Result<ConvertReport> ExportAgdToBsam(storage::ObjectStore* store,
                                      const format::Manifest& manifest,
                                      const std::string& out_key);

}  // namespace persona::pipeline

#endif  // PERSONA_SRC_PIPELINE_CONVERT_H_
