// Format conversion utilities (paper §4.4 output subgraph, §5.7 conversion rates):
// FASTQ -> AGD import, AGD -> SAM and AGD -> BSAM export.

#ifndef PERSONA_SRC_PIPELINE_CONVERT_H_
#define PERSONA_SRC_PIPELINE_CONVERT_H_

#include <string>

#include "src/format/agd_manifest.h"
#include "src/genome/reference.h"
#include "src/pipeline/chunk_pipeline.h"
#include "src/storage/object_store.h"

namespace persona::pipeline {

struct ConvertReport {
  double seconds = 0;
  uint64_t records = 0;
  uint64_t bytes_in = 0;    // uncompressed input volume
  uint64_t bytes_out = 0;   // bytes written to the store
  double throughput_mb_per_sec = 0;  // bytes_in / seconds
};

// Imports "<name>.fastq.gz" from the store into an AGD dataset named `name`.
// Parsing streams serially as the ChunkPipeline's record source; column building,
// compression, and batched chunk writes run behind it in parallel. `input_store`,
// when set, is where the gzipped FASTQ is read from (the paper's §5 shape: sequencer
// output staged on local disk, AGD written to the cluster store); by default the
// input lives in `store` itself.
Result<ConvertReport> ImportFastqToAgd(
    storage::ObjectStore* store, const std::string& name, int64_t chunk_size,
    compress::CodecId codec, format::Manifest* out_manifest,
    const ChunkPipeline::Options& pipeline_options = {},
    storage::ObjectStore* input_store = nullptr);

// Exports an aligned AGD dataset to SAM text parts ("<out_key>.<i>"). Chunk fetching
// and parsing overlap the (ordered) SAM append stage.
Result<ConvertReport> ExportAgdToSam(
    storage::ObjectStore* store, const format::Manifest& manifest,
    const genome::ReferenceGenome& reference, const std::string& out_key,
    const ChunkPipeline::Options& pipeline_options = {});

// Exports an aligned AGD dataset to one BSAM object (`out_key`).
Result<ConvertReport> ExportAgdToBsam(
    storage::ObjectStore* store, const format::Manifest& manifest,
    const std::string& out_key, const ChunkPipeline::Options& pipeline_options = {});

}  // namespace persona::pipeline

#endif  // PERSONA_SRC_PIPELINE_CONVERT_H_
