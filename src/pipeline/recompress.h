// Dataset-level reference-based recompression (paper §6.1).
//
// The TCO analysis (§6.1) finds long-term storage dominates the cost of
// population-scale sequencing and points at reference-based compression as the remedy.
// This op applies it to a whole AGD dataset: every chunk's bases column is transcoded
// into a "ref_bases" column (RecordType::kRefBases — diffs against the reference, see
// format/refcomp.h), after which the original bases objects can be deleted. Positions
// and CIGARs come from the results column at decode time, so nothing is stored twice.
// The inverse op regenerates a bit-identical bases column for compute clusters that
// want the hot-path representation back.
//
// This is the cold-storage workflow: align once, recompress, archive; rehydrate on
// demand.

#ifndef PERSONA_SRC_PIPELINE_RECOMPRESS_H_
#define PERSONA_SRC_PIPELINE_RECOMPRESS_H_

#include <string>

#include "src/format/agd_manifest.h"
#include "src/format/refcomp.h"
#include "src/genome/reference.h"
#include "src/pipeline/chunk_pipeline.h"
#include "src/storage/object_store.h"

namespace persona::pipeline {

class JobJournal;

struct RecompressReport {
  double seconds = 0;
  uint64_t records = 0;
  uint64_t bases_bytes = 0;      // size of the column being replaced
  uint64_t ref_bases_bytes = 0;  // size of the column written
  format::RefCompStats stats;    // aggregate diff statistics (compress direction only)
  storage::StoreStats store_stats;

  double CompressionRatio() const {
    return ref_bases_bytes == 0 ? 0
                                : static_cast<double>(bases_bytes) /
                                      static_cast<double>(ref_bases_bytes);
  }
};

struct RecompressOptions {
  compress::CodecId codec = compress::CodecId::kZlib;  // block codec for the new column
  bool delete_source_column = false;  // remove the replaced column's objects afterwards
  // Chunks transcode independently, so the transform stage runs fully parallel; the
  // replaced column's objects are removed with one batched DeleteBatch.
  ChunkPipeline::Options pipeline;
  // Crash-safe resume (borrowed): the caller Loads it before the run and Clears it
  // after success; the pipeline skips journaled chunks and commits each transcoded
  // column as it lands. On a resumed run the report's record/byte counters cover only
  // the chunks actually re-processed.
  JobJournal* resume_journal = nullptr;
  // Cluster mode (borrowed): chunk handout + lease completion through this source
  // instead of local iteration (see pipeline::WorkSource). Incompatible with
  // resume_journal (the chunk pipeline rejects the combination).
  WorkSource* work_source = nullptr;
  // Whether to write the swapped-column "manifest.json" (and delete the source
  // column) after the run. Cluster worker nodes turn this off: the coordinator owns
  // manifest updates and source-column deletion once the whole cluster drained.
  bool update_manifest = true;
};

// bases -> ref_bases. Requires bases and results columns. On success `out_manifest`
// describes the dataset with the bases column replaced by ref_bases (also stored as
// "manifest.json", overwriting).
Result<RecompressReport> RefCompressBasesColumn(storage::ObjectStore* store,
                                                const format::Manifest& manifest,
                                                const genome::ReferenceGenome& reference,
                                                const RecompressOptions& options,
                                                format::Manifest* out_manifest);

// ref_bases -> bases (exact inverse). Requires ref_bases and results columns.
Result<RecompressReport> ReconstructBasesColumn(storage::ObjectStore* store,
                                                const format::Manifest& manifest,
                                                const genome::ReferenceGenome& reference,
                                                const RecompressOptions& options,
                                                format::Manifest* out_manifest);

}  // namespace persona::pipeline

#endif  // PERSONA_SRC_PIPELINE_RECOMPRESS_H_
