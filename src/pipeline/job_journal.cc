#include "src/pipeline/job_journal.h"

#include <utility>

#include "src/util/json.h"

namespace persona::pipeline {

JobJournal::JobJournal(storage::ObjectStore* store, std::string key,
                       std::string fingerprint)
    : store_(store), key_(std::move(key)), fingerprint_(std::move(fingerprint)) {}

Status JobJournal::Load() {
  Buffer raw;
  if (!store_->Exists(key_)) {
    return OkStatus();  // fresh job
  }
  PERSONA_RETURN_IF_ERROR(store_->Get(key_, &raw));
  PERSONA_ASSIGN_OR_RETURN(json::Value root, json::Parse(raw.view()));
  PERSONA_ASSIGN_OR_RETURN(std::string fingerprint, root.GetString("fingerprint"));
  if (fingerprint != fingerprint_) {
    return FailedPreconditionError("journal '" + key_ +
                                   "' belongs to a different job: found fingerprint '" +
                                   fingerprint + "', expected '" + fingerprint_ + "'");
  }
  PERSONA_ASSIGN_OR_RETURN(const json::Array* items, root.GetArray("completed"));
  MutexLock lock(mu_);
  completed_.clear();
  for (const json::Value& entry : *items) {
    PERSONA_ASSIGN_OR_RETURN(int64_t index, entry.GetInt("index"));
    PERSONA_ASSIGN_OR_RETURN(const json::Array* keys, entry.GetArray("keys"));
    std::vector<std::string> item_keys;
    item_keys.reserve(keys->size());
    for (const json::Value& k : *keys) {
      if (!k.is_string()) {
        return DataLossError("journal '" + key_ + "': non-string key entry");
      }
      item_keys.push_back(k.as_string());
    }
    completed_.emplace(static_cast<size_t>(index), std::move(item_keys));
  }
  return OkStatus();
}

bool JobJournal::IsCompleted(size_t item) const {
  MutexLock lock(mu_);
  return completed_.find(item) != completed_.end();
}

size_t JobJournal::completed_count() const {
  MutexLock lock(mu_);
  return completed_.size();
}

std::vector<std::string> JobJournal::CompletedKeys() const {
  MutexLock lock(mu_);
  std::vector<std::string> keys;
  for (const auto& [index, item_keys] : completed_) {
    keys.insert(keys.end(), item_keys.begin(), item_keys.end());
  }
  return keys;
}

Status JobJournal::Commit(size_t item, std::vector<std::string> keys) {
  MutexLock lock(mu_);
  if (!completed_.emplace(item, std::move(keys)).second) {
    return OkStatus();  // already journaled (idempotent)
  }
  if (++commits_since_checkpoint_ < checkpoint_interval_) {
    return OkStatus();
  }
  return CheckpointLocked();
}

Status JobJournal::Checkpoint() {
  MutexLock lock(mu_);
  return CheckpointLocked();
}

Status JobJournal::CheckpointLocked() {
  commits_since_checkpoint_ = 0;
  json::Array items;
  items.reserve(completed_.size());
  for (const auto& [index, item_keys] : completed_) {
    json::Object entry;
    entry.emplace("index", json::Value(static_cast<uint64_t>(index)));
    json::Array keys;
    keys.reserve(item_keys.size());
    for (const std::string& k : item_keys) {
      keys.emplace_back(k);
    }
    entry.emplace("keys", json::Value(std::move(keys)));
    items.emplace_back(json::Object(std::move(entry)));
  }
  json::Object root;
  root.emplace("fingerprint", json::Value(fingerprint_));
  root.emplace("completed", json::Value(std::move(items)));
  // The store Put is an atomic replace (see LocalStore::Put), so an interrupted
  // checkpoint leaves the previous journal intact.
  return store_->Put(key_, json::Value(std::move(root)).Dump());
}

Status JobJournal::Clear() {
  MutexLock lock(mu_);
  completed_.clear();
  commits_since_checkpoint_ = 0;
  if (!store_->Exists(key_)) {
    return OkStatus();
  }
  return store_->Delete(key_);
}

}  // namespace persona::pipeline
