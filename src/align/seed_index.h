// SNAP-style hash-based seed index over the reference genome (paper §2.1, §4.3).
//
// Every (strided) position of the reference contributes a fixed-length seed, 2-bit
// packed into a uint64. Seeds are grouped in a flat open-addressing hash table mapping
// seed -> a slice of a shared positions array. This is the "multi-gigabyte reference
// index" Persona shares between aligner kernels via a resource pool.

#ifndef PERSONA_SRC_ALIGN_SEED_INDEX_H_
#define PERSONA_SRC_ALIGN_SEED_INDEX_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "src/genome/reference.h"
#include "src/util/result.h"

namespace persona::align {

// Incremental 2-bit seed encoder: emits the packed seed at successive offsets of one
// sequence in O(1) amortized per consumed base, vs PackSeed's O(seed_length) re-pack
// per offset. Offsets must be queried in strictly increasing order. Windows containing
// a non-ACGT base are rejected exactly as PackSeed rejects them.
class RollingSeedPacker {
 public:
  RollingSeedPacker(std::string_view bases, int seed_length)
      : bases_(bases),
        seed_length_(seed_length),
        mask_(seed_length >= 32 ? ~0ull : (1ull << (2 * seed_length)) - 1) {}

  // Packs the window [offset, offset + seed_length) into *seed. Returns false if the
  // window overruns the sequence or contains a non-ACGT base.
  bool Seed(size_t offset, uint64_t* seed) {
    const size_t end = offset + static_cast<size_t>(seed_length_);
    if (end > bases_.size()) {
      return false;
    }
    while (next_ < end) {
      Consume();
    }
    if (last_invalid_ >= static_cast<ptrdiff_t>(offset)) {
      return false;  // an N (or other non-ACGT base) lies inside the window
    }
    *seed = rolling_ & mask_;
    return true;
  }

 private:
  void Consume();

  std::string_view bases_;
  int seed_length_;
  uint64_t mask_;
  uint64_t rolling_ = 0;
  size_t next_ = 0;              // next base index to fold into rolling_
  ptrdiff_t last_invalid_ = -1;  // most recent non-ACGT index consumed
};

struct SeedIndexOptions {
  int seed_length = 20;            // bases per seed (max 31 with 2-bit packing)
  int build_stride = 1;            // index every k-th reference position
  int max_positions_per_seed = 128;  // drop hyper-repetitive seeds beyond this count
};

class SeedIndex {
 public:
  // Builds an index over all contigs. Positions containing N are skipped.
  static Result<SeedIndex> Build(const genome::ReferenceGenome& reference,
                                 const SeedIndexOptions& options);

  // Packs seed_length bases starting at bases[offset] into a 2-bit seed.
  // Returns false if the window contains a non-ACGT character or runs out of bases.
  // Reference implementation (O(seed_length) per call); hot paths use
  // RollingSeedPacker, which is parity-tested against this.
  static bool PackSeed(std::string_view bases, size_t offset, int seed_length, uint64_t* seed);

  // Global reference positions whose seed equals `seed` (empty if unknown/dropped).
  std::span<const uint32_t> Lookup(uint64_t seed) const;

  int seed_length() const { return options_.seed_length; }
  const SeedIndexOptions& options() const { return options_; }

  size_t num_distinct_seeds() const { return num_entries_; }
  size_t num_positions() const { return positions_.size(); }

  // Approximate resident bytes (table + positions), for TCO/footprint reporting.
  size_t MemoryBytes() const;

 private:
  struct Entry {
    uint64_t seed = kEmptySeed;
    uint32_t offset = 0;  // into positions_
    uint32_t count = 0;
  };
  static constexpr uint64_t kEmptySeed = ~0ull;

  SeedIndex() = default;

  size_t BucketFor(uint64_t seed) const;

  SeedIndexOptions options_;
  std::vector<Entry> table_;       // open addressing, power-of-two size
  std::vector<uint32_t> positions_;
  size_t num_entries_ = 0;
  size_t mask_ = 0;
};

}  // namespace persona::align

#endif  // PERSONA_SRC_ALIGN_SEED_INDEX_H_
