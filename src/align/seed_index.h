// SNAP-style hash-based seed index over the reference genome (paper §2.1, §4.3).
//
// Every (strided) position of the reference contributes a fixed-length seed, 2-bit
// packed into a uint64. Seeds are grouped in a flat open-addressing hash table mapping
// seed -> a slice of a shared positions array. This is the "multi-gigabyte reference
// index" Persona shares between aligner kernels via a resource pool.

#ifndef PERSONA_SRC_ALIGN_SEED_INDEX_H_
#define PERSONA_SRC_ALIGN_SEED_INDEX_H_

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "src/genome/reference.h"
#include "src/util/result.h"

namespace persona::align {

// 2-bit code per base character, 4 for anything that is not ACGT (either case).
// A flat table rather than a switch: the seeding loop consumes every base of
// every read through this, and the table lookup is branch-free.
inline constexpr std::array<uint8_t, 256> kBaseCode2 = [] {
  std::array<uint8_t, 256> t{};
  t.fill(4);
  t['A'] = t['a'] = 0;
  t['C'] = t['c'] = 1;
  t['G'] = t['g'] = 2;
  t['T'] = t['t'] = 3;
  return t;
}();

// Incremental 2-bit seed encoder: emits the packed seed at successive offsets of one
// sequence in O(1) amortized per consumed base, vs PackSeed's O(seed_length) re-pack
// per offset. Offsets must be queried in strictly increasing order. Windows containing
// a non-ACGT base are rejected exactly as PackSeed rejects them.
class RollingSeedPacker {
 public:
  RollingSeedPacker(std::string_view bases, int seed_length)
      : bases_(bases),
        seed_length_(seed_length),
        mask_(seed_length >= 32 ? ~0ull : (1ull << (2 * seed_length)) - 1) {}

  // Packs the window [offset, offset + seed_length) into *seed. Returns false if the
  // window overruns the sequence or contains a non-ACGT base.
  bool Seed(size_t offset, uint64_t* seed) {
    const size_t end = offset + static_cast<size_t>(seed_length_);
    if (end > bases_.size()) {
      return false;
    }
    while (next_ < end) {
      Consume();
    }
    if (last_invalid_ >= static_cast<ptrdiff_t>(offset)) {
      return false;  // an N (or other non-ACGT base) lies inside the window
    }
    *seed = rolling_ & mask_;
    return true;
  }

 private:
  // Folds the next base into the rolling code. Inline: the seeding hot loop runs
  // this once per base of every read, and an out-of-line call per base costs
  // more than the shift it wraps.
  void Consume() {
    const uint32_t code = kBaseCode2[static_cast<unsigned char>(bases_[next_])];
    if (code >= 4) {
      last_invalid_ = static_cast<ptrdiff_t>(next_);
    }
    // code & 3 turns the invalid marker into placeholder bits; windows covering
    // that index are rejected via last_invalid_ anyway.
    rolling_ = (rolling_ << 2) | (code & 3u);
    ++next_;
  }

  std::string_view bases_;
  int seed_length_;
  uint64_t mask_;
  uint64_t rolling_ = 0;
  size_t next_ = 0;              // next base index to fold into rolling_
  ptrdiff_t last_invalid_ = -1;  // most recent non-ACGT index consumed
};

struct SeedIndexOptions {
  int seed_length = 20;            // bases per seed (max 31 with 2-bit packing)
  int build_stride = 1;            // index every k-th reference position
  int max_positions_per_seed = 128;  // drop hyper-repetitive seeds beyond this count
};

class SeedIndex {
 public:
  // Builds an index over all contigs. Positions containing N are skipped.
  static Result<SeedIndex> Build(const genome::ReferenceGenome& reference,
                                 const SeedIndexOptions& options);

  // Packs seed_length bases starting at bases[offset] into a 2-bit seed.
  // Returns false if the window contains a non-ACGT character or runs out of bases.
  // Reference implementation (O(seed_length) per call); hot paths use
  // RollingSeedPacker, which is parity-tested against this.
  static bool PackSeed(std::string_view bases, size_t offset, int seed_length, uint64_t* seed);

  // Global reference positions whose seed equals `seed` (empty if unknown/dropped).
  std::span<const uint32_t> Lookup(uint64_t seed) const;

  // Prefetches the cache line of `seed`'s first hash probe. Hot loops issue this
  // for a batch of packed seeds before resolving any of them, so the table's
  // cache misses overlap instead of serializing one Lookup at a time. Purely a
  // hint: Lookup semantics are unchanged whether or not this was called.
  // Inline (with BucketFor): it is issued once per staged seed in the hot loop.
  void PrefetchLookup(uint64_t seed) const {
    if (!table_.empty()) {
      __builtin_prefetch(table_.data() + BucketFor(seed), 0, 1);
    }
  }

  int seed_length() const { return options_.seed_length; }
  const SeedIndexOptions& options() const { return options_; }

  size_t num_distinct_seeds() const { return num_entries_; }
  size_t num_positions() const { return positions_.size(); }

  // Approximate resident bytes (table + positions), for TCO/footprint reporting.
  size_t MemoryBytes() const;

 private:
  struct Entry {
    uint64_t seed = kEmptySeed;
    uint32_t offset = 0;  // into positions_
    uint32_t count = 0;
  };
  static constexpr uint64_t kEmptySeed = ~0ull;

  SeedIndex() = default;

  // splitmix64 finalizer: good dispersion for packed seeds.
  static uint64_t MixHash(uint64_t x) {
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return x;
  }

  size_t BucketFor(uint64_t seed) const { return MixHash(seed) & mask_; }

  SeedIndexOptions options_;
  std::vector<Entry> table_;       // open addressing, power-of-two size
  std::vector<uint32_t> positions_;
  size_t num_entries_ = 0;
  size_t mask_ = 0;
};

}  // namespace persona::align

#endif  // PERSONA_SRC_ALIGN_SEED_INDEX_H_
