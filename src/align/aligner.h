// The Aligner interface shared by the SNAP-style and BWA-MEM-style implementations.
//
// Aligners are immutable after construction and safe for concurrent use from many
// threads; per-call instrumentation is written into a caller-owned AlignProfile (each
// executor thread keeps its own and merges at the end), which is how the Fig. 8 workload
// analysis harness attributes time to kernels.

#ifndef PERSONA_SRC_ALIGN_ALIGNER_H_
#define PERSONA_SRC_ALIGN_ALIGNER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <utility>

#include "src/align/alignment.h"
#include "src/genome/read.h"

namespace persona::align {

// Per-thread profiling accumulator. All counters are plain (non-atomic): one profile per
// thread, merged after the run.
struct AlignProfile {
  uint64_t reads = 0;
  uint64_t bases = 0;
  uint64_t seed_ns = 0;        // time in seeding / index lookup (memory-bound side)
  uint64_t verify_ns = 0;      // time in edit-distance / SW kernels (core-bound side)
  uint64_t candidates = 0;     // candidate locations evaluated
  uint64_t index_probes = 0;   // hash/FM-index probes issued
  uint64_t lv_batch_runs = 0;  // vector Landau-Vishkin passes issued (0 when scalar)
  uint64_t lv_batch_jobs = 0;  // DP jobs those passes carried (jobs/runs = lane occupancy)

  void Merge(const AlignProfile& other) {
    reads += other.reads;
    bases += other.bases;
    seed_ns += other.seed_ns;
    verify_ns += other.verify_ns;
    candidates += other.candidates;
    index_probes += other.index_probes;
    lv_batch_runs += other.lv_batch_runs;
    lv_batch_jobs += other.lv_batch_jobs;
  }
};

// Opaque per-thread working memory handed to AlignBatch. Concrete aligners derive
// their own scratch type (vote maps, DP matrices, reusable string buffers) so the
// batch hot path runs allocation-free; callers obtain one via Aligner::MakeScratch
// and reuse it for the lifetime of a worker thread. A scratch must never be shared
// between threads concurrently.
class AlignerScratch {
 public:
  virtual ~AlignerScratch() = default;
};

class Aligner {
 public:
  virtual ~Aligner() = default;

  virtual std::string_view name() const = 0;

  // Aligns one single-end read. Never fails: an unalignable read yields an unmapped
  // result. `profile` may be null.
  virtual AlignmentResult Align(const genome::Read& read, AlignProfile* profile) const = 0;

  // Creates reusable working memory for AlignBatch; may return null when the aligner
  // has no batch-specific state (the default).
  virtual std::unique_ptr<AlignerScratch> MakeScratch() const { return nullptr; }

  // Aligns a batch of single-end reads into results[0 .. reads.size()). `results`
  // must be at least as large as `reads`; `scratch` (from MakeScratch, possibly null)
  // and `profile` may be null. Implementations with a batched hot path hoist per-read
  // overhead (buffer setup, profiling clocks) to per-batch; the default loops Align.
  // Output is identical to calling Align on each read.
  virtual void AlignBatch(std::span<const genome::Read> reads,
                          std::span<AlignmentResult> results, AlignerScratch* scratch,
                          AlignProfile* profile) const;

  // Aligns a read pair, preferring candidate placements that form a proper pair.
  // The default implementation aligns both ends independently and then applies
  // pair flags/mate fields when the two placements are compatible.
  virtual std::pair<AlignmentResult, AlignmentResult> AlignPair(
      const genome::Read& read1, const genome::Read& read2, AlignProfile* profile) const;

 protected:
  // Fills pair-related flags/mate fields on two independently aligned ends.
  static void FinalizePair(AlignmentResult* r1, AlignmentResult* r2);
};

}  // namespace persona::align

#endif  // PERSONA_SRC_ALIGN_ALIGNER_H_
