// Landau-Vishkin banded pass, vectorized across W interleaved lanes.
//
// Included by lv_simd_sse4.cc / lv_simd_avx2.cc (each compiled with the matching
// -m flags) with an Ops policy supplying the vector type and intrinsics wrappers.
// Do not include anywhere else.
//
// Parity with the scalar LvCore pass (edit_distance.cc) is exact, cell by cell:
//
//  - The scalar kernel skips cells with j < 0 or j > n and guards each of the
//    three transitions so such cells are never read. Here every slot is written:
//    out-of-range cells hold exactly `inf`. Because every scalar guard excludes
//    a term whose source this kernel stores as `inf`, and every stored value is
//    min'ed against `inf` first, the excluded terms contribute `inf + {0,1,2}`
//    and can never change the min — in-range cells get bit-identical values.
//  - Band rows carry one pad slot on each side holding `inf`, standing in for
//    the scalar `b - 1 >= 0` / `b + 1 < band` guards.
//  - The scalar early return when a row minimum reaches `inf` is a per-lane
//    retirement here: such a lane's cells stay exactly `inf` forever (inf only
//    ever derives inf under the recurrence), so its answer is -1 either way.
//
// The pass is distance-only; winner CIGARs are produced by the scalar traceback.

template <typename Ops, int kStaticBand>
static void LvPassBody(const persona::align::simd::LvPassArgs& a) {
  using V = typename Ops::V;
  constexpr int W = Ops::kWidth;

  const int k = a.k;
  // kStaticBand > 0 pins the band width at compile time so the per-row column
  // loop fully unrolls; 0 is the generic runtime-width fallback.
  const int band = kStaticBand > 0 ? kStaticBand : 2 * k + 1;
  const int inf = k + 1;
  const V vinf = Ops::Set1(inf);
  const V vone = Ops::Set1(1);
  const V vn = Ops::LoadA(a.n);

  // Band rows have slots -1..band (pads at both ends). Distance-only passes
  // roll two rows through a.dp; history passes (a.hist != null) lay every row
  // out consecutively so the caller can traceback a CIGAR afterwards.
  const int row_stride = (band + 2) * W;
  const bool keep_history = a.hist != nullptr;
  int32_t* prev = keep_history ? a.hist : a.dp;
  int32_t* cur = prev + row_stride;
  Ops::StoreA(prev, vinf);
  Ops::StoreA(prev + (band + 1) * W, vinf);
  Ops::StoreA(cur, vinf);
  Ops::StoreA(cur + (band + 1) * W, vinf);

  // Row 0: cost j for 0 <= j <= n(lane), else inf.
  for (int b = 0; b < band; ++b) {
    const int j = b - k;
    V v = vinf;
    if (j >= 0) {
      const V vj = Ops::Set1(j);
      v = Ops::Blend(vj, vinf, Ops::CmpGt(vj, vn));
    }
    Ops::StoreA(prev + (b + 1) * W, v);
  }

  uint32_t pending = 0;
  int max_m = 0;
  for (int l = 0; l < W; ++l) {
    if (a.want[l] != 0) {
      pending |= 1u << l;
      max_m = a.m[l] > max_m ? a.m[l] : max_m;
      if (a.m[l] == 0) {
        // Callers resolve empty patterns before staging; keep the kernel total anyway.
        a.dist[l] = 0;
        pending &= ~(1u << l);
      }
    }
  }

  alignas(32) int32_t rm[W];
  for (int i = 1; i <= max_m && pending != 0; ++i) {
    const V pat_c = Ops::LoadBytes(a.pat + static_cast<size_t>(i) * W);
    V row_min = vinf;
    for (int b = 0; b < band; ++b) {
      const int j = i + b - k;
      if (j < 0) {
        Ops::StoreA(cur + (b + 1) * W, vinf);
        continue;
      }
      const V diag = Ops::LoadA(prev + (b + 1) * W);
      const V up = Ops::LoadA(prev + (b + 2) * W);
      const V left = Ops::LoadA(cur + b * W);
      const V text_c = Ops::LoadBytes(a.text + static_cast<size_t>(j) * W);
      // cmpeq yields -1 on equal lanes: substitution cost = 1 + (-1 | 0).
      const V sub = Ops::Add(vone, Ops::CmpEq(pat_c, text_c));
      V best = Ops::Min(vinf, Ops::Add(diag, sub));
      best = Ops::Min(best, Ops::Add(up, vone));
      best = Ops::Min(best, Ops::Add(left, vone));
      const V vj = Ops::Set1(j);
      best = Ops::Blend(best, vinf, Ops::CmpGt(vj, vn));
      Ops::StoreA(cur + (b + 1) * W, best);
      row_min = Ops::Min(row_min, best);
    }
    Ops::StoreA(rm, row_min);
    for (int l = 0; l < W; ++l) {
      const uint32_t bit = 1u << l;
      if ((pending & bit) == 0) {
        continue;
      }
      if (a.m[l] == i) {
        // Final row for this lane: min over in-range band cells (out-of-range
        // slots hold inf and cannot win).
        int best = inf;
        for (int b = 0; b < band; ++b) {
          const int v = cur[(b + 1) * W + l];
          best = v < best ? v : best;
        }
        a.dist[l] = best > k ? -1 : best;
        pending &= ~bit;
      } else if (rm[l] >= inf) {
        a.dist[l] = -1;  // scalar early return: later rows only grow
        pending &= ~bit;
      }
    }
    if (keep_history) {
      prev = cur;
      cur += row_stride;
      if (i < max_m) {
        Ops::StoreA(cur, vinf);
        Ops::StoreA(cur + (band + 1) * W, vinf);
      }
    } else {
      int32_t* tmp = prev;
      prev = cur;
      cur = tmp;
    }
  }
}

template <typename Ops>
static void LvPassImpl(const persona::align::simd::LvPassArgs& a) {
  // The adaptive schedule emits k = 1, 2, 4, ... so the small bands carry almost
  // all passes (k = 1 alone covers the majority of verification jobs).
  switch (a.k) {
    case 1:
      LvPassBody<Ops, 3>(a);
      break;
    case 2:
      LvPassBody<Ops, 5>(a);
      break;
    case 4:
      LvPassBody<Ops, 9>(a);
      break;
    default:
      LvPassBody<Ops, 0>(a);
      break;
  }
}
