// Landau-Vishkin AVX2 kernel (8 x int32 lanes). This TU is compiled with
// -mavx2; LvPassAvx2 must only be called after SimdLevelSupported(kAvx2).

#include "src/align/simd_kernels.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cstddef>
#include <cstring>

namespace {

struct AvxOps {
  using V = __m256i;
  static constexpr int kWidth = persona::align::simd::kLvLanesAvx2;

  static V Set1(int32_t x) { return _mm256_set1_epi32(x); }
  static V LoadA(const int32_t* p) { return _mm256_load_si256(reinterpret_cast<const V*>(p)); }
  static void StoreA(int32_t* p, V v) { _mm256_store_si256(reinterpret_cast<V*>(p), v); }
  static V Min(V x, V y) { return _mm256_min_epi32(x, y); }
  static V Add(V x, V y) { return _mm256_add_epi32(x, y); }
  static V CmpEq(V x, V y) { return _mm256_cmpeq_epi32(x, y); }
  static V CmpGt(V x, V y) { return _mm256_cmpgt_epi32(x, y); }
  static V Blend(V x, V y, V mask) { return _mm256_blendv_epi8(x, y, mask); }
  // 8 bytes -> 8 zero-extended int32 lanes.
  static V LoadBytes(const uint8_t* p) {
    int64_t bits;
    std::memcpy(&bits, p, sizeof(bits));
    return _mm256_cvtepu8_epi32(_mm_cvtsi64_si128(bits));
  }
};

}  // namespace

#include "src/align/lv_simd.inc.h"

namespace persona::align::simd {

void LvPassAvx2(const LvPassArgs& args) { LvPassImpl<AvxOps>(args); }

}  // namespace persona::align::simd

#else  // !x86

#include <cstdlib>

namespace persona::align::simd {

// Never reachable off x86 (dispatch resolves to kScalar); defined so the
// symbol always links.
void LvPassAvx2(const LvPassArgs&) { std::abort(); }

}  // namespace persona::align::simd

#endif
